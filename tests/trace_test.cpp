// Tests for trace capture, ground-truth analysis, and pcap output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/analyzer.hpp"
#include "trace/pcap_writer.hpp"
#include "trace/trace.hpp"

namespace reorder::trace {
namespace {

using util::Duration;
using util::TimePoint;

tcpip::Packet make_packet(std::uint64_t uid, std::uint32_t seq = 0,
                          std::vector<std::uint8_t> payload = {}) {
  tcpip::Packet pkt;
  pkt.ip.src = tcpip::Ipv4Address::from_octets(10, 0, 0, 2);
  pkt.ip.dst = tcpip::Ipv4Address::from_octets(10, 0, 0, 1);
  pkt.tcp.src_port = 80;
  pkt.tcp.dst_port = 40000;
  pkt.tcp.seq = seq;
  pkt.tcp.flags = tcpip::kAck | (payload.empty() ? 0 : tcpip::kPsh);
  pkt.payload = std::move(payload);
  pkt.uid = uid;
  return pkt;
}

// ---------- permutation metrics ----------

TEST(Analyzer, InversionsOfSortedIsZero) {
  EXPECT_EQ(count_inversions({0, 1, 2, 3, 4}), 0u);
  EXPECT_FALSE(any_reordering({0, 1, 2, 3}));
}

TEST(Analyzer, InversionCounts) {
  EXPECT_EQ(count_inversions({1, 0}), 1u);
  EXPECT_EQ(count_inversions({2, 1, 0}), 3u);
  EXPECT_EQ(count_inversions({0, 2, 1, 3}), 1u);
  EXPECT_EQ(count_inversions({4, 3, 2, 1, 0}), 10u);
  EXPECT_TRUE(any_reordering({0, 2, 1}));
}

TEST(Analyzer, PairExchanges) {
  // Pairs are (0,1), (2,3), ...
  EXPECT_EQ(count_pair_exchanges({0, 1, 2, 3}), 0u);
  EXPECT_EQ(count_pair_exchanges({1, 0, 2, 3}), 1u);
  EXPECT_EQ(count_pair_exchanges({1, 0, 3, 2}), 2u);
  // A cross-pair inversion is not a pair exchange.
  EXPECT_EQ(count_pair_exchanges({2, 0, 1, 3}), 0u);
  // Missing partner: no exchange counted.
  EXPECT_EQ(count_pair_exchanges({1, 2, 3}), 0u);
}

// ---------- trace buffer + arrival order ----------

TEST(TraceBuffer, RecordsAndFilters) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(10));
  buf.record(TimePoint::epoch() + Duration::micros(1), make_packet(11));
  buf.record(TimePoint::epoch() + Duration::micros(2), make_packet(12));
  EXPECT_EQ(buf.size(), 3u);
  const auto picked = buf.filter_uids({12, 10});
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].packet.uid, 10u);
  EXPECT_EQ(picked[1].packet.uid, 12u);
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

TEST(Analyzer, ArrivalOrderRecoversPermutation) {
  TraceBuffer buf;
  // Sent 100, 101, 102; arrived 101, 100, 102.
  buf.record(TimePoint::epoch(), make_packet(101));
  buf.record(TimePoint::epoch(), make_packet(100));
  buf.record(TimePoint::epoch(), make_packet(102));
  const auto order = arrival_order(buf, {100, 101, 102});
  EXPECT_TRUE(order.complete());
  EXPECT_EQ(order.arrival, (std::vector<std::uint32_t>{1, 0, 2}));
}

TEST(Analyzer, ArrivalOrderHandlesMissingAndDuplicates) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(100));
  buf.record(TimePoint::epoch(), make_packet(100));  // retransmit capture
  buf.record(TimePoint::epoch(), make_packet(102));
  const auto order = arrival_order(buf, {100, 101, 102});
  EXPECT_FALSE(order.complete());
  EXPECT_EQ(order.arrival, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(order.missing, (std::vector<std::uint32_t>{1}));
}

TEST(Analyzer, PairGroundTruth) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(2));
  buf.record(TimePoint::epoch(), make_packet(1));
  EXPECT_EQ(pair_ground_truth(buf, 1, 2), PairGroundTruth::kReordered);
  EXPECT_EQ(pair_ground_truth(buf, 2, 1), PairGroundTruth::kInOrder);
  EXPECT_EQ(pair_ground_truth(buf, 1, 99), PairGroundTruth::kIncomplete);
}

// ---------- TCP stream analysis (Paxson-style) ----------

TEST(Analyzer, TcpStreamInOrder) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1, 1000, {1, 1}));
  buf.record(TimePoint::epoch(), make_packet(2, 1002, {2, 2}));
  buf.record(TimePoint::epoch(), make_packet(3, 1004, {3, 3}));
  const auto stats = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(stats.data_segments, 3u);
  EXPECT_EQ(stats.out_of_order, 0u);
  EXPECT_EQ(stats.retransmissions, 0u);
}

TEST(Analyzer, TcpStreamDetectsReordering) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1, 1000, {1, 1}));
  buf.record(TimePoint::epoch(), make_packet(3, 1004, {3, 3}));  // jumped ahead
  buf.record(TimePoint::epoch(), make_packet(2, 1002, {2, 2}));  // late
  const auto stats = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(stats.out_of_order, 1u);
  EXPECT_EQ(stats.max_advance_jumps, 1u);
}

TEST(Analyzer, TcpStreamSeparatesRetransmissions) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1, 1000, {1, 1}));
  buf.record(TimePoint::epoch(), make_packet(2, 1002, {2, 2}));
  buf.record(TimePoint::epoch(), make_packet(3, 1000, {1, 1}));  // same seq again
  const auto stats = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(stats.retransmissions, 1u);
  EXPECT_EQ(stats.out_of_order, 0u);
}

TEST(Analyzer, TcpStreamEmptyAndSingleSegment) {
  TraceBuffer empty;
  const auto none = analyze_tcp_stream(empty, 80, 40000);
  EXPECT_EQ(none.data_segments, 0u);
  EXPECT_EQ(none.out_of_order, 0u);

  TraceBuffer one;
  one.record(TimePoint::epoch(), make_packet(1, 5000, {1, 1}));
  const auto single = analyze_tcp_stream(one, 80, 40000);
  EXPECT_EQ(single.data_segments, 1u);
  EXPECT_EQ(single.out_of_order, 0u);
  EXPECT_EQ(single.retransmissions, 0u);
}

TEST(Analyzer, TcpStreamDisambiguatesRetransmitFromReorderInOneStream) {
  // The same stream carries both phenomena; each must land in its own
  // bucket. seq 1002 is seen, then seen again (retransmission); seq 1004
  // jumps ahead of 1002's late sibling 1003... rather: a genuinely late
  // new segment (1000 after 1004) is a reorder, not a retransmission.
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1, 1002, {2, 2}));
  buf.record(TimePoint::epoch(), make_packet(2, 1004, {3, 3}));
  buf.record(TimePoint::epoch(), make_packet(3, 1002, {2, 2}));  // dup start: retransmit
  buf.record(TimePoint::epoch(), make_packet(4, 1000, {1, 1}));  // new start below max: reorder
  const auto stats = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(stats.data_segments, 4u);
  EXPECT_EQ(stats.retransmissions, 1u);
  EXPECT_EQ(stats.out_of_order, 1u);
}

TEST(Analyzer, TcpStreamRetransmitFillingAHoleIsNotCountedAsReorder) {
  // Loss-then-retransmit: the original of seq 1002 never reached the tap,
  // so its retransmission arrives with a never-seen start below max_end —
  // indistinguishable from reordering at a single observation point. This
  // is exactly the passive method's ambiguity the paper critiques (§II);
  // the analyzer attributes it to out_of_order, and the jump that created
  // the hole is recorded separately.
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1, 1000, {1, 1}));
  buf.record(TimePoint::epoch(), make_packet(2, 1004, {3, 3}));  // hole: 1002 lost
  buf.record(TimePoint::epoch(), make_packet(3, 1002, {2, 2}));  // retransmitted filler
  const auto stats = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(stats.max_advance_jumps, 1u);
  EXPECT_EQ(stats.out_of_order, 1u);
  EXPECT_EQ(stats.retransmissions, 0u);

  // A second copy of the filler IS attributable: its start is now known.
  buf.record(TimePoint::epoch(), make_packet(4, 1002, {2, 2}));
  const auto more = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(more.retransmissions, 1u);
  EXPECT_EQ(more.out_of_order, 1u);
}

TEST(Analyzer, TcpStreamHandlesSequenceWraparound) {
  // max_end wraps past 2^32; the late segment below the wrap point must
  // still compare as "before" in sequence space (RFC 1982-style).
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1, 0xFFFFFFF0u, std::vector<std::uint8_t>(16, 1)));
  buf.record(TimePoint::epoch(), make_packet(2, 0x00000000u, std::vector<std::uint8_t>(16, 2)));
  buf.record(TimePoint::epoch(), make_packet(3, 0xFFFFFFF8u, std::vector<std::uint8_t>(8, 3)));
  const auto stats = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(stats.data_segments, 3u);
  EXPECT_EQ(stats.out_of_order, 1u);
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_EQ(stats.max_advance_jumps, 0u);
}

TEST(Analyzer, TcpStreamFiltersByPorts) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1, 1000, {1}));
  auto other = make_packet(2, 2000, {2});
  other.tcp.src_port = 12345;
  buf.record(TimePoint::epoch(), other);
  const auto stats = analyze_tcp_stream(buf, 80, 40000);
  EXPECT_EQ(stats.data_segments, 1u);
}

// ---------- pcap ----------

TEST(Pcap, GlobalHeaderAndRecord) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch() + Duration::seconds(3) + Duration::micros(250),
             make_packet(1, 77, {0xde, 0xad}));
  std::ostringstream os;
  PcapWriter w{os};
  for (const auto& r : buf.records()) w.write(r);
  EXPECT_EQ(w.packets_written(), 1u);

  const std::string data = os.str();
  ASSERT_GE(data.size(), 24u + 16u);
  // Magic, little-endian.
  EXPECT_EQ(static_cast<unsigned char>(data[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(data[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(data[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(data[3]), 0xa1);
  // Linktype 101 (raw IP) at offset 20.
  EXPECT_EQ(static_cast<unsigned char>(data[20]), 101);
  // Record header: ts_sec = 3, ts_usec = 250.
  EXPECT_EQ(static_cast<unsigned char>(data[24]), 3);
  EXPECT_EQ(static_cast<unsigned char>(data[28]), 250);
  // incl_len == orig_len == 42 (20 IP + 20 TCP + 2 payload).
  EXPECT_EQ(static_cast<unsigned char>(data[32]), 42);
  EXPECT_EQ(static_cast<unsigned char>(data[36]), 42);
  // The embedded packet must itself be parseable.
  std::vector<std::uint8_t> wire(data.begin() + 40, data.end());
  const auto back = tcpip::Packet::from_wire(wire);
  EXPECT_TRUE(back.checksums_ok);
  EXPECT_EQ(back.packet.tcp.seq, 77u);
}

TEST(Pcap, WriteFile) {
  TraceBuffer buf;
  buf.record(TimePoint::epoch(), make_packet(1));
  buf.record(TimePoint::epoch(), make_packet(2));
  const std::string path = "/tmp/reorder_pcap_test.pcap";
  ASSERT_TRUE(write_pcap_file(path, buf));
  std::ifstream f{path, std::ios::binary | std::ios::ate};
  ASSERT_TRUE(f.good());
  EXPECT_EQ(static_cast<std::size_t>(f.tellg()), 24u + 2 * (16u + 40u));
  std::remove(path.c_str());
}

TEST(Pcap, WriteFileFailsOnBadPath) {
  TraceBuffer buf;
  EXPECT_FALSE(write_pcap_file("/nonexistent-dir/x.pcap", buf));
}

}  // namespace
}  // namespace reorder::trace
