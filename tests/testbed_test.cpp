// Tests for the Testbed topology builder itself: wiring, trace taps,
// backend fan-out, and whole-experiment determinism at the byte level.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "probe/prober.hpp"
#include "trace/pcap_writer.hpp"

namespace reorder::core {
namespace {

using util::Duration;

TEST(Testbed, DefaultsProvideListeners) {
  Testbed bed{TestbedConfig{}};
  EXPECT_EQ(bed.backend_count(), 1u);
  EXPECT_EQ(bed.balancer(), nullptr);
  const auto& listeners = bed.remote().config().listeners;
  EXPECT_TRUE(listeners.contains(kDiscardPort));
  EXPECT_TRUE(listeners.contains(kEchoPort));
  EXPECT_TRUE(listeners.contains(kHttpPort));
}

TEST(Testbed, ShaperHandlesExposedWhenConfigured) {
  TestbedConfig cfg;
  cfg.forward.swap_probability = 0.2;
  cfg.forward.striped = sim::StripedLinkConfig{};
  Testbed bed{cfg};
  ASSERT_NE(bed.forward_shaper(), nullptr);
  EXPECT_DOUBLE_EQ(bed.forward_shaper()->swap_probability(), 0.2);
  EXPECT_NE(bed.forward_striped(), nullptr);
  EXPECT_EQ(bed.reverse_shaper(), nullptr);
}

TEST(Testbed, TapsSeeBothDirections) {
  Testbed bed{TestbedConfig{}};
  probe::ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), kDiscardPort),
                              probe::ProbeConnectionOptions{}};
  bool connected = false;
  conn.connect([&](bool ok) { connected = ok; });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(10), [&] { return !connected; });
  ASSERT_TRUE(connected);
  bed.loop().run();  // drain the in-flight handshake ACK to the remote
  // SYN + final ACK at the remote ingress; SYN/ACK at remote egress and
  // probe ingress.
  EXPECT_GE(bed.remote_ingress_trace().size(), 2u);
  EXPECT_GE(bed.remote_egress_trace().size(), 1u);
  EXPECT_EQ(bed.remote_egress_trace().size(), bed.probe_ingress_trace().size())
      << "clean path: everything the remote sent arrived at the probe";
  // The captured traces are pcap-writable end to end.
  EXPECT_TRUE(trace::write_pcap_file("/tmp/testbed_tap_test.pcap", bed.remote_ingress_trace()));
  std::remove("/tmp/testbed_tap_test.pcap");
}

TEST(Testbed, BackendsShareTheVip) {
  TestbedConfig cfg;
  cfg.backends = 3;
  Testbed bed{cfg};
  EXPECT_EQ(bed.backend_count(), 3u);
  ASSERT_NE(bed.balancer(), nullptr);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bed.remote(i).address(), bed.remote_addr());
  }
}

TEST(Testbed, RunSyncReportsFailureWhenTestCannotComplete) {
  TestbedConfig cfg;
  cfg.forward.loss_probability = 1.0;
  Testbed bed{cfg};
  SingleConnectionOptions opts;
  opts.connection.max_syn_retries = 0;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection", 0, opts});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  EXPECT_FALSE(result.admissible);
}

/// Completes only after `delay` of virtual time — past any run_sync
/// deadline the tests below choose.
class SlowTest final : public ReorderTest {
 public:
  SlowTest(sim::EventLoop& loop, Duration delay) : loop_{loop}, delay_{delay} {}
  std::string name() const override { return "slow"; }
  void run(const TestRunConfig&, std::function<void(TestRunResult)> done) override {
    loop_.schedule(delay_, [done = std::move(done)] {
      TestRunResult r;
      r.test_name = "slow";
      r.note = "finished late";
      done(std::move(r));
    });
  }

 private:
  sim::EventLoop& loop_;
  Duration delay_;
};

TEST(Testbed, RunSyncAbandonedCompletionLeavesNoResidue) {
  // Regression: run_sync used to hand the test a reference to a
  // stack-local completion slot. A run abandoned at the deadline has no
  // abort path, so its completion fired during the NEXT run_sync on the
  // same loop — writing through a dangling stack pointer. The slot is
  // heap-shared now; the late write lands there and is discarded.
  Testbed bed{TestbedConfig{}};
  SlowTest slow{bed.loop(), Duration::seconds(30)};
  const auto abandoned = bed.run_sync(slow, TestRunConfig{}, /*deadline_s=*/1);
  EXPECT_FALSE(abandoned.admissible);

  // The abandoned completion (t=30s) fires inside this run: the fresh
  // result must be untouched by it.
  SlowTest prompt{bed.loop(), Duration::seconds(40)};
  const auto fresh = bed.run_sync(prompt, TestRunConfig{}, /*deadline_s=*/60);
  EXPECT_TRUE(fresh.admissible);
  EXPECT_EQ(fresh.note, "finished late");
  EXPECT_EQ(fresh.test_name, "slow");
}

TEST(Testbed, WholeExperimentIsByteDeterministic) {
  // Strongest determinism check: the full pcap of a run (every packet,
  // every timestamp, every IPID) must be byte-identical across replays.
  auto run_and_dump = [](const char* path) {
    TestbedConfig cfg;
    cfg.seed = 20260610;
    cfg.forward.swap_probability = 0.25;
    cfg.reverse.swap_probability = 0.10;
    cfg.forward.loss_probability = 0.05;
    Testbed bed{cfg};
    auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
    TestRunConfig run;
    run.samples = 15;
    (void)bed.run_sync(*test, run);
    EXPECT_TRUE(trace::write_pcap_file(path, bed.remote_ingress_trace()));
  };
  run_and_dump("/tmp/testbed_det_a.pcap");
  run_and_dump("/tmp/testbed_det_b.pcap");

  std::ifstream a{"/tmp/testbed_det_a.pcap", std::ios::binary};
  std::ifstream b{"/tmp/testbed_det_b.pcap", std::ios::binary};
  const std::vector<char> ba{std::istreambuf_iterator<char>(a),
                             std::istreambuf_iterator<char>()};
  const std::vector<char> bb{std::istreambuf_iterator<char>(b),
                             std::istreambuf_iterator<char>()};
  EXPECT_FALSE(ba.empty());
  EXPECT_EQ(ba, bb);
  std::remove("/tmp/testbed_det_a.pcap");
  std::remove("/tmp/testbed_det_b.pcap");
}

TEST(Testbed, PathDescribeListsStages) {
  sim::Path path;
  sim::EventLoop loop;
  EXPECT_EQ(path.describe(), "wire");
  path.emplace<sim::LinkStage>(loop, sim::LinkParams{});
  path.emplace<sim::SwapShaper>(loop, sim::SwapShaperConfig{0.1, Duration::millis(10)},
                                util::Rng{1});
  EXPECT_EQ(path.describe(), "link > swap-shaper");
  EXPECT_EQ(path.stage_count(), 2u);
}

}  // namespace
}  // namespace reorder::core
