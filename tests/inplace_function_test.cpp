// Unit tests for the two allocation-avoidance primitives the scheduler hot
// path is built on: util::InplaceFunction (move-only small-buffer callback)
// and util::BufferPool (payload vector recycling).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "util/buffer_pool.hpp"
#include "util/inplace_function.hpp"

namespace reorder::util {
namespace {

using Fn = InplaceFunction<void(), 64>;

TEST(InplaceFunction, DefaultIsEmpty) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  Fn g{nullptr};
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InplaceFunction, InvokesCapturedState) {
  int hits = 0;
  Fn f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  Fn f = [&hits] { ++hits; };
  Fn g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceFunction, MoveAssignDestroysPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  EXPECT_EQ(counter.use_count(), 1);
  Fn f = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  f = Fn{[] {}};
  EXPECT_EQ(counter.use_count(), 1);  // old capture released
}

TEST(InplaceFunction, ResetReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  Fn f = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  f.reset();
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunction, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    Fn f = [counter] { ++*counter; };
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceFunction, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(41);
  InplaceFunction<int(), 64> f = [p = std::move(owned)] { return *p + 1; };
  InplaceFunction<int(), 64> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InplaceFunction, ArgumentsAndReturnValues) {
  InplaceFunction<int(int, int), 32> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(20, 22), 42);
  // By-value move-only argument passes through.
  InplaceFunction<int(std::unique_ptr<int>), 32> deref = [](std::unique_ptr<int> p) {
    return *p;
  };
  EXPECT_EQ(deref(std::make_unique<int>(7)), 7);
}

TEST(InplaceFunction, SelfMoveAssignIsSafe) {
  int hits = 0;
  Fn f = [&hits] { ++hits; };
  Fn& alias = f;
  f = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
}

TEST(BufferPool, AcquireFreshThenRecycled) {
  BufferPool pool;
  auto a = pool.acquire(100);
  EXPECT_GE(a.capacity(), 100u);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(pool.stats().misses, 1u);

  a.assign(100, 0x5a);
  const auto* data = a.data();
  pool.release(std::move(a));
  EXPECT_EQ(pool.idle(), 1u);

  auto b = pool.acquire(50);
  EXPECT_EQ(b.data(), data);  // same buffer came back
  EXPECT_TRUE(b.empty());     // but cleared
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(BufferPool, ReleaseIgnoresCapacityFreeBuffers) {
  BufferPool pool;
  pool.release(std::vector<std::uint8_t>{});
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(BufferPool, BoundsIdleBuffers) {
  BufferPool pool{2};
  for (int i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> buf;
    buf.reserve(16);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.idle(), 2u);
  EXPECT_EQ(pool.stats().returned, 2u);
  EXPECT_EQ(pool.stats().dropped, 2u);
}

TEST(BufferPool, AcquireGrowsRecycledBufferToHint) {
  BufferPool pool;
  std::vector<std::uint8_t> small;
  small.reserve(8);
  pool.release(std::move(small));
  auto big = pool.acquire(4096);
  EXPECT_GE(big.capacity(), 4096u);
}

}  // namespace
}  // namespace reorder::util
