// Deep tests for the Dual Connection Test: verdicts in both directions,
// IPID admissibility across host policies, load balancers, loss.
#include <gtest/gtest.h>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "trace/analyzer.hpp"

namespace reorder::core {
namespace {

using util::Duration;

TestbedConfig with_ipid(tcpip::IpidPolicy policy, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.remote = default_remote_config();
  cfg.remote.ipid_policy = policy;
  return cfg;
}

TEST(DualConnDeep, ForwardSwapsDetected) {
  auto cfg = with_ipid(tcpip::IpidPolicy::kGlobalCounter, 201);
  cfg.forward.swap_probability = 1.0;
  Testbed bed{cfg};
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  TestRunConfig run;
  run.samples = 12;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.forward.reordered, 12);
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(DualConnDeep, ReverseSwapsDetected) {
  auto cfg = with_ipid(tcpip::IpidPolicy::kGlobalCounter, 202);
  cfg.reverse.swap_probability = 1.0;
  Testbed bed{cfg};
  DualConnectionOptions opts;
  opts.validate_ipid = false;  // validation's lock-step probing confuses a p=1 shaper pairing
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection", 0, opts});
  TestRunConfig run;
  run.samples = 12;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.reverse.reordered, 12);
  EXPECT_EQ(result.forward.reordered, 0)
      << "IPIDs still order the remote transmissions correctly";
}

TEST(DualConnDeep, PerDestinationCounterIsAdmissible) {
  // Paper footnote 1: Solaris keeps per-destination IPID counters; since
  // both connections share the destination this still works.
  Testbed bed{with_ipid(tcpip::IpidPolicy::kPerDestination, 203)};
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  TestRunConfig run;
  run.samples = 10;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.forward.in_order, 10);
  EXPECT_EQ(test->last_validation().verdict, IpidVerdict::kSharedMonotonic);
}

TEST(DualConnDeep, RandomIpidRuledOut) {
  Testbed bed{with_ipid(tcpip::IpidPolicy::kRandom, 204)};
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  EXPECT_FALSE(result.admissible);
  EXPECT_NE(result.note.find("random"), std::string::npos) << result.note;
  EXPECT_EQ(test->last_validation().verdict, IpidVerdict::kRandom);
  EXPECT_TRUE(result.samples.empty()) << "no spurious measurements on inadmissible hosts";
}

TEST(DualConnDeep, ConstantZeroIpidRuledOut) {
  Testbed bed{with_ipid(tcpip::IpidPolicy::kConstantZero, 205)};
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  EXPECT_FALSE(result.admissible);
  EXPECT_NE(result.note.find("constant-zero"), std::string::npos) << result.note;
}

TEST(DualConnDeep, RandomIncrementIsAdmissible) {
  // Small random increments still form a shared increasing sequence.
  Testbed bed{with_ipid(tcpip::IpidPolicy::kRandomIncrement, 206)};
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  TestRunConfig run;
  run.samples = 10;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.forward.in_order, 10);
}

TEST(DualConnDeep, LoadBalancerRuledOut) {
  // Fig. 3: two connections land on different backends with disjoint IPID
  // spaces; the validator must refuse to measure.
  TestbedConfig cfg;
  cfg.seed = 207;
  cfg.backends = 2;
  Testbed bed{cfg};
  // Pick local ports until the two connections hash to different backends:
  // with the default salt and sequential ports this happens immediately for
  // nearly every seed; assert it held.
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  if (!result.admissible) {
    EXPECT_NE(result.note.find("load balancer"), std::string::npos) << result.note;
  } else {
    // Both connections happened to hash to the same backend — then the
    // measurements are in fact valid. Verify that outcome honestly.
    EXPECT_EQ(result.forward.reordered, 0);
  }
}

TEST(DualConnDeep, SkipValidationMeasuresAnyway) {
  Testbed bed{with_ipid(tcpip::IpidPolicy::kGlobalCounter, 208)};
  DualConnectionOptions opts;
  opts.validate_ipid = false;
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection", 0, opts});
  TestRunConfig run;
  run.samples = 6;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.forward.in_order, 6);
}

TEST(DualConnDeep, LossYieldsLostSamples) {
  auto cfg = with_ipid(tcpip::IpidPolicy::kGlobalCounter, 209);
  cfg.forward.loss_probability = 0.4;
  Testbed bed{cfg};
  DualConnectionOptions opts;
  opts.validate_ipid = false;  // keep the preamble short under heavy loss
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection", 0, opts});
  TestRunConfig run;
  run.samples = 20;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GT(result.forward.lost, 0) << "40% loss must kill some samples";
  EXPECT_GT(result.forward.in_order, 0);
  EXPECT_EQ(result.forward.lost, result.reverse.lost)
      << "a lost sample is lost in both directions";
}

TEST(DualConnDeep, VerdictsMatchGroundTruth) {
  auto cfg = with_ipid(tcpip::IpidPolicy::kGlobalCounter, 210);
  cfg.forward.swap_probability = 0.25;
  cfg.reverse.swap_probability = 0.25;
  Testbed bed{cfg};
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  TestRunConfig run;
  run.samples = 60;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  int fwd_checked = 0;
  int rev_checked = 0;
  for (const auto& s : result.samples) {
    if (s.forward == Ordering::kInOrder || s.forward == Ordering::kReordered) {
      const auto truth =
          trace::pair_ground_truth(bed.remote_ingress_trace(), s.fwd_uid_first, s.fwd_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        EXPECT_EQ(s.forward == Ordering::kReordered,
                  truth == trace::PairGroundTruth::kReordered);
        ++fwd_checked;
      }
    }
    if ((s.reverse == Ordering::kInOrder || s.reverse == Ordering::kReordered) &&
        s.rev_uid_first != 0 && s.rev_uid_second != 0) {
      // Reverse ground truth: compare probe arrival order (recorded in the
      // sample) against the remote's transmission order (egress tap).
      const auto truth =
          trace::pair_ground_truth(bed.remote_egress_trace(), s.rev_uid_first, s.rev_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        EXPECT_EQ(s.reverse == Ordering::kReordered,
                  truth == trace::PairGroundTruth::kReordered);
        ++rev_checked;
      }
    }
  }
  EXPECT_GT(fwd_checked, 40);
  EXPECT_GT(rev_checked, 40);
}

TEST(DualConnDeep, BothRemoteConnectionsClosedAfterRun) {
  Testbed bed{with_ipid(tcpip::IpidPolicy::kGlobalCounter, 211)};
  auto test = TestRegistry::global().create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  TestRunConfig run;
  run.samples = 4;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  bed.loop().run();
  EXPECT_EQ(bed.remote().active_connections(), 0u);
}

}  // namespace
}  // namespace reorder::core
