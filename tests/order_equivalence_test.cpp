// Differential validation of the indexed-heap scheduler against the
// retained std::map reference implementation: every canonical scenario is
// replayed on a fixed seed under both queue policies, and the *entire*
// executed event sequence — (timestamp, scheduling sequence number) of every
// event the loop runs — must be bit-for-bit identical, along with every
// verdict the measurement extracts. This is the guarantee that swapping the
// scheduler changed the constant factors and nothing else.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "core/survey_engine.hpp"
#include "core/testbed.hpp"

namespace reorder::core {
namespace {

using sim::EventLoop;
using ExecutedEvent = std::pair<std::int64_t, std::uint64_t>;

/// Flattened comparable image of one scenario cell.
struct CellDigest {
  std::string test;
  std::int64_t gap_ns;
  int round;
  bool admissible;
  int fwd_in_order, fwd_reordered, fwd_ambiguous, fwd_lost;
  int rev_in_order, rev_reordered, rev_ambiguous, rev_lost;
  std::vector<int> sample_verdicts;  // (forward, reverse) per sample, packed
  friend bool operator==(const CellDigest&, const CellDigest&) = default;
};

struct Replay {
  std::vector<ExecutedEvent> events;
  std::vector<CellDigest> cells;
};

Replay replay_scenario(const ScenarioSpec& spec, EventLoop::QueuePolicy policy) {
  Replay out;
  TestbedConfig cfg = spec.testbed;
  cfg.scheduler = policy;
  Testbed bed{cfg};
  bed.loop().set_executed_hook([&out](util::TimePoint at, std::uint64_t seq) {
    out.events.emplace_back(at.ns(), seq);
  });
  const ScenarioResult result = run_scenario(bed, spec);
  for (const auto& m : result.measurements) {
    CellDigest cell;
    cell.test = m.test;
    cell.gap_ns = m.gap.ns();
    cell.round = m.round;
    cell.admissible = m.result.admissible;
    cell.fwd_in_order = m.result.forward.in_order;
    cell.fwd_reordered = m.result.forward.reordered;
    cell.fwd_ambiguous = m.result.forward.ambiguous;
    cell.fwd_lost = m.result.forward.lost;
    cell.rev_in_order = m.result.reverse.in_order;
    cell.rev_reordered = m.result.reverse.reordered;
    cell.rev_ambiguous = m.result.reverse.ambiguous;
    cell.rev_lost = m.result.reverse.lost;
    for (const auto& s : m.result.samples) {
      cell.sample_verdicts.push_back(static_cast<int>(s.forward) * 8 +
                                     static_cast<int>(s.reverse));
    }
    out.cells.push_back(std::move(cell));
  }
  return out;
}

class OrderEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(OrderEquivalence, HeapReplaysReferenceMapExactly) {
  ScenarioSpec spec = scenarios::by_name(GetParam(), /*seed=*/23);
  // Keep the grid small enough for a unit test while still driving every
  // stage, timer, and cancellation path the scenario uses.
  spec.run.samples = 12;
  spec.rounds = 1;

  const Replay heap = replay_scenario(spec, EventLoop::QueuePolicy::kIndexedHeap);
  const Replay map = replay_scenario(spec, EventLoop::QueuePolicy::kReferenceMap);

  ASSERT_FALSE(heap.events.empty());
  EXPECT_EQ(heap.events.size(), map.events.size());
  EXPECT_EQ(heap.events, map.events) << "executed event sequences diverged";
  ASSERT_EQ(heap.cells.size(), map.cells.size());
  for (std::size_t i = 0; i < heap.cells.size(); ++i) {
    EXPECT_EQ(heap.cells[i], map.cells[i]) << "cell " << i << " (" << heap.cells[i].test << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(CanonicalScenarios, OrderEquivalence,
                         ::testing::ValuesIn(scenarios::names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The same equivalence holds for the async multi-target survey engine —
// watchdog timers, cancellations and between-measurement pacing included.
TEST(OrderEquivalenceSurvey, SurveyEngineIdenticalAcrossPolicies) {
  auto drive = [](EventLoop::QueuePolicy policy) {
    Replay out;
    TestbedConfig cfg;
    cfg.seed = 29;
    cfg.forward.swap_probability = 0.2;
    cfg.scheduler = policy;
    Testbed bed{cfg};
    bed.loop().set_executed_hook([&out](util::TimePoint at, std::uint64_t seq) {
      out.events.emplace_back(at.ns(), seq);
    });
    SurveyEngine engine{bed.loop()};
    engine.add_target("host-a", bed.probe(), bed.remote_addr(),
                      {TestSpec{"syn"}, TestSpec{"single-connection"}});
    TestRunConfig run;
    run.samples = 8;
    engine.run(run, /*rounds=*/2, util::Duration::millis(50));
    for (const auto& m : engine.measurements()) {
      CellDigest cell{};
      cell.test = m.test;
      cell.admissible = m.result.admissible;
      cell.fwd_in_order = m.result.forward.in_order;
      cell.fwd_reordered = m.result.forward.reordered;
      cell.fwd_ambiguous = m.result.forward.ambiguous;
      cell.fwd_lost = m.result.forward.lost;
      out.cells.push_back(std::move(cell));
    }
    return out;
  };
  const Replay heap = drive(EventLoop::QueuePolicy::kIndexedHeap);
  const Replay map = drive(EventLoop::QueuePolicy::kReferenceMap);
  ASSERT_FALSE(heap.events.empty());
  EXPECT_EQ(heap.events, map.events);
  ASSERT_EQ(heap.cells.size(), map.cells.size());
  for (std::size_t i = 0; i < heap.cells.size(); ++i) {
    EXPECT_EQ(heap.cells[i], map.cells[i]) << "measurement " << i;
  }
}

}  // namespace
}  // namespace reorder::core
