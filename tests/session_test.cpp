// Tests for the SurveyEngine driver (single-target behaviour — the old
// MeasurementSession contract) and its statistics helpers.
#include <gtest/gtest.h>

#include "core/survey_engine.hpp"
#include "core/testbed.hpp"

namespace reorder::core {
namespace {

using util::Duration;

TEST(Session, RoundRobinProducesAllMeasurements) {
  TestbedConfig cfg;
  cfg.seed = 501;
  cfg.forward.swap_probability = 0.1;
  Testbed bed{cfg};

  SurveyEngine session{bed.loop()};
  session.add_target("remote", bed.probe(), bed.remote_addr(),
                     {TestSpec{"single-connection"}, TestSpec{"syn"}});

  TestRunConfig run;
  run.samples = 10;
  const auto& ms = session.run(run, /*rounds=*/3, Duration::millis(100));
  ASSERT_EQ(ms.size(), 6u);  // 2 tests x 3 rounds
  EXPECT_EQ(ms[0].test, "single-connection");
  EXPECT_EQ(ms[1].test, "syn");
  EXPECT_LT(ms[0].at, ms[1].at);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_TRUE(ms[i].result.admissible);
    EXPECT_EQ(ms[i].result.forward.total(), 10);
    // The log keeps summaries only; per-sample data lives columnar in
    // the store.
    EXPECT_TRUE(ms[i].result.samples.empty());
    const auto row = session.store().measurement(i);
    EXPECT_EQ(row.samples_end - row.samples_begin, 10u);
  }
  EXPECT_EQ(session.store().sample_count(), 60u);
}

TEST(Session, SeriesAndAggregate) {
  TestbedConfig cfg;
  cfg.seed = 502;
  cfg.forward.swap_probability = 0.25;
  Testbed bed{cfg};

  SurveyEngine session{bed.loop()};
  session.add_target("remote", bed.probe(), bed.remote_addr(), {TestSpec{"syn"}});

  TestRunConfig run;
  run.samples = 20;
  session.run(run, 5, Duration::millis(50));

  const auto series = session.rate_series("remote", "syn", /*forward=*/true);
  ASSERT_EQ(series.size(), 5u);
  const auto agg = session.aggregate("remote", "syn", true);
  EXPECT_EQ(agg.total(), 100);
  EXPECT_NEAR(agg.rate_or(0.0), 0.25, 0.15);
  // Aggregate equals the sample-weighted union of the series measurements.
  EXPECT_EQ(agg.usable(), agg.in_order + agg.reordered);
}

TEST(Session, CompareEquivalentTestsSupportsNull) {
  TestbedConfig cfg;
  cfg.seed = 503;
  cfg.forward.swap_probability = 0.15;
  Testbed bed{cfg};

  SurveyEngine session{bed.loop()};
  session.add_target("remote", bed.probe(), bed.remote_addr(),
                     {TestSpec{"single-connection"}, TestSpec{"syn"}});

  TestRunConfig run;
  run.samples = 25;
  session.run(run, 8, Duration::millis(50));

  const auto cmp = session.compare("remote", "single-connection", "syn", true);
  EXPECT_EQ(cmp.n, 8u);
  EXPECT_TRUE(cmp.null_supported)
      << "two unbiased tests of the same stationary process must agree at 99.9%; mean diff = "
      << cmp.mean_difference;
}

TEST(Session, UnknownTargetYieldsEmptySeries) {
  sim::EventLoop loop;
  SurveyEngine session{loop};
  EXPECT_TRUE(session.rate_series("nope", "syn", true).empty());
  EXPECT_EQ(session.aggregate("nope", "syn", true).total(), 0);
}

TEST(Session, CompareErrorPaths) {
  // The paired-difference statistic needs >= 2 usable pairs; a survey too
  // short to provide them must surface the error, not fabricate a CI.
  TestbedConfig cfg;
  cfg.seed = 504;
  Testbed bed{cfg};

  SurveyEngine session{bed.loop()};
  session.add_target("remote", bed.probe(), bed.remote_addr(),
                     {TestSpec{"single-connection"}, TestSpec{"syn"}});
  TestRunConfig run;
  run.samples = 5;
  session.run(run, /*rounds=*/1, Duration::millis(50));

  EXPECT_THROW(session.compare("remote", "single-connection", "syn", true),
               std::invalid_argument);
  // An unknown test name truncates both series to zero pairs: same error.
  EXPECT_THROW(session.compare("remote", "single-connection", "no-such-test", true),
               std::invalid_argument);
}

TEST(Session, AggregateIsIdempotent) {
  TestbedConfig cfg;
  cfg.seed = 505;
  cfg.forward.swap_probability = 0.2;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 30;
  TestRunResult result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);

  const auto fwd = result.forward;
  const auto rev = result.reverse;
  ASSERT_GT(fwd.total(), 0);
  // aggregate() recomputes from samples; calling it repeatedly must not
  // double-count.
  result.aggregate();
  result.aggregate();
  EXPECT_EQ(result.forward.in_order, fwd.in_order);
  EXPECT_EQ(result.forward.reordered, fwd.reordered);
  EXPECT_EQ(result.forward.ambiguous, fwd.ambiguous);
  EXPECT_EQ(result.forward.lost, fwd.lost);
  EXPECT_EQ(result.reverse.in_order, rev.in_order);
  EXPECT_EQ(result.reverse.reordered, rev.reordered);
  EXPECT_EQ(result.reverse.ambiguous, rev.ambiguous);
  EXPECT_EQ(result.reverse.lost, rev.lost);
}

}  // namespace
}  // namespace reorder::core
