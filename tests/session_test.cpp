// Tests for the MeasurementSession driver and its statistics helpers.
#include <gtest/gtest.h>

#include "core/measurement_session.hpp"
#include "core/single_connection_test.hpp"
#include "core/syn_test.hpp"
#include "core/testbed.hpp"

namespace reorder::core {
namespace {

using util::Duration;

TEST(Session, RoundRobinProducesAllMeasurements) {
  TestbedConfig cfg;
  cfg.seed = 501;
  cfg.forward.swap_probability = 0.1;
  Testbed bed{cfg};

  MeasurementSession session{bed.loop()};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(
      std::make_unique<SingleConnectionTest>(bed.probe(), bed.remote_addr(), kDiscardPort));
  tests.push_back(std::make_unique<SynTest>(bed.probe(), bed.remote_addr(), kDiscardPort));
  session.add_target("remote", std::move(tests));

  TestRunConfig run;
  run.samples = 10;
  const auto& ms = session.run(run, /*rounds=*/3, Duration::millis(100));
  ASSERT_EQ(ms.size(), 6u);  // 2 tests x 3 rounds
  EXPECT_EQ(ms[0].test, "single-connection");
  EXPECT_EQ(ms[1].test, "syn");
  EXPECT_LT(ms[0].at, ms[1].at);
  for (const auto& m : ms) {
    EXPECT_TRUE(m.result.admissible);
    EXPECT_EQ(static_cast<int>(m.result.samples.size()), 10);
  }
}

TEST(Session, SeriesAndAggregate) {
  TestbedConfig cfg;
  cfg.seed = 502;
  cfg.forward.swap_probability = 0.25;
  Testbed bed{cfg};

  MeasurementSession session{bed.loop()};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(std::make_unique<SynTest>(bed.probe(), bed.remote_addr(), kDiscardPort));
  session.add_target("remote", std::move(tests));

  TestRunConfig run;
  run.samples = 20;
  session.run(run, 5, Duration::millis(50));

  const auto series = session.rate_series("remote", "syn", /*forward=*/true);
  ASSERT_EQ(series.size(), 5u);
  const auto agg = session.aggregate("remote", "syn", true);
  EXPECT_EQ(agg.total(), 100);
  EXPECT_NEAR(agg.rate(), 0.25, 0.15);
  // Aggregate equals the sample-weighted union of the series measurements.
  EXPECT_EQ(agg.usable(), agg.in_order + agg.reordered);
}

TEST(Session, CompareEquivalentTestsSupportsNull) {
  TestbedConfig cfg;
  cfg.seed = 503;
  cfg.forward.swap_probability = 0.15;
  Testbed bed{cfg};

  MeasurementSession session{bed.loop()};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(
      std::make_unique<SingleConnectionTest>(bed.probe(), bed.remote_addr(), kDiscardPort));
  tests.push_back(std::make_unique<SynTest>(bed.probe(), bed.remote_addr(), kDiscardPort));
  session.add_target("remote", std::move(tests));

  TestRunConfig run;
  run.samples = 25;
  session.run(run, 8, Duration::millis(50));

  const auto cmp = session.compare("remote", "single-connection", "syn", true);
  EXPECT_EQ(cmp.n, 8u);
  EXPECT_TRUE(cmp.null_supported)
      << "two unbiased tests of the same stationary process must agree at 99.9%; mean diff = "
      << cmp.mean_difference;
}

TEST(Session, UnknownTargetYieldsEmptySeries) {
  sim::EventLoop loop;
  MeasurementSession session{loop};
  EXPECT_TRUE(session.rate_series("nope", "syn", true).empty());
  EXPECT_EQ(session.aggregate("nope", "syn", true).total(), 0);
}

}  // namespace
}  // namespace reorder::core
