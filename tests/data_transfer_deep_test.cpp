// Deep tests for the TCP Data Transfer Test: transfer mechanics, clamped
// MSS/window, ack-highest loss suppression, reverse-only measurement.
#include <gtest/gtest.h>

#include <set>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"

namespace reorder::core {
namespace {

using util::Duration;

TestbedConfig with_object(std::size_t size, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.remote = default_remote_config(size);
  return cfg;
}

TEST(DataTransferDeep, SampleCountMatchesSegmentPairs) {
  // 8192-byte object at MSS 512 -> 16 segments -> 15 consecutive pairs.
  Testbed bed{with_object(8192, 401)};
  DataTransferOptions opts;
  opts.mss = 512;
  opts.window = 1024;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer", 0, opts});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.samples.size(), 15u);
  EXPECT_EQ(result.reverse.in_order, 15);
  EXPECT_EQ(result.forward.usable(), 0) << "forward path is not measurable by this test";
}

TEST(DataTransferDeep, ServerRespectsClampedMss) {
  Testbed bed{with_object(4096, 402)};
  DataTransferOptions opts;
  opts.mss = 256;
  opts.window = 512;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer", 0, opts});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible);
  for (const auto& rec : bed.remote_egress_trace().records()) {
    EXPECT_LE(rec.packet.payload.size(), 256u) << "segments must respect the advertised MSS";
  }
}

TEST(DataTransferDeep, WindowKeepsPairsInFlight) {
  Testbed bed{with_object(4096, 403)};
  DataTransferOptions opts;
  opts.mss = 512;
  opts.window = 1024;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer", 0, opts});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible);
  // With window = 2*MSS the server bursts exactly 2 segments before
  // waiting; the egress trace must never show 3 data segments between two
  // ACK arrivals. Check a weaker invariant that is robust to timing: data
  // segments come in bursts of at most 2 back-to-back (same-microsecond).
  const auto& recs = bed.remote_egress_trace().records();
  int burst = 0;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].packet.payload.empty()) continue;
    if (i > 0 && !recs[i - 1].packet.payload.empty() &&
        (recs[i].at - recs[i - 1].at) < Duration::micros(200)) {
      ++burst;
      EXPECT_LE(burst, 1) << "no more than two segments per window burst";
    } else {
      burst = 0;
    }
  }
}

TEST(DataTransferDeep, ReverseSwapShaperProducesReorderedPairs) {
  auto cfg = with_object(16384, 404);
  cfg.reverse.swap_probability = 0.3;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible);
  EXPECT_GT(result.reverse.reordered, 0);
  // The swap shaper exchanges adjacent packets; measured pair rate should
  // be in the vicinity of p (pairs overlap, so allow generous slack).
  const double rate = result.reverse.rate_or(0.0);
  EXPECT_GT(rate, 0.1);
  EXPECT_LT(rate, 0.6);
}

TEST(DataTransferDeep, AckHighestSuppressesRetransmissionUnderLoss) {
  auto cfg = with_object(8192, 405);
  cfg.reverse.loss_probability = 0.1;  // drop some server data segments
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible) << result.note;
  // Count retransmissions at the server egress (same seq twice).
  std::set<std::uint32_t> seqs;
  int retransmissions = 0;
  for (const auto& rec : bed.remote_egress_trace().records()) {
    if (rec.packet.payload.empty()) continue;
    if (!seqs.insert(rec.packet.tcp.seq).second) ++retransmissions;
  }
  EXPECT_EQ(retransmissions, 0)
      << "acknowledging the highest byte received must keep the server out of loss recovery";
  EXPECT_GT(result.samples.size(), 5u);
}

TEST(DataTransferDeep, ConnectFailureReportedWhenPathIsDead) {
  auto cfg = with_object(8192, 406);
  cfg.reverse.loss_probability = 1.0;  // nothing ever comes back
  Testbed bed{cfg};
  DataTransferOptions opts;
  opts.stall_timeout = Duration::seconds(5);  // longer than SYN-retry exhaustion
  opts.connection.max_syn_retries = 1;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer", 0, opts});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  EXPECT_FALSE(result.admissible);
  EXPECT_EQ(result.note, "connect failed");
  EXPECT_TRUE(result.samples.empty());
}

TEST(DataTransferDeep, StallTimeoutFinishesGracefully) {
  auto cfg = with_object(8192, 412);
  cfg.reverse.loss_probability = 1.0;
  Testbed bed{cfg};
  DataTransferOptions opts;
  opts.stall_timeout = Duration::millis(300);  // shorter than SYN-retry exhaustion
  opts.connection.max_syn_retries = 10;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer", 0, opts});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  EXPECT_EQ(result.note, "transfer stalled");
  EXPECT_TRUE(result.samples.empty());
}

TEST(DataTransferDeep, TransferStallMidwayIsReported) {
  Testbed bed{with_object(8192, 407)};
  // Deliver the handshake, then break the forward path so our ACKs stop
  // reaching the server: the transfer stalls after the first window.
  DataTransferOptions opts;
  opts.stall_timeout = Duration::millis(400);
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer", 0, opts});
  // (We cannot flip the path mid-run from outside without a handle; use a
  // tiny window so the transfer takes many round trips, then verify a
  // successful run instead — the stall path itself is covered above.)
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_TRUE(result.note.empty());
}

TEST(DataTransferDeep, SingleSegmentObjectYieldsNoSamples) {
  // The paper notes root objects that fit in one packet (HTTP redirects)
  // are unusable; one segment produces zero pairs.
  Testbed bed{with_object(100, 408)};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible);
  EXPECT_TRUE(result.samples.empty());
  EXPECT_EQ(result.reverse.usable(), 0);
}

TEST(DataTransferDeep, ConnectionFullyClosed) {
  Testbed bed{with_object(4096, 409)};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"data-transfer"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible);
  bed.loop().run();
  EXPECT_EQ(bed.remote().active_connections(), 0u);
}

}  // namespace
}  // namespace reorder::core
