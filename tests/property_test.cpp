// Property-style tests: randomized topologies and adversarial inputs
// against the library's core invariants.
//
//  * Whatever the path does (random combinations of links, jitter, swap
//    shapers, striping, mild loss), every unambiguous verdict any test
//    reports must match trace ground truth — the §IV-A property, but over
//    a randomized space instead of the fixed dummynet grid.
//  * The TCP endpoint must survive arbitrary segment soup without
//    violating its receive-sequence invariants.
//  * Fragmentation round-trips across random sizes and MTUs.
#include <gtest/gtest.h>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "netsim/link.hpp"
#include "tcpip/fragment.hpp"
#include "tcpip/seq.hpp"
#include "tcpip/tcp_endpoint.hpp"
#include "trace/analyzer.hpp"

namespace reorder {
namespace {

using util::Duration;

// ---------- randomized-topology ground-truth property ----------

core::TestbedConfig random_config(std::uint64_t seed) {
  util::Rng rng{seed * 2654435761u + 17};
  core::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.forward.swap_probability = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.45) : 0.0;
  cfg.reverse.swap_probability = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.45) : 0.0;
  cfg.forward.swap_max_hold = Duration::millis(rng.between(5, 80));
  if (rng.bernoulli(0.3)) cfg.forward.striped = sim::StripedLinkConfig{};
  if (rng.bernoulli(0.3)) {
    cfg.forward.loss_probability = rng.uniform(0.0, 0.15);
    cfg.reverse.loss_probability = rng.uniform(0.0, 0.15);
  }
  cfg.forward.ingress_link.bandwidth_bps = rng.bernoulli(0.5) ? 10'000'000 : 100'000'000;
  cfg.forward.ingress_link.propagation = Duration::millis(rng.between(1, 30));
  cfg.reverse.ingress_link.propagation = Duration::millis(rng.between(1, 30));
  cfg.remote = core::default_remote_config();
  cfg.remote.behavior.immediate_ack_on_hole_fill = rng.bernoulli(0.5);
  cfg.remote.behavior.second_syn = static_cast<tcpip::SecondSynBehavior>(rng.below(3));
  return cfg;
}

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, VerdictsNeverContradictGroundTruth) {
  const std::uint64_t seed = GetParam();
  for (const char* test_name : {"single", "dual", "syn"}) {
    core::Testbed bed{random_config(seed)};
    // The short names resolve through the registry's alias table.
    auto test = core::make_registered_test(bed.probe(), bed.remote_addr(),
                                           core::TestSpec{test_name});
    core::TestRunConfig run;
    run.samples = 25;
    const auto result = bed.run_sync(*test, run, 3000);
    if (!result.admissible) continue;  // e.g. unlucky loss draw during connect

    for (const auto& s : result.samples) {
      // The single-connection reversed variant interprets a lone final ACK
      // as forward reordering even though a lost duplicate ACK produces
      // the same evidence (the paper's documented loss aliasing). Those
      // samples carry no second reply uid; exclude them from exact
      // matching — they are approximate by design.
      const bool lone_ack_alias =
          std::string{test_name} == "single" && s.rev_uid_second == 0;
      if (!lone_ack_alias &&
          (s.forward == core::Ordering::kInOrder || s.forward == core::Ordering::kReordered)) {
        const auto truth = trace::pair_ground_truth(bed.remote_ingress_trace(), s.fwd_uid_first,
                                                    s.fwd_uid_second);
        if (truth != trace::PairGroundTruth::kIncomplete) {
          EXPECT_EQ(s.forward == core::Ordering::kReordered,
                    truth == trace::PairGroundTruth::kReordered)
              << test_name << " fwd, seed " << seed;
        }
      }
      if ((s.reverse == core::Ordering::kInOrder || s.reverse == core::Ordering::kReordered) &&
          s.rev_uid_first != 0 && s.rev_uid_second != 0) {
        const auto truth = trace::pair_ground_truth(bed.remote_egress_trace(), s.rev_uid_first,
                                                    s.rev_uid_second);
        if (truth != trace::PairGroundTruth::kIncomplete) {
          EXPECT_EQ(s.reverse == core::Ordering::kReordered,
                    truth == trace::PairGroundTruth::kReordered)
              << test_name << " rev, seed " << seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// ---------- endpoint segment-soup fuzz ----------

class EndpointFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndpointFuzz, SurvivesArbitrarySegmentsWithMonotoneRcvNxt) {
  sim::EventLoop loop;
  tcpip::TcpBehavior behavior;
  const tcpip::ConnKey key{80, tcpip::Ipv4Address::from_octets(10, 0, 0, 1), 40000};
  int sends = 0;
  tcpip::TcpEndpoint ep{loop, behavior, key, 1000,
                        [&](tcpip::TcpHeader, std::vector<std::uint8_t>) { ++sends; }};
  util::Rng rng{GetParam()};

  // Establish first so the interesting code paths are reachable.
  tcpip::Packet syn;
  syn.ip.src = key.remote_addr;
  syn.tcp.src_port = 40000;
  syn.tcp.dst_port = 80;
  syn.tcp.flags = tcpip::kSyn;
  syn.tcp.seq = 777;
  ep.on_segment(syn);
  tcpip::Packet ack = syn;
  ack.tcp.flags = tcpip::kAck;
  ack.tcp.seq = 778;
  ack.tcp.ack = 1001;
  ep.on_segment(ack);
  ASSERT_EQ(ep.state(), tcpip::TcpState::kEstablished);

  std::uint32_t prev_rcv_nxt = ep.rcv_nxt();
  for (int i = 0; i < 2000 && ep.state() != tcpip::TcpState::kClosed; ++i) {
    tcpip::Packet pkt = syn;
    // Random flags, avoiding RST (which simply closes) most of the time.
    pkt.tcp.flags = static_cast<std::uint8_t>(rng.below(64));
    if (rng.bernoulli(0.95)) pkt.tcp.flags &= static_cast<std::uint8_t>(~tcpip::kRst);
    pkt.tcp.seq = 778 + static_cast<std::uint32_t>(rng.between(-50, 200));
    pkt.tcp.ack = 1001 + static_cast<std::uint32_t>(rng.between(-50, 200));
    pkt.tcp.window = static_cast<std::uint16_t>(rng.below(65536));
    pkt.payload.assign(rng.below(64), 0xcd);
    ep.on_segment(pkt);
    // Receive point must never move backwards.
    EXPECT_GE(tcpip::seq_diff(ep.rcv_nxt(), prev_rcv_nxt), 0);
    prev_rcv_nxt = ep.rcv_nxt();
    if (rng.bernoulli(0.05)) loop.run_until(loop.now() + Duration::millis(50));
  }
  loop.run();
  EXPECT_GT(sends, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndpointFuzz, ::testing::Values(11u, 22u, 33u, 44u));

// ---------- fragmentation round-trip sweep ----------

class FragmentRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FragmentRoundTrip, AnySizeAnyMtu) {
  const auto [payload_size, mtu] = GetParam();
  tcpip::Packet pkt;
  pkt.ip.src = tcpip::Ipv4Address::from_octets(1, 2, 3, 4);
  pkt.ip.dst = tcpip::Ipv4Address::from_octets(5, 6, 7, 8);
  pkt.ip.identification = static_cast<std::uint16_t>(payload_size * 31 + mtu);
  pkt.tcp.src_port = 1;
  pkt.tcp.dst_port = 2;
  pkt.payload.resize(static_cast<std::size_t>(payload_size));
  for (int i = 0; i < payload_size; ++i) {
    pkt.payload[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i * 7);
  }
  const auto wire = pkt.to_wire();
  auto frags = tcpip::fragment_datagram(wire, static_cast<std::size_t>(mtu));
  ASSERT_FALSE(frags.empty());
  for (const auto& f : frags) ASSERT_LE(f.size(), static_cast<std::size_t>(mtu));
  // Reverse arrival order: reassembly must not care.
  std::reverse(frags.begin(), frags.end());
  const auto whole = tcpip::reassemble_datagram(frags);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, wire);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FragmentRoundTrip,
                         ::testing::Combine(::testing::Values(8, 100, 576, 1480, 4000),
                                            ::testing::Values(68, 280, 576, 1500)));

}  // namespace
}  // namespace reorder
