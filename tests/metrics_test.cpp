// Tests for the reordering metrics: verdict aggregation, RFC 4737-style
// sequence statistics, and the time-domain profile.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "trace/analyzer.hpp"

namespace reorder::core {
namespace {

using util::Duration;

// ---------- ReorderEstimate ----------

TEST(ReorderEstimate, RateOverUsableSamplesOnly) {
  ReorderEstimate e;
  e.add(Ordering::kInOrder);
  e.add(Ordering::kInOrder);
  e.add(Ordering::kReordered);
  e.add(Ordering::kAmbiguous);
  e.add(Ordering::kLost);
  EXPECT_EQ(e.usable(), 3);
  EXPECT_EQ(e.total(), 5);
  ASSERT_TRUE(e.rate().has_value());
  EXPECT_NEAR(*e.rate(), 1.0 / 3.0, 1e-12);
}

TEST(ReorderEstimate, EmptyRateIsNoData) {
  // No usable sample is "no data", not a clean path: rate() must not
  // return a number, and the display fallback must be explicit.
  ReorderEstimate e;
  EXPECT_FALSE(e.rate().has_value());
  EXPECT_DOUBLE_EQ(e.rate_or(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.rate_or(-1.0), -1.0);
  EXPECT_EQ(e.proportion().trials, 0);
  // Ambiguous/lost samples alone still do not constitute data.
  e.add(Ordering::kAmbiguous);
  e.add(Ordering::kLost);
  EXPECT_FALSE(e.rate().has_value());
}

TEST(ReorderEstimate, ProportionMatchesWilson) {
  ReorderEstimate e;
  for (int i = 0; i < 90; ++i) e.add(Ordering::kInOrder);
  for (int i = 0; i < 10; ++i) e.add(Ordering::kReordered);
  const auto p = e.proportion();
  EXPECT_DOUBLE_EQ(p.estimate, 0.1);
  EXPECT_LT(p.lower, 0.1);
  EXPECT_GT(p.upper, 0.1);
}

TEST(ReorderEstimate, CountersSurviveBeyond32Bits) {
  // Million-user surveys pool estimates far past 2^32 samples; the old
  // int counters wrapped negative. Regression: accumulate beyond 32 bits
  // and check every derived quantity stays exact.
  ReorderEstimate shard;
  shard.in_order = 3'000'000'000ull;  // > INT32_MAX on its own
  shard.reordered = 1'500'000'000ull;
  shard.ambiguous = 2'000'000'000ull;
  shard.lost = 1ull;

  ReorderEstimate pooled;
  pooled += shard;
  pooled += shard;
  EXPECT_EQ(pooled.in_order, 6'000'000'000ull);
  EXPECT_EQ(pooled.reordered, 3'000'000'000ull);
  EXPECT_EQ(pooled.usable(), 9'000'000'000ull);
  EXPECT_EQ(pooled.total(), 13'000'000'002ull);
  ASSERT_TRUE(pooled.rate().has_value());
  EXPECT_NEAR(*pooled.rate(), 1.0 / 3.0, 1e-12);

  // add() keeps counting past the 32-bit edge.
  ReorderEstimate edge;
  edge.in_order = 4'294'967'295ull;  // 2^32 - 1
  edge.add(Ordering::kInOrder);
  EXPECT_EQ(edge.in_order, 4'294'967'296ull);
}

TEST(TestRunResult, AggregateRecomputes) {
  TestRunResult r;
  SampleResult s;
  s.forward = Ordering::kReordered;
  s.reverse = Ordering::kInOrder;
  r.samples.assign(4, s);
  r.aggregate();
  EXPECT_EQ(r.forward.reordered, 4);
  EXPECT_EQ(r.reverse.in_order, 4);
}

TEST(Ordering, Names) {
  EXPECT_EQ(to_string(Ordering::kInOrder), "in-order");
  EXPECT_EQ(to_string(Ordering::kReordered), "reordered");
  EXPECT_EQ(to_string(Ordering::kAmbiguous), "ambiguous");
  EXPECT_EQ(to_string(Ordering::kLost), "lost");
}

// ---------- analyze_sequence (RFC 4737 style) ----------

TEST(SequenceStats, InOrderSequence) {
  const auto s = analyze_sequence({0, 1, 2, 3, 4});
  EXPECT_EQ(s.packets, 5u);
  EXPECT_EQ(s.reordered, 0u);
  EXPECT_DOUBLE_EQ(s.ratio, 0.0);
  EXPECT_EQ(s.max_extent, 0u);
  EXPECT_EQ(s.adjacent_swaps, 0u);
}

TEST(SequenceStats, SingleAdjacentSwap) {
  const auto s = analyze_sequence({1, 0, 2, 3});
  EXPECT_EQ(s.reordered, 1u);  // packet 0 arrived after packet 1
  EXPECT_DOUBLE_EQ(s.ratio, 0.25);
  EXPECT_EQ(s.max_extent, 1u);
  EXPECT_DOUBLE_EQ(s.mean_extent, 1.0);
  EXPECT_EQ(s.adjacent_swaps, 1u);
}

TEST(SequenceStats, LatePacketHasLargeExtent) {
  // Packet 0 arrives after 3 later packets: extent 3.
  const auto s = analyze_sequence({1, 2, 3, 0});
  EXPECT_EQ(s.reordered, 1u);
  EXPECT_EQ(s.max_extent, 3u);
  EXPECT_EQ(s.adjacent_swaps, 3u);
}

TEST(SequenceStats, ExtentMeasuresToEarliestOvertaker) {
  // arrival: 2 0 1 -> packet 0 extent 1, packet 1 extent 2.
  const auto s = analyze_sequence({2, 0, 1});
  EXPECT_EQ(s.reordered, 2u);
  EXPECT_EQ(s.max_extent, 2u);
  EXPECT_DOUBLE_EQ(s.mean_extent, 1.5);
}

TEST(SequenceStats, EmptyAndSingleton) {
  EXPECT_EQ(analyze_sequence({}).packets, 0u);
  const auto s = analyze_sequence({0});
  EXPECT_EQ(s.packets, 1u);
  EXPECT_EQ(s.reordered, 0u);
}

TEST(SequenceStats, AdjacentSwapsMatchesInversionCount) {
  // Property: adjacent_swaps must equal the analyzer's inversion count.
  const std::vector<std::vector<std::uint32_t>> cases{
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 0, 3, 2}, {2, 0, 3, 1}, {4, 1, 3, 0, 2}};
  for (const auto& c : cases) {
    EXPECT_EQ(analyze_sequence(c).adjacent_swaps, trace::count_inversions(c));
  }
}

// ---------- TimeDomainProfile ----------

TEST(TimeDomain, MergeSumsPerGapCounts) {
  TimeDomainProfile a;
  a.add(Duration::micros(10), Ordering::kReordered);
  a.add(Duration::micros(10), Ordering::kInOrder);
  TimeDomainProfile b;
  b.add(Duration::micros(10), Ordering::kInOrder);
  b.add(Duration::micros(20), Ordering::kReordered);

  a.merge(b);
  EXPECT_EQ(a.distinct_gaps(), 2u);
  ASSERT_TRUE(a.at(Duration::micros(10)).has_value());
  EXPECT_EQ(a.at(Duration::micros(10))->in_order, 2u);
  EXPECT_EQ(a.at(Duration::micros(10))->reordered, 1u);
  EXPECT_EQ(a.at(Duration::micros(20))->reordered, 1u);
}

TEST(TimeDomain, AccumulatesPerGap) {
  TimeDomainProfile profile;
  profile.add(Duration::micros(10), Ordering::kReordered);
  profile.add(Duration::micros(10), Ordering::kInOrder);
  profile.add(Duration::micros(20), Ordering::kInOrder);
  EXPECT_EQ(profile.distinct_gaps(), 2u);
  const auto at10 = profile.at(Duration::micros(10));
  ASSERT_TRUE(at10.has_value());
  EXPECT_EQ(at10->reordered, 1);
  EXPECT_EQ(at10->in_order, 1);
  EXPECT_FALSE(profile.at(Duration::micros(15)).has_value());
}

TEST(TimeDomain, PointsSortedByGap) {
  TimeDomainProfile profile;
  profile.add(Duration::micros(30), Ordering::kInOrder);
  profile.add(Duration::micros(10), Ordering::kInOrder);
  profile.add(Duration::micros(20), Ordering::kInOrder);
  const auto pts = profile.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].gap.ns(), Duration::micros(10).ns());
  EXPECT_EQ(pts[2].gap.ns(), Duration::micros(30).ns());
}

TEST(TimeDomain, InterpolationIsLinearAndClamped) {
  TimeDomainProfile profile;
  // 50% at 0us, 10% at 100us.
  for (int i = 0; i < 5; ++i) profile.add(Duration::nanos(0), Ordering::kReordered);
  for (int i = 0; i < 5; ++i) profile.add(Duration::nanos(0), Ordering::kInOrder);
  for (int i = 0; i < 1; ++i) profile.add(Duration::micros(100), Ordering::kReordered);
  for (int i = 0; i < 9; ++i) profile.add(Duration::micros(100), Ordering::kInOrder);

  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(50)), 0.3, 1e-9);
  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(25)), 0.4, 1e-9);
  // Clamping beyond the measured range.
  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(500)), 0.1, 1e-9);
  EXPECT_NEAR(*profile.interpolate_rate(Duration::nanos(0)), 0.5, 1e-9);
}

TEST(TimeDomain, EmptyProfileInterpolatesToNothing) {
  const TimeDomainProfile profile;
  EXPECT_FALSE(profile.interpolate_rate(Duration::micros(1)).has_value());
}

TEST(TimeDomain, InterpolationClampsBelowTheMeasuredRange) {
  // Profile measured only at 100us and 200us; a query below the smallest
  // gap must clamp to the first point, not extrapolate through zero.
  TimeDomainProfile profile;
  for (int i = 0; i < 3; ++i) profile.add(Duration::micros(100), Ordering::kReordered);
  for (int i = 0; i < 7; ++i) profile.add(Duration::micros(100), Ordering::kInOrder);
  for (int i = 0; i < 10; ++i) profile.add(Duration::micros(200), Ordering::kInOrder);

  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(0)), 0.3, 1e-9);
  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(99)), 0.3, 1e-9);
  // On-grid queries hit the measured estimate exactly.
  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(100)), 0.3, 1e-9);
  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(200)), 0.0, 1e-9);
}

TEST(TimeDomain, SinglePointProfileClampsEverywhere) {
  TimeDomainProfile profile;
  profile.add(Duration::micros(50), Ordering::kReordered);
  profile.add(Duration::micros(50), Ordering::kInOrder);
  for (const std::int64_t us : {0, 49, 50, 51, 5000}) {
    EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(us)), 0.5, 1e-9) << us << "us";
  }
}

TEST(TimeDomain, AllUnusableBucketInterpolatesAsZero) {
  // A gap bucket whose every sample was ambiguous or lost has no rate of
  // its own; interpolation treats it as 0 rather than poisoning the curve.
  TimeDomainProfile profile;
  profile.add(Duration::micros(10), Ordering::kAmbiguous);
  profile.add(Duration::micros(10), Ordering::kLost);
  ASSERT_FALSE(profile.at(Duration::micros(10))->rate().has_value());
  EXPECT_NEAR(*profile.interpolate_rate(Duration::micros(10)), 0.0, 1e-12);
}

TEST(TimeDomain, AmbiguousAndLostExcludedFromRate) {
  TimeDomainProfile profile;
  profile.add(Duration::nanos(0), Ordering::kReordered);
  profile.add(Duration::nanos(0), Ordering::kAmbiguous);
  profile.add(Duration::nanos(0), Ordering::kLost);
  const auto est = profile.at(Duration::nanos(0));
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->rate().value(), 1.0);
  EXPECT_EQ(est->usable(), 1);
}

}  // namespace
}  // namespace reorder::core
