// Tests for the probe substrate: packet factory, flow demux, and the
// user-level TCP connection (handshake, retransmission, close, abort).
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "probe/packet_factory.hpp"
#include "probe/probe_host.hpp"
#include "probe/prober.hpp"

namespace reorder::probe {
namespace {

using util::Duration;

const FlowAddr kFlow{
    tcpip::Ipv4Address::from_octets(10, 0, 0, 1), 40000,
    tcpip::Ipv4Address::from_octets(10, 0, 0, 2), 80};

// ---------- PacketFactory ----------

TEST(PacketFactory, SynFields) {
  PacketFactory f{kFlow};
  const auto pkt = f.syn(1234, 536, 4096);
  EXPECT_TRUE(pkt.tcp.is_syn());
  EXPECT_FALSE(pkt.tcp.is_ack());
  EXPECT_EQ(pkt.tcp.seq, 1234u);
  ASSERT_TRUE(pkt.tcp.mss.has_value());
  EXPECT_EQ(*pkt.tcp.mss, 536);
  EXPECT_EQ(pkt.tcp.window, 4096);
  EXPECT_EQ(pkt.ip.src, kFlow.local);
  EXPECT_EQ(pkt.ip.dst, kFlow.remote);
  EXPECT_EQ(pkt.tcp.src_port, 40000);
  EXPECT_EQ(pkt.tcp.dst_port, 80);
}

TEST(PacketFactory, EveryShapeSerializesWithValidChecksums) {
  PacketFactory f{kFlow};
  const std::vector<std::uint8_t> payload{1, 2, 3};
  for (const auto& pkt :
       {f.syn(1, 1460, 65535), f.ack(2, 3, 100), f.data(4, 5, 200, payload), f.fin(6, 7, 300),
        f.rst(8)}) {
    const auto back = tcpip::Packet::from_wire(pkt.to_wire());
    EXPECT_TRUE(back.checksums_ok) << pkt.describe();
    EXPECT_EQ(back.packet.tcp.seq, pkt.tcp.seq);
  }
}

TEST(PacketFactory, FlagShapes) {
  PacketFactory f{kFlow};
  EXPECT_EQ(f.ack(0, 0, 0).tcp.flags, tcpip::kAck);
  EXPECT_EQ(f.data(0, 0, 0, {}).tcp.flags, tcpip::kAck | tcpip::kPsh);
  EXPECT_EQ(f.fin(0, 0, 0).tcp.flags, tcpip::kFin | tcpip::kAck);
  EXPECT_EQ(f.rst(0).tcp.flags, tcpip::kRst);
}

TEST(FlowAddr, MatchesIncomingDirection) {
  PacketFactory f{kFlow};
  auto reply = f.ack(1, 2, 3);
  std::swap(reply.ip.src, reply.ip.dst);
  std::swap(reply.tcp.src_port, reply.tcp.dst_port);
  EXPECT_TRUE(kFlow.matches_incoming(reply));
  EXPECT_FALSE(kFlow.matches_incoming(f.ack(1, 2, 3)));  // outgoing shape
}

// ---------- ProbeHost demux ----------

TEST(ProbeHost, AllocatesDistinctPorts) {
  core::Testbed bed{core::TestbedConfig{}};
  const auto f1 = bed.probe().make_flow(bed.remote_addr(), 80);
  const auto f2 = bed.probe().make_flow(bed.remote_addr(), 80);
  EXPECT_NE(f1.local_port, f2.local_port);
  EXPECT_EQ(f1.local, bed.probe().address());
}

TEST(ProbeHost, RoutesToRegisteredFlowAndUnmatched) {
  core::Testbed bed{core::TestbedConfig{}};
  auto& probe = bed.probe();
  const auto flow = probe.make_flow(bed.remote_addr(), 12345);  // closed port

  int flow_hits = 0;
  int unmatched_hits = 0;
  probe.register_flow(flow, [&](const tcpip::Packet&) { ++flow_hits; });
  probe.unmatched_handler = [&](const tcpip::Packet&) { ++unmatched_hits; };

  // A SYN to a closed port draws an RST back to the registered flow.
  PacketFactory f{flow};
  probe.send(f.syn(100, 1460, 65535));
  bed.loop().run();
  EXPECT_EQ(flow_hits, 1);
  EXPECT_EQ(unmatched_hits, 0);

  // After unregistering, the same exchange lands in unmatched.
  probe.unregister_flow(flow);
  probe.send(f.syn(200, 1460, 65535));
  bed.loop().run();
  EXPECT_EQ(flow_hits, 1);
  EXPECT_EQ(unmatched_hits, 1);
  EXPECT_EQ(probe.registered_flows(), 0u);
}

// ---------- ProbeConnection ----------

TEST(ProbeConnection, HandshakeAgainstRealHost) {
  core::Testbed bed{core::TestbedConfig{}};
  ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), core::kDiscardPort),
                       ProbeConnectionOptions{}};
  bool ok = false;
  bool called = false;
  conn.connect([&](bool success) {
    called = true;
    ok = success;
  });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(10), [&] { return !called; });
  ASSERT_TRUE(called);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(conn.established());
  EXPECT_EQ(conn.snd_base(), conn.iss() + 1);
  EXPECT_EQ(bed.remote().active_connections(), 1u);
}

TEST(ProbeConnection, ConnectToClosedPortFails) {
  core::Testbed bed{core::TestbedConfig{}};
  ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), 4444),
                       ProbeConnectionOptions{}};
  bool ok = true;
  bool called = false;
  conn.connect([&](bool success) {
    called = true;
    ok = success;
  });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(10), [&] { return !called; });
  ASSERT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(ProbeConnection, SynRetransmitsThroughLoss) {
  core::TestbedConfig cfg;
  cfg.seed = 1234;
  cfg.forward.loss_probability = 0.5;
  cfg.reverse.loss_probability = 0.5;
  core::Testbed bed{cfg};
  ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), core::kDiscardPort),
                       ProbeConnectionOptions{}};
  bool ok = false;
  bool called = false;
  conn.connect([&](bool success) {
    called = true;
    ok = success;
  });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(60), [&] { return !called; });
  ASSERT_TRUE(called);
  EXPECT_TRUE(ok) << "six SYN retries at 50% loss virtually always get through";
}

TEST(ProbeConnection, SynGivesUpWhenBlackholed) {
  core::TestbedConfig cfg;
  cfg.forward.loss_probability = 1.0;
  core::Testbed bed{cfg};
  ProbeConnectionOptions opts;
  opts.max_syn_retries = 2;
  ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), core::kDiscardPort),
                       opts};
  bool ok = true;
  bool called = false;
  conn.connect([&](bool success) {
    called = true;
    ok = success;
  });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(60), [&] { return !called; });
  ASSERT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(ProbeConnection, GracefulCloseCompletes) {
  core::Testbed bed{core::TestbedConfig{}};
  ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), core::kDiscardPort),
                       ProbeConnectionOptions{}};
  bool connected = false;
  conn.connect([&](bool ok) { connected = ok; });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(10), [&] { return !connected; });
  ASSERT_TRUE(connected);

  bool closed = false;
  conn.close(0, [&] { closed = true; });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(10), [&] { return !closed; });
  EXPECT_TRUE(closed);
  bed.loop().run();
  EXPECT_EQ(bed.remote().active_connections(), 0u) << "remote side fully torn down";
}

TEST(ProbeConnection, AbortSendsRst) {
  core::Testbed bed{core::TestbedConfig{}};
  ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), core::kDiscardPort),
                       ProbeConnectionOptions{}};
  bool connected = false;
  conn.connect([&](bool ok) { connected = ok; });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(10), [&] { return !connected; });
  ASSERT_TRUE(connected);
  conn.abort();
  bed.loop().run();
  EXPECT_EQ(bed.remote().active_connections(), 0u);
}

TEST(ProbeConnection, BuildDataRelUsesAbsoluteSequence) {
  core::Testbed bed{core::TestbedConfig{}};
  ProbeConnectionOptions opts;
  opts.iss = 777'000;
  ProbeConnection conn{bed.probe(), bed.probe().make_flow(bed.remote_addr(), core::kDiscardPort),
                       opts};
  bool connected = false;
  conn.connect([&](bool ok) { connected = ok; });
  bed.loop().run_while(bed.loop().now() + Duration::seconds(10), [&] { return !connected; });
  ASSERT_TRUE(connected);
  const std::vector<std::uint8_t> b{0x55};
  const auto pkt = conn.build_data_rel(7, b);
  EXPECT_EQ(pkt.tcp.seq, 777'001u + 7u);
  EXPECT_EQ(pkt.tcp.ack, conn.rcv_base());
}

}  // namespace
}  // namespace reorder::probe
