// Tests for the async multi-target SurveyEngine and the SurveyTestbed:
// concurrent interleaving on one event loop, exact agreement with the old
// synchronous one-test-at-a-time driver, and the engine's failure paths
// (watchdog timeouts, stale completions).
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "core/survey_testbed.hpp"
#include "stats/pair_difference.hpp"

namespace reorder::core {
namespace {

using util::Duration;

SurveyTestbedConfig three_target_config() {
  SurveyTestbedConfig cfg;
  cfg.seed = 42;
  const double swap[] = {0.0, 0.12, 0.3};
  for (int i = 0; i < 3; ++i) {
    SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = swap[i];
    target.reverse.swap_probability = swap[i] / 3.0;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {TestSpec{"single-connection"}, TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  return cfg;
}

constexpr int kRounds = 4;
constexpr int kSamples = 12;

TEST(SurveyEngine, ThreeTargetsInterleaveOnOneLoop) {
  SurveyTestbed bed{three_target_config()};
  SurveyEngine engine{bed.loop()};
  bed.populate(engine);
  ASSERT_EQ(engine.target_count(), 3u);

  TestRunConfig run;
  run.samples = kSamples;
  const auto& ms = engine.run(run, kRounds, Duration::millis(500));
  EXPECT_FALSE(engine.running());
  ASSERT_EQ(ms.size(), 3u * 2u * kRounds);

  // Concurrency, not round-robin blocking: every target's first
  // measurement starts at the same instant — t=0 — instead of waiting for
  // the previous target's cycle to finish.
  std::set<std::string> started_at_zero;
  for (const auto& m : ms) {
    if (m.at == util::TimePoint::epoch()) started_at_zero.insert(m.target);
  }
  EXPECT_EQ(started_at_zero.size(), 3u) << "all targets must launch concurrently";

  // And each target's measurements are spread over the whole survey, not
  // bunched in one contiguous run.
  for (std::size_t t = 0; t < 3; ++t) {
    const std::string name = bed.target_name(t);
    std::size_t first = ms.size();
    std::size_t last = 0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      if (ms[i].target != name) continue;
      first = std::min(first, i);
      last = std::max(last, i);
      ++count;
    }
    EXPECT_EQ(count, 2u * kRounds);
    EXPECT_GT(last - first + 1, count) << name << " ran as one contiguous block";
  }

  // Measured rates track each target's configured process.
  EXPECT_NEAR(engine.aggregate("host-0", "syn", true).rate_or(0.0), 0.0, 0.02);
  EXPECT_NEAR(engine.aggregate("host-2", "syn", true).rate_or(0.0), 0.3, 0.12);
}

TEST(SurveyEngine, ConcurrentResultsMatchTheSynchronousDriver) {
  // The concurrent engine against one world...
  SurveyTestbed bed{three_target_config()};
  SurveyEngine engine{bed.loop()};
  bed.populate(engine);
  TestRunConfig run;
  run.samples = kSamples;
  engine.run(run, kRounds, Duration::millis(500));

  // ...and the old MeasurementSession discipline — strictly one blocking
  // test at a time, target after target — against an identically seeded
  // twin world on its own loop.
  SurveyTestbed twin{three_target_config()};
  std::map<std::tuple<std::string, std::string, bool>, std::vector<double>> reference;
  std::vector<std::vector<std::unique_ptr<ReorderTest>>> suites;
  for (std::size_t t = 0; t < twin.target_count(); ++t) {
    std::vector<std::unique_ptr<ReorderTest>> suite;
    for (const auto& spec : twin.target_tests(t)) {
      suite.push_back(TestRegistry::global().create(twin.probe(), twin.target_addr(t), spec));
    }
    suites.push_back(std::move(suite));
  }
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t t = 0; t < twin.target_count(); ++t) {
      for (auto& test : suites[t]) {
        std::optional<TestRunResult> out;
        test->run(run, [&out](TestRunResult r) { out = std::move(r); });
        twin.loop().run_while(twin.loop().now() + Duration::seconds(600),
                              [&out] { return !out.has_value(); });
        ASSERT_TRUE(out.has_value());
        if (out->admissible) {
          for (const bool forward : {true, false}) {
            const auto& est = forward ? out->forward : out->reverse;
            if (const auto rate = est.rate()) {
              reference[{twin.target_name(t), test->name(), forward}].push_back(*rate);
            }
          }
        }
        twin.loop().advance(Duration::millis(500));
      }
    }
  }

  // Per-target rate series (both directions) must agree sample for
  // sample: each target's world is independent, so interleaving must not
  // change what any single target measures.
  for (std::size_t t = 0; t < 3; ++t) {
    for (const char* test : {"single-connection", "syn"}) {
      for (const bool forward : {true, false}) {
        const auto concurrent = engine.rate_series(twin.target_name(t), test, forward);
        const auto& sequential = reference[{twin.target_name(t), test, forward}];
        ASSERT_EQ(concurrent.size(), sequential.size())
            << twin.target_name(t) << "/" << test << (forward ? " fwd" : " rev");
        for (std::size_t i = 0; i < concurrent.size(); ++i) {
          EXPECT_DOUBLE_EQ(concurrent[i], sequential[i])
              << twin.target_name(t) << "/" << test << " measurement " << i;
        }
      }
    }
  }
  // The reverse path is genuinely exercised (the behaviour knobs set in
  // three_target_config survived into the simulated hosts).
  EXPECT_FALSE(engine.rate_series("host-2", "single-connection", false).empty());

  // And the §IV-B cross-test comparison lands on the same verdict.
  const auto cmp = engine.compare("host-2", "single-connection", "syn", true);
  const auto& a = reference[{"host-2", "single-connection", true}];
  const auto& b = reference[{"host-2", "syn", true}];
  const std::size_t n = std::min(a.size(), b.size());
  const auto expected = stats::pair_difference_test(std::span{a.data(), n},
                                                    std::span{b.data(), n}, 0.999);
  EXPECT_DOUBLE_EQ(cmp.mean_difference, expected.mean_difference);
  EXPECT_EQ(cmp.null_supported, expected.null_supported);
}

TEST(SurveyEngine, TargetBehaviorKnobsSurviveIntoTheHosts) {
  // Regression: a target config with no listeners gets the standard
  // listener set installed, but its behaviour/IPID knobs must not be
  // replaced by defaults.
  SurveyTestbedConfig cfg;
  cfg.seed = 77;
  SurveyTargetConfig target;
  target.name = "random-ipid";
  target.remote.ipid_policy = tcpip::IpidPolicy::kRandom;
  target.tests = {TestSpec{"dual-connection"}};
  cfg.targets.push_back(std::move(target));
  SurveyTestbed bed{std::move(cfg)};

  SurveyEngine engine{bed.loop()};
  bed.populate(engine);
  TestRunConfig run;
  run.samples = 8;
  const auto& ms = engine.run(run, 1, Duration::millis(100));
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_FALSE(ms[0].result.admissible)
      << "randomized IPIDs must rule the dual test out on this target";
}

// ---------- failure paths ----------

class NeverCompletes final : public ReorderTest {
 public:
  std::string name() const override { return "never-completes"; }
  void run(const TestRunConfig&, std::function<void(TestRunResult)>) override {}
};

class CompletesLate final : public ReorderTest {
 public:
  explicit CompletesLate(sim::EventLoop& loop) : loop_{loop} {}
  std::string name() const override { return "late"; }
  void run(const TestRunConfig&, std::function<void(TestRunResult)> done) override {
    loop_.schedule(Duration::seconds(700), [done = std::move(done)] {
      TestRunResult r;
      r.test_name = "late";
      done(std::move(r));
    });
  }

 private:
  sim::EventLoop& loop_;
};

TEST(SurveyEngine, WatchdogRecordsStuckMeasurementsAndMovesOn) {
  sim::EventLoop loop;
  SurveyEngine engine{loop};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(std::make_unique<NeverCompletes>());
  engine.add_target("stuck", std::move(tests));

  const auto& ms = engine.run(TestRunConfig{}, /*rounds=*/2, Duration::millis(10));
  EXPECT_FALSE(engine.running());
  ASSERT_EQ(ms.size(), 2u);
  for (const auto& m : ms) {
    EXPECT_FALSE(m.result.admissible);
    EXPECT_EQ(m.result.note, "measurement did not complete");
  }
}

/// Completes long after the watchdog deadline, carrying real-looking
/// samples — the abandoned-run residue the sinks must never see.
class CompletesLateWithSamples final : public ReorderTest {
 public:
  explicit CompletesLateWithSamples(sim::EventLoop& loop) : loop_{loop} {}
  std::string name() const override { return "late-with-samples"; }
  void run(const TestRunConfig&, std::function<void(TestRunResult)> done) override {
    loop_.schedule(Duration::seconds(700), [done = std::move(done)] {
      TestRunResult r;
      r.test_name = "late-with-samples";
      SampleResult s;
      s.forward = Ordering::kReordered;
      s.reverse = Ordering::kInOrder;
      r.samples.assign(5, s);
      r.aggregate();
      done(std::move(r));
    });
  }

 private:
  sim::EventLoop& loop_;
};

/// Counts what actually reaches a sink.
class CountingSink final : public ResultSink {
 public:
  void on_sample(const SampleEvent&) override { ++samples; }
  void on_measurement(const MeasurementEvent& e) override {
    ++measurements;
    if (e.result.admissible) ++admissible;
  }
  int samples{0};
  int measurements{0};
  int admissible{0};
};

TEST(SurveyEngine, AbandonedMeasurementResidueNeverReachesSinks) {
  // Pins the sink contract: a measurement that passes measurement_deadline
  // is recorded as a timeout, and when the abandoned run completes later —
  // mid-survey or after the survey ended — its per-sample events must NOT
  // be published to the sinks, and the store must not grow. Today the
  // open/generation check drops both orderings exercised here; the
  // explicit past-deadline guard in finish_measurement is defense in depth
  // behind it. If either is weakened enough to leak residue, this fails.
  sim::EventLoop loop;
  SurveyEngine engine{loop};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(std::make_unique<CompletesLateWithSamples>(loop));
  engine.add_target("late", std::move(tests));
  CountingSink sink;
  engine.add_sink(sink);

  // Two rounds: the first abandoned run's completion (t=700s) lands while
  // round 2 is open (watchdogs fire at 600s and ~1200s), the second one
  // after the survey is over.
  engine.run(TestRunConfig{}, /*rounds=*/2, Duration::millis(10));
  EXPECT_FALSE(engine.running());
  loop.run();  // drain both abandoned completions

  EXPECT_EQ(sink.measurements, 2) << "both timeouts are recorded";
  EXPECT_EQ(sink.admissible, 0);
  EXPECT_EQ(sink.samples, 0) << "abandoned-run samples leaked into the sinks";
  ASSERT_EQ(engine.measurements().size(), 2u);
  for (const auto& m : engine.measurements()) {
    EXPECT_FALSE(m.result.admissible);
    EXPECT_TRUE(m.result.samples.empty());
  }
  EXPECT_EQ(engine.store().sample_count(), 0u);
  EXPECT_EQ(engine.metrics().admissible_measurements("late", "late-with-samples"), 0u);
}

TEST(SurveyEngine, RetainSamplesKeepsTheLogReplayable) {
  SurveyTestbedConfig cfg = three_target_config();
  cfg.targets.resize(1);
  SurveyTestbed bed{std::move(cfg)};
  SurveyEngine::Options options;
  options.retain_samples = true;
  SurveyEngine engine{bed.loop(), options};
  bed.populate(engine);

  TestRunConfig run;
  run.samples = 6;
  engine.run(run, /*rounds=*/1, Duration::millis(100));
  ASSERT_EQ(engine.measurements().size(), 2u);
  for (const auto& m : engine.measurements()) {
    EXPECT_EQ(m.result.samples.size(), 6u) << "retain_samples must keep the payload";
  }

  // release_measurements() hands the log over and leaves the engine empty.
  const auto released = engine.release_measurements();
  EXPECT_EQ(released.size(), 2u);
  EXPECT_TRUE(engine.measurements().empty());
}

TEST(SurveyEngine, StaleCompletionAfterTimeoutIsDropped) {
  sim::EventLoop loop;
  SurveyEngine engine{loop};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(std::make_unique<CompletesLate>(loop));
  engine.add_target("late", std::move(tests));

  engine.run(TestRunConfig{}, /*rounds=*/1, Duration::millis(10));
  // Drain the late completion (scheduled beyond the 600s watchdog).
  loop.run();
  ASSERT_EQ(engine.measurements().size(), 1u);
  EXPECT_FALSE(engine.measurements()[0].result.admissible);
}

TEST(SurveyEngine, NoTargetsCompletesImmediately) {
  sim::EventLoop loop;
  SurveyEngine engine{loop};
  bool completed = false;
  engine.start(TestRunConfig{}, 3, Duration::millis(10), [&completed] { completed = true; });
  EXPECT_TRUE(completed);
  EXPECT_FALSE(engine.running());
  EXPECT_TRUE(engine.measurements().empty());
}

TEST(SurveyEngine, AddingTargetsMidSurveyThrows) {
  sim::EventLoop loop;
  SurveyEngine engine{loop};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(std::make_unique<NeverCompletes>());
  engine.add_target("stuck", std::move(tests));
  engine.start(TestRunConfig{}, 1, Duration::millis(10));
  ASSERT_TRUE(engine.running());
  std::vector<std::unique_ptr<ReorderTest>> more;
  more.push_back(std::make_unique<NeverCompletes>());
  EXPECT_THROW(engine.add_target("too-late", std::move(more)), std::logic_error);
}

// ---------- the statistics the survey's compare() sits on ----------

TEST(PairDifference, MismatchedLengthsThrow) {
  const std::vector<double> a{0.1, 0.2, 0.3};
  const std::vector<double> b{0.1, 0.2};
  EXPECT_THROW(stats::pair_difference_test(a, b), std::invalid_argument);
}

TEST(PairDifference, FewerThanTwoPairsThrow) {
  const std::vector<double> one{0.1};
  EXPECT_THROW(stats::pair_difference_test(one, one), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(stats::pair_difference_test(empty, empty), std::invalid_argument);
}

}  // namespace
}  // namespace reorder::core
