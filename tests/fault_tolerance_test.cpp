// The fault-tolerant survey runtime, pinned end to end:
//
//   * FaultInjector decisions are a pure function of (seed, site, hit) —
//     replaying a seed replays the exact failure sequence;
//   * every library metric's snapshot round-trips to_json -> from_json ->
//     merge bit-exactly (the contract checkpoint restore stands on);
//   * kill-and-resume is byte-identical: interrupt a sharded survey after
//     ANY k completed shards, resume from the checkpoint, and the merged
//     JSONL and metric snapshots equal an uninterrupted run's — torn
//     checkpoint records are detected by checksum and their shards re-run;
//   * failed shards retry with backoff and classification (transient
//     retries, deterministic does not), and retry exhaustion degrades the
//     survey instead of aborting it, with the whole fleet accounted for;
//   * the crash-safe JSONL writer publishes artifacts atomically and the
//     lenient reader recovers the well-formed prefix of a torn file;
//   * merge_fleet_streams folds two runs' artifacts into the byte-exact
//     stream one combined run would have emitted (reorder-merge's core).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fleet_merge.hpp"
#include "core/scenario.hpp"
#include "core/sharded_survey.hpp"
#include "metrics/restore.hpp"
#include "report/sinks.hpp"
#include "util/fault_injector.hpp"
#include "util/shard_seeder.hpp"

namespace reorder::core {
namespace {

using util::Duration;
using util::FaultInjector;
using util::InjectedFault;

SurveyTestbedConfig six_target_fleet(std::uint64_t seed = 7) {
  SurveyTestbedConfig cfg;
  cfg.seed = seed;
  for (int i = 0; i < 6; ++i) {
    SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = (i % 3) * 0.11;
    target.reverse.swap_probability = (i % 3) * 0.04;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {TestSpec{"single-connection"}, TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  return cfg;
}

ShardedSurveyConfig sharded(std::size_t shards, std::size_t threads = 2) {
  ShardedSurveyConfig cfg;
  cfg.fleet = six_target_fleet();
  cfg.shards = shards;
  cfg.threads = threads;
  return cfg;
}

TestRunConfig quick_run() {
  TestRunConfig run;
  run.samples = 6;
  return run;
}

constexpr int kRounds = 2;

std::string canonical_jsonl(const ShardedSurveyEngine& engine) {
  std::ostringstream text;
  report::JsonlWriter writer{text};
  engine.emit_jsonl(writer);
  return text.str();
}

std::string metrics_jsonl(const metrics::MetricEngine& engine) {
  std::ostringstream text;
  report::JsonlWriter writer{text};
  engine.emit_jsonl(writer, metrics::MetricEngine::EmitOrder::kCanonical);
  return text.str();
}

// ------------------------------------------------------- fault injector

TEST(FaultInjector, FiringSequenceIsAPureFunctionOfSeedSiteAndHit) {
  const auto drive = [](FaultInjector& f) {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(f.should_fire("shard/3/run", FaultInjector::Mode::kThrow));
      fired.push_back(f.should_fire("target/h/test/syn", FaultInjector::Mode::kTargetTimeout));
    }
    return fired;
  };

  FaultInjector a{42};
  a.arm({"shard/3/run", FaultInjector::Mode::kThrow, 0.25, 0, true});
  a.arm({"target/h/test/syn", FaultInjector::Mode::kTargetTimeout, 0.25, 0, true});
  FaultInjector b{42};
  b.arm({"shard/3/run", FaultInjector::Mode::kThrow, 0.25, 0, true});
  b.arm({"target/h/test/syn", FaultInjector::Mode::kTargetTimeout, 0.25, 0, true});

  const auto seq_a = drive(a);
  EXPECT_EQ(seq_a, drive(b)) << "same seed must replay the same firing sequence";
  EXPECT_GT(a.fired("shard/3/run"), 0u);
  EXPECT_LT(a.fired("shard/3/run"), 64u);  // p=0.25 must not fire every hit

  // A different seed draws a different sequence (overwhelmingly likely
  // over 128 Bernoulli(0.25) decisions).
  FaultInjector c{43};
  c.arm({"shard/3/run", FaultInjector::Mode::kThrow, 0.25, 0, true});
  c.arm({"target/h/test/syn", FaultInjector::Mode::kTargetTimeout, 0.25, 0, true});
  EXPECT_NE(seq_a, drive(c));

  // reset() replays from hit zero: one injector drives run-after-run
  // comparisons.
  const auto firings_before = a.firings();
  a.reset();
  EXPECT_EQ(drive(a), seq_a);
  ASSERT_EQ(a.firings().size(), firings_before.size());
}

TEST(FaultInjector, PlansMatchByModeExactSiteOrPrefixAndHonorMaxFires) {
  FaultInjector f{7};
  f.arm({"shard/", FaultInjector::Mode::kShardAbort, 1.0, 2, true});

  // Mode must match: a kThrow probe at an armed kShardAbort site is inert.
  EXPECT_FALSE(f.should_fire("shard/0/run", FaultInjector::Mode::kThrow));
  // Prefix plan arms every shard site; max_fires=2 stops it after two.
  EXPECT_TRUE(f.should_fire("shard/0/abort", FaultInjector::Mode::kShardAbort));
  EXPECT_TRUE(f.should_fire("shard/1/abort", FaultInjector::Mode::kShardAbort));
  EXPECT_FALSE(f.should_fire("shard/2/abort", FaultInjector::Mode::kShardAbort));
  // Non-matching site is never armed.
  EXPECT_FALSE(f.should_fire("jsonl/write", FaultInjector::Mode::kSinkWriteFailure));

  // maybe_throw carries the plan's transient class on the raised fault.
  FaultInjector g{7};
  g.arm({"jsonl/write", FaultInjector::Mode::kSinkWriteFailure, 1.0, 0, false});
  try {
    g.maybe_throw("jsonl/write", FaultInjector::Mode::kSinkWriteFailure);
    FAIL() << "armed p=1.0 site must throw";
  } catch (const InjectedFault& fault) {
    EXPECT_EQ(fault.site(), "jsonl/write");
    EXPECT_FALSE(fault.transient());
  }
}

// ------------------------------------- metric snapshot restore contract

TEST(MetricRestore, EveryLibraryMetricRoundTripsBitExactly) {
  // Exercise every library metric over real survey traffic, snapshot the
  // engine's records, restore them into a fresh engine, and demand the
  // re-rendering is byte-identical — the exact path checkpoint restore
  // and reorder-merge ingestion take.
  ShardedSurveyConfig cfg = sharded(2);
  cfg.suite_factory = [](std::string_view target, std::string_view test) {
    metrics::MetricSuite suite = metrics::default_suite(target, test);
    suite.add(metrics::make_metric("sequence_extent"));
    suite.add(metrics::make_metric("n_reordering"));
    suite.add(metrics::make_metric("reorder_density"));
    suite.add(metrics::make_metric("buffer_density"));
    suite.add(metrics::make_metric("latency_histogram"));
    return suite;
  };
  ShardedSurveyEngine engine{std::move(cfg)};
  engine.run(quick_run(), kRounds, Duration::millis(500));
  const std::string original = metrics_jsonl(engine.metrics());
  ASSERT_FALSE(original.empty());

  metrics::MetricEngine restored;
  for (const report::Json& record : report::read_jsonl_text(original)) {
    restored.restore_record(record);
  }
  EXPECT_EQ(metrics_jsonl(restored), original);
}

TEST(MetricRestore, RestoredSnapshotsMergeBitExactlyWithLiveOnes) {
  // The property resume() depends on: restoring HALF the shards from
  // serialized snapshots and merging with the other half run live must
  // equal the all-live batch merge bit-for-bit.
  ShardedSurveyEngine reference{sharded(2)};
  reference.run(quick_run(), kRounds, Duration::millis(500));
  const std::string batch = metrics_jsonl(reference.metrics());

  const ShardedSurveyEngine split{sharded(2)};
  ShardRunResult live0 = split.run_shard(0, quick_run(), kRounds, Duration::millis(500));
  const ShardRunResult live1 = split.run_shard(1, quick_run(), kRounds, Duration::millis(500));

  metrics::MetricEngine restored1;
  for (const report::Json& record : report::read_jsonl_text(metrics_jsonl(live1.metrics))) {
    restored1.restore_record(record);
  }
  live0.metrics.merge(restored1);
  EXPECT_EQ(metrics_jsonl(live0.metrics), batch);
}

TEST(MetricRestore, UnknownMetricNameThrows) {
  EXPECT_THROW(metrics::make_metric("no-such-metric"), std::invalid_argument);
}

// ------------------------------------------------------ checkpoint codec

TEST(Checkpoint, MeasurementCodecIsFullFidelity) {
  ShardedSurveyEngine engine{sharded(1, 1)};
  engine.run(quick_run(), 1, Duration::millis(500));
  ASSERT_FALSE(engine.measurements().empty());
  for (const Measurement& m : engine.measurements()) {
    const Measurement back = measurement_from_json(measurement_to_json(m));
    EXPECT_EQ(back.target, m.target);
    EXPECT_EQ(back.test, m.test);
    EXPECT_EQ(back.at.ns(), m.at.ns());
    EXPECT_EQ(back.result.admissible, m.result.admissible);
    EXPECT_EQ(back.result.note, m.result.note);
    EXPECT_EQ(back.result.forward.reordered, m.result.forward.reordered);
    ASSERT_EQ(back.result.samples.size(), m.result.samples.size());
    for (std::size_t i = 0; i < m.result.samples.size(); ++i) {
      const SampleResult& a = back.result.samples[i];
      const SampleResult& b = m.result.samples[i];
      EXPECT_EQ(a.forward, b.forward);
      EXPECT_EQ(a.reverse, b.reverse);
      EXPECT_EQ(a.started.ns(), b.started.ns());
      EXPECT_EQ(a.completed.ns(), b.completed.ns());
      EXPECT_EQ(a.gap.ns(), b.gap.ns());
      // The uids the emission schema drops are exactly what the codec
      // must keep (they tie samples to trace captures).
      EXPECT_EQ(a.fwd_uid_first, b.fwd_uid_first);
      EXPECT_EQ(a.fwd_uid_second, b.fwd_uid_second);
      EXPECT_EQ(a.rev_uid_first, b.rev_uid_first);
      EXPECT_EQ(a.rev_uid_second, b.rev_uid_second);
    }
  }
}

TEST(Checkpoint, SerializeLoadRoundTripsAndChecksumGuardsEveryRecord) {
  const ShardedSurveyEngine engine{sharded(3)};
  SurveyCheckpoint cp;
  cp.set_header({3, 6, kRounds, 7});
  cp.record_shard(engine.run_shard(0, quick_run(), kRounds, Duration::millis(500)), 2);
  cp.record_shard(engine.run_shard(2, quick_run(), kRounds, Duration::millis(500)), 1);

  const std::string path = "/tmp/reorder_ckpt_roundtrip.jsonl";
  cp.save(path);
  const SurveyCheckpoint loaded = SurveyCheckpoint::load(path);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.header().has_value());
  EXPECT_EQ(loaded.header()->shards, 3u);
  EXPECT_EQ(loaded.header()->seed, 7u);
  EXPECT_EQ(loaded.completed_shards(), (std::vector<std::size_t>{0, 2}));
  EXPECT_FALSE(loaded.has_shard(1));
  EXPECT_EQ(loaded.attempts(0), 2);
  EXPECT_EQ(loaded.torn_records(), 0u);
  // The reload serializes back to the identical bytes.
  EXPECT_EQ(loaded.serialize(), cp.serialize());

  // Flip one byte inside a record's body: its checksum must disown it
  // (the shard re-runs) while the intact record survives.
  std::string text = cp.serialize();
  const std::size_t flip = text.find("\"log\"");
  ASSERT_NE(flip, std::string::npos);
  text[flip + 1] = 'x';
  {
    std::ofstream out{path, std::ios::trunc};
    out << text;
  }
  const SurveyCheckpoint corrupted = SurveyCheckpoint::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(corrupted.completed_count(), 1u);
  EXPECT_EQ(corrupted.torn_records(), 1u);
}

TEST(Checkpoint, MissingFileLoadsEmpty) {
  const SurveyCheckpoint cp = SurveyCheckpoint::load("/tmp/reorder_ckpt_never_written.jsonl");
  EXPECT_FALSE(cp.header().has_value());
  EXPECT_EQ(cp.completed_count(), 0u);
  EXPECT_EQ(cp.torn_records(), 0u);
}

// --------------------------------------------------- kill-and-resume

class KillAndResume : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KillAndResume, ResumeAfterAnyShardCountIsByteIdentical) {
  const std::size_t shards = GetParam();

  // The uninterrupted reference.
  ShardedSurveyEngine reference{sharded(shards)};
  reference.run(quick_run(), kRounds, Duration::millis(500));
  const std::string ref_jsonl = canonical_jsonl(reference);
  const std::string ref_metrics = metrics_jsonl(reference.metrics());

  const std::string path = "/tmp/reorder_ckpt_resume.jsonl";
  for (std::size_t k = 0; k < shards; ++k) {
    // "Kill" after exactly k completed shards: record the first k shard
    // results (run_shard is pure, so these are the bytes a killed run's
    // checkpoint would hold) and resume from there.
    const ShardedSurveyEngine partial{sharded(shards)};
    SurveyCheckpoint cp;
    cp.set_header({shards, 6, kRounds, 7});
    for (std::size_t s = 0; s < k; ++s) {
      cp.record_shard(partial.run_shard(s, quick_run(), kRounds, Duration::millis(500)));
    }
    cp.save(path);

    ShardedSurveyEngine resumed{sharded(shards)};
    resumed.resume(SurveyCheckpoint::load(path), quick_run(), kRounds, Duration::millis(500));
    EXPECT_FALSE(resumed.degraded());
    EXPECT_EQ(canonical_jsonl(resumed), ref_jsonl) << "k=" << k;
    EXPECT_EQ(metrics_jsonl(resumed.metrics()), ref_metrics) << "k=" << k;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, KillAndResume, ::testing::Values(1u, 2u, 3u, 8u),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "shards_" + std::to_string(info.param);
                         });

TEST(KillAndResumeTorn, TornCheckpointRecordsAreDetectedAndTheirShardsReRun) {
  constexpr std::size_t kShards = 3;
  ShardedSurveyEngine reference{sharded(kShards)};
  reference.run(quick_run(), kRounds, Duration::millis(500));
  const std::string ref_jsonl = canonical_jsonl(reference);

  // A checkpoint holding shards {0, 1}, with shard 1's record torn
  // mid-write (the file ends mid-line, as a killed writer leaves it).
  const ShardedSurveyEngine partial{sharded(kShards)};
  SurveyCheckpoint cp;
  cp.set_header({kShards, 6, kRounds, 7});
  cp.record_shard(partial.run_shard(0, quick_run(), kRounds, Duration::millis(500)));
  cp.record_shard(partial.run_shard(1, quick_run(), kRounds, Duration::millis(500)));
  std::string text = cp.serialize();
  const std::size_t first_nl = text.find('\n');
  const std::size_t second_nl = text.find('\n', first_nl + 1);
  ASSERT_NE(second_nl, std::string::npos);
  const std::size_t last_begin = second_nl + 1;  // shard 1's record starts here
  ASSERT_LT(last_begin, text.size());
  text.resize(last_begin + (text.size() - last_begin) / 2);  // tear it mid-write

  const std::string path = "/tmp/reorder_ckpt_torn.jsonl";
  {
    std::ofstream out{path, std::ios::trunc};
    out << text;
  }
  const SurveyCheckpoint loaded = SurveyCheckpoint::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.completed_count(), 1u);
  EXPECT_GE(loaded.torn_records(), 1u);

  ShardedSurveyEngine resumed{sharded(kShards)};
  resumed.resume(loaded, quick_run(), kRounds, Duration::millis(500));
  EXPECT_EQ(canonical_jsonl(resumed), ref_jsonl);
}

TEST(KillAndResume, MismatchedPlanIsRejected) {
  SurveyCheckpoint cp;
  cp.set_header({4, 6, kRounds, 7});  // 4 shards...
  ShardedSurveyEngine engine{sharded(3)};  // ...resumed on a 3-shard plan
  EXPECT_THROW(engine.resume(cp, quick_run(), kRounds, Duration::millis(500)),
               std::invalid_argument);
}

// ------------------------------------------------ retry and degradation

TEST(RetryPolicy, TransientFaultsAreRetriedUntilTheyStop) {
  FaultInjector faults{11};
  // Shard 1's first two attempts die in-flight; the third succeeds.
  faults.arm({"shard/1/run", FaultInjector::Mode::kThrow, 1.0, 2, true});

  ShardedSurveyConfig cfg = sharded(3);
  cfg.engine.faults = &faults;
  cfg.retry.max_attempts = 3;
  ShardedSurveyEngine engine{std::move(cfg)};
  engine.run(quick_run(), kRounds, Duration::millis(500));

  EXPECT_FALSE(engine.degraded());
  EXPECT_EQ(engine.shard_attempts(1), 3);
  EXPECT_EQ(engine.shard_attempts(0), 1);
  EXPECT_EQ(faults.fired("shard/1/run"), 2u);

  // And the retried run's output is byte-identical to a fault-free one:
  // a shard attempt is pure, so dying twice leaves no residue.
  ShardedSurveyEngine clean{sharded(3)};
  clean.run(quick_run(), kRounds, Duration::millis(500));
  EXPECT_EQ(canonical_jsonl(engine), canonical_jsonl(clean));
}

TEST(RetryPolicy, ExhaustionDegradesTheSurveyWithFullFleetAccounting) {
  FaultInjector faults{11};
  faults.arm({"shard/1/abort", FaultInjector::Mode::kShardAbort, 1.0, 0, true});

  ShardedSurveyConfig cfg = sharded(3);
  cfg.engine.faults = &faults;
  cfg.retry.max_attempts = 2;
  ShardedSurveyEngine engine{std::move(cfg)};
  const std::vector<std::size_t> shard1_targets = engine.shard_targets(1);
  engine.run(quick_run(), kRounds, Duration::millis(500));

  EXPECT_TRUE(engine.degraded());
  EXPECT_EQ(engine.shard_attempts(1), 2);
  EXPECT_EQ(engine.failed_shard_indices(), (std::vector<std::size_t>{1}));
  ASSERT_EQ(engine.failure_messages().size(), 1u);
  EXPECT_NE(engine.failure_messages()[0].find("shard/1/abort"), std::string::npos);

  // survey_end accounts for the WHOLE fleet: participants + failed
  // targets == configured targets, and the failed names are shard 1's.
  const SurveyEvent& end = engine.survey_end();
  EXPECT_TRUE(end.degraded);
  EXPECT_EQ(end.failed_shards, 1u);
  EXPECT_EQ(end.targets + end.failed_targets.size(), 6u);
  EXPECT_EQ(end.failed_targets.size(), shard1_targets.size());
  for (const std::size_t i : shard1_targets) {
    EXPECT_NE(std::find(end.failed_targets.begin(), end.failed_targets.end(),
                        "host-" + std::to_string(i)),
              end.failed_targets.end());
  }

  // The participation manifest names every target exactly once.
  const auto manifest = engine.participation();
  ASSERT_EQ(manifest.size(), 6u);
  std::size_t participated = 0;
  for (const auto& [name, ok] : manifest) participated += ok ? 1 : 0;
  EXPECT_EQ(participated, end.targets);

  // The degraded emission carries the accounting: survey_end's tail and
  // the trailing participation record.
  const std::string jsonl = canonical_jsonl(engine);
  const std::vector<report::Json> records = report::read_jsonl_text(jsonl);
  const report::Json& last = records.back();
  EXPECT_EQ(last.at("type").as_string(), "participation");
  EXPECT_EQ(last.at("targets").size(), 6u);
  bool saw_end = false;
  for (const report::Json& r : records) {
    if (r.at("type").as_string() != "survey_end") continue;
    saw_end = true;
    EXPECT_TRUE(r.at("degraded").as_bool());
    EXPECT_EQ(r.at("failed_shards").as_int(), 1);
    EXPECT_EQ(r.at("failed_targets").size(), shard1_targets.size());
  }
  EXPECT_TRUE(saw_end);

  // A degraded run's checkpoint resumes to a CLEAN survey once the fault
  // is gone: the failed shard is simply pending.
  SurveyCheckpoint cp;
  cp.set_header({3, 6, kRounds, 7});
  const ShardedSurveyEngine rebuild{sharded(3)};
  cp.record_shard(rebuild.run_shard(0, quick_run(), kRounds, Duration::millis(500)));
  cp.record_shard(rebuild.run_shard(2, quick_run(), kRounds, Duration::millis(500)));
  ShardedSurveyEngine healed{sharded(3)};
  healed.resume(cp, quick_run(), kRounds, Duration::millis(500));
  EXPECT_FALSE(healed.degraded());
  ShardedSurveyEngine clean{sharded(3)};
  clean.run(quick_run(), kRounds, Duration::millis(500));
  EXPECT_EQ(canonical_jsonl(healed), canonical_jsonl(clean));
}

TEST(RetryPolicy, NonTransientFaultsAreNotRetried) {
  FaultInjector faults{11};
  faults.arm({"shard/0/run", FaultInjector::Mode::kThrow, 1.0, 0, /*transient=*/false});

  ShardedSurveyConfig cfg = sharded(2);
  cfg.engine.faults = &faults;
  cfg.retry.max_attempts = 5;
  ShardedSurveyEngine engine{std::move(cfg)};
  engine.run(quick_run(), kRounds, Duration::millis(500));

  EXPECT_TRUE(engine.degraded());
  // One attempt only: a deterministic failure would fail all five.
  EXPECT_EQ(engine.shard_attempts(0), 1);
  EXPECT_EQ(faults.fired("shard/0/run"), 1u);
}

TEST(TargetTimeout, InjectedTimeoutIsDeterministicAndShardInvariant) {
  const auto run_with_faults = [](std::size_t shards) {
    FaultInjector faults{5};
    // host-2's syn measurements: the first probe of that site fires, so
    // exactly one measurement times out, identically for any shard count
    // (the site is identity-qualified, not schedule-qualified).
    faults.arm({"target/host-2/test/syn", FaultInjector::Mode::kTargetTimeout, 1.0, 1, true});
    ShardedSurveyConfig cfg = sharded(shards);
    cfg.engine.faults = &faults;
    // The injected timeout runs the full measurement deadline in virtual
    // time; keep it short so the test stays fast.
    cfg.engine.measurement_deadline = Duration::seconds(30);
    ShardedSurveyEngine engine{std::move(cfg)};
    engine.run(quick_run(), kRounds, Duration::millis(500));
    return canonical_jsonl(engine);
  };

  const std::string one = run_with_faults(1);
  const std::string three = run_with_faults(3);
  EXPECT_EQ(one, three);

  // The timed-out measurement is recorded inadmissible with the watchdog
  // note — the uncooperative-host outcome, not a crash.
  bool saw_timeout = false;
  for (const report::Json& r : report::read_jsonl_text(one)) {
    if (r.at("type").as_string() != "measurement") continue;
    if (r.at("target").as_string() != "host-2" || r.at("test").as_string() != "syn") continue;
    if (!r.at("admissible").as_bool()) {
      saw_timeout = true;
      EXPECT_EQ(r.at("note").as_string(), "measurement did not complete");
    }
  }
  EXPECT_TRUE(saw_timeout);
}

// ------------------------------------------- crash-safe JSONL artifacts

TEST(CrashSafeJsonl, SinkWriteFailureIsInjectableAndDetected) {
  FaultInjector faults{3};
  faults.arm({"jsonl/write", FaultInjector::Mode::kSinkWriteFailure, 1.0, 1, true});
  std::ostringstream out;
  report::JsonlWriter writer{out};
  writer.set_fault_injector(&faults);

  report::Json line = report::Json::object();
  line.set("type", "probe");
  EXPECT_THROW(writer.write(line), InjectedFault);
  // One fire only (max_fires=1): the stream then keeps working, and the
  // failed write left no partial line behind.
  writer.write(line);
  EXPECT_EQ(out.str(), line.dump() + "\n");
  EXPECT_EQ(writer.lines_written(), 1u);
}

TEST(CrashSafeJsonl, AtomicFilePublishesOnlyOnCommit) {
  const std::string path = "/tmp/reorder_atomic_jsonl_test.jsonl";
  std::remove(path.c_str());
  {
    // Destroyed uncommitted: no artifact, no tmp residue.
    report::AtomicJsonlFile file{path};
    report::Json line = report::Json::object();
    line.set("k", 1);
    file.writer().write(line);
    EXPECT_FALSE(std::ifstream{path}.good());
  }
  EXPECT_FALSE(std::ifstream{path}.good());
  EXPECT_FALSE(std::ifstream{path + ".tmp"}.good());

  {
    report::AtomicJsonlFile file{path};
    report::Json line = report::Json::object();
    line.set("k", 2);
    file.writer().write(line);
    EXPECT_FALSE(std::ifstream{path}.good()) << "nothing published before commit";
    file.commit();
  }
  const std::vector<report::Json> back = report::read_jsonl_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].at("k").as_int(), 2);
}

TEST(CrashSafeJsonl, TruncatedFileRecoversItsWellFormedPrefix) {
  const std::string path = "/tmp/reorder_truncated_jsonl_test.jsonl";
  std::string text;
  for (int i = 0; i < 5; ++i) {
    report::Json line = report::Json::object();
    line.set("i", i);
    text += line.dump() + "\n";
  }
  // Tear the file mid-record 4, as a killed writer would.
  {
    std::ofstream out{path, std::ios::trunc};
    out << text.substr(0, text.size() - 6);
  }

  // The strict reader refuses the torn file outright...
  EXPECT_THROW(report::read_jsonl_file(path), std::runtime_error);
  // ...the recovery reader hands back records 0..3 and reports the tear.
  const report::RecoveredJsonl recovered = report::read_jsonl_file_prefix(path);
  std::remove(path.c_str());
  ASSERT_EQ(recovered.records.size(), 4u);
  EXPECT_EQ(recovered.dropped_lines, 1u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(recovered.records[i].at("i").as_int(), i);
}

// ------------------------------------------------- flaky-target scenario

TEST(FlakyTarget, SynDropsAndRateLimitingAreExercisedYetMeasurementsComplete) {
  ScenarioSpec spec = scenarios::flaky_target(/*seed=*/23);
  spec.tests = {TestSpec{"syn"}, TestSpec{"ping-burst"}};
  spec.rounds = 2;
  spec.run.samples = 10;

  Testbed bed{spec.testbed};
  const ScenarioResult result = run_scenario(bed, spec);

  // The host really is flaky: opening SYNs were dropped and echo replies
  // rate-limited...
  EXPECT_GT(bed.remote().counters().syn_dropped, 0u);
  EXPECT_GT(bed.remote().counters().echo_rate_limited, 0u);
  // ...yet the prober's retransmissions get measurements through: the
  // syn technique stays admissible with usable samples.
  const ReorderEstimate syn = result.aggregate("syn", /*forward=*/true);
  EXPECT_GT(syn.usable(), 0u);
}

// --------------------------------------------------- fleet-stream merge

TEST(FleetMerge, TwoRunsFoldIntoTheCombinedRunsBytes) {
  // Two survey runs over DISJOINT fleet slices, every target's stochastic
  // identity pinned explicitly so the combined run measures the exact
  // same worlds.
  const auto make_target = [](std::size_t i) {
    SurveyTargetConfig target;
    target.name = "m-" + std::to_string(i);
    target.address = tcpip::Ipv4Address::from_octets(10, 1, 0, static_cast<std::uint8_t>(10 + i));
    target.forward.swap_probability = (i % 2) * 0.13;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {TestSpec{"single-connection"}, TestSpec{"syn"}};
    const util::TargetSeeds seeds = util::ShardSeeder{99}.target(i);
    target.host_seed = seeds.host_seed;
    target.ipid_initial = seeds.ipid_initial;
    target.forward_path_tag = seeds.forward_tag;
    target.reverse_path_tag = seeds.reverse_tag;
    return target;
  };
  const auto run_slice = [&](std::size_t begin, std::size_t end) {
    ShardedSurveyConfig cfg;
    cfg.fleet.seed = 99;
    for (std::size_t i = begin; i < end; ++i) cfg.fleet.targets.push_back(make_target(i));
    cfg.shards = 2;
    cfg.threads = 2;
    ShardedSurveyEngine engine{std::move(cfg)};
    engine.run(quick_run(), kRounds, Duration::millis(500));
    return canonical_jsonl(engine);
  };

  const std::string east = run_slice(0, 2);
  const std::string west = run_slice(2, 4);
  const std::string combined = run_slice(0, 4);

  const std::vector<report::Json> merged = merge_fleet_streams(
      {report::read_jsonl_text(east), report::read_jsonl_text(west)});
  std::string merged_text;
  for (const report::Json& record : merged) merged_text += record.dump() + "\n";
  EXPECT_EQ(merged_text, combined);

  // And the fold is idempotent: merging one run reproduces it.
  const std::vector<report::Json> self = merge_fleet_streams({report::read_jsonl_text(east)});
  std::string self_text;
  for (const report::Json& record : self) self_text += record.dump() + "\n";
  EXPECT_EQ(self_text, east);
}

TEST(FleetMerge, TornInputIsRejected) {
  // A sample line whose measurement record is missing (torn artifact).
  report::Json sample = report::Json::object();
  sample.set("type", "sample");
  sample.set("target", "h");
  sample.set("test", "syn");
  sample.set("measurement", 0);
  EXPECT_THROW(merge_fleet_streams({{sample}}), std::runtime_error);
}

}  // namespace
}  // namespace reorder::core
