// Tests for the dual-connection test's IPID admissibility analysis.
#include <gtest/gtest.h>

#include "core/ipid_validator.hpp"
#include "util/random.hpp"

namespace reorder::core {
namespace {

std::vector<IpidObservation> alternating(std::size_t pairs,
                                         const std::function<std::uint16_t(int conn)>& next) {
  std::vector<IpidObservation> obs;
  for (std::size_t i = 0; i < pairs; ++i) {
    obs.push_back(IpidObservation{next(0), 0});
    obs.push_back(IpidObservation{next(1), 1});
  }
  return obs;
}

TEST(IpidValidator, SharedCounterIsAdmissible) {
  std::uint16_t counter = 100;
  const auto obs = alternating(8, [&](int) { return counter++; });
  const auto a = analyze_ipid_sequence(obs);
  EXPECT_EQ(a.verdict, IpidVerdict::kSharedMonotonic);
  EXPECT_GT(a.between_increase_fraction, 0.95);
  EXPECT_GT(a.within_increase_fraction, 0.95);
  EXPECT_GT(a.domination_fraction, 0.95);
}

TEST(IpidValidator, SharedCounterWithCrossTrafficGaps) {
  // A busy host: other traffic consumes a few IPIDs between our probes.
  std::uint16_t counter = 5;
  util::Rng rng{7};
  const auto obs = alternating(8, [&](int) {
    counter = static_cast<std::uint16_t>(counter + 1 + rng.below(5));
    return counter;
  });
  EXPECT_EQ(analyze_ipid_sequence(obs).verdict, IpidVerdict::kSharedMonotonic);
}

TEST(IpidValidator, SharedCounterSurvivesWrap) {
  std::uint16_t counter = 65530;
  const auto obs = alternating(8, [&](int) { return counter++; });
  EXPECT_EQ(analyze_ipid_sequence(obs).verdict, IpidVerdict::kSharedMonotonic);
}

TEST(IpidValidator, ConstantZeroDetected) {
  const auto obs = alternating(8, [](int) { return std::uint16_t{0}; });
  const auto a = analyze_ipid_sequence(obs);
  EXPECT_EQ(a.verdict, IpidVerdict::kConstantZero);
  EXPECT_DOUBLE_EQ(a.zero_fraction, 1.0);
}

TEST(IpidValidator, RandomDetected) {
  util::Rng rng{13};
  const auto obs = alternating(8, [&](int) { return static_cast<std::uint16_t>(rng.below(65536)); });
  EXPECT_EQ(analyze_ipid_sequence(obs).verdict, IpidVerdict::kRandom);
}

TEST(IpidValidator, LoadBalancerDisjointCountersDetected) {
  // Two backends with independent counters far apart: within-connection
  // steps are clean, between-connection steps are garbage.
  std::uint16_t c0 = 100;
  std::uint16_t c1 = 40'000;
  const auto obs = alternating(8, [&](int conn) { return conn == 0 ? c0++ : c1++; });
  const auto a = analyze_ipid_sequence(obs);
  EXPECT_EQ(a.verdict, IpidVerdict::kDisjoint);
  EXPECT_GT(a.within_increase_fraction, 0.95);
  EXPECT_LT(a.between_increase_fraction, 0.6);
}

TEST(IpidValidator, TooFewObservations) {
  std::uint16_t counter = 1;
  const auto obs = alternating(2, [&](int) { return counter++; });
  EXPECT_EQ(analyze_ipid_sequence(obs).verdict, IpidVerdict::kInsufficient);
}

TEST(IpidValidator, ObservationCountRecorded) {
  std::uint16_t counter = 1;
  const auto obs = alternating(8, [&](int) { return counter++; });
  EXPECT_EQ(analyze_ipid_sequence(obs).observations, 16u);
}

TEST(IpidValidator, VerdictNames) {
  EXPECT_EQ(to_string(IpidVerdict::kSharedMonotonic), "shared-monotonic");
  EXPECT_EQ(to_string(IpidVerdict::kConstantZero), "constant-zero");
  EXPECT_EQ(to_string(IpidVerdict::kRandom), "random");
  EXPECT_EQ(to_string(IpidVerdict::kDisjoint), "disjoint (load balancer)");
  EXPECT_EQ(to_string(IpidVerdict::kInsufficient), "insufficient data");
}

}  // namespace
}  // namespace reorder::core
