// Tests for the IPID generation policies the dual-connection test depends
// on (and is defeated by).
#include <gtest/gtest.h>

#include <set>

#include "tcpip/ipid.hpp"
#include "tcpip/seq.hpp"

namespace reorder::tcpip {
namespace {

const Ipv4Address kDstA = Ipv4Address::from_octets(10, 0, 0, 2);
const Ipv4Address kDstB = Ipv4Address::from_octets(10, 0, 0, 3);

TEST(Ipid, GlobalCounterIncrementsByOne) {
  auto gen = make_ipid_generator(IpidPolicy::kGlobalCounter, 1, 100);
  EXPECT_EQ(gen->next(kDstA), 100);
  EXPECT_EQ(gen->next(kDstB), 101);  // shared across destinations
  EXPECT_EQ(gen->next(kDstA), 102);
  EXPECT_EQ(gen->policy(), IpidPolicy::kGlobalCounter);
}

TEST(Ipid, GlobalCounterWraps) {
  auto gen = make_ipid_generator(IpidPolicy::kGlobalCounter, 1, 65535);
  EXPECT_EQ(gen->next(kDstA), 65535);
  EXPECT_EQ(gen->next(kDstA), 0);
  EXPECT_EQ(gen->next(kDstA), 1);
}

TEST(Ipid, PerDestinationIndependentCounters) {
  auto gen = make_ipid_generator(IpidPolicy::kPerDestination, 1, 50);
  EXPECT_EQ(gen->next(kDstA), 50);
  EXPECT_EQ(gen->next(kDstB), 50);  // each destination starts fresh
  EXPECT_EQ(gen->next(kDstA), 51);
  EXPECT_EQ(gen->next(kDstB), 51);
}

TEST(Ipid, RandomSpreadsAcrossSpace) {
  auto gen = make_ipid_generator(IpidPolicy::kRandom, 77);
  std::set<std::uint16_t> seen;
  int monotonic_steps = 0;
  std::uint16_t prev = gen->next(kDstA);
  seen.insert(prev);
  for (int i = 0; i < 500; ++i) {
    const auto v = gen->next(kDstA);
    if (ipid_gt(v, prev) && ipid_diff(v, prev) < 512) ++monotonic_steps;
    prev = v;
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 450u) << "random IPIDs should rarely collide";
  EXPECT_LT(monotonic_steps, 50) << "random IPIDs must not look like a counter";
}

TEST(Ipid, RandomIsDeterministicPerSeed) {
  auto a = make_ipid_generator(IpidPolicy::kRandom, 42);
  auto b = make_ipid_generator(IpidPolicy::kRandom, 42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a->next(kDstA), b->next(kDstA));
}

TEST(Ipid, ConstantZero) {
  auto gen = make_ipid_generator(IpidPolicy::kConstantZero, 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(gen->next(kDstA), 0);
}

TEST(Ipid, RandomIncrementIsMonotonicSmallSteps) {
  auto gen = make_ipid_generator(IpidPolicy::kRandomIncrement, 5, 10);
  std::uint16_t prev = gen->next(kDstA);
  for (int i = 0; i < 300; ++i) {
    const auto v = gen->next(kDstA);
    const auto d = ipid_diff(v, prev);
    EXPECT_GT(d, 0);
    EXPECT_LE(d, 7);
    prev = v;
  }
}

TEST(Ipid, PolicyNames) {
  EXPECT_EQ(to_string(IpidPolicy::kGlobalCounter), "global-counter");
  EXPECT_EQ(to_string(IpidPolicy::kPerDestination), "per-destination");
  EXPECT_EQ(to_string(IpidPolicy::kRandom), "random");
  EXPECT_EQ(to_string(IpidPolicy::kConstantZero), "constant-zero");
  EXPECT_EQ(to_string(IpidPolicy::kRandomIncrement), "random-increment");
}

}  // namespace
}  // namespace reorder::tcpip
