// util::ThreadPool: the sharded runtime's execution substrate. Jobs all
// run exactly once, worker exceptions surface at the join point, and
// destruction drains the queue.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace reorder::util {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{4};
    std::vector<std::future<void>> done;
    for (int i = 0; i < 100; ++i) {
      done.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : done) f.get();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, SpreadsWorkAcrossWorkers) {
  std::mutex mu;
  std::set<std::thread::id> workers;
  std::atomic<int> rendezvous{0};
  ThreadPool pool{2};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 2; ++i) {
    done.push_back(pool.submit([&] {
      // Hold both workers in the job until each has arrived, so two
      // distinct threads must participate.
      rendezvous.fetch_add(1);
      while (rendezvous.load() < 2) std::this_thread::yield();
      const std::lock_guard<std::mutex> lock{mu};
      workers.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(workers.size(), 2u);
}

TEST(ThreadPool, ExceptionsSurfaceThroughTheFuture) {
  ThreadPool pool{2};
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error{"shard failed"}; });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructionDrainsPendingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 8; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
  }  // ~ThreadPool joins only after the queue is empty
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace reorder::util
