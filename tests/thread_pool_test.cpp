// util::ThreadPool: the sharded runtime's execution substrate. Jobs all
// run exactly once, worker exceptions surface at the join point, and
// destruction drains the queue. Plus util::WorkStealingPool, the survey
// service's scheduler: the same contracts under stealing, oversubscription
// and empty-victim races, with the steal counters accounting exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/work_stealing_pool.hpp"

namespace reorder::util {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{4};
    std::vector<std::future<void>> done;
    for (int i = 0; i < 100; ++i) {
      done.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : done) f.get();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, SpreadsWorkAcrossWorkers) {
  std::mutex mu;
  std::set<std::thread::id> workers;
  std::atomic<int> rendezvous{0};
  ThreadPool pool{2};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 2; ++i) {
    done.push_back(pool.submit([&] {
      // Hold both workers in the job until each has arrived, so two
      // distinct threads must participate.
      rendezvous.fetch_add(1);
      while (rendezvous.load() < 2) std::this_thread::yield();
      const std::lock_guard<std::mutex> lock{mu};
      workers.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(workers.size(), 2u);
}

TEST(ThreadPool, ExceptionsSurfaceThroughTheFuture) {
  ThreadPool pool{2};
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error{"shard failed"}; });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructionDrainsPendingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 8; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
  }  // ~ThreadPool joins only after the queue is empty
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(WorkStealingPool, RunsEveryJobExactlyOnceWithStealing) {
  std::atomic<int> counter{0};
  WorkStealingPool pool{4};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 200; ++i) {
    done.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(WorkStealingPool, SurvivesOversubscription) {
  // Far more workers than cores: correctness must not depend on every
  // worker making progress promptly (context switches only cost time).
  const std::size_t threads = 4 * ThreadPool::hardware_threads();
  std::atomic<int> counter{0};
  WorkStealingPool pool{threads};
  EXPECT_EQ(pool.size(), threads);
  std::vector<std::future<void>> done;
  for (int i = 0; i < 500; ++i) {
    done.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(WorkStealingPool, EmptyVictimRacesAreHarmless) {
  // Many thieves, almost no work, several producers racing tiny bursts in:
  // most steal probes hit EMPTY deques concurrently with pushes and pops.
  // The assertion here is exactly-once execution; under TSAN this is also
  // the data-race gauntlet for the per-deque locking.
  WorkStealingPool pool{8};
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  std::mutex mu;
  std::vector<std::future<void>> done;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto f = pool.submit([&counter] { counter.fetch_add(1); });
        const std::lock_guard<std::mutex> lock{mu};
        done.push_back(std::move(f));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& f : done) f.get();
  EXPECT_EQ(counter.load(), 4 * 50);
}

TEST(WorkStealingPool, StealCountersAccountExactly) {
  WorkStealingPool pool{4};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 300; ++i) {
    done.push_back(pool.submit([] {}));
  }
  for (auto& f : done) f.get();
  const WorkStealingPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 300u);
  EXPECT_EQ(stats.executed, 300u);
  ASSERT_EQ(stats.executed_by_worker.size(), 4u);
  ASSERT_EQ(stats.stolen_by_worker.size(), 4u);
  std::uint64_t executed_sum = 0;
  std::uint64_t stolen_sum = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    executed_sum += stats.executed_by_worker[w];
    stolen_sum += stats.stolen_by_worker[w];
  }
  EXPECT_EQ(executed_sum, stats.executed);
  EXPECT_EQ(stolen_sum, stats.stolen);
  EXPECT_LE(stats.stolen, stats.executed);
  // Every successful steal was an attempt; empty probes only add to
  // attempts.
  EXPECT_GE(stats.steal_attempts, stats.stolen);
}

TEST(WorkStealingPool, StealsFromABlockedWorkersDeque) {
  // One job camps on a worker while the round-robin keeps loading both
  // deques; the blocked worker's backlog is only drainable by theft.
  WorkStealingPool pool{2};
  std::atomic<int> counter{0};
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto blocker = pool.submit([released] { released.wait(); });
  std::vector<std::future<void>> done;
  for (int i = 0; i < 20; ++i) {
    done.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : done) f.get();  // completes while the blocker still holds its worker
  EXPECT_EQ(counter.load(), 20);
  EXPECT_GE(pool.stats().stolen, 1u);
  release.set_value();
  blocker.get();
}

TEST(WorkStealingPool, FifoFallbackMatchesSubmissionOrder) {
  // steal=false with one worker must degenerate to exactly ThreadPool's
  // FIFO; the steal-mode owner pop is front-first, so a single steal-mode
  // worker preserves the same order — the equivalence the service's
  // no-steal mode relies on.
  for (const bool steal : {false, true}) {
    WorkStealingPool::Options options;
    options.threads = 1;
    options.steal = steal;
    WorkStealingPool pool{options};
    EXPECT_EQ(pool.stealing_enabled(), steal);
    std::vector<int> order;
    std::vector<std::future<void>> done;
    for (int i = 0; i < 32; ++i) {
      done.push_back(pool.submit([&order, i] { order.push_back(i); }));
    }
    for (auto& f : done) f.get();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    if (!steal) {
      EXPECT_EQ(pool.stats().stolen, 0u);
    }
  }
}

TEST(WorkStealingPool, ExceptionsSurfaceThroughTheFuture) {
  WorkStealingPool pool{2};
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error{"target failed"}; });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(WorkStealingPool, DestructionDrainsPendingJobsInBothModes) {
  for (const bool steal : {true, false}) {
    std::atomic<int> counter{0};
    {
      WorkStealingPool::Options options;
      options.threads = 2;
      options.steal = steal;
      WorkStealingPool pool{options};
      for (int i = 0; i < 16; ++i) {
        pool.submit([&counter] {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          counter.fetch_add(1);
        });
      }
    }  // ~WorkStealingPool joins only after every deque is empty
    EXPECT_EQ(counter.load(), 16);
  }
}

}  // namespace
}  // namespace reorder::util
