// Unit tests for the discrete-event loop: ordering, ties, cancellation,
// bounded runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "netsim/event_loop.hpp"

namespace reorder::sim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(EventLoop, RunsInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(30), [&] { order.push_back(3); });
  loop.schedule(Duration::millis(10), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint::epoch() + Duration::millis(30));
}

TEST(EventLoop, FifoForEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, EventsScheduledWhileRunning) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(1), [&] {
    order.push_back(1);
    loop.schedule(Duration::millis(1), [&] { order.push_back(2); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now().ns(), Duration::millis(2).ns());
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto token = loop.schedule(Duration::millis(1), [&] { ran = true; });
  loop.cancel(token);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterRun) {
  EventLoop loop;
  const auto token = loop.schedule(Duration::millis(1), [] {});
  loop.run();
  loop.cancel(token);  // already executed: no-op
  loop.cancel(999999); // never existed: no-op
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(10), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(30), [&] { order.push_back(2); });
  const auto n = loop.run_until(TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  // The clock parks exactly at the deadline even with no event there.
  EXPECT_EQ(loop.now().ns(), Duration::millis(20).ns());
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, AdvanceMovesClockWithEmptyQueue) {
  EventLoop loop;
  loop.advance(Duration::seconds(5));
  EXPECT_EQ(loop.now().ns(), Duration::seconds(5).ns());
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.advance(Duration::millis(10));
  bool ran = false;
  loop.schedule(Duration::millis(-5), [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now().ns(), Duration::millis(10).ns());
}

TEST(EventLoop, ScheduleAtPastClampsToNow) {
  EventLoop loop;
  loop.advance(Duration::millis(10));
  TimePoint when;
  loop.schedule_at(TimePoint::epoch(), [&] { when = loop.now(); });
  loop.run();
  EXPECT_EQ(when.ns(), Duration::millis(10).ns());
}

TEST(EventLoop, RunWhileStopsWhenPredicateFalse) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(Duration::millis(i), [&] { ++count; });
  }
  const bool stopped = loop.run_while(TimePoint::epoch() + Duration::seconds(1),
                                      [&] { return count < 3; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, RunWhileReturnsFalseOnDrain) {
  EventLoop loop;
  loop.schedule(Duration::millis(1), [] {});
  const bool stopped =
      loop.run_while(TimePoint::epoch() + Duration::seconds(1), [] { return true; });
  EXPECT_FALSE(stopped);
}

TEST(EventLoop, RunWhileRespectsDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule(Duration::seconds(10), [&] { ++count; });
  const bool stopped =
      loop.run_while(TimePoint::epoch() + Duration::seconds(1), [] { return true; });
  EXPECT_FALSE(stopped);
  EXPECT_EQ(count, 0);
  EXPECT_EQ(loop.now().ns(), Duration::seconds(1).ns());
}

TEST(EventLoop, CountsExecutedEvents) {
  EventLoop loop;
  for (int i = 0; i < 5; ++i) loop.schedule(Duration::millis(i), [] {});
  loop.run();
  EXPECT_EQ(loop.events_executed(), 5u);
}

// Regression: run_while used to leave now() at the last event time when the
// queue drained before the deadline, while run_until advanced it. The two
// must agree: the clock always reaches the deadline unless the predicate
// stopped the run.
TEST(EventLoop, RunWhileAdvancesClockToDeadlineOnDrain) {
  EventLoop loop;
  loop.schedule(Duration::millis(1), [] {});
  const bool stopped =
      loop.run_while(TimePoint::epoch() + Duration::seconds(1), [] { return true; });
  EXPECT_FALSE(stopped);
  EXPECT_EQ(loop.now().ns(), Duration::seconds(1).ns());
}

TEST(EventLoop, RunWhileAdvancesClockOnEmptyQueue) {
  EventLoop loop;
  const bool stopped =
      loop.run_while(TimePoint::epoch() + Duration::millis(250), [] { return true; });
  EXPECT_FALSE(stopped);
  EXPECT_EQ(loop.now().ns(), Duration::millis(250).ns());
}

// The new scheduler's FIFO tie-break under a same-timestamp flood, large
// enough to exercise many levels of the 4-ary heap.
TEST(EventLoop, FifoUnderSameTimestampFlood) {
  EventLoop loop;
  std::vector<int> order;
  constexpr int kFlood = 5000;
  order.reserve(kFlood);
  for (int i = 0; i < kFlood; ++i) {
    loop.schedule(Duration::millis(1), [&order, i] { order.push_back(i); });
  }
  loop.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFlood));
  for (int i = 0; i < kFlood; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// Interleaved timestamps + same-timestamp runs: ordering is (time, FIFO).
TEST(EventLoop, TimestampThenFifoAcrossMixedSchedule) {
  EventLoop loop;
  std::vector<int> order;
  int label = 0;
  // Three events per timestamp, timestamps scheduled out of order.
  for (int t : {5, 1, 3, 1, 5, 3, 1, 3, 5}) {
    loop.schedule(Duration::millis(t), [&order, t, label] { order.push_back(t * 100 + label); });
    ++label;
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{101, 103, 106, 302, 305, 307, 500, 504, 508}));
}

TEST(EventLoop, CancelOfCancelledTokenIsNoop) {
  EventLoop loop;
  bool a_ran = false;
  bool b_ran = false;
  const auto token = loop.schedule(Duration::millis(1), [&] { a_ran = true; });
  loop.cancel(token);
  // Second cancel of the same token: the slot may already belong to a new
  // event; the stale generation must make this a no-op.
  const auto token_b = loop.schedule(Duration::millis(1), [&] { b_ran = true; });
  loop.cancel(token);
  loop.cancel(token);
  loop.run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
  EXPECT_NE(token, token_b);
}

// Regression: token 0 is the universal "no timer armed" sentinel. After an
// event runs, its slot sits on the freelist with a zeroed live tag;
// cancel(0) must not match it (that would double-free the slot and corrupt
// the freelist / pending count).
TEST(EventLoop, CancelOfZeroSentinelIsNoop) {
  EventLoop loop;
  int ran = 0;
  loop.schedule(Duration::millis(1), [&] { ++ran; });
  loop.run();
  loop.cancel(0);
  EXPECT_EQ(loop.pending(), 0u);
  // Both follow-up events must get distinct slots and run exactly once.
  loop.schedule(Duration::millis(1), [&] { ++ran; });
  loop.schedule(Duration::millis(1), [&] { ++ran; });
  EXPECT_EQ(loop.pending(), 2u);
  loop.run();
  EXPECT_EQ(ran, 3);
}

// A slot freed by execution gets reused by later schedules; the old token
// must never cancel the new occupant.
TEST(EventLoop, TokenReuseAcrossGenerations) {
  EventLoop loop;
  int ran = 0;
  std::vector<std::uint64_t> tokens;
  for (int round = 0; round < 100; ++round) {
    const auto t = loop.schedule(Duration::millis(1), [&] { ++ran; });
    EXPECT_NE(t, 0u);  // 0 is the universal "no timer" sentinel
    tokens.push_back(t);
    loop.run();
    for (const auto stale : tokens) loop.cancel(stale);  // all already run
  }
  EXPECT_EQ(ran, 100);
  // Every token was distinct even though slots were recycled.
  std::sort(tokens.begin(), tokens.end());
  EXPECT_EQ(std::adjacent_find(tokens.begin(), tokens.end()), tokens.end());
}

TEST(EventLoop, CancelInterleavedWithExecutionKeepsOrder) {
  EventLoop loop;
  std::vector<int> order;
  std::vector<std::uint64_t> tokens;
  for (int i = 0; i < 100; ++i) {
    tokens.push_back(loop.schedule(Duration::millis(i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 2) loop.cancel(tokens[static_cast<std::size_t>(i)]);
  loop.run();
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(2 * i + 1));
  }
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_TRUE(loop.empty());
}

// pending() counts live events only: lazily-cancelled entries are excluded
// even while their heap entries still exist.
TEST(EventLoop, PendingExcludesCancelled) {
  EventLoop loop;
  const auto a = loop.schedule(Duration::millis(1), [] {});
  loop.schedule(Duration::millis(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(loop.pending(), 0u);
}

// run_until must not be fooled by a cancelled event sitting at the head of
// the queue with a timestamp inside the window.
TEST(EventLoop, RunUntilSkipsCancelledHead) {
  EventLoop loop;
  bool cancelled_ran = false;
  bool late_ran = false;
  const auto a = loop.schedule(Duration::millis(1), [&] { cancelled_ran = true; });
  loop.schedule(Duration::millis(50), [&] { late_ran = true; });
  loop.cancel(a);
  const auto n = loop.run_until(TimePoint::epoch() + Duration::millis(10));
  EXPECT_EQ(n, 0u);
  EXPECT_FALSE(cancelled_ran);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(loop.now().ns(), Duration::millis(10).ns());
}

// The reference map policy must satisfy the same contract (it is the
// differential-testing oracle).
TEST(EventLoop, ReferenceMapPolicyMatchesContract) {
  EventLoop loop{EventLoop::QueuePolicy::kReferenceMap};
  std::vector<int> order;
  const auto a = loop.schedule(Duration::millis(2), [&] { order.push_back(99); });
  for (int i = 0; i < 5; ++i) {
    loop.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  loop.cancel(a);
  loop.cancel(a);
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  const bool stopped =
      loop.run_while(loop.now() + Duration::seconds(1), [] { return true; });
  EXPECT_FALSE(stopped);
  EXPECT_EQ(loop.now().ns(), (Duration::millis(5) + Duration::seconds(1)).ns());
}

// Both policies report identical executed-hook streams for an identical
// schedule/cancel workload — the scheduler-level order-equivalence check.
TEST(EventLoop, HookStreamsIdenticalAcrossPolicies) {
  using Event = std::pair<std::int64_t, std::uint64_t>;
  auto drive = [](EventLoop::QueuePolicy policy) {
    EventLoop loop{policy};
    std::vector<Event> events;
    loop.set_executed_hook(
        [&events](TimePoint at, std::uint64_t seq) { events.emplace_back(at.ns(), seq); });
    std::vector<std::uint64_t> tokens;
    for (int i = 0; i < 200; ++i) {
      tokens.push_back(loop.schedule(Duration::micros((i * 37) % 101), [] {}));
    }
    for (int i = 0; i < 200; i += 3) loop.cancel(tokens[static_cast<std::size_t>(i)]);
    for (int i = 0; i < 50; ++i) {
      loop.schedule(Duration::micros((i * 29) % 53), [] {});
    }
    loop.run();
    return events;
  };
  const auto heap_events = drive(EventLoop::QueuePolicy::kIndexedHeap);
  const auto map_events = drive(EventLoop::QueuePolicy::kReferenceMap);
  EXPECT_EQ(heap_events, map_events);
  EXPECT_FALSE(heap_events.empty());
}

}  // namespace
}  // namespace reorder::sim
