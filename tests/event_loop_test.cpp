// Unit tests for the discrete-event loop: ordering, ties, cancellation,
// bounded runs.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_loop.hpp"

namespace reorder::sim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(EventLoop, RunsInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(30), [&] { order.push_back(3); });
  loop.schedule(Duration::millis(10), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint::epoch() + Duration::millis(30));
}

TEST(EventLoop, FifoForEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, EventsScheduledWhileRunning) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(1), [&] {
    order.push_back(1);
    loop.schedule(Duration::millis(1), [&] { order.push_back(2); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now().ns(), Duration::millis(2).ns());
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto token = loop.schedule(Duration::millis(1), [&] { ran = true; });
  loop.cancel(token);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterRun) {
  EventLoop loop;
  const auto token = loop.schedule(Duration::millis(1), [] {});
  loop.run();
  loop.cancel(token);  // already executed: no-op
  loop.cancel(999999); // never existed: no-op
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(10), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(30), [&] { order.push_back(2); });
  const auto n = loop.run_until(TimePoint::epoch() + Duration::millis(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  // The clock parks exactly at the deadline even with no event there.
  EXPECT_EQ(loop.now().ns(), Duration::millis(20).ns());
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, AdvanceMovesClockWithEmptyQueue) {
  EventLoop loop;
  loop.advance(Duration::seconds(5));
  EXPECT_EQ(loop.now().ns(), Duration::seconds(5).ns());
}

TEST(EventLoop, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.advance(Duration::millis(10));
  bool ran = false;
  loop.schedule(Duration::millis(-5), [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now().ns(), Duration::millis(10).ns());
}

TEST(EventLoop, ScheduleAtPastClampsToNow) {
  EventLoop loop;
  loop.advance(Duration::millis(10));
  TimePoint when;
  loop.schedule_at(TimePoint::epoch(), [&] { when = loop.now(); });
  loop.run();
  EXPECT_EQ(when.ns(), Duration::millis(10).ns());
}

TEST(EventLoop, RunWhileStopsWhenPredicateFalse) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(Duration::millis(i), [&] { ++count; });
  }
  const bool stopped = loop.run_while(TimePoint::epoch() + Duration::seconds(1),
                                      [&] { return count < 3; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, RunWhileReturnsFalseOnDrain) {
  EventLoop loop;
  loop.schedule(Duration::millis(1), [] {});
  const bool stopped =
      loop.run_while(TimePoint::epoch() + Duration::seconds(1), [] { return true; });
  EXPECT_FALSE(stopped);
}

TEST(EventLoop, RunWhileRespectsDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule(Duration::seconds(10), [&] { ++count; });
  const bool stopped =
      loop.run_while(TimePoint::epoch() + Duration::seconds(1), [] { return true; });
  EXPECT_FALSE(stopped);
  EXPECT_EQ(count, 0);
  EXPECT_EQ(loop.now().ns(), Duration::seconds(1).ns());
}

TEST(EventLoop, CountsExecutedEvents) {
  EventLoop loop;
  for (int i = 0; i < 5; ++i) loop.schedule(Duration::millis(i), [] {});
  loop.run();
  EXPECT_EQ(loop.events_executed(), 5u);
}

}  // namespace
}  // namespace reorder::sim
