// Deep behavioural tests for the Single Connection Test: both send-order
// variants against both delayed-ACK stack behaviours, reverse-path
// detection, loss handling, gap parameter, and ground-truth agreement.
#include <gtest/gtest.h>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "trace/analyzer.hpp"

namespace reorder::core {
namespace {

using util::Duration;

TEST(SingleConnDeep, InOrderVariantAmbiguousOnDelayedAckStack) {
  // Paper §III-B: with samples sent in order and a stack that treats the
  // hole-filling segment as ordinary in-order data, the receiver coalesces
  // into a lone final ACK and the sample is unusable.
  TestbedConfig cfg;
  cfg.seed = 101;
  Testbed bed{cfg};  // default stack: immediate_ack_on_hole_fill = false
  SingleConnectionOptions opts;
  opts.reversed_order = false;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection", 0, opts});
  TestRunConfig run;
  run.samples = 10;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.forward.ambiguous, 10)
      << "delayed-ACK coalescing must make every clean-path in-order sample ambiguous";
}

TEST(SingleConnDeep, InOrderVariantWorksOnRfc5681Stack) {
  TestbedConfig cfg;
  cfg.seed = 102;
  cfg.remote = default_remote_config();
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  Testbed bed{cfg};
  SingleConnectionOptions opts;
  opts.reversed_order = false;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection", 0, opts});
  TestRunConfig run;
  run.samples = 10;
  const auto result = bed.run_sync(*test, run);
  EXPECT_EQ(result.forward.in_order, 10)
      << "a hole-fill-ACKing stack resolves the in-order variant";
  EXPECT_EQ(result.reverse.in_order, 10);
}

TEST(SingleConnDeep, ReversedVariantDetectsForwardReordering) {
  TestbedConfig cfg;
  cfg.seed = 103;
  cfg.forward.swap_probability = 1.0;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
  TestRunConfig run;
  run.samples = 10;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  // Reversed variant + forward swap -> samples arrive "in natural order"
  // at the receiver -> lone final ACK -> reported reordered (paper's
  // loss-aliased interpretation).
  EXPECT_EQ(result.forward.reordered, 10);
}

TEST(SingleConnDeep, ReversedVariantStrictModeReportsAmbiguous) {
  TestbedConfig cfg;
  cfg.seed = 104;
  cfg.forward.swap_probability = 1.0;
  Testbed bed{cfg};
  SingleConnectionOptions opts;
  opts.lone_final_ack_is_reordered = false;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection", 0, opts});
  TestRunConfig run;
  run.samples = 8;
  const auto result = bed.run_sync(*test, run);
  EXPECT_EQ(result.forward.ambiguous, 8);
  EXPECT_EQ(result.forward.reordered, 0);
}

TEST(SingleConnDeep, DetectsReverseReordering) {
  TestbedConfig cfg;
  cfg.seed = 105;
  cfg.reverse.swap_probability = 1.0;
  // A stack that delays the hole-fill ACK spaces the two ACKs ~200 ms
  // apart — further than any adjacent-swap process reaches — so use the
  // RFC 5681 behaviour, under which the ACK pair leaves back-to-back.
  cfg.remote = default_remote_config();
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
  TestRunConfig run;
  run.samples = 10;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_GE(result.reverse.reordered, 8);
  EXPECT_EQ(result.forward.in_order, result.reverse.reordered + result.reverse.in_order)
      << "forward verdicts stay usable while the ACK pair is exchanged";
}

TEST(SingleConnDeep, DelayedHoleFillAckDefeatsReverseMeasurement) {
  // The counterpart of the test above: the default stack's delayed
  // hole-fill ACK separates the ACK pair by the delayed-ACK timeout, so
  // an adjacent-swap process never exchanges them — the reverse verdicts
  // stay in-order (correctly: the ACKs genuinely were not reordered).
  TestbedConfig cfg;
  cfg.seed = 111;
  cfg.reverse.swap_probability = 1.0;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
  TestRunConfig run;
  run.samples = 8;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.reverse.reordered, 0);
  EXPECT_EQ(result.reverse.in_order, 8);
}

TEST(SingleConnDeep, LossMakesSamplesDiscarded) {
  TestbedConfig cfg;
  cfg.seed = 106;
  cfg.forward.loss_probability = 0.35;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
  TestRunConfig run;
  run.samples = 20;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(static_cast<int>(result.samples.size()), 20);
  EXPECT_GT(result.forward.lost + result.forward.reordered + result.forward.ambiguous, 0)
      << "35% loss must impair some samples";
  EXPECT_GT(result.forward.in_order, 0) << "...but not all of them";
}

TEST(SingleConnDeep, GapParameterSpacesSamplePackets) {
  TestbedConfig cfg;
  cfg.seed = 107;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
  TestRunConfig run;
  run.samples = 5;
  run.inter_packet_gap = Duration::micros(300);
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.forward.in_order, 5);
  // Verify on the wire: each sample pair's arrivals at the remote must be
  // >= 300us apart (serialization adds a little more).
  for (const auto& s : result.samples) {
    const auto& buf = bed.remote_ingress_trace();
    util::TimePoint first_at;
    util::TimePoint second_at;
    for (const auto& rec : buf.records()) {
      if (rec.packet.uid == s.fwd_uid_first) first_at = rec.at;
      if (rec.packet.uid == s.fwd_uid_second) second_at = rec.at;
    }
    EXPECT_GE((second_at - first_at).ns(), Duration::micros(300).ns());
    EXPECT_EQ(s.gap.ns(), Duration::micros(300).ns());
  }
}

TEST(SingleConnDeep, VerdictsMatchGroundTruthUnderModerateSwaps) {
  TestbedConfig cfg;
  cfg.seed = 108;
  cfg.forward.swap_probability = 0.3;
  cfg.reverse.swap_probability = 0.2;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
  TestRunConfig run;
  run.samples = 60;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  int checked = 0;
  for (const auto& s : result.samples) {
    if (s.forward != Ordering::kInOrder && s.forward != Ordering::kReordered) continue;
    // The reversed variant reports "reordered" for lone final ACKs; those
    // have no reverse uids and are skipped from exact matching when the
    // ACK evidence is incomplete.
    const auto truth =
        trace::pair_ground_truth(bed.remote_ingress_trace(), s.fwd_uid_first, s.fwd_uid_second);
    if (truth == trace::PairGroundTruth::kIncomplete) continue;
    const bool said_reordered = s.forward == Ordering::kReordered;
    const bool was_reordered = truth == trace::PairGroundTruth::kReordered;
    EXPECT_EQ(said_reordered, was_reordered) << "sample " << checked;
    ++checked;
  }
  EXPECT_GT(checked, 30) << "most samples must be verifiable";
}

TEST(SingleConnDeep, ConnectFailureIsInadmissible) {
  TestbedConfig cfg;
  cfg.seed = 109;
  cfg.forward.loss_probability = 1.0;
  Testbed bed{cfg};
  SingleConnectionOptions opts;
  opts.connection.max_syn_retries = 1;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection", 0, opts});
  TestRunConfig run;
  run.samples = 3;
  const auto result = bed.run_sync(*test, run);
  EXPECT_FALSE(result.admissible);
  EXPECT_EQ(result.note, "connect failed");
}

TEST(SingleConnDeep, NamesReflectVariant) {
  TestbedConfig cfg;
  Testbed bed{cfg};
  SingleConnectionOptions inorder;
  inorder.reversed_order = false;
  EXPECT_EQ(make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection", 9})
                ->name(),
            "single-connection");
  EXPECT_EQ(make_registered_test(bed.probe(), bed.remote_addr(),
                                 TestSpec{"single-connection", 9, inorder})
                ->name(),
            "single-connection-inorder");
  // The registered in-order variant forces the flag without options.
  EXPECT_EQ(make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-inorder"})
                ->name(),
            "single-connection-inorder");
}

TEST(SingleConnDeep, RemoteConnectionIsClosedAfterRun) {
  TestbedConfig cfg;
  cfg.seed = 110;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
  TestRunConfig run;
  run.samples = 3;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  bed.loop().run();
  EXPECT_EQ(bed.remote().active_connections(), 0u) << "polite close must tear down the remote";
}

}  // namespace
}  // namespace reorder::core
