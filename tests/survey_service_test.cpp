// The resident survey service's headline guarantee, enforced: a fleet
// admitted continuously — in any order, any batch size, onto any number
// of work-stealing workers — produces canonical merged JSONL and metric
// snapshots BYTE-IDENTICAL to the one-shot ShardedSurveyEngine batch run
// over the same fleet + seed. Plus live mid-run snapshots, checkpoint
// adoption across service generations, per-target retry/degraded
// accounting, and plan-error propagation through drain().
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <numeric>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/sharded_survey.hpp"
#include "service/survey_service.hpp"
#include "util/fault_injector.hpp"

namespace reorder::service {
namespace {

using util::Duration;

/// The same heterogeneous nine-target fleet the sharded-survey suite
/// pins its invariance guarantee on: clean, swapping and lossy paths,
/// plus a random-IPID host whose dual test is inadmissible.
std::vector<core::SurveyTargetConfig> nine_targets() {
  std::vector<core::SurveyTargetConfig> targets;
  for (int i = 0; i < 9; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = (i % 3) * 0.11;
    target.reverse.swap_probability = (i % 3) * 0.04;
    if (i == 4) target.forward.loss_probability = 0.02;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    if (i == 7) {
      target.remote.ipid_policy = tcpip::IpidPolicy::kRandom;
      target.tests = {core::TestSpec{"dual-connection"}, core::TestSpec{"syn"}};
    }
    targets.push_back(std::move(target));
  }
  return targets;
}

constexpr std::uint64_t kSeed = 7;
constexpr int kRounds = 2;

core::TestRunConfig quick_run() {
  core::TestRunConfig run;
  run.samples = 8;
  return run;
}

SurveyServiceConfig service_config(std::size_t workers, bool steal = true) {
  SurveyServiceConfig cfg;
  cfg.seed = kSeed;
  cfg.workers = workers;
  cfg.steal = steal;
  cfg.run = quick_run();
  cfg.rounds = kRounds;
  cfg.between = Duration::millis(500);
  return cfg;
}

std::string canonical_jsonl(SurveyService& service) {
  std::ostringstream text;
  report::JsonlWriter writer{text};
  service.emit_jsonl(writer);
  return text.str();
}

std::string canonical_jsonl(const core::ShardedSurveyEngine& engine) {
  std::ostringstream text;
  report::JsonlWriter writer{text};
  engine.emit_jsonl(writer);
  return text.str();
}

std::string snapshot_dump(const metrics::MetricEngine& engine) {
  auto keys = engine.keys();
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (const auto& [target, test] : keys) {
    out += target + "/" + test + " n=" + std::to_string(engine.measurements(target, test)) +
           " adm=" + std::to_string(engine.admissible_measurements(target, test)) + " " +
           engine.suite(target, test)->to_json().dump() + "\n";
  }
  return out;
}

/// The reference everything byte-compares against: the one-shot batch
/// runtime over the same fleet + seed (its own suite proves this output
/// shard-count-invariant).
struct Reference {
  std::string jsonl;
  std::string snapshots;
  core::SurveyEvent end{};
};

const Reference& batch_reference() {
  static const Reference ref = [] {
    core::ShardedSurveyConfig cfg;
    cfg.fleet.seed = kSeed;
    cfg.fleet.targets = nine_targets();
    cfg.shards = 3;
    cfg.threads = 2;
    core::ShardedSurveyEngine engine{std::move(cfg)};
    engine.run(quick_run(), kRounds, Duration::millis(500));
    Reference out;
    out.jsonl = canonical_jsonl(engine);
    out.snapshots = snapshot_dump(engine.metrics());
    out.end = engine.survey_end();
    return out;
  }();
  return ref;
}

TEST(SurveyService, MatchesBatchRunByteForByteAcrossWorkerCounts) {
  const Reference& ref = batch_reference();
  ASSERT_FALSE(ref.jsonl.empty());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SurveyService service{service_config(workers)};
    const std::vector<std::size_t> indices = service.admit(nine_targets());
    ASSERT_EQ(indices.size(), 9u);
    EXPECT_EQ(indices.front(), 0u);
    EXPECT_EQ(indices.back(), 8u);
    service.drain();
    EXPECT_EQ(canonical_jsonl(service), ref.jsonl) << "workers=" << workers;
    EXPECT_EQ(snapshot_dump(service.metrics()), ref.snapshots) << "workers=" << workers;
    EXPECT_EQ(service.survey_end().targets, ref.end.targets);
    EXPECT_EQ(service.survey_end().at, ref.end.at);
    EXPECT_EQ(service.survey_end().measurements, ref.end.measurements);
    EXPECT_FALSE(service.degraded());
  }
}

TEST(SurveyService, FifoFallbackProducesTheSameBytes) {
  SurveyService service{service_config(2, /*steal=*/false)};
  service.admit(nine_targets());
  service.drain();
  EXPECT_EQ(canonical_jsonl(service), batch_reference().jsonl);
  EXPECT_EQ(service.scheduler_stats().stolen, 0u);
}

TEST(SurveyService, AdmissionOrderIsInvisibleInTheOutput) {
  // Shuffled single admissions with explicit global indices: identity is
  // the index, so the arrival order must not leak into a byte of output.
  std::mt19937 shuffle_rng{1234};
  for (int round = 0; round < 3; ++round) {
    std::vector<std::size_t> order(9);
    std::iota(order.begin(), order.end(), 0u);
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    SurveyService service{service_config(2)};
    std::vector<core::SurveyTargetConfig> fleet = nine_targets();
    for (const std::size_t index : order) {
      EXPECT_EQ(service.admit(fleet[index], index), index);
    }
    service.drain();
    EXPECT_EQ(canonical_jsonl(service), batch_reference().jsonl);
    EXPECT_EQ(snapshot_dump(service.metrics()), batch_reference().snapshots);
  }
}

TEST(SurveyService, BatchSizeIsInvisibleInTheOutput) {
  for (const std::size_t batch : {1u, 2u, 4u, 9u}) {
    SurveyService service{service_config(3)};
    std::vector<core::SurveyTargetConfig> fleet = nine_targets();
    std::size_t admitted = 0;
    while (admitted < fleet.size()) {
      const std::size_t n = std::min(batch, fleet.size() - admitted);
      std::vector<core::SurveyTargetConfig> chunk;
      for (std::size_t i = 0; i < n; ++i) chunk.push_back(std::move(fleet[admitted + i]));
      service.admit(std::move(chunk));
      admitted += n;
    }
    service.drain();
    EXPECT_EQ(canonical_jsonl(service), batch_reference().jsonl) << "batch=" << batch;
  }
}

TEST(SurveyService, DefaultIdentityIsPinnedLikeTheBatchPlanner) {
  // Targets admitted with identity fields unset get name, address and
  // seeds from their global index — the same derivation shard_config
  // applies, so the outputs still byte-match the batch runtime's.
  const auto strip = [](std::vector<core::SurveyTargetConfig> fleet) {
    for (auto& target : fleet) target.name.clear();
    return fleet;
  };
  core::ShardedSurveyConfig batch;
  batch.fleet.seed = kSeed;
  batch.fleet.targets = strip(nine_targets());
  batch.shards = 2;
  batch.threads = 2;
  core::ShardedSurveyEngine engine{std::move(batch)};
  engine.run(quick_run(), kRounds, Duration::millis(500));

  SurveyService service{service_config(2)};
  service.admit(strip(nine_targets()));
  service.drain();
  EXPECT_EQ(canonical_jsonl(service), canonical_jsonl(engine));
  EXPECT_EQ(snapshot_dump(service.metrics()), snapshot_dump(engine.metrics()));
}

TEST(SurveyService, LiveSnapshotsMidRunDoNotPerturbTheOutput) {
  SurveyService service{service_config(2)};
  std::atomic<bool> running{true};
  std::atomic<std::size_t> snapshots_taken{0};
  // A reader hammering the live view concurrently with execution: the
  // fold must neither tear (counts are per-slot-consistent) nor perturb
  // a single output byte.
  std::thread reader{[&] {
    while (running.load()) {
      const SurveyService::Snapshot snap = service.snapshot();
      EXPECT_LE(snap.completed, snap.admitted);
      // Bound against the full fleet, not snap.admitted: the slot fold
      // happens after the counter reads, so completions that land in
      // between may show up in measurements first.
      EXPECT_LE(snap.measurements, 9u * 2u * kRounds);
      snapshots_taken.fetch_add(1);
    }
  }};
  service.admit(nine_targets());
  service.drain();
  running.store(false);
  reader.join();
  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(canonical_jsonl(service), batch_reference().jsonl);

  const SurveyService::Snapshot final_snap = service.snapshot();
  EXPECT_EQ(final_snap.admitted, 9u);
  EXPECT_EQ(final_snap.completed, 9u);
  EXPECT_EQ(final_snap.in_flight, 0u);
  EXPECT_EQ(final_snap.measurements, batch_reference().end.measurements);
  EXPECT_EQ(final_snap.virtual_end, batch_reference().end.at);
  EXPECT_EQ(snapshot_dump(final_snap.metrics), batch_reference().snapshots);
}

TEST(SurveyService, SnapshotJsonCarriesTheServiceSchema) {
  SurveyService service{service_config(2)};
  service.admit(nine_targets());
  service.drain();
  const report::Json j = service.snapshot().to_json();
  EXPECT_EQ(j.at("type").as_string(), "service_snapshot");
  EXPECT_EQ(j.at("admitted").as_u64(), 9u);
  EXPECT_EQ(j.at("completed").as_u64(), 9u);
  EXPECT_EQ(j.at("failed").as_u64(), 0u);
  EXPECT_EQ(j.at("in_flight").as_u64(), 0u);
  EXPECT_EQ(j.at("measurements").as_u64(), batch_reference().end.measurements);
  EXPECT_EQ(j.at("workers").as_u64(), 2u);
  EXPECT_FALSE(j.at("degraded").as_bool());
  EXPECT_TRUE(j.contains("steals"));
  EXPECT_TRUE(j.contains("steal_attempts"));
  EXPECT_TRUE(j.contains("jobs_executed"));
  EXPECT_TRUE(j.contains("metric_keys"));
  EXPECT_TRUE(j.contains("virtual_end_ns"));
  // One line of valid JSON — round-trips through the parser.
  EXPECT_TRUE(report::Json::parse(j.dump()).has_value());
}

TEST(SurveyService, CheckpointAdoptionAcrossServiceGenerations) {
  const std::string path = testing::TempDir() + "survey_service_ckpt.jsonl";
  std::remove(path.c_str());
  std::vector<core::SurveyTargetConfig> fleet = nine_targets();

  // Generation 1 admits only part of the fleet, drains, and dies.
  {
    SurveyServiceConfig cfg = service_config(2);
    cfg.checkpoint_path = path;
    SurveyService service{cfg};
    for (std::size_t i = 0; i < 5; ++i) service.admit(fleet[i], i);
    service.drain();
    service.stop();
  }
  const core::SurveyCheckpoint recorded = core::SurveyCheckpoint::load(path);
  EXPECT_EQ(recorded.completed_count(), 5u);
  ASSERT_TRUE(recorded.header().has_value());
  EXPECT_EQ(recorded.header()->shards, 0u) << "service checkpoints carry the 0 marker";
  EXPECT_EQ(recorded.header()->seed, kSeed);

  // Generation 2 restores, admits the WHOLE fleet: recorded targets are
  // adopted (attempts == 0), the rest execute, and the merged output is
  // byte-identical to an uninterrupted batch run.
  {
    SurveyServiceConfig cfg = service_config(2);
    cfg.checkpoint_path = path;
    SurveyService service{cfg};
    service.restore(core::SurveyCheckpoint::load(path));
    service.admit(nine_targets());
    service.drain();
    EXPECT_EQ(service.attempts(0), 0) << "adopted, not re-run";
    EXPECT_EQ(service.attempts(8), 1);
    EXPECT_EQ(canonical_jsonl(service), batch_reference().jsonl);
    EXPECT_EQ(snapshot_dump(service.metrics()), batch_reference().snapshots);
    service.stop();
  }
  // The new generation's checkpoint re-recorded the adopted targets too.
  EXPECT_EQ(core::SurveyCheckpoint::load(path).completed_count(), 9u);
  std::remove(path.c_str());
}

TEST(SurveyService, RestoreRejectsAMismatchedOrBatchCheckpoint) {
  core::SurveyCheckpoint wrong_seed;
  wrong_seed.set_header(core::SurveyCheckpoint::Header{0, 9, kRounds, kSeed + 1});
  core::SurveyCheckpoint batch_granularity;
  batch_granularity.set_header(core::SurveyCheckpoint::Header{3, 9, kRounds, kSeed});

  SurveyService service{service_config(1)};
  EXPECT_THROW(service.restore(wrong_seed), std::invalid_argument);
  EXPECT_THROW(service.restore(batch_granularity), std::invalid_argument);
  service.admit(nine_targets()[0], 0);
  EXPECT_THROW(service.restore(core::SurveyCheckpoint{}), std::logic_error)
      << "restore must precede admission";
  service.drain();
}

TEST(SurveyService, TransientFailuresRetryToTheSameBytes) {
  util::FaultInjector faults{17};
  // Target 3's world dies twice before its run and once after (the
  // completed-but-unharvested class); the third run attempt succeeds.
  faults.arm({"shard/3/run", util::FaultInjector::Mode::kThrow, 1.0, 2, true});
  faults.arm({"shard/3/abort", util::FaultInjector::Mode::kShardAbort, 1.0, 1, true});

  SurveyServiceConfig cfg = service_config(2);
  cfg.engine.faults = &faults;
  cfg.retry.max_attempts = 5;
  cfg.retry.initial_backoff = std::chrono::milliseconds(1);
  SurveyService service{cfg};
  service.admit(nine_targets());
  service.drain();
  EXPECT_EQ(service.attempts(3), 4) << "two pre-run faults + one abort + success";
  EXPECT_EQ(service.attempts(2), 1);
  EXPECT_FALSE(service.degraded());
  // Retries are invisible in the output: same bytes as the fault-free run.
  EXPECT_EQ(canonical_jsonl(service), batch_reference().jsonl);
  EXPECT_EQ(snapshot_dump(service.metrics()), batch_reference().snapshots);
}

TEST(SurveyService, ExhaustedRetriesDegradeWithFullFleetAccounting) {
  util::FaultInjector faults{17};
  faults.arm({"shard/4/run", util::FaultInjector::Mode::kThrow, 1.0, 0, true});

  SurveyServiceConfig cfg = service_config(2);
  cfg.engine.faults = &faults;
  cfg.retry.max_attempts = 2;
  cfg.retry.initial_backoff = std::chrono::milliseconds(1);
  SurveyService service{cfg};
  service.admit(nine_targets());
  service.drain();

  EXPECT_TRUE(service.degraded());
  ASSERT_EQ(service.failed_target_indices().size(), 1u);
  EXPECT_EQ(service.failed_target_indices()[0], 4u);
  EXPECT_EQ(service.attempts(4), 2);
  ASSERT_EQ(service.failure_messages().size(), 1u);
  EXPECT_NE(service.failure_messages()[0].find("shard/4/run"), std::string::npos);
  EXPECT_EQ(service.survey_end().targets, 8u) << "participants only";
  EXPECT_EQ(service.survey_end().failed_shards, 1u);

  const auto manifest = service.participation();
  ASSERT_EQ(manifest.size(), 9u);
  for (const auto& [name, participated] : manifest) {
    EXPECT_EQ(participated, name != "host-4") << name;
  }
  // The degraded stream ends with the participation record.
  const std::string jsonl = canonical_jsonl(service);
  EXPECT_NE(jsonl.find("\"type\":\"participation\""), std::string::npos);
  EXPECT_NE(jsonl.find("{\"target\":\"host-4\",\"participated\":false}"), std::string::npos);

  const SurveyService::Snapshot snap = service.snapshot();
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_TRUE(snap.degraded);
}

TEST(SurveyService, PlanErrorsSurfaceAtDrainNotAsDegradation) {
  SurveyService service{service_config(2)};
  std::vector<core::SurveyTargetConfig> fleet = nine_targets();
  core::SurveyTargetConfig typo;
  typo.name = "typo-host";
  typo.tests = {core::TestSpec{"no-such-technique"}};
  service.admit(fleet[0], 0);
  service.admit(typo, 9);
  EXPECT_THROW(service.drain(), std::invalid_argument);
  // The plan error is consumed by the throwing drain; the healthy
  // target's results remain readable.
  service.drain();
  EXPECT_EQ(service.completed(), 1u);
  EXPECT_EQ(service.metrics().measurements("host-0", "syn"),
            static_cast<std::uint64_t>(kRounds));
}

TEST(SurveyService, ResultsAreGatedOnQuiescence) {
  // A suite factory that blocks the first world until released: while it
  // holds the worker, the service is demonstrably busy and the merged
  // accessors must refuse rather than hand out a torn view.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  SurveyServiceConfig cfg = service_config(2);
  cfg.suite_factory = [released](std::string_view target, std::string_view test) {
    released.wait();
    return metrics::default_suite(target, test);
  };
  SurveyService service{cfg};
  service.admit(nine_targets()[0], 0);
  EXPECT_THROW(service.metrics(), std::logic_error);
  EXPECT_THROW(service.measurements(), std::logic_error);
  EXPECT_THROW(canonical_jsonl(service), std::logic_error);
  release.set_value();
  service.drain();
  EXPECT_NO_THROW(service.metrics());
}

TEST(SurveyService, AdmissionRejectsIdentityCollisionsFleetWide) {
  SurveyService service{service_config(1)};
  std::vector<core::SurveyTargetConfig> fleet = nine_targets();
  service.admit(fleet[0], 0);
  EXPECT_THROW(service.admit(fleet[0], 5), std::invalid_argument) << "duplicate name";
  core::SurveyTargetConfig clone = fleet[1];
  clone.name = "unique-name";
  clone.address = core::default_target_address(0);
  EXPECT_THROW(service.admit(clone, 6), std::invalid_argument) << "duplicate address";
  EXPECT_THROW(service.admit(fleet[2], 0), std::invalid_argument) << "duplicate index";
  service.drain();
  EXPECT_EQ(service.admitted(), 1u);
}

TEST(SurveyService, StopRetiresTheServiceButKeepsResultsReadable) {
  SurveyService service{service_config(2)};
  service.admit(nine_targets());
  service.stop();
  EXPECT_THROW(service.admit(nine_targets()[0]), std::logic_error);
  EXPECT_EQ(canonical_jsonl(service), batch_reference().jsonl);
  const SurveyService::Snapshot snap = service.snapshot();
  EXPECT_EQ(snap.completed, 9u);
  EXPECT_EQ(snap.workers, 2u) << "scheduler identity preserved across stop";
  EXPECT_EQ(service.scheduler_stats().executed, 9u);
}

}  // namespace
}  // namespace reorder::service
