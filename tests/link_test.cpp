// Timing and ordering tests for the basic path stages.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_loop.hpp"
#include "netsim/link.hpp"

namespace reorder::sim {
namespace {

using util::Duration;
using util::TimePoint;

tcpip::Packet make_packet(std::size_t payload_bytes, std::uint64_t uid) {
  tcpip::Packet pkt;
  pkt.payload.assign(payload_bytes, 0xaa);
  pkt.uid = uid;
  return pkt;
}

struct Capture {
  std::vector<std::pair<std::uint64_t, TimePoint>> arrivals;
  PacketSink sink(EventLoop& loop) {
    return [this, &loop](tcpip::Packet p) { arrivals.emplace_back(p.uid, loop.now()); };
  }
};

TEST(LinkStage, SerializationPlusPropagation) {
  EventLoop loop;
  LinkParams params;
  params.bandwidth_bps = 8'000'000;  // 1 byte/us
  params.propagation = Duration::millis(5);
  LinkStage link{loop, params};
  Capture cap;
  link.connect(cap.sink(loop));

  // 40-byte wire size: 20 IP + 20 TCP + 0 payload.
  link.accept(make_packet(0, 1));
  loop.run();
  ASSERT_EQ(cap.arrivals.size(), 1u);
  EXPECT_EQ(cap.arrivals[0].second.ns(), Duration::micros(40).ns() + Duration::millis(5).ns());
  EXPECT_EQ(link.forwarded(), 1u);
}

TEST(LinkStage, BackToBackPacketsQueueBehindEachOther) {
  EventLoop loop;
  LinkParams params;
  params.bandwidth_bps = 8'000'000;
  params.propagation = Duration::nanos(0);
  LinkStage link{loop, params};
  Capture cap;
  link.connect(cap.sink(loop));

  link.accept(make_packet(0, 1));  // 40 us serialization
  link.accept(make_packet(0, 2));
  loop.run();
  ASSERT_EQ(cap.arrivals.size(), 2u);
  EXPECT_EQ(cap.arrivals[0].second.ns(), Duration::micros(40).ns());
  EXPECT_EQ(cap.arrivals[1].second.ns(), Duration::micros(80).ns())
      << "second packet waits for the first";
}

TEST(LinkStage, PreservesOrder) {
  EventLoop loop;
  LinkParams params;
  LinkStage link{loop, params};
  Capture cap;
  link.connect(cap.sink(loop));
  for (std::uint64_t i = 1; i <= 50; ++i) link.accept(make_packet(i % 7, i));
  loop.run();
  ASSERT_EQ(cap.arrivals.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(cap.arrivals[i].first, i + 1);
}

TEST(LinkStage, DropsWhenQueueFull) {
  EventLoop loop;
  LinkParams params;
  params.bandwidth_bps = 8'000;  // very slow: 40 ms per 40-byte packet
  params.queue_limit_packets = 3;
  LinkStage link{loop, params};
  Capture cap;
  link.connect(cap.sink(loop));
  for (std::uint64_t i = 1; i <= 10; ++i) link.accept(make_packet(0, i));
  loop.run();
  EXPECT_EQ(cap.arrivals.size(), 3u);
  EXPECT_EQ(link.dropped(), 7u);
}

TEST(LinkStage, InfiniteBandwidthSkipsSerialization) {
  EventLoop loop;
  LinkParams params;
  params.bandwidth_bps = 0;
  params.propagation = Duration::millis(1);
  LinkStage link{loop, params};
  Capture cap;
  link.connect(cap.sink(loop));
  link.accept(make_packet(1000, 1));
  loop.run();
  EXPECT_EQ(cap.arrivals[0].second.ns(), Duration::millis(1).ns());
}

TEST(LinkStage, SerializationTimeHelper) {
  EventLoop loop;
  LinkParams params;
  params.bandwidth_bps = 1'000'000;
  LinkStage link{loop, params};
  EXPECT_EQ(link.serialization_time(125).us(), 1000);  // 1000 bits at 1 Mbps
}

TEST(DelayStage, AddsExactDelay) {
  EventLoop loop;
  DelayStage stage{loop, Duration::micros(123)};
  Capture cap;
  stage.connect(cap.sink(loop));
  stage.accept(make_packet(0, 1));
  loop.run();
  EXPECT_EQ(cap.arrivals[0].second.ns(), Duration::micros(123).ns());
}

TEST(JitterStage, DelayWithinBounds) {
  EventLoop loop;
  JitterStage stage{loop, Duration::micros(100), Duration::micros(200), util::Rng{3}};
  Capture cap;
  stage.connect(cap.sink(loop));
  for (std::uint64_t i = 1; i <= 200; ++i) {
    stage.accept(make_packet(0, i));
    loop.run();
    const auto at = cap.arrivals.back().second;
    EXPECT_GE(at.ns() - loop.now().ns() + at.ns(), 0);  // sanity
    cap.arrivals.clear();
    loop.advance(Duration::millis(1));
  }
}

TEST(JitterStage, CanReorderClosePackets) {
  EventLoop loop;
  JitterStage stage{loop, Duration::micros(0), Duration::micros(500), util::Rng{11}};
  Capture cap;
  stage.connect(cap.sink(loop));
  int reordered = 0;
  for (int trial = 0; trial < 200; ++trial) {
    cap.arrivals.clear();
    stage.accept(make_packet(0, 1));
    stage.accept(make_packet(0, 2));
    loop.run();
    if (cap.arrivals.size() == 2 && cap.arrivals[0].first == 2) ++reordered;
    loop.advance(Duration::millis(10));
  }
  EXPECT_GT(reordered, 20) << "independent jitter reorders back-to-back packets often";
  EXPECT_LT(reordered, 180);
}

class LossRate : public ::testing::TestWithParam<double> {};

TEST_P(LossRate, EmpiricalRateNearP) {
  const double p = GetParam();
  EventLoop loop;
  LossStage stage{p, util::Rng{23}};
  Capture cap;
  stage.connect(cap.sink(loop));
  const int n = 20000;
  for (int i = 0; i < n; ++i) stage.accept(make_packet(0, static_cast<std::uint64_t>(i)));
  loop.run();
  const double measured = 1.0 - static_cast<double>(cap.arrivals.size()) / n;
  EXPECT_NEAR(measured, p, 0.02);
  EXPECT_EQ(stage.dropped(), n - cap.arrivals.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, LossRate, ::testing::Values(0.0, 0.01, 0.05, 0.2, 0.5));

TEST(StageNames, AreStable) {
  EventLoop loop;
  EXPECT_EQ(LinkStage(loop, {}).name(), "link");
  EXPECT_EQ(DelayStage(loop, Duration::millis(1)).name(), "delay");
  EXPECT_EQ(LossStage(0.1, util::Rng{1}).name(), "loss");
}

}  // namespace
}  // namespace reorder::sim
