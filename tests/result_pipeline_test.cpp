// Tests for the streaming results pipeline: ResultSink fan-out from the
// SurveyEngine (callbacks arriving mid-run, in event-loop order), the
// columnar ResultStore's query API matching the pre-redesign (target,
// test) map exactly, and the publish_result single-test driver path.
#include <gtest/gtest.h>

#include <map>

#include "core/result_store.hpp"
#include "core/scenario.hpp"
#include "core/survey_testbed.hpp"

namespace reorder::core {
namespace {

using util::Duration;

SurveyTestbedConfig two_target_config() {
  SurveyTestbedConfig cfg;
  cfg.seed = 2024;
  const double swap[] = {0.25, 0.05};
  for (int i = 0; i < 2; ++i) {
    SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = swap[i];
    target.reverse.swap_probability = swap[i] / 2.0;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {TestSpec{"single-connection"}, TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  return cfg;
}

/// Records every event with the context it arrived in (virtual time and
/// whether the survey was still running).
class RecordingSink final : public ResultSink {
 public:
  RecordingSink(sim::EventLoop& loop, const SurveyEngine& engine)
      : loop_{loop}, engine_{engine} {}

  struct MeasurementRecord {
    std::string target;
    std::string test;
    std::size_t index;
    util::TimePoint arrived_at;       ///< loop time when the callback fired
    bool engine_running;              ///< engine.running() inside the callback
    std::size_t samples_seen_before;  ///< per-sample events for this measurement
    ReorderEstimate forward;
  };

  void on_survey_begin(const SurveyEvent& e) override {
    ++begins_;
    targets_at_begin_ = e.targets;
  }
  void on_sample(const SampleEvent& e) override {
    ASSERT_EQ(e.measurement_index, measurements_.size())
        << "sample events must precede their measurement event";
    ++pending_samples_;
    last_sample_gap_ = e.sample.gap;
  }
  void on_measurement(const MeasurementEvent& e) override {
    MeasurementRecord rec;
    rec.target = std::string{e.target};
    rec.test = std::string{e.test};
    rec.index = e.measurement_index;
    rec.arrived_at = loop_.now();
    rec.engine_running = engine_.running();
    rec.samples_seen_before = pending_samples_;
    rec.forward = e.result.forward;
    pending_samples_ = 0;
    measurements_.push_back(std::move(rec));
  }
  void on_survey_end(const SurveyEvent& e) override {
    ++ends_;
    measurements_at_end_ = e.measurements;
  }

  sim::EventLoop& loop_;
  const SurveyEngine& engine_;
  std::vector<MeasurementRecord> measurements_;
  std::size_t pending_samples_{0};
  util::Duration last_sample_gap_{};
  int begins_{0};
  int ends_{0};
  std::size_t targets_at_begin_{0};
  std::size_t measurements_at_end_{0};
};

TEST(ResultPipeline, MeasurementCallbacksArriveMidRunInEventLoopOrder) {
  SurveyTestbed bed{two_target_config()};
  SurveyEngine engine{bed.loop()};
  bed.populate(engine);
  RecordingSink sink{bed.loop(), engine};
  engine.add_sink(sink);

  TestRunConfig run;
  run.samples = 10;
  constexpr int kRounds = 3;
  bool done = false;
  engine.start(run, kRounds, Duration::millis(200), [&done] { done = true; });
  EXPECT_EQ(sink.begins_, 1) << "survey_begin fires when the survey starts";
  EXPECT_EQ(sink.targets_at_begin_, 2u);
  bed.loop().run();
  ASSERT_TRUE(done);

  const auto& ms = engine.measurements();
  ASSERT_EQ(ms.size(), 2u * 2u * kRounds);
  ASSERT_EQ(sink.measurements_.size(), ms.size());
  EXPECT_EQ(sink.ends_, 1);
  EXPECT_EQ(sink.measurements_at_end_, ms.size());

  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto& rec = sink.measurements_[i];
    // Events mirror the engine's completion log, element for element —
    // same order the event loop completed them in.
    EXPECT_EQ(rec.index, i);
    EXPECT_EQ(rec.target, ms[i].target);
    EXPECT_EQ(rec.test, ms[i].test);
    EXPECT_EQ(rec.forward.reordered, ms[i].result.forward.reordered);
    // Streaming, not post-hoc: every callback fired while the survey was
    // still in flight, at a strictly advancing virtual time.
    EXPECT_TRUE(rec.engine_running) << "measurement " << i << " was published after the run";
    if (i > 0) {
      EXPECT_GE(rec.arrived_at, sink.measurements_[i - 1].arrived_at);
    }
    // Each measurement's per-sample events all arrived just before it
    // (the store's row ranges are the durable record of sample counts —
    // the completion log intentionally drops the per-sample payload).
    const auto row = engine.store().measurement(i);
    EXPECT_EQ(rec.samples_seen_before, row.samples_end - row.samples_begin);
    EXPECT_TRUE(ms[i].result.samples.empty()) << "log must not duplicate the sample columns";
  }
  // The callbacks interleave targets (concurrency is observable in the
  // stream, not only in the final log).
  bool interleaved = false;
  for (std::size_t i = 2; i < sink.measurements_.size(); ++i) {
    if (sink.measurements_[i].target != sink.measurements_[i - 1].target) interleaved = true;
  }
  EXPECT_TRUE(interleaved);
}

TEST(ResultPipeline, StoreQueriesMatchThePreRedesignMap) {
  SurveyTestbed bed{two_target_config()};
  SurveyEngine engine{bed.loop()};
  bed.populate(engine);
  TestRunConfig run;
  run.samples = 10;
  engine.run(run, 4, Duration::millis(200));

  // Recompute every query the way the old poll-only map did — straight
  // from the completion log — and demand identity from the store.
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>> by_key;
  const auto& ms = engine.measurements();
  for (std::size_t i = 0; i < ms.size(); ++i) by_key[{ms[i].target, ms[i].test}].push_back(i);

  ASSERT_FALSE(by_key.empty());
  for (const auto& [key, indices] : by_key) {
    for (const bool forward : {true, false}) {
      std::vector<double> want_series;
      ReorderEstimate want_aggregate;
      for (const std::size_t i : indices) {
        if (!ms[i].result.admissible) continue;
        const ReorderEstimate& est = forward ? ms[i].result.forward : ms[i].result.reverse;
        if (est.usable() > 0) {
          want_series.push_back(static_cast<double>(est.reordered) / est.usable());
        }
        want_aggregate += est;
      }
      const auto got_series = engine.rate_series(key.first, key.second, forward);
      ASSERT_EQ(got_series.size(), want_series.size()) << key.first << "/" << key.second;
      for (std::size_t i = 0; i < got_series.size(); ++i) {
        EXPECT_DOUBLE_EQ(got_series[i], want_series[i]);
      }
      const auto got_aggregate = engine.aggregate(key.first, key.second, forward);
      EXPECT_EQ(got_aggregate.in_order, want_aggregate.in_order);
      EXPECT_EQ(got_aggregate.reordered, want_aggregate.reordered);
      EXPECT_EQ(got_aggregate.ambiguous, want_aggregate.ambiguous);
      EXPECT_EQ(got_aggregate.lost, want_aggregate.lost);
    }
  }

  // compare() built on the store agrees with one built on the raw series.
  const auto cmp = engine.compare("host-0", "single-connection", "syn", true);
  auto a = engine.rate_series("host-0", "single-connection", true);
  auto b = engine.rate_series("host-0", "syn", true);
  const std::size_t n = std::min(a.size(), b.size());
  a.resize(n);
  b.resize(n);
  const auto want = stats::pair_difference_test(a, b, 0.999);
  EXPECT_DOUBLE_EQ(cmp.mean_difference, want.mean_difference);
  EXPECT_EQ(cmp.null_supported, want.null_supported);

  // Unknown keys answer empty, as the map did.
  EXPECT_TRUE(engine.rate_series("no-such-host", "syn", true).empty());
  EXPECT_EQ(engine.aggregate("host-0", "no-such-test", true).total(), 0);
}

TEST(ResultPipeline, FanOutDeliversIdenticalStreamsToEverySink) {
  SurveyTestbed bed{two_target_config()};
  SurveyEngine engine{bed.loop()};
  bed.populate(engine);
  RecordingSink first{bed.loop(), engine};
  RecordingSink second{bed.loop(), engine};
  engine.add_sink(first);
  engine.add_sink(second);

  TestRunConfig run;
  run.samples = 8;
  engine.run(run, 2, Duration::millis(100));

  ASSERT_EQ(first.measurements_.size(), second.measurements_.size());
  for (std::size_t i = 0; i < first.measurements_.size(); ++i) {
    EXPECT_EQ(first.measurements_[i].target, second.measurements_[i].target);
    EXPECT_EQ(first.measurements_[i].test, second.measurements_[i].test);
    EXPECT_EQ(first.measurements_[i].arrived_at, second.measurements_[i].arrived_at);
  }
}

TEST(ResultPipeline, EmptySurveyStillBracketsTheStream) {
  // Sinks may key on survey_end to know a capture is complete; a survey
  // with nothing to do must still emit both lifecycle events.
  sim::EventLoop loop;
  SurveyEngine engine{loop};
  RecordingSink sink{loop, engine};
  engine.add_sink(sink);
  bool completed = false;
  engine.start(TestRunConfig{}, 3, Duration::millis(10), [&completed] { completed = true; });
  EXPECT_TRUE(completed);
  EXPECT_EQ(sink.begins_, 1);
  EXPECT_EQ(sink.ends_, 1);
  EXPECT_EQ(sink.measurements_at_end_, 0u);
}

TEST(ResultPipeline, AttachingSinksMidSurveyThrows) {
  SurveyTestbed bed{two_target_config()};
  SurveyEngine engine{bed.loop()};
  bed.populate(engine);
  engine.start(TestRunConfig{}, 1, Duration::millis(10));
  ASSERT_TRUE(engine.running());
  RecordingSink late{bed.loop(), engine};
  EXPECT_THROW(engine.add_sink(late), std::logic_error);
  bed.loop().run();
}

TEST(ResultPipeline, PublishResultFeedsAStandaloneStore) {
  // The single-test driver path: a run_sync completion published into a
  // store must answer queries exactly as the result itself does.
  TestbedConfig cfg;
  cfg.seed = 99;
  cfg.forward.swap_probability = 0.2;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 40;
  const TestRunResult result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);

  ResultStore store;
  publish_result(store, "target", result.test_name, bed.loop().now(), result);

  ASSERT_EQ(store.measurement_count(), 1u);
  EXPECT_EQ(store.sample_count(), result.samples.size());
  const auto agg = store.aggregate("target", result.test_name, true);
  EXPECT_EQ(agg.reordered, result.forward.reordered);
  EXPECT_EQ(agg.in_order, result.forward.in_order);

  const auto row = store.measurement(0);
  EXPECT_EQ(row.target, "target");
  EXPECT_EQ(row.samples_begin, 0u);
  EXPECT_EQ(row.samples_end, result.samples.size());

  // The columnar sample data survives intact.
  const auto cols = store.samples();
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    EXPECT_EQ(static_cast<Ordering>(cols.forward[i]), result.samples[i].forward);
    EXPECT_EQ(static_cast<Ordering>(cols.reverse[i]), result.samples[i].reverse);
    EXPECT_EQ(cols.gap_ns[i], result.samples[i].gap.ns());
    EXPECT_EQ(cols.started_ns[i], result.samples[i].started.ns());
    EXPECT_EQ(cols.completed_ns[i], result.samples[i].completed.ns());
  }
}

TEST(ResultPipeline, ScenarioRunnerStreamsIntoSinksAndStoreBuildsTimeDomain) {
  ScenarioSpec spec = scenarios::swap_shaper(0.15, 0.0, /*seed=*/5);
  spec.tests = {TestSpec{"syn"}};
  spec.run.samples = 20;
  spec.gap_sweep = {util::Duration::micros(0), util::Duration::micros(40)};

  // A fanout of the store plus a lifecycle counter: the scenario runner
  // must bracket its stream like the survey engine does.
  struct LifecycleCounter final : ResultSink {
    int begins{0};
    int ends{0};
    std::size_t measurements_at_end{0};
    void on_survey_begin(const SurveyEvent&) override { ++begins; }
    void on_survey_end(const SurveyEvent& e) override {
      ++ends;
      measurements_at_end = e.measurements;
    }
  };
  ResultStore store;
  LifecycleCounter lifecycle;
  SinkFanout fanout;
  fanout.add(store);
  fanout.add(lifecycle);
  const ScenarioResult result = run_scenario(spec, &fanout);
  EXPECT_EQ(lifecycle.begins, 1);
  EXPECT_EQ(lifecycle.ends, 1);
  EXPECT_EQ(lifecycle.measurements_at_end, result.measurements.size());
  ASSERT_EQ(store.measurement_count(), result.measurements.size());
  EXPECT_EQ(store.targets(), std::vector<std::string>{spec.name});
  EXPECT_EQ(store.tests(spec.name), std::vector<std::string>{"syn"});

  // The store's time-domain profile equals one accumulated by hand from
  // the measurement log (the old fig7/time_domain loop).
  TimeDomainProfile manual;
  for (const auto& m : result.measurements) {
    if (!m.result.admissible) continue;
    for (const auto& s : m.result.samples) manual.add(s.gap, s.forward);
  }
  const TimeDomainProfile from_store = store.time_domain(spec.name, "syn");
  ASSERT_EQ(from_store.distinct_gaps(), manual.distinct_gaps());
  for (const auto& point : manual.points()) {
    const auto got = from_store.at(point.gap);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->in_order, point.estimate.in_order);
    EXPECT_EQ(got->reordered, point.estimate.reordered);
    EXPECT_EQ(got->ambiguous, point.estimate.ambiguous);
    EXPECT_EQ(got->lost, point.estimate.lost);
  }
}

TEST(ResultPipeline, WatchdogTimeoutsStreamAsInadmissibleMeasurements) {
  class NeverCompletes final : public ReorderTest {
   public:
    std::string name() const override { return "never-completes"; }
    void run(const TestRunConfig&, std::function<void(TestRunResult)>) override {}
  };

  sim::EventLoop loop;
  SurveyEngine engine{loop};
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.push_back(std::make_unique<NeverCompletes>());
  engine.add_target("stuck", std::move(tests));
  RecordingSink sink{loop, engine};
  engine.add_sink(sink);

  engine.run(TestRunConfig{}, /*rounds=*/2, Duration::millis(10));
  ASSERT_EQ(sink.measurements_.size(), 2u);
  for (const auto& rec : sink.measurements_) {
    EXPECT_EQ(rec.test, "never-completes");
    EXPECT_EQ(rec.samples_seen_before, 0u) << "a timed-out run has no samples to stream";
  }
  // The store records them as inadmissible: no rates, but counted rows.
  EXPECT_EQ(engine.store().measurement_count(), 2u);
  EXPECT_TRUE(engine.rate_series("stuck", "never-completes", true).empty());
}

}  // namespace
}  // namespace reorder::core
