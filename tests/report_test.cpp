// Tests for the report layer: the JSON value (dump/parse round-trips),
// the table and CSV emitters, the streaming JsonlResultSink, and the
// golden round-trip the benches rely on — JSONL written during a survey,
// parsed back, reproducing the aggregate rates exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/survey_testbed.hpp"
#include "report/builders.hpp"
#include "report/csv.hpp"
#include "report/sinks.hpp"
#include "report/table.hpp"

namespace reorder::report {
namespace {

using util::Duration;

// ---------------------------------------------------------------- Json

TEST(Json, ScalarsDumpCompactly) {
  EXPECT_EQ(Json{}.dump(), "null");
  EXPECT_EQ(Json{true}.dump(), "true");
  EXPECT_EQ(Json{false}.dump(), "false");
  EXPECT_EQ(Json{42}.dump(), "42");
  EXPECT_EQ(Json{-7}.dump(), "-7");
  EXPECT_EQ(Json{0.5}.dump(), "0.5");
  EXPECT_EQ(Json{"hi"}.dump(), "\"hi\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2).set("m", 3);
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  j.set("a", 9);  // overwrite keeps the slot
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(Json, StringsEscape) {
  EXPECT_EQ(Json{"a\"b\\c\nd"}.dump(), "\"a\\\"b\\\\c\\nd\"");
  const auto parsed = Json::parse("\"a\\\"b\\\\c\\nd\\u0041\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd" "A");
}

TEST(Json, ParseRoundTripsNestedValues) {
  Json j = Json::object();
  j.set("name", "survey");
  j.set("ok", true);
  j.set("count", 17);
  j.set("rate", 0.0625);
  Json arr = Json::array();
  arr.push(1).push("two").push(Json{});
  j.set("mixed", std::move(arr));
  Json inner = Json::object();
  inner.set("x", -3.5);
  j.set("nested", std::move(inner));

  const auto parsed = Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), j.dump());
  EXPECT_EQ(parsed->at("count").as_int(), 17);
  EXPECT_DOUBLE_EQ(parsed->at("rate").as_double(), 0.0625);
  EXPECT_EQ(parsed->at("mixed").size(), 3u);
  EXPECT_TRUE(parsed->at("mixed").at(2).is_null());
  EXPECT_DOUBLE_EQ(parsed->at("nested").at("x").as_double(), -3.5);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  // Tokens from_chars would happily read but JSON's grammar has no
  // numbers for.
  EXPECT_FALSE(Json::parse("inf").has_value());
  EXPECT_FALSE(Json::parse("-inf").has_value());
  EXPECT_FALSE(Json::parse("nan").has_value());
  // A \u escape must consume exactly four hex digits.
  EXPECT_FALSE(Json::parse("\"\\u12x4\"").has_value());
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  EXPECT_THROW(Json{1.0}.as_string(), std::runtime_error);
  EXPECT_THROW(Json{"x"}.as_double(), std::runtime_error);
  EXPECT_THROW(Json{}.at("missing"), std::out_of_range);
}

// ------------------------------------------------------------- Jsonl

TEST(Jsonl, WriteThenReadBack) {
  std::ostringstream out;
  JsonlWriter writer{out};
  Json a = Json::object();
  a.set("i", 1);
  writer.write(a);
  Json b = Json::object();
  b.set("i", 2);
  writer.write(b);
  EXPECT_EQ(writer.lines_written(), 2u);

  const auto lines = read_jsonl_text(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].at("i").as_int(), 1);
  EXPECT_EQ(lines[1].at("i").as_int(), 2);
}

TEST(Jsonl, BlankLinesSkippedMalformedThrows) {
  EXPECT_EQ(read_jsonl_text("\n  \n{\"a\":1}\n\n").size(), 1u);
  EXPECT_THROW(read_jsonl_text("{\"a\":1}\nnot json\n"), std::runtime_error);
}

// ------------------------------------------------------------- Table

TEST(Table, AlignsColumnsUnderHeaders) {
  Table t = Table::with_headers({"name", "count"});
  t.row({"alpha", "1"});
  t.row({"b", "1234"});
  EXPECT_EQ(t.to_string(),
            "name   count\n"
            "------------\n"
            "alpha      1\n"
            "b       1234\n");
}

TEST(Table, PadsShortRowsRejectsLongOnes) {
  Table t = Table::with_headers({"a", "b"});
  t.row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_THROW(t.row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, CsvRenderingQuotes) {
  Table t = Table::with_headers({"label", "value"});
  t.row({"plain", "1"});
  t.row({"with, comma", "has \"quote\""});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(),
            "label,value\n"
            "plain,1\n"
            "\"with, comma\",\"has \"\"quote\"\"\"\n");
}

TEST(Table, CellFormatters) {
  EXPECT_EQ(fixed(0.12345, 3), "0.123");
  EXPECT_EQ(signed_fixed(0.02, 2), "+0.02");
  EXPECT_EQ(signed_fixed(-0.02, 2), "-0.02");
  EXPECT_EQ(percent(0.125, 1), "12.5");
  EXPECT_EQ(integer(-42), "-42");
}

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

// ------------------------------------- the golden JSONL round trip

core::SurveyTestbedConfig round_trip_config() {
  core::SurveyTestbedConfig cfg;
  cfg.seed = 77;
  const double swap[] = {0.3, 0.0};
  for (int i = 0; i < 2; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = swap[i];
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  return cfg;
}

TEST(JsonlResultSink, RoundTripReproducesAggregateRates) {
  core::SurveyTestbed bed{round_trip_config()};
  core::SurveyEngine engine{bed.loop()};
  bed.populate(engine);

  std::ostringstream out;
  JsonlWriter writer{out};
  JsonlResultSink sink{writer};
  engine.add_sink(sink);

  core::TestRunConfig run;
  run.samples = 12;
  engine.run(run, 3, Duration::millis(100));
  ASSERT_GT(writer.lines_written(), 0u);

  // Parse the stream back and rebuild per-(target, test) aggregates from
  // the measurement lines alone.
  const auto lines = read_jsonl_text(out.str());
  std::map<std::pair<std::string, std::string>, core::ReorderEstimate> fwd;
  std::map<std::pair<std::string, std::string>, core::ReorderEstimate> rev;
  std::size_t measurement_lines = 0;
  std::size_t sample_lines = 0;
  for (const auto& line : lines) {
    const std::string& type = line.at("type").as_string();
    if (type == "sample") {
      ++sample_lines;
      continue;
    }
    if (type != "measurement") continue;
    ++measurement_lines;
    if (!line.at("admissible").as_bool()) continue;
    const std::pair<std::string, std::string> key{line.at("target").as_string(),
                                                  line.at("test").as_string()};
    fwd[key] += estimate_from_json(line.at("fwd"));
    rev[key] += estimate_from_json(line.at("rev"));
  }
  EXPECT_EQ(measurement_lines, engine.measurements().size());
  EXPECT_EQ(sample_lines, engine.store().sample_count());

  // The parsed-back aggregates reproduce the store's, rate for rate.
  for (const auto& [key, estimate] : fwd) {
    const auto want = engine.aggregate(key.first, key.second, true);
    EXPECT_EQ(estimate.in_order, want.in_order) << key.first << "/" << key.second;
    EXPECT_EQ(estimate.reordered, want.reordered);
    EXPECT_EQ(estimate.rate().has_value(), want.rate().has_value());
    if (want.rate().has_value()) {
      EXPECT_DOUBLE_EQ(*estimate.rate(), *want.rate());
    }
  }
  for (const auto& [key, estimate] : rev) {
    const auto want = engine.aggregate(key.first, key.second, false);
    EXPECT_EQ(estimate.reordered, want.reordered);
    if (want.rate().has_value()) {
      EXPECT_DOUBLE_EQ(*estimate.rate(), *want.rate());
    }
  }

  // Lifecycle lines bracket the stream.
  EXPECT_EQ(lines.front().at("type").as_string(), "survey_begin");
  EXPECT_EQ(lines.back().at("type").as_string(), "survey_end");
  EXPECT_EQ(static_cast<std::size_t>(lines.back().at("measurements").as_int()),
            engine.measurements().size());
}

TEST(JsonlResultSink, OptionsFilterGranularities) {
  core::TestRunResult result;
  result.test_name = "syn";
  core::SampleResult sample;
  sample.forward = core::Ordering::kReordered;
  result.samples.assign(3, sample);
  result.aggregate();

  std::ostringstream out;
  JsonlWriter writer{out};
  JsonlResultSink::Options options;
  options.samples = false;
  options.lifecycle = false;
  JsonlResultSink sink{writer, options};
  core::publish_result(sink, "t", "syn", util::TimePoint::epoch(), result);

  const auto lines = read_jsonl_text(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].at("type").as_string(), "measurement");
  EXPECT_EQ(lines[0].at("fwd").at("reordered").as_int(), 3);
}

// ----------------------------------------------------------- builders

TEST(Builders, RateCdfReportCountsAndRenders) {
  RateCdfReport cdf{{0.0, 0.1}};
  cdf.add_path(0.0, 0.0);
  cdf.add_path(0.2, 0.05);
  EXPECT_EQ(cdf.paths(), 2u);
  EXPECT_EQ(cdf.paths_with_reordering(), 1);
  const Table t = cdf.table();
  EXPECT_EQ(t.rows(), 2u);

  std::ostringstream out;
  JsonlWriter writer{out};
  cdf.emit_jsonl(writer);
  const auto lines = read_jsonl_text(out.str());
  ASSERT_EQ(lines.size(), 3u);  // 2 thresholds + summary
  EXPECT_DOUBLE_EQ(lines[0].at("fwd_cdf").as_double(), 0.5);
  EXPECT_EQ(lines.back().at("type").as_string(), "summary");
  EXPECT_EQ(lines.back().at("paths").as_int(), 2);
}

TEST(Builders, TimeDomainReportDecimatesTableNotJsonl) {
  core::TimeDomainProfile profile;
  for (int us = 0; us <= 6; us += 2) {
    profile.add(Duration::micros(us), core::Ordering::kInOrder);
  }
  TimeDomainReport report{std::move(profile), /*table_every_us=*/4};
  EXPECT_EQ(report.table().rows(), 2u);  // 0us and 4us only

  std::ostringstream out;
  JsonlWriter writer{out};
  report.emit_jsonl(writer);
  const auto lines = read_jsonl_text(out.str());
  EXPECT_EQ(lines.size(), 5u);  // every point + summary
}

TEST(Builders, PairDifferenceReportAccumulates) {
  PairDifferenceReport report;
  report.add("single", "syn", true, true);
  report.add("single", "syn", true, false);
  report.add("single", "syn", false, true);
  ASSERT_EQ(report.pairs().size(), 1u);
  EXPECT_EQ(report.pairs()[0].fwd_supported, 1);
  EXPECT_EQ(report.pairs()[0].fwd_total, 2);
  EXPECT_EQ(report.pairs()[0].rev_total, 1);
  EXPECT_EQ(report.table().rows(), 1u);
}

TEST(Builders, ValidationReportSummaryMatchesPaperAccounting) {
  ValidationReport report;
  // Two-way test, one forward mismatch.
  ValidationReport::Row a;
  a.test = "syn";
  a.fwd_p = 0.05;
  a.rev_p = 0.05;
  a.cmp.reported_fwd = 6;
  a.cmp.actual_fwd = 5;
  a.cmp.fwd_mismatches = 1;
  a.cmp.verified_samples = 200;
  report.add(a);
  // One-way (data transfer) row, clean.
  ValidationReport::Row b;
  b.test = "data-transfer";
  b.rev_p = 0.10;
  b.cmp.reported_rev = 9;
  b.cmp.actual_rev = 9;
  b.cmp.verified_samples = 50;
  report.add(b);

  const auto s = report.summary(/*samples_per_two_way_test=*/100);
  EXPECT_EQ(s.tests_run, 2);
  EXPECT_EQ(s.fwd_discrepant_tests, 1);
  EXPECT_EQ(s.rev_discrepant_tests, 0);
  EXPECT_EQ(s.total_samples, 250);  // 2*100 two-way + 50 verified one-way
  EXPECT_EQ(s.mismatched_samples, 1);
  ASSERT_TRUE(s.confirmed_fraction().has_value());
  EXPECT_NEAR(*s.confirmed_fraction(), 1.0 - 1.0 / 250.0, 1e-12);

  EXPECT_EQ(report.table().rows(), 2u);
}

}  // namespace
}  // namespace reorder::report
