// Tests for the ICMP substrate, the Bennett-style ping-burst baseline,
// and IPv4 fragmentation/reassembly.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ping_burst_adapter.hpp"
#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "tcpip/fragment.hpp"
#include "tcpip/icmp.hpp"
#include "util/random.hpp"

namespace reorder {
namespace {

using util::Duration;

// ---------- ICMP codec ----------

TEST(IcmpCodec, RoundTripWithChecksum) {
  tcpip::Packet pkt;
  pkt.ip.src = tcpip::Ipv4Address::from_octets(10, 0, 0, 1);
  pkt.ip.dst = tcpip::Ipv4Address::from_octets(10, 0, 0, 2);
  pkt.ip.protocol = tcpip::IpProto::kIcmp;
  pkt.icmp = tcpip::IcmpEcho{tcpip::IcmpType::kEchoRequest, 0x1234, 7};
  pkt.payload.assign(48, 0x5a);

  const auto wire = pkt.to_wire();
  EXPECT_EQ(wire.size(), 20u + 8u + 48u);
  const auto back = tcpip::Packet::from_wire(wire);
  EXPECT_TRUE(back.checksums_ok);
  ASSERT_TRUE(back.packet.icmp.has_value());
  EXPECT_EQ(back.packet.icmp->type, tcpip::IcmpType::kEchoRequest);
  EXPECT_EQ(back.packet.icmp->identifier, 0x1234);
  EXPECT_EQ(back.packet.icmp->sequence, 7);
  EXPECT_EQ(back.packet.payload.size(), 48u);
}

TEST(IcmpCodec, CorruptionDetected) {
  tcpip::Packet pkt;
  pkt.ip.protocol = tcpip::IpProto::kIcmp;
  pkt.icmp = tcpip::IcmpEcho{tcpip::IcmpType::kEchoReply, 1, 2};
  pkt.payload = {1, 2, 3};
  auto wire = pkt.to_wire();
  wire.back() ^= 0xff;
  EXPECT_FALSE(tcpip::Packet::from_wire(wire).checksums_ok);
}

TEST(IcmpCodec, DescribeAndHelpers) {
  tcpip::Packet pkt;
  pkt.ip.protocol = tcpip::IpProto::kIcmp;
  pkt.icmp = tcpip::IcmpEcho{tcpip::IcmpType::kEchoRequest, 9, 12};
  EXPECT_TRUE(pkt.is_icmp());
  EXPECT_NE(pkt.describe().find("echo-request"), std::string::npos);
  tcpip::Packet tcp;
  EXPECT_FALSE(tcp.is_icmp());
}

// ---------- host echo behaviour ----------

TEST(HostEcho, RepliesWithMirroredPayload) {
  core::Testbed bed{core::TestbedConfig{}};
  std::optional<tcpip::Packet> reply;
  bed.probe().icmp_handler = [&](const tcpip::Packet& pkt) { reply = pkt; };

  tcpip::Packet req;
  req.ip.src = bed.probe().address();
  req.ip.dst = bed.remote_addr();
  req.ip.protocol = tcpip::IpProto::kIcmp;
  req.icmp = tcpip::IcmpEcho{tcpip::IcmpType::kEchoRequest, 77, 3};
  req.payload = {9, 8, 7};
  bed.probe().send(std::move(req));
  bed.loop().run();

  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->icmp->type, tcpip::IcmpType::kEchoReply);
  EXPECT_EQ(reply->icmp->identifier, 77);
  EXPECT_EQ(reply->icmp->sequence, 3);
  EXPECT_EQ(reply->payload, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(bed.remote().counters().echo_replies, 1u);
}

TEST(HostEcho, SilentWhenDisabled) {
  core::TestbedConfig cfg;
  cfg.remote = core::default_remote_config();
  cfg.remote.respond_to_ping = false;
  core::Testbed bed{cfg};
  int replies = 0;
  bed.probe().icmp_handler = [&](const tcpip::Packet&) { ++replies; };
  tcpip::Packet req;
  req.ip.src = bed.probe().address();
  req.ip.dst = bed.remote_addr();
  req.ip.protocol = tcpip::IpProto::kIcmp;
  req.icmp = tcpip::IcmpEcho{tcpip::IcmpType::kEchoRequest, 1, 1};
  bed.probe().send(std::move(req));
  bed.loop().run();
  EXPECT_EQ(replies, 0);
}

TEST(HostEcho, RateLimitCapsRepliesPerWindow) {
  core::TestbedConfig cfg;
  cfg.remote = core::default_remote_config();
  cfg.remote.ping_rate_limit_per_sec = 3;
  core::Testbed bed{cfg};
  int replies = 0;
  bed.probe().icmp_handler = [&](const tcpip::Packet&) { ++replies; };

  auto send_burst = [&](std::uint16_t base) {
    for (int i = 0; i < 10; ++i) {
      tcpip::Packet req;
      req.ip.src = bed.probe().address();
      req.ip.dst = bed.remote_addr();
      req.ip.protocol = tcpip::IpProto::kIcmp;
      req.icmp =
          tcpip::IcmpEcho{tcpip::IcmpType::kEchoRequest, 5, static_cast<std::uint16_t>(base + i)};
      bed.probe().send(std::move(req));
    }
  };
  send_burst(0);
  bed.loop().run();
  EXPECT_EQ(replies, 3);
  EXPECT_EQ(bed.remote().counters().echo_rate_limited, 7u);
  // A fresh one-second window refills the budget.
  bed.loop().advance(Duration::seconds(2));
  send_burst(100);
  bed.loop().run();
  EXPECT_EQ(replies, 6);
}

// ---------- ping-burst baseline ----------

core::PingBurstResult run_bursts(core::Testbed& bed, int burst_size, int bursts) {
  core::PingBurstOptions opts;
  opts.burst_size = burst_size;
  auto ping = core::TestRegistry::global().create_as<core::PingBurstAdapter>(
      bed.probe(), bed.remote_addr(), core::TestSpec{"ping-burst", 0, opts});
  core::TestRunConfig run;
  run.samples = bursts;
  run.sample_spacing = Duration::millis(30);
  (void)bed.run_sync(*ping, run, /*deadline_s=*/300);
  return ping->last_burst_result();
}

TEST(PingBurst, CleanPathShowsNoReordering) {
  core::TestbedConfig cfg;
  cfg.seed = 601;
  core::Testbed bed{cfg};
  const auto r = run_bursts(bed, 5, 40);
  EXPECT_EQ(r.bursts, 40);
  EXPECT_EQ(r.bursts_complete, 40);
  EXPECT_EQ(r.bursts_with_reordering, 0);
  EXPECT_EQ(r.requests_sent, 200u);
  EXPECT_EQ(r.replies_received, 200u);
  EXPECT_DOUBLE_EQ(r.pair_rate(), 0.0);
}

TEST(PingBurst, DetectsReorderingOnEitherPath) {
  for (const bool forward : {true, false}) {
    core::TestbedConfig cfg;
    cfg.seed = 602 + (forward ? 1 : 0);
    (forward ? cfg.forward : cfg.reverse).swap_probability = 0.5;
    core::Testbed bed{cfg};
    const auto r = run_bursts(bed, 5, 60);
    EXPECT_GT(r.bursts_with_reordering, 30) << (forward ? "forward" : "reverse");
  }
}

TEST(PingBurst, CannotAttributeDirection) {
  // The §II critique as a property: a forward-only and a reverse-only path
  // with the same swap probability produce statistically indistinguishable
  // ping estimates.
  auto rate_for = [](double fwd, double rev, std::uint64_t seed) {
    core::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.forward.swap_probability = fwd;
    cfg.reverse.swap_probability = rev;
    core::Testbed bed{cfg};
    return run_bursts(bed, 2, 600).pair_rate();
  };
  const double fwd_only = rate_for(0.2, 0.0, 604);
  const double rev_only = rate_for(0.0, 0.2, 605);
  EXPECT_NEAR(fwd_only, rev_only, 0.06);
  EXPECT_GT(fwd_only, 0.1);
}

TEST(PingBurst, BurstSizeChangesTheBurstMetric) {
  // "fraction of bursts with >= 1 event" grows with burst length even
  // though the path is unchanged — the paper's metric critique.
  core::TestbedConfig cfg;
  cfg.seed = 606;
  cfg.forward.swap_probability = 0.05;
  core::Testbed bed{cfg};
  const auto small = run_bursts(bed, 5, 80);
  const auto large = run_bursts(bed, 50, 20);
  EXPECT_GT(large.burst_reorder_fraction(), small.burst_reorder_fraction() + 0.2);
}

TEST(PingBurst, LossYieldsIncompleteBursts) {
  core::TestbedConfig cfg;
  cfg.seed = 607;
  cfg.forward.loss_probability = 0.3;
  core::Testbed bed{cfg};
  const auto r = run_bursts(bed, 5, 40);
  EXPECT_LT(r.bursts_complete, r.bursts);
  EXPECT_LT(r.replies_received, r.requests_sent);
}

// ---------- fragmentation / reassembly ----------

tcpip::Packet sample_segment(std::size_t payload_size) {
  tcpip::Packet pkt;
  pkt.ip.src = tcpip::Ipv4Address::from_octets(10, 0, 0, 1);
  pkt.ip.dst = tcpip::Ipv4Address::from_octets(10, 0, 0, 2);
  pkt.ip.identification = 0xbeef;
  pkt.tcp.src_port = 40000;
  pkt.tcp.dst_port = 80;
  pkt.tcp.flags = tcpip::kAck | tcpip::kPsh;
  pkt.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    pkt.payload[i] = static_cast<std::uint8_t>(i * 13);
  }
  return pkt;
}

TEST(Fragment, SmallDatagramPassesThrough) {
  const auto wire = sample_segment(100).to_wire();
  const auto frags = tcpip::fragment_datagram(wire, 576);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], wire);
}

TEST(Fragment, SplitsRespectMtuAndEightByteAlignment) {
  const auto wire = sample_segment(1000).to_wire();
  const auto frags = tcpip::fragment_datagram(wire, 576);
  ASSERT_GT(frags.size(), 1u);
  for (const auto& frag : frags) EXPECT_LE(frag.size(), 576u);
  // The first fragment carries the TCP header but only part of the
  // payload, so its TCP checksum cannot validate standalone — only the
  // reassembled datagram's does. That is real fragment semantics.
  const auto first = tcpip::Packet::from_wire(frags[0]);
  EXPECT_EQ(first.packet.tcp.src_port, 40000);
  EXPECT_FALSE(first.checksums_ok);
  const auto whole = tcpip::reassemble_datagram(frags);
  ASSERT_TRUE(whole.has_value());
  EXPECT_TRUE(tcpip::Packet::from_wire(*whole).checksums_ok);
  // All fragments carry the original identification; offsets are 8-aligned
  // and MF is set on all but the last.
  for (std::size_t i = 0; i < frags.size(); ++i) {
    util::ByteReader r{frags[i]};
    const auto h = tcpip::Ipv4Header::parse(r);
    EXPECT_TRUE(h.checksum_ok);
    EXPECT_EQ(h.header.identification, 0xbeef);
    EXPECT_EQ(h.header.more_fragments, i + 1 < frags.size());
    if (i > 0) {
      EXPECT_GT(h.header.fragment_offset, 0);
    }
  }
}

TEST(Fragment, RoundTripInAnyOrder) {
  const auto wire = sample_segment(2000).to_wire();
  auto frags = tcpip::fragment_datagram(wire, 300);
  ASSERT_GE(frags.size(), 3u);
  util::Rng rng{5};
  for (std::size_t i = frags.size(); i > 1; --i) {
    std::swap(frags[i - 1], frags[rng.below(i)]);
  }
  const auto whole = tcpip::reassemble_datagram(frags);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, wire) << "reassembly must reproduce the original datagram exactly";
  const auto back = tcpip::Packet::from_wire(*whole);
  EXPECT_TRUE(back.checksums_ok);
  EXPECT_EQ(back.packet.payload.size(), 2000u);
}

TEST(Fragment, DfSuppressesFragmentation) {
  auto pkt = sample_segment(1000);
  pkt.ip.dont_fragment = true;
  const auto frags = tcpip::fragment_datagram(pkt.to_wire(), 576);
  EXPECT_TRUE(frags.empty()) << "DF + oversize = drop (PMTUD signal)";
}

TEST(Fragment, MissingFragmentFailsReassembly) {
  const auto wire = sample_segment(2000).to_wire();
  auto frags = tcpip::fragment_datagram(wire, 300);
  ASSERT_GE(frags.size(), 3u);
  frags.erase(frags.begin() + 1);
  EXPECT_FALSE(tcpip::reassemble_datagram(frags).has_value());
}

TEST(Fragment, MixedIdentificationsRejected) {
  const auto a = tcpip::fragment_datagram(sample_segment(600).to_wire(), 300);
  auto b_pkt = sample_segment(600);
  b_pkt.ip.identification = 0x1111;
  const auto b = tcpip::fragment_datagram(b_pkt.to_wire(), 300);
  std::vector<std::vector<std::uint8_t>> mixed{a[0], b[1]};
  EXPECT_FALSE(tcpip::reassemble_datagram(mixed).has_value());
}

TEST(Fragment, DuplicateFragmentTolerated) {
  const auto wire = sample_segment(900).to_wire();
  auto frags = tcpip::fragment_datagram(wire, 400);
  frags.push_back(frags[0]);  // retransmitted fragment
  const auto whole = tcpip::reassemble_datagram(frags);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, wire);
}

TEST(Fragment, EmptyInputRejected) {
  EXPECT_FALSE(tcpip::reassemble_datagram({}).has_value());
}

}  // namespace
}  // namespace reorder
