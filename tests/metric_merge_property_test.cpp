// Property tests for the Metric mergeability contract: for every metric,
// merging snapshots of arbitrary contiguous partitions of a stream is
// bit-identical (same to_json().dump()) to the single-pass batch result;
// and the streaming sequence implementations agree with the O(n^2) batch
// oracle core::analyze_sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "metrics/pair_metrics.hpp"
#include "metrics/sequence_metrics.hpp"
#include "metrics/sketch.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "util/random.hpp"

namespace reorder {
namespace {

using util::Duration;

core::SampleResult random_sample(util::Rng& rng) {
  core::SampleResult s;
  const auto pick = [&rng] {
    const double u = rng.uniform(0.0, 1.0);
    if (u < 0.55) return core::Ordering::kInOrder;
    if (u < 0.80) return core::Ordering::kReordered;
    if (u < 0.92) return core::Ordering::kAmbiguous;
    return core::Ordering::kLost;
  };
  s.forward = pick();
  s.reverse = pick();
  const std::int64_t start = static_cast<std::int64_t>(rng.below(1'000'000));
  s.started = util::TimePoint::from_ns(start);
  s.completed = util::TimePoint::from_ns(start + static_cast<std::int64_t>(rng.below(5'000'000)));
  s.gap = Duration::micros(static_cast<std::int64_t>(rng.below(8)));
  return s;
}

core::TestRunResult random_result(util::Rng& rng, int samples) {
  core::TestRunResult r;
  r.test_name = "prop";
  r.admissible = rng.uniform(0.0, 1.0) > 0.15;
  for (int i = 0; i < samples; ++i) r.samples.push_back(random_sample(rng));
  r.aggregate();
  return r;
}

// Splits [0, n) into contiguous chunks at `cuts` random points.
std::vector<std::pair<std::size_t, std::size_t>> random_partition(util::Rng& rng, std::size_t n,
                                                                  std::size_t cuts) {
  std::vector<std::size_t> points{0, n};
  for (std::size_t i = 0; i < cuts; ++i) points.push_back(rng.below(n + 1));
  std::sort(points.begin(), points.end());
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) out.emplace_back(points[i], points[i + 1]);
  return out;
}

// Every metric in the default engine suite: merging per-shard engines
// over any contiguous split of the measurement stream reproduces the
// batch engine bit-for-bit.
TEST(MetricMergeProperty, EngineMergeEqualsBatchForRandomSplits) {
  util::Rng rng{1234};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::TestRunResult> stream;
    const std::size_t measurements = 3 + rng.below(12);
    for (std::size_t m = 0; m < measurements; ++m) {
      stream.push_back(random_result(rng, 4 + static_cast<int>(rng.below(12))));
    }

    metrics::MetricEngine batch;
    metrics::EngineSink batch_sink{batch};
    for (std::size_t m = 0; m < stream.size(); ++m) {
      core::publish_result(batch_sink, "host", "test", util::TimePoint::epoch(), stream[m], m);
    }

    metrics::MetricEngine merged;
    for (const auto& [begin, end] : random_partition(rng, stream.size(), 1 + rng.below(4))) {
      metrics::MetricEngine shard;
      metrics::EngineSink shard_sink{shard};
      for (std::size_t m = begin; m < end; ++m) {
        core::publish_result(shard_sink, "host", "test", util::TimePoint::epoch(), stream[m], m);
      }
      merged.merge(shard);
    }
    ASSERT_EQ(merged.to_json().dump(), batch.to_json().dump()) << "trial " << trial;
  }
}

// Sample-level metrics merge exactly under splits at ANY sample boundary
// (not just measurement boundaries).
TEST(MetricMergeProperty, SampleLevelMetricsMergeAtArbitrarySamplePoints) {
  util::Rng rng{777};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::SampleResult> samples;
    const std::size_t n = 5 + rng.below(60);
    for (std::size_t i = 0; i < n; ++i) samples.push_back(random_sample(rng));

    const auto feed = [](metrics::MetricSuite& suite, const core::SampleResult* data,
                         std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        suite.observe(core::SampleEvent{"h", "t", 0, i, util::TimePoint::epoch(), data[i]});
      }
    };
    const auto make_suite = [] {
      metrics::MetricSuite suite;
      suite.add(std::make_unique<metrics::TimeDomainMetric>())
          .add(std::make_unique<metrics::LateTimeMetric>())
          .add(std::make_unique<metrics::LatencyHistogramMetric>());
      return suite;
    };

    metrics::MetricSuite batch = make_suite();
    feed(batch, samples.data(), 0, samples.size());

    metrics::MetricSuite merged = make_suite();
    for (const auto& [begin, end] : random_partition(rng, samples.size(), 1 + rng.below(5))) {
      metrics::MetricSuite shard = make_suite();
      feed(shard, samples.data(), begin, end);
      merged.merge(shard);
    }
    ASSERT_EQ(merged.to_json().dump(), batch.to_json().dump()) << "trial " << trial;
  }
}

std::vector<std::uint32_t> random_arrival(util::Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> arrival(n);
  std::iota(arrival.begin(), arrival.end(), 0u);
  for (std::size_t i = n; i > 1; --i) {
    // Mostly-local shuffles (realistic reordering) with occasional long
    // displacements.
    const std::size_t j = rng.bernoulli(0.8) ? i - 1 - std::min<std::size_t>(i - 1, rng.below(3))
                                             : rng.below(i);
    std::swap(arrival[i - 1], arrival[j]);
  }
  return arrival;
}

// The streaming RFC 4737 implementation agrees with the batch oracle.
TEST(MetricMergeProperty, SequenceExtentMatchesBatchOracle) {
  util::Rng rng{4242};
  for (int trial = 0; trial < 50; ++trial) {
    const auto arrival = random_arrival(rng, 1 + rng.below(80));
    const core::SequenceReorderStats oracle = core::analyze_sequence(arrival);

    metrics::SequenceExtentMetric streaming;
    metrics::observe_sequence(streaming, arrival);

    EXPECT_EQ(streaming.packets(), oracle.packets);
    EXPECT_EQ(streaming.reordered(), oracle.reordered);
    EXPECT_DOUBLE_EQ(streaming.ratio(), oracle.ratio);
    EXPECT_EQ(streaming.max_extent(), oracle.max_extent);
    EXPECT_DOUBLE_EQ(streaming.mean_extent(), oracle.mean_extent);
    EXPECT_EQ(streaming.inversions(), oracle.adjacent_swaps);
  }
}

// Sequence metrics merge exactly at sequence boundaries: feeding K
// sequences into one accumulator equals merging K per-sequence (or
// per-chunk) accumulators.
TEST(MetricMergeProperty, SequenceMetricsMergeAtSequenceBoundaries) {
  util::Rng rng{11};
  const auto make_suite = [] {
    metrics::MetricSuite suite;
    suite.add(std::make_unique<metrics::SequenceExtentMetric>())
        .add(std::make_unique<metrics::NReorderingMetric>())
        .add(std::make_unique<metrics::ReorderDensityMetric>())
        .add(std::make_unique<metrics::BufferDensityMetric>());
    return suite;
  };
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::vector<std::uint32_t>> sequences;
    const std::size_t k = 2 + rng.below(6);
    for (std::size_t i = 0; i < k; ++i) {
      sequences.push_back(random_arrival(rng, 1 + rng.below(40)));
    }

    metrics::MetricSuite batch = make_suite();
    for (const auto& seq : sequences) metrics::observe_sequence(batch, seq);

    metrics::MetricSuite merged = make_suite();
    for (const auto& [begin, end] : random_partition(rng, sequences.size(), 1 + rng.below(3))) {
      metrics::MetricSuite shard = make_suite();
      for (std::size_t i = begin; i < end; ++i) metrics::observe_sequence(shard, sequences[i]);
      merged.merge(shard);
    }
    ASSERT_EQ(merged.to_json().dump(), batch.to_json().dump()) << "trial " << trial;
  }
}

// Merging with an open (unclosed) sequence is a contract violation.
TEST(MetricMergeProperty, OpenSequenceRefusesToMerge) {
  metrics::SequenceExtentMetric a;
  metrics::SequenceExtentMetric b;
  b.observe_arrival(0);  // left open
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  b.end_sequence();
  EXPECT_NO_THROW(a.merge(b));
}

TEST(MetricMergeProperty, MismatchedMetricsRefuseToMerge) {
  metrics::PairRateMetric pair;
  metrics::RateSeriesMetric series;
  EXPECT_THROW(pair.merge(series), std::invalid_argument);

  metrics::MetricSuite a;
  a.add(std::make_unique<metrics::PairRateMetric>());
  metrics::MetricSuite b;
  b.add(std::make_unique<metrics::PairRateMetric>());
  b.add(std::make_unique<metrics::RateSeriesMetric>());
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// The stats-layer accumulators the adapters lift share the contract.
TEST(MetricMergeProperty, StatsAccumulatorsMergeExactly) {
  util::Rng rng{99};
  stats::Ecdf whole_ecdf;
  stats::Ecdf left_ecdf;
  stats::Ecdf right_ecdf;
  stats::Histogram whole_hist{0.0, 10.0, 20};
  stats::Histogram left_hist{0.0, 10.0, 20};
  stats::Histogram right_hist{0.0, 10.0, 20};
  metrics::TailSketch whole_sketch;
  metrics::TailSketch left_sketch;
  metrics::TailSketch right_sketch;

  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 12.0);
    const auto v = static_cast<std::uint64_t>(rng.below(1'000'000));
    whole_ecdf.add(x);
    whole_hist.add(x);
    whole_sketch.add(v);
    (i < 200 ? left_ecdf : right_ecdf).add(x);
    (i < 200 ? left_hist : right_hist).add(x);
    (i < 200 ? left_sketch : right_sketch).add(v);
  }

  left_ecdf.merge(right_ecdf);
  EXPECT_EQ(left_ecdf.sorted(), whole_ecdf.sorted());

  left_hist.merge(right_hist);
  EXPECT_EQ(left_hist.count(), whole_hist.count());
  for (std::size_t b = 0; b < whole_hist.bins(); ++b) {
    EXPECT_EQ(left_hist.bin_count(b), whole_hist.bin_count(b));
  }

  left_sketch.merge(right_sketch);
  EXPECT_EQ(left_sketch.to_json().dump(), whole_sketch.to_json().dump());

  stats::Histogram other{0.0, 5.0, 20};
  EXPECT_THROW(whole_hist.merge(other), std::invalid_argument);
}

}  // namespace
}  // namespace reorder
