// The multi-queue parallel ingest pipeline's contracts, enforced:
//
//   * flow -> shard stability: shard_of is a pure function, so the same
//     flow never crosses shards — every flow lands in exactly one shard's
//     engine, and that shard is the one the hash names;
//   * sub-batch conservation: the dispatcher neither invents nor loses
//     lanes — per-shard dispatched arrivals sum to the produced stream,
//     the fill histogram accounts for every shipped sub-batch, and each
//     consumer's engine saw exactly what its ring delivered;
//   * THE tentpole invariant: the folded snapshots/JSONL of the sharded
//     pipeline are byte-identical to the single-consumer pipeline and the
//     scalar recurrence, over every scenario in the library, for shards
//     in {1,2,4,8}, misaligned batch capacities and both backpressure
//     policies — sharding buys cores, never a different answer;
//   * a 200k-arrival threaded run through 4 shards (small rings, constant
//     wrap-around) arrives intact — under the TSAN CI job this is the
//     proof of the dispatcher/consumer fence pairing;
//   * saturation is observable per shard: a stalled kDrop run sheds whole
//     sub-batches and surfaces conservation (consumed + dropped ==
//     produced) and per-shard ring counters in the JSONL record.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "ingest/parallel_pipeline.hpp"
#include "ingest/pipeline.hpp"
#include "monitor/differential.hpp"
#include "monitor/engine.hpp"
#include "report/jsonl.hpp"
#include "util/random.hpp"

namespace reorder::ingest {
namespace {

// Small but structured multi-flow traffic for the equivalence matrix
// (mirrors ingest_test.cpp's grid).
monitor::TrafficOptions small_traffic() {
  monitor::TrafficOptions opt;
  opt.flows = 6;
  opt.packets_per_flow = 64;
  opt.evade_displacement = 20;
  opt.flood_flows = 192;
  opt.flood_packets = 8;
  opt.flood_active = 24;
  opt.coalesce_frames = 12;
  return opt;
}

ParallelPipelineConfig base_config(std::size_t shards, std::size_t batch_capacity,
                                   Backpressure policy) {
  ParallelPipelineConfig cfg;
  cfg.shards = shards;
  cfg.batch_capacity = batch_capacity;
  cfg.ring_batches = 64;
  cfg.backpressure = policy;
  return cfg;
}

// ------------------------------------------------------ flow -> shard

TEST(ParallelIngest, FlowNeverCrossesShards) {
  // Property: after a full run, every flow lives in exactly one shard's
  // engine, and that shard is shard_of(flow, shards) — the pinning that
  // makes per-flow order (and thus the folded snapshot) deterministic.
  const std::vector<Arrival> arrivals =
      from_monitor(monitor::scenario_arrivals("flood-flows", 7, small_traffic()));
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    ParallelIngestPipeline pipeline{base_config(shards, 43, Backpressure::kSpin)};
    pipeline.run(arrivals);
    pipeline.flush();
    std::set<std::uint64_t> seen;
    for (std::size_t s = 0; s < shards; ++s) {
      for (const std::uint64_t flow : pipeline.shard_sequences(s).flow_ids()) {
        EXPECT_EQ(shard_of(flow, shards), s) << "flow " << flow << " on wrong shard";
        EXPECT_TRUE(seen.insert(flow).second) << "flow " << flow << " on two shards";
      }
    }
    std::set<std::uint64_t> expected;
    for (const Arrival& a : arrivals) expected.insert(a.flow);
    EXPECT_EQ(seen, expected);
  }
}

TEST(ParallelIngest, SubBatchConservation) {
  // The dispatcher splits parent batches into per-shard sub-batches; the
  // lanes must be conserved: per-shard dispatched arrivals sum to the
  // produced stream, every shipped sub-batch lands in the fill histogram,
  // and each shard's engine observed exactly its dispatched arrivals.
  const std::vector<Arrival> arrivals =
      from_monitor(monitor::scenario_arrivals("interrupt-coalescing", 11, small_traffic()));
  ParallelIngestPipeline pipeline{base_config(4, 37, Backpressure::kSpin)};
  const ParallelPipelineStats& stats = pipeline.run(arrivals);
  pipeline.flush();

  EXPECT_EQ(stats.arrivals_produced, arrivals.size());
  std::uint64_t dispatched = 0;
  std::uint64_t batches = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const ShardStats& shard = stats.shards[s];
    dispatched += shard.arrivals_dispatched;
    batches += shard.batches_dispatched;
    EXPECT_EQ(shard.arrivals_consumed, shard.arrivals_dispatched) << s;  // kSpin: lossless
    EXPECT_EQ(shard.arrivals_dropped, 0u) << s;
    EXPECT_EQ(pipeline.shard_sequences(s).arrivals(), shard.arrivals_consumed) << s;
    EXPECT_EQ(shard.ring.pushed, shard.batches_dispatched) << s;
    EXPECT_EQ(shard.ring.popped, shard.batches_consumed) << s;
  }
  EXPECT_EQ(dispatched, arrivals.size());
  EXPECT_EQ(stats.arrivals_consumed + stats.arrivals_dropped, stats.arrivals_produced);
  EXPECT_EQ(batches, stats.dispatcher.sub_batches);
  std::uint64_t hist_total = 0;
  for (const std::uint64_t bucket : stats.dispatcher.fill_hist) hist_total += bucket;
  EXPECT_EQ(hist_total, stats.dispatcher.sub_batches);
  EXPECT_GE(stats.dispatcher.imbalance_ratio, 1.0);
  EXPECT_GT(stats.dispatcher.parent_batches, 0u);

  // Every input flow surfaced in exactly one shard, none invented.
  std::set<std::uint64_t> want;
  for (const Arrival& a : arrivals) want.insert(a.flow);
  std::set<std::uint64_t> got;
  for (std::size_t s = 0; s < 4; ++s) {
    for (const std::uint64_t flow : pipeline.shard_sequences(s).flow_ids()) {
      ASSERT_NE(pipeline.shard_sequences(s).flow_suite(flow), nullptr);
      EXPECT_TRUE(got.insert(flow).second) << flow;
    }
  }
  EXPECT_EQ(got, want);
}

// --------------------------------------- folded == single == scalar

TEST(ParallelIngest, FoldedSnapshotsBitIdenticalOverEveryScenarioShardsAndPolicies) {
  // THE tentpole: for every scenario, the parallel pipeline's folded
  // sequence/monitor snapshots (and their JSONL bytes) must equal the
  // scalar recurrence's and the single-consumer pipeline's, for shards in
  // {1,2,4,8} x both backpressure policies, at a misaligned batch
  // capacity so flow runs split across sub-batch boundaries. The monitor
  // table is provisioned for the scenario's live flows (no eviction), the
  // boundary MonitorEngine::merge documents.
  monitor::MonitorConfig mon_cfg;
  mon_cfg.table.slots = 4096;
  for (const std::string& scenario : core::scenarios::names()) {
    const std::vector<Arrival> arrivals =
        from_monitor(monitor::scenario_arrivals(scenario, 31, small_traffic()));

    // Scalar reference: per-arrival observe/ingest, no threads.
    SequenceEngine seq_scalar;
    monitor::MonitorEngine mon_scalar{mon_cfg};
    for (const Arrival& a : arrivals) {
      seq_scalar.observe(a.flow, a.send_index);
      mon_scalar.ingest(a.flow, a.send_index);
    }
    seq_scalar.flush();
    mon_scalar.flush();
    ASSERT_EQ(mon_scalar.table().counters().evictions, 0u) << scenario;
    const std::string seq_want = seq_scalar.to_json().dump();
    const std::string mon_want = mon_scalar.to_json().dump();

    // Single-consumer pipeline reference (threaded, one queue).
    {
      SequenceEngine seq_single;
      monitor::MonitorEngine mon_single{mon_cfg};
      PipelineConfig cfg;
      cfg.batch_capacity = 43;
      cfg.ring_batches = 64;
      IngestPipeline single{cfg, &seq_single, &mon_single};
      single.run(arrivals);
      seq_single.flush();
      mon_single.flush();
      ASSERT_EQ(seq_single.to_json().dump(), seq_want) << scenario;
      ASSERT_EQ(mon_single.to_json().dump(), mon_want) << scenario;
    }

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                     std::size_t{8}}) {
      for (const Backpressure policy : {Backpressure::kSpin, Backpressure::kDrop}) {
        // 64-deep rings hold the whole stream, so kDrop cannot actually
        // shed here — both policies must land on identical bytes.
        ParallelPipelineConfig cfg = base_config(shards, 43, policy);
        cfg.monitor = true;
        cfg.monitor_config = mon_cfg;
        ParallelIngestPipeline pipeline{cfg};
        const ParallelPipelineStats& stats = pipeline.run(arrivals);
        pipeline.flush();
        ASSERT_EQ(stats.arrivals_dropped, 0u) << scenario << " shards " << shards;
        ASSERT_EQ(stats.arrivals_consumed, arrivals.size()) << scenario;
        ASSERT_EQ(pipeline.sequences_json().dump(), seq_want)
            << scenario << " shards " << shards;
        ASSERT_EQ(pipeline.merged_monitor().to_json().dump(), mon_want)
            << scenario << " shards " << shards;

        std::ostringstream want_jsonl, got_jsonl;
        report::JsonlWriter ww{want_jsonl}, wg{got_jsonl};
        mon_scalar.emit_jsonl(ww);
        pipeline.merged_monitor().emit_jsonl(wg);
        ASSERT_EQ(got_jsonl.str(), want_jsonl.str()) << scenario << " shards " << shards;
      }
    }
  }
}

TEST(ParallelIngest, MisalignedCapacitiesAgree) {
  // Different (misaligned) batch capacities change every sub-batch
  // boundary; the folded bytes must not move.
  const std::vector<Arrival> arrivals =
      from_monitor(monitor::scenario_arrivals("evade-window", 13, small_traffic()));
  std::string want;
  for (const std::size_t capacity : {std::size_t{7}, std::size_t{43}, std::size_t{64},
                                     std::size_t{1024}}) {
    ParallelIngestPipeline pipeline{base_config(4, capacity, Backpressure::kSpin)};
    pipeline.run(arrivals);
    pipeline.flush();
    const std::string got = pipeline.sequences_json().dump();
    if (want.empty()) {
      want = got;
    } else {
      EXPECT_EQ(got, want) << "capacity " << capacity;
    }
  }
}

TEST(ParallelIngest, ThreadedStreamOf200kArrivalsThroughFourShards) {
  // The TSAN proof for the sharded path: 200k arrivals over 64 flows
  // through 4 consumer threads behind small rings (constant wrap-around
  // and backpressure), bit-exact with the scalar recurrence.
  constexpr std::size_t kFlows = 64;
  constexpr std::size_t kCount = 200'000;
  std::vector<Arrival> arrivals;
  arrivals.reserve(kCount);
  std::vector<std::uint32_t> next(kFlows, 0);
  util::Rng rng{99};
  for (std::size_t i = 0; i < kCount; ++i) {
    const std::size_t f = static_cast<std::size_t>(rng.below(kFlows));
    arrivals.push_back(Arrival{f + 1, next[f]++, static_cast<std::int64_t>(i)});
  }

  SequenceEngine scalar;
  for (const Arrival& a : arrivals) scalar.observe(a.flow, a.send_index);
  scalar.flush();

  ParallelPipelineConfig cfg = base_config(4, 64, Backpressure::kSpin);
  cfg.ring_batches = 4;  // tiny rings: the fences earn their keep
  ParallelIngestPipeline pipeline{cfg};
  const ParallelPipelineStats& stats = pipeline.run(arrivals);
  pipeline.flush();

  EXPECT_EQ(stats.arrivals_produced, kCount);
  EXPECT_EQ(stats.arrivals_consumed, kCount);
  EXPECT_EQ(stats.arrivals_dropped, 0u);
  std::uint64_t engine_total = 0;
  for (std::size_t s = 0; s < 4; ++s) engine_total += pipeline.shard_sequences(s).arrivals();
  EXPECT_EQ(engine_total, kCount);
  EXPECT_EQ(pipeline.sequences_json().dump(), scalar.to_json().dump());
}

// ------------------------------------------------- saturation + JSONL

TEST(ParallelIngest, DropPolicyShedsPerShardAndSurfacesCountersInJsonl) {
  // Deterministic saturation: 1-arrival sub-batches, 1-slot rings, and
  // consumers stalling 1ms per batch while the dispatcher streams 1000
  // arrivals in microseconds — shard rings MUST overflow. Conservation
  // must hold across all shards and every counter must land in the
  // {"type":"ingest"} record.
  std::vector<Arrival> arrivals;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    arrivals.push_back(Arrival{(i % 8) + 1, i / 8, 0});
  }
  ParallelPipelineConfig cfg = base_config(2, 1, Backpressure::kDrop);
  cfg.ring_batches = 1;
  cfg.consumer_stall = util::Duration::millis(1);
  ParallelIngestPipeline pipeline{cfg};
  const ParallelPipelineStats& stats = pipeline.run(arrivals);
  pipeline.flush();

  EXPECT_EQ(stats.arrivals_produced, 1000u);
  EXPECT_GT(stats.arrivals_dropped, 0u);
  EXPECT_EQ(stats.arrivals_consumed + stats.arrivals_dropped, stats.arrivals_produced);
  std::uint64_t consumed = 0, dropped = 0;
  for (const ShardStats& shard : stats.shards) {
    EXPECT_EQ(shard.arrivals_consumed + shard.arrivals_dropped, shard.arrivals_dispatched);
    EXPECT_EQ(shard.ring.pushed + shard.ring.dropped,
              shard.batches_dispatched);
    consumed += shard.arrivals_consumed;
    dropped += shard.arrivals_dropped;
  }
  EXPECT_EQ(consumed, stats.arrivals_consumed);
  EXPECT_EQ(dropped, stats.arrivals_dropped);

  const report::Json j = pipeline.to_json();
  ASSERT_NE(j.find("per_shard"), nullptr);
  ASSERT_NE(j.find("dispatcher"), nullptr);
  EXPECT_EQ(j.find("shards")->dump(), "2");
  std::ostringstream jsonl;
  report::JsonlWriter writer{jsonl};
  pipeline.emit_jsonl(writer);
  const std::string line = jsonl.str();
  EXPECT_NE(line.find("\"type\":\"ingest\""), std::string::npos);
  EXPECT_NE(line.find("\"mode\":\"parallel\""), std::string::npos);
  EXPECT_NE(line.find("\"per_shard\":["), std::string::npos);
  EXPECT_NE(line.find("\"fill_hist\":["), std::string::npos);
  EXPECT_NE(line.find("\"imbalance_ratio\":"), std::string::npos);
  EXPECT_NE(line.find("\"arrivals_dropped\":" + std::to_string(stats.arrivals_dropped)),
            std::string::npos);
}

TEST(ParallelIngest, SpinPolicyLosesNothingUnderTheSameSaturation) {
  std::vector<Arrival> arrivals;
  for (std::uint32_t i = 0; i < 64; ++i) arrivals.push_back(Arrival{(i % 4) + 1, i / 4, 0});
  ParallelPipelineConfig cfg = base_config(2, 1, Backpressure::kSpin);
  cfg.ring_batches = 1;
  cfg.consumer_stall = util::Duration::micros(200);
  ParallelIngestPipeline pipeline{cfg};
  const ParallelPipelineStats& stats = pipeline.run(arrivals);
  EXPECT_EQ(stats.arrivals_produced, 64u);
  EXPECT_EQ(stats.arrivals_consumed, 64u);
  EXPECT_EQ(stats.arrivals_dropped, 0u);
  EXPECT_GT(stats.spin_waits, 0u);  // the dispatcher did wait
}

}  // namespace
}  // namespace reorder::ingest
