// The inter-packet-gap parameter against hold-window reordering processes,
// and whole-suite session integration.
#include <gtest/gtest.h>

#include "core/survey_engine.hpp"
#include "core/testbed.hpp"

namespace reorder::core {
namespace {

using util::Duration;

// A swap shaper can only exchange a pair whose spacing is inside its hold
// window: the gap parameter must drive the measured rate from ~p to ~0.
struct GapCase {
  std::int64_t gap_us;
  double expected_rate;
};

class GapVsHoldWindow : public ::testing::TestWithParam<GapCase> {};

TEST_P(GapVsHoldWindow, SynTestSeesTheProcessDieBeyondTheHold) {
  const auto& param = GetParam();
  TestbedConfig cfg;
  cfg.seed = 7000 + static_cast<std::uint64_t>(param.gap_us);
  cfg.forward.swap_probability = 0.30;
  cfg.forward.swap_max_hold = Duration::millis(2);  // a short-lived process
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 250;
  run.inter_packet_gap = Duration::micros(param.gap_us);
  // Pace samples well beyond one RTT so the previous sample's polite-close
  // traffic has fully drained: otherwise the FIN acknowledgment (sent one
  // RTT after classification) lands between gap-spaced SYNs and absorbs
  // their swap — a real interleaving artifact, excluded here on purpose.
  run.sample_spacing = Duration::millis(150);
  const auto result = bed.run_sync(*test, run, 3000);
  ASSERT_TRUE(result.admissible);
  EXPECT_NEAR(result.forward.rate_or(0.0), param.expected_rate, 0.08)
      << "gap " << param.gap_us << "us against a 2ms hold window";
}

INSTANTIATE_TEST_SUITE_P(Sweep, GapVsHoldWindow,
                         ::testing::Values(GapCase{0, 0.30},       // inside the window
                                           GapCase{500, 0.30},     // still inside
                                           GapCase{5000, 0.0},     // beyond 2ms: process gone
                                           GapCase{20000, 0.0}));

TEST(FullSuiteSession, AllFourTestsRoundRobin) {
  TestbedConfig cfg;
  cfg.seed = 7200;
  cfg.forward.swap_probability = 0.10;
  cfg.reverse.swap_probability = 0.05;
  cfg.remote = default_remote_config(/*object_size=*/16 * 512);
  cfg.remote.behavior.immediate_ack_on_hole_fill = true;
  Testbed bed{cfg};

  SurveyEngine session{bed.loop()};
  session.add_target("host", bed.probe(), bed.remote_addr(),
                     {TestSpec{"single-connection"}, TestSpec{"dual-connection"}, TestSpec{"syn"},
                      TestSpec{"data-transfer"}});

  TestRunConfig run;
  run.samples = 20;
  const auto& ms = session.run(run, /*rounds=*/4, Duration::millis(200));
  ASSERT_EQ(ms.size(), 16u);
  for (const auto& m : ms) {
    EXPECT_TRUE(m.result.admissible) << m.test << ": " << m.result.note;
  }
  // Every two-way test's forward aggregate should be in the vicinity of
  // the configured rate.
  for (const char* name : {"single-connection", "dual-connection", "syn"}) {
    const auto agg = session.aggregate("host", name, /*forward=*/true);
    EXPECT_GT(agg.usable(), 60) << name;
    EXPECT_NEAR(agg.rate_or(0.0), 0.10, 0.07) << name;
  }
  // The data-transfer test saw the reverse path only.
  const auto dt = session.aggregate("host", "data-transfer", /*forward=*/false);
  EXPECT_GT(dt.usable(), 40);
  // Cross-test paired comparison at the paper's confidence level.
  const auto cmp = session.compare("host", "single-connection", "dual-connection", true);
  EXPECT_TRUE(cmp.null_supported);
}

TEST(FullSuiteSession, InadmissibleHostIsolatedToDualTest) {
  TestbedConfig cfg;
  cfg.seed = 7300;
  cfg.remote = default_remote_config();
  cfg.remote.ipid_policy = tcpip::IpidPolicy::kRandom;
  Testbed bed{cfg};

  SurveyEngine session{bed.loop()};
  session.add_target("host", bed.probe(), bed.remote_addr(),
                     {TestSpec{"dual-connection"}, TestSpec{"syn"}});

  TestRunConfig run;
  run.samples = 10;
  session.run(run, 2, Duration::millis(100));
  EXPECT_TRUE(session.rate_series("host", "dual-connection", true).empty())
      << "inadmissible measurements must not produce rates";
  EXPECT_EQ(session.rate_series("host", "syn", true).size(), 2u)
      << "other tests keep working against the same host";
}

}  // namespace
}  // namespace reorder::core
