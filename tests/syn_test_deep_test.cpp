// Deep tests for the SYN Test: second-SYN implementation variants, load
// balancer immunity, both directions, politeness.
#include <gtest/gtest.h>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "trace/analyzer.hpp"

namespace reorder::core {
namespace {

using tcpip::SecondSynBehavior;
using util::Duration;

TestbedConfig with_second_syn(SecondSynBehavior b, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.remote = default_remote_config();
  cfg.remote.behavior.second_syn = b;
  return cfg;
}

class SynBehaviorMatrix : public ::testing::TestWithParam<SecondSynBehavior> {};

TEST_P(SynBehaviorMatrix, CleanPathAllInOrder) {
  Testbed bed{with_second_syn(GetParam(), 301)};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 12;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.forward.in_order, 12)
      << "forward verdict comes from the SYN/ACK and works for every variant";
  if (GetParam() == SecondSynBehavior::kIgnore) {
    EXPECT_EQ(result.reverse.ambiguous, 12)
        << "a host that ignores the second SYN reveals nothing about the reverse path";
  } else {
    EXPECT_EQ(result.reverse.in_order, 12);
  }
}

TEST_P(SynBehaviorMatrix, ForwardSwapsDetected) {
  auto cfg = with_second_syn(GetParam(), 302);
  cfg.forward.swap_probability = 1.0;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 12;
  // At p=1 the shaper holds every odd packet; space samples beyond the
  // hold timeout so polite-close traffic cannot pair with the next SYN.
  run.sample_spacing = Duration::millis(120);
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.forward.reordered, 12)
      << "the SYN/ACK acknowledges the offset ISS when SYN2 arrives first";
}

INSTANTIATE_TEST_SUITE_P(Variants, SynBehaviorMatrix,
                         ::testing::Values(SecondSynBehavior::kSpecCompliant,
                                           SecondSynBehavior::kAlwaysRst,
                                           SecondSynBehavior::kDualRst,
                                           SecondSynBehavior::kIgnore));

TEST(SynDeep, SpecCompliantRepliesDifferByOrdering) {
  // Strict RFC 793: in-window second SYN -> RST; out-of-window -> pure ACK.
  // Either way the test classifies; this checks the remote's behaviour is
  // actually exercised end to end.
  auto cfg = with_second_syn(SecondSynBehavior::kSpecCompliant, 303);
  cfg.forward.swap_probability = 1.0;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 6;
  run.sample_spacing = Duration::millis(120);
  const auto result = bed.run_sync(*test, run);
  EXPECT_EQ(result.forward.reordered, 6);
  EXPECT_EQ(result.reverse.in_order, 6);
}

TEST(SynDeep, ReverseSwapsDetected) {
  auto cfg = with_second_syn(SecondSynBehavior::kAlwaysRst, 304);
  cfg.reverse.swap_probability = 1.0;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 12;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.reverse.reordered, 12) << "the RST overtakes the SYN/ACK on the way back";
  EXPECT_EQ(result.forward.in_order, 12);
}

TEST(SynDeep, WorksThroughLoadBalancer) {
  // The whole point of the SYN test (paper §III-D): identical four-tuples
  // reach the same backend, so verdicts stay clean behind a balancer.
  TestbedConfig cfg;
  cfg.seed = 305;
  cfg.backends = 4;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 16;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.forward.in_order, 16);
  EXPECT_EQ(result.reverse.in_order, 16);
}

TEST(SynDeep, ReplyLossDegradesReverseNotForward) {
  auto cfg = with_second_syn(SecondSynBehavior::kAlwaysRst, 306);
  cfg.reverse.loss_probability = 0.5;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 20;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  // The remote retransmits its SYN/ACK, so the forward verdict (read from
  // the SYN/ACK's ack number) survives heavy reply loss...
  EXPECT_GE(result.forward.in_order, 15);
  // ...while the RST is never retransmitted: reverse verdicts degrade to
  // ambiguous whenever it (or the original SYN/ACK) is lost.
  EXPECT_GT(result.reverse.ambiguous, 3);
  EXPECT_EQ(result.reverse.reordered, 0)
      << "the retransmission guard must not fake reverse reorderings";
}

TEST(SynDeep, VerdictsMatchGroundTruth) {
  auto cfg = with_second_syn(SecondSynBehavior::kAlwaysRst, 307);
  cfg.forward.swap_probability = 0.3;
  cfg.reverse.swap_probability = 0.3;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 50;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  int checked = 0;
  for (const auto& s : result.samples) {
    if (s.forward == Ordering::kInOrder || s.forward == Ordering::kReordered) {
      const auto truth =
          trace::pair_ground_truth(bed.remote_ingress_trace(), s.fwd_uid_first, s.fwd_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        EXPECT_EQ(s.forward == Ordering::kReordered,
                  truth == trace::PairGroundTruth::kReordered);
        ++checked;
      }
    }
    if ((s.reverse == Ordering::kInOrder || s.reverse == Ordering::kReordered) &&
        s.rev_uid_first != 0) {
      const auto truth =
          trace::pair_ground_truth(bed.remote_egress_trace(), s.rev_uid_first, s.rev_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        EXPECT_EQ(s.reverse == Ordering::kReordered,
                  truth == trace::PairGroundTruth::kReordered);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 60);
}

TEST(SynDeep, GapParameterHonored) {
  Testbed bed{with_second_syn(SecondSynBehavior::kAlwaysRst, 308)};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 4;
  run.inter_packet_gap = Duration::micros(500);
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  for (const auto& s : result.samples) {
    util::TimePoint first_at;
    util::TimePoint second_at;
    for (const auto& rec : bed.remote_ingress_trace().records()) {
      if (rec.packet.uid == s.fwd_uid_first) first_at = rec.at;
      if (rec.packet.uid == s.fwd_uid_second) second_at = rec.at;
    }
    EXPECT_GE((second_at - first_at).ns(), Duration::micros(500).ns());
  }
}

TEST(SynDeep, PoliteCloseLeavesNoRemoteState) {
  Testbed bed{with_second_syn(SecondSynBehavior::kAlwaysRst, 309)};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 6;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  bed.loop().advance(Duration::seconds(10));
  EXPECT_EQ(bed.remote().active_connections(), 0u)
      << "every sampled connection must be fully closed (no SYN-flood residue)";
  EXPECT_EQ(bed.probe().registered_flows(), 0u);
}

TEST(SynDeep, EachSampleUsesFreshPorts) {
  Testbed bed{with_second_syn(SecondSynBehavior::kAlwaysRst, 310)};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
  TestRunConfig run;
  run.samples = 5;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible);
  // Count distinct source ports among captured SYNs.
  std::set<std::uint16_t> ports;
  for (const auto& rec : bed.remote_ingress_trace().records()) {
    if (rec.packet.tcp.is_syn()) ports.insert(rec.packet.tcp.src_port);
  }
  EXPECT_EQ(ports.size(), 5u);
}

}  // namespace
}  // namespace reorder::core
