// End-to-end smoke tests: every measurement technique against a clean
// path must report zero reordering, and against a heavy swap shaper must
// report substantial reordering. These run first because every other
// suite builds on the same machinery.
#include <gtest/gtest.h>

#include "core/data_transfer_test.hpp"
#include "core/dual_connection_test.hpp"
#include "core/single_connection_test.hpp"
#include "core/syn_test.hpp"
#include "core/testbed.hpp"

namespace reorder {
namespace {

using core::Ordering;
using core::TestRunConfig;
using core::Testbed;
using core::TestbedConfig;

TestbedConfig clean_config(std::uint64_t seed = 42) {
  TestbedConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(Smoke, SingleConnectionCleanPath) {
  Testbed bed{clean_config()};
  core::SingleConnectionTest test{bed.probe(), bed.remote_addr(), core::kDiscardPort};
  TestRunConfig cfg;
  cfg.samples = 20;
  const auto result = bed.run_sync(test, cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.samples.size(), 20u);
  EXPECT_EQ(result.forward.reordered, 0) << result.note;
  EXPECT_EQ(result.forward.in_order, 20);
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, SingleConnectionForwardSwaps) {
  auto cfg = clean_config(7);
  cfg.forward.swap_probability = 1.0;  // every sample pair is exchanged
  Testbed bed{cfg};
  core::SingleConnectionTest test{bed.probe(), bed.remote_addr(), core::kDiscardPort};
  TestRunConfig run_cfg;
  run_cfg.samples = 10;
  const auto result = bed.run_sync(test, run_cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GE(result.forward.reordered, 8) << "swap-everything path must reorder samples";
}

TEST(Smoke, DualConnectionCleanPath) {
  Testbed bed{clean_config(11)};
  core::DualConnectionTest test{bed.probe(), bed.remote_addr(), core::kDiscardPort};
  TestRunConfig cfg;
  cfg.samples = 20;
  const auto result = bed.run_sync(test, cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.forward.reordered, 0);
  EXPECT_EQ(result.forward.in_order, 20);
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, SynTestCleanPath) {
  Testbed bed{clean_config(13)};
  core::SynTest test{bed.probe(), bed.remote_addr(), core::kDiscardPort};
  TestRunConfig cfg;
  cfg.samples = 20;
  const auto result = bed.run_sync(test, cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.forward.in_order, 20);
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, DataTransferCleanPath) {
  Testbed bed{clean_config(17)};
  core::DataTransferTest test{bed.probe(), bed.remote_addr(), core::kHttpPort};
  const auto result = bed.run_sync(test, TestRunConfig{});
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GT(result.samples.size(), 10u) << "16 KiB at 512-byte MSS must produce many pairs";
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, DataTransferReverseSwaps) {
  auto cfg = clean_config(19);
  cfg.reverse.swap_probability = 0.4;
  Testbed bed{cfg};
  core::DataTransferTest test{bed.probe(), bed.remote_addr(), core::kHttpPort};
  const auto result = bed.run_sync(test, TestRunConfig{});
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GT(result.reverse.reordered, 0);
}

}  // namespace
}  // namespace reorder
