// End-to-end smoke tests: every measurement technique against a clean
// path must report zero reordering, and against a heavy swap shaper must
// report substantial reordering. These run first because every other
// suite builds on the same machinery.
#include <gtest/gtest.h>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"

namespace reorder {
namespace {

using core::Ordering;
using core::TestRunConfig;
using core::Testbed;
using core::TestbedConfig;

TestbedConfig clean_config(std::uint64_t seed = 42) {
  TestbedConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(Smoke, SingleConnectionCleanPath) {
  Testbed bed{clean_config()};
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{"single-connection"});
  TestRunConfig cfg;
  cfg.samples = 20;
  const auto result = bed.run_sync(*test, cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.samples.size(), 20u);
  EXPECT_EQ(result.forward.reordered, 0) << result.note;
  EXPECT_EQ(result.forward.in_order, 20);
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, SingleConnectionForwardSwaps) {
  auto cfg = clean_config(7);
  cfg.forward.swap_probability = 1.0;  // every sample pair is exchanged
  Testbed bed{cfg};
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{"single-connection"});
  TestRunConfig run_cfg;
  run_cfg.samples = 10;
  const auto result = bed.run_sync(*test, run_cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GE(result.forward.reordered, 8) << "swap-everything path must reorder samples";
}

TEST(Smoke, DualConnectionCleanPath) {
  Testbed bed{clean_config(11)};
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{"dual-connection"});
  TestRunConfig cfg;
  cfg.samples = 20;
  const auto result = bed.run_sync(*test, cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.forward.reordered, 0);
  EXPECT_EQ(result.forward.in_order, 20);
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, SynTestCleanPath) {
  Testbed bed{clean_config(13)};
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{"syn"});
  TestRunConfig cfg;
  cfg.samples = 20;
  const auto result = bed.run_sync(*test, cfg);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_EQ(result.forward.in_order, 20);
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, DataTransferCleanPath) {
  Testbed bed{clean_config(17)};
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{"data-transfer"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GT(result.samples.size(), 10u) << "16 KiB at 512-byte MSS must produce many pairs";
  EXPECT_EQ(result.reverse.reordered, 0);
}

TEST(Smoke, DataTransferReverseSwaps) {
  auto cfg = clean_config(19);
  cfg.reverse.swap_probability = 0.4;
  Testbed bed{cfg};
  auto test = core::make_registered_test(bed.probe(), bed.remote_addr(), core::TestSpec{"data-transfer"});
  const auto result = bed.run_sync(*test, TestRunConfig{});
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GT(result.reverse.reordered, 0);
}

}  // namespace
}  // namespace reorder
