// Unit tests for util: checksum, RNG, time, byte codec, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "util/byte_io.hpp"
#include "util/checksum.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace reorder::util {
namespace {

// ---------- InternetChecksum ----------

TEST(Checksum, Rfc1071ReferenceVector) {
  // The classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
  const std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold: ddf0 + 2 = ddf2 -> ~ = 220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, OddLength) {
  const std::vector<std::uint8_t> data{0xab};
  // One byte pads to ab00; ~ab00 = 54ff.
  EXPECT_EQ(internet_checksum(data), 0x54ff);
}

TEST(Checksum, VerifiesToZeroWhenEmbedded) {
  // A buffer whose checksum field is filled must re-checksum to 0.
  std::vector<std::uint8_t> data{0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40,
                                 0x00, 0x40, 0x06, 0x00, 0x00};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_EQ(internet_checksum(data), 0);
}

// Straight byte-pair accumulation — the implementation before the unrolled
// word loop, kept as the differential reference.
std::uint16_t reference_checksum(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint16_t>((static_cast<std::uint16_t>(data[i]) << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint16_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

TEST(Checksum, UnrolledMatchesReferenceOverRandomLengthsAndOffsets) {
  Rng rng{97};
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t off = static_cast<std::size_t>(rng.below(512));
    const std::size_t len =
        static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(data.size() - off)));
    const auto view = std::span{data}.subspan(off, len);
    EXPECT_EQ(internet_checksum(view), reference_checksum(view))
        << "off=" << off << " len=" << len;
  }
}

TEST(Checksum, UnrolledMatchesReferenceUnderOddChunkedUpdates) {
  Rng rng{131};
  std::vector<std::uint8_t> data(2048);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + static_cast<std::size_t>(rng.below(2047));
    const auto view = std::span{data}.subspan(0, len);
    InternetChecksum c;
    std::size_t off = 0;
    while (off < len) {
      // Deliberately odd-biased chunk sizes to exercise the dangling-byte
      // carry between updates.
      const std::size_t n = std::min<std::size_t>(1 + rng.below(33), len - off);
      c.update(view.subspan(off, n));
      off += n;
    }
    EXPECT_EQ(c.finish(), reference_checksum(view)) << "len=" << len;
  }
}

TEST(Checksum, IncrementalMatchesOneShotAcrossChunkings) {
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 37);
  const std::uint16_t expect = internet_checksum(data);
  for (std::size_t chunk : {1u, 2u, 3u, 5u, 16u, 64u, 255u}) {
    InternetChecksum c;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      const std::size_t n = std::min(chunk, data.size() - off);
      c.update(std::span{data}.subspan(off, n));
    }
    EXPECT_EQ(c.finish(), expect) << "chunk=" << chunk;
  }
}

// ---------- Rng ----------

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 65536ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng{9};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

class RngBernoulliRate : public ::testing::TestWithParam<double> {};

TEST_P(RngBernoulliRate, EmpiricalRateNearP) {
  const double p = GetParam();
  Rng rng{17};
  const int n = 40000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, p, 4.0 * std::sqrt(p * (1 - p) / n) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RngBernoulliRate,
                         ::testing::Values(0.01, 0.03, 0.05, 0.10, 0.15, 0.40, 0.5, 0.9));

TEST(Rng, ExponentialMean) {
  Rng rng{19};
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng{23};
  const int n = 50000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitIndependentStreams) {
  Rng parent{31};
  Rng child = parent.split();
  // The child stream must not simply mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---------- Duration / TimePoint ----------

TEST(Time, DurationFactoriesAndAccessors) {
  EXPECT_EQ(Duration::micros(250).ns(), 250'000);
  EXPECT_EQ(Duration::millis(3).us(), 3'000);
  EXPECT_EQ(Duration::seconds(2).ms(), 2'000);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).seconds_f(), 1.5);
}

TEST(Time, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds_f(1e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds_f(2.5e-6).ns(), 2500);
}

TEST(Time, Arithmetic) {
  const auto a = Duration::millis(5);
  const auto b = Duration::micros(500);
  EXPECT_EQ((a + b).us(), 5500);
  EXPECT_EQ((a - b).us(), 4500);
  EXPECT_EQ((a * 3).ms(), 15);
  EXPECT_EQ((a / 5).ms(), 1);
  EXPECT_EQ((-a).ms(), -5);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(Duration::nanos(0).is_zero());
  EXPECT_TRUE((-a).is_negative());
}

TEST(Time, TimePointArithmetic) {
  const auto t0 = TimePoint::epoch();
  const auto t1 = t0 + Duration::millis(10);
  EXPECT_EQ((t1 - t0).ms(), 10);
  EXPECT_EQ((t1 - Duration::millis(4)).ns(), Duration::millis(6).ns());
  EXPECT_TRUE(t0 < t1);
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(Duration::nanos(12).to_string(), "12ns");
  EXPECT_EQ(Duration::micros(250).to_string(), "250us");
  EXPECT_NE(Duration::millis(3).to_string().find("ms"), std::string::npos);
  EXPECT_NE(Duration::seconds(2).to_string().find("s"), std::string::npos);
}

// ---------- ByteWriter / ByteReader ----------

TEST(ByteIo, RoundTrip) {
  std::vector<std::uint8_t> buf;
  ByteWriter w{buf};
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  const std::vector<std::uint8_t> tail{1, 2, 3};
  w.bytes(tail);
  ASSERT_EQ(buf.size(), 10u);

  ByteReader r{buf};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  const auto rest = r.bytes(3);
  EXPECT_EQ(rest[2], 3);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIo, NetworkByteOrder) {
  std::vector<std::uint8_t> buf;
  ByteWriter w{buf};
  w.u16(0x0102);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(ByteIo, UnderrunThrows) {
  const std::vector<std::uint8_t> buf{1, 2};
  ByteReader r{buf};
  r.u16();
  // GCC 12 flags the (never-executed) read past the buffer on the path
  // after the bounds check throws; the warning is a false positive here —
  // provoking that throw is the whole point of this test.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
  EXPECT_THROW(r.u8(), ParseError);
#pragma GCC diagnostic pop
}

TEST(ByteIo, PatchU16) {
  std::vector<std::uint8_t> buf;
  ByteWriter w{buf};
  w.u16(0);
  w.u16(0x5555);
  w.patch_u16(0, 0xbeef);
  ByteReader r{buf};
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u16(), 0x5555);
}

TEST(ByteIo, SkipAndPosition) {
  const std::vector<std::uint8_t> buf{1, 2, 3, 4, 5};
  ByteReader r{buf};
  r.skip(2);
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.u8(), 3);
  EXPECT_THROW(r.skip(5), ParseError);
}

// ---------- Flags ----------

TEST(Flags, ParsesAllKinds) {
  Flags flags{"t", "test"};
  std::int64_t n = 5;
  double d = 0.5;
  std::string s = "x";
  bool b = false;
  flags.add_i64("count", &n, "a count");
  flags.add_double("rate", &d, "a rate");
  flags.add_string("name", &s, "a name");
  flags.add_bool("verbose", &b, "verbosity");

  const char* argv[] = {"prog", "--count=7", "--rate", "0.25", "--name=abc", "--verbose", "pos"};
  ASSERT_TRUE(flags.parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_EQ(s, "abc");
  EXPECT_TRUE(b);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(Flags, NoPrefixDisablesBool) {
  Flags flags{"t", "test"};
  bool b = true;
  flags.add_bool("color", &b, "color");
  const char* argv[] = {"prog", "--no-color"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(b);
}

TEST(Flags, RejectsUnknownAndBadValues) {
  Flags flags{"t", "test"};
  std::int64_t n = 0;
  flags.add_i64("n", &n, "n");
  const char* bad1[] = {"prog", "--bogus=1"};
  Flags unknown{"t", "d"};
  EXPECT_FALSE(unknown.parse(2, const_cast<char**>(bad1)));
  const char* bad2[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(bad2)));
}

TEST(Flags, UsageMentionsFlagsAndDefaults) {
  Flags flags{"prog", "demo"};
  std::int64_t n = 42;
  flags.add_i64("answer", &n, "the answer");
  const auto usage = flags.usage();
  EXPECT_NE(usage.find("--answer"), std::string::npos);
  EXPECT_NE(usage.find("42"), std::string::npos);
}

}  // namespace
}  // namespace reorder::util
