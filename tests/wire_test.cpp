// Wire-format tests: sequence arithmetic, IPv4/TCP codecs, packet
// round-trips, checksum verification.
#include <gtest/gtest.h>

#include "tcpip/ipv4.hpp"
#include "tcpip/packet.hpp"
#include "tcpip/seq.hpp"
#include "tcpip/tcp_header.hpp"

namespace reorder::tcpip {
namespace {

// ---------- sequence arithmetic ----------

TEST(Seq, BasicComparisons) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_TRUE(seq_leq(2, 2));
  EXPECT_TRUE(seq_gt(3, 2));
  EXPECT_TRUE(seq_geq(2, 2));
  EXPECT_FALSE(seq_lt(2, 2));
}

TEST(Seq, WrapAround) {
  const std::uint32_t near_max = 0xfffffff0u;
  EXPECT_TRUE(seq_lt(near_max, 5));  // 5 is "after" the wrap
  EXPECT_TRUE(seq_gt(5, near_max));
  EXPECT_EQ(seq_diff(5, near_max), 21);
  EXPECT_EQ(seq_diff(near_max, 5), -21);
}

TEST(Seq, WindowMembership) {
  EXPECT_TRUE(seq_in_window(10, 10, 5));
  EXPECT_TRUE(seq_in_window(14, 10, 5));
  EXPECT_FALSE(seq_in_window(15, 10, 5));
  EXPECT_FALSE(seq_in_window(9, 10, 5));
  // Window straddling the wrap point.
  EXPECT_TRUE(seq_in_window(2, 0xfffffffeu, 10));
  EXPECT_FALSE(seq_in_window(0xfffffff0u, 0xfffffffeu, 10));
}

TEST(Seq, MaxPicksCircularGreater) {
  EXPECT_EQ(seq_max(3, 8), 8u);
  EXPECT_EQ(seq_max(5, 0xfffffff0u), 5u);  // 5 is after the wrap
}

class SeqAntisymmetry : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SeqAntisymmetry, LtGtAreMirrors) {
  const std::uint32_t a = GetParam();
  const std::uint32_t b = a + 1000;
  EXPECT_TRUE(seq_lt(a, b));
  EXPECT_TRUE(seq_gt(b, a));
  EXPECT_FALSE(seq_lt(b, a));
  EXPECT_EQ(seq_diff(b, a), 1000);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeqAntisymmetry,
                         ::testing::Values(0u, 1u, 0x7fffffffu, 0x80000000u, 0xfffffc00u,
                                           0xffffffffu));

TEST(Ipid, CircularComparison) {
  EXPECT_TRUE(ipid_lt(10, 11));
  EXPECT_TRUE(ipid_lt(0xfff0, 3));  // wrapped
  EXPECT_TRUE(ipid_gt(3, 0xfff0));
  EXPECT_EQ(ipid_diff(3, 0xfff0), 19);
}

// ---------- IPv4 address ----------

TEST(Ipv4Address, ParseAndFormat) {
  const auto a = Ipv4Address::parse("10.1.2.3");
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(a.value(), 0x0a010203u);
  EXPECT_EQ(Ipv4Address::from_octets(192, 168, 0, 1).to_string(), "192.168.0.1");
}

TEST(Ipv4Address, ParseRejectsGarbage) {
  EXPECT_THROW(Ipv4Address::parse("10.1.2"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("256.1.1.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.4x"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("banana"), std::invalid_argument);
}

// ---------- IPv4 header codec ----------

Ipv4Header sample_ip() {
  Ipv4Header ip;
  ip.tos = 0x10;
  ip.identification = 0xbeef;
  ip.dont_fragment = true;
  ip.ttl = 57;
  ip.protocol = IpProto::kTcp;
  ip.src = Ipv4Address::parse("10.0.0.1");
  ip.dst = Ipv4Address::parse("10.0.0.2");
  return ip;
}

TEST(Ipv4Codec, RoundTripWithValidChecksum) {
  const auto ip = sample_ip();
  std::vector<std::uint8_t> buf;
  util::ByteWriter w{buf};
  ip.serialize(w, 100);
  ASSERT_EQ(buf.size(), Ipv4Header::kWireSize);

  util::ByteReader r{buf};
  const auto parsed = Ipv4Header::parse(r);
  EXPECT_TRUE(parsed.checksum_ok);
  EXPECT_EQ(parsed.total_length, 120);
  EXPECT_EQ(parsed.header.tos, ip.tos);
  EXPECT_EQ(parsed.header.identification, ip.identification);
  EXPECT_EQ(parsed.header.dont_fragment, true);
  EXPECT_EQ(parsed.header.more_fragments, false);
  EXPECT_EQ(parsed.header.ttl, ip.ttl);
  EXPECT_EQ(parsed.header.src, ip.src);
  EXPECT_EQ(parsed.header.dst, ip.dst);
}

TEST(Ipv4Codec, CorruptionBreaksChecksum) {
  const auto ip = sample_ip();
  std::vector<std::uint8_t> buf;
  util::ByteWriter w{buf};
  ip.serialize(w, 0);
  buf[8] ^= 0xff;  // flip the TTL
  util::ByteReader r{buf};
  EXPECT_FALSE(Ipv4Header::parse(r).checksum_ok);
}

TEST(Ipv4Codec, RejectsNonIpv4) {
  std::vector<std::uint8_t> buf(20, 0);
  buf[0] = 0x65;  // version 6
  util::ByteReader r{buf};
  EXPECT_THROW(Ipv4Header::parse(r), util::ParseError);
}

// ---------- TCP header codec ----------

TcpHeader sample_tcp() {
  TcpHeader tcp;
  tcp.src_port = 40001;
  tcp.dst_port = 80;
  tcp.seq = 0x01020304;
  tcp.ack = 0x0a0b0c0d;
  tcp.flags = kSyn | kAck;
  tcp.window = 8192;
  tcp.mss = 1460;
  return tcp;
}

TEST(TcpCodec, RoundTripWithMssOption) {
  const auto tcp = sample_tcp();
  const auto src = Ipv4Address::parse("1.2.3.4");
  const auto dst = Ipv4Address::parse("5.6.7.8");
  std::vector<std::uint8_t> buf;
  util::ByteWriter w{buf};
  tcp.serialize(w, src, dst, {});
  ASSERT_EQ(buf.size(), 24u);

  const auto parsed = TcpHeader::parse(buf, src, dst);
  EXPECT_TRUE(parsed.checksum_ok);
  EXPECT_EQ(parsed.header_len, 24u);
  EXPECT_EQ(parsed.header.src_port, tcp.src_port);
  EXPECT_EQ(parsed.header.seq, tcp.seq);
  EXPECT_EQ(parsed.header.ack, tcp.ack);
  EXPECT_EQ(parsed.header.flags, tcp.flags);
  EXPECT_EQ(parsed.header.window, tcp.window);
  ASSERT_TRUE(parsed.header.mss.has_value());
  EXPECT_EQ(*parsed.header.mss, 1460);
}

TEST(TcpCodec, ChecksumCoversPayloadAndPseudoHeader) {
  auto tcp = sample_tcp();
  tcp.mss.reset();
  const auto src = Ipv4Address::parse("1.2.3.4");
  const auto dst = Ipv4Address::parse("5.6.7.8");
  const std::vector<std::uint8_t> payload{'h', 'i'};
  std::vector<std::uint8_t> buf;
  util::ByteWriter w{buf};
  tcp.serialize(w, src, dst, payload);

  EXPECT_TRUE(TcpHeader::parse(buf, src, dst).checksum_ok);
  // Same bytes against a different pseudo-header must fail.
  EXPECT_FALSE(TcpHeader::parse(buf, src, Ipv4Address::parse("5.6.7.9")).checksum_ok);
  // Payload corruption must fail.
  buf.back() ^= 0x01;
  EXPECT_FALSE(TcpHeader::parse(buf, src, dst).checksum_ok);
}

TEST(TcpCodec, RejectsBadDataOffset) {
  std::vector<std::uint8_t> buf(20, 0);
  buf[12] = 0x10;  // data offset 4 words = 16 bytes < minimum
  EXPECT_THROW(TcpHeader::parse(buf, Ipv4Address{}, Ipv4Address{}), util::ParseError);
}

TEST(TcpHeaderApi, FlagHelpersAndDescribe) {
  TcpHeader h;
  h.flags = kSyn | kAck;
  EXPECT_TRUE(h.is_syn());
  EXPECT_TRUE(h.is_ack());
  EXPECT_FALSE(h.is_rst());
  const auto s = h.describe();
  EXPECT_NE(s.find("SYN"), std::string::npos);
  EXPECT_NE(s.find("ACK"), std::string::npos);
}

// ---------- whole-packet codec ----------

TEST(PacketCodec, RoundTrip) {
  Packet pkt;
  pkt.ip = sample_ip();
  pkt.tcp = sample_tcp();
  pkt.payload = {1, 2, 3, 4, 5};

  const auto wire = pkt.to_wire();
  EXPECT_EQ(wire.size(), pkt.wire_size());
  const auto back = Packet::from_wire(wire);
  EXPECT_TRUE(back.checksums_ok);
  EXPECT_EQ(back.packet.ip.src, pkt.ip.src);
  EXPECT_EQ(back.packet.tcp.seq, pkt.tcp.seq);
  EXPECT_EQ(back.packet.payload, pkt.payload);
}

TEST(PacketCodec, LengthMismatchThrows) {
  Packet pkt;
  pkt.ip = sample_ip();
  pkt.tcp = sample_tcp();
  auto wire = pkt.to_wire();
  wire.push_back(0x00);  // trailing junk not covered by total_length
  EXPECT_THROW(Packet::from_wire(wire), util::ParseError);
}

TEST(PacketApi, SeqLenCountsSynAndFin) {
  Packet pkt;
  pkt.tcp.flags = kSyn;
  EXPECT_EQ(pkt.seq_len(), 1u);
  pkt.tcp.flags = kFin | kAck;
  pkt.payload = {9, 9};
  EXPECT_EQ(pkt.seq_len(), 3u);
}

TEST(PacketApi, DescribeMentionsEndpoints) {
  Packet pkt;
  pkt.ip = sample_ip();
  pkt.tcp = sample_tcp();
  const auto s = pkt.describe();
  EXPECT_NE(s.find("10.0.0.1:40001"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.2:80"), std::string::npos);
}

TEST(PacketApi, UidsAreUnique) {
  const auto a = next_packet_uid();
  const auto b = next_packet_uid();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace reorder::tcpip
