// Tests for the registry-driven technique construction API.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/ping_burst_adapter.hpp"
#include "core/test_registry.hpp"
#include "core/testbed.hpp"

namespace reorder::core {
namespace {

TEST(Registry, KnowsAllFiveTechniquesPlusVariant) {
  const auto names = TestRegistry::global().technique_names();
  const std::vector<std::string> expected{"data-transfer",      "dual-connection",
                                          "ping-burst",         "single-connection",
                                          "single-connection-inorder", "syn"};
  EXPECT_EQ(names, expected);
  for (const auto& name : expected) {
    EXPECT_TRUE(TestRegistry::global().contains(name)) << name;
  }
}

TEST(Registry, AliasesResolveToCanonicalNames) {
  const auto& reg = TestRegistry::global();
  EXPECT_EQ(reg.canonical_name("single"), "single-connection");
  EXPECT_EQ(reg.canonical_name("single-inorder"), "single-connection-inorder");
  EXPECT_EQ(reg.canonical_name("dual"), "dual-connection");
  EXPECT_EQ(reg.canonical_name("data"), "data-transfer");
  EXPECT_EQ(reg.canonical_name("ping"), "ping-burst");
  EXPECT_EQ(reg.canonical_name("syn"), "syn");
  EXPECT_TRUE(reg.contains("dual"));
}

TEST(Registry, ConcurrentRegistrationAndLookupIsSafe) {
  // The sharded survey runtime resolves techniques from worker threads
  // while other code may still be registering variants — registration and
  // lookup must be mutually safe (regression: the maps used to be
  // unguarded, which TSAN flags and std::map corruption punishes).
  TestRegistry reg;
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, &go, &failures, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        const std::string name = "tech-" + std::to_string(t) + "-" + std::to_string(i);
        reg.register_technique(name, [](probe::ProbeHost&, tcpip::Ipv4Address,
                                        const TestSpec&) -> std::unique_ptr<ReorderTest> {
          return nullptr;
        });
        reg.register_alias("alias-" + name, name);
        if (!reg.contains(name) || reg.canonical_name("alias-" + name) != name) {
          failures.fetch_add(1);
        }
        // Cross-thread reads race against the other writers on purpose.
        reg.technique_names();
        reg.contains("tech-0-0");
      }
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(reg.technique_names().size(), 4u * 200u);
}

TEST(Registry, GlobalRegistryCreatesConcurrently) {
  // Building suites from several shard worlds at once is the runtime's
  // steady state; create() must not trip over itself.
  Testbed bed_a{TestbedConfig{}};
  Testbed bed_b{TestbedConfig{}};
  std::atomic<int> built{0};
  std::thread other{[&bed_b, &built] {
    for (int i = 0; i < 50; ++i) {
      if (TestRegistry::global().create(bed_b.probe(), bed_b.remote_addr(), TestSpec{"syn"})) {
        built.fetch_add(1);
      }
    }
  }};
  for (int i = 0; i < 50; ++i) {
    if (TestRegistry::global().create(bed_a.probe(), bed_a.remote_addr(), TestSpec{"single"})) {
      built.fetch_add(1);
    }
  }
  other.join();
  EXPECT_EQ(built.load(), 100);
}

TEST(Registry, ContainsAgreesWithCreateForDanglingAliases) {
  TestRegistry reg;
  reg.register_alias("short", "never-registered");
  // contains() must answer what create() would do, not just alias-table
  // membership.
  EXPECT_FALSE(reg.contains("short"));
  EXPECT_THROW(reg.canonical_name("short"), std::invalid_argument);
}

TEST(Registry, UnknownTechniqueIsAHardError) {
  Testbed bed{TestbedConfig{}};
  const auto& reg = TestRegistry::global();
  EXPECT_THROW(reg.canonical_name("data-transfe"), std::invalid_argument);
  EXPECT_THROW(reg.create(bed.probe(), bed.remote_addr(), TestSpec{"no-such-test"}),
               std::invalid_argument);
  // The historical bench_common bug: an unknown name silently became a
  // data-transfer test. It must throw, and the message must name the
  // offender.
  try {
    reg.create(bed.probe(), bed.remote_addr(), TestSpec{"singel"});
    FAIL() << "unknown technique did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("singel"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("single-connection"), std::string::npos);
  }
}

TEST(Registry, CreateBuildsWorkingTests) {
  Testbed bed{TestbedConfig{}};
  const auto& reg = TestRegistry::global();
  EXPECT_EQ(reg.create(bed.probe(), bed.remote_addr(), TestSpec{"single"})->name(),
            "single-connection");
  EXPECT_EQ(reg.create(bed.probe(), bed.remote_addr(), TestSpec{"dual"})->name(),
            "dual-connection");
  EXPECT_EQ(reg.create(bed.probe(), bed.remote_addr(), TestSpec{"syn"})->name(), "syn");
  EXPECT_EQ(reg.create(bed.probe(), bed.remote_addr(), TestSpec{"data"})->name(),
            "data-transfer");
  EXPECT_EQ(reg.create(bed.probe(), bed.remote_addr(), TestSpec{"ping"})->name(), "ping-burst");
}

TEST(Registry, SpecOptionsAreHonored) {
  Testbed bed{TestbedConfig{}};
  SingleConnectionOptions inorder;
  inorder.reversed_order = false;
  auto test = make_registered_test(bed.probe(), bed.remote_addr(),
                                   TestSpec{"single-connection", 0, inorder});
  EXPECT_EQ(test->name(), "single-connection-inorder");
}

TEST(Registry, MismatchedOptionsVariantThrows) {
  Testbed bed{TestbedConfig{}};
  SynTestOptions syn_opts;
  EXPECT_THROW(
      make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single", 0, syn_opts}),
      std::invalid_argument);
}

TEST(Registry, CreateAsPreservesConcreteType) {
  Testbed bed{TestbedConfig{}};
  const auto& reg = TestRegistry::global();
  auto dual =
      reg.create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"dual"});
  ASSERT_NE(dual, nullptr);
  EXPECT_THROW(reg.create_as<DualConnectionTest>(bed.probe(), bed.remote_addr(), TestSpec{"syn"}),
               std::invalid_argument);
}

TEST(Registry, PingBurstAdapterReportsRoundTripVerdicts) {
  TestbedConfig cfg;
  cfg.seed = 901;
  cfg.forward.swap_probability = 0.4;
  cfg.reverse.swap_probability = 0.4;
  Testbed bed{cfg};
  auto ping = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"ping-burst"});
  TestRunConfig run;
  run.samples = 40;  // bursts
  run.sample_spacing = util::Duration::millis(60);
  const auto result = bed.run_sync(*ping, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GT(result.forward.usable(), 100);  // 40 bursts x 4 adjacent pairs
  EXPECT_GT(result.forward.reordered, 0);
  // The direction-ambiguity critique: nothing can land in `reverse`.
  EXPECT_EQ(result.reverse.total(), 0);
  EXPECT_NE(result.note.find("direction-ambiguous"), std::string::npos);
}

TEST(Registry, PingBurstAdapterOnCleanPathSeesNothing) {
  TestbedConfig cfg;
  cfg.seed = 902;
  Testbed bed{cfg};
  PingBurstOptions opts;
  opts.burst_size = 5;
  auto ping = TestRegistry::global().create_as<PingBurstAdapter>(
      bed.probe(), bed.remote_addr(), TestSpec{"ping-burst", 0, opts});
  TestRunConfig run;
  run.samples = 10;
  const auto result = bed.run_sync(*ping, run);
  ASSERT_TRUE(result.admissible);
  EXPECT_EQ(result.forward.reordered, 0);
  EXPECT_EQ(result.forward.lost, 0);
  const auto& raw = ping->last_burst_result();
  EXPECT_EQ(raw.bursts, 10);
  EXPECT_EQ(raw.bursts_complete, 10);
}

}  // namespace
}  // namespace reorder::core
