// Tests for tcpip::Host: demultiplexing, listeners/apps, closed-port RSTs,
// IPID stamping, endpoint lifecycle.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_loop.hpp"
#include "tcpip/host.hpp"
#include "tcpip/seq.hpp"

namespace reorder::tcpip {
namespace {

using util::Duration;

const Ipv4Address kClient = Ipv4Address::from_octets(10, 0, 0, 1);
const Ipv4Address kServer = Ipv4Address::from_octets(10, 0, 0, 2);

struct Harness {
  sim::EventLoop loop;
  std::vector<Packet> out;
  std::unique_ptr<Host> host;

  explicit Harness(HostConfig cfg = make_config()) {
    cfg.address = kServer;
    host = std::make_unique<Host>(loop, std::move(cfg));
    host->set_transmit([this](Packet p) { out.push_back(std::move(p)); });
  }

  static HostConfig make_config() {
    HostConfig cfg;
    cfg.listeners[9] = ListenerConfig{AppKind::kDiscard, 0};
    cfg.listeners[7] = ListenerConfig{AppKind::kEcho, 0};
    cfg.listeners[80] = ListenerConfig{AppKind::kObjectServer, 1000};
    return cfg;
  }

  Packet make(std::uint16_t sport, std::uint16_t dport, std::uint8_t flags, std::uint32_t seq,
              std::uint32_t ack, std::vector<std::uint8_t> payload = {}) {
    Packet pkt;
    pkt.ip.src = kClient;
    pkt.ip.dst = kServer;
    pkt.tcp.src_port = sport;
    pkt.tcp.dst_port = dport;
    pkt.tcp.flags = flags;
    pkt.tcp.seq = seq;
    pkt.tcp.ack = ack;
    pkt.tcp.window = 65535;
    pkt.tcp.mss = flags & kSyn ? std::optional<std::uint16_t>{100} : std::nullopt;
    pkt.payload = std::move(payload);
    pkt.uid = next_packet_uid();
    return pkt;
  }

  /// Client-side mini handshake returning the server's ISS.
  std::uint32_t establish(std::uint16_t sport, std::uint16_t dport) {
    host->receive(make(sport, dport, kSyn, 1000, 0));
    EXPECT_FALSE(out.empty());
    const std::uint32_t server_iss = out.back().tcp.seq;
    host->receive(make(sport, dport, kAck, 1001, server_iss + 1));
    out.clear();
    return server_iss;
  }
};

TEST(Host, AcceptsOnListeningPort) {
  Harness h;
  h.host->receive(h.make(40000, 9, kSyn, 1000, 0));
  ASSERT_EQ(h.out.size(), 1u);
  EXPECT_EQ(h.out[0].tcp.flags & (kSyn | kAck), kSyn | kAck);
  EXPECT_EQ(h.out[0].ip.src, kServer);
  EXPECT_EQ(h.out[0].ip.dst, kClient);
  EXPECT_EQ(h.host->active_connections(), 1u);
  EXPECT_EQ(h.host->counters().connections_accepted, 1u);
}

TEST(Host, RstForClosedPortSynForm) {
  Harness h;
  h.host->receive(h.make(40000, 12345, kSyn, 777, 0));
  ASSERT_EQ(h.out.size(), 1u);
  EXPECT_TRUE(h.out[0].tcp.is_rst());
  EXPECT_TRUE(h.out[0].tcp.is_ack());
  EXPECT_EQ(h.out[0].tcp.ack, 778u) << "RST acks seq + seq_len (SYN consumes one)";
  EXPECT_EQ(h.host->counters().rst_closed_port, 1u);
}

TEST(Host, RstForClosedPortAckForm) {
  Harness h;
  h.host->receive(h.make(40000, 12345, kAck, 500, 9999));
  ASSERT_EQ(h.out.size(), 1u);
  EXPECT_TRUE(h.out[0].tcp.is_rst());
  EXPECT_EQ(h.out[0].tcp.seq, 9999u) << "RST seq mirrors the offending ACK";
}

TEST(Host, NoRstForRst) {
  Harness h;
  h.host->receive(h.make(40000, 12345, kRst, 1, 0));
  EXPECT_TRUE(h.out.empty()) << "never RST a RST";
}

TEST(Host, RstSuppressedWhenDisabled) {
  auto cfg = Harness::make_config();
  cfg.rst_closed_ports = false;
  Harness h{std::move(cfg)};
  h.host->receive(h.make(40000, 12345, kSyn, 1, 0));
  EXPECT_TRUE(h.out.empty());
}

TEST(Host, IgnoresPacketsForOtherAddresses) {
  Harness h;
  auto pkt = h.make(40000, 9, kSyn, 1, 0);
  pkt.ip.dst = Ipv4Address::from_octets(10, 0, 0, 99);
  h.host->receive(pkt);
  EXPECT_TRUE(h.out.empty());
  EXPECT_EQ(h.host->counters().packets_in, 0u);
}

TEST(Host, DemuxesConcurrentConnections) {
  Harness h;
  h.establish(40000, 9);
  h.establish(40001, 9);
  EXPECT_EQ(h.host->active_connections(), 2u);
  const ConnKey key1{9, kClient, 40000};
  const ConnKey key2{9, kClient, 40001};
  ASSERT_NE(h.host->find_endpoint(key1), nullptr);
  ASSERT_NE(h.host->find_endpoint(key2), nullptr);
  EXPECT_NE(h.host->find_endpoint(key1), h.host->find_endpoint(key2));
}

TEST(Host, EchoServerEchoes) {
  Harness h;
  const auto iss = h.establish(40000, 7);
  h.host->receive(h.make(40000, 7, kAck | kPsh, 1001, iss + 1, {'h', 'i'}));
  ASSERT_FALSE(h.out.empty());
  bool echoed = false;
  for (const auto& p : h.out) {
    if (p.payload == std::vector<std::uint8_t>{'h', 'i'}) echoed = true;
  }
  EXPECT_TRUE(echoed);
}

TEST(Host, ObjectServerServesPatternAndCloses) {
  Harness h;
  const auto iss = h.establish(40000, 80);
  h.host->receive(h.make(40000, 80, kAck | kPsh, 1001, iss + 1, {'G', 'E', 'T'}));
  // Collect the served object (client MSS 100 -> 10 segments) + FIN.
  std::vector<std::uint8_t> received;
  bool fin = false;
  // ACK each data segment so the 64 KiB default window never binds.
  std::size_t processed = 0;
  for (int rounds = 0; rounds < 50 && !fin; ++rounds) {
    const auto batch = h.out;
    h.out.clear();
    for (std::size_t i = processed; i < batch.size(); ++i) (void)0;
    processed = 0;
    for (const auto& p : batch) {
      if (!p.payload.empty()) {
        received.insert(received.end(), p.payload.begin(), p.payload.end());
        h.host->receive(h.make(40000, 80, kAck, 1004, p.tcp.seq + static_cast<std::uint32_t>(p.payload.size())));
      }
      if (p.tcp.is_fin()) fin = true;
    }
    h.loop.run_until(h.loop.now() + Duration::millis(50));
  }
  ASSERT_EQ(received.size(), 1000u);
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], object_byte(i)) << "object byte " << i;
  }
  EXPECT_TRUE(fin) << "object server closes after serving";
}

TEST(Host, ObjectServerServesOnlyOnce) {
  Harness h;
  const auto iss = h.establish(40000, 80);
  h.host->receive(h.make(40000, 80, kAck | kPsh, 1001, iss + 1, {'G'}));
  const auto first_out = h.out.size();
  EXPECT_GT(first_out, 0u);
  h.host->receive(h.make(40000, 80, kAck | kPsh, 1002, iss + 1, {'G'}));
  // Second request byte yields at most an ACK, not another object.
  std::size_t data_packets = 0;
  for (const auto& p : h.out) {
    if (!p.payload.empty()) ++data_packets;
  }
  EXPECT_LE(data_packets, (1000u + 99) / 100) << "only one object's worth of segments";
}

TEST(Host, GlobalIpidStampsMonotonically) {
  Harness h;
  h.establish(40000, 9);
  h.host->receive(h.make(40000, 9, kAck | kPsh, 2001, 1, {1}));  // OOO -> dup ack
  h.host->receive(h.make(40000, 9, kAck | kPsh, 2001, 1, {1}));
  ASSERT_GE(h.out.size(), 2u);
  for (std::size_t i = 1; i < h.out.size(); ++i) {
    EXPECT_TRUE(ipid_lt(h.out[i - 1].ip.identification, h.out[i].ip.identification));
  }
}

TEST(Host, ConstantZeroIpidSetsDf) {
  auto cfg = Harness::make_config();
  cfg.ipid_policy = IpidPolicy::kConstantZero;
  Harness h{std::move(cfg)};
  h.host->receive(h.make(40000, 9, kSyn, 1000, 0));
  ASSERT_EQ(h.out.size(), 1u);
  EXPECT_EQ(h.out[0].ip.identification, 0);
  EXPECT_TRUE(h.out[0].ip.dont_fragment);
}

TEST(Host, ClosedEndpointIsReaped) {
  Harness h;
  const auto iss = h.establish(40000, 9);
  h.host->receive(h.make(40000, 9, kRst, 1001, iss + 1));
  EXPECT_EQ(h.host->active_connections(), 1u) << "reap is deferred one event";
  h.loop.run();
  EXPECT_EQ(h.host->active_connections(), 0u);
}

TEST(Host, DiscardClosesWhenClientCloses) {
  Harness h;
  const auto iss = h.establish(40000, 9);
  h.host->receive(h.make(40000, 9, kFin | kAck, 1001, iss + 1));
  // Host ACKs the FIN and sends its own FIN.
  bool sent_fin = false;
  for (const auto& p : h.out) sent_fin |= p.tcp.is_fin();
  EXPECT_TRUE(sent_fin);
}

TEST(Host, ObjectGeneratorIsDeterministic) {
  const auto obj = make_object(16);
  for (std::size_t i = 0; i < obj.size(); ++i) EXPECT_EQ(obj[i], object_byte(i));
}

}  // namespace
}  // namespace reorder::tcpip
