// Tests for the core::ground_truth validation module (promoted out of the
// untested bench-only header): reported verdicts checked against synthetic
// trace captures, and against a real testbed run where the configured
// reordering process is the known truth.
#include <gtest/gtest.h>

#include "core/ground_truth.hpp"
#include "core/test_registry.hpp"
#include "core/testbed.hpp"

namespace reorder::core {
namespace {

trace::TraceBuffer trace_of(std::initializer_list<std::uint64_t> uids_in_arrival_order) {
  trace::TraceBuffer buffer;
  std::int64_t t = 0;
  for (const std::uint64_t uid : uids_in_arrival_order) {
    tcpip::Packet pkt;
    pkt.uid = uid;
    buffer.record(util::TimePoint::from_ns(++t), pkt);
  }
  return buffer;
}

SampleResult sample(Ordering fwd, Ordering rev, std::uint64_t f1, std::uint64_t f2,
                    std::uint64_t r1 = 0, std::uint64_t r2 = 0) {
  SampleResult s;
  s.forward = fwd;
  s.reverse = rev;
  s.fwd_uid_first = f1;
  s.fwd_uid_second = f2;
  s.rev_uid_first = r1;
  s.rev_uid_second = r2;
  return s;
}

TEST(GroundTruth, AgreementCountsWithoutMismatches) {
  // Ingress saw 1,2 in order and 4 before 3 (a true exchange); egress saw
  // the reply pairs in order.
  const auto ingress = trace_of({1, 2, 4, 3});
  const auto egress = trace_of({10, 11, 12, 13});

  TestRunResult result;
  result.samples.push_back(sample(Ordering::kInOrder, Ordering::kInOrder, 1, 2, 10, 11));
  result.samples.push_back(sample(Ordering::kReordered, Ordering::kInOrder, 3, 4, 12, 13));

  const TruthComparison c = compare_to_truth(result, ingress, egress);
  EXPECT_EQ(c.reported_fwd, 1);
  EXPECT_EQ(c.actual_fwd, 1);
  EXPECT_EQ(c.fwd_mismatches, 0);
  EXPECT_EQ(c.reported_rev, 0);
  EXPECT_EQ(c.actual_rev, 0);
  EXPECT_EQ(c.rev_mismatches, 0);
  EXPECT_EQ(c.verified_samples, 4);  // 2 forward + 2 reverse verdicts
  ASSERT_TRUE(c.confirmed_fraction().has_value());
  EXPECT_DOUBLE_EQ(*c.confirmed_fraction(), 1.0);
}

TEST(GroundTruth, DisagreementsCountAsMismatches) {
  const auto ingress = trace_of({2, 1});  // truly exchanged
  const auto egress = trace_of({10, 11});

  TestRunResult result;
  // The test wrongly said in-order forward, wrongly said reordered reverse.
  result.samples.push_back(sample(Ordering::kInOrder, Ordering::kReordered, 1, 2, 10, 11));

  const TruthComparison c = compare_to_truth(result, ingress, egress);
  EXPECT_EQ(c.reported_fwd, 0);
  EXPECT_EQ(c.actual_fwd, 1);
  EXPECT_EQ(c.fwd_mismatches, 1);
  EXPECT_EQ(c.reported_rev, 1);
  EXPECT_EQ(c.actual_rev, 0);
  EXPECT_EQ(c.rev_mismatches, 1);
  EXPECT_EQ(c.mismatches(), 2);
  EXPECT_EQ(c.verified_samples, 2);
  EXPECT_DOUBLE_EQ(*c.confirmed_fraction(), 0.0);
}

TEST(GroundTruth, SamplesMissingFromTracesAreSkipped) {
  const auto ingress = trace_of({1});  // second packet never reached the tap
  const auto egress = trace_of({});

  TestRunResult result;
  result.samples.push_back(sample(Ordering::kInOrder, Ordering::kInOrder, 1, 2, 10, 11));

  const TruthComparison c = compare_to_truth(result, ingress, egress);
  EXPECT_EQ(c.verified_samples, 0);
  EXPECT_EQ(c.mismatches(), 0);
  EXPECT_FALSE(c.confirmed_fraction().has_value());
}

TEST(GroundTruth, AmbiguousLostAndUidlessVerdictsAreNotVerified) {
  const auto ingress = trace_of({1, 2});
  const auto egress = trace_of({10, 11});

  TestRunResult result;
  // Ambiguous forward and a reverse verdict with no reply uids (e.g. the
  // SYN test's unanswered second probe): neither is verifiable.
  result.samples.push_back(sample(Ordering::kAmbiguous, Ordering::kInOrder, 1, 2, 0, 0));
  result.samples.push_back(sample(Ordering::kLost, Ordering::kAmbiguous, 1, 2, 10, 11));

  const TruthComparison c = compare_to_truth(result, ingress, egress);
  EXPECT_EQ(c.verified_samples, 0);
}

TEST(GroundTruth, TestbedRunMatchesConfiguredProcess) {
  // End to end: on a clean path every reported verdict must be confirmed
  // and zero reorderings observed; with a forward swap shaper the
  // reported events must equal what the ingress tap recorded.
  for (const double swap_p : {0.0, 0.3}) {
    TestbedConfig cfg;
    cfg.seed = 4242;
    cfg.forward.swap_probability = swap_p;
    Testbed bed{cfg};
    auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
    TestRunConfig run;
    run.samples = 60;
    const auto result = bed.run_sync(*test, run);
    ASSERT_TRUE(result.admissible);

    const TruthComparison c =
        compare_to_truth(result, bed.remote_ingress_trace(), bed.remote_egress_trace());
    EXPECT_GT(c.verified_samples, 0);
    EXPECT_EQ(c.fwd_mismatches, 0) << "swap_p=" << swap_p;
    EXPECT_EQ(c.rev_mismatches, 0) << "swap_p=" << swap_p;
    EXPECT_EQ(c.reported_fwd, c.actual_fwd);
    EXPECT_EQ(c.reported_fwd, result.forward.reordered);
    if (swap_p == 0.0) {
      EXPECT_EQ(c.actual_fwd, 0);
    }
    if (swap_p > 0.0) {
      EXPECT_GT(c.actual_fwd, 0);
    }
  }
}

}  // namespace
}  // namespace reorder::core
