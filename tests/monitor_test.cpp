// The always-on monitor's contracts, enforced:
//
//   * golden RFC 4737 / RFC 5236 sequences through the bounded detectors
//     at a generous budget reproduce the textbook numbers;
//   * with the budget above what a flow needs, every detector is EXACTLY
//     the unbounded metric (same counts, extents, densities) on random
//     locally-shuffled traffic;
//   * the saturating rate counter decays instead of wedging at a tiny
//     budget and still lands on the true rate;
//   * FlowTable eviction is a pure function of (config, seed, key order);
//   * merging per-partition MonitorEngines is bit-identical (same
//     to_json().dump()) to one engine having seen every flow;
//   * the differential harness's FP/FN bounds: clean traffic never
//     false-positives at ANY budget, the one-sided detectors never
//     false-positive anywhere, evade-window defeats exactly the window
//     sketch at small K, flood-flows defeats exactly the small table;
//   * monitor snapshots ride the sharded survey runtime: per-shard
//     engines merged over {1, 2, 8} shards emit byte-identical JSONL.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sharded_survey.hpp"
#include "metrics/sequence_metrics.hpp"
#include "monitor/detectors.hpp"
#include "monitor/differential.hpp"
#include "monitor/engine.hpp"
#include "util/random.hpp"

namespace reorder::monitor {
namespace {

constexpr std::size_t kBigBudget = 1u << 16;  // exceeds every test flow's needs

std::vector<std::uint32_t> locally_shuffled(std::size_t n, util::Rng& rng) {
  std::vector<std::uint32_t> arr(n);
  for (std::size_t i = 0; i < n; ++i) arr[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (rng.bernoulli(0.3)) {
      const std::size_t j = std::min(n - 1, i + 1 + rng.below(6));
      std::swap(arr[i], arr[j]);
    }
  }
  return arr;
}

// ------------------------------------------------------------- detectors

TEST(WindowSketchDetector, GoldenRfc4737Extent) {
  // RFC 4737's running example: send 2 arrives after 3 and 4 — one
  // reordered packet, extent 2 (the earliest larger arrival, 3, is two
  // arrivals back).
  WindowSketchDetector d{kBigBudget};
  for (const std::uint32_t s : {0u, 1u, 3u, 4u}) EXPECT_FALSE(d.observe_arrival(s));
  EXPECT_TRUE(d.observe_arrival(2));
  EXPECT_FALSE(d.observe_arrival(5));
  d.end_flow();
  EXPECT_EQ(d.packets(), 6u);
  EXPECT_EQ(d.flagged(), 1u);
  EXPECT_EQ(d.max_extent(), 2u);
  EXPECT_DOUBLE_EQ(d.mean_extent(), 2.0);
  EXPECT_EQ(d.flows(), 1u);
}

TEST(BoundedNReorderingDetector, GoldenRfc5236Density) {
  // {2,3,0,1,4}: packet 0 is 2-reordered (2 and 3 sent later, arrived
  // earlier, consecutively before it); packet 1 is NOT n-reordered — the
  // arrival immediately before it (0) was sent earlier.
  BoundedNReorderingDetector d{kBigBudget};
  EXPECT_FALSE(d.observe_arrival(2));
  EXPECT_FALSE(d.observe_arrival(3));
  EXPECT_TRUE(d.observe_arrival(0));
  EXPECT_FALSE(d.observe_arrival(1));
  EXPECT_FALSE(d.observe_arrival(4));
  d.end_flow();
  EXPECT_EQ(d.flagged(), 1u);
  EXPECT_EQ(d.count_for(2), 1u);
  EXPECT_EQ(d.count_for(1), 0u);
  EXPECT_EQ(d.saturated(), 0u);
  EXPECT_DOUBLE_EQ(d.mean_n(), 2.0);
}

TEST(Detectors, LargeBudgetEqualsExactMetrics) {
  util::Rng rng{2026};
  WindowSketchDetector window{kBigBudget};
  RateEstimateDetector rate{kBigBudget};
  BoundedNReorderingDetector bounded{kBigBudget};
  metrics::SequenceExtentMetric extent;
  metrics::NReorderingMetric nreo;
  for (int seq = 0; seq < 5; ++seq) {
    for (const std::uint32_t s : locally_shuffled(400, rng)) {
      window.observe_arrival(s);
      rate.observe_arrival(s);
      bounded.observe_arrival(s);
      extent.observe_arrival(s);
      nreo.observe_arrival(s);
    }
    window.end_flow();
    rate.end_flow();
    bounded.end_flow();
    extent.end_sequence();
    nreo.end_sequence();
  }
  ASSERT_GT(extent.reordered(), 0u);
  // Window sketch == SequenceExtentMetric: same flags, same extents.
  EXPECT_EQ(window.flagged(), extent.reordered());
  EXPECT_EQ(window.packets(), extent.packets());
  EXPECT_EQ(window.max_extent(), extent.max_extent());
  EXPECT_DOUBLE_EQ(window.mean_extent(), extent.mean_extent());
  // Saturating counters never saturated: exact reordered count and rate.
  EXPECT_EQ(rate.reordered(), extent.reordered());
  EXPECT_EQ(rate.usable(), extent.packets());
  EXPECT_EQ(rate.decays(), 0u);
  // Bounded n == NReorderingMetric: full density, no saturation.
  EXPECT_EQ(bounded.saturated(), 0u);
  EXPECT_DOUBLE_EQ(bounded.reordered_fraction(), nreo.reordered_fraction());
  for (std::uint64_t n = 1; n <= 12; ++n) EXPECT_EQ(bounded.count_for(n), nreo.count_for(n));
}

TEST(RateEstimateDetector, TinyBudgetDecaysButTracksRate) {
  // 6 bytes -> 1-byte saturating counters (cap 255). 600 alternating
  // swaps must trip the halving decay yet keep the rate pinned at 1/2.
  RateEstimateDetector d{6};
  for (std::uint32_t i = 0; i < 600; i += 2) {
    d.observe_arrival(i + 1);
    d.observe_arrival(i);
  }
  d.end_flow();
  EXPECT_GE(d.decays(), 1u);
  EXPECT_NEAR(d.rate(), 0.5, 0.02);
}

TEST(Detectors, MergeRejectsMismatchedBudgets) {
  WindowSketchDetector a{256};
  WindowSketchDetector b{1024};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  RateEstimateDetector r{256};
  EXPECT_THROW(a.merge(r), std::invalid_argument);
  WindowSketchDetector open{256};
  open.observe_arrival(3);
  EXPECT_THROW(a.merge(open), std::invalid_argument);
}

// ------------------------------------------------------------- flow table

TEST(FlowTable, EvictionIsDeterministic) {
  const auto run = [] {
    FlowTableConfig cfg;
    cfg.slots = 16;
    cfg.ways = 4;
    cfg.seed = 99;
    FlowTable table{cfg};
    util::Rng rng{7};
    std::vector<std::pair<std::uint64_t, std::size_t>> evictions;
    for (int i = 0; i < 4000; ++i) {
      const std::uint64_t key = rng.below(200);
      const FlowTable::Ref ref = table.lookup(key);
      if (ref.evicted) evictions.emplace_back(ref.evicted_key, ref.slot);
    }
    return std::make_pair(evictions, table.counters());
  };
  const auto [ev1, c1] = run();
  const auto [ev2, c2] = run();
  EXPECT_FALSE(ev1.empty());
  EXPECT_EQ(ev1, ev2);
  EXPECT_EQ(c1.lookups, 4000u);
  EXPECT_EQ(c1.hits + c1.insertions, c1.lookups);
  EXPECT_EQ(c1.evictions, c2.evictions);
}

TEST(FlowTable, FindDoesNotTouchLru) {
  FlowTableConfig cfg;
  cfg.slots = 4;
  cfg.ways = 4;
  FlowTable table{cfg};
  for (std::uint64_t k = 0; k < 4; ++k) table.lookup(k);
  // find() must not refresh key 0; the next conflicting insert evicts it.
  EXPECT_GE(table.find(0), 0);
  const FlowTable::Ref ref = table.lookup(100);
  ASSERT_TRUE(ref.evicted);
  EXPECT_EQ(ref.evicted_key, 0u);
  EXPECT_EQ(table.find(0), -1);
}

// ---------------------------------------------------------------- engine

TEST(MonitorEngine, IngestSequenceEqualsManualIngest) {
  MonitorConfig cfg;
  cfg.table.slots = 64;
  MonitorEngine a{cfg};
  MonitorEngine b{cfg};
  const std::vector<std::uint32_t> seq{0, 2, 1, 3, 4};
  a.ingest_sequence(77, seq);
  for (const std::uint32_t s : seq) b.ingest(77, s);
  b.end_flow(77);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(MonitorEngine, MergeOfFlowPartitionsEqualsBatch) {
  const std::vector<MonitorArrival> arrivals = scenario_arrivals("swap-shaper", 11);
  MonitorConfig cfg;
  cfg.table.slots = 4096;  // provisioned: no evictions, the merge contract's precondition
  MonitorEngine batch{cfg};
  MonitorEngine left{cfg};
  MonitorEngine right{cfg};
  for (const MonitorArrival& a : arrivals) {
    batch.ingest(a.flow, a.send_index);
    (a.flow % 2 == 0 ? left : right).ingest(a.flow, a.send_index);
  }
  EXPECT_EQ(batch.table().counters().evictions, 0u);
  left.merge(right);
  EXPECT_EQ(left.to_json().dump(), batch.to_json().dump());
  EXPECT_EQ(left.arrivals(), arrivals.size());
}

TEST(MonitorSink, GatesInadmissibleMeasurements) {
  MonitorEngine engine{};
  MonitorSink sink{engine};

  core::TestRunResult bad;
  bad.test_name = "syn";
  bad.admissible = false;
  core::SampleResult sample;
  sample.forward = core::Ordering::kReordered;
  bad.samples.push_back(sample);
  core::publish_result(sink, "host-a", "syn", util::TimePoint{}, bad);
  EXPECT_EQ(engine.measurements(), 1u);
  EXPECT_EQ(engine.admissible(), 0u);
  EXPECT_EQ(engine.arrivals(), 0u);

  core::TestRunResult good;
  good.test_name = "syn";
  good.admissible = true;
  good.samples.push_back(sample);          // reordered -> pair {1, 0}
  sample.forward = core::Ordering::kInOrder;
  good.samples.push_back(sample);          // in order  -> pair {0, 1}
  sample.forward = core::Ordering::kLost;
  good.samples.push_back(sample);          // unusable  -> nothing
  core::publish_result(sink, "host-a", "syn", util::TimePoint{}, good);
  EXPECT_EQ(engine.measurements(), 2u);
  EXPECT_EQ(engine.admissible(), 1u);
  EXPECT_EQ(engine.arrivals(), 4u);
  const DetectorSuite snap = engine.snapshot();
  const auto* window = snap.get<WindowSketchDetector>(WindowSketchDetector::kName);
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->flagged(), 1u);
  EXPECT_EQ(window->flows(), 2u);
}

// ---------------------------------------------------- differential bounds

TEST(Differential, AccuracyBoundsAcrossTheSweep) {
  DifferentialConfig config;
  config.scenarios = {"clean-path", "lossy", "swap-shaper", "evade-window", "flood-flows"};
  config.traffic.flows = 8;
  const std::vector<AccuracyRecord> records = run_differential(config);
  ASSERT_EQ(records.size(), 5u * 3u * 3u * 2u);

  const auto rec = [&records](const std::string& scenario, const std::string& detector,
                              std::size_t budget, std::size_t slots) -> const AccuracyRecord& {
    for (const AccuracyRecord& r : records) {
      if (r.scenario == scenario && r.detector == detector && r.budget_bytes == budget &&
          r.table_slots == slots) {
        return r;
      }
    }
    throw std::logic_error{"record not found"};
  };

  for (const AccuracyRecord& r : records) {
    // One-sided by construction: a bounded detector can forget a
    // reordering, never invent one.
    EXPECT_EQ(r.false_positives, 0u) << r.scenario << " " << r.detector;
    // Clean and loss-only traffic must be perfectly reported everywhere —
    // at EVERY budget and table size (the CI smoke gate's invariant).
    if (r.scenario == "clean-path" || r.scenario == "lossy") {
      EXPECT_EQ(r.false_negatives, 0u) << r.detector;
      EXPECT_EQ(r.flagged, 0u) << r.detector;
      EXPECT_DOUBLE_EQ(r.abs_error, 0.0) << r.detector;
    }
    // Budget above the flow's needs + table above the flow count: exact.
    if (r.scenario != "flood-flows" && r.budget_bytes == 16384 && r.table_slots == 1024) {
      EXPECT_EQ(r.false_negatives, 0u) << r.scenario << " " << r.detector;
      EXPECT_DOUBLE_EQ(r.abs_error, 0.0) << r.scenario << " " << r.detector;
    }
  }

  // evade-window defeats exactly the window sketch, and only below K =
  // displacement: FN at 256 B (K=64) and 1 KiB (K=256), exact at 16 KiB.
  EXPECT_GT(rec("evade-window", "window_sketch", 256, 1024).false_negatives, 0u);
  EXPECT_GT(rec("evade-window", "window_sketch", 1024, 1024).false_negatives, 0u);
  EXPECT_GT(rec("evade-window", "window_sketch", 256, 1024).false_negatives,
            rec("evade-window", "window_sketch", 1024, 1024).false_negatives);
  EXPECT_EQ(rec("evade-window", "window_sketch", 16384, 1024).false_negatives, 0u);
  EXPECT_EQ(rec("evade-window", "approx_rate", 256, 1024).false_negatives, 0u);
  EXPECT_EQ(rec("evade-window", "bounded_n", 256, 1024).false_negatives, 0u);

  // flood-flows defeats exactly the small table: 2048 churned flows
  // against 64 slots force evictions and misses at every budget; a table
  // that covers the active set stays exact.
  for (const std::size_t budget : config.budgets) {
    const AccuracyRecord& small = rec("flood-flows", "approx_rate", budget, 64);
    EXPECT_GT(small.evictions, 0u);
    EXPECT_GT(small.false_negatives, 0u);
    const AccuracyRecord& big = rec("flood-flows", "approx_rate", budget, 1024);
    EXPECT_EQ(big.false_negatives, 0u);
    EXPECT_LT(big.evictions, small.evictions);
  }
}

// ------------------------------------------------------- shard invariance

core::SurveyTestbedConfig monitor_fleet(std::uint64_t seed = 21) {
  core::SurveyTestbedConfig cfg;
  cfg.seed = seed;
  for (int i = 0; i < 6; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = (i % 3) * 0.12;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  return cfg;
}

std::string monitor_jsonl_for_shards(std::uint64_t shards) {
  core::ShardedSurveyConfig cfg;
  cfg.fleet = monitor_fleet();
  cfg.shards = shards;
  cfg.threads = 2;
  core::ShardedSurveyEngine survey{cfg};
  core::TestRunConfig run;
  run.samples = 6;

  MonitorConfig mc;
  mc.table.slots = 1024;  // >= the fleet's (target, test) flow count: no evictions
  std::vector<MonitorEngine> engines;
  for (std::uint64_t shard = 0; shard < shards; ++shard) {
    const core::ShardRunResult result =
        survey.run_shard(shard, run, 2, util::Duration::millis(500));
    MonitorEngine engine{mc};
    MonitorSink sink{engine};
    std::size_t index = 0;
    for (const core::Measurement& m : result.log) {
      core::publish_result(sink, m.target, m.test, m.at, m.result, index++);
    }
    engines.push_back(std::move(engine));
  }
  for (std::size_t i = 1; i < engines.size(); ++i) engines.front().merge(engines[i]);
  std::ostringstream text;
  report::JsonlWriter writer{text};
  engines.front().emit_jsonl(writer);
  return text.str();
}

TEST(MonitorEngine, ShardCountCannotLeakIntoSnapshots) {
  const std::string one = monitor_jsonl_for_shards(1);
  ASSERT_NE(one.find("\"type\":\"monitor\""), std::string::npos);
  EXPECT_EQ(monitor_jsonl_for_shards(2), one);
  EXPECT_EQ(monitor_jsonl_for_shards(8), one);
}

}  // namespace
}  // namespace reorder::monitor
