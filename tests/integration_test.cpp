// Cross-module integration tests: the §IV-A validation property (every
// unambiguous verdict matches trace ground truth), whole-experiment
// determinism, and cross-test consistency on a shared path.
#include <gtest/gtest.h>

#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "trace/analyzer.hpp"

namespace reorder::core {
namespace {

using util::Duration;

// ---------- the validation property, parameterized over swap rates ----------

struct ValidationCase {
  const char* test;
  double fwd_p;
  double rev_p;
};

class VerdictsMatchTruth : public ::testing::TestWithParam<ValidationCase> {};

std::unique_ptr<ReorderTest> make_test(const std::string& name, Testbed& bed) {
  return make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{name});
}

TEST_P(VerdictsMatchTruth, NoDiscrepancies) {
  const auto& param = GetParam();
  TestbedConfig cfg;
  cfg.seed = 1000 + static_cast<std::uint64_t>(param.fwd_p * 100) * 7 +
             static_cast<std::uint64_t>(param.rev_p * 100);
  cfg.forward.swap_probability = param.fwd_p;
  cfg.reverse.swap_probability = param.rev_p;
  Testbed bed{cfg};
  auto test = make_test(param.test, bed);
  TestRunConfig run;
  run.samples = 40;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;

  int fwd_discrepancies = 0;
  int rev_discrepancies = 0;
  int verified = 0;
  for (const auto& s : result.samples) {
    if (s.forward == Ordering::kInOrder || s.forward == Ordering::kReordered) {
      const auto truth =
          trace::pair_ground_truth(bed.remote_ingress_trace(), s.fwd_uid_first, s.fwd_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        if ((s.forward == Ordering::kReordered) != (truth == trace::PairGroundTruth::kReordered)) {
          ++fwd_discrepancies;
        }
        ++verified;
      }
    }
    if ((s.reverse == Ordering::kInOrder || s.reverse == Ordering::kReordered) &&
        s.rev_uid_first != 0 && s.rev_uid_second != 0) {
      const auto truth =
          trace::pair_ground_truth(bed.remote_egress_trace(), s.rev_uid_first, s.rev_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        if ((s.reverse == Ordering::kReordered) != (truth == trace::PairGroundTruth::kReordered)) {
          ++rev_discrepancies;
        }
        ++verified;
      }
    }
  }
  EXPECT_EQ(fwd_discrepancies, 0);
  EXPECT_EQ(rev_discrepancies, 0);
  EXPECT_GT(verified, 30);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRates, VerdictsMatchTruth,
    ::testing::Values(ValidationCase{"single", 0.01, 0.01}, ValidationCase{"single", 0.05, 0.15},
                      ValidationCase{"single", 0.40, 0.40}, ValidationCase{"dual", 0.01, 0.40},
                      ValidationCase{"dual", 0.10, 0.10}, ValidationCase{"dual", 0.40, 0.03},
                      ValidationCase{"syn", 0.03, 0.05}, ValidationCase{"syn", 0.15, 0.15},
                      ValidationCase{"syn", 0.40, 0.40}));

// ---------- determinism ----------

TEST(Determinism, SameSeedSameVerdicts) {
  auto run_once = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.forward.swap_probability = 0.2;
    cfg.reverse.swap_probability = 0.1;
    Testbed bed{cfg};
    auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"single-connection"});
    TestRunConfig run;
    run.samples = 25;
    return bed.run_sync(*test, run);
  };
  const auto a = run_once(777);
  const auto b = run_once(777);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].forward, b.samples[i].forward) << i;
    EXPECT_EQ(a.samples[i].reverse, b.samples[i].reverse) << i;
    EXPECT_EQ(a.samples[i].completed.ns(), b.samples[i].completed.ns()) << i;
  }
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto verdicts = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.forward.swap_probability = 0.5;
    Testbed bed{cfg};
    auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"syn"});
    TestRunConfig run;
    run.samples = 20;
    std::string out;
    for (const auto& s : bed.run_sync(*test, run).samples) {
      out += s.forward == Ordering::kReordered ? 'R' : 'I';
    }
    return out;
  };
  EXPECT_NE(verdicts(1), verdicts(2)) << "distinct seeds must explore distinct outcomes";
}

// ---------- cross-test consistency (mini §IV-B) ----------

TEST(Consistency, TestsAgreeOnTheSamePath) {
  // All techniques measure the same underlying swap process; with enough
  // samples their forward rates must be close to p and to each other.
  const double p = 0.2;
  double rates[3] = {};
  const char* names[3] = {"single", "dual", "syn"};
  for (int t = 0; t < 3; ++t) {
    TestbedConfig cfg;
    cfg.seed = 4000 + static_cast<std::uint64_t>(t);
    cfg.forward.swap_probability = p;
    Testbed bed{cfg};
    auto test = make_test(names[t], bed);
    TestRunConfig run;
    run.samples = 150;
    const auto result = bed.run_sync(*test, run);
    ASSERT_TRUE(result.admissible) << names[t] << ": " << result.note;
    ASSERT_GT(result.forward.usable(), 100) << names[t];
    rates[t] = result.forward.rate_or(0.0);
    EXPECT_NEAR(rates[t], p, 0.12) << names[t];
  }
  EXPECT_NEAR(rates[0], rates[1], 0.15);
  EXPECT_NEAR(rates[1], rates[2], 0.15);
}

// ---------- paper's asymmetry observation ----------

TEST(Consistency, AsymmetricPathsMeasureAsymmetrically) {
  TestbedConfig cfg;
  cfg.seed = 4100;
  cfg.forward.swap_probability = 0.3;
  cfg.reverse.swap_probability = 0.02;
  Testbed bed{cfg};
  auto test = make_registered_test(bed.probe(), bed.remote_addr(), TestSpec{"dual-connection"});
  TestRunConfig run;
  run.samples = 200;
  const auto result = bed.run_sync(*test, run);
  ASSERT_TRUE(result.admissible) << result.note;
  EXPECT_GT(result.forward.rate_or(0.0), result.reverse.rate_or(0.0) + 0.1)
      << "one-way measurement must expose the asymmetry (paper §II)";
}

}  // namespace
}  // namespace reorder::core
