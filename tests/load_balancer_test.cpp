// Tests for the transparent per-flow load balancer (paper Fig. 3).
#include <gtest/gtest.h>

#include <set>

#include "netsim/event_loop.hpp"
#include "netsim/load_balancer.hpp"

namespace reorder::sim {
namespace {

const tcpip::Ipv4Address kVip = tcpip::Ipv4Address::from_octets(10, 0, 0, 2);
const tcpip::Ipv4Address kClient = tcpip::Ipv4Address::from_octets(10, 0, 0, 1);

struct Harness {
  sim::EventLoop loop;
  std::vector<std::unique_ptr<tcpip::Host>> hosts;
  std::vector<int> received_by;

  explicit Harness(std::size_t backends) {
    for (std::size_t i = 0; i < backends; ++i) {
      tcpip::HostConfig cfg;
      cfg.address = kVip;
      cfg.seed = i + 1;
      cfg.listeners[9] = tcpip::ListenerConfig{tcpip::AppKind::kDiscard, 0};
      hosts.push_back(std::make_unique<tcpip::Host>(loop, std::move(cfg)));
    }
  }

  std::vector<tcpip::Host*> raw() {
    std::vector<tcpip::Host*> out;
    for (auto& h : hosts) out.push_back(h.get());
    return out;
  }
};

tcpip::Packet make_syn(std::uint16_t sport, std::uint16_t dport = 9) {
  tcpip::Packet pkt;
  pkt.ip.src = kClient;
  pkt.ip.dst = kVip;
  pkt.tcp.src_port = sport;
  pkt.tcp.dst_port = dport;
  pkt.tcp.flags = tcpip::kSyn;
  pkt.tcp.seq = 100;
  return pkt;
}

TEST(LoadBalancer, RequiresBackends) {
  EXPECT_THROW(LoadBalancer({}), std::invalid_argument);
}

TEST(LoadBalancer, SameFlowAlwaysSameBackend) {
  Harness h{4};
  LoadBalancer lb{h.raw()};
  const auto pkt = make_syn(40000);
  const auto idx = lb.backend_index(pkt);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(lb.backend_index(pkt), idx);
}

TEST(LoadBalancer, DifferentPortsSpreadAcrossBackends) {
  Harness h{4};
  LoadBalancer lb{h.raw()};
  std::set<std::size_t> used;
  for (std::uint16_t port = 40000; port < 40064; ++port) {
    used.insert(lb.backend_index(make_syn(port)));
  }
  EXPECT_GE(used.size(), 3u) << "64 flows must hit at least 3 of 4 backends";
}

TEST(LoadBalancer, ForwardsAndCounts) {
  Harness h{2};
  LoadBalancer lb{h.raw()};
  const auto pkt = make_syn(41000);
  const auto idx = lb.backend_index(pkt);
  lb.receive(pkt);
  lb.receive(pkt);
  EXPECT_EQ(lb.forwarded_to(idx), 2u);
  EXPECT_EQ(lb.forwarded_to(1 - idx), 0u);
  EXPECT_EQ(h.hosts[idx]->counters().packets_in, 2u);
  EXPECT_EQ(h.hosts[1 - idx]->counters().packets_in, 0u);
}

TEST(LoadBalancer, EntireConnectionSticksThroughHandshake) {
  Harness h{4};
  LoadBalancer lb{h.raw()};
  // SYN, then data/ack packets of the same flow: all reach the one backend.
  auto syn = make_syn(42000);
  const auto idx = lb.backend_index(syn);
  lb.receive(syn);
  tcpip::Packet ack = syn;
  ack.tcp.flags = tcpip::kAck;
  ack.tcp.seq = 101;
  lb.receive(ack);
  EXPECT_EQ(lb.forwarded_to(idx), 2u);
  EXPECT_EQ(h.hosts[idx]->active_connections(), 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != idx) {
      EXPECT_EQ(h.hosts[i]->active_connections(), 0u);
    }
  }
}

TEST(LoadBalancer, SaltChangesAssignment) {
  Harness h{8};
  LoadBalancer lb1{h.raw(), 1};
  LoadBalancer lb2{h.raw(), 2};
  int differing = 0;
  for (std::uint16_t port = 40000; port < 40032; ++port) {
    if (lb1.backend_index(make_syn(port)) != lb2.backend_index(make_syn(port))) ++differing;
  }
  EXPECT_GT(differing, 8) << "different salts must shuffle flow placement";
}

TEST(LoadBalancer, BackendCount) {
  Harness h{3};
  LoadBalancer lb{h.raw()};
  EXPECT_EQ(lb.backend_count(), 3u);
}

}  // namespace
}  // namespace reorder::sim
