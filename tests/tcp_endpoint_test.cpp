// State-machine tests for tcpip::TcpEndpoint, driven with crafted segments
// through a real event loop. These behaviours are exactly what the
// measurement techniques exploit, so the expectations here mirror the
// paper's §II-A review: immediate duplicate ACKs for out-of-order data,
// the delayed acknowledgment algorithm, and second-SYN handling.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_loop.hpp"
#include "tcpip/tcp_endpoint.hpp"

namespace reorder::tcpip {
namespace {

using util::Duration;

constexpr std::uint32_t kIss = 5000;   // server's initial sequence number
constexpr std::uint32_t kCiss = 9000;  // client's (crafted) ISS

struct Sent {
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;
};

/// Endpoint + captured output + helpers for crafting client segments.
struct Harness {
  sim::EventLoop loop;
  std::vector<Sent> sent;
  TcpBehavior behavior;
  std::unique_ptr<TcpEndpoint> ep;
  std::vector<std::uint8_t> delivered;

  explicit Harness(TcpBehavior b = {}) : behavior{b} {
    const ConnKey key{80, Ipv4Address::from_octets(10, 0, 0, 1), 40000};
    ep = std::make_unique<TcpEndpoint>(loop, behavior, key, kIss,
                                       [this](TcpHeader h, std::vector<std::uint8_t> p) {
                                         sent.push_back(Sent{h, std::move(p)});
                                       });
    ep->on_data = [this](std::span<const std::uint8_t> d) {
      delivered.insert(delivered.end(), d.begin(), d.end());
    };
  }

  Packet make(std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
              std::vector<std::uint8_t> payload = {}, std::uint16_t window = 65535) {
    Packet pkt;
    pkt.ip.src = Ipv4Address::from_octets(10, 0, 0, 1);
    pkt.ip.dst = Ipv4Address::from_octets(10, 0, 0, 2);
    pkt.tcp.src_port = 40000;
    pkt.tcp.dst_port = 80;
    pkt.tcp.flags = flags;
    pkt.tcp.seq = seq;
    pkt.tcp.ack = ack;
    pkt.tcp.window = window;
    pkt.payload = std::move(payload);
    return pkt;
  }

  /// SYN -> (SYN/ACK) -> ACK. Returns with the endpoint ESTABLISHED.
  void establish(std::uint16_t mss = 1460) {
    auto syn = make(kSyn, kCiss, 0);
    syn.tcp.mss = mss;
    ep->on_segment(syn);
    ASSERT_EQ(ep->state(), TcpState::kSynRcvd);
    ASSERT_EQ(sent.size(), 1u);
    ASSERT_EQ(sent[0].tcp.flags & (kSyn | kAck), kSyn | kAck);
    ep->on_segment(make(kAck, kCiss + 1, kIss + 1));
    ASSERT_EQ(ep->state(), TcpState::kEstablished);
    sent.clear();
  }

  /// Runs the loop until idle (all timers fired).
  void settle() { loop.run(); }
};

// ---------- handshake ----------

TEST(Endpoint, HandshakeFieldsAreCorrect) {
  Harness h;
  auto syn = h.make(kSyn, kCiss, 0);
  syn.tcp.mss = 536;
  h.ep->on_segment(syn);
  ASSERT_EQ(h.sent.size(), 1u);
  const auto& synack = h.sent[0].tcp;
  EXPECT_EQ(synack.seq, kIss);
  EXPECT_EQ(synack.ack, kCiss + 1);
  ASSERT_TRUE(synack.mss.has_value());
  EXPECT_EQ(*synack.mss, 1460);
  EXPECT_EQ(h.ep->rcv_nxt(), kCiss + 1);
}

TEST(Endpoint, ListenIgnoresNonSyn) {
  Harness h;
  h.ep->on_segment(h.make(kAck, kCiss, kIss));
  h.ep->on_segment(h.make(kRst, kCiss, 0));
  EXPECT_EQ(h.ep->state(), TcpState::kListen);
  EXPECT_TRUE(h.sent.empty());
}

TEST(Endpoint, SynAckRetransmitsUntilAcked) {
  Harness h;
  h.ep->on_segment(h.make(kSyn, kCiss, 0));
  EXPECT_EQ(h.sent.size(), 1u);
  h.loop.run_until(h.loop.now() + Duration::millis(600));
  EXPECT_GE(h.sent.size(), 2u) << "SYN/ACK must be retransmitted on RTO";
  EXPECT_TRUE(h.sent.back().tcp.is_syn());
}

TEST(Endpoint, HandshakeCompletionFiresCallback) {
  Harness h;
  bool established = false;
  h.ep->on_established = [&] { established = true; };
  h.ep->on_segment(h.make(kSyn, kCiss, 0));
  h.ep->on_segment(h.make(kAck, kCiss + 1, kIss + 1));
  EXPECT_TRUE(established);
}

TEST(Endpoint, WrongAckDoesNotEstablish) {
  Harness h;
  h.ep->on_segment(h.make(kSyn, kCiss, 0));
  h.ep->on_segment(h.make(kAck, kCiss + 1, kIss + 999));
  EXPECT_EQ(h.ep->state(), TcpState::kSynRcvd);
}

// ---------- second SYN behaviours (the SYN test's dependency) ----------

struct SecondSynCase {
  SecondSynBehavior behavior;
  bool second_syn_in_window;
  int expect_rsts;
  int expect_acks;
};

class EndpointSecondSyn : public ::testing::TestWithParam<SecondSynCase> {};

TEST_P(EndpointSecondSyn, RespondsPerPolicy) {
  const auto& param = GetParam();
  TcpBehavior b;
  b.second_syn = param.behavior;
  Harness h{b};
  h.ep->on_segment(h.make(kSyn, kCiss, 0));
  h.sent.clear();

  // In-window: a later ISS (the usual in-order arrival of the offset SYN).
  // Out-of-window: an ISS below rcv_nxt (the reordered arrival).
  const std::uint32_t seq = param.second_syn_in_window ? kCiss + 64 : kCiss - 64;
  h.ep->on_segment(h.make(kSyn, seq, 0));

  int rsts = 0;
  int acks = 0;
  for (const auto& s : h.sent) {
    if (s.tcp.is_rst()) {
      ++rsts;
    } else if (s.tcp.is_ack() && !s.tcp.is_syn()) {
      ++acks;
    }
  }
  EXPECT_EQ(rsts, param.expect_rsts);
  EXPECT_EQ(acks, param.expect_acks);
  EXPECT_EQ(h.ep->counters().second_syns_seen, 1u);
  // The original connection must survive to complete its handshake.
  h.ep->on_segment(h.make(kAck, kCiss + 1, kIss + 1));
  EXPECT_EQ(h.ep->state(), TcpState::kEstablished);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EndpointSecondSyn,
    ::testing::Values(
        SecondSynCase{SecondSynBehavior::kSpecCompliant, true, 1, 0},
        SecondSynCase{SecondSynBehavior::kSpecCompliant, false, 0, 1},
        SecondSynCase{SecondSynBehavior::kAlwaysRst, true, 1, 0},
        SecondSynCase{SecondSynBehavior::kAlwaysRst, false, 1, 0},
        SecondSynCase{SecondSynBehavior::kDualRst, true, 2, 0},
        SecondSynCase{SecondSynBehavior::kIgnore, true, 0, 0}));

// ---------- in-order data & delayed ACKs ----------

TEST(Endpoint, SingleInOrderSegmentIsDelayed) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {1, 2, 3}));
  EXPECT_TRUE(h.sent.empty()) << "first in-order segment must not be ACKed immediately";
  h.loop.run_until(h.loop.now() + Duration::millis(250));
  ASSERT_EQ(h.sent.size(), 1u) << "delayed ACK timer must fire";
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 4);
  EXPECT_EQ(h.ep->counters().delayed_acks_sent, 1u);
  EXPECT_EQ(h.delivered, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Endpoint, SecondSegmentForcesImmediateAck) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {1}));
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {2}));
  ASSERT_EQ(h.sent.size(), 1u) << "every second segment is ACKed at once";
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 3);
  // No stale delayed-ACK may fire afterwards.
  h.settle();
  EXPECT_EQ(h.sent.size(), 1u);
}

TEST(Endpoint, AckEveryPolicyNoneAcksEverySegment) {
  TcpBehavior b;
  b.delayed_ack = DelayedAckPolicy::kNone;
  Harness h{b};
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {1}));
  EXPECT_EQ(h.sent.size(), 1u);
}

// ---------- out-of-order data: the crucial immediate dup-ACK ----------

TEST(Endpoint, OutOfOrderDataGetsImmediateDupAck) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {0x22}));  // hole at kCiss+1
  ASSERT_EQ(h.sent.size(), 1u) << "OOO data must be acknowledged immediately";
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 1) << "dup ACK names the hole";
  EXPECT_EQ(h.ep->counters().dup_acks_sent, 1u);
  EXPECT_EQ(h.ep->counters().ooo_segments_queued, 1u);
  EXPECT_TRUE(h.delivered.empty());
}

TEST(Endpoint, DuplicateOooSegmentStillDupAcks) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {0x22}));
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {0x22}));
  EXPECT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.ep->counters().ooo_segments_queued, 1u) << "queued once";
}

TEST(Endpoint, HoleFillDefaultIsDelayed) {
  Harness h;  // default: immediate_ack_on_hole_fill = false
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {0x22}));
  h.sent.clear();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {0x11}));
  EXPECT_TRUE(h.sent.empty())
      << "paper §III-B: hole-filling data may be treated as ordinary in-order data";
  h.loop.run_until(h.loop.now() + Duration::millis(250));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 3) << "cumulative ACK covers the queued byte";
  EXPECT_EQ(h.delivered, (std::vector<std::uint8_t>{0x11, 0x22}));
  EXPECT_EQ(h.ep->counters().hole_fills, 1u);
}

TEST(Endpoint, HoleFillImmediatePolicy) {
  TcpBehavior b;
  b.immediate_ack_on_hole_fill = true;  // RFC 5681 SHOULD
  Harness h{b};
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {0x22}));
  h.sent.clear();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {0x11}));
  ASSERT_EQ(h.sent.size(), 1u) << "hole fill ACKed at once under RFC 5681 policy";
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 3);
}

TEST(Endpoint, PartialHoleFillStillSignalsRemainingHole) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 4, kIss + 1, {0x44}));  // far hole
  h.sent.clear();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {0x11}));  // fills only byte 1
  ASSERT_EQ(h.sent.size(), 1u) << "a remaining hole forces an immediate ACK";
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 2);
}

TEST(Endpoint, OldDuplicateDataAckedImmediately) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {1}));
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {2}));
  h.sent.clear();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {1}));  // stale retransmit
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 3);
  EXPECT_EQ(h.delivered.size(), 2u) << "duplicate payload must not be re-delivered";
}

TEST(Endpoint, OverlappingSegmentDeliversOnlyNewBytes) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 1, kIss + 1, {1, 2}));
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 2, kIss + 1, {2, 3}));  // overlaps byte 2
  EXPECT_EQ(h.delivered, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(h.ep->rcv_nxt(), kCiss + 4);
}

TEST(Endpoint, DataBeyondWindowIsNotQueued) {
  TcpBehavior b;
  b.receive_window = 8;
  Harness h{b};
  h.establish();
  h.ep->on_segment(h.make(kAck | kPsh, kCiss + 100, kIss + 1, {9}));
  EXPECT_EQ(h.ep->counters().ooo_segments_queued, 0u);
  ASSERT_EQ(h.sent.size(), 1u) << "still dup-ACKed so the sender learns rcv_nxt";
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 1);
}

// ---------- server data transmission ----------

TEST(Endpoint, SendDataSegmentsByPeerMss) {
  Harness h;
  h.establish(/*mss=*/4);
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  h.ep->send_data(data);
  ASSERT_EQ(h.sent.size(), 3u);
  EXPECT_EQ(h.sent[0].payload.size(), 4u);
  EXPECT_EQ(h.sent[1].payload.size(), 4u);
  EXPECT_EQ(h.sent[2].payload.size(), 2u);
  EXPECT_EQ(h.sent[0].tcp.seq, kIss + 1);
  EXPECT_EQ(h.sent[1].tcp.seq, kIss + 5);
  EXPECT_EQ(h.sent[2].tcp.seq, kIss + 9);
}

TEST(Endpoint, SendRespectsPeerWindow) {
  Harness h;
  // Client's SYN advertised window is captured at accept time.
  auto syn = h.make(kSyn, kCiss, 0);
  syn.tcp.mss = 4;
  syn.tcp.window = 8;
  h.ep->on_segment(syn);
  h.ep->on_segment(h.make(kAck, kCiss + 1, kIss + 1, {}, 8));
  h.sent.clear();

  const std::vector<std::uint8_t> data(20, 0xaa);
  h.ep->send_data(data);
  ASSERT_EQ(h.sent.size(), 2u) << "only one window (2 segments of 4) may be in flight";
  // ACK of the first window opens the next.
  h.ep->on_segment(h.make(kAck, kCiss + 1, kIss + 9, {}, 8));
  EXPECT_EQ(h.sent.size(), 4u);
}

TEST(Endpoint, RetransmitsOnRtoAndBacksOff) {
  Harness h;
  h.establish(/*mss=*/100);
  h.ep->send_data(std::vector<std::uint8_t>(10, 1));
  ASSERT_EQ(h.sent.size(), 1u);
  h.loop.run_until(h.loop.now() + Duration::millis(300));
  EXPECT_EQ(h.sent.size(), 2u) << "one retransmission after the initial RTO";
  EXPECT_EQ(h.sent[1].tcp.seq, kIss + 1);
  h.loop.run_until(h.loop.now() + Duration::millis(350));
  EXPECT_EQ(h.sent.size(), 2u) << "backoff doubles the next RTO";
  h.loop.run_until(h.loop.now() + Duration::millis(300));
  EXPECT_EQ(h.sent.size(), 3u);
  EXPECT_EQ(h.ep->counters().retransmissions, 2u);
}

TEST(Endpoint, AckStopsRetransmission) {
  Harness h;
  h.establish(/*mss=*/100);
  h.ep->send_data(std::vector<std::uint8_t>(10, 1));
  h.ep->on_segment(h.make(kAck, kCiss + 1, kIss + 11));
  h.sent.clear();
  h.settle();
  EXPECT_TRUE(h.sent.empty());
}

TEST(Endpoint, GivesUpAfterMaxRetransmits) {
  TcpBehavior b;
  b.max_retransmits = 2;
  Harness h{b};
  h.establish(/*mss=*/100);
  h.ep->send_data(std::vector<std::uint8_t>(10, 1));
  bool closed = false;
  h.ep->on_closed = [&] { closed = true; };
  h.settle();
  EXPECT_TRUE(closed);
  EXPECT_EQ(h.ep->state(), TcpState::kClosed);
}

// ---------- FIN / close / RST ----------

TEST(Endpoint, RemoteFinMovesToCloseWait) {
  Harness h;
  h.establish();
  bool remote_closed = false;
  h.ep->on_remote_close = [&] { remote_closed = true; };
  h.ep->on_segment(h.make(kFin | kAck, kCiss + 1, kIss + 1));
  EXPECT_TRUE(remote_closed);
  EXPECT_EQ(h.ep->state(), TcpState::kCloseWait);
  ASSERT_EQ(h.sent.size(), 1u) << "FIN is ACKed immediately";
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 2);
}

TEST(Endpoint, FullCloseSequence) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kFin | kAck, kCiss + 1, kIss + 1));
  h.sent.clear();
  h.ep->close();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_TRUE(h.sent[0].tcp.is_fin());
  EXPECT_EQ(h.ep->state(), TcpState::kLastAck);
  h.ep->on_segment(h.make(kAck, kCiss + 2, kIss + 2));
  EXPECT_EQ(h.ep->state(), TcpState::kClosed);
}

TEST(Endpoint, ActiveCloseFinWaitPath) {
  Harness h;
  h.establish();
  h.ep->close();
  EXPECT_EQ(h.ep->state(), TcpState::kFinWait1);
  h.ep->on_segment(h.make(kAck, kCiss + 1, kIss + 2));
  EXPECT_EQ(h.ep->state(), TcpState::kFinWait2);
  h.ep->on_segment(h.make(kFin | kAck, kCiss + 1, kIss + 2));
  EXPECT_EQ(h.ep->state(), TcpState::kClosed);
}

TEST(Endpoint, CloseAfterDataDrainsFirst) {
  Harness h;
  h.establish(/*mss=*/4);
  h.ep->send_data(std::vector<std::uint8_t>{1, 2, 3, 4, 5});
  h.ep->close();
  // FIN must come after the last data segment.
  ASSERT_GE(h.sent.size(), 3u);
  EXPECT_TRUE(h.sent.back().tcp.is_fin());
  EXPECT_EQ(h.sent.back().tcp.seq, kIss + 6);
}

TEST(Endpoint, RstTearsDown) {
  Harness h;
  h.establish();
  bool closed = false;
  h.ep->on_closed = [&] { closed = true; };
  h.ep->on_segment(h.make(kRst, kCiss + 1, 0));
  EXPECT_TRUE(closed);
  EXPECT_EQ(h.ep->state(), TcpState::kClosed);
}

TEST(Endpoint, AbortSendsRst) {
  Harness h;
  h.establish();
  h.ep->abort();
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_TRUE(h.sent[0].tcp.is_rst());
  EXPECT_EQ(h.ep->state(), TcpState::kClosed);
}

TEST(Endpoint, SynOnEstablishedGetsChallengeAck) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kSyn, kCiss + 500, 0));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_TRUE(h.sent[0].tcp.is_ack());
  EXPECT_FALSE(h.sent[0].tcp.is_syn());
  EXPECT_EQ(h.ep->state(), TcpState::kEstablished);
}

TEST(Endpoint, OooFinIsDupAcked) {
  Harness h;
  h.establish();
  h.ep->on_segment(h.make(kFin | kAck, kCiss + 5, kIss + 1));  // FIN beyond a hole
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].tcp.ack, kCiss + 1);
  EXPECT_EQ(h.ep->state(), TcpState::kEstablished);
  EXPECT_FALSE(h.ep->fin_received());
}

TEST(Endpoint, StateNames) {
  EXPECT_EQ(to_string(TcpState::kListen), "LISTEN");
  EXPECT_EQ(to_string(TcpState::kEstablished), "ESTABLISHED");
  EXPECT_EQ(to_string(SecondSynBehavior::kAlwaysRst), "always-rst");
}

}  // namespace
}  // namespace reorder::tcpip
