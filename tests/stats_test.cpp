// Unit tests for stats: summaries, ECDF, histogram, special functions,
// Student-t, and the paired-difference test.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/pair_difference.hpp"
#include "stats/special.hpp"
#include "stats/students_t.hpp"
#include "stats/summary.hpp"
#include "util/random.hpp"

namespace reorder::stats {
namespace {

// ---------- RunningStats ----------

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  util::Rng rng{5};
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

// ---------- Wilson interval ----------

TEST(Wilson, ContainsPointEstimate) {
  const auto p = wilson_interval(30, 100);
  EXPECT_DOUBLE_EQ(p.estimate, 0.3);
  EXPECT_LT(p.lower, 0.3);
  EXPECT_GT(p.upper, 0.3);
}

TEST(Wilson, EdgeCases) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.estimate, 0.0);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);
  const auto full = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(full.estimate, 1.0);
  EXPECT_LT(full.lower, 1.0);
  EXPECT_DOUBLE_EQ(full.upper, 1.0);
  const auto none = wilson_interval(0, 0);
  EXPECT_EQ(none.trials, 0);
}

TEST(Wilson, WiderAtHigherConfidence) {
  const auto narrow = wilson_interval(20, 100, 1.96);
  const auto wide = wilson_interval(20, 100, 3.29);
  EXPECT_LT(wide.lower, narrow.lower);
  EXPECT_GT(wide.upper, narrow.upper);
}

// ---------- Ecdf ----------

TEST(Ecdf, CdfAndQuantile) {
  Ecdf e;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) e.add(x);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.2);
  EXPECT_DOUBLE_EQ(e.cdf(3.0), 0.6);
  EXPECT_DOUBLE_EQ(e.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
}

TEST(Ecdf, EmptySafe) {
  const Ecdf e;
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 0.0);
  EXPECT_TRUE(e.curve().empty());
}

TEST(Ecdf, CurveEndsAtOne) {
  Ecdf e;
  for (int i = 0; i < 1000; ++i) e.add(static_cast<double>(i));
  const auto curve = e.curve(50);
  ASSERT_FALSE(curve.empty());
  EXPECT_LE(curve.size(), 52u);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 999.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

TEST(Ecdf, InterleavedAddAndQuery) {
  Ecdf e;
  e.add(5.0);
  EXPECT_DOUBLE_EQ(e.cdf(5.0), 1.0);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 5.0);
}

// ---------- Histogram ----------

TEST(Histogram, BinningAndOverflow) {
  Histogram h{0.0, 10.0, 10};
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(5.5);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(9), 1);
  EXPECT_EQ(h.bin_count(5), 1);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderShowsNonEmptyBins) {
  Histogram h{0.0, 4.0, 4};
  h.add(0.5);
  h.add(2.5);
  h.add(2.6);
  const auto s = h.render(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  // Two non-empty bins -> two lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

// ---------- special functions ----------

TEST(Special, IncompleteBetaIdentities) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1, 1, x), x, 1e-12);
  }
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3), 1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-12);
  // At the symmetric midpoint, I_{1/2}(a,a) = 1/2.
  EXPECT_NEAR(incomplete_beta(3.0, 3.0, 0.5), 0.5, 1e-12);
  // Bounds.
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
  EXPECT_THROW(incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
}

// ---------- Student-t ----------

TEST(StudentT, Df1IsCauchy) {
  // For df=1 the CDF is 1/2 + atan(t)/pi.
  for (double t : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    EXPECT_NEAR(student_t_cdf(t, 1), 0.5 + std::atan(t) / M_PI, 1e-10);
  }
}

TEST(StudentT, KnownCriticalValues) {
  // Classic table values.
  EXPECT_NEAR(student_t_critical(0.95, 10), 2.228, 2e-3);
  EXPECT_NEAR(student_t_critical(0.99, 5), 4.032, 2e-3);
  EXPECT_NEAR(student_t_critical(0.999, 30), 3.646, 2e-3);
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 2e-2);
}

TEST(StudentT, LargeDfApproachesNormal) {
  EXPECT_NEAR(student_t_critical(0.95, 100000), 1.960, 2e-3);
}

class StudentTQuantileRoundTrip : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(StudentTQuantileRoundTrip, CdfOfQuantileIsP) {
  const auto [p, df] = GetParam();
  const double t = student_t_quantile(p, df);
  EXPECT_NEAR(student_t_cdf(t, df), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StudentTQuantileRoundTrip,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.9995),
                       ::testing::Values(1.0, 2.0, 5.0, 14.0, 29.0, 120.0)));

TEST(StudentT, InvalidArguments) {
  EXPECT_THROW(student_t_cdf(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(0.0, 5), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(1.0, 5), std::invalid_argument);
  EXPECT_THROW(student_t_critical(1.5, 5), std::invalid_argument);
}

// ---------- pair difference ----------

TEST(PairDifference, IdenticalSeriesSupportsNull) {
  const std::vector<double> a{0.1, 0.2, 0.15, 0.12, 0.18};
  const auto r = pair_difference_test(a, a);
  EXPECT_TRUE(r.null_supported);
  EXPECT_DOUBLE_EQ(r.mean_difference, 0.0);
}

TEST(PairDifference, LargeShiftRejectsNull) {
  std::vector<double> a;
  std::vector<double> b;
  util::Rng rng{3};
  for (int i = 0; i < 30; ++i) {
    const double base = rng.uniform(0.0, 0.05);
    a.push_back(base + 0.5);  // a is uniformly half a unit higher
    b.push_back(base);
  }
  const auto r = pair_difference_test(a, b, 0.999);
  EXPECT_FALSE(r.null_supported);
  EXPECT_NEAR(r.mean_difference, 0.5, 1e-9);
  EXPECT_GT(r.ci_lower, 0.0);
}

TEST(PairDifference, NoisyEqualProcessesSupportNull) {
  std::vector<double> a;
  std::vector<double> b;
  util::Rng rng{7};
  for (int i = 0; i < 50; ++i) {
    const double common = rng.uniform(0.0, 0.2);
    a.push_back(common + rng.normal(0.0, 0.01));
    b.push_back(common + rng.normal(0.0, 0.01));
  }
  const auto r = pair_difference_test(a, b, 0.999);
  EXPECT_TRUE(r.null_supported);
}

TEST(PairDifference, Validation) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(pair_difference_test(a, b), std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW(pair_difference_test(one, one), std::invalid_argument);
}

TEST(PairDifference, ConfidenceRecorded) {
  const std::vector<double> a{0.1, 0.2, 0.3};
  const auto r = pair_difference_test(a, a, 0.99);
  EXPECT_DOUBLE_EQ(r.confidence, 0.99);
  EXPECT_EQ(r.n, 3u);
}

}  // namespace
}  // namespace reorder::stats
