// The sharded parallel survey runtime's headline guarantee, enforced:
// for a fixed fleet + seed, an N-shard run's per-(target, test) metric
// snapshots and canonical merged JSONL are BIT-IDENTICAL to the 1-shard
// run, for every N — the thread schedule cannot leak into a byte of
// output. Plus the shard plan's partition properties, the
// torn-down-mid-run recovery path, and shard failure propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/sharded_survey.hpp"
#include "util/shard_seeder.hpp"

namespace reorder::core {
namespace {

using util::Duration;

/// A heterogeneous nine-target fleet: clean, swapping and lossy paths,
/// plus a random-IPID host that rules the dual test inadmissible — the
/// merge must reproduce failure records too.
SurveyTestbedConfig nine_target_fleet(std::uint64_t seed = 7) {
  SurveyTestbedConfig cfg;
  cfg.seed = seed;
  for (int i = 0; i < 9; ++i) {
    SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = (i % 3) * 0.11;
    target.reverse.swap_probability = (i % 3) * 0.04;
    if (i == 4) target.forward.loss_probability = 0.02;
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {TestSpec{"single-connection"}, TestSpec{"syn"}};
    if (i == 7) {
      target.remote.ipid_policy = tcpip::IpidPolicy::kRandom;
      target.tests = {TestSpec{"dual-connection"}, TestSpec{"syn"}};
    }
    cfg.targets.push_back(std::move(target));
  }
  return cfg;
}

ShardedSurveyConfig sharded(std::uint64_t shards, std::size_t threads = 2) {
  ShardedSurveyConfig cfg;
  cfg.fleet = nine_target_fleet();
  cfg.shards = shards;
  cfg.threads = threads;  // force real pool concurrency even on 1 core
  return cfg;
}

TestRunConfig quick_run() {
  TestRunConfig run;
  run.samples = 8;
  return run;
}

std::string canonical_jsonl(const ShardedSurveyEngine& engine) {
  std::ostringstream text;
  report::JsonlWriter writer{text};
  engine.emit_jsonl(writer);
  return text.str();
}

/// Every per-key snapshot, serialized: suite JSON plus the engine's
/// measurement counters, in canonical key order.
std::string snapshot_dump(const metrics::MetricEngine& engine) {
  auto keys = engine.keys();
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (const auto& [target, test] : keys) {
    out += target + "/" + test + " n=" + std::to_string(engine.measurements(target, test)) +
           " adm=" + std::to_string(engine.admissible_measurements(target, test)) + " " +
           engine.suite(target, test)->to_json().dump() + "\n";
  }
  return out;
}

constexpr int kRounds = 2;

TEST(ShardedSurvey, ShardPlanIsACompleteDeterministicPartition) {
  const ShardedSurveyEngine engine{sharded(3)};
  std::set<std::size_t> seen;
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    for (const std::size_t i : engine.shard_targets(s)) {
      EXPECT_EQ(util::ShardSeeder::shard_of(i, 3), s);
      EXPECT_TRUE(seen.insert(i).second) << "target " << i << " assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), engine.target_count());

  // The shard's world description pins every target's stochastic identity
  // to its GLOBAL index — the seeds shard 2's first target gets must be
  // the global derivation for index 2, not a local re-derivation for
  // index 0.
  const SurveyTestbedConfig world = engine.shard_config(2);
  ASSERT_FALSE(world.targets.empty());
  const util::TargetSeeds expected = util::ShardSeeder{world.seed}.target(2);
  EXPECT_EQ(world.targets[0].host_seed, expected.host_seed);
  EXPECT_EQ(world.targets[0].ipid_initial, expected.ipid_initial);
  EXPECT_EQ(world.targets[0].forward_path_tag, expected.forward_tag);
  EXPECT_EQ(world.targets[0].reverse_path_tag, expected.reverse_tag);
}

TEST(ShardedSurvey, BitIdenticalAcrossShardCounts) {
  // The reference: the whole fleet on ONE shard (one loop, one thread).
  ShardedSurveyEngine reference{sharded(1, 1)};
  reference.run(quick_run(), kRounds, Duration::millis(500));
  const std::string ref_snapshots = snapshot_dump(reference.metrics());
  const std::string ref_jsonl = canonical_jsonl(reference);
  ASSERT_FALSE(ref_snapshots.empty());
  ASSERT_EQ(reference.measurements().size(), 9u * 2u * kRounds);

  // A sanity anchor: the survey measured something real.
  EXPECT_GT(reference.aggregate("host-2", "single-connection", true).reordered, 0u);
  EXPECT_EQ(reference.metrics().admissible_measurements("host-7", "dual-connection"), 0u)
      << "random IPIDs must rule the dual test out";

  for (const std::size_t shards : {2, 3, 8}) {
    ShardedSurveyEngine parallel{sharded(shards, /*threads=*/4)};
    parallel.run(quick_run(), kRounds, Duration::millis(500));
    EXPECT_EQ(snapshot_dump(parallel.metrics()), ref_snapshots)
        << shards << "-shard metric snapshots diverged from the sequential run";
    EXPECT_EQ(canonical_jsonl(parallel), ref_jsonl)
        << shards << "-shard merged JSONL is not byte-identical";
    EXPECT_EQ(parallel.survey_end().at, reference.survey_end().at);
    EXPECT_EQ(parallel.survey_end().targets, reference.survey_end().targets);
  }
}

TEST(ShardedSurvey, RepeatedRunsOfOneEngineAreIdentical) {
  ShardedSurveyEngine engine{sharded(3)};
  engine.run(quick_run(), kRounds, Duration::millis(500));
  const std::string first = canonical_jsonl(engine);
  engine.run(quick_run(), kRounds, Duration::millis(500));
  EXPECT_EQ(canonical_jsonl(engine), first) << "run() must reset merged state";
}

TEST(ShardedSurvey, TornDownMidRunShardReproducesBitIdentically) {
  const ShardedSurveyEngine engine{sharded(3)};

  // A shard dies mid-survey: build its world, drive it partway, tear it
  // down. Nothing of it survives anywhere...
  {
    SurveyTestbed casualty{engine.shard_config(1)};
    SurveyEngine partial{casualty.loop()};
    casualty.populate(partial);
    partial.start(quick_run(), kRounds, Duration::millis(500));
    casualty.loop().run_until(util::TimePoint::from_ns(2'000'000'000));
    ASSERT_TRUE(partial.running()) << "tear-down must interrupt a live survey";
  }

  // ...so re-running the shard from its config reproduces it bit-for-bit
  // (the recovery path is "just run it again").
  const ShardRunResult again = engine.run_shard(1, quick_run(), kRounds, Duration::millis(500));
  const ShardRunResult fresh = engine.run_shard(1, quick_run(), kRounds, Duration::millis(500));
  EXPECT_EQ(snapshot_dump(again.metrics), snapshot_dump(fresh.metrics));
  ASSERT_EQ(again.log.size(), fresh.log.size());
  for (std::size_t i = 0; i < again.log.size(); ++i) {
    EXPECT_EQ(again.log[i].target, fresh.log[i].target);
    EXPECT_EQ(again.log[i].test, fresh.log[i].test);
    EXPECT_EQ(again.log[i].at, fresh.log[i].at);
    EXPECT_EQ(again.log[i].result.forward.reordered, fresh.log[i].result.forward.reordered);
    EXPECT_EQ(again.log[i].result.samples.size(), fresh.log[i].result.samples.size());
  }
  EXPECT_EQ(again.end.at, fresh.end.at);
}

TEST(ShardedSurvey, MoreShardsThanTargetsLeavesEmptyShardsHarmless) {
  ShardedSurveyConfig cfg;
  cfg.fleet = nine_target_fleet();
  cfg.fleet.targets.resize(2);
  cfg.shards = 5;
  cfg.threads = 2;
  ShardedSurveyEngine engine{cfg};
  EXPECT_TRUE(engine.shard_targets(4).empty());
  const auto& log = engine.run(quick_run(), 1, Duration::millis(100));
  EXPECT_EQ(log.size(), 2u * 2u);
  EXPECT_EQ(engine.survey_end().targets, 2u);
}

TEST(ShardedSurvey, DuplicateTargetNamesAreRejected) {
  // Metrics key on target name: two targets sharing one would pool their
  // streams — in shard-count-dependent orders — which silently voids the
  // bit-invariance guarantee. Hard error instead.
  ShardedSurveyConfig cfg;
  cfg.fleet = nine_target_fleet();
  cfg.fleet.targets[6].name = cfg.fleet.targets[2].name;
  EXPECT_THROW(ShardedSurveyEngine{cfg}, std::invalid_argument);

  // An explicit name colliding with another target's auto-assigned
  // default is the sneaky variant of the same bug.
  ShardedSurveyConfig sneaky;
  sneaky.fleet = nine_target_fleet();
  sneaky.fleet.targets[0].name.clear();  // becomes "target-0"
  sneaky.fleet.targets[5].name = "target-0";
  EXPECT_THROW(ShardedSurveyEngine{sneaky}, std::invalid_argument);

  // Explicit address collisions must be caught FLEET-wide: a per-shard
  // testbed only sees its own subset, so two colliding targets on
  // different shards would otherwise slip through for some shard counts
  // and throw for others.
  ShardedSurveyConfig addr;
  addr.fleet = nine_target_fleet();
  addr.fleet.targets[1].address = tcpip::Ipv4Address::from_octets(10, 9, 0, 1);
  addr.fleet.targets[4].address = tcpip::Ipv4Address::from_octets(10, 9, 0, 1);
  addr.shards = 3;  // 1 and 4 land on different shards
  EXPECT_THROW(ShardedSurveyEngine{addr}, std::invalid_argument);
}

TEST(ShardedSurvey, ShardFailurePropagatesOutOfRun) {
  ShardedSurveyConfig cfg;
  cfg.fleet = nine_target_fleet();
  cfg.fleet.targets[3].tests = {TestSpec{"no-such-technique"}};
  cfg.shards = 3;
  cfg.threads = 2;
  ShardedSurveyEngine engine{cfg};
  EXPECT_THROW(engine.run(quick_run(), 1, Duration::millis(100)), std::invalid_argument);
}

TEST(ShardSeeder, DerivationIsPureAndDecorrelated) {
  const util::ShardSeeder seeder{42};
  const util::TargetSeeds a0 = seeder.target(0);
  const util::TargetSeeds a0_again = util::ShardSeeder{42}.target(0);
  EXPECT_EQ(a0.host_seed, a0_again.host_seed);
  EXPECT_EQ(a0.forward_tag, a0_again.forward_tag);

  // Neighbouring indices and lanes must not collide (the avalanche is
  // doing its job).
  std::set<std::uint64_t> streams;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const util::TargetSeeds s = seeder.target(i);
    streams.insert(s.host_seed);
    streams.insert(s.forward_tag);
    streams.insert(s.reverse_tag);
  }
  EXPECT_EQ(streams.size(), 3u * 64u);

  // The splitmix64 finalizer is an on-disk contract (recorded seeds must
  // replay across versions): pin a known vector.
  EXPECT_EQ(util::splitmix64(0), 0xe220a8397b1dcdafull);
}

}  // namespace
}  // namespace reorder::core
