// Golden tests for the sequence metrics against worked examples: RFC 4737
// (reordered ratio and extents), RFC 5236 (n-reordering), and Piratla's
// RD / RBD density examples, all hand-checked.
#include <gtest/gtest.h>

#include <vector>

#include "metrics/sequence_metrics.hpp"

namespace reorder {
namespace {

using metrics::observe_sequence;

// RFC 4737 §4.2's style of example: packets sent 0..5, received
// 0, 1, 3, 4, 2, 5. Packet 2 arrives after 3 and 4: it is the only
// reordered packet, with extent 2 (the earliest larger-index arrival, 3,
// came two positions before it).
TEST(SequenceExtentGolden, Rfc4737WorkedExample) {
  metrics::SequenceExtentMetric m;
  observe_sequence(m, {0, 1, 3, 4, 2, 5});
  EXPECT_EQ(m.packets(), 6u);
  EXPECT_EQ(m.reordered(), 1u);
  EXPECT_DOUBLE_EQ(m.ratio(), 1.0 / 6.0);
  EXPECT_EQ(m.max_extent(), 2u);
  EXPECT_DOUBLE_EQ(m.mean_extent(), 2.0);
  // Two pairs are inverted: (3,2) and (4,2).
  EXPECT_EQ(m.inversions(), 2u);
  EXPECT_EQ(m.sequences(), 1u);
}

TEST(SequenceExtentGolden, InOrderAndFullyReversed) {
  metrics::SequenceExtentMetric in_order;
  observe_sequence(in_order, {0, 1, 2, 3, 4});
  EXPECT_EQ(in_order.reordered(), 0u);
  EXPECT_EQ(in_order.max_extent(), 0u);
  EXPECT_EQ(in_order.inversions(), 0u);

  // 4,3,2,1,0: every packet after the first is reordered; packet at
  // position i has extent i (the first arrival, 4, overtook them all).
  metrics::SequenceExtentMetric reversed;
  observe_sequence(reversed, {4, 3, 2, 1, 0});
  EXPECT_EQ(reversed.packets(), 5u);
  EXPECT_EQ(reversed.reordered(), 4u);
  EXPECT_EQ(reversed.max_extent(), 4u);
  EXPECT_DOUBLE_EQ(reversed.mean_extent(), (1.0 + 2.0 + 3.0 + 4.0) / 4.0);
  EXPECT_EQ(reversed.inversions(), 10u);  // C(5,2): every pair inverted
}

// RFC 5236 §4: a packet is n-reordered when the n arrivals immediately
// before it were all sent after it. Sent 0..4, received 2, 3, 0, 1, 4:
//   packet 0 (3rd arrival): preceded by 3, 2 — both later-sent -> n = 2;
//   packet 1 (4th arrival): preceded by 0 (earlier-sent) -> run stops,
//     but 0 < 1 means the run is 0... preceded immediately by 0, which
//     was sent earlier, so packet 1 is NOT n-reordered for any n >= 1.
TEST(NReorderingGolden, Rfc5236WorkedExample) {
  metrics::NReorderingMetric m;
  observe_sequence(m, {2, 3, 0, 1, 4});
  EXPECT_EQ(m.packets(), 5u);
  EXPECT_EQ(m.count_for(2), 1u);  // packet 0 is 2-reordered
  EXPECT_EQ(m.count_for(1), 0u);
  EXPECT_EQ(m.count_for(3), 0u);
  EXPECT_DOUBLE_EQ(m.reordered_fraction(), 1.0 / 5.0);
}

TEST(NReorderingGolden, AdjacentSwapIsOneReordering) {
  // 1, 0: packet 0 is preceded by exactly one later-sent packet.
  metrics::NReorderingMetric m;
  observe_sequence(m, {1, 0});
  EXPECT_EQ(m.count_for(1), 1u);
  EXPECT_DOUBLE_EQ(m.reordered_fraction(), 0.5);

  // 3, 2, 1, 0 arrivals: packet 2 is 1-reordered (preceded by 3), packet
  // 1 is 2-reordered, packet 0 is 3-reordered.
  metrics::NReorderingMetric reversed;
  observe_sequence(reversed, {3, 2, 1, 0});
  EXPECT_EQ(reversed.count_for(1), 1u);
  EXPECT_EQ(reversed.count_for(2), 1u);
  EXPECT_EQ(reversed.count_for(3), 1u);
}

TEST(NReorderingGolden, RunMustBeContiguous) {
  // 2, 0, 3, 1: packet 1 (last) is preceded by 3 (later-sent) then 0
  // (earlier-sent) — the contiguous later-sent run is length 1, even
  // though TWO later-sent packets (2 and 3) arrived before it.
  metrics::NReorderingMetric m;
  observe_sequence(m, {2, 0, 3, 1});
  EXPECT_EQ(m.count_for(1), 2u);  // packets 0 and 1 are both 1-reordered
  EXPECT_EQ(m.count_for(2), 0u);
}

// Piratla's reorder density: displacement D = arrival position - send
// index. Received 1, 0, 2: packet 1 arrives early (D = -1), packet 0
// late (D = +1), packet 2 on time (D = 0).
TEST(ReorderDensityGolden, AdjacentSwapDensities) {
  metrics::ReorderDensityMetric m;
  observe_sequence(m, {1, 0, 2});
  EXPECT_EQ(m.packets(), 3u);
  EXPECT_EQ(m.count_for(-1), 1u);
  EXPECT_EQ(m.count_for(0), 1u);
  EXPECT_EQ(m.count_for(1), 1u);
}

TEST(ReorderDensityGolden, DisplacementsClampAtThreshold) {
  metrics::ReorderDensityMetric m{/*threshold=*/2};
  // Packet 5 arrives first: displacement -5, clamped to -2.
  observe_sequence(m, {5, 0, 1, 2, 3, 4});
  EXPECT_EQ(m.count_for(-2), 1u);
  // Packets 0..4 each arrive one position late: displacement +1.
  EXPECT_EQ(m.count_for(1), 5u);
}

// Piratla's RBD: occupancy of a hypothetical resequencing buffer after
// each arrival. Received 2, 0, 1, 3:
//   2 -> buffered (occupancy 1); 0 -> released (1); 1 -> releases 1 and
//   the buffered 2 (0); 3 -> released (0).
TEST(BufferDensityGolden, ResequencingBufferOccupancy) {
  metrics::BufferDensityMetric m;
  observe_sequence(m, {2, 0, 1, 3});
  EXPECT_EQ(m.packets(), 4u);
  EXPECT_EQ(m.count_for(0), 2u);
  EXPECT_EQ(m.count_for(1), 2u);
  EXPECT_EQ(m.max_occupancy(), 1u);
}

TEST(BufferDensityGolden, DeepHoldback) {
  // 3, 2, 1, 0: three packets buffer up waiting for 0, then all flush.
  metrics::BufferDensityMetric m;
  observe_sequence(m, {3, 2, 1, 0});
  EXPECT_EQ(m.count_for(1), 1u);
  EXPECT_EQ(m.count_for(2), 1u);
  EXPECT_EQ(m.count_for(3), 1u);
  EXPECT_EQ(m.count_for(0), 1u);  // after 0 arrives, everything drains
  EXPECT_EQ(m.max_occupancy(), 3u);
}

// In-engine pair streams: each usable two-packet sample is the
// degenerate length-2 sequence, so a swapped pair is 1-reordering with
// extent 1 — the RFC metrics collapse onto the paper's pair metric.
TEST(SequenceMetrics, PairStreamCollapsesToPairMetric) {
  metrics::SequenceExtentMetric extent;
  metrics::NReorderingMetric n;
  for (int i = 0; i < 10; ++i) {
    const bool swapped = i % 3 == 0;  // 4 of 10 pairs
    if (swapped) {
      observe_sequence(extent, {1, 0});
      observe_sequence(n, {1, 0});
    } else {
      observe_sequence(extent, {0, 1});
      observe_sequence(n, {0, 1});
    }
  }
  EXPECT_EQ(extent.sequences(), 10u);
  EXPECT_EQ(extent.reordered(), 4u);
  EXPECT_EQ(extent.max_extent(), 1u);
  EXPECT_EQ(n.count_for(1), 4u);
}

}  // namespace
}  // namespace reorder
