// Proves the scheduler hot path is allocation-free in steady state: after a
// warm-up that grows the heap/slot vectors to their high-water mark, a
// schedule/pop cycle (and a schedule/cancel cycle) must perform zero heap
// allocations. A counting global operator new/delete makes the claim exact
// rather than statistical. This file intentionally links into its own test
// binary so the replaced operators cannot perturb other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "netsim/event_loop.hpp"
#include "tcpip/packet.hpp"
#include "util/buffer_pool.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace reorder::sim {
namespace {

using util::Duration;

std::uint64_t allocation_count() { return g_allocations.load(std::memory_order_relaxed); }

TEST(EventLoopAlloc, SteadyStateScheduleRunIsAllocationFree) {
  EventLoop loop;
  // Warm-up: grow the heap and slot vectors past anything the measured
  // phase will need.
  for (int i = 0; i < 1024; ++i) loop.schedule(Duration::micros(i % 97), [] {});
  loop.run();

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) loop.schedule(Duration::micros(i % 97), [] {});
    loop.run();
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "scheduler steady state allocated";
}

TEST(EventLoopAlloc, SteadyStateCancelIsAllocationFree) {
  EventLoop loop;
  std::vector<std::uint64_t> tokens(256);
  for (int i = 0; i < 1024; ++i) loop.schedule(Duration::micros(i % 97), [] {});
  loop.run();

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) {
      tokens[static_cast<std::size_t>(i)] = loop.schedule(Duration::micros(i % 97), [] {});
    }
    for (int i = 0; i < 256; i += 2) loop.cancel(tokens[static_cast<std::size_t>(i)]);
    loop.run();
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "cancel-heavy steady state allocated";
}

// A packet-carrying callback (the netsim-stage shape: `this` + a whole
// Packet moved through the scheduler) must also be allocation-free once its
// payload buffer is pooled.
TEST(EventLoopAlloc, PacketCarryingCallbackIsAllocationFree) {
  EventLoop loop;
  // Fresh packet per send: headers by value (no heap), payload from the
  // pool — the exact shape a netsim stage forwards.
  auto make_packet = [] {
    tcpip::Packet pkt;
    pkt.tcp.src_port = 40000;
    pkt.tcp.dst_port = 80;
    pkt.payload = util::BufferPool::global().acquire(1460);
    pkt.payload.assign(1460, 0xab);
    return pkt;
  };

  std::uint64_t delivered = 0;
  auto send_one = [&loop, &delivered](tcpip::Packet pkt) {
    loop.schedule(Duration::micros(5), [&delivered, p = std::move(pkt)]() mutable {
      ++delivered;
      tcpip::recycle(std::move(p));
    });
  };

  // Warm-up grows the pool and scheduler storage.
  for (int i = 0; i < 64; ++i) send_one(make_packet());
  loop.run();

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 100; ++round) {
    send_one(make_packet());
    loop.run();
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "packet round through scheduler allocated";
  EXPECT_EQ(delivered, 164u);
}

}  // namespace
}  // namespace reorder::sim
