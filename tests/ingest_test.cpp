// The line-rate ingest subsystem's contracts, enforced:
//
//   * SpscRing is a correct bounded FIFO at every boundary — empty, full,
//     wrap-around, batched multi-slot transfers, move-only payloads — and
//     a real producer/consumer thread pair streams a long sequence
//     through a tiny ring intact (the TSAN job proves the fences);
//   * backpressure is observable: push_or_drop counts every shed batch,
//     push_spin counts every full-ring spin round;
//   * ArrivalBatch's SoA lanes and run iteration reproduce the pushed
//     stream exactly; the builder recycles storage;
//   * FlowTable::lookup_run is bit-exact with the scalar lookup loop —
//     same counters, same ticks, same eviction pattern;
//   * THE tentpole invariant: the batched paths (observe_arrivals spans,
//     MonitorEngine::ingest_batch, the threaded IngestPipeline) produce
//     byte-identical snapshots and JSONL to the scalar per-arrival paths,
//     over every scenario in the library — batching buys amortization,
//     never a different answer;
//   * a saturated kDrop pipeline surfaces its drop counters in the JSONL
//     record; a saturated kSpin pipeline loses nothing and counts spins.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "ingest/arrival_batch.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/spsc_ring.hpp"
#include "monitor/differential.hpp"
#include "monitor/engine.hpp"
#include "monitor/flow_table.hpp"
#include "util/random.hpp"

namespace reorder::ingest {
namespace {

// Small but structured multi-flow traffic for the equivalence matrix.
monitor::TrafficOptions small_traffic() {
  monitor::TrafficOptions opt;
  opt.flows = 6;
  opt.packets_per_flow = 64;
  opt.evade_displacement = 20;
  opt.flood_flows = 192;
  opt.flood_packets = 8;
  opt.flood_active = 24;
  opt.coalesce_frames = 12;
  return opt;
}

// ------------------------------------------------------------ SpscRing

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 1u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{64}.capacity(), 64u);
  EXPECT_EQ(SpscRing<int>{65}.capacity(), 128u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> ring{4};
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));  // full
  EXPECT_EQ(rejected, 99);                // untouched on refusal
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapAroundPreservesFifoOrder) {
  SpscRing<int> ring{4};
  int out = -1;
  int next_push = 0;
  int next_pop = 0;
  // Interleaved push/pop far past the capacity: the cursors wrap the
  // slot array many times and order must hold throughout.
  for (int round = 0; round < 64; ++round) {
    while (ring.try_push(int{next_push})) ++next_push;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
  while (ring.try_pop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, BatchedPushPopMoveCounts) {
  SpscRing<int> ring{8};
  std::vector<int> in{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push_n(in.data(), in.size()), 6u);
  std::vector<int> more{6, 7, 8, 9};
  EXPECT_EQ(ring.try_push_n(more.data(), more.size()), 2u);  // only 2 fit
  std::vector<int> out(16, -1);
  EXPECT_EQ(ring.try_pop_n(out.data(), 3), 3u);
  EXPECT_EQ(ring.try_pop_n(out.data() + 3, 16), 5u);  // drains the rest
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  const SpscRingCounters c = ring.counters();
  EXPECT_EQ(c.pushed, 8u);
  EXPECT_EQ(c.popped, 8u);
}

TEST(SpscRing, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<int>> ring{2};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(8)));
  std::unique_ptr<int> extra = std::make_unique<int>(9);
  EXPECT_FALSE(ring.try_push(extra));
  ASSERT_NE(extra, nullptr);  // refused push does not consume
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 7);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 8);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, DropPolicyCountsSheddedPushes) {
  SpscRing<int> ring{2};
  int v = 0;
  EXPECT_TRUE(ring.push_or_drop(v));
  v = 1;
  EXPECT_TRUE(ring.push_or_drop(v));
  v = 2;
  EXPECT_FALSE(ring.push_or_drop(v));
  EXPECT_FALSE(ring.push_or_drop(v));
  const SpscRingCounters c = ring.counters();
  EXPECT_EQ(c.pushed, 2u);
  EXPECT_EQ(c.dropped, 2u);
  EXPECT_EQ(c.spin_waits, 0u);
}

TEST(SpscRing, ThreadedStreamArrivesIntactThroughTinyRing) {
  // A 4-slot ring forces constant wrap-around and producer/consumer
  // contention; under TSAN this is the proof of the acquire/release
  // pairing. Values must arrive complete and in order.
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring{4};
  std::uint64_t sum = 0;
  std::uint64_t popped = 0;
  bool ordered = true;
  std::thread consumer{[&] {
    std::uint64_t v = 0;
    while (popped < kCount) {
      if (ring.try_pop(v)) {
        ordered = ordered && v == popped;
        sum += v;
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  }};
  std::thread producer{[&] {
    for (std::uint64_t i = 0; i < kCount; ++i) ring.push_spin(i);
  }};
  producer.join();
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(popped, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
  const SpscRingCounters c = ring.counters();
  EXPECT_EQ(c.pushed, kCount);
  EXPECT_EQ(c.popped, kCount);
  EXPECT_EQ(c.dropped, 0u);
}

TEST(SpscRing, SpinBackoffStaysLosslessUnderSaturation) {
  // push_spin's exponential backoff (pause bursts, then scheduler
  // yields) changes how the producer waits, never whether delivery is
  // lossless or ordered. A 2-slot ring against a consumer that stalls
  // every 64 pops keeps the ring saturated, so the producer rides the
  // whole backoff ladder; spin_waits must still count the contention.
  constexpr std::uint64_t kCount = 50'000;
  SpscRing<std::uint64_t> ring{2};
  std::uint64_t popped = 0;
  bool ordered = true;
  std::thread consumer{[&] {
    std::uint64_t v = 0;
    while (popped < kCount) {
      if (ring.try_pop(v)) {
        ordered = ordered && v == popped;
        ++popped;
        if ((popped & 63u) == 0) {
          const auto until =
              std::chrono::steady_clock::now() + std::chrono::microseconds{50};
          while (std::chrono::steady_clock::now() < until) {
          }
        }
      } else {
        std::this_thread::yield();
      }
    }
  }};
  for (std::uint64_t i = 0; i < kCount; ++i) ring.push_spin(i);
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(popped, kCount);
  const SpscRingCounters c = ring.counters();
  EXPECT_EQ(c.pushed, kCount);
  EXPECT_EQ(c.popped, kCount);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_GT(c.spin_waits, 0u);  // the ladder was climbed, and counted
}

// -------------------------------------------------------- ArrivalBatch

TEST(ArrivalBatch, SoaLanesAndRunIterationReproduceTheStream) {
  ArrivalBatch batch{8};
  EXPECT_TRUE(batch.empty());
  // Three maximal runs: 7,7 | 9 | 7,7,7 — a repeated flow id starts a
  // NEW run when another flow interleaves.
  const std::uint64_t flows[] = {7, 7, 9, 7, 7, 7};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(batch.push(flows[i], static_cast<std::uint32_t>(i), static_cast<std::int64_t>(100 + i)));
  }
  EXPECT_EQ(batch.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(batch.flows()[i], flows[i]);
    EXPECT_EQ(batch.send_indices()[i], i);
    EXPECT_EQ(batch.timestamps_ns()[i], static_cast<std::int64_t>(100 + i));
  }
  std::vector<ArrivalBatch::Run> runs;
  batch.for_each_run([&runs](const ArrivalBatch::Run& run) { runs.push_back(run); });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].flow, 7u);
  EXPECT_EQ(runs[0].count, 2u);
  EXPECT_EQ(runs[0].offset, 0u);
  EXPECT_EQ(runs[1].flow, 9u);
  EXPECT_EQ(runs[1].count, 1u);
  EXPECT_EQ(runs[2].flow, 7u);
  EXPECT_EQ(runs[2].count, 3u);
  EXPECT_EQ(runs[2].offset, 3u);
  EXPECT_EQ(runs[2].send[0], 3u);

  ArrivalBatch full{2};
  EXPECT_TRUE(full.push(1, 0, 0));
  EXPECT_TRUE(full.push(1, 1, 0));
  EXPECT_FALSE(full.push(1, 2, 0));  // at capacity
  EXPECT_EQ(full.size(), 2u);
}

TEST(ArrivalBatchBuilder, SignalsFullAndRecyclesStorage) {
  ArrivalBatchBuilder builder{3};
  EXPECT_FALSE(builder.push(1, 0, 0));
  EXPECT_FALSE(builder.push(1, 1, 0));
  EXPECT_TRUE(builder.push(1, 2, 0));  // just became full -> ship it
  ArrivalBatch shipped = builder.take();
  EXPECT_EQ(shipped.size(), 3u);
  EXPECT_EQ(builder.size(), 0u);  // re-armed
  shipped.clear();
  builder.recycle(std::move(shipped));
  EXPECT_FALSE(builder.push(2, 0, 0));
  ArrivalBatch next = builder.take();  // the recycled storage, refilled
  EXPECT_EQ(next.size(), 1u);
  EXPECT_EQ(next.capacity(), 3u);
  EXPECT_EQ(next.flows()[0], 2u);
}

// ---------------------------------------------- FlowTable::lookup_run

TEST(FlowTable, LookupRunIsBitExactWithScalarLookups) {
  // A tiny table under a churning key stream with same-key runs: the
  // batched lookup must reproduce the scalar loop's counters, ticks and
  // eviction pattern exactly (recency decides victims, so a tick drift
  // would show up as a different eviction sequence).
  monitor::FlowTableConfig cfg;
  cfg.slots = 8;
  cfg.ways = 2;
  cfg.seed = 42;
  monitor::FlowTable scalar{cfg};
  monitor::FlowTable batched{cfg};
  util::Rng rng{1234};
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = rng.below(24);  // 3x the slots: constant eviction
    const std::uint64_t run = 1 + rng.below(7);
    monitor::FlowTable::Ref last{};
    for (std::uint64_t i = 0; i < run; ++i) last = scalar.lookup(key);
    const monitor::FlowTable::Ref ref = batched.lookup_run(key, run);
    // The run's FIRST lookup decides slot/insert/evict; later hits don't.
    EXPECT_EQ(ref.slot, last.slot);
    ASSERT_EQ(scalar.to_json().dump(), batched.to_json().dump());
  }
  for (std::uint64_t key = 0; key < 24; ++key) {
    EXPECT_EQ(scalar.find(key), batched.find(key)) << key;
  }
}

// ------------------------------------- batched == scalar, per engine

TEST(MonitorEngine, IngestBatchMatchesScalarIngestOverEveryScenario) {
  for (const std::string& scenario : core::scenarios::names()) {
    const std::vector<monitor::MonitorArrival> arrivals =
        monitor::scenario_arrivals(scenario, 17, small_traffic());
    monitor::MonitorConfig cfg;
    cfg.table.slots = 64;  // small enough that flood actually evicts
    monitor::MonitorEngine scalar{cfg};
    monitor::MonitorEngine batched{cfg};
    for (const monitor::MonitorArrival& a : arrivals) scalar.ingest(a.flow, a.send_index);

    // Batch the stream at an unaligned grain so same-flow runs split
    // across batch boundaries (the boundary case lookup_run must get
    // right: a split run is two shorter runs).
    ArrivalBatch batch{37};
    for (const monitor::MonitorArrival& a : arrivals) {
      if (!batch.push(a.flow, a.send_index, 0)) {
        batched.ingest_batch(batch);
        batch.clear();
        batch.push(a.flow, a.send_index, 0);
      }
    }
    batched.ingest_batch(batch);

    scalar.flush();
    batched.flush();
    EXPECT_EQ(scalar.to_json().dump(), batched.to_json().dump()) << scenario;

    std::ostringstream scalar_jsonl, batched_jsonl;
    report::JsonlWriter ws{scalar_jsonl}, wb{batched_jsonl};
    scalar.emit_jsonl(ws);
    batched.emit_jsonl(wb);
    EXPECT_EQ(scalar_jsonl.str(), batched_jsonl.str()) << scenario;
  }
}

TEST(MonitorEngine, PointerLengthIngestSequenceMatchesVectorAndScalar) {
  const std::vector<std::uint32_t> seq{0, 2, 1, 4, 3, 5, 6, 8, 7};
  monitor::MonitorEngine via_span, via_vector, via_scalar;
  via_span.ingest_sequence(99, seq.data(), seq.size());
  via_vector.ingest_sequence(99, seq);
  for (const std::uint32_t s : seq) via_scalar.ingest(99, s);
  via_scalar.end_flow(99);
  EXPECT_EQ(via_span.to_json().dump(), via_scalar.to_json().dump());
  EXPECT_EQ(via_vector.to_json().dump(), via_scalar.to_json().dump());
}

TEST(SequenceEngine, BatchedRunsMatchScalarObserves) {
  const std::vector<monitor::MonitorArrival> arrivals =
      monitor::scenario_arrivals("interrupt-coalescing", 23, small_traffic());
  SequenceEngine scalar;
  SequenceEngine batched;
  for (const monitor::MonitorArrival& a : arrivals) scalar.observe(a.flow, a.send_index);
  ArrivalBatch batch{29};
  for (const monitor::MonitorArrival& a : arrivals) {
    if (!batch.push(a.flow, a.send_index, 0)) {
      batched.ingest_batch(batch);
      batch.clear();
      batch.push(a.flow, a.send_index, 0);
    }
  }
  batched.ingest_batch(batch);
  scalar.flush();
  batched.flush();
  EXPECT_EQ(scalar.arrivals(), batched.arrivals());
  EXPECT_EQ(scalar.flow_count(), batched.flow_count());
  EXPECT_EQ(scalar.to_json().dump(), batched.to_json().dump());
  // merged() folds in sorted-key order: repeated snapshots are stable.
  EXPECT_EQ(batched.to_json().dump(), batched.to_json().dump());
}

// ------------------------------------------- the pipeline, end to end

TEST(IngestPipeline, ThreadedBatchedPathBitExactWithScalarOverEveryScenario) {
  for (const std::string& scenario : core::scenarios::names()) {
    const std::vector<Arrival> arrivals =
        from_monitor(monitor::scenario_arrivals(scenario, 31, small_traffic()));

    // Scalar reference: per-arrival observe/ingest, no threads.
    SequenceEngine seq_scalar;
    monitor::MonitorEngine mon_scalar{monitor::MonitorConfig{}};
    for (const Arrival& a : arrivals) {
      seq_scalar.observe(a.flow, a.send_index);
      mon_scalar.ingest(a.flow, a.send_index);
    }
    seq_scalar.flush();
    mon_scalar.flush();

    // Batched path: producer thread -> ring -> consumer thread.
    SequenceEngine seq_batched;
    monitor::MonitorEngine mon_batched{monitor::MonitorConfig{}};
    PipelineConfig cfg;
    cfg.batch_capacity = 43;  // unaligned: runs split across batches
    cfg.ring_batches = 4;
    cfg.backpressure = Backpressure::kSpin;
    IngestPipeline pipeline{cfg, &seq_batched, &mon_batched};
    const PipelineStats& stats = pipeline.run(arrivals);
    seq_batched.flush();
    mon_batched.flush();

    EXPECT_EQ(stats.arrivals_produced, arrivals.size()) << scenario;
    EXPECT_EQ(stats.arrivals_consumed, arrivals.size()) << scenario;
    EXPECT_EQ(stats.arrivals_dropped, 0u) << scenario;
    EXPECT_EQ(seq_scalar.to_json().dump(), seq_batched.to_json().dump()) << scenario;
    EXPECT_EQ(mon_scalar.to_json().dump(), mon_batched.to_json().dump()) << scenario;

    std::ostringstream scalar_jsonl, batched_jsonl;
    report::JsonlWriter ws{scalar_jsonl}, wb{batched_jsonl};
    mon_scalar.emit_jsonl(ws);
    mon_batched.emit_jsonl(wb);
    EXPECT_EQ(scalar_jsonl.str(), batched_jsonl.str()) << scenario;
  }
}

TEST(IngestPipeline, DropPolicyShedsAndSurfacesCountersInJsonl) {
  // Force saturation deterministically: a 1-batch ring, 1-arrival
  // batches, and a consumer that stalls 1ms per batch while the producer
  // streams 1000 batches in microseconds — the ring MUST overflow.
  const std::vector<Arrival> arrivals = [&] {
    std::vector<Arrival> out;
    for (std::uint32_t i = 0; i < 1000; ++i) out.push_back(Arrival{5, i, 0});
    return out;
  }();
  SequenceEngine seq;
  PipelineConfig cfg;
  cfg.batch_capacity = 1;
  cfg.ring_batches = 1;
  cfg.backpressure = Backpressure::kDrop;
  cfg.consumer_stall = util::Duration::millis(1);
  IngestPipeline pipeline{cfg, &seq, nullptr};
  const PipelineStats& stats = pipeline.run(arrivals);

  EXPECT_EQ(stats.arrivals_produced, 1000u);
  EXPECT_GT(stats.arrivals_dropped, 0u);
  EXPECT_EQ(stats.arrivals_consumed + stats.arrivals_dropped, stats.arrivals_produced);
  EXPECT_EQ(stats.batches_consumed + stats.batches_dropped, stats.batches_produced);
  EXPECT_EQ(seq.arrivals(), stats.arrivals_consumed);

  // The drop counters land in the JSONL record (satellite: saturation is
  // visible in the artifact, not silently absorbed).
  const report::Json j = pipeline.to_json();
  ASSERT_NE(j.find("arrivals_dropped"), nullptr);
  EXPECT_EQ(j.find("arrivals_dropped")->dump(), std::to_string(stats.arrivals_dropped));
  std::ostringstream jsonl;
  report::JsonlWriter writer{jsonl};
  pipeline.emit_jsonl(writer);
  EXPECT_NE(jsonl.str().find("\"type\":\"ingest\""), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"arrivals_dropped\":" + std::to_string(stats.arrivals_dropped)),
            std::string::npos);
  EXPECT_NE(jsonl.str().find("\"ring\":"), std::string::npos);
}

TEST(IngestPipeline, SpinPolicyLosesNothingUnderTheSameSaturation) {
  std::vector<Arrival> arrivals;
  for (std::uint32_t i = 0; i < 64; ++i) arrivals.push_back(Arrival{5, i, 0});
  SequenceEngine seq;
  PipelineConfig cfg;
  cfg.batch_capacity = 1;
  cfg.ring_batches = 1;
  cfg.backpressure = Backpressure::kSpin;
  cfg.consumer_stall = util::Duration::micros(200);
  IngestPipeline pipeline{cfg, &seq, nullptr};
  const PipelineStats& stats = pipeline.run(arrivals);
  EXPECT_EQ(stats.arrivals_produced, 64u);
  EXPECT_EQ(stats.arrivals_consumed, 64u);
  EXPECT_EQ(stats.arrivals_dropped, 0u);
  EXPECT_GT(stats.spin_waits, 0u);  // the producer did wait
  EXPECT_EQ(seq.arrivals(), 64u);
}

}  // namespace
}  // namespace reorder::ingest
