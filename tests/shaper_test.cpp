// Tests for the reordering processes: the dummynet-style SwapShaper and
#include <cmath>
// the striped multi-link model.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_loop.hpp"
#include "netsim/striped_link.hpp"
#include "netsim/swap_shaper.hpp"

namespace reorder::sim {
namespace {

using util::Duration;

tcpip::Packet make_packet(std::uint64_t uid) {
  tcpip::Packet pkt;
  pkt.uid = uid;
  return pkt;
}

struct Capture {
  std::vector<std::uint64_t> order;
  PacketSink sink() {
    return [this](tcpip::Packet p) { order.push_back(p.uid); };
  }
};

// ---------- SwapShaper ----------

TEST(SwapShaper, ZeroProbabilityNeverSwaps) {
  EventLoop loop;
  SwapShaper shaper{loop, SwapShaperConfig{0.0, Duration::millis(50)}, util::Rng{1}};
  Capture cap;
  shaper.connect(cap.sink());
  for (std::uint64_t i = 1; i <= 100; ++i) shaper.accept(make_packet(i));
  loop.run();
  ASSERT_EQ(cap.order.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(cap.order[i], i + 1);
  EXPECT_EQ(shaper.swaps_completed(), 0u);
}

TEST(SwapShaper, CertainSwapExchangesAdjacentPair) {
  EventLoop loop;
  SwapShaper shaper{loop, SwapShaperConfig{1.0, Duration::millis(50)}, util::Rng{1}};
  Capture cap;
  shaper.connect(cap.sink());
  shaper.accept(make_packet(1));
  shaper.accept(make_packet(2));
  loop.run();
  ASSERT_EQ(cap.order.size(), 2u);
  EXPECT_EQ(cap.order[0], 2u);
  EXPECT_EQ(cap.order[1], 1u);
  EXPECT_EQ(shaper.swaps_completed(), 1u);
}

TEST(SwapShaper, HeldPacketReleasedOnTimeout) {
  EventLoop loop;
  SwapShaper shaper{loop, SwapShaperConfig{1.0, Duration::millis(10)}, util::Rng{1}};
  Capture cap;
  shaper.connect(cap.sink());
  shaper.accept(make_packet(1));  // held, no successor
  loop.run();
  ASSERT_EQ(cap.order.size(), 1u);
  EXPECT_EQ(cap.order[0], 1u);
  EXPECT_EQ(shaper.holds_timed_out(), 1u);
  EXPECT_EQ(loop.now().ns(), Duration::millis(10).ns()) << "released exactly at max_hold";
}

TEST(SwapShaper, PairSpacedBeyondHoldIsNotSwapped) {
  EventLoop loop;
  SwapShaper shaper{loop, SwapShaperConfig{1.0, Duration::millis(10)}, util::Rng{1}};
  Capture cap;
  shaper.connect(cap.sink());
  shaper.accept(make_packet(1));
  loop.advance(Duration::millis(20));  // hold expires at 10 ms
  shaper.accept(make_packet(2));
  loop.run();
  // Packet 2 gets held in turn; it times out and arrives later.
  ASSERT_EQ(cap.order.size(), 2u);
  EXPECT_EQ(cap.order[0], 1u);
  EXPECT_EQ(cap.order[1], 2u);
}

TEST(SwapShaper, NeverHoldsTwoPackets) {
  EventLoop loop;
  SwapShaper shaper{loop, SwapShaperConfig{1.0, Duration::millis(50)}, util::Rng{1}};
  Capture cap;
  shaper.connect(cap.sink());
  for (std::uint64_t i = 1; i <= 6; ++i) shaper.accept(make_packet(i));
  loop.run();
  // p=1.0: (2,1), (4,3), (6,5) — strict pairwise exchange.
  EXPECT_EQ(cap.order, (std::vector<std::uint64_t>{2, 1, 4, 3, 6, 5}));
}

TEST(SwapShaper, SetProbabilityAtRuntime) {
  EventLoop loop;
  SwapShaper shaper{loop, SwapShaperConfig{0.0, Duration::millis(50)}, util::Rng{1}};
  EXPECT_DOUBLE_EQ(shaper.swap_probability(), 0.0);
  shaper.set_swap_probability(0.25);
  EXPECT_DOUBLE_EQ(shaper.swap_probability(), 0.25);
}

class SwapShaperRate : public ::testing::TestWithParam<double> {};

TEST_P(SwapShaperRate, PairExchangeRateMatchesP) {
  // Send isolated pairs (spaced beyond max_hold) and count exchanges:
  // the exchange probability of a pair equals the configured p.
  const double p = GetParam();
  EventLoop loop;
  SwapShaper shaper{loop, SwapShaperConfig{p, Duration::millis(5)}, util::Rng{97}};
  Capture cap;
  shaper.connect(cap.sink());
  const int pairs = 4000;
  int exchanged = 0;
  for (int k = 0; k < pairs; ++k) {
    cap.order.clear();
    shaper.accept(make_packet(1));
    shaper.accept(make_packet(2));
    loop.run();
    ASSERT_EQ(cap.order.size(), 2u);
    if (cap.order[0] == 2) ++exchanged;
    loop.advance(Duration::millis(20));
  }
  const double rate = static_cast<double>(exchanged) / pairs;
  EXPECT_NEAR(rate, p, 3.5 * std::sqrt(p * (1 - p) / pairs) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperRates, SwapShaperRate,
                         ::testing::Values(0.01, 0.03, 0.05, 0.10, 0.15, 0.40));

// ---------- StripedLink ----------

StripedLinkConfig fast_striped() {
  StripedLinkConfig cfg;  // the Fig. 7-calibrated defaults
  cfg.lanes = 2;
  cfg.lane_bandwidth_bps = 100'000'000;
  cfg.propagation = Duration::micros(10);
  return cfg;
}

double overtake_rate(Duration gap, std::uint64_t seed, int pairs = 3000) {
  EventLoop loop;
  StripedLink link{loop, fast_striped(), util::Rng{seed}};
  Capture cap;
  link.connect(cap.sink());
  int reordered = 0;
  for (int k = 0; k < pairs; ++k) {
    cap.order.clear();
    link.accept(make_packet(1));
    if (gap.is_zero()) {
      link.accept(make_packet(2));
    } else {
      loop.schedule(gap, [&] { link.accept(make_packet(2)); });
    }
    loop.run();
    if (cap.order.size() == 2 && cap.order[0] == 2) ++reordered;
    loop.advance(Duration::millis(5));  // drain lane backlogs between pairs
  }
  return static_cast<double>(reordered) / pairs;
}

TEST(StripedLink, BackToBackPairsDoReorder) {
  EXPECT_GT(overtake_rate(Duration::nanos(0), 7), 0.02);
}

TEST(StripedLink, ReorderingDecaysWithGap) {
  const double r0 = overtake_rate(Duration::nanos(0), 11);
  const double r50 = overtake_rate(Duration::micros(50), 11);
  const double r250 = overtake_rate(Duration::micros(250), 11);
  EXPECT_GT(r0, r50) << "wider gaps must reorder less (paper Fig. 7)";
  EXPECT_GT(r50, r250 - 0.005);
  EXPECT_LT(r250, 0.02) << "at 250us the process has essentially died out";
}

TEST(StripedLink, NoContentionMeansNoReordering) {
  EventLoop loop;
  auto cfg = fast_striped();
  cfg.contention_probability = 0.0;
  StripedLink link{loop, cfg, util::Rng{3}};
  Capture cap;
  link.connect(cap.sink());
  for (int k = 0; k < 500; ++k) {
    link.accept(make_packet(1));
    link.accept(make_packet(2));
    loop.run();
    loop.advance(Duration::millis(1));
  }
  // Without backlog draws the two lanes are symmetric and equally loaded:
  // order is preserved.
  for (std::size_t i = 0; i + 1 < cap.order.size(); i += 2) {
    ASSERT_EQ(cap.order[i], 1u);
    ASSERT_EQ(cap.order[i + 1], 2u);
  }
}

TEST(StripedLink, CountsForwarded) {
  EventLoop loop;
  StripedLink link{loop, fast_striped(), util::Rng{5}};
  Capture cap;
  link.connect(cap.sink());
  for (std::uint64_t i = 0; i < 10; ++i) link.accept(make_packet(i));
  loop.run();
  EXPECT_EQ(link.forwarded(), 10u);
  EXPECT_EQ(cap.order.size(), 10u);
}

}  // namespace
}  // namespace reorder::sim
