// Tests for the streaming metrics engine: suite composition and feeding,
// admissibility gating, query equivalence with the columnar ResultStore
// under real SurveyEngine concurrency, cross-shard merging, and the JSONL
// `metrics` record schema.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/result_sink.hpp"
#include "core/result_store.hpp"
#include "core/survey_testbed.hpp"
#include "metrics/engine.hpp"
#include "metrics/pair_metrics.hpp"
#include "metrics/sequence_metrics.hpp"
#include "report/jsonl.hpp"
#include "util/random.hpp"

namespace reorder {
namespace {

using util::Duration;

core::TestRunResult make_result(util::Rng& rng, int samples, double p, bool admissible = true) {
  core::TestRunResult result;
  result.test_name = "synthetic";
  result.admissible = admissible;
  for (int i = 0; i < samples; ++i) {
    core::SampleResult s;
    s.forward = rng.bernoulli(p) ? core::Ordering::kReordered : core::Ordering::kInOrder;
    s.reverse = rng.bernoulli(p / 2) ? core::Ordering::kReordered : core::Ordering::kInOrder;
    s.started = util::TimePoint::from_ns(i * 1000);
    s.completed = util::TimePoint::from_ns(i * 1000 + 500);
    s.gap = Duration::micros(i % 5);
    result.samples.push_back(s);
  }
  result.aggregate();
  return result;
}

TEST(MetricEngine, DefaultSuiteCompositionAndAggregates) {
  util::Rng rng{7};
  metrics::MetricEngine engine;
  metrics::EngineSink sink{engine};

  const auto result = make_result(rng, 40, 0.3);
  core::publish_result(sink, "host-a", "syn", util::TimePoint::epoch(), result);

  const auto* suite = engine.suite("host-a", "syn");
  ASSERT_NE(suite, nullptr);
  EXPECT_NE(suite->find(metrics::PairRateMetric::kName), nullptr);
  EXPECT_NE(suite->find(metrics::RateSeriesMetric::kName), nullptr);
  EXPECT_NE(suite->find(metrics::TimeDomainMetric::kName), nullptr);
  EXPECT_NE(suite->find(metrics::RateEcdfMetric::kName), nullptr);
  EXPECT_NE(suite->find(metrics::LateTimeMetric::kName), nullptr);

  const auto fwd = engine.aggregate("host-a", "syn", true);
  EXPECT_EQ(fwd.in_order, result.forward.in_order);
  EXPECT_EQ(fwd.reordered, result.forward.reordered);
  EXPECT_EQ(engine.measurements("host-a", "syn"), 1u);
  EXPECT_EQ(engine.admissible_measurements("host-a", "syn"), 1u);

  // Unknown keys answer with empty defaults, like the old store.
  EXPECT_EQ(engine.aggregate("nope", "syn", true).total(), 0u);
  EXPECT_TRUE(engine.rate_series("host-a", "nope", true).empty());
  EXPECT_EQ(engine.time_domain("nope", "nope").distinct_gaps(), 0u);
}

TEST(MetricEngine, InadmissibleMeasurementsAreCountedButNotAggregated) {
  util::Rng rng{8};
  metrics::MetricEngine engine;
  metrics::EngineSink sink{engine};

  core::publish_result(sink, "h", "t", util::TimePoint::epoch(),
                       make_result(rng, 20, 0.5, /*admissible=*/false));
  EXPECT_EQ(engine.measurements("h", "t"), 1u);
  EXPECT_EQ(engine.admissible_measurements("h", "t"), 0u);
  EXPECT_EQ(engine.aggregate("h", "t", true).total(), 0u);
  EXPECT_TRUE(engine.rate_series("h", "t", true).empty());
  EXPECT_EQ(engine.time_domain("h", "t").distinct_gaps(), 0u);
}

// The store's queries are now snapshot reads of its embedded engine; a
// standalone engine attached as a sibling sink must agree exactly with
// them under real SurveyEngine concurrency (interleaved targets on one
// event loop, mid-run publication).
TEST(MetricEngine, StreamingMatchesResultStoreUnderSurveyConcurrency) {
  core::SurveyTestbedConfig cfg;
  cfg.seed = 99;
  const double swap[] = {0.0, 0.15, 0.3};
  for (int i = 0; i < 3; ++i) {
    core::SurveyTargetConfig target;
    target.name = "host-" + std::to_string(i);
    target.forward.swap_probability = swap[i];
    target.remote.behavior.immediate_ack_on_hole_fill = true;
    target.tests = {core::TestSpec{"single-connection"}, core::TestSpec{"syn"}};
    cfg.targets.push_back(std::move(target));
  }
  core::SurveyTestbed bed{std::move(cfg)};
  core::SurveyEngine survey{bed.loop()};
  bed.populate(survey);

  metrics::MetricEngine shadow;
  metrics::EngineSink shadow_sink{shadow};
  survey.add_sink(shadow_sink);

  core::TestRunConfig run;
  run.samples = 10;
  survey.run(run, 3, Duration::millis(500));

  for (std::size_t t = 0; t < bed.target_count(); ++t) {
    const std::string& name = bed.target_name(t);
    for (const char* test : {"single-connection", "syn"}) {
      for (const bool forward : {true, false}) {
        const auto via_store = survey.aggregate(name, test, forward);
        const auto via_shadow = shadow.aggregate(name, test, forward);
        EXPECT_EQ(via_store.in_order, via_shadow.in_order);
        EXPECT_EQ(via_store.reordered, via_shadow.reordered);
        EXPECT_EQ(via_store.ambiguous, via_shadow.ambiguous);
        EXPECT_EQ(via_store.lost, via_shadow.lost);
        EXPECT_EQ(survey.rate_series(name, test, forward),
                  shadow.rate_series(name, test, forward));
      }
    }
  }
  // Bit-identical snapshots: the engine embedded in the store and the
  // independently fed shadow engine render the same JSON.
  EXPECT_EQ(survey.metrics().to_json().dump(), shadow.to_json().dump());
}

TEST(MetricEngine, MergeCombinesShardsExactly) {
  util::Rng rng{21};
  metrics::MetricEngine whole;
  metrics::EngineSink whole_sink{whole};
  metrics::MetricEngine shard_a;
  metrics::EngineSink shard_a_sink{shard_a};
  metrics::MetricEngine shard_b;
  metrics::EngineSink shard_b_sink{shard_b};

  // Shard A takes host-0 plus the first half of host-1's completion
  // order; shard B takes the rest — a contiguous split per key.
  for (int m = 0; m < 8; ++m) {
    const auto r0 = make_result(rng, 15, 0.2, /*admissible=*/m % 4 != 3);
    core::publish_result(whole_sink, "host-0", "syn", util::TimePoint::epoch(), r0, m);
    core::publish_result(shard_a_sink, "host-0", "syn", util::TimePoint::epoch(), r0, m);
    const auto r1 = make_result(rng, 15, 0.05);
    core::publish_result(whole_sink, "host-1", "syn", util::TimePoint::epoch(), r1, m);
    core::publish_result(m < 4 ? shard_a_sink : shard_b_sink, "host-1", "syn",
                         util::TimePoint::epoch(), r1, m);
  }

  metrics::MetricEngine merged;
  merged.merge(shard_a);
  merged.merge(shard_b);
  EXPECT_EQ(merged.to_json().dump(), whole.to_json().dump());
  EXPECT_EQ(merged.measurements("host-0", "syn"), 8u);
  EXPECT_EQ(merged.admissible_measurements("host-0", "syn"), 6u);
}

TEST(MetricEngine, JsonlMetricsRecordsParseAndCarryTheSchema) {
  util::Rng rng{31};
  metrics::MetricEngine engine;
  metrics::EngineSink sink{engine};
  core::publish_result(sink, "host-a", "syn", util::TimePoint::epoch(),
                       make_result(rng, 25, 0.25));
  core::publish_result(sink, "host-a", "single-connection", util::TimePoint::epoch(),
                       make_result(rng, 25, 0.25), 1);

  std::ostringstream out;
  report::JsonlWriter writer{out};
  engine.emit_jsonl(writer);
  EXPECT_EQ(writer.lines_written(), 2u);

  const auto records = report::read_jsonl_text(out.str());
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    EXPECT_EQ(record.at("type").as_string(), "metrics");
    EXPECT_EQ(record.at("target").as_string(), "host-a");
    EXPECT_EQ(record.at("measurements").as_int(), 1);
    EXPECT_EQ(record.at("admissible").as_int(), 1);
    const auto& suite = record.at("metrics");
    ASSERT_TRUE(suite.is_object());
    const auto* pair_rate = suite.find("pair_rate");
    ASSERT_NE(pair_rate, nullptr);
    EXPECT_EQ(pair_rate->at("fwd").at("in_order").as_int() +
                  pair_rate->at("fwd").at("reordered").as_int(),
              25);
    EXPECT_NE(suite.find("time_domain"), nullptr);
    EXPECT_NE(suite.find("late_time"), nullptr);
  }
}

// Sequence metrics plugged in via the suite factory must accumulate from
// the engine's pair stream: every usable forward verdict is the
// degenerate length-2 sequence.
TEST(MetricEngine, FeedsPluggedSequenceMetricsFromPairStreams) {
  metrics::MetricEngine engine{[](std::string_view, std::string_view) {
    metrics::MetricSuite suite;
    suite.add(std::make_unique<metrics::SequenceExtentMetric>());
    suite.add(std::make_unique<metrics::NReorderingMetric>());
    return suite;
  }};
  metrics::EngineSink sink{engine};

  core::TestRunResult result;
  result.test_name = "t";
  const core::Ordering verdicts[] = {core::Ordering::kReordered, core::Ordering::kInOrder,
                                     core::Ordering::kInOrder, core::Ordering::kReordered,
                                     core::Ordering::kAmbiguous, core::Ordering::kLost,
                                     core::Ordering::kInOrder};
  for (const auto v : verdicts) {
    core::SampleResult s;
    s.forward = v;
    result.samples.push_back(s);
  }
  result.aggregate();
  core::publish_result(sink, "h", "t", util::TimePoint::epoch(), result);

  const auto* extent = engine.suite("h", "t")->get<metrics::SequenceExtentMetric>(
      metrics::SequenceExtentMetric::kName);
  ASSERT_NE(extent, nullptr);
  EXPECT_EQ(extent->sequences(), 5u);  // usable forward verdicts only
  EXPECT_EQ(extent->packets(), 10u);
  EXPECT_EQ(extent->reordered(), 2u);
  EXPECT_EQ(extent->max_extent(), 1u);
  const auto* n = engine.suite("h", "t")->get<metrics::NReorderingMetric>(
      metrics::NReorderingMetric::kName);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->count_for(1), 2u);
}

TEST(MetricEngine, PluggableSuiteFactory) {
  metrics::MetricEngine engine{[](std::string_view, std::string_view) {
    metrics::MetricSuite suite;
    suite.add(std::make_unique<metrics::PairRateMetric>());
    return suite;
  }};
  metrics::EngineSink sink{engine};
  util::Rng rng{5};
  core::publish_result(sink, "h", "t", util::TimePoint::epoch(), make_result(rng, 10, 0.1));
  ASSERT_NE(engine.suite("h", "t"), nullptr);
  EXPECT_EQ(engine.suite("h", "t")->size(), 1u);
  // Queries backed by absent metrics answer empty rather than throwing.
  EXPECT_TRUE(engine.rate_series("h", "t", true).empty());
  EXPECT_GT(engine.aggregate("h", "t", true).total(), 0u);
}

}  // namespace
}  // namespace reorder
