// Byte-exact wire layout tests: field offsets and values as they appear
// on the wire, so the codecs interoperate with real captures (RFC 791 /
// RFC 793 layouts), independent of the round-trip tests.
#include <gtest/gtest.h>

#include "tcpip/packet.hpp"

namespace reorder::tcpip {
namespace {

Packet reference_packet() {
  Packet pkt;
  pkt.ip.tos = 0x00;
  pkt.ip.identification = 0xabcd;
  pkt.ip.dont_fragment = true;
  pkt.ip.ttl = 64;
  pkt.ip.protocol = IpProto::kTcp;
  pkt.ip.src = Ipv4Address::from_octets(192, 168, 1, 10);
  pkt.ip.dst = Ipv4Address::from_octets(10, 20, 30, 40);
  pkt.tcp.src_port = 0x1234;
  pkt.tcp.dst_port = 80;
  pkt.tcp.seq = 0x11223344;
  pkt.tcp.ack = 0x55667788;
  pkt.tcp.flags = kAck | kPsh;
  pkt.tcp.window = 0x2000;
  pkt.payload = {0xde, 0xad};
  return pkt;
}

TEST(WireLayout, Ipv4FieldOffsets) {
  const auto w = reference_packet().to_wire();
  ASSERT_EQ(w.size(), 42u);
  EXPECT_EQ(w[0], 0x45);            // version/IHL
  EXPECT_EQ(w[2], 0x00);            // total length hi
  EXPECT_EQ(w[3], 42);              // total length lo
  EXPECT_EQ(w[4], 0xab);            // identification
  EXPECT_EQ(w[5], 0xcd);
  EXPECT_EQ(w[6] & 0x40, 0x40);     // DF bit
  EXPECT_EQ(w[8], 64);              // TTL
  EXPECT_EQ(w[9], 6);               // protocol TCP
  EXPECT_EQ(w[12], 192);            // src address
  EXPECT_EQ(w[13], 168);
  EXPECT_EQ(w[14], 1);
  EXPECT_EQ(w[15], 10);
  EXPECT_EQ(w[16], 10);             // dst address
  EXPECT_EQ(w[19], 40);
}

TEST(WireLayout, TcpFieldOffsets) {
  const auto w = reference_packet().to_wire();
  EXPECT_EQ(w[20], 0x12);  // src port
  EXPECT_EQ(w[21], 0x34);
  EXPECT_EQ(w[22], 0x00);  // dst port 80
  EXPECT_EQ(w[23], 80);
  EXPECT_EQ(w[24], 0x11);  // sequence number
  EXPECT_EQ(w[27], 0x44);
  EXPECT_EQ(w[28], 0x55);  // ack number
  EXPECT_EQ(w[31], 0x88);
  EXPECT_EQ(w[32], 0x50);  // data offset: 5 words, no options
  EXPECT_EQ(w[33], kAck | kPsh);
  EXPECT_EQ(w[34], 0x20);  // window
  EXPECT_EQ(w[35], 0x00);
  EXPECT_EQ(w[40], 0xde);  // payload
  EXPECT_EQ(w[41], 0xad);
}

TEST(WireLayout, MssOptionEncoding) {
  Packet pkt = reference_packet();
  pkt.payload.clear();
  pkt.tcp.flags = kSyn;
  pkt.tcp.mss = 1460;
  const auto w = pkt.to_wire();
  ASSERT_EQ(w.size(), 44u);
  EXPECT_EQ(w[32], 0x60);  // data offset: 6 words with the MSS option
  EXPECT_EQ(w[40], 2);     // option kind: MSS
  EXPECT_EQ(w[41], 4);     // option length
  EXPECT_EQ(w[42], 1460 >> 8);
  EXPECT_EQ(w[43], 1460 & 0xff);
}

TEST(WireLayout, IcmpEchoLayout) {
  Packet pkt;
  pkt.ip.protocol = IpProto::kIcmp;
  pkt.ip.src = Ipv4Address::from_octets(1, 1, 1, 1);
  pkt.ip.dst = Ipv4Address::from_octets(2, 2, 2, 2);
  pkt.icmp = IcmpEcho{IcmpType::kEchoRequest, 0x0102, 0x0304};
  const auto w = pkt.to_wire();
  ASSERT_EQ(w.size(), 28u);
  EXPECT_EQ(w[9], 1);      // protocol ICMP
  EXPECT_EQ(w[20], 8);     // type: echo request
  EXPECT_EQ(w[21], 0);     // code
  EXPECT_EQ(w[24], 0x01);  // identifier
  EXPECT_EQ(w[25], 0x02);
  EXPECT_EQ(w[26], 0x03);  // sequence
  EXPECT_EQ(w[27], 0x04);
}

TEST(WireLayout, HeaderChecksumsVerifyToZero) {
  // RFC 1071: summing a correct header including its checksum gives 0.
  const auto w = reference_packet().to_wire();
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < 20; i += 2) {
    sum += static_cast<std::uint32_t>((w[i] << 8) | w[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(static_cast<std::uint16_t>(~sum & 0xffff), 0);
}

}  // namespace
}  // namespace reorder::tcpip
