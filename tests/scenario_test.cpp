// Tests for the declarative scenario runner and the canonical scenario
// library.
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace reorder::core {
namespace {

using util::Duration;

TEST(Scenario, CleanPathReportsZeroEverywhere) {
  ScenarioSpec spec = scenarios::clean_path(/*seed=*/11);
  spec.run.samples = 10;
  const ScenarioResult result = run_scenario(spec);
  // The full matrix ran: all five techniques, ping-burst included.
  ASSERT_EQ(result.measurements.size(), 5u);
  EXPECT_NE(result.first("ping-burst"), nullptr);
  for (const auto& m : result.measurements) {
    EXPECT_TRUE(m.result.admissible) << m.test << ": " << m.result.note;
    EXPECT_EQ(m.result.forward.reordered, 0) << m.test;
    EXPECT_EQ(m.result.reverse.reordered, 0) << m.test;
  }
}

TEST(Scenario, SwapShaperMatrixMeasuresTheConfiguredRate) {
  ScenarioSpec spec = scenarios::swap_shaper(0.25, 0.05, /*seed=*/12);
  spec.run.samples = 120;
  const ScenarioResult result = run_scenario(spec);

  for (const char* test : {"single-connection", "dual-connection", "syn"}) {
    const auto agg = result.aggregate(test, /*forward=*/true);
    EXPECT_GT(agg.usable(), 80) << test;
    EXPECT_NEAR(agg.rate_or(0.0), 0.25, 0.12) << test;
  }
  // The ping-burst baseline sees the combined process — more than the
  // forward rate alone would explain is plausible, zero is not.
  const auto ping = result.aggregate("ping-burst", /*forward=*/true);
  EXPECT_GT(ping.usable(), 100);
  EXPECT_GT(ping.rate_or(0.0), 0.1);
  // The data transfer watches the reverse path only.
  const auto dt = result.aggregate("data-transfer", /*forward=*/false);
  EXPECT_GT(dt.usable(), 0);
}

TEST(Scenario, StripedLinksSweepDecaysWithGap) {
  ScenarioSpec spec = scenarios::striped_links(/*seed=*/13);
  spec.run.samples = 300;
  const ScenarioResult result = run_scenario(spec);
  ASSERT_EQ(result.measurements.size(), spec.gap_sweep.size());

  const auto rate_at = [&](util::Duration gap) {
    for (const auto& m : result.measurements) {
      if (m.gap == gap) return m.result.forward.rate_or(0.0);
    }
    return -1.0;
  };
  const double back_to_back = rate_at(Duration::micros(0));
  const double spaced = rate_at(Duration::micros(200));
  EXPECT_GT(back_to_back, 0.05);
  EXPECT_LT(spaced, back_to_back / 2)
      << "the §IV-C time-dependent process must die off with spacing";
}

TEST(Scenario, LoadBalancedRulesOutDualButNotSyn) {
  ScenarioSpec spec = scenarios::load_balanced(4, /*seed=*/14);
  spec.run.samples = 15;
  const ScenarioResult result = run_scenario(spec);
  const auto* dual = result.first("dual-connection");
  ASSERT_NE(dual, nullptr);
  EXPECT_FALSE(dual->result.admissible)
      << "unrelated backend IPID counters must rule the dual test out";
  const auto* syn = result.first("syn");
  ASSERT_NE(syn, nullptr);
  EXPECT_TRUE(syn->result.admissible);
  EXPECT_GT(syn->result.forward.usable(), 10);
}

TEST(Scenario, RandomIpidRemoteRulesOutDual) {
  ScenarioSpec spec = scenarios::random_ipid_remote(/*seed=*/15);
  spec.run.samples = 10;
  const ScenarioResult result = run_scenario(spec);
  EXPECT_FALSE(result.first("dual-connection")->result.admissible);
  EXPECT_TRUE(result.first("syn")->result.admissible);
  EXPECT_TRUE(result.rate_series("dual-connection", true).empty());
}

TEST(Scenario, LossyPathStillYieldsUsableSamples) {
  ScenarioSpec spec = scenarios::lossy(0.03, /*seed=*/16);
  spec.run.samples = 40;
  const ScenarioResult result = run_scenario(spec);
  for (const char* test : {"single-connection", "dual-connection", "syn"}) {
    const auto* m = result.first(test);
    ASSERT_NE(m, nullptr) << test;
    if (!m->result.admissible) continue;  // an unlucky connect under loss
    EXPECT_GT(m->result.forward.usable() + m->result.forward.lost, 0) << test;
  }
}

TEST(Scenario, RoundsAndGapsMultiplyOut) {
  ScenarioSpec spec = scenarios::swap_shaper(0.1, 0.0, /*seed=*/17);
  spec.tests = {TestSpec{"syn"}};
  spec.rounds = 3;
  spec.gap_sweep = {Duration::micros(0), Duration::micros(100)};
  spec.run.samples = 10;
  const ScenarioResult result = run_scenario(spec);
  ASSERT_EQ(result.measurements.size(), 6u);  // 2 gaps x 3 rounds x 1 test
  EXPECT_EQ(result.rate_series("syn", true).size(), 6u);
}

TEST(Scenario, ByNameKnowsEveryCanonicalScenario) {
  for (const auto& name : scenarios::names()) {
    const ScenarioSpec spec = scenarios::by_name(name, /*seed=*/3);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.tests.empty()) << name;
  }
  EXPECT_THROW(scenarios::by_name("no-such-scenario"), std::invalid_argument);
}

TEST(Scenario, StopOnInadmissibleAbortsTheSweep) {
  ScenarioSpec spec = scenarios::random_ipid_remote(/*seed=*/18);
  spec.stop_on_inadmissible = true;
  spec.run.samples = 10;
  const ScenarioResult result = run_scenario(spec);
  // The dual test is first in the matrix and inadmissible: the sweep must
  // record it and stop before spending the rest of the grid.
  ASSERT_EQ(result.measurements.size(), 1u);
  EXPECT_EQ(result.measurements[0].test, "dual-connection");
  EXPECT_FALSE(result.measurements[0].result.admissible);
}

TEST(Scenario, EmptyGapSweepIsAnError) {
  ScenarioSpec spec = scenarios::clean_path();
  spec.gap_sweep.clear();
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

}  // namespace
}  // namespace reorder::core
