# Empty dependencies file for gap_behavior_test.
# This may be replaced when dependencies are built.
