file(REMOVE_RECURSE
  "CMakeFiles/gap_behavior_test.dir/tests/gap_behavior_test.cpp.o"
  "CMakeFiles/gap_behavior_test.dir/tests/gap_behavior_test.cpp.o.d"
  "gap_behavior_test"
  "gap_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
