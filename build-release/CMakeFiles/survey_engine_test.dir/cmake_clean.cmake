file(REMOVE_RECURSE
  "CMakeFiles/survey_engine_test.dir/tests/survey_engine_test.cpp.o"
  "CMakeFiles/survey_engine_test.dir/tests/survey_engine_test.cpp.o.d"
  "survey_engine_test"
  "survey_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
