# Empty dependencies file for survey_engine_test.
# This may be replaced when dependencies are built.
