file(REMOVE_RECURSE
  "CMakeFiles/ipid_validator_test.dir/tests/ipid_validator_test.cpp.o"
  "CMakeFiles/ipid_validator_test.dir/tests/ipid_validator_test.cpp.o.d"
  "ipid_validator_test"
  "ipid_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipid_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
