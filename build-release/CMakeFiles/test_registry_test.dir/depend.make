# Empty dependencies file for test_registry_test.
# This may be replaced when dependencies are built.
