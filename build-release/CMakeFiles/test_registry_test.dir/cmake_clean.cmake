file(REMOVE_RECURSE
  "CMakeFiles/test_registry_test.dir/tests/test_registry_test.cpp.o"
  "CMakeFiles/test_registry_test.dir/tests/test_registry_test.cpp.o.d"
  "test_registry_test"
  "test_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
