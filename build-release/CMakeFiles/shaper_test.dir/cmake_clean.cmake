file(REMOVE_RECURSE
  "CMakeFiles/shaper_test.dir/tests/shaper_test.cpp.o"
  "CMakeFiles/shaper_test.dir/tests/shaper_test.cpp.o.d"
  "shaper_test"
  "shaper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shaper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
