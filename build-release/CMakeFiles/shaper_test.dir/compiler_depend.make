# Empty compiler generated dependencies file for shaper_test.
# This may be replaced when dependencies are built.
