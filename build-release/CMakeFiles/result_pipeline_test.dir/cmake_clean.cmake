file(REMOVE_RECURSE
  "CMakeFiles/result_pipeline_test.dir/tests/result_pipeline_test.cpp.o"
  "CMakeFiles/result_pipeline_test.dir/tests/result_pipeline_test.cpp.o.d"
  "result_pipeline_test"
  "result_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
