# Empty dependencies file for result_pipeline_test.
# This may be replaced when dependencies are built.
