file(REMOVE_RECURSE
  "libreorder.a"
)
