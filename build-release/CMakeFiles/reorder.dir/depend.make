# Empty dependencies file for reorder.
# This may be replaced when dependencies are built.
