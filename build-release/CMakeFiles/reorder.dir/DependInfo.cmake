
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/data_transfer_test.cpp" "CMakeFiles/reorder.dir/src/core/data_transfer_test.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/data_transfer_test.cpp.o.d"
  "/root/repo/src/core/dual_connection_test.cpp" "CMakeFiles/reorder.dir/src/core/dual_connection_test.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/dual_connection_test.cpp.o.d"
  "/root/repo/src/core/ground_truth.cpp" "CMakeFiles/reorder.dir/src/core/ground_truth.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/ground_truth.cpp.o.d"
  "/root/repo/src/core/ipid_validator.cpp" "CMakeFiles/reorder.dir/src/core/ipid_validator.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/ipid_validator.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "CMakeFiles/reorder.dir/src/core/metrics.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/metrics.cpp.o.d"
  "/root/repo/src/core/path_builder.cpp" "CMakeFiles/reorder.dir/src/core/path_builder.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/path_builder.cpp.o.d"
  "/root/repo/src/core/ping_burst_adapter.cpp" "CMakeFiles/reorder.dir/src/core/ping_burst_adapter.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/ping_burst_adapter.cpp.o.d"
  "/root/repo/src/core/ping_burst_test.cpp" "CMakeFiles/reorder.dir/src/core/ping_burst_test.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/ping_burst_test.cpp.o.d"
  "/root/repo/src/core/result_sink.cpp" "CMakeFiles/reorder.dir/src/core/result_sink.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/result_sink.cpp.o.d"
  "/root/repo/src/core/result_store.cpp" "CMakeFiles/reorder.dir/src/core/result_store.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/result_store.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "CMakeFiles/reorder.dir/src/core/scenario.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/scenario.cpp.o.d"
  "/root/repo/src/core/single_connection_test.cpp" "CMakeFiles/reorder.dir/src/core/single_connection_test.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/single_connection_test.cpp.o.d"
  "/root/repo/src/core/survey_engine.cpp" "CMakeFiles/reorder.dir/src/core/survey_engine.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/survey_engine.cpp.o.d"
  "/root/repo/src/core/survey_testbed.cpp" "CMakeFiles/reorder.dir/src/core/survey_testbed.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/survey_testbed.cpp.o.d"
  "/root/repo/src/core/syn_test.cpp" "CMakeFiles/reorder.dir/src/core/syn_test.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/syn_test.cpp.o.d"
  "/root/repo/src/core/test_registry.cpp" "CMakeFiles/reorder.dir/src/core/test_registry.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/test_registry.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "CMakeFiles/reorder.dir/src/core/testbed.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/testbed.cpp.o.d"
  "/root/repo/src/core/verdict.cpp" "CMakeFiles/reorder.dir/src/core/verdict.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/core/verdict.cpp.o.d"
  "/root/repo/src/netsim/event_loop.cpp" "CMakeFiles/reorder.dir/src/netsim/event_loop.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/netsim/event_loop.cpp.o.d"
  "/root/repo/src/netsim/link.cpp" "CMakeFiles/reorder.dir/src/netsim/link.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/netsim/link.cpp.o.d"
  "/root/repo/src/netsim/load_balancer.cpp" "CMakeFiles/reorder.dir/src/netsim/load_balancer.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/netsim/load_balancer.cpp.o.d"
  "/root/repo/src/netsim/striped_link.cpp" "CMakeFiles/reorder.dir/src/netsim/striped_link.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/netsim/striped_link.cpp.o.d"
  "/root/repo/src/netsim/swap_shaper.cpp" "CMakeFiles/reorder.dir/src/netsim/swap_shaper.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/netsim/swap_shaper.cpp.o.d"
  "/root/repo/src/probe/packet_factory.cpp" "CMakeFiles/reorder.dir/src/probe/packet_factory.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/probe/packet_factory.cpp.o.d"
  "/root/repo/src/probe/probe_host.cpp" "CMakeFiles/reorder.dir/src/probe/probe_host.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/probe/probe_host.cpp.o.d"
  "/root/repo/src/probe/prober.cpp" "CMakeFiles/reorder.dir/src/probe/prober.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/probe/prober.cpp.o.d"
  "/root/repo/src/report/builders.cpp" "CMakeFiles/reorder.dir/src/report/builders.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/report/builders.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "CMakeFiles/reorder.dir/src/report/csv.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/report/csv.cpp.o.d"
  "/root/repo/src/report/json.cpp" "CMakeFiles/reorder.dir/src/report/json.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/report/json.cpp.o.d"
  "/root/repo/src/report/jsonl.cpp" "CMakeFiles/reorder.dir/src/report/jsonl.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/report/jsonl.cpp.o.d"
  "/root/repo/src/report/sinks.cpp" "CMakeFiles/reorder.dir/src/report/sinks.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/report/sinks.cpp.o.d"
  "/root/repo/src/report/table.cpp" "CMakeFiles/reorder.dir/src/report/table.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/report/table.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "CMakeFiles/reorder.dir/src/stats/ecdf.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/stats/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "CMakeFiles/reorder.dir/src/stats/histogram.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/pair_difference.cpp" "CMakeFiles/reorder.dir/src/stats/pair_difference.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/stats/pair_difference.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "CMakeFiles/reorder.dir/src/stats/special.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/stats/special.cpp.o.d"
  "/root/repo/src/stats/students_t.cpp" "CMakeFiles/reorder.dir/src/stats/students_t.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/stats/students_t.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "CMakeFiles/reorder.dir/src/stats/summary.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/stats/summary.cpp.o.d"
  "/root/repo/src/tcpip/fragment.cpp" "CMakeFiles/reorder.dir/src/tcpip/fragment.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/fragment.cpp.o.d"
  "/root/repo/src/tcpip/host.cpp" "CMakeFiles/reorder.dir/src/tcpip/host.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/host.cpp.o.d"
  "/root/repo/src/tcpip/icmp.cpp" "CMakeFiles/reorder.dir/src/tcpip/icmp.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/icmp.cpp.o.d"
  "/root/repo/src/tcpip/ipid.cpp" "CMakeFiles/reorder.dir/src/tcpip/ipid.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/ipid.cpp.o.d"
  "/root/repo/src/tcpip/ipv4.cpp" "CMakeFiles/reorder.dir/src/tcpip/ipv4.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/ipv4.cpp.o.d"
  "/root/repo/src/tcpip/packet.cpp" "CMakeFiles/reorder.dir/src/tcpip/packet.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/packet.cpp.o.d"
  "/root/repo/src/tcpip/tcp_endpoint.cpp" "CMakeFiles/reorder.dir/src/tcpip/tcp_endpoint.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/tcp_endpoint.cpp.o.d"
  "/root/repo/src/tcpip/tcp_header.cpp" "CMakeFiles/reorder.dir/src/tcpip/tcp_header.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/tcpip/tcp_header.cpp.o.d"
  "/root/repo/src/trace/analyzer.cpp" "CMakeFiles/reorder.dir/src/trace/analyzer.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/trace/analyzer.cpp.o.d"
  "/root/repo/src/trace/pcap_writer.cpp" "CMakeFiles/reorder.dir/src/trace/pcap_writer.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/trace/pcap_writer.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/reorder.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/util/buffer_pool.cpp" "CMakeFiles/reorder.dir/src/util/buffer_pool.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/util/buffer_pool.cpp.o.d"
  "/root/repo/src/util/checksum.cpp" "CMakeFiles/reorder.dir/src/util/checksum.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/util/checksum.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "CMakeFiles/reorder.dir/src/util/flags.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/util/flags.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/reorder.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/random.cpp" "CMakeFiles/reorder.dir/src/util/random.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/util/random.cpp.o.d"
  "/root/repo/src/util/time.cpp" "CMakeFiles/reorder.dir/src/util/time.cpp.o" "gcc" "CMakeFiles/reorder.dir/src/util/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
