# Empty dependencies file for related_work_bennett.
# This may be replaced when dependencies are built.
