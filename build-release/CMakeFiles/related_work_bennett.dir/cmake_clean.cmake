file(REMOVE_RECURSE
  "CMakeFiles/related_work_bennett.dir/bench/related_work_bennett.cpp.o"
  "CMakeFiles/related_work_bennett.dir/bench/related_work_bennett.cpp.o.d"
  "related_work_bennett"
  "related_work_bennett.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_bennett.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
