file(REMOVE_RECURSE
  "CMakeFiles/load_balancer_test.dir/tests/load_balancer_test.cpp.o"
  "CMakeFiles/load_balancer_test.dir/tests/load_balancer_test.cpp.o.d"
  "load_balancer_test"
  "load_balancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
