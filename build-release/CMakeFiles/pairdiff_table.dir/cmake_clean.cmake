file(REMOVE_RECURSE
  "CMakeFiles/pairdiff_table.dir/bench/pairdiff_table.cpp.o"
  "CMakeFiles/pairdiff_table.dir/bench/pairdiff_table.cpp.o.d"
  "pairdiff_table"
  "pairdiff_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairdiff_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
