# Empty compiler generated dependencies file for pairdiff_table.
# This may be replaced when dependencies are built.
