# Empty dependencies file for ipid_survey.
# This may be replaced when dependencies are built.
