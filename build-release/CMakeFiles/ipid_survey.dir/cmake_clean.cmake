file(REMOVE_RECURSE
  "CMakeFiles/ipid_survey.dir/bench/ipid_survey.cpp.o"
  "CMakeFiles/ipid_survey.dir/bench/ipid_survey.cpp.o.d"
  "ipid_survey"
  "ipid_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipid_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
