# Empty dependencies file for fig7_spacing.
# This may be replaced when dependencies are built.
