file(REMOVE_RECURSE
  "CMakeFiles/fig7_spacing.dir/bench/fig7_spacing.cpp.o"
  "CMakeFiles/fig7_spacing.dir/bench/fig7_spacing.cpp.o.d"
  "fig7_spacing"
  "fig7_spacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
