file(REMOVE_RECURSE
  "CMakeFiles/single_connection_deep_test.dir/tests/single_connection_deep_test.cpp.o"
  "CMakeFiles/single_connection_deep_test.dir/tests/single_connection_deep_test.cpp.o.d"
  "single_connection_deep_test"
  "single_connection_deep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_connection_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
