file(REMOVE_RECURSE
  "CMakeFiles/icmp_fragment_test.dir/tests/icmp_fragment_test.cpp.o"
  "CMakeFiles/icmp_fragment_test.dir/tests/icmp_fragment_test.cpp.o.d"
  "icmp_fragment_test"
  "icmp_fragment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icmp_fragment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
