# Empty compiler generated dependencies file for icmp_fragment_test.
# This may be replaced when dependencies are built.
