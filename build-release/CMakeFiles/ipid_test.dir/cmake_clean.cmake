file(REMOVE_RECURSE
  "CMakeFiles/ipid_test.dir/tests/ipid_test.cpp.o"
  "CMakeFiles/ipid_test.dir/tests/ipid_test.cpp.o.d"
  "ipid_test"
  "ipid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
