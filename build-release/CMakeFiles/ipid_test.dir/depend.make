# Empty dependencies file for ipid_test.
# This may be replaced when dependencies are built.
