# Empty dependencies file for inplace_function_test.
# This may be replaced when dependencies are built.
