file(REMOVE_RECURSE
  "CMakeFiles/inplace_function_test.dir/tests/inplace_function_test.cpp.o"
  "CMakeFiles/inplace_function_test.dir/tests/inplace_function_test.cpp.o.d"
  "inplace_function_test"
  "inplace_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inplace_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
