file(REMOVE_RECURSE
  "CMakeFiles/ground_truth_test.dir/tests/ground_truth_test.cpp.o"
  "CMakeFiles/ground_truth_test.dir/tests/ground_truth_test.cpp.o.d"
  "ground_truth_test"
  "ground_truth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ground_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
