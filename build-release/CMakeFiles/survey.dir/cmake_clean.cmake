file(REMOVE_RECURSE
  "CMakeFiles/survey.dir/examples/survey.cpp.o"
  "CMakeFiles/survey.dir/examples/survey.cpp.o.d"
  "survey"
  "survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
