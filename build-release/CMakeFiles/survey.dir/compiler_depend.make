# Empty compiler generated dependencies file for survey.
# This may be replaced when dependencies are built.
