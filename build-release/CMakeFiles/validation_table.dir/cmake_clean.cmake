file(REMOVE_RECURSE
  "CMakeFiles/validation_table.dir/bench/validation_table.cpp.o"
  "CMakeFiles/validation_table.dir/bench/validation_table.cpp.o.d"
  "validation_table"
  "validation_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
