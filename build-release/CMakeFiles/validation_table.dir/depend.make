# Empty dependencies file for validation_table.
# This may be replaced when dependencies are built.
