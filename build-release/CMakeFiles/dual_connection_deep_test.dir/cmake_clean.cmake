file(REMOVE_RECURSE
  "CMakeFiles/dual_connection_deep_test.dir/tests/dual_connection_deep_test.cpp.o"
  "CMakeFiles/dual_connection_deep_test.dir/tests/dual_connection_deep_test.cpp.o.d"
  "dual_connection_deep_test"
  "dual_connection_deep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_connection_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
