# Empty compiler generated dependencies file for dual_connection_deep_test.
# This may be replaced when dependencies are built.
