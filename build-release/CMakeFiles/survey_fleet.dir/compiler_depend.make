# Empty compiler generated dependencies file for survey_fleet.
# This may be replaced when dependencies are built.
