file(REMOVE_RECURSE
  "CMakeFiles/survey_fleet.dir/examples/survey_fleet.cpp.o"
  "CMakeFiles/survey_fleet.dir/examples/survey_fleet.cpp.o.d"
  "survey_fleet"
  "survey_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
