file(REMOVE_RECURSE
  "CMakeFiles/loadbalancer_demo.dir/examples/loadbalancer_demo.cpp.o"
  "CMakeFiles/loadbalancer_demo.dir/examples/loadbalancer_demo.cpp.o.d"
  "loadbalancer_demo"
  "loadbalancer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadbalancer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
