# Empty compiler generated dependencies file for loadbalancer_demo.
# This may be replaced when dependencies are built.
