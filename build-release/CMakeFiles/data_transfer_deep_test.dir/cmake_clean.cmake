file(REMOVE_RECURSE
  "CMakeFiles/data_transfer_deep_test.dir/tests/data_transfer_deep_test.cpp.o"
  "CMakeFiles/data_transfer_deep_test.dir/tests/data_transfer_deep_test.cpp.o.d"
  "data_transfer_deep_test"
  "data_transfer_deep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_transfer_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
