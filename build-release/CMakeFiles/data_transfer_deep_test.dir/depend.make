# Empty dependencies file for data_transfer_deep_test.
# This may be replaced when dependencies are built.
