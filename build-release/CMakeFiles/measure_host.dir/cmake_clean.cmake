file(REMOVE_RECURSE
  "CMakeFiles/measure_host.dir/examples/measure_host.cpp.o"
  "CMakeFiles/measure_host.dir/examples/measure_host.cpp.o.d"
  "measure_host"
  "measure_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
