# Empty dependencies file for measure_host.
# This may be replaced when dependencies are built.
