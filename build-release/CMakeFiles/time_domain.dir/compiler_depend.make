# Empty compiler generated dependencies file for time_domain.
# This may be replaced when dependencies are built.
