file(REMOVE_RECURSE
  "CMakeFiles/time_domain.dir/examples/time_domain.cpp.o"
  "CMakeFiles/time_domain.dir/examples/time_domain.cpp.o.d"
  "time_domain"
  "time_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
