file(REMOVE_RECURSE
  "CMakeFiles/fig6_timeseries.dir/bench/fig6_timeseries.cpp.o"
  "CMakeFiles/fig6_timeseries.dir/bench/fig6_timeseries.cpp.o.d"
  "fig6_timeseries"
  "fig6_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
