file(REMOVE_RECURSE
  "CMakeFiles/related_work_paxson.dir/bench/related_work_paxson.cpp.o"
  "CMakeFiles/related_work_paxson.dir/bench/related_work_paxson.cpp.o.d"
  "related_work_paxson"
  "related_work_paxson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_paxson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
