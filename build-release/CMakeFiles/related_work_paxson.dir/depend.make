# Empty dependencies file for related_work_paxson.
# This may be replaced when dependencies are built.
