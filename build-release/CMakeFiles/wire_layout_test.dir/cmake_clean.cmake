file(REMOVE_RECURSE
  "CMakeFiles/wire_layout_test.dir/tests/wire_layout_test.cpp.o"
  "CMakeFiles/wire_layout_test.dir/tests/wire_layout_test.cpp.o.d"
  "wire_layout_test"
  "wire_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
