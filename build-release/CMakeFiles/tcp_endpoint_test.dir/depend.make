# Empty dependencies file for tcp_endpoint_test.
# This may be replaced when dependencies are built.
