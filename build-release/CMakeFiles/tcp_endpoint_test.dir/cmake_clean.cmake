file(REMOVE_RECURSE
  "CMakeFiles/tcp_endpoint_test.dir/tests/tcp_endpoint_test.cpp.o"
  "CMakeFiles/tcp_endpoint_test.dir/tests/tcp_endpoint_test.cpp.o.d"
  "tcp_endpoint_test"
  "tcp_endpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_endpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
