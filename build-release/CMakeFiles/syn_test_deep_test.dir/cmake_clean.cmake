file(REMOVE_RECURSE
  "CMakeFiles/syn_test_deep_test.dir/tests/syn_test_deep_test.cpp.o"
  "CMakeFiles/syn_test_deep_test.dir/tests/syn_test_deep_test.cpp.o.d"
  "syn_test_deep_test"
  "syn_test_deep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syn_test_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
