# Empty compiler generated dependencies file for syn_test_deep_test.
# This may be replaced when dependencies are built.
