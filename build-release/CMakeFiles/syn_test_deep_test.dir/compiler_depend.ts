# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for syn_test_deep_test.
