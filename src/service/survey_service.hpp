// The resident survey service — the paper's finite batch survey turned
// into an always-on daemon.
//
// ShardedSurveyEngine runs one closed fleet to completion: partition,
// execute, join, merge. SurveyService stays up instead. Targets are
// ADMITTED continuously — one at a time or in batches, from any thread —
// and each admission is assigned a GLOBAL IDENTITY INDEX. Identity is
// everything: util::ShardSeeder derives the target's whole stochastic
// world (host RNG, IPID origin, path tags) from (service seed, global
// index), exactly as the sharded batch planner does, so a target's
// results are byte-identical no matter WHEN it was admitted, WHICH
// worker ran it, or what else was in flight — and therefore identical to
// the one-shot ShardedSurveyEngine::run() over the same fleet (the
// placement/admission-order invariance property tests pin this).
//
// Scheduling is a work-stealing deque pool (util::WorkStealingPool):
// admissions round-robin onto per-worker deques purely as a load hint,
// and idle workers steal from random victims. The batch runtime's fixed
// round-robin PLACEMENT is gone — only identity is round-robin-derived,
// placement is free — which is what lets a fleet of wildly uneven
// targets keep every core busy. Steal counters surface in snapshots.
//
// Live view: snapshot() folds the per-worker MetricEngine accumulators
// through the metrics merge() contract into a fleet-wide engine MID-RUN,
// without stopping admission — the per-slot locks are held only while
// one slot's accumulator is copied. drain() waits for quiescence;
// stop() additionally retires the workers. After drain, emit_jsonl()
// produces the same canonical JSONL stream an equivalent batch run
// emits, byte for byte.
//
// Fault tolerance composes from PR 8's pieces: every completed target is
// recorded into a core::SurveyCheckpoint (saved atomically by a
// background thread every checkpoint_interval), restore() adopts a
// prior run's completed targets so only the missing ones re-run, and
// core::ShardRetryPolicy retries transient per-target failures with
// backoff — exhaustion degrades the survey (full-fleet accounting)
// instead of aborting it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/sharded_survey.hpp"
#include "core/survey_engine.hpp"
#include "core/survey_testbed.hpp"
#include "metrics/engine.hpp"
#include "report/jsonl.hpp"
#include "util/shard_seeder.hpp"
#include "util/work_stealing_pool.hpp"

namespace reorder::service {

/// Completion notification (config.on_target_complete), fired on the
/// worker thread that finished the target, outside service locks.
struct TargetDone {
  std::size_t index{0};
  std::string_view name;
  /// Measurements this target contributed.
  std::size_t measurements{0};
  /// The target's final virtual instant.
  util::TimePoint virtual_end{};
  /// Attempts consumed (1 = first try; 0 = adopted from a checkpoint).
  int attempts{1};
};

struct SurveyServiceConfig {
  /// Survey seed: with the same seed, rounds and run config, a service
  /// fleet reproduces a ShardedSurveyEngine fleet bit-exactly.
  std::uint64_t seed{1};
  tcpip::Ipv4Address probe_addr{tcpip::Ipv4Address::from_octets(10, 0, 0, 1)};
  /// Worker threads; 0 picks hardware concurrency.
  std::size_t workers{0};
  /// Work stealing on (default) or the per-worker FIFO fallback. Results
  /// are identical either way — only load balance differs.
  bool steal{true};
  /// The survey plan every admitted target runs: fixed at construction,
  /// like the (run, rounds, between) arguments of a batch run().
  core::TestRunConfig run{};
  int rounds{1};
  util::Duration between{util::Duration::seconds(1)};
  /// Per-world engine options (retain_samples is derived from
  /// retain_results; faults passes the injector through to every world).
  core::SurveyEngine::Options engine{};
  /// Per-world metric suite factory; null uses metrics::default_suite.
  metrics::SuiteFactory suite_factory{};
  /// Transient-failure retry policy per target (see ShardRetryPolicy).
  core::ShardRetryPolicy retry{};
  /// When non-empty, completed targets are durably recorded here: a
  /// core::SurveyCheckpoint file (shard index == global target index,
  /// header.shards == 0 as the service marker), rewritten atomically by
  /// a background thread whenever completions accumulated.
  std::string checkpoint_path{};
  /// Background checkpoint cadence (wall clock).
  std::chrono::milliseconds checkpoint_interval{200};
  /// Keep per-measurement logs (with sample payloads) for canonical
  /// emission. Turn off for huge fleets: metrics, counters and
  /// snapshots stay exact, but emit_jsonl()/measurements() are
  /// unavailable — the 1M-target smoke runs this way.
  bool retain_results{true};
  /// Completion callback (worker thread, outside locks). Keep it cheap.
  std::function<void(const TargetDone&)> on_target_complete{};
};

class SurveyService {
 public:
  explicit SurveyService(SurveyServiceConfig config);
  /// stop()s if the caller did not (plan errors are swallowed — call
  /// drain()/stop() yourself to observe them).
  ~SurveyService();

  SurveyService(const SurveyService&) = delete;
  SurveyService& operator=(const SurveyService&) = delete;

  // -------------------------------------------------------- admission
  /// Admits one target at the next free global index and returns that
  /// index. Unset identity fields (name, address, seeds) are pinned from
  /// the index exactly as ShardedSurveyEngine::shard_config pins them.
  /// Thread-safe; throws std::invalid_argument on duplicate name or
  /// address (fleet-wide), std::logic_error after stop().
  std::size_t admit(core::SurveyTargetConfig target);
  /// Admits one target AT a caller-chosen global index — the admission-
  /// order-invariant form: a fleet admitted in any order with explicit
  /// indices produces byte-identical output. Throws std::invalid_argument
  /// when the index is already taken.
  std::size_t admit(core::SurveyTargetConfig target, std::size_t global_index);
  /// Batched admission at consecutive next-free indices.
  std::vector<std::size_t> admit(std::vector<core::SurveyTargetConfig> batch);

  /// Adopts a prior run's completed targets from a checkpoint: when a
  /// matching global index is admitted, its recorded result is folded in
  /// instead of re-running the world. Must be called before the first
  /// admission; throws std::invalid_argument when the checkpoint header
  /// disagrees with this service's plan (marker, rounds, seed).
  void restore(const core::SurveyCheckpoint& checkpoint);

  // -------------------------------------------------------- live view
  std::size_t admitted() const { return admitted_.load(); }
  std::size_t completed() const { return completed_.load(); }
  std::size_t failed() const { return failed_.load(); }
  /// Admitted but not yet completed or failed (momentary).
  std::size_t in_flight() const;

  /// A live fleet-wide view taken MID-RUN without stopping admission:
  /// per-worker accumulator slots are folded one at a time through the
  /// metrics merge() contract (each slot's lock held only while that
  /// slot is copied), so workers are never globally stalled. Counters
  /// are per-slot-consistent, not a global barrier.
  struct Snapshot {
    std::size_t admitted{0};
    std::size_t completed{0};
    std::size_t failed{0};
    std::size_t in_flight{0};
    std::size_t measurements{0};
    /// Max final virtual instant over completed targets.
    util::TimePoint virtual_end{};
    std::size_t workers{0};
    /// Scheduler counters (see WorkStealingPool::Stats).
    std::uint64_t jobs_executed{0};
    std::uint64_t steals{0};
    std::uint64_t steal_attempts{0};
    bool degraded{false};
    /// The merged metric engine (deep copy; snapshot-owned).
    metrics::MetricEngine metrics;

    /// The {"type":"service_snapshot",...} record (counters only — the
    /// merged metrics stay queryable on the snapshot object; emit them
    /// separately via metrics.emit_jsonl when wanted).
    report::Json to_json() const;
  };
  Snapshot snapshot() const;

  /// Scheduler counters alone (no metric fold — always cheap). After
  /// stop() this returns the final counters the retired pool reported.
  util::WorkStealingPool::Stats scheduler_stats() const {
    return pool_ ? pool_->stats() : final_stats_;
  }

  // ---------------------------------------------------------- shutdown
  /// Blocks until every target admitted so far completed or failed, then
  /// durably saves the checkpoint (when enabled) and rethrows the first
  /// plan error (std::invalid_argument — a typo'd survey must not
  /// degrade silently). Admission stays open afterwards: a resident
  /// caller may keep admitting and drain again.
  void drain();
  /// drain(), then retires the workers and the checkpoint thread.
  /// Further admissions throw; results stay readable.
  void stop();

  // ------------------------------------- merged results (quiescent API)
  // Callable once drained (throw std::logic_error while targets are in
  // flight). Outputs are canonical — identical to what the equivalent
  // one-shot ShardedSurveyEngine::run() produces.
  /// The merged completion log in canonical (target, test, at) order.
  /// Needs retain_results.
  const std::vector<core::Measurement>& measurements();
  /// The merged metric engine.
  const metrics::MetricEngine& metrics();
  /// The merged survey_end marker (participants, fleet-wide virtual end,
  /// degraded accounting).
  const core::SurveyEvent& survey_end();

  /// The canonical merged JSONL stream: survey_begin, every measurement's
  /// samples + measurement records with canonically renumbered indices,
  /// survey_end, one metrics record per key in canonical order, plus the
  /// participation manifest when degraded — byte-identical to
  /// ShardedSurveyEngine::emit_jsonl over the same fleet + seed. Needs
  /// retain_results.
  void emit_jsonl(report::JsonlWriter& out);

  // ------------------------------------------------ failure accounting
  bool degraded();
  /// Global indices of targets that exhausted every attempt, ascending.
  const std::vector<std::size_t>& failed_target_indices();
  /// Last-attempt failure message per failed target (parallel to
  /// failed_target_indices()).
  const std::vector<std::string>& failure_messages();
  /// Attempts consumed by target `index` (0 = adopted from checkpoint).
  int attempts(std::size_t index) const;
  /// Every admitted target in global-index order with whether its
  /// measurements are present — the degraded-run reconciliation manifest.
  std::vector<std::pair<std::string, bool>> participation();

 private:
  struct AdmittedTarget {
    std::string name;
    /// The pinned world description; released after completion (the
    /// resident service would otherwise hold every retired target's
    /// config forever).
    core::SurveyTargetConfig config;
    enum class State { kPending, kDone, kFailed } state{State::kPending};
    int attempts{0};
    std::string error;
  };

  struct CompletedTarget {
    std::size_t index{0};
    std::vector<core::Measurement> log;
    core::SurveyEvent end{};
  };

  /// One per worker: completions land in slot (index % slots), so a
  /// snapshot never locks more than one worker's accumulator at a time.
  struct Slot {
    mutable std::mutex mu;
    metrics::MetricEngine merged;
    std::vector<CompletedTarget> done;
    std::size_t measurements{0};
    std::size_t participants{0};
    util::TimePoint max_end{};
  };

  struct RestoredEntry {
    core::ShardRunResult result;
    int attempts{1};
  };

  std::size_t admit_locked(core::SurveyTargetConfig target,
                           std::optional<std::size_t> explicit_index,
                           std::optional<RestoredEntry>& adopt);
  void submit_target(std::size_t index);
  void run_target(std::size_t index);
  core::ShardRunResult run_world(std::size_t index, const core::SurveyTargetConfig& cfg) const;
  void complete_target(std::size_t index, core::ShardRunResult result, int attempts,
                       bool decrement_pending);
  void fail_target(std::size_t index, int attempts, std::string error, bool plan_error);
  /// Rebuilds the merged results cache; caller holds admission_mu_ and
  /// has verified pending_ == 0.
  void finalize_locked();
  /// Locks, requires quiescence, finalizes.
  std::unique_lock<std::mutex> finalized();
  void checkpoint_loop();
  void save_checkpoint_locked();

  SurveyServiceConfig config_;
  util::ShardSeeder seeder_;
  std::unique_ptr<util::WorkStealingPool> pool_;
  /// Scheduler identity/counters preserved across stop() (pool retired).
  std::size_t final_workers_{0};
  util::WorkStealingPool::Stats final_stats_{};
  std::vector<std::unique_ptr<Slot>> slots_;

  // ---- admission state (admission_mu_)
  mutable std::mutex admission_mu_;
  std::condition_variable done_cv_;
  std::map<std::size_t, AdmittedTarget> targets_;
  std::set<std::string> names_;
  std::set<std::uint32_t> addresses_;
  std::map<std::size_t, RestoredEntry> restored_;
  std::size_t next_index_{0};
  std::size_t pending_{0};
  bool stopped_{false};
  std::exception_ptr plan_error_;

  // ---- lock-free counters for the live view
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> failed_{0};

  // ---- merged results cache (admission_mu_; valid while !results_dirty_)
  bool results_dirty_{true};
  std::vector<core::Measurement> merged_log_;
  metrics::MetricEngine merged_;
  core::SurveyEvent merged_end_{};
  std::vector<std::size_t> failed_indices_;
  std::vector<std::string> failure_messages_;

  // ---- checkpoint state (checkpoint_mu_)
  std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  core::SurveyCheckpoint checkpoint_;
  bool checkpoint_dirty_{false};
  bool checkpoint_stop_{false};
  std::thread checkpoint_thread_;
};

}  // namespace reorder::service
