#include "service/survey_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "report/sinks.hpp"
#include "util/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace reorder::service {

namespace {

/// The canonical merged-log order — identical to the sharded runtime's:
/// (target, test, at) totally orders a survey's measurements.
bool canonical_less(const core::Measurement& a, const core::Measurement& b) {
  return std::tie(a.target, a.test, a.at) < std::tie(b.target, b.test, b.at);
}

class EndCapture final : public core::ResultSink {
 public:
  void on_survey_end(const core::SurveyEvent& e) override { end = e; }
  core::SurveyEvent end{};
};

}  // namespace

SurveyService::SurveyService(SurveyServiceConfig config)
    : config_{std::move(config)}, seeder_{config_.seed} {
  util::WorkStealingPool::Options pool_options;
  pool_options.threads = config_.workers;
  pool_options.steal = config_.steal;
  pool_ = std::make_unique<util::WorkStealingPool>(pool_options);
  slots_.reserve(pool_->size());
  for (std::size_t i = 0; i < pool_->size(); ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  if (!config_.checkpoint_path.empty()) {
    checkpoint_thread_ = std::thread{[this] { checkpoint_loop(); }};
  }
}

SurveyService::~SurveyService() {
  try {
    stop();
  } catch (...) {
    // A plan error surfacing in a destructor has nowhere to go; callers
    // that care drain()/stop() explicitly and observe it there.
  }
}

// ----------------------------------------------------------- admission

std::size_t SurveyService::admit(core::SurveyTargetConfig target) {
  std::optional<RestoredEntry> adopt;
  std::size_t index;
  {
    std::lock_guard lock{admission_mu_};
    index = admit_locked(std::move(target), std::nullopt, adopt);
  }
  if (adopt.has_value()) {
    complete_target(index, std::move(adopt->result), adopt->attempts, false);
  } else {
    submit_target(index);
  }
  return index;
}

std::size_t SurveyService::admit(core::SurveyTargetConfig target, std::size_t global_index) {
  std::optional<RestoredEntry> adopt;
  std::size_t index;
  {
    std::lock_guard lock{admission_mu_};
    index = admit_locked(std::move(target), global_index, adopt);
  }
  if (adopt.has_value()) {
    complete_target(index, std::move(adopt->result), adopt->attempts, false);
  } else {
    submit_target(index);
  }
  return index;
}

std::vector<std::size_t> SurveyService::admit(std::vector<core::SurveyTargetConfig> batch) {
  std::vector<std::size_t> indices;
  indices.reserve(batch.size());
  std::vector<std::pair<std::size_t, RestoredEntry>> adopted;
  std::vector<std::size_t> fresh;
  {
    std::lock_guard lock{admission_mu_};
    for (auto& target : batch) {
      std::optional<RestoredEntry> adopt;
      const std::size_t index = admit_locked(std::move(target), std::nullopt, adopt);
      indices.push_back(index);
      if (adopt.has_value()) {
        adopted.emplace_back(index, std::move(*adopt));
      } else {
        fresh.push_back(index);
      }
    }
  }
  for (auto& [index, entry] : adopted) {
    complete_target(index, std::move(entry.result), entry.attempts, false);
  }
  for (const std::size_t index : fresh) submit_target(index);
  return indices;
}

std::size_t SurveyService::admit_locked(core::SurveyTargetConfig target,
                                        std::optional<std::size_t> explicit_index,
                                        std::optional<RestoredEntry>& adopt) {
  if (stopped_) {
    throw std::logic_error{"SurveyService: admit after stop()"};
  }
  const std::size_t index = explicit_index.value_or(next_index_);
  if (targets_.count(index) != 0) {
    throw std::invalid_argument{"SurveyService: global index " + std::to_string(index) +
                                " already admitted"};
  }
  // Pin the target's identity to its global index exactly as the sharded
  // planner does (ShardedSurveyEngine::shard_config): default name and
  // address from the index, the whole stochastic identity from the
  // seeder; explicit values a caller already set are theirs to keep.
  if (target.name.empty()) target.name = core::default_target_name(index);
  if (target.address == tcpip::Ipv4Address{}) {
    target.address = core::default_target_address(index);
  }
  const util::TargetSeeds seeds = seeder_.target(index);
  if (!target.host_seed) target.host_seed = seeds.host_seed;
  if (!target.ipid_initial) target.ipid_initial = seeds.ipid_initial;
  if (!target.forward_path_tag) target.forward_path_tag = seeds.forward_tag;
  if (!target.reverse_path_tag) target.reverse_path_tag = seeds.reverse_tag;

  // Fleet-wide identity collisions reject at admission — same rationale
  // as the batch engine's constructor check: results are keyed by name,
  // so a duplicate would silently pool two streams.
  if (!names_.insert(target.name).second) {
    throw std::invalid_argument{"SurveyService: duplicate target name '" + target.name + "'"};
  }
  if (!addresses_.insert(target.address.value()).second) {
    names_.erase(target.name);
    throw std::invalid_argument{"SurveyService: duplicate target address " +
                                target.address.to_string()};
  }

  next_index_ = std::max(next_index_, index + 1);
  AdmittedTarget admitted;
  admitted.name = target.name;
  admitted.config = std::move(target);
  targets_.emplace(index, std::move(admitted));
  admitted_.fetch_add(1);
  results_dirty_ = true;

  if (auto it = restored_.find(index); it != restored_.end()) {
    adopt = std::move(it->second);
    restored_.erase(it);
    return index;
  }
  ++pending_;
  return index;
}

void SurveyService::submit_target(std::size_t index) {
  // The future is deliberately dropped: completion flows through the
  // slot/accounting path, and every exception class is caught inside
  // run_target (plan errors are parked for drain() to rethrow).
  pool_->submit([this, index] { run_target(index); });
}

void SurveyService::restore(const core::SurveyCheckpoint& checkpoint) {
  std::lock_guard lock{admission_mu_};
  if (!targets_.empty()) {
    throw std::logic_error{"SurveyService: restore() must precede the first admission"};
  }
  if (checkpoint.header().has_value()) {
    const core::SurveyCheckpoint::Header& h = *checkpoint.header();
    // shards == 0 is the service marker: per-target records, not
    // per-shard — a batch engine's checkpoint is not adoptable here.
    if (h.shards != 0 || h.rounds != config_.rounds || h.seed != config_.seed) {
      throw std::invalid_argument{
          "SurveyService::restore: checkpoint header does not match this service plan"};
    }
  }
  for (const std::size_t index : checkpoint.completed_shards()) {
    restored_.insert_or_assign(
        index, RestoredEntry{checkpoint.restore_shard(index), checkpoint.attempts(index)});
  }
}

// ----------------------------------------------------------- execution

core::ShardRunResult SurveyService::run_world(std::size_t index,
                                              const core::SurveyTargetConfig& cfg) const {
  // One admitted target is one complete world of its own — the sharded
  // runtime with shards == fleet size. Per-target independence (the
  // concurrent-vs-sequential equivalence property) makes this world's
  // results identical to the target's results in any co-resident shard.
  core::SurveyTestbedConfig world;
  world.seed = config_.seed;
  world.probe_addr = config_.probe_addr;
  world.targets.push_back(cfg);

  core::SurveyTestbed bed{std::move(world)};
  core::SurveyEngine::Options options = config_.engine;
  options.retain_samples = config_.retain_results;
  core::SurveyEngine engine{bed.loop(), options};
  bed.populate(engine);

  metrics::MetricEngine custom{config_.suite_factory
                                   ? config_.suite_factory
                                   : metrics::SuiteFactory{&metrics::default_suite}};
  metrics::EngineSink custom_sink{custom};
  if (config_.suite_factory) engine.add_sink(custom_sink);

  EndCapture end;
  engine.add_sink(end);

  engine.run(config_.run, config_.rounds, config_.between);

  core::ShardRunResult out;
  out.shard = index;
  out.log = engine.release_measurements();
  out.metrics.merge(config_.suite_factory ? custom : engine.metrics());
  out.end = end.end;
  return out;
}

void SurveyService::run_target(std::size_t index) {
  core::SurveyTargetConfig cfg;
  {
    std::lock_guard lock{admission_mu_};
    cfg = targets_.at(index).config;
  }

  // The same retry discipline as the batch runtime, with the global
  // target index in the shard slot of the fault-site convention.
  util::FaultInjector* faults = config_.engine.faults;
  const std::string run_site = "shard/" + std::to_string(index) + "/run";
  const std::string abort_site = "shard/" + std::to_string(index) + "/abort";
  const int max_attempts = std::max(1, config_.retry.max_attempts);
  std::chrono::duration<double, std::milli> backoff = config_.retry.initial_backoff;

  std::string error;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    bool transient = true;
    try {
      if (faults != nullptr) faults->maybe_throw(run_site, util::FaultInjector::Mode::kThrow);
      core::ShardRunResult result = run_world(index, cfg);
      if (faults != nullptr) {
        faults->maybe_throw(abort_site, util::FaultInjector::Mode::kShardAbort);
      }
      complete_target(index, std::move(result), attempt, true);
      return;
    } catch (const util::InjectedFault& fault) {
      transient = fault.transient();
      error = fault.what();
    } catch (const std::invalid_argument& e) {
      // A broken survey PLAN — it would fail identically on every attempt.
      // The batch engine fails fast out of run(); the resident service has
      // no run() to unwind, so the error is parked and drain() rethrows.
      fail_target(index, attempt, e.what(), true);
      return;
    } catch (const std::exception& e) {
      error = e.what();
    }
    if (!transient || attempt == max_attempts) {
      fail_target(index, attempt, std::move(error), false);
      return;
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * config_.retry.multiplier,
                       std::chrono::duration<double, std::milli>{config_.retry.max_backoff});
  }
}

void SurveyService::complete_target(std::size_t index, core::ShardRunResult result, int attempts,
                                    bool decrement_pending) {
  // Durability point first, mirroring the batch runtime: the checkpoint
  // record exists before the result feeds any live view.
  if (!config_.checkpoint_path.empty()) {
    std::lock_guard lock{checkpoint_mu_};
    checkpoint_.record_shard(result, attempts);
    checkpoint_dirty_ = true;
  }

  const std::size_t measurements = result.log.size();
  const util::TimePoint virtual_end = result.end.at;
  Slot& slot = *slots_[index % slots_.size()];
  {
    std::lock_guard lock{slot.mu};
    slot.merged.merge(result.metrics);
    slot.measurements += measurements;
    slot.participants += result.end.targets;
    slot.max_end = std::max(slot.max_end, result.end.at);
    if (config_.retain_results) {
      slot.done.push_back(CompletedTarget{index, std::move(result.log), result.end});
    }
  }

  std::string name;
  {
    std::lock_guard lock{admission_mu_};
    AdmittedTarget& target = targets_.at(index);
    target.state = AdmittedTarget::State::kDone;
    // Adopted results carry attempts = 0 in the live accounting (same as
    // the batch engine's restored shards); the checkpoint keeps the real
    // history recorded above.
    target.attempts = decrement_pending ? attempts : 0;
    target.config = core::SurveyTargetConfig{};  // retire the world description
    name = target.name;
    results_dirty_ = true;
    completed_.fetch_add(1);
  }

  if (config_.on_target_complete) {
    TargetDone done;
    done.index = index;
    done.name = name;
    done.measurements = measurements;
    done.virtual_end = virtual_end;
    done.attempts = decrement_pending ? attempts : 0;
    config_.on_target_complete(done);
  }

  // The target counts as drained only now — state folded, counters
  // published, callback finished — so drain() returning means every
  // completion side effect has fully landed.
  if (decrement_pending) {
    std::lock_guard lock{admission_mu_};
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void SurveyService::fail_target(std::size_t index, int attempts, std::string error,
                                bool plan_error) {
  std::lock_guard lock{admission_mu_};
  AdmittedTarget& target = targets_.at(index);
  target.state = AdmittedTarget::State::kFailed;
  target.attempts = attempts;
  target.error = std::move(error);
  target.config = core::SurveyTargetConfig{};
  results_dirty_ = true;
  if (plan_error && !plan_error_) {
    plan_error_ = std::make_exception_ptr(std::invalid_argument{target.error});
  }
  failed_.fetch_add(1);
  if (--pending_ == 0) done_cv_.notify_all();
}

// ------------------------------------------------------------ live view

std::size_t SurveyService::in_flight() const {
  // Retired counters first: both only grow, and admitted >= completed +
  // failed is invariant under the admission lock, so this read order
  // keeps the difference non-negative for lock-free readers.
  const std::size_t retired = completed_.load() + failed_.load();
  const std::size_t admitted = admitted_.load();
  return admitted > retired ? admitted - retired : 0;
}

SurveyService::Snapshot SurveyService::snapshot() const {
  Snapshot snap;
  snap.completed = completed_.load();
  snap.failed = failed_.load();
  snap.admitted = admitted_.load();  // after the retired counters; see in_flight()
  snap.in_flight = snap.admitted - std::min(snap.admitted, snap.completed + snap.failed);
  snap.degraded = snap.failed > 0;
  snap.workers = pool_ ? pool_->size() : final_workers_;
  // Fold one slot at a time: a worker completing into slot K waits only
  // while K is copied; every other slot stays writable throughout.
  for (const auto& slot : slots_) {
    std::lock_guard lock{slot->mu};
    snap.metrics.merge(slot->merged);
    snap.measurements += slot->measurements;
    snap.virtual_end = std::max(snap.virtual_end, slot->max_end);
  }
  const util::WorkStealingPool::Stats stats = pool_ ? pool_->stats() : final_stats_;
  snap.jobs_executed = stats.executed;
  snap.steals = stats.stolen;
  snap.steal_attempts = stats.steal_attempts;
  return snap;
}

report::Json SurveyService::Snapshot::to_json() const {
  report::Json j = report::Json::object();
  j.set("type", "service_snapshot");
  j.set("admitted", report::Json::u64(admitted));
  j.set("completed", report::Json::u64(completed));
  j.set("failed", report::Json::u64(failed));
  j.set("in_flight", report::Json::u64(in_flight));
  j.set("measurements", report::Json::u64(measurements));
  j.set("virtual_end_ns", report::Json::u64(static_cast<std::uint64_t>(virtual_end.ns())));
  j.set("workers", report::Json::u64(workers));
  j.set("jobs_executed", report::Json::u64(jobs_executed));
  j.set("steals", report::Json::u64(steals));
  j.set("steal_attempts", report::Json::u64(steal_attempts));
  j.set("metric_keys", report::Json::u64(metrics.key_count()));
  j.set("degraded", degraded);
  return j;
}

// ------------------------------------------------------------- shutdown

void SurveyService::drain() {
  std::exception_ptr plan_error;
  {
    std::unique_lock lock{admission_mu_};
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    plan_error = plan_error_;
    plan_error_ = nullptr;
  }
  if (!config_.checkpoint_path.empty()) {
    std::lock_guard lock{checkpoint_mu_};
    save_checkpoint_locked();
    checkpoint_dirty_ = false;
  }
  if (plan_error) std::rethrow_exception(plan_error);
}

void SurveyService::stop() {
  {
    std::lock_guard lock{admission_mu_};
    stopped_ = true;
  }
  // Park the drain result until the machinery is down: stop() must retire
  // the workers even when the plan was broken.
  std::exception_ptr plan_error;
  try {
    drain();
  } catch (...) {
    plan_error = std::current_exception();
  }
  if (checkpoint_thread_.joinable()) {
    {
      std::lock_guard lock{checkpoint_mu_};
      checkpoint_stop_ = true;
    }
    checkpoint_cv_.notify_all();
    checkpoint_thread_.join();
  }
  if (pool_) {
    // Join BEFORE caching stats: a worker bumps its executed counter
    // after the job returns, and drain() unblocks inside the job, so
    // stats read pre-join can lag by the in-flight increment.
    pool_->shutdown();
    final_workers_ = pool_->size();
    final_stats_ = pool_->stats();
    pool_.reset();
  }
  if (plan_error) std::rethrow_exception(plan_error);
}

// ------------------------------------------------------ merged results

std::unique_lock<std::mutex> SurveyService::finalized() {
  std::unique_lock lock{admission_mu_};
  if (pending_ != 0) {
    throw std::logic_error{"SurveyService: results are available once drained"};
  }
  finalize_locked();
  return lock;
}

void SurveyService::finalize_locked() {
  if (!results_dirty_) return;
  merged_log_.clear();
  merged_ = metrics::MetricEngine{};
  merged_end_ = core::SurveyEvent{};
  failed_indices_.clear();
  failure_messages_.clear();

  std::size_t total_measurements = 0;
  std::size_t retained = 0;
  for (const auto& slot : slots_) {
    std::lock_guard lock{slot->mu};
    merged_.merge(slot->merged);
    merged_end_.targets += slot->participants;
    merged_end_.at = std::max(merged_end_.at, slot->max_end);
    total_measurements += slot->measurements;
    for (const CompletedTarget& done : slot->done) retained += done.log.size();
  }
  // The merged log is rebuilt by COPY, not move: the slots stay the
  // owners so admissions after this drain fold incrementally and the next
  // finalize starts from the same complete data.
  merged_log_.reserve(retained);
  for (const auto& slot : slots_) {
    std::lock_guard lock{slot->mu};
    for (const CompletedTarget& done : slot->done) {
      merged_log_.insert(merged_log_.end(), done.log.begin(), done.log.end());
    }
  }
  std::sort(merged_log_.begin(), merged_log_.end(), canonical_less);
  merged_end_.rounds = config_.rounds;
  merged_end_.measurements = total_measurements;

  // Failure accounting in global-index order, exactly the batch shape
  // (with shard == target here, failed_shards counts failed targets).
  for (const auto& [index, target] : targets_) {
    if (target.state != AdmittedTarget::State::kFailed) continue;
    merged_end_.degraded = true;
    ++merged_end_.failed_shards;
    merged_end_.failed_targets.push_back(target.name);
    failed_indices_.push_back(index);
    failure_messages_.push_back(target.error);
  }
  results_dirty_ = false;
}

const std::vector<core::Measurement>& SurveyService::measurements() {
  auto lock = finalized();
  if (!config_.retain_results) {
    throw std::logic_error{"SurveyService: measurements() needs retain_results"};
  }
  return merged_log_;
}

const metrics::MetricEngine& SurveyService::metrics() {
  auto lock = finalized();
  return merged_;
}

const core::SurveyEvent& SurveyService::survey_end() {
  auto lock = finalized();
  return merged_end_;
}

void SurveyService::emit_jsonl(report::JsonlWriter& out) {
  auto lock = finalized();
  if (!config_.retain_results) {
    throw std::logic_error{"SurveyService: emit_jsonl() needs retain_results"};
  }
  report::JsonlResultSink sink{out};
  sink.on_survey_begin(
      core::SurveyEvent{merged_end_.targets, config_.rounds, 0, util::TimePoint::epoch()});
  for (std::size_t i = 0; i < merged_log_.size(); ++i) {
    const core::Measurement& m = merged_log_[i];
    core::publish_result(sink, m.target, m.test, m.at, m.result, i);
  }
  sink.on_survey_end(merged_end_);
  merged_.emit_jsonl(out, metrics::MetricEngine::EmitOrder::kCanonical);
  if (merged_end_.degraded) {
    report::Json manifest = report::Json::object();
    manifest.set("type", "participation");
    report::Json targets = report::Json::array();
    for (const auto& [index, target] : targets_) {
      report::Json t = report::Json::object();
      t.set("target", target.name);
      t.set("participated", target.state != AdmittedTarget::State::kFailed);
      targets.push(std::move(t));
    }
    manifest.set("targets", std::move(targets));
    out.write(manifest);
  }
}

// ------------------------------------------------- failure accounting

bool SurveyService::degraded() {
  auto lock = finalized();
  return merged_end_.degraded;
}

const std::vector<std::size_t>& SurveyService::failed_target_indices() {
  auto lock = finalized();
  return failed_indices_;
}

const std::vector<std::string>& SurveyService::failure_messages() {
  auto lock = finalized();
  return failure_messages_;
}

int SurveyService::attempts(std::size_t index) const {
  std::lock_guard lock{admission_mu_};
  return targets_.at(index).attempts;
}

std::vector<std::pair<std::string, bool>> SurveyService::participation() {
  auto lock = finalized();
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(targets_.size());
  for (const auto& [index, target] : targets_) {
    out.emplace_back(target.name, target.state != AdmittedTarget::State::kFailed);
  }
  return out;
}

// ----------------------------------------------------------- checkpoint

void SurveyService::checkpoint_loop() {
  std::unique_lock lock{checkpoint_mu_};
  for (;;) {
    checkpoint_cv_.wait_for(lock, config_.checkpoint_interval,
                            [&] { return checkpoint_stop_; });
    if (checkpoint_dirty_) {
      save_checkpoint_locked();
      checkpoint_dirty_ = false;
    }
    if (checkpoint_stop_) return;
  }
}

void SurveyService::save_checkpoint_locked() {
  // Header written fresh every save: `targets` tracks admissions, and
  // shards == 0 marks the per-target (service) record granularity.
  checkpoint_.set_header(core::SurveyCheckpoint::Header{
      0, admitted_.load(), config_.rounds, config_.seed});
  checkpoint_.save(config_.checkpoint_path);
}

}  // namespace reorder::service
