// The always-on monitor front end: a fixed-budget FlowTable keyed by
// 64-bit flow ids, one bounded DetectorSuite per slot, and the same
// snapshot / merge / JSONL discipline as metrics::MetricEngine.
//
// Two ingest surfaces share the per-slot detectors:
//
//   * raw arrivals — ingest(flow, send_index) / ingest_sequence(), the
//     shape trace::data_arrival_sequence() produces from a packet capture
//     (send indices in arrival order, one flow per (src,dst) port pair);
//   * the ResultSink event stream — MonitorSink/observe_measurement feed
//     each admissible measurement's usable forward verdicts as degenerate
//     length-2 flows keyed by hash(target, test), exactly the pair stream
//     MetricEngine replays into its sequence metrics.
//
// Eviction is where the bounded table meets the bounded detectors: the
// outgoing flow's open state is closed into the SLOT's suite totals (an
// integer fold, no allocation) and the slot re-opens for the new key.
// Because every total is an order-independent integer sum, the engine's
// snapshot — closed totals folded over all slots plus previously merged
// shards — is a pure function of the per-flow event sets, and merging
// per-shard engines is bit-identical to one engine having seen every
// flow (provided no shard evicted, i.e. the table is provisioned for its
// shard's live flows; eviction under churn is measured, not merged).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/result_sink.hpp"
#include "ingest/arrival_batch.hpp"
#include "monitor/detector.hpp"
#include "monitor/flow_table.hpp"
#include "report/jsonl.hpp"

namespace reorder::monitor {

struct MonitorConfig {
  FlowTableConfig table{};
  /// Total per-flow detector budget handed to default_suite().
  std::size_t budget_bytes{256};
  /// Replaces default_suite(budget_bytes) when set.
  DetectorFactory factory{};
};

class MonitorEngine {
 public:
  explicit MonitorEngine(MonitorConfig config = {});

  MonitorEngine(MonitorEngine&&) = default;
  MonitorEngine& operator=(MonitorEngine&&) = default;

  // ------------------------------------------------------- raw arrivals
  /// One arrival: packet with per-flow send index `send_index` observed
  /// on flow `flow`. Returns true when any detector flagged it.
  bool ingest(std::uint64_t flow, std::uint32_t send_index);
  /// A run of `count` consecutive arrivals of one flow — the line-rate
  /// batched path: one flow-table lookup (tick-advanced as if per
  /// arrival, see FlowTable::lookup_run) and one virtual fan-in per
  /// detector. Bit-exact with `count` scalar ingest() calls in every
  /// observable (snapshots, JSONL, table counters); per-arrival flag
  /// verdicts are not reported on this path.
  void ingest_run(std::uint64_t flow, const std::uint32_t* send_indices, std::size_t count);
  /// Splits an ingest::ArrivalBatch into maximal same-flow runs and
  /// feeds each through ingest_run() — what the IngestPipeline's
  /// consumer thread drains into.
  void ingest_batch(const ingest::ArrivalBatch& batch);
  /// A whole arrival sequence (trace::data_arrival_sequence shape); the
  /// flow is closed afterwards. The pointer+length form is the copy-free
  /// view the batch path and trace replay feed; the vector overload is a
  /// thin forwarder.
  void ingest_sequence(std::uint64_t flow, const std::uint32_t* arrival, std::size_t count);
  void ingest_sequence(std::uint64_t flow, const std::vector<std::uint32_t>& arrival);
  /// Closes `flow`'s open state if it is resident (the slot stays bound
  /// to the key; subsequent arrivals start a fresh sequence).
  void end_flow(std::uint64_t flow);
  /// Closes every live flow's open state.
  void flush();

  // --------------------------------------------------- ResultSink front
  /// Folds one completed measurement: admissible measurements replay
  /// their usable forward verdicts as degenerate pair flows keyed by
  /// flow_key(target, test) — the MetricEngine gating, monitor-side.
  void observe_measurement(const core::MeasurementEvent& e);

  /// Deterministic flow id for a (target, test) stream.
  static std::uint64_t flow_key(std::string_view target, std::string_view test);

  // -------------------------------------------------------------- shape
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t measurements() const { return measurements_; }
  std::uint64_t admissible() const { return admissible_; }
  /// Live flows here plus in engines folded via merge().
  std::uint64_t live_flows() const { return table_.live_flows() + folded_live_; }
  const FlowTable& table() const { return table_; }
  std::size_t budget_bytes() const { return config_.budget_bytes; }
  /// Per-slot detector footprint actually provisioned.
  std::size_t flow_state_bytes() const { return flow_state_bytes_; }

  // ------------------------------------------------------ snapshot/merge
  /// The closed fold of everything observed: previously merged shards
  /// plus an end_flow()'d copy of every slot suite. Pure in the event
  /// sets (slot order cannot leak: totals are integer sums).
  DetectorSuite snapshot() const;
  /// Folds another engine's snapshot and counters into this one. Suite
  /// compositions (and budgets) must match; throws otherwise.
  void merge(const MonitorEngine& other);

  /// {"arrivals":..,"flows":..,"live":..,"budget_bytes":..,
  ///  "flow_state_bytes":..,"measurements":..,"admissible":..,
  ///  "table":{...},"detectors":{...}}
  report::Json to_json() const;
  /// One {"type":"monitor",...} JSONL record of to_json().
  void emit_jsonl(report::JsonlWriter& out) const;

 private:
  MonitorConfig config_;
  DetectorFactory factory_;
  FlowTable table_;
  std::vector<DetectorSuite> suites_;  ///< one per table slot
  DetectorSuite closed_;               ///< accumulators folded in via merge()
  std::size_t flow_state_bytes_{0};
  std::uint64_t arrivals_{0};
  std::uint64_t measurements_{0};
  std::uint64_t admissible_{0};
  std::uint64_t folded_live_{0};
};

/// The ResultSink adapter: attach to run_scenario / SurveyEngine replay
/// (or feed via publish_result) to stream measurements into a monitor.
class MonitorSink final : public core::ResultSink {
 public:
  explicit MonitorSink(MonitorEngine& engine) : engine_{engine} {}

  void on_measurement(const core::MeasurementEvent& e) override {
    engine_.observe_measurement(e);
  }

 private:
  MonitorEngine& engine_;
};

}  // namespace reorder::monitor
