#include "monitor/differential.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/scenario.hpp"
#include "monitor/detectors.hpp"
#include "util/random.hpp"
#include "util/shard_seeder.hpp"

namespace reorder::monitor {

namespace {

// ------------------------------------------------- per-flow traffic models
// Each returns one flow's send indices in arrival order. Parameters track
// the core::scenarios defaults (swap 0.15, loss 0.02) so the stream is the
// monitor's-eye view of the same processes the simulated topologies run.

std::vector<std::uint32_t> in_order(std::size_t n) {
  std::vector<std::uint32_t> arr(n);
  std::iota(arr.begin(), arr.end(), 0u);
  return arr;
}

std::vector<std::uint32_t> adjacent_swapped(std::size_t n, double p, util::Rng& rng) {
  std::vector<std::uint32_t> arr = in_order(n);
  for (std::size_t i = 0; i + 1 < arr.size();) {
    if (rng.bernoulli(p)) {
      std::swap(arr[i], arr[i + 1]);
      i += 2;
    } else {
      ++i;
    }
  }
  return arr;
}

std::vector<std::uint32_t> striped(std::size_t n, util::Rng& rng) {
  // Per-packet lane jitter larger than the inter-packet gap: nearby
  // packets overtake, distant ones never do (the §IV-C decay).
  std::vector<std::int64_t> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = static_cast<std::int64_t>(i) * 3 + static_cast<std::int64_t>(rng.below(9));
  }
  std::vector<std::uint32_t> arr = in_order(n);
  std::stable_sort(arr.begin(), arr.end(),
                   [&t](std::uint32_t a, std::uint32_t b) { return t[a] < t[b]; });
  return arr;
}

std::vector<std::uint32_t> lossy_in_order(std::size_t n, double loss, util::Rng& rng) {
  std::vector<std::uint32_t> arr;
  arr.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.bernoulli(loss)) arr.push_back(static_cast<std::uint32_t>(i));
  }
  return arr;
}

std::vector<std::uint32_t> evade(std::size_t n, std::uint32_t displacement) {
  // One packet per block jumps `displacement` arrivals ahead of its send
  // order. Every in-order packet it overtook is RFC 4737-late, but only
  // the first K of them still share a window with the early packet — a
  // K-entry sketch silently under-counts by (displacement - K) per block
  // once the witness has been evicted.
  std::vector<std::uint32_t> arr = in_order(n);
  const std::size_t step = static_cast<std::size_t>(displacement) + 64;
  for (std::size_t p = 13; p + displacement + 1 < arr.size(); p += step) {
    const std::uint32_t early = arr[p + displacement];
    arr.erase(arr.begin() + static_cast<std::ptrdiff_t>(p + displacement));
    arr.insert(arr.begin() + static_cast<std::ptrdiff_t>(p), early);
  }
  return arr;
}

std::uint64_t flow_id(std::uint64_t seed, std::size_t index) {
  return util::splitmix64(seed ^ (0x5eedf10aull + index * 0x9e3779b97f4a7c15ull));
}

/// Round-robin interleave: one packet per live flow per turn — the
/// arrival pattern an always-on tap sees from concurrent flows.
std::vector<MonitorArrival> interleave(const std::vector<std::uint64_t>& ids,
                                       const std::vector<std::vector<std::uint32_t>>& seqs) {
  std::vector<MonitorArrival> out;
  std::size_t total = 0;
  for (const auto& s : seqs) total += s.size();
  out.reserve(total);
  std::vector<std::size_t> next(seqs.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t f = 0; f < seqs.size(); ++f) {
      if (next[f] >= seqs[f].size()) continue;
      out.push_back(MonitorArrival{ids[f], seqs[f][next[f]++]});
      any = true;
    }
  }
  return out;
}

std::vector<MonitorArrival> flood(std::uint64_t seed, const TrafficOptions& opt) {
  util::Rng rng{util::splitmix64(seed ^ 0xf100dull)};
  struct Flow {
    std::uint64_t id;
    std::vector<std::uint32_t> seq;
    std::size_t next{0};
  };
  std::size_t spawned = 0;
  const auto fresh = [&] {
    Flow f;
    f.id = flow_id(seed ^ 0xf100dull, spawned++);
    f.seq = adjacent_swapped(std::max<std::size_t>(2, opt.flood_packets), 0.2, rng);
    return f;
  };
  std::vector<Flow> active;
  const std::size_t active_n = std::max<std::size_t>(1, std::min(opt.flood_active, opt.flood_flows));
  active.reserve(active_n);
  for (std::size_t i = 0; i < active_n; ++i) active.push_back(fresh());
  std::vector<MonitorArrival> out;
  out.reserve(opt.flood_flows * opt.flood_packets);
  // One packet per flow per visit: a flow's consecutive packets are
  // separated by ~active_n other flows' arrivals, so any table smaller
  // than the active set churns on every single packet.
  while (!active.empty()) {
    for (std::size_t i = 0; i < active.size();) {
      Flow& f = active[i];
      out.push_back(MonitorArrival{f.id, f.seq[f.next++]});
      if (f.next == f.seq.size()) {
        if (spawned < opt.flood_flows) {
          active[i] = fresh();
        } else {
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
      }
      ++i;
    }
  }
  return out;
}

std::vector<MonitorArrival> coalesced(std::uint64_t seed, const TrafficOptions& opt) {
  // NIC interrupt coalescing (arXiv 1008.4931): each flow's in-order
  // stream is chopped into bursts of coalesce_frames; every burst is
  // locally shuffled (independent adjacent swaps, a swapped pair is
  // skipped) so no packet escapes its burst — bounded displacement. GRO
  // hands up per-flow trains, so flows interleave burst-by-burst rather
  // than packet-by-packet.
  util::Rng parent{
      util::splitmix64(seed ^ MonitorEngine::flow_key("interrupt-coalescing", "traffic"))};
  const std::size_t frames = std::max<std::size_t>(2, opt.coalesce_frames);
  const std::size_t n = opt.packets_per_flow;
  std::vector<std::uint64_t> ids;
  std::vector<std::vector<std::uint32_t>> seqs;
  ids.reserve(opt.flows);
  seqs.reserve(opt.flows);
  for (std::size_t f = 0; f < opt.flows; ++f) {
    util::Rng rng = parent.split();
    ids.push_back(flow_id(seed, f));
    std::vector<std::uint32_t> arr = in_order(n);
    for (std::size_t start = 0; start < n; start += frames) {
      const std::size_t end = std::min(n, start + frames);
      for (std::size_t i = start; i + 1 < end;) {
        if (rng.bernoulli(opt.coalesce_shuffle)) {
          std::swap(arr[i], arr[i + 1]);
          i += 2;
        } else {
          ++i;
        }
      }
    }
    seqs.push_back(std::move(arr));
  }
  std::vector<MonitorArrival> out;
  out.reserve(opt.flows * n);
  std::vector<std::size_t> next(seqs.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t f = 0; f < seqs.size(); ++f) {
      if (next[f] >= seqs[f].size()) continue;
      const std::size_t end = std::min(seqs[f].size(), next[f] + frames);
      for (; next[f] < end; ++next[f]) out.push_back(MonitorArrival{ids[f], seqs[f][next[f]]});
      any = true;
    }
  }
  return out;
}

}  // namespace

std::vector<MonitorArrival> scenario_arrivals(const std::string& scenario, std::uint64_t seed,
                                              const TrafficOptions& opt) {
  if (scenario == "flood-flows") return flood(seed, opt);
  if (scenario == "interrupt-coalescing") return coalesced(seed, opt);

  util::Rng parent{util::splitmix64(seed ^ MonitorEngine::flow_key(scenario, "traffic"))};
  std::vector<std::uint64_t> ids;
  std::vector<std::vector<std::uint32_t>> seqs;
  ids.reserve(opt.flows);
  seqs.reserve(opt.flows);
  const std::size_t n = opt.packets_per_flow;
  for (std::size_t f = 0; f < opt.flows; ++f) {
    util::Rng rng = parent.split();
    ids.push_back(flow_id(seed, f));
    if (scenario == "clean-path" || scenario == "load-balanced" || scenario == "random-ipid") {
      // Per-flow the path is order-preserving (load balancing pins a flow
      // to one backend; random IPIDs change admissibility, not ordering).
      seqs.push_back(in_order(n));
    } else if (scenario == "swap-shaper") {
      seqs.push_back(adjacent_swapped(n, 0.15, rng));
    } else if (scenario == "striped-links") {
      seqs.push_back(striped(n, rng));
    } else if (scenario == "lossy") {
      seqs.push_back(lossy_in_order(n, 0.02, rng));
    } else if (scenario == "evade-window") {
      seqs.push_back(evade(n, opt.evade_displacement));
    } else if (scenario == "flaky-target") {
      // Mild adjacent swapping (the scenario's path), and an unlucky
      // fraction of flows die young — a failed open or rate-limited
      // replies truncate the stream after a handful of packets, the way
      // a flaky host looks on the wire.
      std::vector<std::uint32_t> s = adjacent_swapped(n, 0.1, rng);
      if (rng.bernoulli(0.3)) {
        s.resize(std::min<std::size_t>(s.size(), 1 + rng.below(5)));
      }
      seqs.push_back(std::move(s));
    } else {
      throw std::invalid_argument{"scenario_arrivals: unknown scenario '" + scenario + "'"};
    }
  }
  return interleave(ids, seqs);
}

namespace {

/// The exact reference, per flow: unbounded state, the same algorithms as
/// metrics::SequenceExtentMetric / NReorderingMetric.
struct ExactFlow {
  std::uint32_t max_send{0};
  bool any{false};
  struct Entry {
    std::uint32_t position;
    std::uint32_t send_index;
  };
  std::vector<Entry> stack;  ///< unbounded monotonic (position, send)
  std::uint32_t pos{0};
  std::uint64_t packets{0};
  std::uint64_t late{0};      ///< RFC 4737 reordered arrivals
  std::uint64_t flagged_n{0};  ///< arrivals with n >= 1
  std::uint64_t sum_n{0};     ///< unclamped n total

  /// Returns (RFC 4737 late, RFC 5236 n) for this arrival.
  std::pair<bool, std::uint64_t> observe(std::uint32_t s) {
    const bool is_late = any && s < max_send;
    const auto it =
        std::lower_bound(stack.begin(), stack.end(), s,
                         [](const Entry& e, std::uint32_t v) { return e.send_index < v; });
    const std::uint64_t n =
        it == stack.begin() ? pos : pos - 1 - std::prev(it)->position;
    while (!stack.empty() && stack.back().send_index >= s) stack.pop_back();
    stack.push_back(Entry{pos, s});
    ++pos;
    ++packets;
    if (is_late) ++late;
    if (n > 0) {
      ++flagged_n;
      sum_n += n;
    }
    if (!any || s > max_send) max_send = s;
    any = true;
    return {is_late, n};
  }
};

struct DetectorKind {
  std::string_view name;
  bool vs_n;  ///< reference flag: n >= 1 (true) or RFC 4737 late (false)
  std::unique_ptr<Detector> (*make)(std::size_t budget);
};

constexpr DetectorKind kKinds[] = {
    {WindowSketchDetector::kName, false,
     [](std::size_t b) -> std::unique_ptr<Detector> {
       return std::make_unique<WindowSketchDetector>(b);
     }},
    {RateEstimateDetector::kName, false,
     [](std::size_t b) -> std::unique_ptr<Detector> {
       return std::make_unique<RateEstimateDetector>(b);
     }},
    {BoundedNReorderingDetector::kName, true,
     [](std::size_t b) -> std::unique_ptr<Detector> {
       return std::make_unique<BoundedNReorderingDetector>(b);
     }},
};

}  // namespace

std::vector<AccuracyRecord> run_differential(const DifferentialConfig& config) {
  std::vector<std::string> scenarios = config.scenarios;
  if (scenarios.empty()) scenarios = core::scenarios::names();

  std::vector<AccuracyRecord> records;
  for (const std::string& scenario : scenarios) {
    const std::vector<MonitorArrival> arrivals =
        scenario_arrivals(scenario, config.seed, config.traffic);

    // One exact pass: per-arrival reference flags (bit 0 = RFC 4737 late,
    // bit 1 = n >= 1) and the pooled exact totals.
    std::map<std::uint64_t, ExactFlow> exact;
    std::vector<std::uint8_t> flags(arrivals.size(), 0);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      const auto [late, n] = exact[arrivals[i].flow].observe(arrivals[i].send_index);
      flags[i] = static_cast<std::uint8_t>((late ? 1 : 0) | (n > 0 ? 2 : 0));
    }
    std::uint64_t packets = 0, late_total = 0, flagged_n_total = 0, sum_n_total = 0;
    for (const auto& [id, f] : exact) {
      packets += f.packets;
      late_total += f.late;
      flagged_n_total += f.flagged_n;
      sum_n_total += f.sum_n;
    }
    const double exact_ratio =
        packets == 0 ? 0.0 : static_cast<double>(late_total) / static_cast<double>(packets);
    const double exact_mean_n =
        flagged_n_total == 0
            ? 0.0
            : static_cast<double>(sum_n_total) / static_cast<double>(flagged_n_total);

    for (const DetectorKind& kind : kKinds) {
      for (const std::size_t budget : config.budgets) {
        for (const std::size_t slots : config.table_slots) {
          MonitorConfig mc;
          mc.table.slots = slots;
          mc.budget_bytes = budget;
          mc.factory = [&kind, budget] {
            DetectorSuite suite;
            suite.add(kind.make(budget));
            return suite;
          };
          MonitorEngine engine{mc};

          AccuracyRecord rec;
          rec.scenario = scenario;
          rec.detector = std::string{kind.name};
          rec.budget_bytes = budget;
          rec.table_slots = slots;
          rec.flows = exact.size();
          rec.packets = packets;
          const std::uint8_t mask = kind.vs_n ? 2 : 1;
          for (std::size_t i = 0; i < arrivals.size(); ++i) {
            const bool flagged = engine.ingest(arrivals[i].flow, arrivals[i].send_index);
            const bool expected = (flags[i] & mask) != 0;
            if (flagged) ++rec.flagged;
            if (flagged && !expected) ++rec.false_positives;
            if (!flagged && expected) ++rec.false_negatives;
          }
          engine.flush();

          rec.exact_flagged = kind.vs_n ? flagged_n_total : late_total;
          const std::uint64_t exact_clear = packets - rec.exact_flagged;
          rec.fp_rate = exact_clear == 0 ? 0.0
                                         : static_cast<double>(rec.false_positives) /
                                               static_cast<double>(exact_clear);
          rec.fn_rate = rec.exact_flagged == 0
                            ? 0.0
                            : static_cast<double>(rec.false_negatives) /
                                  static_cast<double>(rec.exact_flagged);

          const DetectorSuite snap = engine.snapshot();
          if (kind.name == WindowSketchDetector::kName) {
            rec.exact_value = exact_ratio;
            rec.est_value = snap.get<WindowSketchDetector>(kind.name)->ratio();
          } else if (kind.name == RateEstimateDetector::kName) {
            rec.exact_value = exact_ratio;
            rec.est_value = snap.get<RateEstimateDetector>(kind.name)->rate();
          } else {
            rec.exact_value = exact_mean_n;
            rec.est_value = snap.get<BoundedNReorderingDetector>(kind.name)->mean_n();
          }
          rec.abs_error = std::abs(rec.est_value - rec.exact_value);
          rec.evictions = engine.table().counters().evictions;
          records.push_back(std::move(rec));
        }
      }
    }
  }
  return records;
}

report::Table accuracy_table(const std::vector<AccuracyRecord>& records) {
  report::Table table = report::Table::with_headers(
      {"scenario", "detector", "budget", "slots", "packets", "exact", "est", "|err|", "FP", "FN",
       "fp%", "fn%", "evict"});
  for (const AccuracyRecord& r : records) {
    table.row({r.scenario, r.detector, report::integer(static_cast<std::int64_t>(r.budget_bytes)),
               report::integer(static_cast<std::int64_t>(r.table_slots)),
               report::integer(static_cast<std::int64_t>(r.packets)), report::fixed(r.exact_value, 4),
               report::fixed(r.est_value, 4), report::fixed(r.abs_error, 4),
               report::integer(static_cast<std::int64_t>(r.false_positives)),
               report::integer(static_cast<std::int64_t>(r.false_negatives)),
               report::percent(r.fp_rate, 2), report::percent(r.fn_rate, 2),
               report::integer(static_cast<std::int64_t>(r.evictions))});
  }
  return table;
}

report::Json accuracy_to_json(const AccuracyRecord& r) {
  report::Json j = report::Json::object();
  j.set("type", "monitor_accuracy");
  j.set("scenario", r.scenario);
  j.set("detector", r.detector);
  j.set("budget_bytes", static_cast<std::uint64_t>(r.budget_bytes));
  j.set("table_slots", static_cast<std::uint64_t>(r.table_slots));
  j.set("packets", r.packets);
  j.set("flows", r.flows);
  j.set("exact_flagged", r.exact_flagged);
  j.set("flagged", r.flagged);
  j.set("false_positives", r.false_positives);
  j.set("false_negatives", r.false_negatives);
  j.set("fp_rate", r.fp_rate);
  j.set("fn_rate", r.fn_rate);
  j.set("exact_value", r.exact_value);
  j.set("est_value", r.est_value);
  j.set("abs_error", r.abs_error);
  j.set("evictions", r.evictions);
  return j;
}

void emit_accuracy_jsonl(report::JsonlWriter& out, const std::vector<AccuracyRecord>& records) {
  for (const AccuracyRecord& r : records) out.write(accuracy_to_json(r));
}

}  // namespace reorder::monitor
