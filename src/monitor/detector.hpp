// The bounded-state detector contract of the always-on monitor.
//
// src/metrics/ holds the exact survey-side analytics: per-flow state
// proportional to flow length (Fenwick trees, unbounded record stacks) —
// fine for a survey tool, impossible for a monitor watching millions of
// flows on a host, switch or SmartNIC. A monitor::Detector is the
// data-plane counterpart: the same one-pass / snapshot / merge discipline
// as metrics::Metric, but with per-flow state bounded by an explicit
// memory budget in bytes. The budget buys accuracy:
//
//   * observe_arrival() is one pass and O(budget) worst case, O(1) on the
//     in-order fast path, and returns the detector's per-arrival verdict
//     (flagged as reordered/late or not) so a differential harness can
//     score false positives/negatives against the exact metrics;
//   * the per-flow footprint never exceeds flow_state_bytes(), a pure
//     function of the construction budget — what a fixed-size FlowTable
//     slot must provision;
//   * end_flow() folds the open per-flow state into closed totals and
//     resets the bounded state for slot reuse (eviction calls this);
//   * merge() over closed accumulators is associative and bit-exact, the
//     metrics::Metric contract, so per-shard monitors fold into fleet
//     totals; merging detectors built with different budgets throws —
//     their truncation behavior differs, so their counts are not the same
//     quantity;
//   * to_json() is a pure function of the closed totals.
//
// When the budget exceeds what the flow needs (window >= flow length,
// counters never saturating, stack never overflowing) every detector's
// totals are exactly those of its metrics/ counterpart — the property the
// differential tests pin.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "report/json.hpp"

namespace reorder::monitor {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Stable identifier; merge() pairs detectors by name, to_json() keys
  /// on it.
  virtual std::string_view name() const = 0;

  /// One arrival of the CURRENT flow: the packet's per-flow send index
  /// (the RFC 4737 stream model, monitor-side). Returns true when the
  /// detector flags this arrival as reordered/late.
  virtual bool observe_arrival(std::uint32_t send_index) = 0;

  /// A run of consecutive arrivals of the CURRENT flow — the line-rate
  /// batched entry, paying the virtual dispatch once per run. MUST leave
  /// the detector in exactly the state `count` observe_arrival() calls
  /// would (the ingest equivalence tests pin this); per-arrival verdicts
  /// are not reported on this path — flag inspection is scalar-only.
  virtual void observe_arrivals(const std::uint32_t* send_indices, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) observe_arrival(send_indices[i]);
  }

  /// Closes the current flow: folds its state into the closed totals and
  /// resets the bounded per-flow state so the slot can host another flow.
  /// No-op when no arrival was observed since the last close.
  virtual void end_flow() = 0;

  /// Deep copy of the accumulated state.
  virtual std::unique_ptr<Detector> snapshot() const = 0;
  /// Folds another closed accumulator of the same concrete type AND the
  /// same budget into this one. Throws std::invalid_argument on type,
  /// name or budget mismatch, or when either side has an open flow.
  virtual void merge(const Detector& other) = 0;

  /// JSON rendering of the closed totals (schema documented per detector
  /// and in the README's "Always-on monitoring" section).
  virtual report::Json to_json() const = 0;

  /// Upper bound of the per-flow (slot-resident) state in bytes — the
  /// meaning of the construction budget.
  virtual std::size_t flow_state_bytes() const = 0;

 protected:
  /// Downcast helper for merge(): checks name and concrete type.
  template <typename T>
  static const T& expect(const Detector& other, std::string_view name);
};

template <typename T>
const T& Detector::expect(const Detector& other, std::string_view name) {
  const T* typed = dynamic_cast<const T*>(&other);
  if (typed == nullptr || other.name() != name) {
    throw std::invalid_argument{"Detector::merge: cannot merge '" + std::string{other.name()} +
                                "' into '" + std::string{name} + "'"};
  }
  return *typed;
}

/// An ordered collection of detectors sharing one flow's arrival stream —
/// the unit the MonitorEngine keeps per flow-table slot. Suites merge
/// member-wise and require identical composition (same names, same order,
/// same budgets).
class DetectorSuite {
 public:
  DetectorSuite() = default;
  DetectorSuite(DetectorSuite&&) = default;
  DetectorSuite& operator=(DetectorSuite&&) = default;

  DetectorSuite& add(std::unique_ptr<Detector> detector);
  std::size_t size() const { return detectors_.size(); }
  bool empty() const { return detectors_.empty(); }

  /// The member named `name`, or nullptr.
  const Detector* find(std::string_view name) const;
  /// Typed lookup; nullptr when absent or of a different concrete type.
  template <typename T>
  const T* get(std::string_view name) const {
    return dynamic_cast<const T*>(find(name));
  }

  /// Fans the arrival to every member; true when ANY member flagged it.
  bool observe_arrival(std::uint32_t send_index);
  /// Batched fan-in: one virtual call per member per run (no verdicts).
  void observe_arrivals(const std::uint32_t* send_indices, std::size_t count);
  void end_flow();

  DetectorSuite snapshot() const;
  /// Member-wise merge; throws std::invalid_argument when the suites'
  /// compositions differ.
  void merge(const DetectorSuite& other);

  /// {"<detector name>": <detector.to_json()>, ...} in attachment order.
  report::Json to_json() const;

  /// Sum of the members' per-flow footprints — the slot size a FlowTable
  /// provisions for this suite.
  std::size_t flow_state_bytes() const;

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
};

/// Builds the detector suite a fresh flow-table slot starts with — the
/// pluggability point mirroring metrics::SuiteFactory.
using DetectorFactory = std::function<DetectorSuite()>;

/// The standard monitor suite at a total per-flow budget: an approximate
/// rate counter (~20 B), the remainder split evenly between the window
/// sketch and the bounded n-reordering estimator.
DetectorSuite default_suite(std::size_t budget_bytes);

}  // namespace reorder::monitor
