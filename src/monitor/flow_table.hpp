// Fixed-budget flow slots for the always-on monitor.
//
// A FlowTable maps 64-bit flow keys onto a fixed, power-of-two array of
// slots organized as W-way sets (hash = seeded splitmix64, set = low
// bits). Lookup inserts on miss; when the set is full the least recently
// used way is evicted — deterministically: ties break toward the lowest
// slot index, recency is a global logical tick, and the hash seed is
// explicit, so a run replays bit-identically from (config, key stream).
// Collision pressure is observable: hit/insertion/eviction counters are
// part of the table's JSON and fold across shards by summation.
//
// The table manages KEYS only. The MonitorEngine owns one DetectorSuite
// per slot in a parallel array: on eviction it closes the outgoing flow's
// bounded state (folding its totals) and hands the same slot to the new
// key — no allocation, no movement of detector state.
#pragma once

#include <cstdint>
#include <vector>

#include "report/json.hpp"
#include "util/shard_seeder.hpp"

namespace reorder::monitor {

struct FlowTableConfig {
  /// Total slots; rounded up to a power of two >= ways.
  std::size_t slots{1024};
  /// Set associativity; rounded up to a power of two, clamped to slots.
  std::size_t ways{4};
  /// Hash seed: layouts (and thus collision/eviction patterns) are a pure
  /// function of (seed, key stream).
  std::uint64_t seed{0};
};

/// Summable occupancy/pressure counters (shard merge adds them).
struct FlowTableCounters {
  std::uint64_t lookups{0};
  std::uint64_t hits{0};
  std::uint64_t insertions{0};
  std::uint64_t evictions{0};

  FlowTableCounters& operator+=(const FlowTableCounters& o) {
    lookups += o.lookups;
    hits += o.hits;
    insertions += o.insertions;
    evictions += o.evictions;
    return *this;
  }
};

class FlowTable {
 public:
  struct Ref {
    std::size_t slot{0};
    bool inserted{false};         ///< key was not resident before this lookup
    bool evicted{false};          ///< the insertion displaced a live flow
    std::uint64_t evicted_key{0};  ///< valid when evicted
  };

  explicit FlowTable(FlowTableConfig config);

  /// Finds the key's slot, inserting (and evicting the set's LRU way if
  /// needed) on miss. Touches the slot's recency either way. Kept in the
  /// header: this is the monitor's per-arrival front door, and the key
  /// scan wants to inline against the caller's loop.
  Ref lookup(std::uint64_t key) {
    ++counters_.lookups;
    const std::size_t base = set_of(key) * ways_;
    ++tick_;
    for (std::size_t w = 0; w < ways_; ++w) {
      if (keys_[base + w] == key && valid_[base + w]) {
        last_used_[base + w] = tick_;
        ++counters_.hits;
        return Ref{base + w, false, false, 0};
      }
    }
    return insert(key, base);
  }

  /// One lookup standing for a RUN of `run` consecutive arrivals of the
  /// same key — the batched ingest path's front door. Bit-exact with
  /// `run` scalar lookups: within a maximal same-flow run no other key's
  /// lookup interleaves, so arrivals 2..run would all hit the slot the
  /// first arrival resolved; their only observable effects are the
  /// per-lookup tick advance, the lookup/hit counters and the slot's
  /// final recency — replayed here in O(1).
  Ref lookup_run(std::uint64_t key, std::uint64_t run) {
    const Ref ref = lookup(key);
    if (run > 1) {
      counters_.lookups += run - 1;
      counters_.hits += run - 1;
      tick_ += run - 1;
      last_used_[ref.slot] = tick_;
    }
    return ref;
  }

  /// The key's slot without insertion or recency update; -1 if absent.
  std::ptrdiff_t find(std::uint64_t key) const;

  std::size_t slots() const { return keys_.size(); }
  std::size_t ways() const { return ways_; }
  std::size_t live_flows() const { return live_; }
  bool slot_live(std::size_t slot) const { return valid_[slot] != 0; }
  std::uint64_t slot_key(std::size_t slot) const { return keys_[slot]; }
  const FlowTableCounters& counters() const { return counters_; }
  /// Folds another table's counters in (shard merge).
  void add_counters(const FlowTableCounters& o) { counters_ += o; }

  /// {"slots":..,"ways":..,"lookups":..,"hits":..,"insertions":..,
  ///  "evictions":..} — live occupancy is reported by the engine, which
  /// also knows about folded shards.
  report::Json to_json() const;

 private:
  std::size_t set_of(std::uint64_t key) const {
    return static_cast<std::size_t>(util::splitmix64(key ^ seed_)) & (sets_ - 1);
  }
  /// The miss path: claim a free way or evict the set's LRU way.
  Ref insert(std::uint64_t key, std::size_t base);

  std::uint64_t seed_;
  std::size_t ways_;
  std::size_t sets_;
  // Structure-of-arrays: the hit path touches one contiguous strip of
  // keys (W * 8 bytes) plus a single recency write, not W padded structs.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> last_used_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t tick_{0};
  std::size_t live_{0};
  FlowTableCounters counters_;
};

}  // namespace reorder::monitor
