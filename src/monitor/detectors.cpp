#include "monitor/detectors.hpp"

#include <algorithm>
#include <stdexcept>

#include "monitor/detector.hpp"

namespace reorder::monitor {

// ----------------------------------------------------------- suite layer

DetectorSuite& DetectorSuite::add(std::unique_ptr<Detector> detector) {
  if (detector == nullptr) {
    throw std::invalid_argument{"DetectorSuite::add: null detector"};
  }
  detectors_.push_back(std::move(detector));
  return *this;
}

const Detector* DetectorSuite::find(std::string_view name) const {
  for (const auto& d : detectors_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

bool DetectorSuite::observe_arrival(std::uint32_t send_index) {
  bool flagged = false;
  for (auto& d : detectors_) flagged = d->observe_arrival(send_index) || flagged;
  return flagged;
}

void DetectorSuite::observe_arrivals(const std::uint32_t* send_indices, std::size_t count) {
  for (auto& d : detectors_) d->observe_arrivals(send_indices, count);
}

void DetectorSuite::end_flow() {
  for (auto& d : detectors_) d->end_flow();
}

DetectorSuite DetectorSuite::snapshot() const {
  DetectorSuite out;
  for (const auto& d : detectors_) out.detectors_.push_back(d->snapshot());
  return out;
}

void DetectorSuite::merge(const DetectorSuite& other) {
  if (detectors_.size() != other.detectors_.size()) {
    throw std::invalid_argument{"DetectorSuite::merge: suite compositions differ"};
  }
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    detectors_[i]->merge(*other.detectors_[i]);
  }
}

report::Json DetectorSuite::to_json() const {
  report::Json j = report::Json::object();
  for (const auto& d : detectors_) j.set(std::string{d->name()}, d->to_json());
  return j;
}

std::size_t DetectorSuite::flow_state_bytes() const {
  std::size_t total = 0;
  for (const auto& d : detectors_) total += d->flow_state_bytes();
  return total;
}

DetectorSuite default_suite(std::size_t budget_bytes) {
  // The rate counter's state is ~20 B regardless; the window sketch and
  // the n-reordering stack split what remains of the total budget.
  constexpr std::size_t kRateBudget = 20;
  const std::size_t rest = budget_bytes > kRateBudget ? budget_bytes - kRateBudget : 0;
  DetectorSuite suite;
  suite.add(std::make_unique<WindowSketchDetector>(rest / 2))
      .add(std::make_unique<RateEstimateDetector>(kRateBudget))
      .add(std::make_unique<BoundedNReorderingDetector>(rest - rest / 2));
  return suite;
}

// --------------------------------------------------- WindowSketchDetector

WindowSketchDetector::WindowSketchDetector(std::size_t budget_bytes)
    : budget_bytes_{budget_bytes},
      ring_(std::max<std::size_t>(1, budget_bytes / sizeof(std::uint32_t))) {}

void WindowSketchDetector::recompute_window_max() {
  window_max_ = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t idx = (head_ + ring_.size() - count_ + i) % ring_.size();
    window_max_ = std::max(window_max_, ring_[idx]);
  }
}

bool WindowSketchDetector::observe_arrival(std::uint32_t send_index) {
  open_ = true;
  ++packets_;
  const std::size_t k = ring_.size();
  // Fast path: nothing in the window sent later than this packet.
  const bool flagged = count_ > 0 && window_max_ > send_index;
  if (flagged) {
    // The extent is the distance back to the EARLIEST retained arrival
    // with a larger send index (a truncated RFC 4737 extent; exact when
    // the window covers the flow). Oldest-first scan, bounded by the
    // extent itself — cheap exactly when reordering is rare.
    for (std::size_t i = 0; i < count_; ++i) {
      const std::size_t idx = (head_ + k - count_ + i) % k;
      if (ring_[idx] > send_index) {
        const auto extent = static_cast<std::uint32_t>(count_ - i);
        ++flagged_;
        extent_sum_ += extent;
        max_extent_ = std::max(max_extent_, extent);
        break;
      }
    }
  }
  const bool full = count_ == k;
  const std::uint32_t evicted = full ? ring_[head_] : 0;
  ring_[head_] = send_index;
  head_ = (head_ + 1) % k;
  if (!full) ++count_;
  if (count_ == 1 || send_index >= window_max_) {
    window_max_ = send_index;
  } else if (full && evicted == window_max_) {
    recompute_window_max();
  }
  return flagged;
}

void WindowSketchDetector::end_flow() {
  if (!open_) return;
  ++flows_;
  head_ = 0;
  count_ = 0;
  window_max_ = 0;
  open_ = false;
}

std::unique_ptr<Detector> WindowSketchDetector::snapshot() const {
  return std::make_unique<WindowSketchDetector>(*this);
}

void WindowSketchDetector::merge(const Detector& other) {
  const auto& o = expect<WindowSketchDetector>(other, kName);
  if (open_ || o.open_) {
    throw std::invalid_argument{"WindowSketchDetector::merge: open flow (call end_flow)"};
  }
  if (ring_.size() != o.ring_.size()) {
    throw std::invalid_argument{"WindowSketchDetector::merge: window sizes differ"};
  }
  flows_ += o.flows_;
  packets_ += o.packets_;
  flagged_ += o.flagged_;
  extent_sum_ += o.extent_sum_;
  max_extent_ = std::max(max_extent_, o.max_extent_);
}

report::Json WindowSketchDetector::to_json() const {
  report::Json j = report::Json::object();
  j.set("budget_bytes", static_cast<std::uint64_t>(budget_bytes_));
  j.set("window", static_cast<std::uint64_t>(ring_.size()));
  j.set("flows", flows_);
  j.set("packets", packets_);
  j.set("flagged", flagged_);
  j.set("ratio", ratio());
  j.set("max_extent", static_cast<std::uint64_t>(max_extent_));
  j.set("mean_extent", mean_extent());
  return j;
}

std::size_t WindowSketchDetector::flow_state_bytes() const {
  return ring_.size() * sizeof(std::uint32_t);
}

// --------------------------------------------------- RateEstimateDetector

RateEstimateDetector::RateEstimateDetector(std::size_t budget_bytes)
    : budget_bytes_{budget_bytes},
      counter_bytes_{std::clamp<std::size_t>(
          budget_bytes > sizeof(std::uint32_t) ? (budget_bytes - sizeof(std::uint32_t)) / 2 : 1,
          1, 8)},
      cap_{counter_bytes_ >= 8 ? ~0ull : (1ull << (8 * counter_bytes_)) - 1} {}

bool RateEstimateDetector::observe_arrival(std::uint32_t send_index) {
  open_ = true;
  ++packets_;
  const bool flagged = seen_ && send_index < flow_max_;
  if (!seen_ || send_index > flow_max_) flow_max_ = send_index;
  seen_ = true;
  if (usable_ == cap_) {
    // Saturation decay: halving both counters preserves the ratio while
    // keeping each inside its budgeted width.
    usable_ >>= 1;
    reordered_ >>= 1;
    ++decays_;
  }
  ++usable_;
  if (flagged) ++reordered_;
  return flagged;
}

void RateEstimateDetector::end_flow() {
  if (!open_) return;
  ++flows_;
  usable_sum_ += usable_;
  reordered_sum_ += reordered_;
  flow_max_ = 0;
  usable_ = 0;
  reordered_ = 0;
  seen_ = false;
  open_ = false;
}

std::unique_ptr<Detector> RateEstimateDetector::snapshot() const {
  return std::make_unique<RateEstimateDetector>(*this);
}

void RateEstimateDetector::merge(const Detector& other) {
  const auto& o = expect<RateEstimateDetector>(other, kName);
  if (open_ || o.open_) {
    throw std::invalid_argument{"RateEstimateDetector::merge: open flow (call end_flow)"};
  }
  if (counter_bytes_ != o.counter_bytes_) {
    throw std::invalid_argument{"RateEstimateDetector::merge: counter widths differ"};
  }
  flows_ += o.flows_;
  packets_ += o.packets_;
  reordered_sum_ += o.reordered_sum_;
  usable_sum_ += o.usable_sum_;
  decays_ += o.decays_;
}

report::Json RateEstimateDetector::to_json() const {
  report::Json j = report::Json::object();
  j.set("budget_bytes", static_cast<std::uint64_t>(budget_bytes_));
  j.set("counter_bits", static_cast<std::uint64_t>(8 * counter_bytes_));
  j.set("flows", flows_);
  j.set("packets", packets_);
  j.set("reordered", reordered_sum_);
  j.set("usable", usable_sum_);
  j.set("rate", rate());
  j.set("decays", decays_);
  return j;
}

std::size_t RateEstimateDetector::flow_state_bytes() const {
  return sizeof(std::uint32_t) + 2 * counter_bytes_;
}

// --------------------------------------------- BoundedNReorderingDetector

BoundedNReorderingDetector::BoundedNReorderingDetector(std::size_t budget_bytes)
    : budget_bytes_{budget_bytes},
      cap_{std::max<std::size_t>(1, budget_bytes / sizeof(Entry))},
      density_(cap_ + 1, 0) {
  stack_.reserve(std::min<std::size_t>(cap_, 1024));
}

bool BoundedNReorderingDetector::observe_arrival(std::uint32_t send_index) {
  open_ = true;
  ++packets_;
  const std::uint32_t pos = position_++;
  // In-order fast path: the previous arrival is always the top of the
  // stack, so a send index above it means boundary == top and n == 0 —
  // no search, no pops.
  if (stack_.size() > start_ && stack_.back().send_index < send_index) {
    push_bounded(Entry{pos, send_index});
    return false;
  }
  // Same search as the exact NReorderingMetric: the latest earlier arrival
  // with a smaller send index, over the retained monotonic stack.
  const auto bottom = stack_.begin() + static_cast<std::ptrdiff_t>(start_);
  const auto it = std::lower_bound(
      bottom, stack_.end(), send_index,
      [](const Entry& e, std::uint32_t value) { return e.send_index < value; });
  std::uint64_t n = 0;
  bool clamped = false;
  if (it != bottom) {
    n = pos - 1 - std::prev(it)->position;  // boundary retained: exact
  } else if (dropped_ == 0) {
    n = pos;  // no smaller-send arrival exists at all: exact
  } else {
    // The boundary fell off the bounded stack; the true n is provably
    // >= cap_ - 1, so the arrival lands in the saturation bucket.
    n = cap_;
    clamped = true;
  }
  if (n > 0) {
    const std::uint64_t recorded = std::min<std::uint64_t>(n, cap_);
    ++flagged_;
    sum_n_ += recorded;
    ++density_[recorded];
    if (clamped || n > cap_) ++saturated_;
  }
  while (stack_.size() > start_ && stack_.back().send_index >= send_index) stack_.pop_back();
  push_bounded(Entry{pos, send_index});
  return n > 0;
}

void BoundedNReorderingDetector::push_bounded(Entry entry) {
  stack_.push_back(entry);
  if (stack_.size() - start_ > cap_) {
    // Drop the logical bottom by index; compact physically only once per
    // cap_ drops so steady-state in-order ingest stays O(1) amortized.
    ++start_;
    ++dropped_;
    if (start_ >= cap_) {
      stack_.erase(stack_.begin(), stack_.begin() + static_cast<std::ptrdiff_t>(start_));
      start_ = 0;
    }
  }
}

void BoundedNReorderingDetector::end_flow() {
  if (!open_) return;
  ++flows_;
  stack_.clear();
  start_ = 0;
  position_ = 0;
  dropped_ = 0;
  open_ = false;
}

std::unique_ptr<Detector> BoundedNReorderingDetector::snapshot() const {
  return std::make_unique<BoundedNReorderingDetector>(*this);
}

void BoundedNReorderingDetector::merge(const Detector& other) {
  const auto& o = expect<BoundedNReorderingDetector>(other, kName);
  if (open_ || o.open_) {
    throw std::invalid_argument{"BoundedNReorderingDetector::merge: open flow (call end_flow)"};
  }
  if (cap_ != o.cap_) {
    throw std::invalid_argument{"BoundedNReorderingDetector::merge: stack caps differ"};
  }
  flows_ += o.flows_;
  packets_ += o.packets_;
  flagged_ += o.flagged_;
  sum_n_ += o.sum_n_;
  saturated_ += o.saturated_;
  for (std::size_t i = 0; i < density_.size(); ++i) density_[i] += o.density_[i];
}

std::uint64_t BoundedNReorderingDetector::count_for(std::uint64_t n) const {
  return n < density_.size() ? density_[n] : 0;
}

report::Json BoundedNReorderingDetector::to_json() const {
  report::Json j = report::Json::object();
  j.set("budget_bytes", static_cast<std::uint64_t>(budget_bytes_));
  j.set("stack_entries", static_cast<std::uint64_t>(cap_));
  j.set("flows", flows_);
  j.set("packets", packets_);
  j.set("reordered_fraction", reordered_fraction());
  j.set("mean_n", mean_n());
  j.set("saturated", saturated_);
  report::Json density = report::Json::array();
  for (std::size_t n = 1; n < density_.size(); ++n) {
    if (density_[n] == 0) continue;
    report::Json d = report::Json::object();
    d.set("n", static_cast<std::uint64_t>(n));
    d.set("count", density_[n]);
    density.push(std::move(d));
  }
  j.set("density", std::move(density));
  return j;
}

std::size_t BoundedNReorderingDetector::flow_state_bytes() const {
  return cap_ * sizeof(Entry);
}

}  // namespace reorder::monitor
