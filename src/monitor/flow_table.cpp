#include "monitor/flow_table.hpp"

namespace reorder::monitor {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlowTable::FlowTable(FlowTableConfig config) : seed_{config.seed} {
  ways_ = round_up_pow2(std::max<std::size_t>(1, config.ways));
  std::size_t total = round_up_pow2(std::max<std::size_t>(1, config.slots));
  if (total < ways_) total = ways_;
  sets_ = total / ways_;
  keys_.resize(total, 0);
  last_used_.resize(total, 0);
  valid_.resize(total, 0);
}

FlowTable::Ref FlowTable::insert(std::uint64_t key, std::size_t base) {
  std::size_t victim = keys_.size();     // LRU valid way; ties toward the lowest index
  std::size_t free_slot = keys_.size();  // first invalid way, if any
  for (std::size_t w = 0; w < ways_; ++w) {
    const std::size_t slot = base + w;
    if (!valid_[slot]) {
      if (free_slot == keys_.size()) free_slot = slot;
    } else if (victim == keys_.size() || last_used_[slot] < last_used_[victim]) {
      victim = slot;
    }
  }
  ++counters_.insertions;
  if (free_slot != keys_.size()) {
    keys_[free_slot] = key;
    last_used_[free_slot] = tick_;
    valid_[free_slot] = 1;
    ++live_;
    return Ref{free_slot, true, false, 0};
  }
  ++counters_.evictions;
  const std::uint64_t old_key = keys_[victim];
  keys_[victim] = key;
  last_used_[victim] = tick_;
  return Ref{victim, true, true, old_key};
}

std::ptrdiff_t FlowTable::find(std::uint64_t key) const {
  const std::size_t base = set_of(key) * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (valid_[base + w] && keys_[base + w] == key) {
      return static_cast<std::ptrdiff_t>(base + w);
    }
  }
  return -1;
}

report::Json FlowTable::to_json() const {
  report::Json j = report::Json::object();
  j.set("slots", static_cast<std::uint64_t>(keys_.size()));
  j.set("ways", static_cast<std::uint64_t>(ways_));
  j.set("lookups", counters_.lookups);
  j.set("hits", counters_.hits);
  j.set("insertions", counters_.insertions);
  j.set("evictions", counters_.evictions);
  return j;
}

}  // namespace reorder::monitor
