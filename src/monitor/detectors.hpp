// The three bounded per-flow detectors of the always-on monitor, each the
// constant-memory counterpart of an exact src/metrics/ accumulator:
//
//   WindowSketchDetector      ~ SequenceExtentMetric (RFC 4737)
//   RateEstimateDetector      ~ SequenceExtentMetric's reordered ratio
//   BoundedNReorderingDetector~ NReorderingMetric    (RFC 5236)
//
// Each takes a memory budget in bytes that bounds the per-flow state; the
// class comments state exactly where accuracy is lost when the budget is
// too small, and why the result is exact when it is not.
#pragma once

#include <cstdint>
#include <vector>

#include "monitor/detector.hpp"

namespace reorder::monitor {

/// A K-entry resequencing-window sketch: the ring of the K most recent
/// send indices (K = budget / 4). An arrival is flagged late iff a send
/// index larger than its own is still in the window; its extent is the
/// distance back to the earliest such entry — exactly RFC 4737's
/// reordering extent as long as the window covers the flow (K >= flow
/// length), because the earliest larger arrival is then always retained.
///
/// Accuracy loss is one-sided: the sketch NEVER false-positives (a flag
/// requires a witnessed larger index), but misses reorderings whose
/// extent exceeds K and everything across an eviction reset — the
/// `evade-window` adversarial scenario displaces packets just beyond K to
/// exercise exactly this blind spot.
class WindowSketchDetector final : public Detector {
 public:
  static constexpr std::string_view kName = "window_sketch";

  explicit WindowSketchDetector(std::size_t budget_bytes);

  std::string_view name() const override { return kName; }
  bool observe_arrival(std::uint32_t send_index) override;
  void end_flow() override;
  std::unique_ptr<Detector> snapshot() const override;
  void merge(const Detector& other) override;
  report::Json to_json() const override;
  std::size_t flow_state_bytes() const override;

  std::size_t window() const { return ring_.size(); }
  std::uint64_t flows() const { return flows_; }
  std::uint64_t packets() const { return packets_; }
  std::uint64_t flagged() const { return flagged_; }
  double ratio() const {
    return packets_ == 0 ? 0.0 : static_cast<double>(flagged_) / static_cast<double>(packets_);
  }
  std::uint32_t max_extent() const { return max_extent_; }
  double mean_extent() const {
    return flagged_ == 0 ? 0.0
                         : static_cast<double>(extent_sum_) / static_cast<double>(flagged_);
  }

 private:
  void recompute_window_max();

  std::size_t budget_bytes_;

  // Closed totals (what merge combines).
  std::uint64_t flows_{0};
  std::uint64_t packets_{0};
  std::uint64_t flagged_{0};
  std::uint64_t extent_sum_{0};
  std::uint32_t max_extent_{0};

  // Bounded per-flow state: a circular window of recent send indices.
  std::vector<std::uint32_t> ring_;
  std::size_t head_{0};   ///< next write position (== oldest when full)
  std::size_t count_{0};  ///< occupied entries
  std::uint32_t window_max_{0};  ///< max over occupied entries (count_ > 0)
  bool open_{false};
};

/// An approximate reordering-rate counter: a running per-flow maximum
/// send index gives the exact RFC 4737 flag (late iff below the max), and
/// two saturating counters (reordered / usable) of width derived from the
/// budget accumulate the rate. When a counter saturates BOTH halve — an
/// exponential decay that preserves the ratio while bounding the width —
/// and the decay count is reported. With counters wide enough to never
/// saturate the folded totals equal the exact reordered count and ratio;
/// eviction resets the running max, so table churn converts reorderings
/// that span the reset into false negatives (never false positives).
class RateEstimateDetector final : public Detector {
 public:
  static constexpr std::string_view kName = "approx_rate";

  explicit RateEstimateDetector(std::size_t budget_bytes);

  std::string_view name() const override { return kName; }
  bool observe_arrival(std::uint32_t send_index) override;
  void end_flow() override;
  std::unique_ptr<Detector> snapshot() const override;
  void merge(const Detector& other) override;
  report::Json to_json() const override;
  std::size_t flow_state_bytes() const override;

  std::uint64_t flows() const { return flows_; }
  std::uint64_t packets() const { return packets_; }
  std::uint64_t reordered() const { return reordered_sum_; }
  std::uint64_t usable() const { return usable_sum_; }
  std::uint64_t decays() const { return decays_; }
  double rate() const {
    return usable_sum_ == 0
               ? 0.0
               : static_cast<double>(reordered_sum_) / static_cast<double>(usable_sum_);
  }

 private:
  std::size_t budget_bytes_;
  std::size_t counter_bytes_;  ///< width of each saturating counter
  std::uint64_t cap_;          ///< saturation threshold

  // Closed totals.
  std::uint64_t flows_{0};
  std::uint64_t packets_{0};
  std::uint64_t reordered_sum_{0};
  std::uint64_t usable_sum_{0};
  std::uint64_t decays_{0};

  // Bounded per-flow state.
  std::uint32_t flow_max_{0};
  std::uint64_t usable_{0};
  std::uint64_t reordered_{0};
  bool seen_{false};
  bool open_{false};
};

/// A bounded RFC 5236 n-reordering estimator: the exact metric's
/// monotonic (position, send) stack capped at budget/8 entries — when a
/// push overflows, the OLDEST (bottom) entry is dropped — and a fixed
/// density array with a saturation bucket at n_cap (= the stack cap).
///
/// The per-arrival flag is always exact: n >= 1 iff the immediately
/// preceding arrival carried a larger send index, and that arrival is on
/// the stack by construction. n itself is exact whenever the boundary
/// (latest earlier smaller-send arrival) is still retained; when it was
/// dropped the true n is at least n_cap - 1, so the arrival is counted in
/// the saturation bucket and `saturated` increments — the density tail
/// and mean n are where a too-small budget shows.
class BoundedNReorderingDetector final : public Detector {
 public:
  static constexpr std::string_view kName = "bounded_n";

  explicit BoundedNReorderingDetector(std::size_t budget_bytes);

  std::string_view name() const override { return kName; }
  bool observe_arrival(std::uint32_t send_index) override;
  void end_flow() override;
  std::unique_ptr<Detector> snapshot() const override;
  void merge(const Detector& other) override;
  report::Json to_json() const override;
  std::size_t flow_state_bytes() const override;

  std::size_t stack_entries() const { return cap_; }
  std::uint64_t flows() const { return flows_; }
  std::uint64_t packets() const { return packets_; }
  /// Packets recorded as exactly n-reordered (n clamped to n_cap).
  std::uint64_t count_for(std::uint64_t n) const;
  std::uint64_t flagged() const { return flagged_; }
  std::uint64_t saturated() const { return saturated_; }
  double reordered_fraction() const {
    return packets_ == 0 ? 0.0 : static_cast<double>(flagged_) / static_cast<double>(packets_);
  }
  /// Mean recorded n over flagged packets (clamped values included).
  double mean_n() const {
    return flagged_ == 0 ? 0.0 : static_cast<double>(sum_n_) / static_cast<double>(flagged_);
  }

 private:
  struct Entry {
    std::uint32_t position;  ///< arrival position within the flow
    std::uint32_t send_index;
  };

  std::size_t budget_bytes_;
  std::size_t cap_;  ///< stack entry cap == density saturation bucket

  // Closed totals.
  std::uint64_t flows_{0};
  std::uint64_t packets_{0};
  std::uint64_t flagged_{0};
  std::uint64_t sum_n_{0};
  std::uint64_t saturated_{0};
  std::vector<std::uint64_t> density_;  ///< index n in [1, cap_]

  // Bounded per-flow state: the live stack is stack_[start_..]; the
  // prefix is already-dropped bottom entries awaiting batched compaction.
  std::vector<Entry> stack_;
  std::size_t start_{0};
  std::uint32_t position_{0};
  std::uint32_t dropped_{0};  ///< entries evicted from the stack bottom
  bool open_{false};

  void push_bounded(Entry entry);
};

}  // namespace reorder::monitor
