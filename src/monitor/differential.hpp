// The accuracy-vs-memory differential harness.
//
// Every canonical scenario (plus the adversarial `evade-window` and
// `flood-flows`) is rendered as an interleaved multi-flow arrival stream
// — the monitor's-eye view of the traffic the scenario's topology
// produces — and run through BOTH sides:
//
//   exact side    per-flow unbounded metrics::SequenceExtentMetric /
//                 NReorderingMetric, plus the exact per-arrival verdicts
//                 (late iff below the flow's running max send index;
//                 n-reordered iff the preceding arrival sent later);
//   bounded side  one MonitorEngine per (detector, budget, table size),
//                 sharing the stream, evictions and all.
//
// Per-arrival verdict comparison yields false-positive/false-negative
// counts; the folded totals yield the headline estimate error (reordered
// ratio for window_sketch/approx_rate, mean n for bounded_n). One
// AccuracyRecord per (scenario, detector, budget, table) — the
// report::Table / {"type":"monitor_accuracy"} JSONL the reorder_monitor
// example prints as the accuracy/memory frontier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/engine.hpp"
#include "report/jsonl.hpp"
#include "report/table.hpp"

namespace reorder::monitor {

/// One interleaved always-on arrival: which flow, and the per-flow send
/// index of the packet that just arrived.
struct MonitorArrival {
  std::uint64_t flow{0};
  std::uint32_t send_index{0};
};

/// Knobs of the scenario traffic models (defaults match the harness's
/// published numbers; tests shrink them).
struct TrafficOptions {
  std::size_t flows{32};
  std::size_t packets_per_flow{512};
  /// evade-window: how many predecessors the crafted early packet
  /// overtakes — just beyond a 1 KiB window sketch (K = 256), well
  /// within a 16 KiB one (K = 4096).
  std::uint32_t evade_displacement{300};
  /// flood-flows: total short flows churned through the table, packets
  /// per flow, and how many are concurrently active (the table pressure).
  std::size_t flood_flows{2048};
  std::size_t flood_packets{16};
  std::size_t flood_active{128};
  /// interrupt-coalescing: frames delivered per coalesced burst and the
  /// probability of an adjacent swap inside each burst (arXiv 1008.4931's
  /// bounded-displacement shape).
  std::size_t coalesce_frames{16};
  double coalesce_shuffle{0.3};
};

/// The monitor-level traffic model of `scenario` (a core::scenarios name).
/// Deterministic in (scenario, seed, options). Throws std::invalid_argument
/// for unknown scenarios.
std::vector<MonitorArrival> scenario_arrivals(const std::string& scenario, std::uint64_t seed,
                                              const TrafficOptions& options = {});

struct DifferentialConfig {
  /// Defaults to every core::scenarios::names() entry.
  std::vector<std::string> scenarios;
  std::vector<std::size_t> budgets{256, 1024, 16384};
  std::vector<std::size_t> table_slots{64, 1024};
  std::uint64_t seed{1};
  TrafficOptions traffic{};
};

/// One (scenario, detector, budget, table) accuracy cell.
struct AccuracyRecord {
  std::string scenario;
  std::string detector;
  std::size_t budget_bytes{0};
  std::size_t table_slots{0};
  std::uint64_t packets{0};
  std::uint64_t flows{0};
  /// Arrivals the EXACT reference flags (the detector's own reference:
  /// RFC 4737 late for window_sketch/approx_rate, n >= 1 for bounded_n).
  std::uint64_t exact_flagged{0};
  std::uint64_t flagged{0};
  std::uint64_t false_positives{0};
  std::uint64_t false_negatives{0};
  /// FP over exact-in-order arrivals; FN over exact-flagged arrivals.
  double fp_rate{0.0};
  double fn_rate{0.0};
  /// Headline quantity: reordered ratio (window_sketch, approx_rate) or
  /// mean n over flagged packets (bounded_n).
  double exact_value{0.0};
  double est_value{0.0};
  double abs_error{0.0};
  std::uint64_t evictions{0};
};

/// Runs the full sweep; records ordered (scenario, detector, budget,
/// table) — scenario order as configured, detectors in suite order.
std::vector<AccuracyRecord> run_differential(const DifferentialConfig& config = {});

/// The frontier table: one row per record.
report::Table accuracy_table(const std::vector<AccuracyRecord>& records);

/// One {"type":"monitor_accuracy",...} record per cell.
report::Json accuracy_to_json(const AccuracyRecord& record);
void emit_accuracy_jsonl(report::JsonlWriter& out, const std::vector<AccuracyRecord>& records);

}  // namespace reorder::monitor
