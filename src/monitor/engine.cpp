#include "monitor/engine.hpp"

#include "core/verdict.hpp"
#include "util/shard_seeder.hpp"

namespace reorder::monitor {

MonitorEngine::MonitorEngine(MonitorConfig config)
    : config_{std::move(config)},
      factory_{config_.factory ? config_.factory
                               : [budget = config_.budget_bytes] { return default_suite(budget); }},
      table_{config_.table} {
  suites_.reserve(table_.slots());
  for (std::size_t i = 0; i < table_.slots(); ++i) suites_.push_back(factory_());
  closed_ = factory_();
  flow_state_bytes_ = closed_.flow_state_bytes();
}

bool MonitorEngine::ingest(std::uint64_t flow, std::uint32_t send_index) {
  const FlowTable::Ref ref = table_.lookup(flow);
  // An eviction closes the outgoing flow's bounded state into this slot's
  // totals before the new key takes the detectors over.
  if (ref.evicted) suites_[ref.slot].end_flow();
  ++arrivals_;
  return suites_[ref.slot].observe_arrival(send_index);
}

void MonitorEngine::ingest_run(std::uint64_t flow, const std::uint32_t* send_indices,
                               std::size_t count) {
  if (count == 0) return;
  const FlowTable::Ref ref = table_.lookup_run(flow, count);
  if (ref.evicted) suites_[ref.slot].end_flow();
  arrivals_ += count;
  suites_[ref.slot].observe_arrivals(send_indices, count);
}

void MonitorEngine::ingest_batch(const ingest::ArrivalBatch& batch) {
  batch.for_each_run([this](const ingest::ArrivalBatch::Run& run) {
    ingest_run(run.flow, run.send, run.count);
  });
}

void MonitorEngine::ingest_sequence(std::uint64_t flow, const std::uint32_t* arrival,
                                    std::size_t count) {
  ingest_run(flow, arrival, count);
  end_flow(flow);
}

void MonitorEngine::ingest_sequence(std::uint64_t flow,
                                    const std::vector<std::uint32_t>& arrival) {
  ingest_sequence(flow, arrival.data(), arrival.size());
}

void MonitorEngine::end_flow(std::uint64_t flow) {
  const std::ptrdiff_t slot = table_.find(flow);
  if (slot >= 0) suites_[static_cast<std::size_t>(slot)].end_flow();
}

void MonitorEngine::flush() {
  for (std::size_t i = 0; i < suites_.size(); ++i) {
    if (table_.slot_live(i)) suites_[i].end_flow();
  }
}

void MonitorEngine::observe_measurement(const core::MeasurementEvent& e) {
  ++measurements_;
  if (!e.result.admissible) return;
  ++admissible_;
  const std::uint64_t flow = flow_key(e.target, e.test);
  // The MetricEngine pair replay: each usable forward verdict is one
  // degenerate length-2 arrival sequence, closed per sample (the
  // mergeability boundary).
  for (const core::SampleResult& sample : e.result.samples) {
    if (sample.forward == core::Ordering::kInOrder) {
      ingest(flow, 0);
      ingest(flow, 1);
      end_flow(flow);
    } else if (sample.forward == core::Ordering::kReordered) {
      ingest(flow, 1);
      ingest(flow, 0);
      end_flow(flow);
    }
  }
}

std::uint64_t MonitorEngine::flow_key(std::string_view target, std::string_view test) {
  // FNV-1a over "target/test", finalized through splitmix64 so structured
  // names land on decorrelated table sets.
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
  };
  fold(target);
  h ^= static_cast<std::uint8_t>('/');
  h *= 1099511628211ull;
  fold(test);
  return util::splitmix64(h);
}

DetectorSuite MonitorEngine::snapshot() const {
  DetectorSuite out = closed_.snapshot();
  for (std::size_t i = 0; i < suites_.size(); ++i) {
    if (!table_.slot_live(i)) continue;
    DetectorSuite copy = suites_[i].snapshot();
    copy.end_flow();
    out.merge(copy);
  }
  return out;
}

void MonitorEngine::merge(const MonitorEngine& other) {
  closed_.merge(other.snapshot());
  table_.add_counters(other.table().counters());
  arrivals_ += other.arrivals_;
  measurements_ += other.measurements_;
  admissible_ += other.admissible_;
  folded_live_ += other.live_flows();
}

report::Json MonitorEngine::to_json() const {
  report::Json j = report::Json::object();
  j.set("arrivals", arrivals_);
  j.set("flows", table_.counters().insertions);
  j.set("live", live_flows());
  j.set("budget_bytes", static_cast<std::uint64_t>(config_.budget_bytes));
  j.set("flow_state_bytes", static_cast<std::uint64_t>(flow_state_bytes_));
  j.set("measurements", measurements_);
  j.set("admissible", admissible_);
  j.set("table", table_.to_json());
  j.set("detectors", snapshot().to_json());
  return j;
}

void MonitorEngine::emit_jsonl(report::JsonlWriter& out) const {
  report::Json j = report::Json::object();
  j.set("type", "monitor");
  const report::Json body = to_json();
  for (const auto& [key, value] : body.members()) j.set(key, value);
  out.write(j);
}

}  // namespace reorder::monitor
