#include "ingest/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "metrics/sequence_metrics.hpp"
#include "monitor/differential.hpp"

namespace reorder::ingest {

// ----------------------------------------------------------- SequenceEngine

metrics::MetricSuite SequenceEngine::default_suite() {
  metrics::MetricSuite suite;
  suite.add(std::make_unique<metrics::SequenceExtentMetric>());
  suite.add(std::make_unique<metrics::NReorderingMetric>());
  return suite;
}

SequenceEngine::SequenceEngine(SuiteFactory factory)
    : factory_{factory ? std::move(factory) : &SequenceEngine::default_suite} {}

void SequenceEngine::observe(std::uint64_t flow, std::uint32_t send_index) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) it = flows_.emplace(flow, factory_()).first;
  ++arrivals_;
  it->second.observe_arrival(send_index);
}

void SequenceEngine::observe_run(std::uint64_t flow, const std::uint32_t* send_indices,
                                 std::size_t count) {
  if (count == 0) return;
  auto it = flows_.find(flow);
  if (it == flows_.end()) it = flows_.emplace(flow, factory_()).first;
  arrivals_ += count;
  it->second.observe_arrivals(send_indices, count);
}

void SequenceEngine::ingest_batch(const ArrivalBatch& batch) {
  // Two phases so the per-flow state misses overlap instead of
  // serializing: resolve every run's suite first — issuing prefetches
  // for the metric objects behind it — then observe. On wide flow sets
  // (thousands of flows, state long evicted) the observe loop then runs
  // against lines already in flight, which is most of the batched
  // speedup beyond the amortized lookup itself.
  scratch_.clear();
  batch.for_each_run([this](const ArrivalBatch::Run& run) {
    auto it = flows_.find(run.flow);
    if (it == flows_.end()) it = flows_.emplace(run.flow, factory_()).first;
    arrivals_ += run.count;
    it->second.prefetch();
    scratch_.push_back(ResolvedRun{&it->second, run.send, run.count});
  });
  // Second prefetch stage: the suites' object headers are in flight from
  // phase one, so their tail-state addresses can now be hinted too.
  for (const ResolvedRun& run : scratch_) run.suite->prefetch_state();
  for (const ResolvedRun& run : scratch_) {
    run.suite->observe_arrivals(run.send, run.count);
  }
}

void SequenceEngine::end_flow(std::uint64_t flow) {
  const auto it = flows_.find(flow);
  if (it != flows_.end()) it->second.end_sequence();
}

void SequenceEngine::flush() {
  for (auto& [flow, suite] : flows_) suite.end_sequence();
}

metrics::MetricSuite SequenceEngine::merged() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  for (const auto& [flow, suite] : flows_) ids.push_back(flow);
  std::sort(ids.begin(), ids.end());
  metrics::MetricSuite out = factory_();
  for (const std::uint64_t flow : ids) {
    metrics::MetricSuite copy = flows_.at(flow).snapshot();
    copy.end_sequence();
    out.merge(copy);
  }
  return out;
}

std::vector<std::uint64_t> SequenceEngine::flow_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  for (const auto& [flow, suite] : flows_) ids.push_back(flow);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const metrics::MetricSuite* SequenceEngine::flow_suite(std::uint64_t flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? nullptr : &it->second;
}

report::Json SequenceEngine::to_json() const {
  report::Json j = report::Json::object();
  j.set("arrivals", arrivals_);
  j.set("flows", static_cast<std::uint64_t>(flows_.size()));
  j.set("metrics", merged().to_json());
  return j;
}

// ----------------------------------------------------------- IngestPipeline

IngestPipeline::IngestPipeline(PipelineConfig config, SequenceEngine* sequences,
                               monitor::MonitorEngine* monitor)
    : config_{std::move(config)}, sequences_{sequences}, monitor_{monitor} {
  if (config_.batch_capacity == 0) config_.batch_capacity = 1;
  if (config_.ring_batches == 0) config_.ring_batches = 1;
}

const PipelineStats& IngestPipeline::run(Source source) {
  stats_ = PipelineStats{};
  SpscRing<ArrivalBatch> ring{config_.ring_batches};
  // The return direction: the consumer recycles emptied batches so the
  // producer's builder runs allocation-free once warm.
  SpscRing<ArrivalBatch> free_ring{config_.ring_batches};
  std::atomic<bool> done{false};

  // Producer-/consumer-owned halves of the stats; folded after join.
  PipelineStats produced{};
  PipelineStats consumed{};

  const auto started = std::chrono::steady_clock::now();

  std::thread producer{[&] {
    ArrivalBatchBuilder builder{config_.batch_capacity};
    std::vector<Arrival> scratch(config_.batch_capacity);
    const auto ship = [&] {
      ArrivalBatch recycled;
      while (free_ring.try_pop(recycled)) builder.recycle(std::move(recycled));
      ArrivalBatch batch = builder.take();
      if (batch.empty()) return;
      ++produced.batches_produced;
      produced.arrivals_produced += batch.size();
      if (config_.backpressure == Backpressure::kSpin) {
        ring.push_spin(std::move(batch));
      } else if (!ring.push_or_drop(batch)) {
        ++produced.batches_dropped;
        produced.arrivals_dropped += batch.size();
        builder.recycle(std::move(batch));
      }
    };
    for (;;) {
      const std::size_t n = source(scratch.data(), scratch.size());
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        if (builder.push(scratch[i])) ship();
      }
    }
    if (builder.size() > 0) ship();
    done.store(true, std::memory_order_release);
  }};

  std::thread consumer{[&] {
    const std::int64_t stall_ns = config_.consumer_stall.ns();
    ArrivalBatch batch;
    const auto consume = [&] {
      if (sequences_ != nullptr) sequences_->ingest_batch(batch);
      if (monitor_ != nullptr) monitor_->ingest_batch(batch);
      ++consumed.batches_consumed;
      consumed.arrivals_consumed += batch.size();
      if (stall_ns > 0) {
        const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds{stall_ns};
        while (std::chrono::steady_clock::now() < until) {
        }
      }
      batch.clear();
      ArrivalBatch recycled = std::move(batch);
      free_ring.push_or_drop(recycled);  // full free ring: let it deallocate
      batch = std::move(recycled);       // no-op if the push took it
    };
    for (;;) {
      if (ring.try_pop(batch)) {
        consume();
        continue;
      }
      if (done.load(std::memory_order_acquire)) {
        // The producer finished: one final drain settles the race between
        // its last publish and our failed pop.
        while (ring.try_pop(batch)) consume();
        break;
      }
      std::this_thread::yield();
    }
  }};

  producer.join();
  consumer.join();

  stats_ = produced;
  stats_.arrivals_consumed = consumed.arrivals_consumed;
  stats_.batches_consumed = consumed.batches_consumed;
  ring_counters_ = ring.counters();
  stats_.spin_waits = ring_counters_.spin_waits;
  stats_.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  return stats_;
}

const PipelineStats& IngestPipeline::run(const Arrival* arrivals, std::size_t count) {
  std::size_t next = 0;
  return run([arrivals, count, next](Arrival* out, std::size_t max) mutable {
    const std::size_t n = std::min(max, count - next);
    std::copy(arrivals + next, arrivals + next + n, out);
    next += n;
    return n;
  });
}

const PipelineStats& IngestPipeline::run(const std::vector<Arrival>& arrivals) {
  return run(arrivals.data(), arrivals.size());
}

report::Json IngestPipeline::to_json() const {
  report::Json j = report::Json::object();
  j.set("backpressure",
        std::string{config_.backpressure == Backpressure::kSpin ? "spin" : "drop"});
  j.set("batch_capacity", static_cast<std::uint64_t>(config_.batch_capacity));
  j.set("ring_batches", static_cast<std::uint64_t>(config_.ring_batches));
  j.set("arrivals_produced", stats_.arrivals_produced);
  j.set("arrivals_consumed", stats_.arrivals_consumed);
  j.set("arrivals_dropped", stats_.arrivals_dropped);
  j.set("batches_produced", stats_.batches_produced);
  j.set("batches_consumed", stats_.batches_consumed);
  j.set("batches_dropped", stats_.batches_dropped);
  j.set("spin_waits", stats_.spin_waits);
  j.set("wall_ns", static_cast<std::uint64_t>(stats_.wall_ns));
  const double secs = static_cast<double>(stats_.wall_ns) / 1e9;
  j.set("arrivals_per_sec",
        secs > 0.0 ? static_cast<double>(stats_.arrivals_consumed) / secs : 0.0);
  report::Json ring = report::Json::object();
  ring.set("pushed", ring_counters_.pushed);
  ring.set("popped", ring_counters_.popped);
  ring.set("dropped", ring_counters_.dropped);
  ring.set("spin_waits", ring_counters_.spin_waits);
  j.set("ring", std::move(ring));
  return j;
}

void IngestPipeline::emit_jsonl(report::JsonlWriter& out) const {
  report::Json j = report::Json::object();
  j.set("type", "ingest");
  const report::Json body = to_json();
  for (const auto& [key, value] : body.members()) j.set(key, value);
  out.write(j);
}

std::vector<Arrival> from_monitor(const std::vector<monitor::MonitorArrival>& arrivals) {
  std::vector<Arrival> out;
  out.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    out.push_back(Arrival{arrivals[i].flow, arrivals[i].send_index,
                          static_cast<std::int64_t>(i)});
  }
  return out;
}

}  // namespace reorder::ingest
