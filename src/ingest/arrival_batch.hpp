// The unit of transfer on the line-rate ingest path: a fixed-capacity
// structure-of-arrays batch of arrivals.
//
// An arrival is (flow id, per-flow send index, timestamp): exactly the
// always-on monitor's input (monitor::MonitorArrival) plus the arrival
// clock, and exactly what trace::data_arrival_sequence() yields per flow.
// SoA layout keeps the consumer's hot loop on two dense lanes — the flow
// ids for run detection, the send indices for the metric fast path — and
// for_each_run() exposes the maximal same-flow runs that let the engines
// amortize virtual dispatch and flow-table lookups to once per run.
//
// Batches are move-only containers of plain integers: cheap to shuttle
// through an SpscRing and to recycle. ArrivalBatchBuilder refills emptied
// batches so a steady-state pipeline allocates nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reorder::ingest {

/// One observed packet arrival, producer-side (AoS; batches store SoA).
struct Arrival {
  std::uint64_t flow{0};
  std::uint32_t send_index{0};
  std::int64_t at_ns{0};
};

class ArrivalBatch {
 public:
  /// An empty batch with no storage (the moved-from / ring-slot shape).
  ArrivalBatch() = default;
  explicit ArrivalBatch(std::size_t capacity);

  ArrivalBatch(ArrivalBatch&&) = default;
  ArrivalBatch& operator=(ArrivalBatch&&) = default;
  ArrivalBatch(const ArrivalBatch&) = delete;
  ArrivalBatch& operator=(const ArrivalBatch&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Appends one arrival; false (batch unchanged) when full.
  bool push(std::uint64_t flow, std::uint32_t send_index, std::int64_t at_ns);
  bool push(const Arrival& a) { return push(a.flow, a.send_index, a.at_ns); }
  /// Empties the batch, keeping its storage for reuse.
  void clear() { size_ = 0; }

  // SoA lanes, size() entries each.
  const std::uint64_t* flows() const { return flows_.data(); }
  const std::uint32_t* send_indices() const { return send_.data(); }
  const std::int64_t* timestamps_ns() const { return at_ns_.data(); }

  /// A maximal run of consecutive same-flow arrivals within the batch.
  struct Run {
    std::uint64_t flow;
    const std::uint32_t* send;  ///< run's send indices, `count` of them
    std::size_t count;
    std::size_t offset;  ///< index of the run's first arrival in the batch
  };

  /// Calls fn(Run) for every maximal same-flow run, in batch order — the
  /// consumer's amortization grain.
  template <typename Fn>
  void for_each_run(Fn&& fn) const {
    std::size_t i = 0;
    while (i < size_) {
      const std::uint64_t flow = flows_[i];
      std::size_t j = i + 1;
      while (j < size_ && flows_[j] == flow) ++j;
      fn(Run{flow, send_.data() + i, j - i, i});
      i = j;
    }
  }

 private:
  std::size_t capacity_{0};
  std::size_t size_{0};
  std::vector<std::uint64_t> flows_;
  std::vector<std::uint32_t> send_;
  std::vector<std::int64_t> at_ns_;
};

/// Fills fixed-capacity batches and recycles emptied ones, so the
/// producer's steady state is allocation-free.
class ArrivalBatchBuilder {
 public:
  explicit ArrivalBatchBuilder(std::size_t batch_capacity);

  std::size_t batch_capacity() const { return capacity_; }
  std::size_t size() const { return current_.size(); }
  bool full() const { return current_.full(); }

  /// Appends one arrival to the batch under construction; true when the
  /// batch just became full (time to take() and ship it).
  bool push(std::uint64_t flow, std::uint32_t send_index, std::int64_t at_ns);
  bool push(const Arrival& a) { return push(a.flow, a.send_index, a.at_ns); }

  /// Yields the batch under construction (possibly empty) and re-arms
  /// with a recycled batch when one is stashed, else a fresh one.
  ArrivalBatch take();

  /// Stashes an emptied batch's storage for a later take(). Batches of a
  /// different capacity are quietly discarded.
  void recycle(ArrivalBatch batch);

 private:
  std::size_t capacity_;
  ArrivalBatch current_;
  std::vector<ArrivalBatch> spare_;
};

}  // namespace reorder::ingest
