// Bounded lock-free single-producer / single-consumer ring — the transfer
// channel of the line-rate ingest path (ROADMAP item 3).
//
// Shape and guarantees:
//
//   * power-of-two capacity; head (consumer cursor) and tail (producer
//     cursor) are monotonically increasing 64-bit counts masked into the
//     slot array, so full/empty never needs a wasted slot;
//   * the producer writes a slot THEN publishes it with a release store of
//     tail; the consumer reads tail with acquire before touching the slot.
//     Symmetrically for head on the return direction. No locks, no CAS —
//     each cursor has exactly one writer;
//   * head and tail live on separate cache lines, and each side keeps a
//     cached copy of the other's cursor so the fast path touches only its
//     own line (the classic Lamport queue refinement);
//   * batched multi-slot push/pop move several payloads per cursor
//     publish, amortizing the release store and the cross-core miss;
//   * backpressure is the caller's policy: try_push() reports a full ring,
//     push_spin() blocks spinning (counting the waits), push_or_drop()
//     sheds load and counts the drop. The counters are single-writer
//     relaxed atomics: race-free to sample live, exact once the producer
//     and consumer have quiesced (joined).
//
// The ring owns default-constructed T slots and moves payloads in and out;
// T must be default-constructible and move-assignable (ArrivalBatch and
// move-only types like unique_ptr both qualify).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace reorder::ingest {

/// One polite busy-wait beat: tells the core this is a spin loop (x86
/// `pause` releases the sibling hyperthread and cuts the exit-misprediction
/// flush; arm `yield` is the same hint), falling back to a scheduler yield
/// where no such instruction exists.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Transfer/pressure counters; summable across rings.
struct SpscRingCounters {
  std::uint64_t pushed{0};
  std::uint64_t popped{0};
  std::uint64_t dropped{0};     ///< push_or_drop() refusals
  std::uint64_t spin_waits{0};  ///< full-ring spin rounds in push_spin()
};

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two >= 1.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // ------------------------------------------------------- producer side
  /// Moves `value` in; false (value untouched) when the ring is full.
  bool try_push(T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool try_push(T&& value) { return try_push(value); }

  /// Moves in as many of values[0..count) as fit; returns how many.
  std::size_t try_push_n(T* values, std::size_t count) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t free = slots_.size() - (tail - head_cache_);
    if (free < count) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - (tail - head_cache_);
    }
    const std::size_t n = count < free ? count : static_cast<std::size_t>(free);
    for (std::size_t i = 0; i < n; ++i) slots_[(tail + i) & mask_] = std::move(values[i]);
    if (n > 0) {
      tail_.store(tail + n, std::memory_order_release);
      pushed_.fetch_add(n, std::memory_order_relaxed);
    }
    return n;
  }

  /// Spin-blocking backpressure: waits for space with exponential backoff —
  /// cpu-pause bursts doubling 1, 2, 4, ... up to kSpinPauseCap beats, then
  /// scheduler yields — so a briefly-full ring is re-probed within
  /// nanoseconds while a long-full one stops burning the consumer's core.
  /// Every failed-push round still counts into spin_waits (the counter's
  /// semantics predate the backoff and the tests pin them). Only valid
  /// while a consumer is actually draining.
  void push_spin(T value) {
    std::uint64_t rounds = 0;
    std::uint32_t pauses = 1;
    while (!try_push(value)) {
      ++rounds;
      if (pauses <= kSpinPauseCap) {
        for (std::uint32_t i = 0; i < pauses; ++i) cpu_pause();
        pauses <<= 1;
      } else {
        std::this_thread::yield();
      }
    }
    if (rounds > 0) spin_waits_.fetch_add(rounds, std::memory_order_relaxed);
  }

  /// Load-shedding backpressure: false (value untouched, drop counted)
  /// when the ring is full.
  bool push_or_drop(T& value) {
    if (try_push(value)) return true;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // ------------------------------------------------------- consumer side
  /// Moves the oldest payload into `out`; false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    popped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Moves up to `max` payloads into out[0..); returns how many.
  std::size_t try_pop_n(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = tail_cache_ - head;
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    const std::size_t n = max < avail ? max : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(slots_[(head + i) & mask_]);
    if (n > 0) {
      head_.store(head + n, std::memory_order_release);
      popped_.fetch_add(n, std::memory_order_relaxed);
    }
    return n;
  }

  /// Consumer-side emptiness probe (exact for the consumer; a producer
  /// may be publishing concurrently).
  bool empty() const {
    return head_.load(std::memory_order_relaxed) == tail_.load(std::memory_order_acquire);
  }

  /// Snapshot of the transfer counters — exact once both sides quiesced.
  SpscRingCounters counters() const {
    SpscRingCounters c;
    c.pushed = pushed_.load(std::memory_order_relaxed);
    c.popped = popped_.load(std::memory_order_relaxed);
    c.dropped = dropped_.load(std::memory_order_relaxed);
    c.spin_waits = spin_waits_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  /// Longest cpu-pause burst before push_spin degrades to yields (~a few
  /// hundred ns: about one cross-core cache-miss round trip).
  static constexpr std::uint32_t kSpinPauseCap = 64;

  std::vector<T> slots_;
  std::size_t mask_{0};
  // Consumer cursor + the consumer-owned cache of the producer's cursor.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_{0};
  std::atomic<std::uint64_t> popped_{0};
  // Producer cursor + the producer-owned cache of the consumer's cursor.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> spin_waits_{0};
};

}  // namespace reorder::ingest
