#include "ingest/parallel_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

namespace reorder::ingest {

ParallelIngestPipeline::ParallelIngestPipeline(ParallelPipelineConfig config)
    : config_{std::move(config)} {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_capacity == 0) config_.batch_capacity = 1;
  if (config_.ring_batches == 0) config_.ring_batches = 1;
  suite_factory_ = config_.suite_factory ? config_.suite_factory : &SequenceEngine::default_suite;
  if (config_.sequences) {
    sequence_shards_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) sequence_shards_.emplace_back(suite_factory_);
  }
  if (config_.monitor) {
    monitor_shards_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      monitor_shards_.emplace_back(config_.monitor_config);
    }
  }
}

const ParallelPipelineStats& ParallelIngestPipeline::run(Source source) {
  const std::size_t n_shards = config_.shards;
  stats_ = ParallelPipelineStats{};
  stats_.shards.resize(n_shards);

  // One data ring per shard, plus the return direction: consumers recycle
  // emptied sub-batches back to the dispatcher's builders, so steady state
  // allocates nothing. Each ring keeps its SPSC discipline — the
  // dispatcher thread is the only producer of every data ring and the only
  // consumer of every free ring.
  std::vector<std::unique_ptr<SpscRing<ArrivalBatch>>> rings;
  std::vector<std::unique_ptr<SpscRing<ArrivalBatch>>> free_rings;
  rings.reserve(n_shards);
  free_rings.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    rings.push_back(std::make_unique<SpscRing<ArrivalBatch>>(config_.ring_batches));
    free_rings.push_back(std::make_unique<SpscRing<ArrivalBatch>>(config_.ring_batches));
  }
  std::atomic<bool> done{false};

  struct ConsumerCounters {
    std::uint64_t arrivals{0};
    std::uint64_t batches{0};
  };
  std::vector<ConsumerCounters> consumed(n_shards);

  const auto started = std::chrono::steady_clock::now();

  std::vector<std::thread> consumers;
  consumers.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    consumers.emplace_back([&, s] {
      SequenceEngine* seq = config_.sequences ? &sequence_shards_[s] : nullptr;
      monitor::MonitorEngine* mon = config_.monitor ? &monitor_shards_[s] : nullptr;
      const std::int64_t stall_ns = config_.consumer_stall.ns();
      ArrivalBatch batch;
      const auto consume = [&] {
        if (seq != nullptr) seq->ingest_batch(batch);
        if (mon != nullptr) mon->ingest_batch(batch);
        ++consumed[s].batches;
        consumed[s].arrivals += batch.size();
        if (stall_ns > 0) {
          const auto until =
              std::chrono::steady_clock::now() + std::chrono::nanoseconds{stall_ns};
          while (std::chrono::steady_clock::now() < until) {
          }
        }
        batch.clear();
        ArrivalBatch recycled = std::move(batch);
        free_rings[s]->push_or_drop(recycled);  // full free ring: deallocate
        batch = std::move(recycled);            // no-op if the push took it
      };
      for (;;) {
        if (rings[s]->try_pop(batch)) {
          consume();
          continue;
        }
        if (done.load(std::memory_order_acquire)) {
          // Dispatcher finished: one final drain settles the race between
          // its last publish and our failed pop.
          while (rings[s]->try_pop(batch)) consume();
          break;
        }
        std::this_thread::yield();
      }
    });
  }

  // ------------------------------------------- producer + dispatcher stage
  // Runs on the calling thread: pack the source into parent batches, split
  // each by flow hash into per-shard builders, ship full sub-batches. One
  // thread does both so a 1-shard pipeline costs the same two threads as
  // the single-consumer IngestPipeline (the scaling baseline is honest).
  {
    ArrivalBatchBuilder parent_builder{config_.batch_capacity};
    std::vector<ArrivalBatchBuilder> sub_builders;
    sub_builders.reserve(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) sub_builders.emplace_back(config_.batch_capacity);
    std::vector<Arrival> scratch(config_.batch_capacity);

    const auto ship_sub = [&](std::size_t s) {
      ArrivalBatch recycled;
      while (free_rings[s]->try_pop(recycled)) sub_builders[s].recycle(std::move(recycled));
      ArrivalBatch sub = sub_builders[s].take();
      if (sub.empty()) return;
      const std::size_t fill = sub.size();
      ++stats_.dispatcher.sub_batches;
      const std::size_t bucket =
          std::min<std::size_t>(7, (fill - 1) * 8 / config_.batch_capacity);
      ++stats_.dispatcher.fill_hist[bucket];
      ++stats_.shards[s].batches_dispatched;
      stats_.shards[s].arrivals_dispatched += fill;
      if (config_.backpressure == Backpressure::kSpin) {
        rings[s]->push_spin(std::move(sub));
      } else if (!rings[s]->push_or_drop(sub)) {
        ++stats_.shards[s].batches_dropped;
        stats_.shards[s].arrivals_dropped += fill;
        sub_builders[s].recycle(std::move(sub));
      }
    };
    const auto dispatch = [&](const ArrivalBatch& parent) {
      ++stats_.dispatcher.parent_batches;
      const std::uint64_t* flows = parent.flows();
      const std::uint32_t* send = parent.send_indices();
      const std::int64_t* at = parent.timestamps_ns();
      for (std::size_t i = 0; i < parent.size(); ++i) {
        const std::size_t s = shard_of(flows[i], n_shards);
        if (sub_builders[s].push(flows[i], send[i], at[i])) ship_sub(s);
      }
    };

    for (;;) {
      const std::size_t n = source(scratch.data(), scratch.size());
      if (n == 0) break;
      stats_.arrivals_produced += n;
      for (std::size_t i = 0; i < n; ++i) {
        if (parent_builder.push(scratch[i])) {
          ArrivalBatch parent = parent_builder.take();
          dispatch(parent);
          parent.clear();
          parent_builder.recycle(std::move(parent));
        }
      }
    }
    if (parent_builder.size() > 0) dispatch(parent_builder.take());
    // Flush every shard's partial sub-batch, then let the consumers drain.
    for (std::size_t s = 0; s < n_shards; ++s) ship_sub(s);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : consumers) t.join();

  // ------------------------------------------------------------- fold stats
  std::uint64_t max_dispatched = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    ShardStats& shard = stats_.shards[s];
    shard.arrivals_consumed = consumed[s].arrivals;
    shard.batches_consumed = consumed[s].batches;
    shard.ring = rings[s]->counters();
    stats_.arrivals_consumed += shard.arrivals_consumed;
    stats_.arrivals_dropped += shard.arrivals_dropped;
    stats_.batches_consumed += shard.batches_consumed;
    stats_.batches_dropped += shard.batches_dropped;
    stats_.spin_waits += shard.ring.spin_waits;
    max_dispatched = std::max(max_dispatched, shard.arrivals_dispatched);
  }
  const std::uint64_t dispatched_total = stats_.arrivals_consumed + stats_.arrivals_dropped;
  if (dispatched_total > 0) {
    stats_.dispatcher.imbalance_ratio =
        static_cast<double>(max_dispatched) * static_cast<double>(n_shards) /
        static_cast<double>(dispatched_total);
  }
  stats_.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  return stats_;
}

const ParallelPipelineStats& ParallelIngestPipeline::run(const Arrival* arrivals,
                                                         std::size_t count) {
  std::size_t next = 0;
  return run([arrivals, count, next](Arrival* out, std::size_t max) mutable {
    const std::size_t n = std::min(max, count - next);
    std::copy(arrivals + next, arrivals + next + n, out);
    next += n;
    return n;
  });
}

const ParallelPipelineStats& ParallelIngestPipeline::run(const std::vector<Arrival>& arrivals) {
  return run(arrivals.data(), arrivals.size());
}

void ParallelIngestPipeline::flush() {
  for (SequenceEngine& seq : sequence_shards_) seq.flush();
  for (monitor::MonitorEngine& mon : monitor_shards_) mon.flush();
}

metrics::MetricSuite ParallelIngestPipeline::merged_sequences() const {
  // Re-interleave the disjoint shard flow sets into one ascending global
  // order and replay SequenceEngine::merged()'s exact fold: a fresh
  // factory suite, merging an end_sequence()'d copy of every flow's suite.
  std::vector<std::pair<std::uint64_t, const SequenceEngine*>> all;
  for (const SequenceEngine& seq : sequence_shards_) {
    for (const std::uint64_t flow : seq.flow_ids()) all.emplace_back(flow, &seq);
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  metrics::MetricSuite out = suite_factory_();
  for (const auto& [flow, seq] : all) {
    metrics::MetricSuite copy = seq->flow_suite(flow)->snapshot();
    copy.end_sequence();
    out.merge(copy);
  }
  return out;
}

report::Json ParallelIngestPipeline::sequences_json() const {
  std::uint64_t arrivals = 0;
  std::uint64_t flows = 0;
  for (const SequenceEngine& seq : sequence_shards_) {
    arrivals += seq.arrivals();
    flows += seq.flow_count();
  }
  report::Json j = report::Json::object();
  j.set("arrivals", arrivals);
  j.set("flows", flows);
  j.set("metrics", merged_sequences().to_json());
  return j;
}

monitor::MonitorEngine ParallelIngestPipeline::merged_monitor() const {
  monitor::MonitorEngine out{config_.monitor_config};
  for (const monitor::MonitorEngine& mon : monitor_shards_) out.merge(mon);
  return out;
}

report::Json ParallelIngestPipeline::to_json() const {
  report::Json j = report::Json::object();
  j.set("mode", std::string{"parallel"});
  j.set("shards", static_cast<std::uint64_t>(config_.shards));
  j.set("backpressure",
        std::string{config_.backpressure == Backpressure::kSpin ? "spin" : "drop"});
  j.set("batch_capacity", static_cast<std::uint64_t>(config_.batch_capacity));
  j.set("ring_batches", static_cast<std::uint64_t>(config_.ring_batches));
  j.set("arrivals_produced", stats_.arrivals_produced);
  j.set("arrivals_consumed", stats_.arrivals_consumed);
  j.set("arrivals_dropped", stats_.arrivals_dropped);
  j.set("batches_consumed", stats_.batches_consumed);
  j.set("batches_dropped", stats_.batches_dropped);
  j.set("spin_waits", stats_.spin_waits);
  j.set("wall_ns", static_cast<std::uint64_t>(stats_.wall_ns));
  const double secs = static_cast<double>(stats_.wall_ns) / 1e9;
  j.set("arrivals_per_sec",
        secs > 0.0 ? static_cast<double>(stats_.arrivals_consumed) / secs : 0.0);

  report::Json dispatcher = report::Json::object();
  dispatcher.set("parent_batches", stats_.dispatcher.parent_batches);
  dispatcher.set("sub_batches", stats_.dispatcher.sub_batches);
  report::Json hist = report::Json::array();
  for (const std::uint64_t count : stats_.dispatcher.fill_hist) hist.push(count);
  dispatcher.set("fill_hist", std::move(hist));
  dispatcher.set("imbalance_ratio", stats_.dispatcher.imbalance_ratio);
  j.set("dispatcher", std::move(dispatcher));

  report::Json per_shard = report::Json::array();
  for (std::size_t s = 0; s < stats_.shards.size(); ++s) {
    const ShardStats& shard = stats_.shards[s];
    report::Json item = report::Json::object();
    item.set("shard", static_cast<std::uint64_t>(s));
    item.set("arrivals_dispatched", shard.arrivals_dispatched);
    item.set("arrivals_consumed", shard.arrivals_consumed);
    item.set("arrivals_dropped", shard.arrivals_dropped);
    item.set("batches_dispatched", shard.batches_dispatched);
    item.set("batches_consumed", shard.batches_consumed);
    item.set("batches_dropped", shard.batches_dropped);
    report::Json ring = report::Json::object();
    ring.set("pushed", shard.ring.pushed);
    ring.set("popped", shard.ring.popped);
    ring.set("dropped", shard.ring.dropped);
    ring.set("spin_waits", shard.ring.spin_waits);
    item.set("ring", std::move(ring));
    if (config_.sequences) {
      item.set("sequence_arrivals", sequence_shards_[s].arrivals());
      item.set("sequence_flows", static_cast<std::uint64_t>(sequence_shards_[s].flow_count()));
    }
    if (config_.monitor) {
      item.set("monitor_arrivals", monitor_shards_[s].arrivals());
      item.set("monitor_live", monitor_shards_[s].live_flows());
    }
    per_shard.push(std::move(item));
  }
  j.set("per_shard", std::move(per_shard));
  return j;
}

void ParallelIngestPipeline::emit_jsonl(report::JsonlWriter& out) const {
  report::Json j = report::Json::object();
  j.set("type", "ingest");
  const report::Json body = to_json();
  for (const auto& [key, value] : body.members()) j.set(key, value);
  out.write(j);
}

}  // namespace reorder::ingest
