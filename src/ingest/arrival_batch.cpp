#include "ingest/arrival_batch.hpp"

#include <utility>

namespace reorder::ingest {

ArrivalBatch::ArrivalBatch(std::size_t capacity) : capacity_{capacity} {
  flows_.resize(capacity);
  send_.resize(capacity);
  at_ns_.resize(capacity);
}

bool ArrivalBatch::push(std::uint64_t flow, std::uint32_t send_index, std::int64_t at_ns) {
  if (size_ == capacity_) return false;
  flows_[size_] = flow;
  send_[size_] = send_index;
  at_ns_[size_] = at_ns;
  ++size_;
  return true;
}

ArrivalBatchBuilder::ArrivalBatchBuilder(std::size_t batch_capacity)
    : capacity_{batch_capacity == 0 ? 1 : batch_capacity}, current_{capacity_} {}

bool ArrivalBatchBuilder::push(std::uint64_t flow, std::uint32_t send_index, std::int64_t at_ns) {
  current_.push(flow, send_index, at_ns);
  return current_.full();
}

ArrivalBatch ArrivalBatchBuilder::take() {
  ArrivalBatch out = std::move(current_);
  if (!spare_.empty()) {
    current_ = std::move(spare_.back());
    spare_.pop_back();
    current_.clear();
  } else {
    current_ = ArrivalBatch{capacity_};
  }
  return out;
}

void ArrivalBatchBuilder::recycle(ArrivalBatch batch) {
  if (batch.capacity() != capacity_) return;
  batch.clear();
  spare_.push_back(std::move(batch));
}

}  // namespace reorder::ingest
