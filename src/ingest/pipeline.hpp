// The line-rate ingest pipeline (ROADMAP item 3): a producer thread
// renders an arrival stream into SoA ArrivalBatches and pushes them
// through an SpscRing to a consumer thread that drains each batch into
// the analytics engines over their batched fast paths —
// SequenceEngine (per-flow exact metrics::MetricSuite, fed one
// observe_arrivals() span per same-flow run) and
// monitor::MonitorEngine::ingest_batch() (one FlowTable::lookup_run per
// run). Both paths are bit-exact with their scalar equivalents; batching
// buys only the amortization, never the answer.
//
// Backpressure is explicit policy: kSpin blocks the producer (counting
// spin rounds), kDrop sheds whole batches (counting drops). Either way
// the ring's transfer counters surface in to_json(), so saturation is
// visible in the JSONL record, not silently absorbed.
//
// A second ring runs the other way, recycling emptied batches to the
// producer's builder: steady state allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ingest/arrival_batch.hpp"
#include "ingest/spsc_ring.hpp"
#include "metrics/metric.hpp"
#include "monitor/differential.hpp"
#include "monitor/engine.hpp"
#include "report/jsonl.hpp"
#include "util/time.hpp"

namespace reorder::ingest {

/// What the producer does when the ring is full.
enum class Backpressure {
  kSpin,  ///< block spinning until the consumer frees a slot
  kDrop,  ///< shed the batch, count it, keep going
};

/// The exact per-flow sequence analytics on the consumer side of the
/// ring: one metrics::MetricSuite per flow id, fed through the batched
/// observe_arrivals() span path (scalar observe() is the bit-exactness
/// comparator the tests drive). Snapshot/merge discipline matches the
/// other engines: merged() folds flush-closed copies of every flow's
/// suite in sorted-key order, so the JSON is byte-stable regardless of
/// hash-map iteration order.
class SequenceEngine {
 public:
  using SuiteFactory = std::function<metrics::MetricSuite()>;

  /// The line-rate default: sequence_extent + n_reordering (the
  /// O(log n)-per-arrival pair; the density metrics are survey-side).
  static metrics::MetricSuite default_suite();

  explicit SequenceEngine(SuiteFactory factory = {});

  /// Scalar path: one arrival on `flow` (one map lookup per arrival).
  void observe(std::uint64_t flow, std::uint32_t send_index);
  /// Batched path: a run of consecutive same-flow arrivals (one map
  /// lookup and one virtual fan-in per member per run).
  void observe_run(std::uint64_t flow, const std::uint32_t* send_indices, std::size_t count);
  /// Splits a batch into maximal same-flow runs through observe_run().
  void ingest_batch(const ArrivalBatch& batch);
  /// Closes `flow`'s open sequence (the suite stays, ready for more).
  void end_flow(std::uint64_t flow);
  /// Closes every flow's open sequence.
  void flush();

  std::uint64_t arrivals() const { return arrivals_; }
  std::size_t flow_count() const { return flows_.size(); }

  /// The fold of every flow's suite, each end_sequence()'d as a copy, in
  /// ascending flow-id order (deterministic bytes).
  metrics::MetricSuite merged() const;

  /// Every live flow id, ascending — merged()'s fold order, exposed so the
  /// parallel pipeline can interleave N disjoint shards into the same
  /// global order (the bit-identity argument needs the fold sequence, not
  /// just the per-flow states, to match the single engine's).
  std::vector<std::uint64_t> flow_ids() const;
  /// The flow's live suite, or nullptr; no insertion.
  const metrics::MetricSuite* flow_suite(std::uint64_t flow) const;
  const SuiteFactory& factory() const { return factory_; }

  /// {"arrivals":..,"flows":..,"metrics":{<merged suite>}}
  report::Json to_json() const;

 private:
  struct ResolvedRun {
    metrics::MetricSuite* suite;
    const std::uint32_t* send;
    std::size_t count;
  };

  SuiteFactory factory_;
  std::unordered_map<std::uint64_t, metrics::MetricSuite> flows_;
  std::vector<ResolvedRun> scratch_;  ///< ingest_batch working set, reused
  std::uint64_t arrivals_{0};
};

struct PipelineConfig {
  /// Arrivals per batch (the amortization grain).
  std::size_t batch_capacity{1024};
  /// Ring capacity in batches; rounded up to a power of two.
  std::size_t ring_batches{64};
  Backpressure backpressure{Backpressure::kSpin};
  /// Saturation knob for tests/benches: the consumer busy-waits this long
  /// after each batch, forcing the producer into its backpressure policy.
  util::Duration consumer_stall{util::Duration::nanos(0)};
};

/// One run()'s transfer accounting. consumed + dropped == produced.
struct PipelineStats {
  std::uint64_t arrivals_produced{0};
  std::uint64_t arrivals_consumed{0};
  std::uint64_t arrivals_dropped{0};
  std::uint64_t batches_produced{0};
  std::uint64_t batches_consumed{0};
  std::uint64_t batches_dropped{0};
  std::uint64_t spin_waits{0};  ///< producer spin rounds (kSpin)
  std::int64_t wall_ns{0};      ///< producer start -> consumer drained
};

class IngestPipeline {
 public:
  /// Bulk arrival source, called on the producer thread: fill up to `max`
  /// arrivals into `out`, return how many; 0 ends the stream.
  using Source = std::function<std::size_t(Arrival* out, std::size_t max)>;

  /// Either engine may be null (that side is skipped).
  IngestPipeline(PipelineConfig config, SequenceEngine* sequences,
                 monitor::MonitorEngine* monitor);

  /// Runs one producer and one consumer thread until `source` is
  /// exhausted and the ring is drained; returns the run's stats.
  const PipelineStats& run(Source source);
  /// Replays a pre-rendered stream (simulation replay / synthetic
  /// generator output) through run(Source).
  const PipelineStats& run(const Arrival* arrivals, std::size_t count);
  const PipelineStats& run(const std::vector<Arrival>& arrivals);

  const PipelineStats& stats() const { return stats_; }
  const SpscRingCounters& ring_counters() const { return ring_counters_; }

  /// {"backpressure":..,"batch_capacity":..,"ring_batches":..,
  ///  "arrivals_produced":..,...,"wall_ns":..,"arrivals_per_sec":..,
  ///  "ring":{"pushed":..,"popped":..,"dropped":..,"spin_waits":..}}
  report::Json to_json() const;
  /// One {"type":"ingest",...} JSONL record of to_json().
  void emit_jsonl(report::JsonlWriter& out) const;

 private:
  PipelineConfig config_;
  SequenceEngine* sequences_;
  monitor::MonitorEngine* monitor_;
  PipelineStats stats_;
  SpscRingCounters ring_counters_;
};

/// ingest-side view of a monitor-level arrival stream: timestamps are
/// synthesized as the stream index (the models are virtual-time).
std::vector<Arrival> from_monitor(const std::vector<monitor::MonitorArrival>& arrivals);

}  // namespace reorder::ingest
