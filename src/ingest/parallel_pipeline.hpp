// Multi-queue parallel ingest: NIC-RSS-style flow-hash sharding of the
// line-rate path across N consumer cores.
//
// The single-consumer IngestPipeline tops out at one core's analytics
// throughput; here a dispatcher stage splits every produced ArrivalBatch
// by shard_of(flow) = splitmix64(flow) % shards into per-shard sub-batches
// (filled through recycled ArrivalBatchBuilders, so steady state stays
// allocation-free) and feeds N independent SpscRings, each drained by its
// own consumer thread that owns a private SequenceEngine and/or
// monitor::MonitorEngine shard.
//
// The determinism argument, in full: a flow is pinned to exactly one
// shard for the pipeline's lifetime, the dispatcher scans parent batches
// in production order, and each shard's ring is FIFO — so every shard
// observes its flows' arrivals in exactly the global source order
// restricted to those flows. Per-flow arrival order is therefore
// preserved, and since the sequence metrics and monitor detectors keep
// only per-flow state (plus order-independent integer totals), the
// cross-shard folds — merged_sequences() interleaving all shards' flows
// back into ascending-flow-id order, merged_monitor() summing detector
// totals and table counters — are BIT-IDENTICAL to the single-consumer
// pipeline and to the scalar recurrence. (For the monitor this holds
// whenever no shard evicts, i.e. the table is provisioned for its live
// flows — the same boundary MonitorEngine::merge documents.)
// tests/parallel_ingest_test.cpp enforces the identity differentially
// over every scenario for shards in {1,2,4,8}, misaligned batch
// capacities and both backpressure policies.
//
// Observability: per-shard ring/engine counters plus dispatcher stats —
// sub-batch fill histogram (capacity eighths) and the flow-imbalance
// ratio (max shard arrivals / mean) — all land in the {"type":"ingest"}
// JSONL record. Conservation holds across all shards:
// consumed + dropped == produced.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ingest/arrival_batch.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/spsc_ring.hpp"
#include "metrics/metric.hpp"
#include "monitor/engine.hpp"
#include "report/jsonl.hpp"
#include "util/shard_seeder.hpp"
#include "util/time.hpp"

namespace reorder::ingest {

/// Which consumer shard owns `flow`. splitmix64 avalanches the id first so
/// structured flow spaces (sequential ids, (target,test) hashes) spread
/// evenly; the modulo then pins the flow to one queue — the software
/// restatement of NIC receive-side scaling's hash-to-queue indirection.
inline std::size_t shard_of(std::uint64_t flow, std::size_t shards) {
  return static_cast<std::size_t>(util::splitmix64(flow) % shards);
}

struct ParallelPipelineConfig {
  /// Consumer shard count (>= 1; clamped). shards == 1 is the degenerate
  /// single-queue pipeline, kept as the scaling baseline.
  std::size_t shards{1};
  /// Arrivals per batch — the grain of both parent and sub-batches.
  std::size_t batch_capacity{1024};
  /// Per-shard ring capacity in batches; rounded up to a power of two.
  std::size_t ring_batches{64};
  Backpressure backpressure{Backpressure::kSpin};
  /// Saturation knob: every consumer busy-waits this long per batch,
  /// forcing the dispatcher into its backpressure policy.
  util::Duration consumer_stall{util::Duration::nanos(0)};
  /// Exact per-flow sequence metrics on every shard (suite_factory, or
  /// SequenceEngine::default_suite when empty; the factory must be safe to
  /// invoke concurrently from the consumer threads).
  bool sequences{true};
  SequenceEngine::SuiteFactory suite_factory{};
  /// Bounded always-on monitor shard on every consumer.
  bool monitor{false};
  monitor::MonitorConfig monitor_config{};
};

/// One shard's transfer/consumption accounting.
struct ShardStats {
  std::uint64_t arrivals_dispatched{0};  ///< routed into this shard's ring
  std::uint64_t arrivals_consumed{0};
  std::uint64_t arrivals_dropped{0};  ///< shed whole sub-batches (kDrop)
  std::uint64_t batches_dispatched{0};
  std::uint64_t batches_consumed{0};
  std::uint64_t batches_dropped{0};
  SpscRingCounters ring{};  ///< this shard's data ring, post-quiescence
};

/// The dispatcher stage's own accounting.
struct DispatcherStats {
  std::uint64_t parent_batches{0};  ///< batches split (incl. final partial)
  std::uint64_t sub_batches{0};     ///< sub-batches shipped to shard rings
  /// Shipped sub-batch fill in capacity eighths: bucket 7 is full batches;
  /// a dispatcher that ships mostly-empty sub-batches (over-sharded, or
  /// flow-starved) shows up on the left of this histogram.
  std::array<std::uint64_t, 8> fill_hist{};
  /// max shard arrivals / (total / shards); 1.0 is a perfect split, 0 when
  /// nothing was dispatched. The RSS hash-quality number.
  double imbalance_ratio{0.0};
};

/// Whole-run accounting. Conservation across all shards:
/// arrivals_consumed + arrivals_dropped == arrivals_produced.
struct ParallelPipelineStats {
  std::uint64_t arrivals_produced{0};
  std::uint64_t arrivals_consumed{0};
  std::uint64_t arrivals_dropped{0};
  std::uint64_t batches_consumed{0};
  std::uint64_t batches_dropped{0};
  std::uint64_t spin_waits{0};  ///< dispatcher spin rounds, all shard rings
  std::int64_t wall_ns{0};      ///< run() entry -> all consumers joined
  DispatcherStats dispatcher{};
  std::vector<ShardStats> shards{};
};

class ParallelIngestPipeline {
 public:
  using Source = IngestPipeline::Source;

  explicit ParallelIngestPipeline(ParallelPipelineConfig config);

  /// Runs the dispatcher stage on the calling thread and one consumer
  /// thread per shard until `source` is exhausted and every ring is
  /// drained; returns the run's stats. The shard engines accumulate across
  /// run() calls (replay-style drivers call run repeatedly, then flush()).
  const ParallelPipelineStats& run(Source source);
  const ParallelPipelineStats& run(const Arrival* arrivals, std::size_t count);
  const ParallelPipelineStats& run(const std::vector<Arrival>& arrivals);

  std::size_t shards() const { return config_.shards; }
  const ParallelPipelineStats& stats() const { return stats_; }

  bool has_sequences() const { return config_.sequences; }
  bool has_monitor() const { return config_.monitor; }
  SequenceEngine& shard_sequences(std::size_t shard) { return sequence_shards_[shard]; }
  const SequenceEngine& shard_sequences(std::size_t shard) const {
    return sequence_shards_[shard];
  }
  monitor::MonitorEngine& shard_monitor(std::size_t shard) { return monitor_shards_[shard]; }
  const monitor::MonitorEngine& shard_monitor(std::size_t shard) const {
    return monitor_shards_[shard];
  }

  /// Closes every shard engine's open flows (the scalar engines' flush()).
  void flush();

  /// The cross-shard fold of every flow's sequence suite, re-interleaved
  /// into ascending global flow-id order — the exact fold
  /// SequenceEngine::merged() performs on a single engine, so the bytes
  /// match the single-consumer pipeline's.
  metrics::MetricSuite merged_sequences() const;
  /// {"arrivals":..,"flows":..,"metrics":{..}} — byte-identical to the
  /// single consumer's SequenceEngine::to_json().
  report::Json sequences_json() const;
  /// All monitor shards folded into one engine via MonitorEngine::merge —
  /// byte-identical to the single engine when no shard evicted.
  monitor::MonitorEngine merged_monitor() const;

  /// The extended {"type":"ingest"} body: run totals, dispatcher stats
  /// (fill histogram, imbalance ratio) and the per-shard counter array.
  report::Json to_json() const;
  void emit_jsonl(report::JsonlWriter& out) const;

 private:
  ParallelPipelineConfig config_;
  SequenceEngine::SuiteFactory suite_factory_;
  std::vector<SequenceEngine> sequence_shards_;
  std::vector<monitor::MonitorEngine> monitor_shards_;
  ParallelPipelineStats stats_;
};

}  // namespace reorder::ingest
