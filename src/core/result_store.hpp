// Columnar result storage — the archive side of the streaming pipeline.
//
// ResultStore is "just one sink": it subscribes to the same event stream
// every other sink sees and lays the data out as structure-of-arrays —
// per-measurement columns (timestamps, admissibility, per-direction
// verdict counts) and per-sample columns (forward/reverse verdicts,
// inter-packet gaps, start/completion timestamps) — indexed by
// (target, test). The columnar layout is what the ROADMAP's scale target
// wants: a survey over millions of paths appends fixed-width rows and
// report emitters can stream any column without touching the others.
//
// The session-era query API (rate_series / aggregate / compare /
// time_domain) no longer scans those columns: the store feeds the same
// event stream into an embedded metrics::MetricEngine and every query is
// a snapshot read of the incremental accumulators — the one metrics
// implementation shared by sinks, surveys and reports.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "stats/pair_difference.hpp"

namespace reorder::core {

class ResultStore final : public ResultSink {
 public:
  // ---------------------------------------------------------- sink side
  void on_sample(const SampleEvent& e) override;
  void on_measurement(const MeasurementEvent& e) override;

  // --------------------------------------------------------------- shape
  std::size_t measurement_count() const { return m_at_ns_.size(); }
  std::size_t sample_count() const { return s_gap_ns_.size(); }
  bool empty() const { return m_at_ns_.empty(); }
  /// Distinct target names, in first-seen order.
  std::vector<std::string> targets() const;
  /// Distinct test names measured against `target`, in first-seen order.
  std::vector<std::string> tests(const std::string& target) const;

  // ---------------------------------------------------------- row access
  /// A materialized view of one measurement row (cheap; references the
  /// interned name strings).
  struct MeasurementRow {
    std::string_view target;
    std::string_view test;
    util::TimePoint at;
    bool admissible{true};
    ReorderEstimate forward;
    ReorderEstimate reverse;
    /// Range of this measurement's samples in the sample columns.
    std::size_t samples_begin{0};
    std::size_t samples_end{0};
  };
  MeasurementRow measurement(std::size_t i) const;

  /// Read-only views over the per-sample columns (verdicts are Ordering
  /// values stored as bytes).
  struct SampleColumns {
    std::span<const std::uint8_t> forward;
    std::span<const std::uint8_t> reverse;
    std::span<const std::int64_t> gap_ns;
    std::span<const std::int64_t> started_ns;
    std::span<const std::int64_t> completed_ns;
  };
  SampleColumns samples() const;

  // ------------------------------------------------- session-era queries
  // All delegate to the embedded metric engine's snapshots.
  /// Mean reordering rate per admissible measurement of (target, test),
  /// in completion order — the paired series for the §IV-B comparison.
  std::vector<double> rate_series(const std::string& target, const std::string& test,
                                  bool forward) const {
    return engine_.rate_series(target, test, forward);
  }

  /// Pooled estimate over every admissible measurement of (target, test).
  ReorderEstimate aggregate(const std::string& target, const std::string& test,
                            bool forward) const {
    return engine_.aggregate(target, test, forward);
  }

  /// Paired comparison of two tests on one target (paper: 99.9% CI).
  /// Series are truncated to the shorter length; needs >= 2 measurements.
  stats::PairDifferenceResult compare(const std::string& target, const std::string& test_a,
                                      const std::string& test_b, bool forward,
                                      double confidence = 0.999) const {
    return engine_.compare(target, test_a, test_b, forward, confidence);
  }

  /// The §IV-C time-domain profile of (target, test), from the engine's
  /// incremental per-gap accumulators over admissible measurements.
  TimeDomainProfile time_domain(const std::string& target, const std::string& test) const {
    return engine_.time_domain(target, test);
  }

  /// The embedded streaming metrics engine (snapshot reads; per-key
  /// suites, JSONL `metrics` records, cross-shard merge).
  const metrics::MetricEngine& metrics() const { return engine_; }

 private:
  std::uint32_t intern(std::string_view name);

  // Interned names: ids index names_; lookup_ maps name -> id.
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> lookup_;

  // Measurement columns (one entry per completed measurement).
  std::vector<std::uint32_t> m_target_;
  std::vector<std::uint32_t> m_test_;
  std::vector<std::int64_t> m_at_ns_;
  std::vector<std::uint8_t> m_admissible_;
  std::vector<ReorderEstimate> m_forward_;
  std::vector<ReorderEstimate> m_reverse_;
  std::vector<std::size_t> m_samples_begin_;
  std::vector<std::size_t> m_samples_end_;

  // Sample columns (structure-of-arrays over every published sample).
  std::vector<std::uint8_t> s_forward_;
  std::vector<std::uint8_t> s_reverse_;
  std::vector<std::int64_t> s_gap_ns_;
  std::vector<std::int64_t> s_started_ns_;
  std::vector<std::int64_t> s_completed_ns_;
  /// Sample rows already claimed by a measurement; rows past this point
  /// belong to the measurement currently being published.
  std::size_t samples_claimed_{0};

  /// Incremental accumulators behind every query above.
  metrics::MetricEngine engine_;
};

}  // namespace reorder::core
