#include "core/syn_test.hpp"

#include "probe/packet_factory.hpp"
#include "tcpip/seq.hpp"

namespace reorder::core {

SynTest::SynTest(probe::ProbeHost& host, tcpip::Ipv4Address target, std::uint16_t port,
                 SynTestOptions options)
    : host_{host}, target_{target}, port_{port}, options_{options} {}

struct SynTest::Run : std::enable_shared_from_this<SynTest::Run> {
  probe::ProbeHost& host;
  tcpip::Ipv4Address target;
  std::uint16_t port;
  SynTestOptions options;
  TestRunConfig config;
  std::function<void(TestRunResult)> done;

  TestRunResult result;
  int sample_index{0};
  bool finished{false};

  // Per-sample flow state.
  struct Flow {
    probe::FlowAddr addr;
    std::uint32_t iss1{0};
    std::uint32_t iss2{0};
    SampleResult sample;
    struct Reply {
      bool is_synack{false};
      std::uint32_t ack{0};
      std::uint32_t seq{0};
      std::uint64_t uid{0};
      util::TimePoint at;
    };
    std::vector<Reply> replies;
    bool classified{false};
    bool closing{false};
    std::uint32_t fin_seq{0};
  };
  std::shared_ptr<Flow> flow;

  std::uint64_t timer_token{0};
  std::uint64_t timer_generation{0};

  Run(probe::ProbeHost& h, tcpip::Ipv4Address t, std::uint16_t p, SynTestOptions o,
      TestRunConfig c, std::function<void(TestRunResult)> d)
      : host{h}, target{t}, port{p}, options{o}, config{c}, done{std::move(d)} {}

  tcpip::Environment& env() { return host.env(); }

  void arm_timer(util::Duration delay, std::function<void()> fn) {
    cancel_timer();
    const std::uint64_t gen = ++timer_generation;
    timer_token = env().schedule(delay, [self = shared_from_this(), fn = std::move(fn), gen] {
      if (gen != self->timer_generation) return;
      self->timer_token = 0;
      fn();
    });
  }
  void cancel_timer() {
    if (timer_token != 0) env().cancel(timer_token);
    timer_token = 0;
    ++timer_generation;
  }

  void next_sample() {
    if (finished) return;
    if (sample_index >= config.samples) {
      finish();
      return;
    }
    begin_sample();
  }

  void begin_sample() {
    auto f = std::make_shared<Flow>();
    f->addr = host.make_flow(target, port);
    // Jitter the ISS per sample so remote stale state can never collide.
    f->iss1 = options.iss + static_cast<std::uint32_t>(sample_index) * 131'072;
    f->iss2 = f->iss1 + options.syn_offset;
    f->sample.started = env().now();
    f->sample.gap = config.inter_packet_gap;
    flow = f;

    host.register_flow(f->addr, [self = shared_from_this(), f](const tcpip::Packet& pkt) {
      self->on_packet(*f, pkt);
    });

    const probe::PacketFactory factory{f->addr};
    auto syn1 = factory.syn(f->iss1, options.advertised_mss, options.advertised_window);
    auto syn2 = factory.syn(f->iss2, options.advertised_mss, options.advertised_window);
    syn1.uid = tcpip::next_packet_uid();
    syn2.uid = tcpip::next_packet_uid();
    f->sample.fwd_uid_first = syn1.uid;
    f->sample.fwd_uid_second = syn2.uid;
    host.send(std::move(syn1));
    if (config.inter_packet_gap.is_zero()) {
      host.send(std::move(syn2));
    } else {
      env().schedule(config.inter_packet_gap,
                     [self = shared_from_this(), f, pkt = std::move(syn2)]() mutable {
                       if (self->flow != f || f->classified) return;
                       self->host.send(std::move(pkt));
                     });
    }
    arm_timer(config.sample_timeout, [this, f] { classify(*f); });
  }

  void on_packet(Flow& f, const tcpip::Packet& pkt) {
    if (f.closing) {
      // Polite-close traffic: acknowledge the remote's FIN.
      if (pkt.tcp.is_fin()) {
        const probe::PacketFactory factory{f.addr};
        const std::uint32_t fin_at = pkt.tcp.seq + static_cast<std::uint32_t>(pkt.payload.size());
        host.send(factory.ack(f.fin_seq + 1, fin_at + 1, options.advertised_window));
      }
      return;
    }
    if (f.classified) return;

    Flow::Reply r;
    r.uid = pkt.uid;
    r.seq = pkt.tcp.seq;
    r.ack = pkt.tcp.ack;
    r.at = env().now();
    if (pkt.tcp.is_syn() && pkt.tcp.is_ack()) {
      r.is_synack = true;
    } else if (pkt.tcp.is_rst() || (pkt.tcp.is_ack() && pkt.payload.empty())) {
      r.is_synack = false;  // the second-SYN response (RST or pure ACK)
    } else {
      return;  // unrelated traffic
    }
    f.replies.push_back(r);
    // A SYN/ACK plus any second reply classifies the sample. (Dual-RST
    // hosts may deliver a third packet; it is ignored.)
    const bool have_synack =
        f.replies.size() >= 1 &&
        (f.replies[0].is_synack || (f.replies.size() >= 2 && f.replies[1].is_synack));
    if (f.replies.size() >= 2 && have_synack) classify(f);
  }

  void classify(Flow& f) {
    if (f.classified) return;
    f.classified = true;
    cancel_timer();
    f.sample.completed = env().now();

    const Flow::Reply* synack = nullptr;
    for (const auto& r : f.replies) {
      if (r.is_synack) {
        synack = &r;
        break;
      }
    }
    Ordering fwd = Ordering::kLost;
    Ordering rev = Ordering::kLost;
    if (synack != nullptr) {
      // Forward: the SYN/ACK acknowledges the first-arrived SYN.
      if (synack->ack == f.iss1 + 1) {
        fwd = Ordering::kInOrder;
      } else if (synack->ack == f.iss2 + 1) {
        fwd = Ordering::kReordered;
      } else {
        fwd = Ordering::kAmbiguous;
      }
      // Reverse: the remote transmits the SYN/ACK before the second-SYN
      // response; if the response overtook it, the replies were exchanged
      // on the way back. A retransmitted SYN/ACK is not a response, so
      // look for the first non-SYN/ACK reply specifically.
      const Flow::Reply* response = nullptr;
      std::size_t synack_pos = 0;
      std::size_t response_pos = 0;
      for (std::size_t i = 0; i < f.replies.size(); ++i) {
        if (f.replies[i].is_synack && &f.replies[i] == synack) synack_pos = i;
        if (!f.replies[i].is_synack && response == nullptr) {
          response = &f.replies[i];
          response_pos = i;
        }
      }
      if (response != nullptr) {
        // Guard against SYN/ACK retransmissions: a genuine reverse-path
        // exchange delivers both replies within a fraction of the RTT. If
        // the two replies are spaced like a retransmission timeout, the
        // original SYN/ACK was lost and reply order proves nothing.
        const auto spread = synack_pos < response_pos
                                ? f.replies[response_pos].at - f.replies[synack_pos].at
                                : f.replies[synack_pos].at - f.replies[response_pos].at;
        if (spread > options.reply_spread_guard) {
          rev = Ordering::kAmbiguous;
        } else {
          rev = synack_pos < response_pos ? Ordering::kInOrder : Ordering::kReordered;
        }
        const std::size_t first = std::min(synack_pos, response_pos);
        const std::size_t second = std::max(synack_pos, response_pos);
        f.sample.rev_uid_first = f.replies[first].uid;
        f.sample.rev_uid_second = f.replies[second].uid;
      } else {
        // Lone SYN/ACK (possibly retransmitted): an ignore-second-SYN host
        // or a lost reply. The forward verdict stands; reverse cannot be
        // determined.
        rev = Ordering::kAmbiguous;
      }
    }
    f.sample.forward = fwd;
    f.sample.reverse = rev;
    result.samples.push_back(f.sample);

    polite_close(f, synack);
    ++sample_index;
    arm_timer(config.sample_spacing, [this] { next_sample(); });
  }

  /// Completes the three-way handshake with whichever ISS the remote
  /// accepted, then FINs. The remote's discard service closes in turn; its
  /// FIN is acknowledged by the flow handler above. After `close_linger`
  /// the flow is torn down regardless.
  void polite_close(Flow& f, const Flow::Reply* synack) {
    if (synack == nullptr) {
      host.unregister_flow(f.addr);
      return;
    }
    f.closing = true;
    const std::uint32_t our_next = synack->ack;  // iss + 1 of the surviving SYN
    const std::uint32_t remote_next = synack->seq + 1;
    const probe::PacketFactory factory{f.addr};
    host.send(factory.ack(our_next, remote_next, options.advertised_window));
    host.send(factory.fin(our_next, remote_next, options.advertised_window));
    f.fin_seq = our_next;
    auto addr = f.addr;
    env().schedule(options.close_linger,
                   [self = shared_from_this(), addr] { self->host.unregister_flow(addr); });
  }

  void finish() {
    if (finished) return;
    finished = true;
    cancel_timer();
    result.aggregate();
    auto cb = std::move(done);
    done = nullptr;
    if (cb) cb(std::move(result));
  }
};

void SynTest::run(const TestRunConfig& config, std::function<void(TestRunResult)> done) {
  auto run = std::make_shared<Run>(host_, target_, port_, options_, config, std::move(done));
  run->result.test_name = name();
  run->next_sample();
}

}  // namespace reorder::core
