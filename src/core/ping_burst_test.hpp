// The Bennett et al. ping-burst baseline (paper §II related work).
//
// Send a burst of ICMP echo requests and inspect the order of the
// replies. This was the pre-existing single-ended technique; the paper's
// critique — reproduced by the benches built on this class — is that
// (a) it cannot attribute a reordering to the forward or reverse path,
// so it both under-counts total reordering and over-counts either
// direction; (b) ICMP is filtered and rate-limited in practice; and
// (c) its metrics ("fraction of bursts with at least one reordering")
// are extremely sensitive to the burst size.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "probe/probe_host.hpp"
#include "util/time.hpp"

namespace reorder::core {

struct PingBurstOptions {
  int burst_size{5};              ///< Bennett: bursts of 5 (and later 100)
  std::size_t payload_bytes{48};  ///< 56-byte ICMP messages, like the study
  std::uint16_t identifier{0x4242};
  util::Duration burst_timeout{util::Duration::millis(800)};
};

/// Aggregate outcome of a ping-burst run.
struct PingBurstResult {
  int bursts{0};
  int bursts_with_reordering{0};     ///< bursts with >= 1 out-of-order reply
  int bursts_complete{0};            ///< bursts with every reply received
  std::uint64_t requests_sent{0};
  std::uint64_t replies_received{0};
  std::uint64_t total_inversions{0}; ///< summed over bursts
  std::uint64_t adjacent_pairs{0};   ///< consecutive reply pairs observed
  std::uint64_t adjacent_exchanged{0};

  double burst_reorder_fraction() const {
    return bursts > 0 ? static_cast<double>(bursts_with_reordering) / bursts : 0.0;
  }
  double pair_rate() const {
    return adjacent_pairs > 0 ? static_cast<double>(adjacent_exchanged) / adjacent_pairs : 0.0;
  }
  double reply_rate() const {
    return requests_sent > 0 ? static_cast<double>(replies_received) / requests_sent : 0.0;
  }
};

/// Runs bursts of echo requests against one target. Unlike the paper's
/// techniques this is NOT a ReorderTest: its verdicts are round-trip
/// (combined-path) by construction, which is exactly the limitation the
/// comparison benches demonstrate.
class PingBurstTest {
 public:
  PingBurstTest(probe::ProbeHost& host, tcpip::Ipv4Address target, PingBurstOptions options = {});
  ~PingBurstTest();

  PingBurstTest(const PingBurstTest&) = delete;
  PingBurstTest& operator=(const PingBurstTest&) = delete;

  /// Sends `bursts` bursts spaced by `burst_spacing`; `done` fires once.
  void run(int bursts, util::Duration burst_spacing, std::function<void(PingBurstResult)> done);

 private:
  struct Run;
  probe::ProbeHost& host_;
  tcpip::Ipv4Address target_;
  PingBurstOptions options_;
  std::shared_ptr<Run> active_;
};

}  // namespace reorder::core
