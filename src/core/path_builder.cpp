#include "core/path_builder.hpp"

#include "util/random.hpp"

namespace reorder::core {

PathHandles build_measurement_path(sim::EventLoop& loop, sim::Path& path, const PathSpec& spec,
                                   std::uint64_t seed, std::uint64_t seed_tag,
                                   trace::TraceBuffer* pre_terminal_tap, const char* tap_label) {
  PathHandles handles;
  path.emplace<sim::LinkStage>(loop, spec.ingress_link);
  if (spec.swap_probability > 0.0) {
    sim::SwapShaperConfig shaper_cfg;
    shaper_cfg.swap_probability = spec.swap_probability;
    shaper_cfg.max_hold = spec.swap_max_hold;
    handles.shaper =
        &path.emplace<sim::SwapShaper>(loop, shaper_cfg, util::Rng{seed ^ (seed_tag * 7717)});
  }
  if (spec.striped.has_value()) {
    handles.striped =
        &path.emplace<sim::StripedLink>(loop, *spec.striped, util::Rng{seed ^ (seed_tag * 7919)});
  }
  if (spec.loss_probability > 0.0) {
    path.emplace<sim::LossStage>(spec.loss_probability, util::Rng{seed ^ (seed_tag * 8111)});
  }
  if (spec.coalescer.has_value()) {
    handles.coalescer = &path.emplace<sim::InterruptCoalescer>(
        loop, *spec.coalescer, util::Rng{seed ^ (seed_tag * 8219)});
  }
  path.emplace<sim::LinkStage>(loop, spec.egress_link);
  if (pre_terminal_tap != nullptr) {
    path.emplace<trace::TraceTap>(loop, *pre_terminal_tap, tap_label);
  }
  return handles;
}

}  // namespace reorder::core
