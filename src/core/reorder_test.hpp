// The common interface of the paper's four measurement techniques.
#pragma once

#include <functional>
#include <string>

#include "core/verdict.hpp"

namespace reorder::core {

/// An asynchronous measurement technique bound to one target host. run()
/// starts the probe exchange on the event loop and invokes `done` exactly
/// once with the completed result.
class ReorderTest {
 public:
  virtual ~ReorderTest() = default;

  virtual std::string name() const = 0;

  virtual void run(const TestRunConfig& config, std::function<void(TestRunResult)> done) = 0;
};

}  // namespace reorder::core
