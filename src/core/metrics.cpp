#include "core/metrics.hpp"

#include <algorithm>

namespace reorder::core {

SequenceReorderStats analyze_sequence(const std::vector<std::uint32_t>& arrival) {
  SequenceReorderStats out;
  out.packets = arrival.size();
  double extent_sum = 0.0;
  for (std::size_t i = 0; i < arrival.size(); ++i) {
    // Earliest earlier-arrival with a larger send index; its distance back
    // from position i is this packet's reordering extent (RFC 4737 §4.2).
    std::optional<std::size_t> earliest_overtaker;
    for (std::size_t j = 0; j < i; ++j) {
      if (arrival[j] > arrival[i]) {
        earliest_overtaker = j;
        break;
      }
    }
    if (earliest_overtaker.has_value()) {
      ++out.reordered;
      const auto extent = static_cast<std::uint32_t>(i - *earliest_overtaker);
      out.max_extent = std::max(out.max_extent, extent);
      extent_sum += static_cast<double>(extent);
    }
    for (std::size_t j = i + 1; j < arrival.size(); ++j) {
      if (arrival[i] > arrival[j]) ++out.adjacent_swaps;
    }
  }
  if (out.packets > 0) out.ratio = static_cast<double>(out.reordered) / static_cast<double>(out.packets);
  if (out.reordered > 0) out.mean_extent = extent_sum / static_cast<double>(out.reordered);
  return out;
}

void TimeDomainProfile::add(util::Duration gap, Ordering forward_verdict) {
  by_gap_[gap.ns()].add(forward_verdict);
}

void TimeDomainProfile::add(util::Duration gap, const ReorderEstimate& estimate) {
  by_gap_[gap.ns()] += estimate;
}

void TimeDomainProfile::merge(const TimeDomainProfile& other) {
  for (const auto& [ns, est] : other.by_gap_) by_gap_[ns] += est;
}

std::vector<TimeDomainProfile::Point> TimeDomainProfile::points() const {
  std::vector<Point> out;
  out.reserve(by_gap_.size());
  for (const auto& [ns, est] : by_gap_) {
    out.push_back(Point{util::Duration::nanos(ns), est});
  }
  return out;
}

std::optional<ReorderEstimate> TimeDomainProfile::at(util::Duration gap) const {
  const auto it = by_gap_.find(gap.ns());
  if (it == by_gap_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> TimeDomainProfile::interpolate_rate(util::Duration gap) const {
  if (by_gap_.empty()) return std::nullopt;
  const std::int64_t g = gap.ns();
  const auto hi = by_gap_.lower_bound(g);
  // All-unusable buckets (every sample ambiguous/lost) interpolate as 0.
  if (hi == by_gap_.end()) return std::prev(by_gap_.end())->second.rate_or(0.0);
  if (hi->first == g || hi == by_gap_.begin()) return hi->second.rate_or(0.0);
  const auto lo = std::prev(hi);
  const double span = static_cast<double>(hi->first - lo->first);
  const double frac = static_cast<double>(g - lo->first) / span;
  return lo->second.rate_or(0.0) * (1.0 - frac) + hi->second.rate_or(0.0) * frac;
}

}  // namespace reorder::core
