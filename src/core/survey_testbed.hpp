// A multi-target duplex topology for survey experiments: one probe host
// and N remote hosts at distinct addresses, each behind its own emulated
// forward/reverse path, all sharing a single event loop. Probe egress is
// routed to the right forward path by destination address, which is what
// lets a SurveyEngine interleave measurement cycles against every target
// concurrently in one virtual timeline.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/path_builder.hpp"
#include "core/survey_engine.hpp"
#include "core/test_registry.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/path.hpp"
#include "probe/probe_host.hpp"
#include "probe/raw_socket.hpp"
#include "tcpip/host.hpp"

namespace reorder::core {

/// One surveyed host: its address, behaviour, paths and test suite.
struct SurveyTargetConfig {
  std::string name;
  /// Auto-assigned 10.1.0.(index+1) when left zero.
  tcpip::Ipv4Address address{};
  /// Behaviour/IPID/app configuration; the standard listener set is
  /// installed when no listeners are configured.
  tcpip::HostConfig remote{};
  PathSpec forward{};
  PathSpec reverse{};
  /// The techniques to cycle against this target (registry specs).
  std::vector<TestSpec> tests{TestSpec{"single-connection"}, TestSpec{"syn"}};
};

struct SurveyTestbedConfig {
  std::uint64_t seed{1};
  tcpip::Ipv4Address probe_addr{tcpip::Ipv4Address::from_octets(10, 0, 0, 1)};
  std::vector<SurveyTargetConfig> targets;
};

class SurveyTestbed {
 public:
  explicit SurveyTestbed(SurveyTestbedConfig config);

  sim::EventLoop& loop() { return loop_; }
  probe::ProbeHost& probe() { return *probe_; }

  std::size_t target_count() const { return targets_.size(); }
  const std::string& target_name(std::size_t i) const { return targets_.at(i)->config.name; }
  tcpip::Ipv4Address target_addr(std::size_t i) const { return targets_.at(i)->config.address; }
  tcpip::Host& target_host(std::size_t i) { return *targets_.at(i)->host; }
  const std::vector<TestSpec>& target_tests(std::size_t i) const {
    return targets_.at(i)->config.tests;
  }

  /// Registers every target (with its configured test suite) on `engine`.
  void populate(SurveyEngine& engine);

 private:
  struct TargetNet {
    SurveyTargetConfig config;
    std::unique_ptr<tcpip::Host> host;
    sim::Path forward;
    sim::Path reverse;
  };

  sim::EventLoop loop_;
  std::unique_ptr<probe::SimRawSocket> socket_;
  std::unique_ptr<probe::ProbeHost> probe_;
  std::vector<std::unique_ptr<TargetNet>> targets_;
  /// Destination address -> forward-path owner.
  std::map<std::uint32_t, TargetNet*> routes_;
};

}  // namespace reorder::core
