// A multi-target duplex topology for survey experiments: one probe host
// and N remote hosts at distinct addresses, each behind its own emulated
// forward/reverse path, all sharing a single event loop. Probe egress is
// routed to the right forward path by destination address, which is what
// lets a SurveyEngine interleave measurement cycles against every target
// concurrently in one virtual timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/path_builder.hpp"
#include "core/survey_engine.hpp"
#include "core/test_registry.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/path.hpp"
#include "probe/probe_host.hpp"
#include "probe/raw_socket.hpp"
#include "tcpip/host.hpp"

namespace reorder::core {

/// One surveyed host: its address, behaviour, paths and test suite.
struct SurveyTargetConfig {
  std::string name;
  /// Auto-assigned 10.1.0.(index+1) when left zero.
  tcpip::Ipv4Address address{};
  /// Behaviour/IPID/app configuration; the standard listener set is
  /// installed when no listeners are configured.
  tcpip::HostConfig remote{};
  PathSpec forward{};
  PathSpec reverse{};
  /// The techniques to cycle against this target (registry specs).
  std::vector<TestSpec> tests{TestSpec{"single-connection"}, TestSpec{"syn"}};

  /// Explicit stochastic identity. The sharded survey planner pins these
  /// from the target's GLOBAL fleet index (util::ShardSeeder) so the
  /// target's RNG streams are identical no matter which shard — and how
  /// many shards — the fleet is split into. When unset, the testbed
  /// derives them from the target's local index (the historical scheme,
  /// which is only stable for a fixed single-testbed layout).
  std::optional<std::uint64_t> host_seed;
  std::optional<std::uint16_t> ipid_initial;
  std::optional<std::uint64_t> forward_path_tag;
  std::optional<std::uint64_t> reverse_path_tag;
};

struct SurveyTestbedConfig {
  std::uint64_t seed{1};
  tcpip::Ipv4Address probe_addr{tcpip::Ipv4Address::from_octets(10, 0, 0, 1)};
  std::vector<SurveyTargetConfig> targets;
};

/// Defaults for targets that leave name/address unset, shared by the
/// single-testbed path (local index) and the sharded planner (global
/// index) so both derive identical worlds from identical indices.
std::string default_target_name(std::size_t index);
/// Spreads addresses across 10.1.x.y so fleets larger than one /24
/// don't wrap onto each other.
tcpip::Ipv4Address default_target_address(std::size_t index);

class SurveyTestbed {
 public:
  explicit SurveyTestbed(SurveyTestbedConfig config);

  sim::EventLoop& loop() { return loop_; }
  probe::ProbeHost& probe() { return *probe_; }

  std::size_t target_count() const { return targets_.size(); }
  const std::string& target_name(std::size_t i) const { return targets_.at(i)->config.name; }
  tcpip::Ipv4Address target_addr(std::size_t i) const { return targets_.at(i)->config.address; }
  tcpip::Host& target_host(std::size_t i) { return *targets_.at(i)->host; }
  const std::vector<TestSpec>& target_tests(std::size_t i) const {
    return targets_.at(i)->config.tests;
  }

  /// Registers every target (with its configured test suite) on `engine`.
  void populate(SurveyEngine& engine);

 private:
  struct TargetNet {
    SurveyTargetConfig config;
    std::unique_ptr<tcpip::Host> host;
    sim::Path forward;
    sim::Path reverse;
  };

  sim::EventLoop loop_;
  std::unique_ptr<probe::SimRawSocket> socket_;
  std::unique_ptr<probe::ProbeHost> probe_;
  std::vector<std::unique_ptr<TargetNet>> targets_;
  /// Destination address -> forward-path owner.
  std::map<std::uint32_t, TargetNet*> routes_;
};

}  // namespace reorder::core
