#include "core/sharded_survey.hpp"

#include <algorithm>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "core/checkpoint.hpp"
#include "report/sinks.hpp"
#include "util/fault_injector.hpp"
#include "util/shard_seeder.hpp"
#include "util/thread_pool.hpp"

namespace reorder::core {

namespace {

/// The canonical merged-log order. (target, test, at) is a total order
/// over a survey's measurements: one target runs its tests strictly
/// sequentially, so two measurements of the same (target, test) never
/// share a timestamp.
bool canonical_less(const Measurement& a, const Measurement& b) {
  return std::tie(a.target, a.test, a.at) < std::tie(b.target, b.test, b.at);
}

/// Captures the survey_end marker a shard engine publishes.
class EndCapture final : public ResultSink {
 public:
  void on_survey_end(const SurveyEvent& e) override { end = e; }
  SurveyEvent end{};
};

}  // namespace

ShardedSurveyEngine::ShardedSurveyEngine(ShardedSurveyConfig config)
    : config_{std::move(config)}, shards_{std::max<std::size_t>(1, config_.shards)} {
  // Results are keyed by target name, so duplicate names would silently
  // pool two targets' streams into one suite — and in DIFFERENT pooling
  // orders for different shard counts, voiding the bit-invariance
  // guarantee. Reject them up front (the single-testbed path only
  // catches duplicate ADDRESSES, which auto-assignment never produces).
  // Same story for addresses: the per-shard testbed only sees its own
  // subset, so a fleet-wide collision would be caught or missed depending
  // on which shards the colliding targets landed on — acceptance of a
  // config must not be shard-count-dependent.
  std::set<std::string> names;
  std::set<std::uint32_t> addresses;
  for (std::size_t i = 0; i < config_.fleet.targets.size(); ++i) {
    const SurveyTargetConfig& target = config_.fleet.targets[i];
    std::string name = target.name.empty() ? default_target_name(i) : target.name;
    if (!names.insert(name).second) {
      throw std::invalid_argument{"ShardedSurveyEngine: duplicate target name '" + name + "'"};
    }
    const tcpip::Ipv4Address address =
        target.address == tcpip::Ipv4Address{} ? default_target_address(i) : target.address;
    if (!addresses.insert(address.value()).second) {
      throw std::invalid_argument{"ShardedSurveyEngine: duplicate target address " +
                                  address.to_string()};
    }
  }
}

std::vector<std::size_t> ShardedSurveyEngine::shard_targets(std::size_t shard) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < config_.fleet.targets.size(); ++i) {
    if (util::ShardSeeder::shard_of(i, shards_) == shard) indices.push_back(i);
  }
  return indices;
}

SurveyTestbedConfig ShardedSurveyEngine::shard_config(std::size_t shard) const {
  const util::ShardSeeder seeder{config_.fleet.seed};
  SurveyTestbedConfig cfg;
  cfg.seed = config_.fleet.seed;
  cfg.probe_addr = config_.fleet.probe_addr;
  for (const std::size_t i : shard_targets(shard)) {
    SurveyTargetConfig target = config_.fleet.targets[i];
    // Global-index naming/addressing via the same helpers the testbed
    // applies locally, so a target keeps its identity under any
    // partitioning.
    if (target.name.empty()) target.name = default_target_name(i);
    if (target.address == tcpip::Ipv4Address{}) {
      target.address = default_target_address(i);
    }
    // Pin the target's whole stochastic identity to its global index;
    // explicit values a caller already set are theirs to keep.
    const util::TargetSeeds seeds = seeder.target(i);
    if (!target.host_seed) target.host_seed = seeds.host_seed;
    if (!target.ipid_initial) target.ipid_initial = seeds.ipid_initial;
    if (!target.forward_path_tag) target.forward_path_tag = seeds.forward_tag;
    if (!target.reverse_path_tag) target.reverse_path_tag = seeds.reverse_tag;
    cfg.targets.push_back(std::move(target));
  }
  return cfg;
}

ShardRunResult ShardedSurveyEngine::run_shard(std::size_t shard, const TestRunConfig& run,
                                              int rounds, util::Duration between) const {
  ShardRunResult out;
  out.shard = shard;

  SurveyTestbed bed{shard_config(shard)};
  SurveyEngine::Options options = config_.engine;
  options.retain_samples = true;
  SurveyEngine engine{bed.loop(), options};
  bed.populate(engine);

  // A custom suite factory feeds a side engine through the sink stream —
  // the embedded store engine keeps the standard suite either way.
  metrics::MetricEngine custom{config_.suite_factory ? config_.suite_factory
                                                     : metrics::SuiteFactory{&metrics::default_suite}};
  metrics::EngineSink custom_sink{custom};
  if (config_.suite_factory) engine.add_sink(custom_sink);

  EndCapture end;
  engine.add_sink(end);

  engine.run(run, rounds, between);

  out.log = engine.release_measurements();
  // A bit-exact copy of the accumulators (merge into an empty engine is
  // the contract's deep copy), taken before the shard world dies.
  out.metrics.merge(config_.suite_factory ? custom : engine.metrics());
  out.end = end.end;
  return out;
}

ShardedSurveyEngine::ShardOutcome ShardedSurveyEngine::run_shard_with_retry(
    std::size_t shard, const TestRunConfig& run, int rounds, util::Duration between) const {
  util::FaultInjector* faults = config_.engine.faults;
  const std::string run_site = "shard/" + std::to_string(shard) + "/run";
  const std::string abort_site = "shard/" + std::to_string(shard) + "/abort";
  const int max_attempts = std::max(1, config_.retry.max_attempts);
  // Fractional milliseconds so the multiplier composes exactly; sleep_for
  // takes the duration as-is.
  std::chrono::duration<double, std::milli> backoff = config_.retry.initial_backoff;

  ShardOutcome out;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    out.attempts = attempt;
    bool transient = true;
    try {
      // The worker-died-before-the-run failure class.
      if (faults != nullptr) faults->maybe_throw(run_site, util::FaultInjector::Mode::kThrow);
      ShardRunResult result = run_shard(shard, run, rounds, between);
      // The worker-died-before-harvest class: the shard world completed
      // but its results never made it out — indistinguishable, to the
      // driver, from the run never happening.
      if (faults != nullptr) {
        faults->maybe_throw(abort_site, util::FaultInjector::Mode::kShardAbort);
      }
      out.result = std::move(result);
      out.error.clear();
      return out;
    } catch (const util::InjectedFault& fault) {
      transient = fault.transient();
      out.error = fault.what();
    } catch (const std::invalid_argument&) {
      // A broken survey PLAN (unknown technique, bad config) — not a
      // runtime failure. It would fail identically on every attempt and
      // on every resume; degrading would mask the typo. Fail fast.
      throw;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    if (!transient || attempt == max_attempts) break;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * config_.retry.multiplier,
                       std::chrono::duration<double, std::milli>{config_.retry.max_backoff});
  }
  return out;
}

const std::vector<Measurement>& ShardedSurveyEngine::execute(const SurveyCheckpoint* restore_from,
                                                             const TestRunConfig& run, int rounds,
                                                             util::Duration between) {
  merged_log_.clear();
  merged_ = metrics::MetricEngine{};
  merged_end_ = SurveyEvent{};
  rounds_ = rounds;
  failed_shards_.clear();
  failure_messages_.clear();
  attempts_.assign(shards_, 0);

  std::vector<std::optional<ShardRunResult>> results(shards_);
  std::vector<std::string> errors(shards_);

  // The durable record of this run: header first, then one record per
  // completed shard, rewritten atomically on every completion. Built even
  // when it is never saved (checkpointing off) — record_shard is cheap
  // relative to a shard run and keeps the code path single.
  SurveyCheckpoint checkpoint;
  checkpoint.set_header(SurveyCheckpoint::Header{shards_, config_.fleet.targets.size(), rounds,
                                                config_.fleet.seed});
  if (restore_from != nullptr) {
    if (restore_from->header().has_value()) {
      const SurveyCheckpoint::Header& h = *restore_from->header();
      if (h.shards != shards_ || h.targets != config_.fleet.targets.size() ||
          h.rounds != rounds || h.seed != config_.fleet.seed) {
        throw std::invalid_argument{
            "ShardedSurveyEngine::resume: checkpoint header does not match this survey plan"};
      }
    }
    for (const std::size_t s : restore_from->completed_shards()) {
      if (s >= shards_) continue;  // defensively ignore out-of-range records
      results[s] = restore_from->restore_shard(s);
      checkpoint.record_shard(*results[s], restore_from->attempts(s));
    }
  }

  const bool checkpointing = !config_.checkpoint_path.empty();
  std::mutex checkpoint_mutex;
  if (checkpointing) checkpoint.save(config_.checkpoint_path);

  {
    const std::size_t threads =
        config_.threads != 0 ? config_.threads
                             : std::min(shards_, util::ThreadPool::hardware_threads());
    util::ThreadPool pool{threads};
    std::vector<std::future<void>> done;
    done.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
      if (results[s].has_value()) continue;  // restored from the checkpoint
      done.push_back(pool.submit([this, s, &results, &errors, &run, rounds, between, &checkpoint,
                                  &checkpoint_mutex, checkpointing] {
        ShardOutcome outcome = run_shard_with_retry(s, run, rounds, between);
        attempts_[s] = outcome.attempts;
        errors[s] = std::move(outcome.error);
        if (!outcome.result.has_value()) return;
        // Record (and, when enabled, persist) BEFORE the result is moved
        // into the merge slot: the checkpoint write is the completion's
        // durability point.
        {
          std::lock_guard lock{checkpoint_mutex};
          checkpoint.record_shard(*outcome.result, outcome.attempts);
          if (checkpointing) checkpoint.save(config_.checkpoint_path);
        }
        results[s] = std::move(outcome.result);
      }));
    }
    // Wait for EVERY worker before rethrowing, so a failing shard cannot
    // leave siblings writing into shared state after we unwind. Runtime
    // shard failure is data now (the degraded path), not an exception —
    // only plan errors (std::invalid_argument) and driver bugs escape
    // run_shard_with_retry.
    std::exception_ptr first_failure;
    for (auto& f : done) {
      try {
        f.get();
      } catch (...) {
        if (!first_failure) first_failure = std::current_exception();
      }
    }
    if (first_failure) std::rethrow_exception(first_failure);
  }

  // Merge. Shard order here is arbitrary bookkeeping: each (target, test)
  // key lives on exactly one shard, the canonical sort below and the
  // canonical emission order erase any trace of it.
  std::size_t total = 0;
  for (const auto& r : results) total += r.has_value() ? r->log.size() : 0;
  merged_log_.reserve(total);
  for (std::size_t s = 0; s < shards_; ++s) {
    if (!results[s].has_value()) {
      // The shard exhausted its attempts: its targets took no
      // measurements. Account for them by name so the fleet-wide report
      // reconciles (participants + failed_targets == the whole fleet).
      merged_end_.degraded = true;
      ++merged_end_.failed_shards;
      failed_shards_.push_back(s);
      failure_messages_.push_back(errors[s]);
      for (const SurveyTargetConfig& t : shard_config(s).targets) {
        merged_end_.failed_targets.push_back(t.name);
      }
      continue;
    }
    ShardRunResult& r = *results[s];
    merged_.merge(r.metrics);
    merged_end_.targets += r.end.targets;
    merged_end_.at = std::max(merged_end_.at, r.end.at);
    for (auto& m : r.log) merged_log_.push_back(std::move(m));
  }
  std::sort(merged_log_.begin(), merged_log_.end(), canonical_less);
  merged_end_.rounds = rounds_;
  merged_end_.measurements = merged_log_.size();
  return merged_log_;
}

const std::vector<Measurement>& ShardedSurveyEngine::run(const TestRunConfig& run, int rounds,
                                                         util::Duration between) {
  return execute(nullptr, run, rounds, between);
}

const std::vector<Measurement>& ShardedSurveyEngine::resume(const SurveyCheckpoint& checkpoint,
                                                            const TestRunConfig& run, int rounds,
                                                            util::Duration between) {
  return execute(&checkpoint, run, rounds, between);
}

std::vector<std::pair<std::string, bool>> ShardedSurveyEngine::participation() const {
  std::set<std::string> failed{merged_end_.failed_targets.begin(),
                               merged_end_.failed_targets.end()};
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(config_.fleet.targets.size());
  for (std::size_t i = 0; i < config_.fleet.targets.size(); ++i) {
    const SurveyTargetConfig& t = config_.fleet.targets[i];
    std::string name = t.name.empty() ? default_target_name(i) : t.name;
    const bool ok = failed.count(name) == 0;
    out.emplace_back(std::move(name), ok);
  }
  return out;
}

void ShardedSurveyEngine::replay(ResultSink& sink) const {
  sink.on_survey_begin(
      SurveyEvent{merged_end_.targets, rounds_, 0, util::TimePoint::epoch()});
  for (std::size_t i = 0; i < merged_log_.size(); ++i) {
    const Measurement& m = merged_log_[i];
    publish_result(sink, m.target, m.test, m.at, m.result, i);
  }
  sink.on_survey_end(merged_end_);
}

void ShardedSurveyEngine::emit_jsonl(report::JsonlWriter& out) const {
  report::JsonlResultSink sink{out};
  replay(sink);
  merged_.emit_jsonl(out, metrics::MetricEngine::EmitOrder::kCanonical);
  // A degraded survey's metrics stream ends with the participation
  // manifest, so a consumer of the merged metrics can reconcile the whole
  // fleet without the survey_end record. Absent on clean runs: their
  // output stays byte-identical to pre-degradation emissions.
  if (merged_end_.degraded) {
    report::Json manifest = report::Json::object();
    manifest.set("type", "participation");
    report::Json targets = report::Json::array();
    for (const auto& [name, ok] : participation()) {
      report::Json t = report::Json::object();
      t.set("target", name);
      t.set("participated", ok);
      targets.push(std::move(t));
    }
    manifest.set("targets", std::move(targets));
    out.write(manifest);
  }
}

}  // namespace reorder::core
