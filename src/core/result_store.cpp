#include "core/result_store.hpp"

#include <algorithm>

namespace reorder::core {

std::uint32_t ResultStore::intern(std::string_view name) {
  const auto it = lookup_.find(name);
  if (it != lookup_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  lookup_.emplace(names_.back(), id);
  return id;
}

void ResultStore::on_sample(const SampleEvent& e) {
  s_forward_.push_back(static_cast<std::uint8_t>(e.sample.forward));
  s_reverse_.push_back(static_cast<std::uint8_t>(e.sample.reverse));
  s_gap_ns_.push_back(e.sample.gap.ns());
  s_started_ns_.push_back(e.sample.started.ns());
  s_completed_ns_.push_back(e.sample.completed.ns());
}

void ResultStore::on_measurement(const MeasurementEvent& e) {
  engine_.observe_measurement(e);
  const std::uint32_t target = intern(e.target);
  const std::uint32_t test = intern(e.test);
  m_target_.push_back(target);
  m_test_.push_back(test);
  m_at_ns_.push_back(e.at.ns());
  m_admissible_.push_back(e.result.admissible ? 1 : 0);
  m_forward_.push_back(e.result.forward);
  m_reverse_.push_back(e.result.reverse);
  // All sample rows published since the previous measurement are this
  // measurement's (publishers emit samples, then their measurement).
  m_samples_begin_.push_back(samples_claimed_);
  m_samples_end_.push_back(s_gap_ns_.size());
  samples_claimed_ = s_gap_ns_.size();
}

std::vector<std::string> ResultStore::targets() const {
  std::vector<std::string> out;
  std::vector<bool> seen(names_.size(), false);
  for (const std::uint32_t id : m_target_) {
    if (seen[id]) continue;
    seen[id] = true;
    out.push_back(names_[id]);
  }
  return out;
}

std::vector<std::string> ResultStore::tests(const std::string& target) const {
  std::vector<std::string> out;
  const auto it = lookup_.find(target);
  if (it == lookup_.end()) return out;
  std::vector<bool> seen(names_.size(), false);
  for (std::size_t row = 0; row < m_target_.size(); ++row) {
    if (m_target_[row] != it->second || seen[m_test_[row]]) continue;
    seen[m_test_[row]] = true;
    out.push_back(names_[m_test_[row]]);
  }
  return out;
}

ResultStore::MeasurementRow ResultStore::measurement(std::size_t i) const {
  MeasurementRow row;
  row.target = names_[m_target_.at(i)];
  row.test = names_[m_test_.at(i)];
  row.at = util::TimePoint::from_ns(m_at_ns_[i]);
  row.admissible = m_admissible_[i] != 0;
  row.forward = m_forward_[i];
  row.reverse = m_reverse_[i];
  row.samples_begin = m_samples_begin_[i];
  row.samples_end = m_samples_end_[i];
  return row;
}

ResultStore::SampleColumns ResultStore::samples() const {
  return SampleColumns{s_forward_, s_reverse_, s_gap_ns_, s_started_ns_, s_completed_ns_};
}

}  // namespace reorder::core
