#include "core/result_store.hpp"

#include <algorithm>

namespace reorder::core {

std::uint32_t ResultStore::intern(std::string_view name) {
  const auto it = lookup_.find(name);
  if (it != lookup_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  lookup_.emplace(names_.back(), id);
  return id;
}

void ResultStore::on_sample(const SampleEvent& e) {
  s_forward_.push_back(static_cast<std::uint8_t>(e.sample.forward));
  s_reverse_.push_back(static_cast<std::uint8_t>(e.sample.reverse));
  s_gap_ns_.push_back(e.sample.gap.ns());
  s_started_ns_.push_back(e.sample.started.ns());
  s_completed_ns_.push_back(e.sample.completed.ns());
}

void ResultStore::on_measurement(const MeasurementEvent& e) {
  const std::uint32_t target = intern(e.target);
  const std::uint32_t test = intern(e.test);
  const std::size_t row = m_at_ns_.size();
  m_target_.push_back(target);
  m_test_.push_back(test);
  m_at_ns_.push_back(e.at.ns());
  m_admissible_.push_back(e.result.admissible ? 1 : 0);
  m_forward_.push_back(e.result.forward);
  m_reverse_.push_back(e.result.reverse);
  // All sample rows published since the previous measurement are this
  // measurement's (publishers emit samples, then their measurement).
  m_samples_begin_.push_back(samples_claimed_);
  m_samples_end_.push_back(s_gap_ns_.size());
  samples_claimed_ = s_gap_ns_.size();
  by_key_[{target, test}].push_back(row);
}

std::vector<std::string> ResultStore::targets() const {
  std::vector<std::string> out;
  std::vector<bool> seen(names_.size(), false);
  for (const std::uint32_t id : m_target_) {
    if (seen[id]) continue;
    seen[id] = true;
    out.push_back(names_[id]);
  }
  return out;
}

std::vector<std::string> ResultStore::tests(const std::string& target) const {
  std::vector<std::string> out;
  const auto it = lookup_.find(target);
  if (it == lookup_.end()) return out;
  std::vector<bool> seen(names_.size(), false);
  for (std::size_t row = 0; row < m_target_.size(); ++row) {
    if (m_target_[row] != it->second || seen[m_test_[row]]) continue;
    seen[m_test_[row]] = true;
    out.push_back(names_[m_test_[row]]);
  }
  return out;
}

ResultStore::MeasurementRow ResultStore::measurement(std::size_t i) const {
  MeasurementRow row;
  row.target = names_[m_target_.at(i)];
  row.test = names_[m_test_.at(i)];
  row.at = util::TimePoint::from_ns(m_at_ns_[i]);
  row.admissible = m_admissible_[i] != 0;
  row.forward = m_forward_[i];
  row.reverse = m_reverse_[i];
  row.samples_begin = m_samples_begin_[i];
  row.samples_end = m_samples_end_[i];
  return row;
}

ResultStore::SampleColumns ResultStore::samples() const {
  return SampleColumns{s_forward_, s_reverse_, s_gap_ns_, s_started_ns_, s_completed_ns_};
}

const std::vector<std::size_t>* ResultStore::rows_for(const std::string& target,
                                                      const std::string& test) const {
  const auto t = lookup_.find(target);
  const auto s = lookup_.find(test);
  if (t == lookup_.end() || s == lookup_.end()) return nullptr;
  const auto it = by_key_.find({t->second, s->second});
  return it == by_key_.end() ? nullptr : &it->second;
}

std::vector<double> ResultStore::rate_series(const std::string& target, const std::string& test,
                                             bool forward) const {
  std::vector<double> out;
  const auto* rows = rows_for(target, test);
  if (rows == nullptr) return out;
  for (const std::size_t row : *rows) {
    if (m_admissible_[row] == 0) continue;
    const ReorderEstimate& est = forward ? m_forward_[row] : m_reverse_[row];
    if (const auto rate = est.rate()) out.push_back(*rate);
  }
  return out;
}

ReorderEstimate ResultStore::aggregate(const std::string& target, const std::string& test,
                                       bool forward) const {
  ReorderEstimate total;
  const auto* rows = rows_for(target, test);
  if (rows == nullptr) return total;
  for (const std::size_t row : *rows) {
    if (m_admissible_[row] == 0) continue;
    total += forward ? m_forward_[row] : m_reverse_[row];
  }
  return total;
}

stats::PairDifferenceResult ResultStore::compare(const std::string& target,
                                                 const std::string& test_a,
                                                 const std::string& test_b, bool forward,
                                                 double confidence) const {
  auto a = rate_series(target, test_a, forward);
  auto b = rate_series(target, test_b, forward);
  const std::size_t n = std::min(a.size(), b.size());
  a.resize(n);
  b.resize(n);
  return stats::pair_difference_test(a, b, confidence);
}

TimeDomainProfile ResultStore::time_domain(const std::string& target,
                                           const std::string& test) const {
  TimeDomainProfile profile;
  const auto* rows = rows_for(target, test);
  if (rows == nullptr) return profile;
  for (const std::size_t row : *rows) {
    if (m_admissible_[row] == 0) continue;
    for (std::size_t i = m_samples_begin_[row]; i < m_samples_end_[row]; ++i) {
      profile.add(util::Duration::nanos(s_gap_ns_[i]), static_cast<Ordering>(s_forward_[i]));
    }
  }
  return profile;
}

}  // namespace reorder::core
