#include "core/fleet_merge.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "core/result_sink.hpp"
#include "metrics/engine.hpp"
#include "report/jsonl.hpp"
#include "report/sinks.hpp"

namespace reorder::core {

namespace {

/// One measurement and its sample lines, reassembled from a stream.
struct Group {
  std::string target;
  std::string test;
  std::int64_t at_ns{0};
  std::vector<report::Json> samples;
  report::Json measurement;
  bool has_measurement{false};
};

}  // namespace

std::vector<report::Json> merge_fleet_streams(
    const std::vector<std::vector<report::Json>>& runs) {
  std::vector<Group> groups;
  metrics::MetricEngine merged_metrics;
  SurveyEvent begin{};
  SurveyEvent end{};
  std::vector<report::Json> participation_entries;
  bool any_participation = false;

  for (const std::vector<report::Json>& run : runs) {
    // Sample lines reference their measurement by the RUN-local index;
    // regroup on it before the fleet-wide renumbering erases it.
    std::map<std::tuple<std::string, std::string, std::int64_t>, std::size_t> local;
    metrics::MetricEngine run_metrics;
    bool saw_metrics = false;
    for (const report::Json& record : run) {
      const std::string& type = record.at("type").as_string();
      if (type == "survey_begin") {
        begin.targets += static_cast<std::size_t>(record.at("targets").as_u64());
        begin.rounds = std::max(begin.rounds, static_cast<int>(record.at("rounds").as_int()));
        continue;
      }
      if (type == "sample" || type == "measurement") {
        const std::tuple<std::string, std::string, std::int64_t> key{
            record.at("target").as_string(), record.at("test").as_string(),
            record.at("measurement").as_int()};
        auto [it, fresh] = local.try_emplace(key, groups.size());
        if (fresh) {
          Group g;
          g.target = std::get<0>(key);
          g.test = std::get<1>(key);
          groups.push_back(std::move(g));
        }
        Group& g = groups[it->second];
        if (type == "sample") {
          g.samples.push_back(record);
        } else {
          g.measurement = record;
          g.has_measurement = true;
          g.at_ns = record.at("at_ns").as_int();
        }
        continue;
      }
      if (type == "survey_end") {
        end.targets += static_cast<std::size_t>(record.at("targets").as_u64());
        end.rounds = std::max(end.rounds, static_cast<int>(record.at("rounds").as_int()));
        end.at = std::max(end.at, util::TimePoint::from_ns(record.at("at_ns").as_int()));
        // Pre-degradation artifacts lack the accounting tail; treat them
        // as clean full-participation runs.
        const report::Json* degraded = record.find("degraded");
        if (degraded != nullptr && degraded->as_bool()) {
          end.degraded = true;
          end.failed_shards += static_cast<std::size_t>(record.at("failed_shards").as_u64());
          for (const report::Json& name : record.at("failed_targets").items()) {
            end.failed_targets.push_back(name.as_string());
          }
        }
        continue;
      }
      if (type == "metrics") {
        run_metrics.restore_record(record);
        saw_metrics = true;
        continue;
      }
      if (type == "participation") {
        any_participation = true;
        for (const report::Json& entry : record.at("targets").items()) {
          participation_entries.push_back(entry);
        }
        continue;
      }
      throw std::invalid_argument{"merge_fleet_streams: unknown record type '" + type + "'"};
    }
    // Pool the run's snapshots; keys shared across runs (the same target
    // measured twice) merge suite-wise via the bit-exact merge contract.
    if (saw_metrics) merged_metrics.merge(run_metrics);
  }

  for (const Group& g : groups) {
    if (!g.has_measurement) {
      throw std::runtime_error{"merge_fleet_streams: sample lines for '" + g.target + "/" +
                               g.test + "' have no measurement record (torn input?)"};
    }
  }

  // The canonical (target, test, at) order, then renumber measurement
  // indices in it — the same erasure of run/shard bookkeeping the sharded
  // engine's merge performs.
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    return std::tie(a.target, a.test, a.at_ns) < std::tie(b.target, b.test, b.at_ns);
  });

  std::vector<report::Json> out;
  begin.measurements = 0;
  begin.at = util::TimePoint::epoch();
  out.push_back(report::survey_event_json("survey_begin", begin));
  for (std::size_t i = 0; i < groups.size(); ++i) {
    Group& g = groups[i];
    for (report::Json& s : g.samples) {
      s.set("measurement", i);
      out.push_back(std::move(s));
    }
    g.measurement.set("measurement", i);
    out.push_back(std::move(g.measurement));
  }
  end.measurements = groups.size();
  out.push_back(report::survey_event_json("survey_end", end));

  std::ostringstream text;
  report::JsonlWriter writer{text};
  merged_metrics.emit_jsonl(writer, metrics::MetricEngine::EmitOrder::kCanonical);
  for (report::Json& record : report::read_jsonl_text(text.str())) {
    out.push_back(std::move(record));
  }

  if (any_participation) {
    report::Json manifest = report::Json::object();
    manifest.set("type", "participation");
    report::Json targets = report::Json::array();
    for (report::Json& entry : participation_entries) targets.push(std::move(entry));
    manifest.set("targets", std::move(targets));
    out.push_back(std::move(manifest));
  }
  return out;
}

}  // namespace reorder::core
