#include "core/ping_burst_test.hpp"

#include <algorithm>

#include "trace/analyzer.hpp"

namespace reorder::core {

struct PingBurstTest::Run : std::enable_shared_from_this<PingBurstTest::Run> {
  probe::ProbeHost& host;
  tcpip::Ipv4Address target;
  PingBurstOptions options;
  int bursts_requested{0};
  util::Duration spacing;
  std::function<void(PingBurstResult)> done;

  PingBurstResult result;
  int burst_index{0};
  std::uint16_t seq_base{0};
  std::vector<std::uint16_t> arrival;  // reply sequences in arrival order
  bool burst_open{false};
  std::uint64_t timer_token{0};
  std::uint64_t timer_generation{0};

  Run(probe::ProbeHost& h, tcpip::Ipv4Address t, PingBurstOptions o)
      : host{h}, target{t}, options{o} {}

  tcpip::Environment& env() { return host.env(); }

  void arm_timer(util::Duration delay, std::function<void()> fn) {
    const std::uint64_t gen = ++timer_generation;
    timer_token = env().schedule(delay, [self = shared_from_this(), fn = std::move(fn), gen] {
      if (gen != self->timer_generation) return;
      fn();
    });
  }

  void start() {
    host.icmp_handler = [self = shared_from_this()](const tcpip::Packet& pkt) {
      self->on_reply(pkt);
    };
    next_burst();
  }

  void next_burst() {
    if (burst_index >= bursts_requested) {
      finish();
      return;
    }
    arrival.clear();
    burst_open = true;
    seq_base = static_cast<std::uint16_t>(burst_index * options.burst_size);
    for (int i = 0; i < options.burst_size; ++i) {
      tcpip::Packet req;
      req.ip.src = host.address();
      req.ip.dst = target;
      req.ip.protocol = tcpip::IpProto::kIcmp;
      req.icmp = tcpip::IcmpEcho{tcpip::IcmpType::kEchoRequest, options.identifier,
                                 static_cast<std::uint16_t>(seq_base + i)};
      req.payload.assign(options.payload_bytes, 0x42);
      host.send(std::move(req));
      ++result.requests_sent;
    }
    arm_timer(options.burst_timeout, [this] { close_burst(); });
  }

  void on_reply(const tcpip::Packet& pkt) {
    if (!burst_open) return;
    if (!pkt.icmp.has_value() || pkt.icmp->type != tcpip::IcmpType::kEchoReply) return;
    if (pkt.icmp->identifier != options.identifier) return;
    const std::uint16_t seq = pkt.icmp->sequence;
    if (seq < seq_base || seq >= seq_base + options.burst_size) return;  // stale burst
    arrival.push_back(seq);
    ++result.replies_received;
    if (static_cast<int>(arrival.size()) == options.burst_size) close_burst();
  }

  void close_burst() {
    if (!burst_open) return;
    burst_open = false;
    ++timer_generation;
    env().cancel(timer_token);

    ++result.bursts;
    if (static_cast<int>(arrival.size()) == options.burst_size) ++result.bursts_complete;
    // Convert reply sequences to 0-based send indices for the analyzers.
    std::vector<std::uint32_t> order;
    order.reserve(arrival.size());
    for (const auto seq : arrival) order.push_back(static_cast<std::uint32_t>(seq - seq_base));
    if (trace::any_reordering(order)) ++result.bursts_with_reordering;
    result.total_inversions += trace::count_inversions(order);
    // Adjacent send-index pairs (i, i+1) observed exchanged.
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      ++result.adjacent_pairs;
      if (order[i] > order[i + 1]) ++result.adjacent_exchanged;
    }

    ++burst_index;
    arm_timer(spacing, [this] { next_burst(); });
  }

  void finish() {
    host.icmp_handler = nullptr;
    auto cb = std::move(done);
    done = nullptr;
    if (cb) cb(result);
  }
};

PingBurstTest::PingBurstTest(probe::ProbeHost& host, tcpip::Ipv4Address target,
                             PingBurstOptions options)
    : host_{host}, target_{target}, options_{options} {}

PingBurstTest::~PingBurstTest() = default;

void PingBurstTest::run(int bursts, util::Duration burst_spacing,
                        std::function<void(PingBurstResult)> done) {
  active_ = std::make_shared<Run>(host_, target_, options_);
  active_->bursts_requested = bursts;
  active_->spacing = burst_spacing;
  active_->done = std::move(done);
  active_->start();
}

}  // namespace reorder::core
