#include "core/result_sink.hpp"

namespace reorder::core {

void publish_result(ResultSink& sink, std::string_view target, std::string_view test,
                    util::TimePoint at, const TestRunResult& result,
                    std::size_t measurement_index) {
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    sink.on_sample(SampleEvent{target, test, measurement_index, i, at, result.samples[i]});
  }
  sink.on_measurement(MeasurementEvent{target, test, measurement_index, at, result});
}

}  // namespace reorder::core
