#include "core/dual_connection_test.hpp"

#include <array>

#include "tcpip/seq.hpp"

namespace reorder::core {

namespace {
bool is_pure_ack(const tcpip::Packet& pkt) {
  return pkt.tcp.is_ack() && !pkt.tcp.is_syn() && !pkt.tcp.is_fin() && !pkt.tcp.is_rst() &&
         pkt.payload.empty();
}
constexpr std::array<std::uint8_t, 1> kProbeByte{0x42};
}  // namespace

DualConnectionTest::DualConnectionTest(probe::ProbeHost& host, tcpip::Ipv4Address target,
                                       std::uint16_t port, DualConnectionOptions options)
    : host_{host}, target_{target}, port_{port}, options_{options} {}

struct DualConnectionTest::Run : std::enable_shared_from_this<DualConnectionTest::Run> {
  enum class Phase { kConnect, kValidate, kSettle, kMeasure, kClosing, kDone };

  probe::ProbeHost& host;
  DualConnectionOptions options;
  TestRunConfig config;
  std::function<void(TestRunResult)> done;
  std::function<void(const IpidAnalysis&)> on_validation;

  std::array<std::unique_ptr<probe::ProbeConnection>, 2> conns;
  int connected{0};
  bool connect_failed{false};

  TestRunResult result;
  Phase phase{Phase::kConnect};

  // Validation state.
  std::vector<IpidObservation> observations;
  int validation_sent{0};
  int validation_retries{0};

  // Measurement state.
  int sample_index{0};
  SampleResult sample;
  struct AckSeen {
    int conn;
    std::uint16_t ipid;
    std::uint64_t uid;
  };
  std::vector<AckSeen> acks;

  std::uint64_t timer_token{0};
  std::uint64_t timer_generation{0};

  Run(probe::ProbeHost& h, DualConnectionOptions o, TestRunConfig c,
      std::function<void(TestRunResult)> d)
      : host{h}, options{o}, config{c}, done{std::move(d)} {}

  tcpip::Environment& env() { return host.env(); }

  void arm_timer(util::Duration delay, std::function<void()> fn) {
    cancel_timer();
    const std::uint64_t gen = ++timer_generation;
    timer_token = env().schedule(delay, [self = shared_from_this(), fn = std::move(fn), gen] {
      if (gen != self->timer_generation) return;
      self->timer_token = 0;
      fn();
    });
  }
  void cancel_timer() {
    if (timer_token != 0) env().cancel(timer_token);
    timer_token = 0;
    ++timer_generation;
  }

  void start(tcpip::Ipv4Address target, std::uint16_t port) {
    for (int i = 0; i < 2; ++i) {
      auto opts = options.connection;
      opts.iss += static_cast<std::uint32_t>(i) * 50'000;  // keep spaces distinct
      conns[i] = std::make_unique<probe::ProbeConnection>(host, host.make_flow(target, port),
                                                          opts);
      conns[i]->on_packet = [self = shared_from_this(), i](const tcpip::Packet& pkt) {
        self->on_packet(i, pkt);
      };
      conns[i]->connect([self = shared_from_this()](bool ok) { self->on_connected(ok); });
    }
  }

  void on_connected(bool ok) {
    if (phase != Phase::kConnect) return;
    if (!ok) {
      connect_failed = true;
      result.admissible = false;
      result.note = "connect failed";
      finish();
      return;
    }
    if (++connected < 2) return;
    if (options.validate_ipid) {
      phase = Phase::kValidate;
      validation_sent = 0;
      send_next_validation_probe();
    } else {
      begin_settle();
    }
  }

  // --- validation: strictly alternating probes, one outstanding at a time ---

  void send_next_validation_probe() {
    if (validation_sent >= 2 * options.validation_probes) {
      const IpidAnalysis analysis = analyze_ipid_sequence(observations);
      if (on_validation) on_validation(analysis);
      if (analysis.verdict != IpidVerdict::kSharedMonotonic) {
        result.admissible = false;
        result.note = "ipid validation: " + to_string(analysis.verdict);
        finish();
        return;
      }
      begin_settle();
      return;
    }
    const int conn = validation_sent % 2;
    validation_retries = 0;
    conns[conn]->send_data_rel(1, kProbeByte);
    arm_timer(options.validation_timeout, [this, conn] { validation_probe_timeout(conn); });
  }

  void validation_probe_timeout(int conn) {
    if (phase != Phase::kValidate) return;
    if (++validation_retries > 3) {
      result.admissible = false;
      result.note = "ipid validation: remote unresponsive";
      finish();
      return;
    }
    conns[conn]->send_data_rel(1, kProbeByte);
    arm_timer(options.validation_timeout, [this, conn] { validation_probe_timeout(conn); });
  }

  void begin_settle() {
    phase = Phase::kSettle;
    arm_timer(util::Duration::millis(50), [this] { next_sample(); });
  }

  // --- measurement ---

  void next_sample() {
    if (phase == Phase::kDone || phase == Phase::kClosing) return;
    if (sample_index >= config.samples) {
      finish();
      return;
    }
    phase = Phase::kMeasure;
    acks.clear();
    sample = SampleResult{};
    sample.started = env().now();
    sample.gap = config.inter_packet_gap;

    auto first = conns[0]->build_data_rel(1, kProbeByte);
    auto second = conns[1]->build_data_rel(1, kProbeByte);
    first.uid = tcpip::next_packet_uid();
    second.uid = tcpip::next_packet_uid();
    sample.fwd_uid_first = first.uid;
    sample.fwd_uid_second = second.uid;
    conns[0]->send_raw(std::move(first));
    if (config.inter_packet_gap.is_zero()) {
      conns[1]->send_raw(std::move(second));
    } else {
      env().schedule(config.inter_packet_gap,
                     [self = shared_from_this(), pkt = std::move(second)]() mutable {
                       if (self->phase != Phase::kMeasure) return;
                       self->conns[1]->send_raw(std::move(pkt));
                     });
    }
    arm_timer(config.sample_timeout, [this] { classify(); });
  }

  void on_packet(int conn, const tcpip::Packet& pkt) {
    if (phase == Phase::kDone) return;
    if (pkt.tcp.is_rst() && phase != Phase::kClosing) {
      result.note = "connection reset by remote";
      while (static_cast<int>(result.samples.size()) < config.samples) {
        SampleResult s;
        s.forward = Ordering::kLost;
        s.reverse = Ordering::kLost;
        result.samples.push_back(s);
      }
      finish();
      return;
    }
    if (!is_pure_ack(pkt)) return;

    switch (phase) {
      case Phase::kValidate:
        // Only the outstanding probe's connection may answer; a stray ACK
        // from a retransmission on the other connection is ignored.
        if (conn != validation_sent % 2) break;
        observations.push_back(IpidObservation{pkt.ip.identification, conn});
        ++validation_sent;
        send_next_validation_probe();
        break;
      case Phase::kMeasure:
        acks.push_back(AckSeen{conn, pkt.ip.identification, pkt.uid});
        if (acks.size() == 2) classify();
        break;
      default:
        break;
    }
  }

  void classify() {
    cancel_timer();
    sample.completed = env().now();
    Ordering fwd = Ordering::kLost;
    Ordering rev = Ordering::kLost;
    // Need one ACK from each connection; two from the same connection
    // means the other sample (or its ACK) was lost.
    if (acks.size() >= 2 && acks[0].conn != acks[1].conn) {
      const AckSeen& a = acks[0].conn == 0 ? acks[0] : acks[1];
      const AckSeen& b = acks[0].conn == 1 ? acks[0] : acks[1];
      if (a.ipid == b.ipid) {
        fwd = Ordering::kAmbiguous;
        rev = Ordering::kAmbiguous;
      } else {
        // Forward: the remote ACKed in arrival order, and transmitted the
        // ACKs in IPID order. Connection 0's sample was sent first.
        const bool remote_sent_a_first = tcpip::ipid_lt(a.ipid, b.ipid);
        fwd = remote_sent_a_first ? Ordering::kInOrder : Ordering::kReordered;
        // Reverse: did the ACKs arrive in the order the remote sent them?
        const bool a_arrived_first = acks[0].conn == 0;
        rev = (a_arrived_first == remote_sent_a_first) ? Ordering::kInOrder
                                                       : Ordering::kReordered;
      }
      sample.rev_uid_first = acks[0].uid;
      sample.rev_uid_second = acks[1].uid;
    }
    sample.forward = fwd;
    sample.reverse = rev;
    result.samples.push_back(sample);
    ++sample_index;
    phase = Phase::kSettle;
    arm_timer(config.sample_spacing, [this] { next_sample(); });
  }

  void finish() {
    if (phase == Phase::kDone || phase == Phase::kClosing) return;
    cancel_timer();
    result.aggregate();
    if (connect_failed || !conns[0] || !conns[1] || !conns[0]->established() ||
        !conns[1]->established()) {
      for (auto& c : conns) {
        if (c) c->abort();
      }
      complete();
      return;
    }
    // Polite teardown: fill the hole (relative byte 0) so the connection
    // can close cleanly, then FIN both connections.
    phase = Phase::kClosing;
    for (auto& c : conns) c->send_data_rel(0, kProbeByte);
    auto remaining = std::make_shared<int>(2);
    arm_timer(util::Duration::millis(50), [this, remaining] {
      for (auto& c : conns) {
        c->close(2, [self = shared_from_this(), remaining] {
          if (--*remaining == 0) self->complete();
        });
      }
    });
  }

  void complete() {
    phase = Phase::kDone;
    cancel_timer();
    auto cb = std::move(done);
    done = nullptr;
    if (cb) cb(std::move(result));
  }
};

void DualConnectionTest::run(const TestRunConfig& config, std::function<void(TestRunResult)> done) {
  auto run = std::make_shared<Run>(host_, options_, config, std::move(done));
  run->result.test_name = name();
  run->on_validation = [this](const IpidAnalysis& a) { last_validation_ = a; };
  run->start(target_, port_);
}

}  // namespace reorder::core
