// Ground-truth validation of measurement verdicts (the §IV-A methodology):
// every usable sample verdict a technique reports is checked against what
// the packet traces actually show at the validation taps. Promoted out of
// the bench-only header so the report layer and the tests consume the
// same, tested implementation.
#pragma once

#include "core/verdict.hpp"
#include "trace/trace.hpp"

namespace reorder::core {

/// Per-run comparison of reported verdicts against trace ground truth:
/// reorder-event counts on each path plus per-sample disagreements.
struct TruthComparison {
  int reported_fwd{0};   ///< forward samples the test called reordered
  int actual_fwd{0};     ///< of those verifiable, how many truly were
  int reported_rev{0};
  int actual_rev{0};
  int fwd_mismatches{0};  ///< forward samples where test and trace disagree
  int rev_mismatches{0};
  int verified_samples{0};  ///< sample-direction verdicts with usable truth

  int mismatches() const { return fwd_mismatches + rev_mismatches; }
  /// Pools another run's comparison — associative, so per-run (or
  /// per-shard) truth checks combine into survey-wide totals the same
  /// way the metric accumulators do.
  TruthComparison& operator+=(const TruthComparison& o) {
    reported_fwd += o.reported_fwd;
    actual_fwd += o.actual_fwd;
    reported_rev += o.reported_rev;
    actual_rev += o.actual_rev;
    fwd_mismatches += o.fwd_mismatches;
    rev_mismatches += o.rev_mismatches;
    verified_samples += o.verified_samples;
    return *this;
  }
  /// Fraction of verified sample verdicts the traces confirmed (the
  /// paper's "99.99% of samples correct" number); empty with no data.
  std::optional<double> confirmed_fraction() const {
    if (verified_samples == 0) return std::nullopt;
    return 1.0 - static_cast<double>(mismatches()) / verified_samples;
  }
};

/// Checks every usable sample of `result` against the traces: forward
/// verdicts against the arrival order at the remote-ingress tap,
/// reverse verdicts against the departure order at the remote-egress
/// tap. Samples whose packets are missing from a trace are skipped (not
/// counted as verified).
TruthComparison compare_to_truth(const TestRunResult& result,
                                 const trace::TraceBuffer& remote_ingress,
                                 const trace::TraceBuffer& remote_egress);

}  // namespace reorder::core
