#include "core/verdict.hpp"

#include <stdexcept>

namespace reorder::core {

std::string to_string(Ordering o) {
  switch (o) {
    case Ordering::kInOrder: return "in-order";
    case Ordering::kReordered: return "reordered";
    case Ordering::kAmbiguous: return "ambiguous";
    case Ordering::kLost: return "lost";
  }
  return "?";
}

Ordering ordering_from_string(std::string_view s) {
  if (s == "in-order") return Ordering::kInOrder;
  if (s == "reordered") return Ordering::kReordered;
  if (s == "ambiguous") return Ordering::kAmbiguous;
  if (s == "lost") return Ordering::kLost;
  throw std::invalid_argument{"ordering_from_string: unknown verdict '" + std::string{s} + "'"};
}

void ReorderEstimate::add(Ordering o) {
  switch (o) {
    case Ordering::kInOrder: ++in_order; break;
    case Ordering::kReordered: ++reordered; break;
    case Ordering::kAmbiguous: ++ambiguous; break;
    case Ordering::kLost: ++lost; break;
  }
}

void TestRunResult::aggregate() {
  forward = ReorderEstimate{};
  reverse = ReorderEstimate{};
  for (const auto& s : samples) {
    forward.add(s.forward);
    reverse.add(s.reverse);
  }
}

}  // namespace reorder::core
