#include "core/verdict.hpp"

namespace reorder::core {

std::string to_string(Ordering o) {
  switch (o) {
    case Ordering::kInOrder: return "in-order";
    case Ordering::kReordered: return "reordered";
    case Ordering::kAmbiguous: return "ambiguous";
    case Ordering::kLost: return "lost";
  }
  return "?";
}

void ReorderEstimate::add(Ordering o) {
  switch (o) {
    case Ordering::kInOrder: ++in_order; break;
    case Ordering::kReordered: ++reordered; break;
    case Ordering::kAmbiguous: ++ambiguous; break;
    case Ordering::kLost: ++lost; break;
  }
}

void TestRunResult::aggregate() {
  forward = ReorderEstimate{};
  reverse = ReorderEstimate{};
  for (const auto& s : samples) {
    forward.add(s.forward);
    reverse.add(s.reverse);
  }
}

}  // namespace reorder::core
