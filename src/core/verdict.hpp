// Shared result types for all measurement techniques.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stats/summary.hpp"
#include "util/time.hpp"

namespace reorder::core {

/// Per-direction outcome of one two-packet sample.
enum class Ordering {
  kInOrder,    ///< the pair kept its transmission order
  kReordered,  ///< the pair was exchanged in flight
  kAmbiguous,  ///< the replies do not identify the order (e.g. coalesced
               ///< delayed ACK, or the reversed-variant lone final ACK)
  kLost,       ///< a sample or reply was lost; sample must be discarded
};

std::string to_string(Ordering o);

/// Inverse of to_string; throws std::invalid_argument on unknown text.
/// The checkpoint codec's side of the JSONL verdict rendering.
Ordering ordering_from_string(std::string_view s);

/// One measurement sample: a pair of probe packets and the verdicts
/// inferred from the replies. uid fields tie the sample to trace captures
/// for ground-truth validation (§IV-A).
struct SampleResult {
  Ordering forward{Ordering::kAmbiguous};
  Ordering reverse{Ordering::kAmbiguous};
  util::TimePoint started;
  util::TimePoint completed;
  util::Duration gap{};  ///< inter-packet gap used for this sample

  /// uids of the two forward sample packets, in transmission order.
  std::uint64_t fwd_uid_first{0};
  std::uint64_t fwd_uid_second{0};
  /// uids of the two reply packets, in arrival order at the probe.
  std::uint64_t rev_uid_first{0};
  std::uint64_t rev_uid_second{0};
};

/// Aggregated verdict counts for one direction. Counters are 64-bit:
/// survey-scale accumulators pool estimates across millions of
/// measurements, which overflows 32-bit counts long before the survey
/// ends.
struct ReorderEstimate {
  std::uint64_t in_order{0};
  std::uint64_t reordered{0};
  std::uint64_t ambiguous{0};
  std::uint64_t lost{0};

  void add(Ordering o);
  /// Accumulates another estimate's counts (pooling across measurements).
  ReorderEstimate& operator+=(const ReorderEstimate& o) {
    in_order += o.in_order;
    reordered += o.reordered;
    ambiguous += o.ambiguous;
    lost += o.lost;
    return *this;
  }
  std::uint64_t usable() const { return in_order + reordered; }
  std::uint64_t total() const { return usable() + ambiguous + lost; }
  /// Reordering rate over usable samples (the paper's reported quantity).
  /// Empty when no sample was usable — "no data" is not a clean path, and
  /// conflating the two (the old 0.0 return) silently misfiled dead
  /// measurements as reorder-free ones.
  std::optional<double> rate() const {
    if (usable() == 0) return std::nullopt;
    return static_cast<double>(reordered) / static_cast<double>(usable());
  }
  /// rate(), or `fallback` when there is no usable sample — for display
  /// paths that render the no-data case as a number.
  double rate_or(double fallback = 0.0) const { return rate().value_or(fallback); }
  /// Wilson interval on the rate at normal quantile z.
  stats::Proportion proportion(double z = 1.96) const {
    return stats::wilson_interval(static_cast<std::int64_t>(reordered),
                                  static_cast<std::int64_t>(usable()), z);
  }
};

/// Parameters for one test run (a "measurement" in the paper's terms:
/// a batch of samples against one host).
struct TestRunConfig {
  int samples{15};  ///< the paper's per-measurement sample count
  /// Spacing between the two packets of a sample (Fig. 7's x-axis).
  util::Duration inter_packet_gap{util::Duration::nanos(0)};
  /// Pacing between consecutive samples (the paper rate-limits probes).
  util::Duration sample_spacing{util::Duration::millis(20)};
  /// Give-up deadline per sample; must exceed RTT + the remote's delayed
  /// ACK timeout or reversed-variant verdicts will alias with loss.
  util::Duration sample_timeout{util::Duration::millis(800)};
};

/// Outcome of a test run.
struct TestRunResult {
  std::string test_name;
  std::vector<SampleResult> samples;
  ReorderEstimate forward;
  ReorderEstimate reverse;
  /// False when the technique does not apply to this host (e.g. dual
  /// connection test against random IPIDs or a load balancer).
  bool admissible{true};
  std::string note;

  /// Recomputes the per-direction aggregates from `samples`.
  void aggregate();
};

}  // namespace reorder::core
