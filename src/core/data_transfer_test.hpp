// The TCP Data Transfer Test (paper §III, "an obvious point of
// comparison"). Fetch an object from a public server and watch the
// sequencing of the returned data. Two mitigations keep TCP dynamics out
// of the measurement: the probe acknowledges the *largest* sequence number
// received — even across holes — so the server never enters loss recovery,
// and the advertised MSS/window are clamped so the server emits small
// segments in steady window-sized bursts.
//
// Only the reverse path (server -> probe) is observable; each consecutive
// pair of data segments is one sample. Note the paper's §IV-C finding:
// because these segments are larger than minimum-sized probes, their
// leading edges are further apart and time-dependent reordering processes
// exchange them less often — this bias is reproduced faithfully.
#pragma once

#include <memory>

#include "core/reorder_test.hpp"
#include "probe/probe_host.hpp"
#include "probe/prober.hpp"

namespace reorder::core {

struct DataTransferOptions {
  /// Clamped MSS the probe advertises (the server's segment size).
  std::uint16_t mss{512};
  /// Advertised window; 2*mss keeps pairs of segments in flight.
  std::uint16_t window{1024};
  /// The request sent after establishment (an HTTP GET stand-in).
  std::string request{"GET / HTTP/1.0\r\n\r\n"};
  /// Give up if the transfer stalls this long.
  util::Duration stall_timeout{util::Duration::seconds(3)};
  probe::ProbeConnectionOptions connection{};
};

class DataTransferTest final : public ReorderTest {
 public:
  DataTransferTest(probe::ProbeHost& host, tcpip::Ipv4Address target, std::uint16_t port,
                   DataTransferOptions options = {});

  std::string name() const override { return "data-transfer"; }

  /// Note: config.samples is ignored — the sample count is however many
  /// consecutive segment pairs the object transfer produces (paper
  /// footnote 2). inter_packet_gap does not apply (the server controls
  /// spacing); sample_timeout bounds the whole transfer.
  void run(const TestRunConfig& config, std::function<void(TestRunResult)> done) override;

 private:
  struct Run;
  probe::ProbeHost& host_;
  tcpip::Ipv4Address target_;
  std::uint16_t port_;
  DataTransferOptions options_;
};

}  // namespace reorder::core
