// The streaming side of the measurement pipeline.
//
// Results used to be poll-only: drivers buffered every TestRunResult and
// callers read a (target, test) map after the fact. A ResultSink inverts
// that — it is an observer the drivers publish into *as results arrive*,
// with three granularities:
//
//   on_sample       one two-packet verdict (the paper's primitive unit)
//   on_measurement  one completed test run (a batch of samples)
//   on_survey_*     lifecycle brackets around a whole survey
//
// SurveyEngine fans every completed measurement out to its attached
// sinks in event-loop order; single-test drivers (benches, examples) use
// publish_result() to feed the same sinks from a run_sync completion.
// The columnar ResultStore is itself just one sink; report emitters
// (JSONL, CSV) are others. Sinks compose: SinkFanout is a sink too.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/verdict.hpp"

namespace reorder::core {

/// One sample verdict flowing out of a measurement. The `sample` reference
/// is only valid for the duration of the callback.
struct SampleEvent {
  std::string_view target;
  std::string_view test;
  /// Index of the enclosing measurement in the publisher's completion
  /// order, and of this sample within it.
  std::size_t measurement_index{0};
  std::size_t sample_index{0};
  /// When the enclosing measurement started.
  util::TimePoint at;
  const SampleResult& sample;
};

/// One completed measurement (a test run against one target). The `result`
/// reference is only valid for the duration of the callback.
struct MeasurementEvent {
  std::string_view target;
  std::string_view test;
  std::size_t measurement_index{0};
  /// When the measurement started.
  util::TimePoint at;
  const TestRunResult& result;
};

/// Survey lifecycle marker (begin and end).
struct SurveyEvent {
  std::size_t targets{0};
  int rounds{0};
  /// Measurements completed so far (0 at begin).
  std::size_t measurements{0};
  util::TimePoint at;
  // Degraded-mode accounting (meaningful on survey_end; new fields sit
  // last so existing positional initializers keep their meaning). A
  // survey is degraded when some shard exhausted its retry budget: its
  // targets took no measurements, `targets` counts only participants,
  // and the absentees are named here so the fleet is fully accounted for.
  bool degraded{false};
  std::size_t failed_shards{0};
  std::vector<std::string> failed_targets{};
};

/// Streaming observer of measurement results. All callbacks default to
/// no-ops so sinks implement only the granularity they care about.
/// Publishers guarantee the order: survey_begin, then for each completed
/// measurement its samples (in sample order) followed by the measurement
/// itself, then survey_end.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void on_survey_begin(const SurveyEvent&) {}
  virtual void on_sample(const SampleEvent&) {}
  virtual void on_measurement(const MeasurementEvent&) {}
  virtual void on_survey_end(const SurveyEvent&) {}
};

/// Fans every event out to N sinks in attachment order. Being a sink
/// itself, fanouts nest.
class SinkFanout final : public ResultSink {
 public:
  /// Attaches a sink (not owned; must outlive the fanout).
  void add(ResultSink& sink) { sinks_.push_back(&sink); }
  std::size_t size() const { return sinks_.size(); }

  void on_survey_begin(const SurveyEvent& e) override {
    for (auto* s : sinks_) s->on_survey_begin(e);
  }
  void on_sample(const SampleEvent& e) override {
    for (auto* s : sinks_) s->on_sample(e);
  }
  void on_measurement(const MeasurementEvent& e) override {
    for (auto* s : sinks_) s->on_measurement(e);
  }
  void on_survey_end(const SurveyEvent& e) override {
    for (auto* s : sinks_) s->on_survey_end(e);
  }

 private:
  std::vector<ResultSink*> sinks_;
};

/// Publishes one completed run as its event stream — per-sample events in
/// sample order, then the measurement event. This is how single-test
/// drivers (run_sync call sites) feed the same sinks the survey engine
/// publishes into.
void publish_result(ResultSink& sink, std::string_view target, std::string_view test,
                    util::TimePoint at, const TestRunResult& result,
                    std::size_t measurement_index = 0);

}  // namespace reorder::core
