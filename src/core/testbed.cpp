#include "core/testbed.hpp"

namespace reorder::core {

tcpip::HostConfig default_remote_config(std::size_t object_size) {
  tcpip::HostConfig cfg;
  cfg.name = "remote";
  cfg.listeners[kDiscardPort] = tcpip::ListenerConfig{tcpip::AppKind::kDiscard, 0};
  cfg.listeners[kEchoPort] = tcpip::ListenerConfig{tcpip::AppKind::kEcho, 0};
  cfg.listeners[kHttpPort] = tcpip::ListenerConfig{tcpip::AppKind::kObjectServer, object_size};
  return cfg;
}

Testbed::Testbed(TestbedConfig config) : config_{std::move(config)}, loop_{config_.scheduler} {
  socket_ = std::make_unique<probe::SimRawSocket>(loop_, config_.probe_addr);
  probe_ = std::make_unique<probe::ProbeHost>(loop_, *socket_);

  // Remote host(s). With backends > 1 each host believes it owns the VIP.
  if (config_.remote.listeners.empty()) config_.remote = default_remote_config();
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.backends); ++i) {
    tcpip::HostConfig host_cfg = config_.remote;
    host_cfg.address = config_.remote_addr;
    host_cfg.seed = config_.seed * 1000 + i + 1;
    // Distinct IPID starting points make disjoint counter spaces obvious.
    host_cfg.ipid_initial = static_cast<std::uint16_t>(1 + 17'000 * i);
    remotes_.push_back(std::make_unique<tcpip::Host>(loop_, std::move(host_cfg)));
  }
  if (remotes_.size() > 1) {
    std::vector<tcpip::Host*> raw;
    raw.reserve(remotes_.size());
    for (auto& h : remotes_) raw.push_back(h.get());
    balancer_.emplace(std::move(raw), config_.seed ^ 0x9e3779b9u);
  }

  // Forward: probe -> (stages) -> ingress tap -> remote/balancer.
  const PathHandles fwd = build_measurement_path(loop_, forward_, config_.forward, config_.seed,
                                                 0x11, &remote_ingress_, "remote-ingress");
  fwd_shaper_ = fwd.shaper;
  fwd_striped_ = fwd.striped;
  forward_.terminate([this](tcpip::Packet pkt) {
    if (balancer_) {
      balancer_->receive(pkt);
    } else {
      remotes_[0]->receive(pkt);
    }
    // The packet dies here (hosts consume it by const ref): recycle its
    // payload buffer for the next sender.
    tcpip::recycle(std::move(pkt));
  });
  socket_->set_transmit(forward_.entry());

  // Reverse: remote -> egress tap -> (stages) -> probe ingress tap -> probe.
  reverse_.emplace<trace::TraceTap>(loop_, remote_egress_, "remote-egress");
  const PathHandles rev = build_measurement_path(loop_, reverse_, config_.reverse, config_.seed,
                                                 0x22, &probe_ingress_, "probe-ingress");
  rev_shaper_ = rev.shaper;
  rev_striped_ = rev.striped;
  reverse_.terminate([this](tcpip::Packet pkt) { socket_->deliver(std::move(pkt)); });
  auto reverse_entry = reverse_.entry();
  for (auto& host : remotes_) host->set_transmit(reverse_entry);
}

TestRunResult Testbed::run_sync(ReorderTest& test, const TestRunConfig& config,
                                std::int64_t deadline_s) {
  // The completion slot is shared with the callback, not a stack reference:
  // a run abandoned at the deadline has no abort path, so its completion
  // can fire during a LATER run_sync on the same loop — it must land in
  // this orphaned (heap) slot and be discarded, not scribble over a dead
  // stack frame.
  auto out = std::make_shared<std::optional<TestRunResult>>();
  test.run(config, [out](TestRunResult r) {
    if (!out->has_value()) *out = std::move(r);
  });
  loop_.run_while(loop_.now() + util::Duration::seconds(deadline_s),
                  [&out] { return !out->has_value(); });
  if (!out->has_value()) {
    // Poison the slot so the late completion above is dropped rather than
    // resurrected by a future reader.
    out->emplace();
    TestRunResult r;
    r.test_name = test.name();
    r.admissible = false;
    r.note = "test did not complete (event queue drained or deadline)";
    return r;
  }
  return std::move(**out);
}

}  // namespace reorder::core
