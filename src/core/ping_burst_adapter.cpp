#include "core/ping_burst_adapter.hpp"

#include <algorithm>

namespace reorder::core {

PingBurstAdapter::PingBurstAdapter(probe::ProbeHost& host, tcpip::Ipv4Address target,
                                   PingBurstOptions options)
    : burst_{host, target, options}, burst_size_{options.burst_size} {}

void PingBurstAdapter::run(const TestRunConfig& config, std::function<void(TestRunResult)> done) {
  burst_.run(config.samples, config.sample_spacing,
             [this, done = std::move(done)](PingBurstResult r) {
               last_ = r;
               TestRunResult out;
               out.test_name = name();
               out.forward.in_order =
                   static_cast<std::uint64_t>(r.adjacent_pairs - r.adjacent_exchanged);
               out.forward.reordered = static_cast<std::uint64_t>(r.adjacent_exchanged);
               // Same unit as the pair counts above: adjacent pairs a
               // complete run would have produced but lost replies ate.
               const std::int64_t expected_pairs =
                   static_cast<std::int64_t>(r.bursts) * std::max(0, burst_size_ - 1);
               out.forward.lost = static_cast<std::uint64_t>(
                   std::max<std::int64_t>(0, expected_pairs -
                                                 static_cast<std::int64_t>(r.adjacent_pairs)));
               out.admissible = r.replies_received > 0;
               out.note = out.admissible
                              ? "round-trip verdicts: forward holds combined-path pair counts "
                                "(direction-ambiguous)"
                              : "no echo replies (ICMP filtered or rate-limited away)";
               done(std::move(out));
             });
}

}  // namespace reorder::core
