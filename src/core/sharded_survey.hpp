// The sharded parallel survey runtime — the paper's §IV fleet survey
// scaled across cores.
//
// A fleet of survey targets is partitioned into N independent simulation
// SHARDS. Each shard is a complete world of its own: its own
// sim::EventLoop, SurveyTestbed (probe + the shard's targets + their
// paths), SurveyEngine and metric accumulators. Shards share NO mutable
// state, so they run concurrently on a util::ThreadPool with no locks in
// the simulation hot path — wall clock scales with cores instead of
// fleet size.
//
// The headline guarantee is bit-exact shard invariance: for a fixed
// fleet config and seed, every per-(target, test) metric snapshot and
// the canonical merged JSONL are IDENTICAL for any shard count. Three
// mechanisms compose to deliver it:
//
//   1. util::ShardSeeder pins every target's stochastic identity (host
//      RNG, IPID origin, per-path-stage RNG tags) to the target's GLOBAL
//      fleet index, so re-partitioning never reroutes a random stream.
//   2. Per-target independence inside a shard: targets interact only
//      with their own paths and flows, so co-residents on one loop do
//      not perturb each other (the property the survey-engine
//      concurrent-vs-sequential equivalence test pins).
//   3. The metrics::Metric merge() contract: per-shard accumulators
//      combine associatively and bit-exactly, and each (target, test)
//      key lives on exactly one shard, so the merged engine equals the
//      one a single shard would have built.
//
// Outputs are canonicalized, not streamed: the merged completion log is
// ordered by (target, test, at) and measurement indices are renumbered
// in that order, so emission is a pure function of the merged data — the
// thread schedule cannot leak into a byte of output.
#pragma once

#include <cstddef>
#include <vector>

#include "core/survey_engine.hpp"
#include "core/survey_testbed.hpp"
#include "metrics/engine.hpp"
#include "report/jsonl.hpp"

namespace reorder::core {

struct ShardedSurveyConfig {
  /// The whole fleet in global declaration order — the order ShardSeeder
  /// derivation, the shard plan and the canonical outputs all key on.
  SurveyTestbedConfig fleet;
  /// Number of simulation shards (clamped to >= 1). More shards than
  /// targets leaves the excess empty; that is harmless and still merges.
  std::size_t shards{1};
  /// Worker threads driving the shards; 0 picks
  /// min(shards, ThreadPool::hardware_threads()).
  std::size_t threads{0};
  /// Per-shard engine options. retain_samples is forced on internally so
  /// the merged log can replay full event streams.
  SurveyEngine::Options engine{};
  /// Per-shard metric suite factory; null uses metrics::default_suite.
  /// Replaces (not augments) the standard suite, exactly as it would on a
  /// single engine — the query shims below then answer from whatever
  /// standard metrics the custom suite still contains.
  metrics::SuiteFactory suite_factory{};
};

/// What one shard's run leaves behind — the unit the merge consumes, and
/// the crash-recovery unit: a shard torn down mid-run left no residue
/// outside its own world, so re-running run_shard() reproduces this
/// bit-for-bit.
struct ShardRunResult {
  std::size_t shard{0};
  /// The shard's completion log, in its loop's completion order, with
  /// per-sample payloads retained.
  std::vector<Measurement> log;
  /// Bit-exact copy of the shard's metric accumulators.
  metrics::MetricEngine metrics;
  /// The shard's survey_end marker (participants + final virtual time).
  SurveyEvent end{};
};

class ShardedSurveyEngine {
 public:
  explicit ShardedSurveyEngine(ShardedSurveyConfig config);

  std::size_t shard_count() const { return shards_; }
  std::size_t target_count() const { return config_.fleet.targets.size(); }

  // ------------------------------------------------------------ the plan
  /// Global fleet indices of the targets shard `shard` owns, ascending
  /// (round-robin assignment; see util::ShardSeeder::shard_of).
  std::vector<std::size_t> shard_targets(std::size_t shard) const;

  /// The self-contained world description of one shard: the fleet subset
  /// it owns, every target pinned to its globally-derived seeds. Feeding
  /// this to SurveyTestbed reproduces the shard's world from scratch —
  /// the torn-down-shard recovery path is exactly that.
  SurveyTestbedConfig shard_config(std::size_t shard) const;

  // ------------------------------------------------------- the execution
  /// Builds shard `shard`'s world and runs its survey to completion on
  /// the calling thread. Pure: no state outside the returned result.
  ShardRunResult run_shard(std::size_t shard, const TestRunConfig& run, int rounds,
                           util::Duration between) const;

  /// Runs every shard on the thread pool, rethrows the first shard
  /// failure (after every worker finished), then merges: completion logs
  /// concatenate and sort into the canonical (target, test, at) order,
  /// metric engines fold through merge(). Returns the merged log.
  const std::vector<Measurement>& run(const TestRunConfig& run, int rounds,
                                      util::Duration between);

  // ----------------------------------------------------- merged results
  /// The merged completion log in canonical (target, test, at) order.
  const std::vector<Measurement>& measurements() const { return merged_log_; }

  /// The merged metric engine (per-key suites bit-identical to a
  /// 1-shard run's).
  const metrics::MetricEngine& metrics() const { return merged_; }

  /// The merged survey_end marker: participants summed over shards, the
  /// fleet-wide final virtual instant (max over shards — shard-invariant
  /// because each shard's end time is its slowest target's, and
  /// per-target timelines do not depend on co-residents).
  const SurveyEvent& survey_end() const { return merged_end_; }

  ReorderEstimate aggregate(const std::string& target, const std::string& test,
                            bool forward) const {
    return merged_.aggregate(target, test, forward);
  }
  std::vector<double> rate_series(const std::string& target, const std::string& test,
                                  bool forward) const {
    return merged_.rate_series(target, test, forward);
  }
  stats::PairDifferenceResult compare(const std::string& target, const std::string& test_a,
                                      const std::string& test_b, bool forward,
                                      double confidence = 0.999) const {
    return merged_.compare(target, test_a, test_b, forward, confidence);
  }

  // --------------------------------------------------- merged emission
  /// Replays the merged survey into `sink` in canonical order: one
  /// survey_begin, then every measurement's samples + measurement event
  /// with canonically renumbered indices, then one survey_end.
  void replay(ResultSink& sink) const;

  /// The canonical merged JSONL stream: the replay through a
  /// JsonlResultSink, then one `metrics` record per key in canonical
  /// order. Byte-identical across shard counts for a fixed fleet + seed.
  void emit_jsonl(report::JsonlWriter& out) const;

 private:
  ShardedSurveyConfig config_;
  std::size_t shards_{1};

  std::vector<Measurement> merged_log_;
  metrics::MetricEngine merged_;
  SurveyEvent merged_end_{};
  int rounds_{0};
};

}  // namespace reorder::core
