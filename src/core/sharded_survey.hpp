// The sharded parallel survey runtime — the paper's §IV fleet survey
// scaled across cores.
//
// A fleet of survey targets is partitioned into N independent simulation
// SHARDS. Each shard is a complete world of its own: its own
// sim::EventLoop, SurveyTestbed (probe + the shard's targets + their
// paths), SurveyEngine and metric accumulators. Shards share NO mutable
// state, so they run concurrently on a util::ThreadPool with no locks in
// the simulation hot path — wall clock scales with cores instead of
// fleet size.
//
// The headline guarantee is bit-exact shard invariance: for a fixed
// fleet config and seed, every per-(target, test) metric snapshot and
// the canonical merged JSONL are IDENTICAL for any shard count. Three
// mechanisms compose to deliver it:
//
//   1. util::ShardSeeder pins every target's stochastic identity (host
//      RNG, IPID origin, per-path-stage RNG tags) to the target's GLOBAL
//      fleet index, so re-partitioning never reroutes a random stream.
//   2. Per-target independence inside a shard: targets interact only
//      with their own paths and flows, so co-residents on one loop do
//      not perturb each other (the property the survey-engine
//      concurrent-vs-sequential equivalence test pins).
//   3. The metrics::Metric merge() contract: per-shard accumulators
//      combine associatively and bit-exactly, and each (target, test)
//      key lives on exactly one shard, so the merged engine equals the
//      one a single shard would have built.
//
// Outputs are canonicalized, not streamed: the merged completion log is
// ordered by (target, test, at) and measurement indices are renumbered
// in that order, so emission is a pure function of the merged data — the
// thread schedule cannot leak into a byte of output.
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/survey_engine.hpp"
#include "core/survey_testbed.hpp"
#include "metrics/engine.hpp"
#include "report/jsonl.hpp"

namespace reorder::core {

class SurveyCheckpoint;

/// Failure policy for shard execution: how often a failed shard is
/// re-attempted and how the waits between attempts grow. Retries apply
/// only to TRANSIENT failures (infrastructure: a worker died, an injected
/// kThrow/kShardAbort with transient=true); deterministic failures
/// (std::invalid_argument, non-transient injected faults) would fail
/// identically every attempt and go straight to the degraded path.
struct ShardRetryPolicy {
  /// Attempts per shard including the first (clamped to >= 1). A shard
  /// still failing after the last attempt makes the survey degraded.
  int max_attempts{3};
  /// Wall-clock wait before attempt 2; grows by `multiplier` per further
  /// attempt, capped at `max_backoff`. Wall time, not virtual time: the
  /// shard's world is rebuilt from scratch each attempt, so virtual time
  /// restarts — only the host needs breathing room.
  std::chrono::milliseconds initial_backoff{1};
  double multiplier{2.0};
  std::chrono::milliseconds max_backoff{50};
};

struct ShardedSurveyConfig {
  /// The whole fleet in global declaration order — the order ShardSeeder
  /// derivation, the shard plan and the canonical outputs all key on.
  SurveyTestbedConfig fleet;
  /// Number of simulation shards (clamped to >= 1). More shards than
  /// targets leaves the excess empty; that is harmless and still merges.
  std::size_t shards{1};
  /// Worker threads driving the shards; 0 picks
  /// min(shards, ThreadPool::hardware_threads()).
  std::size_t threads{0};
  /// Per-shard engine options. retain_samples is forced on internally so
  /// the merged log can replay full event streams.
  SurveyEngine::Options engine{};
  /// Per-shard metric suite factory; null uses metrics::default_suite.
  /// Replaces (not augments) the standard suite, exactly as it would on a
  /// single engine — the query shims below then answer from whatever
  /// standard metrics the custom suite still contains.
  metrics::SuiteFactory suite_factory{};
  /// Failure policy for shard attempts (see ShardRetryPolicy).
  ShardRetryPolicy retry{};
  /// When non-empty, every completed shard is durably recorded here (a
  /// SurveyCheckpoint file, rewritten atomically per completion), so a
  /// killed run resumes via SurveyCheckpoint::load + resume() re-running
  /// only the shards not yet recorded.
  std::string checkpoint_path{};
};

/// What one shard's run leaves behind — the unit the merge consumes, and
/// the crash-recovery unit: a shard torn down mid-run left no residue
/// outside its own world, so re-running run_shard() reproduces this
/// bit-for-bit.
struct ShardRunResult {
  std::size_t shard{0};
  /// The shard's completion log, in its loop's completion order, with
  /// per-sample payloads retained.
  std::vector<Measurement> log;
  /// Bit-exact copy of the shard's metric accumulators.
  metrics::MetricEngine metrics;
  /// The shard's survey_end marker (participants + final virtual time).
  SurveyEvent end{};
};

class ShardedSurveyEngine {
 public:
  explicit ShardedSurveyEngine(ShardedSurveyConfig config);

  std::size_t shard_count() const { return shards_; }
  std::size_t target_count() const { return config_.fleet.targets.size(); }

  // ------------------------------------------------------------ the plan
  /// Global fleet indices of the targets shard `shard` owns, ascending
  /// (round-robin assignment; see util::ShardSeeder::shard_of).
  std::vector<std::size_t> shard_targets(std::size_t shard) const;

  /// The self-contained world description of one shard: the fleet subset
  /// it owns, every target pinned to its globally-derived seeds. Feeding
  /// this to SurveyTestbed reproduces the shard's world from scratch —
  /// the torn-down-shard recovery path is exactly that.
  SurveyTestbedConfig shard_config(std::size_t shard) const;

  // ------------------------------------------------------- the execution
  /// Builds shard `shard`'s world and runs its survey to completion on
  /// the calling thread. Pure: no state outside the returned result.
  ShardRunResult run_shard(std::size_t shard, const TestRunConfig& run, int rounds,
                           util::Duration between) const;

  /// Runs every shard on the thread pool — each shard retried per the
  /// config's ShardRetryPolicy, completed shards checkpointed when a
  /// checkpoint_path is set — then merges: completion logs concatenate
  /// and sort into the canonical (target, test, at) order, metric engines
  /// fold through merge(). A shard that exhausts its attempts does not
  /// abort the survey: the run completes DEGRADED (see survey_end()) with
  /// that shard's targets accounted as failed. Returns the merged log.
  const std::vector<Measurement>& run(const TestRunConfig& run, int rounds,
                                      util::Duration between);

  /// run(), except shards recorded in `checkpoint` are restored instead
  /// of re-executed — only pending shards (and any the checkpoint lost to
  /// torn writes) run. Throws std::invalid_argument when the checkpoint's
  /// header disagrees with this engine's plan (shard count, fleet size,
  /// rounds, seed): restored results are only valid for the exact run
  /// they came from. The merged outputs are byte-identical to an
  /// uninterrupted run's — the kill-and-resume property tests pin this.
  const std::vector<Measurement>& resume(const SurveyCheckpoint& checkpoint,
                                         const TestRunConfig& run, int rounds,
                                         util::Duration between);

  // ----------------------------------------------------- merged results
  /// The merged completion log in canonical (target, test, at) order.
  const std::vector<Measurement>& measurements() const { return merged_log_; }

  /// The merged metric engine (per-key suites bit-identical to a
  /// 1-shard run's).
  const metrics::MetricEngine& metrics() const { return merged_; }

  /// The merged survey_end marker: participants summed over shards, the
  /// fleet-wide final virtual instant (max over shards — shard-invariant
  /// because each shard's end time is its slowest target's, and
  /// per-target timelines do not depend on co-residents).
  const SurveyEvent& survey_end() const { return merged_end_; }

  // ------------------------------------------------ failure accounting
  /// True when some shard exhausted its retry budget in the last run.
  bool degraded() const { return merged_end_.degraded; }
  /// Shards that failed every attempt, ascending.
  const std::vector<std::size_t>& failed_shard_indices() const { return failed_shards_; }
  /// Attempts consumed by shard `shard` in the last run/resume (0 when it
  /// was restored from a checkpoint without re-running).
  int shard_attempts(std::size_t shard) const { return attempts_.at(shard); }
  /// The last attempt's failure message per failed shard (parallel to
  /// failed_shard_indices()).
  const std::vector<std::string>& failure_messages() const { return failure_messages_; }

  /// The participation manifest: every fleet target in global order with
  /// whether its measurements are present in the merged outputs — the
  /// full-fleet accounting a degraded survey's consumers reconcile
  /// against. All-true when the survey is not degraded.
  std::vector<std::pair<std::string, bool>> participation() const;

  ReorderEstimate aggregate(const std::string& target, const std::string& test,
                            bool forward) const {
    return merged_.aggregate(target, test, forward);
  }
  std::vector<double> rate_series(const std::string& target, const std::string& test,
                                  bool forward) const {
    return merged_.rate_series(target, test, forward);
  }
  stats::PairDifferenceResult compare(const std::string& target, const std::string& test_a,
                                      const std::string& test_b, bool forward,
                                      double confidence = 0.999) const {
    return merged_.compare(target, test_a, test_b, forward, confidence);
  }

  // --------------------------------------------------- merged emission
  /// Replays the merged survey into `sink` in canonical order: one
  /// survey_begin, then every measurement's samples + measurement event
  /// with canonically renumbered indices, then one survey_end.
  void replay(ResultSink& sink) const;

  /// The canonical merged JSONL stream: the replay through a
  /// JsonlResultSink, then one `metrics` record per key in canonical
  /// order. Byte-identical across shard counts for a fixed fleet + seed.
  void emit_jsonl(report::JsonlWriter& out) const;

 private:
  /// Outcome of one shard's retry loop: a result, or the story of why
  /// there is none.
  struct ShardOutcome {
    std::optional<ShardRunResult> result;
    int attempts{0};
    std::string error;
  };

  /// Runs one shard under the retry policy (fault points "shard/<s>/run"
  /// before and "shard/<s>/abort" after the attempt), backing off between
  /// transient failures. Runtime shard failure never throws — an empty
  /// result is the degraded path's input; plan errors
  /// (std::invalid_argument) propagate so a typo'd survey fails fast
  /// instead of degrading.
  ShardOutcome run_shard_with_retry(std::size_t shard, const TestRunConfig& run, int rounds,
                                    util::Duration between) const;

  /// The shared body of run()/resume(): restore what `restore_from`
  /// holds, execute the rest on the pool, checkpoint completions, merge.
  const std::vector<Measurement>& execute(const SurveyCheckpoint* restore_from,
                                          const TestRunConfig& run, int rounds,
                                          util::Duration between);

  ShardedSurveyConfig config_;
  std::size_t shards_{1};

  std::vector<Measurement> merged_log_;
  metrics::MetricEngine merged_;
  SurveyEvent merged_end_{};
  int rounds_{0};
  std::vector<std::size_t> failed_shards_;
  std::vector<std::string> failure_messages_;
  std::vector<int> attempts_;
};

}  // namespace reorder::core
