#include "core/test_registry.hpp"

#include "core/ping_burst_adapter.hpp"
#include "core/testbed.hpp"

namespace reorder::core {

namespace {

template <typename Opt>
Opt options_or_default(const TestSpec& spec) {
  if (std::holds_alternative<std::monostate>(spec.options)) return Opt{};
  if (const Opt* opt = std::get_if<Opt>(&spec.options)) return *opt;
  throw std::invalid_argument{"TestRegistry: TestSpec for '" + spec.technique +
                              "' carries options of a different technique"};
}

std::uint16_t port_or(const TestSpec& spec, std::uint16_t fallback) {
  return spec.port != 0 ? spec.port : fallback;
}

}  // namespace

void TestRegistry::register_technique(const std::string& name, Factory factory) {
  const std::lock_guard<std::mutex> lock{mu_};
  factories_[name] = std::move(factory);
}

void TestRegistry::register_alias(const std::string& alias, const std::string& canonical) {
  const std::lock_guard<std::mutex> lock{mu_};
  aliases_[alias] = canonical;
}

bool TestRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock{mu_};
  const auto alias = aliases_.find(name);
  return factories_.count(alias != aliases_.end() ? alias->second : name) > 0;
}

const std::string& TestRegistry::canonical_name_locked(const std::string& name) const {
  const auto alias = aliases_.find(name);
  const auto it = factories_.find(alias != aliases_.end() ? alias->second : name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [technique, _] : factories_) {
      known += known.empty() ? technique : ", " + technique;
    }
    throw std::invalid_argument{"TestRegistry: unknown technique '" + name + "' (known: " + known +
                                ")"};
  }
  // Map nodes are never erased or mutated, so the name outlives the lock.
  return it->first;
}

const std::string& TestRegistry::canonical_name(const std::string& name) const {
  const std::lock_guard<std::mutex> lock{mu_};
  return canonical_name_locked(name);
}

std::vector<std::string> TestRegistry::technique_names() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  return names;
}

std::unique_ptr<ReorderTest> TestRegistry::create(probe::ProbeHost& host,
                                                  tcpip::Ipv4Address target,
                                                  const TestSpec& spec) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    factory = factories_.at(canonical_name_locked(spec.technique));
  }
  // Construct outside the lock: a technique's constructor may be arbitrarily
  // slow and must not serialize other shards' lookups.
  return factory(host, target, spec);
}

TestRegistry& TestRegistry::global() {
  static TestRegistry* registry = [] {
    auto* reg = new TestRegistry;
    reg->register_technique(
        "single-connection",
        [](probe::ProbeHost& host, tcpip::Ipv4Address target, const TestSpec& spec) {
          return std::make_unique<SingleConnectionTest>(
              host, target, port_or(spec, kDiscardPort),
              options_or_default<SingleConnectionOptions>(spec));
        });
    reg->register_technique(
        "single-connection-inorder",
        [](probe::ProbeHost& host, tcpip::Ipv4Address target, const TestSpec& spec) {
          auto opts = options_or_default<SingleConnectionOptions>(spec);
          opts.reversed_order = false;
          return std::make_unique<SingleConnectionTest>(host, target, port_or(spec, kDiscardPort),
                                                        opts);
        });
    reg->register_technique(
        "dual-connection",
        [](probe::ProbeHost& host, tcpip::Ipv4Address target, const TestSpec& spec) {
          return std::make_unique<DualConnectionTest>(
              host, target, port_or(spec, kDiscardPort),
              options_or_default<DualConnectionOptions>(spec));
        });
    reg->register_technique(
        "syn", [](probe::ProbeHost& host, tcpip::Ipv4Address target, const TestSpec& spec) {
          return std::make_unique<SynTest>(host, target, port_or(spec, kDiscardPort),
                                           options_or_default<SynTestOptions>(spec));
        });
    reg->register_technique(
        "data-transfer",
        [](probe::ProbeHost& host, tcpip::Ipv4Address target, const TestSpec& spec) {
          return std::make_unique<DataTransferTest>(host, target, port_or(spec, kHttpPort),
                                                    options_or_default<DataTransferOptions>(spec));
        });
    reg->register_technique(
        "ping-burst", [](probe::ProbeHost& host, tcpip::Ipv4Address target, const TestSpec& spec) {
          return std::make_unique<PingBurstAdapter>(host, target,
                                                    options_or_default<PingBurstOptions>(spec));
        });
    reg->register_alias("single", "single-connection");
    reg->register_alias("single-inorder", "single-connection-inorder");
    reg->register_alias("dual", "dual-connection");
    reg->register_alias("data", "data-transfer");
    reg->register_alias("ping", "ping-burst");
    return reg;
  }();
  return *registry;
}

std::unique_ptr<ReorderTest> make_registered_test(probe::ProbeHost& host,
                                                  tcpip::Ipv4Address target,
                                                  const TestSpec& spec) {
  return TestRegistry::global().create(host, target, spec);
}

}  // namespace reorder::core
