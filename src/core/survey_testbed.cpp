#include "core/survey_testbed.hpp"

#include <stdexcept>

#include "core/testbed.hpp"

namespace reorder::core {

std::string default_target_name(std::size_t index) {
  return "target-" + std::to_string(index);
}

tcpip::Ipv4Address default_target_address(std::size_t index) {
  // 254 hosts per /24, 256 /24s per second-octet block: 10.1.0.1 through
  // 10.1.255.254, then 10.2.0.1, ... — ~16.5M distinct defaults. Indices
  // below 65024 map exactly as they always did (10.1.x.y); the carry into
  // the second octet is what lets a million-target fleet use defaults
  // without colliding.
  const std::size_t subnet = index / 254;
  return tcpip::Ipv4Address::from_octets(10, static_cast<std::uint8_t>(1 + subnet / 256),
                                         static_cast<std::uint8_t>(subnet % 256),
                                         static_cast<std::uint8_t>(index % 254 + 1));
}

SurveyTestbed::SurveyTestbed(SurveyTestbedConfig config) {
  socket_ = std::make_unique<probe::SimRawSocket>(loop_, config.probe_addr);
  probe_ = std::make_unique<probe::ProbeHost>(loop_, *socket_);

  std::size_t index = 0;
  for (SurveyTargetConfig& target_cfg : config.targets) {
    auto net = std::make_unique<TargetNet>();
    net->config = std::move(target_cfg);
    if (net->config.name.empty()) net->config.name = default_target_name(index);
    if (net->config.address == tcpip::Ipv4Address{}) {
      net->config.address = default_target_address(index);
    }

    // Install only the standard listener set when none is configured —
    // the target's behaviour/IPID knobs must survive.
    tcpip::HostConfig host_cfg = net->config.remote;
    if (host_cfg.listeners.empty()) host_cfg.listeners = default_remote_config().listeners;
    host_cfg.address = net->config.address;
    host_cfg.name = net->config.name;
    // Per-target seed/IPID derivation mirrors Testbed's per-backend scheme
    // so identical (seed, index) pairs reproduce identical hosts. A config
    // with explicit identity (the sharded planner's) overrides the local
    // derivation wholesale — that is what makes a target's world a pure
    // function of its global fleet index.
    host_cfg.seed = net->config.host_seed.value_or(config.seed * 1000 + index + 1);
    host_cfg.ipid_initial =
        net->config.ipid_initial.value_or(static_cast<std::uint16_t>(1 + 17'000 * index));
    net->host = std::make_unique<tcpip::Host>(loop_, std::move(host_cfg));

    // Distinct seed tags per target and direction keep every path's RNG
    // stream independent of the others.
    const std::uint64_t tag_base = 0x100 + index * 2;
    build_measurement_path(loop_, net->forward, net->config.forward, config.seed,
                           net->config.forward_path_tag.value_or(tag_base + 0));
    build_measurement_path(loop_, net->reverse, net->config.reverse, config.seed,
                           net->config.reverse_path_tag.value_or(tag_base + 1));

    tcpip::Host* host = net->host.get();
    net->forward.terminate([host](tcpip::Packet pkt) { host->receive(std::move(pkt)); });
    net->reverse.terminate([this](tcpip::Packet pkt) { socket_->deliver(std::move(pkt)); });
    net->host->set_transmit(net->reverse.entry());

    if (!routes_.emplace(net->config.address.value(), net.get()).second) {
      throw std::invalid_argument{"SurveyTestbed: duplicate target address " +
                                  net->config.address.to_string()};
    }
    targets_.push_back(std::move(net));
    ++index;
  }

  socket_->set_transmit([this](tcpip::Packet pkt) {
    const auto it = routes_.find(pkt.ip.dst.value());
    if (it == routes_.end()) return;  // destination unreachable: drop
    it->second->forward.entry()(std::move(pkt));
  });
}

void SurveyTestbed::populate(SurveyEngine& engine) {
  for (const auto& target : targets_) {
    engine.add_target(target->config.name, *probe_, target->config.address,
                      target->config.tests);
  }
}

}  // namespace reorder::core
