// A canonical duplex topology: probe host — forward path — remote host(s)
// — reverse path — probe host, with trace taps at the validation points
// the paper's controlled experiments need (actual arrival order at the
// remote; actual departure order from the remote). Everything the tests,
// benches and examples wire up goes through this builder.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/path_builder.hpp"
#include "core/reorder_test.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/link.hpp"
#include "netsim/load_balancer.hpp"
#include "netsim/path.hpp"
#include "netsim/striped_link.hpp"
#include "netsim/swap_shaper.hpp"
#include "probe/probe_host.hpp"
#include "probe/raw_socket.hpp"
#include "tcpip/host.hpp"
#include "trace/trace.hpp"

namespace reorder::core {

struct TestbedConfig {
  std::uint64_t seed{1};
  tcpip::Ipv4Address probe_addr{tcpip::Ipv4Address::from_octets(10, 0, 0, 1)};
  tcpip::Ipv4Address remote_addr{tcpip::Ipv4Address::from_octets(10, 0, 0, 2)};
  /// Behaviour/IPID/app configuration of the remote (address is overridden
  /// with remote_addr). Defaults: discard on 9, 16 KiB object on 80.
  tcpip::HostConfig remote{};
  /// > 1 puts that many backends behind a transparent load balancer at
  /// remote_addr; 1 is a plain single host.
  std::size_t backends{1};
  PathSpec forward{};
  PathSpec reverse{};
  /// Scheduler implementation for this testbed's event loop. The reference
  /// map exists for differential testing (order-equivalence suite) and the
  /// scheduling benchmarks' before/after comparison; experiments keep the
  /// default.
  sim::EventLoop::QueuePolicy scheduler{sim::EventLoop::QueuePolicy::kIndexedHeap};
};

/// Well-known ports the default remote listens on.
constexpr std::uint16_t kDiscardPort = 9;
constexpr std::uint16_t kEchoPort = 7;
constexpr std::uint16_t kHttpPort = 80;

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  sim::EventLoop& loop() { return loop_; }
  probe::ProbeHost& probe() { return *probe_; }
  tcpip::Ipv4Address remote_addr() const { return config_.remote_addr; }
  tcpip::Host& remote(std::size_t i = 0) { return *remotes_.at(i); }
  std::size_t backend_count() const { return remotes_.size(); }
  sim::LoadBalancer* balancer() { return balancer_ ? &*balancer_ : nullptr; }

  /// Runtime handles on the reordering processes (null when absent).
  sim::SwapShaper* forward_shaper() { return fwd_shaper_; }
  sim::SwapShaper* reverse_shaper() { return rev_shaper_; }
  sim::StripedLink* forward_striped() { return fwd_striped_; }

  /// Ground-truth capture: packets as they arrive at the remote side
  /// (after all forward-path reordering).
  trace::TraceBuffer& remote_ingress_trace() { return remote_ingress_; }
  /// Packets in the order the remote transmitted them (before any
  /// reverse-path reordering).
  trace::TraceBuffer& remote_egress_trace() { return remote_egress_; }
  /// Packets as they arrive back at the probe.
  trace::TraceBuffer& probe_ingress_trace() { return probe_ingress_; }

  /// Drives the loop until the test completes (or `deadline_s` of virtual
  /// time passes) and returns the result.
  TestRunResult run_sync(ReorderTest& test, const TestRunConfig& config,
                         std::int64_t deadline_s = 600);

 private:
  TestbedConfig config_;
  sim::EventLoop loop_;

  trace::TraceBuffer remote_ingress_;
  trace::TraceBuffer remote_egress_;
  trace::TraceBuffer probe_ingress_;

  std::unique_ptr<probe::SimRawSocket> socket_;
  std::unique_ptr<probe::ProbeHost> probe_;
  std::vector<std::unique_ptr<tcpip::Host>> remotes_;
  std::optional<sim::LoadBalancer> balancer_;

  sim::Path forward_;
  sim::Path reverse_;
  sim::SwapShaper* fwd_shaper_{nullptr};
  sim::SwapShaper* rev_shaper_{nullptr};
  sim::StripedLink* fwd_striped_{nullptr};
  sim::StripedLink* rev_striped_{nullptr};
};

/// A HostConfig with the standard listener set (discard/echo/object) and
/// the given behaviour knobs — the usual starting point for experiments.
tcpip::HostConfig default_remote_config(std::size_t object_size = 16 * 1024);

}  // namespace reorder::core
