// Declarative description of one direction of an emulated path, and the
// builder that assembles it into a sim::Path. Shared by the single-remote
// Testbed and the multi-remote SurveyTestbed so every topology derives its
// per-stage RNG streams the same way.
#pragma once

#include <cstdint>
#include <optional>

#include "netsim/coalescer.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/link.hpp"
#include "netsim/path.hpp"
#include "netsim/striped_link.hpp"
#include "netsim/swap_shaper.hpp"
#include "trace/trace.hpp"
#include "util/time.hpp"

namespace reorder::core {

/// One direction of the emulated path.
struct PathSpec {
  sim::LinkParams ingress_link{};   ///< first hop
  sim::LinkParams egress_link{};    ///< last hop
  /// Adjacent-swap probability (dummynet-style shaper); 0 disables.
  double swap_probability{0.0};
  util::Duration swap_max_hold{util::Duration::millis(50)};
  /// Optional striped multi-link segment (time-dependent reordering).
  std::optional<sim::StripedLinkConfig> striped{};
  /// Bernoulli loss probability; 0 disables.
  double loss_probability{0.0};
  /// Optional receive-side interrupt coalescing (bursty delivery with
  /// intra-burst local shuffle); sits after loss, before the egress link.
  std::optional<sim::InterruptCoalescerConfig> coalescer{};
};

/// Runtime handles on the reordering processes a built path contains
/// (null when the spec does not enable them).
struct PathHandles {
  sim::SwapShaper* shaper{nullptr};
  sim::StripedLink* striped{nullptr};
  sim::InterruptCoalescer* coalescer{nullptr};
};

/// Assembles `spec` into `path`: ingress link, optional swap shaper /
/// striped segment / loss stage, egress link, and an optional pre-terminal
/// trace tap. `seed` and `seed_tag` derive the per-stage RNG streams.
PathHandles build_measurement_path(sim::EventLoop& loop, sim::Path& path, const PathSpec& spec,
                                   std::uint64_t seed, std::uint64_t seed_tag,
                                   trace::TraceBuffer* pre_terminal_tap = nullptr,
                                   const char* tap_label = "");

}  // namespace reorder::core
