// Offline fold of N independent survey runs into one fleet-wide stream —
// the library behind the `reorder-merge` CLI.
//
// A large survey is operationally many survey_fleet processes (different
// machines, different fleet slices, different days), each leaving one
// canonical JSONL artifact. merge_fleet_streams() folds those artifacts
// into the stream ONE run over the combined fleet would have produced:
// measurement groups re-sorted into the canonical (target, test, at)
// order and renumbered, metric records restored through the metrics
// from_json contract and pooled via merge(), lifecycle records summed,
// degraded-mode accounting (failed_targets, participation) concatenated
// so the combined fleet stays fully accounted for. The golden test pins
// byte-identity against an actual combined run.
#pragma once

#include <vector>

#include "report/json.hpp"

namespace reorder::core {

/// Folds the parsed canonical JSONL streams of N runs into one. Inputs
/// must be canonical emissions (survey_begin, sample/measurement groups,
/// survey_end, metrics records, optional participation manifest). Throws
/// std::runtime_error on torn inputs (a sample group without its
/// measurement record) and std::invalid_argument on schema violations.
std::vector<report::Json> merge_fleet_streams(
    const std::vector<std::vector<report::Json>>& runs);

}  // namespace reorder::core
