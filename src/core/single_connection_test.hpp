// The Single Connection Test (paper §III-B).
//
// One TCP connection to the target. Each sample has two phases:
//
//   preparation — a 1-byte segment one past the expected sequence number
//   is sent (repeatedly, if need be) until a duplicate ACK confirms that a
//   sequence hole exists at the receiver with one byte queued behind it;
//
//   measurement — two 1-byte segments straddling the queued byte are sent.
//   In the in-order send variant (data "1" then data "3") the receiver
//   answers (ack 2, ack 4) when the pair arrives in order and
//   (ack 1, ack 4) when exchanged; the ACK arrival order additionally
//   reveals reverse-path reordering. Delayed ACKs can coalesce the
//   in-order case into a lone ack 4, which is why the reversed variant
//   (data "3" then data "1") is the default: out-of-order arrivals are
//   ACKed immediately, at the cost of a lone final ACK aliasing forward
//   reordering with loss (both paper-documented behaviours, both
//   reproduced here).
#pragma once

#include <memory>

#include "core/reorder_test.hpp"
#include "probe/probe_host.hpp"
#include "probe/prober.hpp"

namespace reorder::core {

struct SingleConnectionOptions {
  /// Send the higher-sequence sample first (the paper's delayed-ACK
  /// mitigation). Default on.
  bool reversed_order{true};
  /// In the reversed variant, interpret a lone final ACK as forward
  /// reordering (paper behaviour; aliases with loss) rather than ambiguous.
  bool lone_final_ack_is_reordered{true};
  probe::ProbeConnectionOptions connection{};
  /// Retransmission timer for preparation/resync segments.
  util::Duration aux_rto{util::Duration::millis(250)};
  int max_aux_retries{6};
  /// Quiet period after prep/resync so stray duplicate ACKs from
  /// retransmissions cannot be mistaken for measurement replies.
  util::Duration settle{util::Duration::millis(50)};
};

class SingleConnectionTest final : public ReorderTest {
 public:
  SingleConnectionTest(probe::ProbeHost& host, tcpip::Ipv4Address target, std::uint16_t port,
                       SingleConnectionOptions options = {});

  std::string name() const override;
  void run(const TestRunConfig& config, std::function<void(TestRunResult)> done) override;

 private:
  struct Run;
  probe::ProbeHost& host_;
  tcpip::Ipv4Address target_;
  std::uint16_t port_;
  SingleConnectionOptions options_;
};

}  // namespace reorder::core
