// The paper's §IV-B driver, scaled out: a continuous survey cycles every
// technique against every target host. Where the old MeasurementSession
// ran one blocking test at a time, SurveyEngine runs one state machine
// per target on a single event loop — each target advances through its
// test cycle via completion callbacks, so measurements against many hosts
// interleave in virtual time exactly the way a production surveyor
// interleaves them in wall time.
//
// Results stream: every completed measurement is published to the
// attached ResultSinks (per-sample events, then the measurement event) in
// event-loop order, while the survey is still running. The engine's own
// columnar ResultStore is just one such sink; the session-era query API
// (rate_series / aggregate / compare) delegates to it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/reorder_test.hpp"
#include "core/result_sink.hpp"
#include "core/result_store.hpp"
#include "core/test_registry.hpp"
#include "netsim/event_loop.hpp"
#include "stats/pair_difference.hpp"
#include "util/fault_injector.hpp"

namespace reorder::core {

/// One completed measurement in a survey. The engine's completion log
/// keeps only the summary: `result.samples` is emptied after the
/// measurement streams to the sinks — per-sample data lives columnar in
/// SurveyEngine::store() (and in any sink that retained it).
struct Measurement {
  std::string target;
  std::string test;
  util::TimePoint at;
  TestRunResult result;
};

class SurveyEngine {
 public:
  struct Options {
    /// Give-up deadline per measurement; a test that has not completed by
    /// then is recorded as inadmissible and the cycle moves on. The
    /// abandoned run is not cancelled (ReorderTest has no abort): it
    /// winds down on its own sample timeouts and its late completion is
    /// dropped, but until then its residual probe traffic shares the
    /// target's path. Keep the deadline comfortably above the slowest
    /// test's worst case rather than using it as a pacing knob.
    util::Duration measurement_deadline{util::Duration::seconds(600)};
    /// Keep each Measurement's per-sample payload in the completion log.
    /// Off by default (a long survey's dominant data would be resident
    /// twice — it already lives columnar in the store); the sharded
    /// driver turns it on so the merged log can replay full event streams
    /// through the canonical emission path.
    bool retain_samples{false};
    /// Deterministic fault injection (not owned; may be null). A
    /// kTargetTimeout plan firing at site "target/<name>/test/<test>"
    /// makes that measurement behave like a target that never answers:
    /// the test is not started and the watchdog records the timeout as
    /// an inadmissible measurement at the deadline — the paper's
    /// uncooperative-host case, reproducible from the injector's seed.
    util::FaultInjector* faults{nullptr};
  };

  explicit SurveyEngine(sim::EventLoop& loop) : SurveyEngine{loop, Options{}} {}
  SurveyEngine(sim::EventLoop& loop, Options options);

  /// Attaches a streaming sink (not owned; must outlive the engine). The
  /// engine's own ResultStore is always the first sink; added sinks see
  /// every event after it, in attachment order. Must not be called while
  /// a survey is running.
  void add_sink(ResultSink& sink);

  /// The columnar archive (row/column access for report emitters).
  const ResultStore& store() const { return store_; }

  /// The streaming metrics engine every query below reads from: one
  /// metric suite per (target, test), updated mid-survey in event-loop
  /// order, mergeable with other shards' engines.
  const metrics::MetricEngine& metrics() const { return store_.metrics(); }

  /// Registers a target whose test suite is built through the global
  /// TestRegistry.
  void add_target(const std::string& name, probe::ProbeHost& probe, tcpip::Ipv4Address address,
                  const std::vector<TestSpec>& tests);

  /// Registers a target with pre-built tests (owned by the engine).
  void add_target(std::string name, std::vector<std::unique_ptr<ReorderTest>> tests);

  std::size_t target_count() const { return targets_.size(); }

  /// Starts every target's measurement cycle concurrently: each target
  /// runs its tests in order, pausing `between_measurements` of virtual
  /// time after each, for `rounds` full cycles. Returns immediately; the
  /// caller drives the event loop. `on_complete` fires once, when the last
  /// target finishes. Must not be called while a survey is running.
  void start(const TestRunConfig& config, int rounds, util::Duration between_measurements,
             std::function<void()> on_complete = {});

  /// True while any target still has measurements outstanding.
  bool running() const { return targets_in_flight_ > 0; }

  /// Synchronous convenience: start() and drive the loop to completion.
  const std::vector<Measurement>& run(const TestRunConfig& config, int rounds,
                                      util::Duration between_measurements);

  /// Every measurement taken, in completion order.
  const std::vector<Measurement>& measurements() const { return measurements_; }

  /// Moves the completion log out of the engine (it is left empty). The
  /// sharded driver uses this to hand a finished shard's log to the merge
  /// without copying retained sample payloads. Must not be called while a
  /// survey is running.
  std::vector<Measurement> release_measurements();

  /// Mean reordering rate per admissible measurement of (target, test), in
  /// time order — the paired series for the §IV-B comparison.
  std::vector<double> rate_series(const std::string& target, const std::string& test,
                                  bool forward) const {
    return store_.rate_series(target, test, forward);
  }

  /// Aggregate estimate over every measurement of (target, test).
  ReorderEstimate aggregate(const std::string& target, const std::string& test,
                            bool forward) const {
    return store_.aggregate(target, test, forward);
  }

  /// Paired comparison of two tests on one target (paper: 99.9% CI).
  /// Series are truncated to the shorter length; needs >= 2 measurements.
  stats::PairDifferenceResult compare(const std::string& target, const std::string& test_a,
                                      const std::string& test_b, bool forward,
                                      double confidence = 0.999) const {
    return store_.compare(target, test_a, test_b, forward, confidence);
  }

 private:
  struct Target {
    std::string name;
    std::vector<std::unique_ptr<ReorderTest>> tests;
    std::size_t next_test{0};
    int rounds_done{0};
    /// Guards against stale completions: a watchdog that fires after the
    /// deadline and a test completion racing it both carry the generation
    /// they belong to; only the first one with the live generation counts.
    std::uint64_t generation{0};
    bool measurement_open{false};
    std::uint64_t watchdog_token{0};
    /// Instant past which the open measurement may no longer publish: the
    /// watchdog records the timeout, and any completion arriving later is
    /// abandoned-run residue that must not reach the sinks.
    util::TimePoint deadline_at{};
  };

  void begin_next_measurement(Target& target);
  void finish_measurement(Target& target, std::uint64_t generation, util::TimePoint at,
                          TestRunResult result);
  void record(Target& target, util::TimePoint at, TestRunResult result);

  sim::EventLoop& loop_;
  Options options_;
  std::vector<std::unique_ptr<Target>> targets_;
  /// Completion-order log (the legacy poll API); queries go to store_.
  std::vector<Measurement> measurements_;
  ResultStore store_;
  SinkFanout sinks_;

  TestRunConfig config_{};
  int rounds_{0};
  util::Duration between_{};
  std::function<void()> on_complete_;
  std::size_t targets_in_flight_{0};
  /// Targets participating in the current survey (for lifecycle events).
  std::size_t participants_{0};
};

}  // namespace reorder::core
