#include "core/data_transfer_test.hpp"

#include <algorithm>
#include <map>

#include "tcpip/seq.hpp"

namespace reorder::core {

DataTransferTest::DataTransferTest(probe::ProbeHost& host, tcpip::Ipv4Address target,
                                   std::uint16_t port, DataTransferOptions options)
    : host_{host}, target_{target}, port_{port}, options_{options} {}

struct DataTransferTest::Run : std::enable_shared_from_this<DataTransferTest::Run> {
  probe::ProbeHost& host;
  DataTransferOptions options;
  TestRunConfig config;
  std::function<void(TestRunResult)> done;
  std::unique_ptr<probe::ProbeConnection> conn;

  TestRunResult result;
  bool finished{false};

  struct SegmentSeen {
    std::uint32_t rel_seq;
    std::uint64_t uid;
    util::TimePoint at;
  };
  std::vector<SegmentSeen> arrivals;      ///< unique data segments, arrival order
  std::map<std::uint32_t, bool> seen_seq; ///< dedup (retransmissions)
  std::uint32_t max_end_rel{0};           ///< highest byte received (rel)
  bool fin_seen{false};

  std::uint64_t stall_token{0};
  std::uint64_t stall_generation{0};

  Run(probe::ProbeHost& h, DataTransferOptions o, TestRunConfig c,
      std::function<void(TestRunResult)> d)
      : host{h}, options{o}, config{c}, done{std::move(d)} {}

  tcpip::Environment& env() { return host.env(); }

  void bump_stall_timer() {
    if (stall_token != 0) env().cancel(stall_token);
    const std::uint64_t gen = ++stall_generation;
    stall_token = env().schedule(options.stall_timeout, [self = shared_from_this(), gen] {
      if (gen != self->stall_generation) return;
      self->finish("transfer stalled");
    });
  }

  void start(tcpip::Ipv4Address target, std::uint16_t port) {
    auto conn_opts = options.connection;
    conn_opts.advertised_mss = options.mss;
    conn_opts.advertised_window = options.window;
    conn = std::make_unique<probe::ProbeConnection>(host, host.make_flow(target, port),
                                                    conn_opts);
    conn->on_packet = [self = shared_from_this()](const tcpip::Packet& pkt) {
      self->on_packet(pkt);
    };
    bump_stall_timer();
    conn->connect([self = shared_from_this()](bool ok) {
      if (!ok) {
        self->result.admissible = false;
        self->finish("connect failed");
        return;
      }
      const auto& req = self->options.request;
      self->conn->send_data_rel(
          0, std::span{reinterpret_cast<const std::uint8_t*>(req.data()), req.size()});
    });
  }

  void on_packet(const tcpip::Packet& pkt) {
    if (finished) return;
    if (pkt.tcp.is_rst()) {
      finish("connection reset");
      return;
    }
    if (!pkt.payload.empty()) {
      const std::uint32_t rel = pkt.tcp.seq - conn->rcv_base();
      const auto end_rel = rel + static_cast<std::uint32_t>(pkt.payload.size());
      if (seen_seq.emplace(rel, true).second) {
        arrivals.push_back(SegmentSeen{rel, pkt.uid, env().now()});
        if (tcpip::seq_gt(end_rel, max_end_rel)) max_end_rel = end_rel;
        bump_stall_timer();
      }
      // Acknowledge the largest byte received, even across holes, so the
      // server keeps streaming instead of retransmitting.
      conn->send_ack_abs(conn->rcv_base() + max_end_rel);
    }
    if (pkt.tcp.is_fin() && !fin_seen) {
      fin_seen = true;
      const std::uint32_t fin_rel =
          (pkt.tcp.seq - conn->rcv_base()) + static_cast<std::uint32_t>(pkt.payload.size());
      conn->send_ack_abs(conn->rcv_base() + fin_rel + 1);
      finish("");
    }
  }

  void finish(const std::string& why) {
    if (finished) return;
    finished = true;
    if (stall_token != 0) env().cancel(stall_token);
    ++stall_generation;
    result.note = why;

    // Reconstruct verdicts: the server transmits in sequence order, so the
    // send order is the segments sorted by sequence; every consecutive
    // pair in send order is one reverse-path sample.
    std::vector<SegmentSeen> by_seq = arrivals;
    std::sort(by_seq.begin(), by_seq.end(), [](const SegmentSeen& a, const SegmentSeen& b) {
      return tcpip::seq_lt(a.rel_seq, b.rel_seq);
    });
    std::map<std::uint32_t, std::size_t> arrival_pos;
    for (std::size_t i = 0; i < arrivals.size(); ++i) arrival_pos[arrivals[i].rel_seq] = i;

    for (std::size_t i = 0; i + 1 < by_seq.size(); ++i) {
      SampleResult s;
      s.forward = Ordering::kAmbiguous;  // this test cannot see the forward path
      const std::size_t p1 = arrival_pos[by_seq[i].rel_seq];
      const std::size_t p2 = arrival_pos[by_seq[i + 1].rel_seq];
      s.reverse = p2 < p1 ? Ordering::kReordered : Ordering::kInOrder;
      s.started = by_seq[i].at;
      s.completed = by_seq[i + 1].at;
      // uids in arrival order for ground-truth checks.
      s.rev_uid_first = p1 <= p2 ? by_seq[i].uid : by_seq[i + 1].uid;
      s.rev_uid_second = p1 <= p2 ? by_seq[i + 1].uid : by_seq[i].uid;
      result.samples.push_back(s);
    }
    result.aggregate();
    // The forward direction is unmeasurable; don't let the Ambiguous pile
    // suggest otherwise.
    result.forward = ReorderEstimate{};

    auto complete = [self = shared_from_this()] {
      auto cb = std::move(self->done);
      self->done = nullptr;
      if (cb) cb(std::move(self->result));
    };
    if (conn && conn->established()) {
      const std::uint32_t req_len = static_cast<std::uint32_t>(options.request.size());
      conn->close(req_len, complete);
    } else {
      complete();
    }
  }
};

void DataTransferTest::run(const TestRunConfig& config, std::function<void(TestRunResult)> done) {
  auto run = std::make_shared<Run>(host_, options_, config, std::move(done));
  run->result.test_name = name();
  run->start(target_, port_);
}

}  // namespace reorder::core
