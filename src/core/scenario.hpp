// Declarative experiment descriptions. A ScenarioSpec bundles a testbed
// topology, a matrix of techniques (TestSpecs resolved through the
// registry) and an inter-packet-gap sweep; run_scenario() executes every
// (gap, round, test) cell so benches and examples stop hand-rolling the
// same sweep loops. The scenarios namespace names the canonical
// topologies the paper's evaluation keeps returning to.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/result_sink.hpp"
#include "core/test_registry.hpp"
#include "core/testbed.hpp"
#include "metrics/engine.hpp"

namespace reorder::core {

/// A complete experiment description: topology + test matrix + sweep.
struct ScenarioSpec {
  std::string name{"scenario"};
  std::string summary;
  TestbedConfig testbed{};
  /// The techniques to run (registry specs). Each is constructed once per
  /// testbed and reused across gaps and rounds.
  std::vector<TestSpec> tests;
  /// Inter-packet gaps to sweep; each entry overrides run.inter_packet_gap
  /// for one pass over the matrix. Must be non-empty.
  std::vector<util::Duration> gap_sweep{util::Duration::nanos(0)};
  /// Base run parameters (samples, pacing, timeout).
  TestRunConfig run{};
  /// Measurements of the full matrix per gap point.
  int rounds{1};
  util::Duration between_measurements{util::Duration::seconds(1)};
  /// Virtual-time deadline per measurement.
  std::int64_t deadline_s{3000};
  /// Abort the sweep at the first inadmissible measurement (which is
  /// still recorded) instead of spending the rest of the grid.
  bool stop_on_inadmissible{false};
};

/// One completed cell of the scenario grid.
struct ScenarioMeasurement {
  std::string test;  ///< the technique's self-reported name
  util::Duration gap;
  int round{0};
  TestRunResult result;
};

struct ScenarioResult {
  std::string scenario;
  std::vector<ScenarioMeasurement> measurements;
  /// The streaming metrics engine the runner fed while the grid executed
  /// (target = scenario name, one suite per test). Every aggregate query
  /// below is a snapshot read of it; richer metrics (time-domain,
  /// densities, tail sketches) are available directly.
  std::shared_ptr<metrics::MetricEngine> metrics;

  /// Pooled per-direction counts over every admissible measurement of
  /// `test` (all gaps, all rounds).
  ReorderEstimate aggregate(const std::string& test, bool forward) const;

  /// Mean rate per admissible measurement of `test`, in run order.
  std::vector<double> rate_series(const std::string& test, bool forward) const;

  /// The §IV-C time-domain profile of `test` over the whole sweep.
  TimeDomainProfile time_domain(const std::string& test) const;

  /// The first measurement of `test`, or nullptr.
  const ScenarioMeasurement* first(const std::string& test) const;
};

/// Runs the scenario on a caller-owned testbed (which keeps trace buffers
/// and runtime handles accessible). The spec's testbed config is ignored.
/// When `sink` is non-null every completed cell is published into it as
/// it lands (per-sample events then the measurement, target = scenario
/// name) — the same stream SurveyEngine produces.
ScenarioResult run_scenario(Testbed& bed, const ScenarioSpec& spec, ResultSink* sink = nullptr);

/// Builds a fresh Testbed from spec.testbed and runs the scenario on it.
ScenarioResult run_scenario(const ScenarioSpec& spec, ResultSink* sink = nullptr);

/// The canonical topologies of the paper's evaluation. Each returns a full
/// spec (topology + matrix) that callers may tweak before running.
namespace scenarios {

/// No reordering anywhere: every technique must report rate 0.
ScenarioSpec clean_path(std::uint64_t seed = 1);

/// Dummynet-style adjacent swaps at the given rates (§IV-A's apparatus).
ScenarioSpec swap_shaper(double fwd_p, double rev_p, std::uint64_t seed = 1);

/// Striped parallel links on the forward path (§IV-C's time-dependent
/// process) with a preloaded gap sweep.
ScenarioSpec striped_links(std::uint64_t seed = 1);

/// Bernoulli loss both ways on an otherwise clean path.
ScenarioSpec lossy(double loss_p, std::uint64_t seed = 1);

/// Several backends behind a per-flow load balancer (§III-C/§III-D): the
/// dual test must rule itself out, the SYN test keeps working.
ScenarioSpec load_balanced(std::size_t backends, std::uint64_t seed = 1);

/// A remote with randomized IPIDs: inadmissible for the dual test.
ScenarioSpec random_ipid_remote(std::uint64_t seed = 1);

/// Adversarial: wide striping with heavy contention, displacing packets
/// far beyond a small resequencing window — exact metrics see the
/// reordering, a bounded K-entry sketch with K below the displacement
/// does not (the monitor harness's evasion case).
ScenarioSpec evade_window(std::uint64_t seed = 1);

/// Adversarial: a wide per-flow load-balanced fleet probed by several
/// techniques at once — maximal concurrent flow churn, the traffic shape
/// that thrashes a bounded flow table (the monitor harness's eviction
/// case).
ScenarioSpec flood_flows(std::uint64_t seed = 1);

/// Receive-side NIC interrupt coalescing (arXiv 1008.4931): frames are
/// delivered in bursts with intra-burst local shuffle — bounded
/// displacement, bursty timing; the line-rate ingest path's workload.
ScenarioSpec interrupt_coalescing(std::uint64_t seed = 1);

/// A flaky, uncooperative target — the survey's normal case, not its
/// edge case: opening SYNs are probabilistically dropped (the probe must
/// retransmit through) and echo replies are rate-limited, on an
/// otherwise mildly reordering path. The fault-tolerance suite's host.
ScenarioSpec flaky_target(std::uint64_t seed = 1);

/// Names accepted by by_name(), sorted.
std::vector<std::string> names();

/// Looks up a canonical scenario by name with representative defaults.
/// Throws std::invalid_argument on unknown names.
ScenarioSpec by_name(const std::string& name, std::uint64_t seed = 1);

}  // namespace scenarios

}  // namespace reorder::core
