// IPID admissibility analysis for the dual-connection test (paper §III-C).
//
// The dual test assumes the remote generates IPIDs from one strictly
// increasing counter shared by both connections. The validator probes both
// connections alternately — sending the next probe only after the previous
// ACK arrives, so the remote's transmit order is known — and then compares
// adjacent IPID differences *between* connections against differences
// *within* each connection. A shared monotonic counter makes the
// within-connection difference dominate (it spans two transmissions);
// random IPIDs destroy within-connection monotonicity; a load balancer
// preserves it per connection while the between-connection differences
// decorrelate; Linux 2.4-style hosts return constant zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reorder::core {

enum class IpidVerdict {
  kSharedMonotonic,  ///< dual-connection test admissible
  kConstantZero,     ///< all IPIDs zero (Linux 2.4 with PMTUD)
  kRandom,           ///< per-packet random IPIDs (OpenBSD-style)
  kDisjoint,         ///< per-connection monotonic but unrelated spaces —
                     ///< the load-balancer signature (Fig. 3)
  kInsufficient,     ///< not enough observations to decide
};

std::string to_string(IpidVerdict v);

/// The observation sequence: IPIDs of the remote's ACKs in remote
/// transmit order, tagged with which connection each belongs to.
struct IpidObservation {
  std::uint16_t ipid{0};
  int connection{0};  ///< 0 = first connection, 1 = second
};

struct IpidAnalysis {
  IpidVerdict verdict{IpidVerdict::kInsufficient};
  std::size_t observations{0};
  double zero_fraction{0.0};
  /// Fraction of adjacent (between-connection) steps that are small
  /// positive increments.
  double between_increase_fraction{0.0};
  /// Fraction of consecutive same-connection steps that are small
  /// positive increments.
  double within_increase_fraction{0.0};
  /// Fraction of steps where the within-connection difference dominates
  /// the between-connection difference (the paper's criterion).
  double domination_fraction{0.0};
};

/// Classifies an observation sequence. `max_step` bounds what counts as a
/// "small" counter increment (a busy host serves other traffic between our
/// probes, so increments need not be exactly 1).
IpidAnalysis analyze_ipid_sequence(const std::vector<IpidObservation>& observations,
                                   std::uint16_t max_step = 512);

}  // namespace reorder::core
