// Checkpoint/resume for the sharded survey runtime.
//
// The recovery unit is the shard: run_shard() is pure (its whole world is
// rebuilt from shard_config(), seeds pinned to global target indices), so
// a survey interrupted at ANY point resumes by re-running exactly the
// shards whose results were not yet durably recorded. A SurveyCheckpoint
// is that durable record: one JSONL file holding a header plus one record
// per completed shard — the shard's full-fidelity completion log (every
// sample payload, uids included) and its serialized metric snapshots
// (restored through the metrics from_json contract, so the resumed merge
// is bit-identical to an uninterrupted run's).
//
// Durability discipline:
//   * every save() writes the whole file to `<path>.tmp` and renames it
//     into place — a kill mid-save leaves the previous checkpoint intact;
//   * every record carries an fnv1a64 checksum over its body rendering;
//     load() drops records whose line is torn (unparseable) or whose
//     checksum disagrees, and reports how many it dropped — those shards
//     simply re-run. Corruption costs work, never correctness.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/sharded_survey.hpp"
#include "report/json.hpp"

namespace reorder::core {

/// Full-fidelity measurement codec — unlike the emission schema (which
/// drops packet uids and per-sample payloads are summarized), this
/// round-trips a Measurement exactly, so a restored shard log replays
/// byte-identical JSONL.
report::Json measurement_to_json(const Measurement& m);
Measurement measurement_from_json(const report::Json& j);

class SurveyCheckpoint {
 public:
  /// Identity of the run a checkpoint belongs to. resume() refuses a
  /// checkpoint whose header disagrees with the engine's configuration —
  /// restored shard results are only valid for the exact same plan.
  struct Header {
    std::size_t shards{0};
    std::size_t targets{0};
    int rounds{0};
    std::uint64_t seed{0};
  };

  SurveyCheckpoint() = default;

  void set_header(const Header& h) { header_ = h; }
  const std::optional<Header>& header() const { return header_; }

  bool has_shard(std::size_t shard) const { return shards_.count(shard) != 0; }
  std::size_t completed_count() const { return shards_.size(); }
  /// Completed shard indices, ascending.
  std::vector<std::size_t> completed_shards() const;

  /// Records one completed shard's results (replacing any prior record
  /// for that shard). `attempts` is the retry accounting that produced
  /// the result — bookkeeping for the degraded-mode report, not identity.
  void record_shard(const ShardRunResult& result, int attempts = 1);
  /// Rebuilds the recorded shard's results (log via the measurement
  /// codec, metrics via the from_json restore contract). Throws
  /// std::out_of_range when the shard is not recorded.
  ShardRunResult restore_shard(std::size_t shard) const;
  int attempts(std::size_t shard) const;

  /// Serializes to JSONL text (header line first, shard records in
  /// ascending shard order, each carrying its body checksum).
  std::string serialize() const;
  /// Atomically (tmp + rename) writes serialize() to `path`.
  void save(const std::string& path) const;

  /// Parses checkpoint JSONL, dropping torn lines and checksum-failed
  /// records (counted in torn_records()). A missing file loads as an
  /// empty checkpoint — resume from nothing is a plain run.
  static SurveyCheckpoint load(const std::string& path);
  /// Records dropped by load() because they were torn or corrupt — the
  /// shards that will re-run.
  std::size_t torn_records() const { return torn_; }

 private:
  struct ShardRecord {
    report::Json body;  ///< {"shard":..,"attempts":..,"end":..,"log":[..],"metrics":[..]}
  };

  std::optional<Header> header_;
  std::map<std::size_t, ShardRecord> shards_;
  std::size_t torn_{0};
};

}  // namespace reorder::core
