#include "core/ipid_validator.hpp"

#include "tcpip/seq.hpp"

namespace reorder::core {

std::string to_string(IpidVerdict v) {
  switch (v) {
    case IpidVerdict::kSharedMonotonic: return "shared-monotonic";
    case IpidVerdict::kConstantZero: return "constant-zero";
    case IpidVerdict::kRandom: return "random";
    case IpidVerdict::kDisjoint: return "disjoint (load balancer)";
    case IpidVerdict::kInsufficient: return "insufficient data";
  }
  return "?";
}

IpidAnalysis analyze_ipid_sequence(const std::vector<IpidObservation>& obs,
                                   std::uint16_t max_step) {
  IpidAnalysis out;
  out.observations = obs.size();
  if (obs.size() < 6) return out;

  std::size_t zeros = 0;
  for (const auto& o : obs) {
    if (o.ipid == 0) ++zeros;
  }
  out.zero_fraction = static_cast<double>(zeros) / static_cast<double>(obs.size());
  if (out.zero_fraction > 0.95) {
    out.verdict = IpidVerdict::kConstantZero;
    return out;
  }

  const auto small_positive = [max_step](std::uint16_t from, std::uint16_t to) {
    const auto d = tcpip::ipid_diff(to, from);
    return d > 0 && d <= static_cast<std::int16_t>(max_step);
  };

  // Between-connection: adjacent observations with different connections.
  std::size_t between_total = 0;
  std::size_t between_inc = 0;
  for (std::size_t i = 1; i < obs.size(); ++i) {
    if (obs[i].connection == obs[i - 1].connection) continue;
    ++between_total;
    if (small_positive(obs[i - 1].ipid, obs[i].ipid)) ++between_inc;
  }
  // Within-connection: consecutive observations of the same connection.
  std::size_t within_total = 0;
  std::size_t within_inc = 0;
  std::vector<std::size_t> last_index_of_conn(2, static_cast<std::size_t>(-1));
  // Also the paper's domination criterion: within-difference (spanning two
  // remote transmissions) must be at least the between-difference.
  std::size_t dom_total = 0;
  std::size_t dom_hold = 0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const int c = obs[i].connection;
    if (c != 0 && c != 1) continue;
    const std::size_t prev = last_index_of_conn[static_cast<std::size_t>(c)];
    if (prev != static_cast<std::size_t>(-1)) {
      ++within_total;
      if (small_positive(obs[prev].ipid, obs[i].ipid)) ++within_inc;
      // Between-step ending at the same observation: the immediately
      // preceding observation of the other connection, if adjacent.
      if (i >= 1 && obs[i - 1].connection != c && prev == i - 2 && i >= 2) {
        const auto within_d = tcpip::ipid_diff(obs[i].ipid, obs[prev].ipid);
        const auto between_d = tcpip::ipid_diff(obs[i].ipid, obs[i - 1].ipid);
        if (within_d > 0) {
          ++dom_total;
          if (between_d > 0 && within_d >= between_d) ++dom_hold;
        }
      }
    }
    last_index_of_conn[static_cast<std::size_t>(c)] = i;
  }

  if (between_total == 0 || within_total == 0) return out;
  out.between_increase_fraction =
      static_cast<double>(between_inc) / static_cast<double>(between_total);
  out.within_increase_fraction =
      static_cast<double>(within_inc) / static_cast<double>(within_total);
  out.domination_fraction =
      dom_total > 0 ? static_cast<double>(dom_hold) / static_cast<double>(dom_total) : 0.0;

  if (out.within_increase_fraction < 0.8) {
    out.verdict = IpidVerdict::kRandom;
  } else if (out.between_increase_fraction >= 0.9 && out.domination_fraction >= 0.9) {
    out.verdict = IpidVerdict::kSharedMonotonic;
  } else if (out.between_increase_fraction < 0.7) {
    out.verdict = IpidVerdict::kDisjoint;
  } else {
    out.verdict = IpidVerdict::kInsufficient;
  }
  return out;
}

}  // namespace reorder::core
