// The SYN Test (paper §III-D).
//
// Each sample sends two SYNs on the same four-tuple whose initial sequence
// numbers differ by a small offset. Per-flow load balancers hash the
// four-tuple, so both SYNs reach the same backend — this is the one test
// that works behind consumer-site load balancing.
//
// The first SYN to arrive puts the remote in SYN_RCVD and elicits a
// SYN/ACK whose acknowledgment number identifies *which* SYN arrived first
// (forward verdict). The second SYN elicits an RST from most stacks (or,
// per the letter of RFC 793, an RST only when in-window and a pure ACK
// otherwise); since the remote responds in arrival order, receiving that
// second reply before the SYN/ACK reveals reverse-path reordering.
//
// Politeness (the paper is explicit about not looking like a SYN flood):
// every sample completes the handshake with the surviving SYN and closes
// the connection with a FIN exchange; samples are rate-limited by
// TestRunConfig::sample_spacing.
#pragma once

#include <memory>

#include "core/reorder_test.hpp"
#include "probe/probe_host.hpp"

namespace reorder::core {

struct SynTestOptions {
  /// Sequence offset between the two SYNs.
  std::uint32_t syn_offset{64};
  /// Base ISS for crafted SYNs (per-sample jitter added internally).
  std::uint32_t iss{500'000};
  std::uint16_t advertised_mss{1460};
  std::uint16_t advertised_window{65535};
  /// How long to linger after classification to complete the polite
  /// close before the flow is abandoned.
  util::Duration close_linger{util::Duration::millis(400)};
  /// Replies spaced further apart than this are treated as involving a
  /// retransmitted SYN/ACK: the reverse verdict becomes ambiguous rather
  /// than trusting an order that a lost original would fake.
  util::Duration reply_spread_guard{util::Duration::millis(100)};
};

class SynTest final : public ReorderTest {
 public:
  SynTest(probe::ProbeHost& host, tcpip::Ipv4Address target, std::uint16_t port,
          SynTestOptions options = {});

  std::string name() const override { return "syn"; }
  void run(const TestRunConfig& config, std::function<void(TestRunResult)> done) override;

 private:
  struct Run;
  probe::ProbeHost& host_;
  tcpip::Ipv4Address target_;
  std::uint16_t port_;
  SynTestOptions options_;
};

}  // namespace reorder::core
