#include "core/scenario.hpp"

#include <stdexcept>

namespace reorder::core {

ReorderEstimate ScenarioResult::aggregate(const std::string& test, bool forward) const {
  if (metrics == nullptr) return {};
  return metrics->aggregate(scenario, test, forward);
}

std::vector<double> ScenarioResult::rate_series(const std::string& test, bool forward) const {
  if (metrics == nullptr) return {};
  return metrics->rate_series(scenario, test, forward);
}

TimeDomainProfile ScenarioResult::time_domain(const std::string& test) const {
  if (metrics == nullptr) return {};
  return metrics->time_domain(scenario, test);
}

const ScenarioMeasurement* ScenarioResult::first(const std::string& test) const {
  for (const auto& m : measurements) {
    if (m.test == test) return &m;
  }
  return nullptr;
}

ScenarioResult run_scenario(Testbed& bed, const ScenarioSpec& spec, ResultSink* sink) {
  if (spec.gap_sweep.empty()) {
    throw std::invalid_argument{"run_scenario: '" + spec.name + "' has an empty gap_sweep"};
  }
  ScenarioResult out;
  out.scenario = spec.name;
  // The runner always streams into a metrics engine (the result's query
  // backend); a caller-supplied sink sees the same events after it.
  out.metrics = std::make_shared<metrics::MetricEngine>();
  metrics::EngineSink engine_sink{*out.metrics};
  SinkFanout fanout;
  fanout.add(engine_sink);
  if (sink != nullptr) fanout.add(*sink);
  ResultSink& sinks = fanout;
  // Bracket the stream like the survey engine does: sinks may key on
  // survey_end to know a capture is complete.
  sinks.on_survey_begin(SurveyEvent{1, spec.rounds, 0, bed.loop().now()});
  const auto finish = [&]() -> ScenarioResult {
    sinks.on_survey_end(SurveyEvent{1, spec.rounds, out.measurements.size(), bed.loop().now()});
    return std::move(out);
  };

  // One instance per technique, reused across the grid — connections and
  // validation state persist the way the paper's continuous prober's do.
  std::vector<std::unique_ptr<ReorderTest>> tests;
  tests.reserve(spec.tests.size());
  for (const auto& t : spec.tests) {
    tests.push_back(TestRegistry::global().create(bed.probe(), bed.remote_addr(), t));
  }

  for (const util::Duration gap : spec.gap_sweep) {
    for (int round = 0; round < spec.rounds; ++round) {
      for (auto& test : tests) {
        TestRunConfig run = spec.run;
        run.inter_packet_gap = gap;
        ScenarioMeasurement m;
        m.test = test->name();
        m.gap = gap;
        m.round = round;
        const util::TimePoint started = bed.loop().now();
        m.result = bed.run_sync(*test, run, spec.deadline_s);
        publish_result(sinks, spec.name, m.test, started, m.result, out.measurements.size());
        out.measurements.push_back(std::move(m));
        if (spec.stop_on_inadmissible && !out.measurements.back().result.admissible) {
          return finish();
        }
        bed.loop().advance(spec.between_measurements);
      }
    }
  }
  return finish();
}

ScenarioResult run_scenario(const ScenarioSpec& spec, ResultSink* sink) {
  Testbed bed{spec.testbed};
  return run_scenario(bed, spec, sink);
}

namespace scenarios {

namespace {

std::vector<TestSpec> full_matrix() {
  return {TestSpec{"single-connection"}, TestSpec{"dual-connection"}, TestSpec{"syn"},
          TestSpec{"data-transfer"}, TestSpec{"ping-burst"}};
}

std::vector<TestSpec> two_way_matrix() {
  return {TestSpec{"single-connection"}, TestSpec{"dual-connection"}, TestSpec{"syn"}};
}

}  // namespace

ScenarioSpec clean_path(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "clean-path";
  spec.summary = "no reordering process anywhere; every technique must report rate 0";
  spec.testbed.seed = seed;
  spec.testbed.remote = default_remote_config();
  spec.tests = full_matrix();
  return spec;
}

ScenarioSpec swap_shaper(double fwd_p, double rev_p, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "swap-shaper";
  spec.summary = "dummynet-style adjacent swaps (the §IV-A validation apparatus)";
  spec.testbed.seed = seed;
  spec.testbed.forward.swap_probability = fwd_p;
  spec.testbed.reverse.swap_probability = rev_p;
  spec.testbed.remote = default_remote_config();
  // BSD-style prompt hole-fill ACKs keep the single-connection reverse
  // path observable (the validation benches always enable this).
  spec.testbed.remote.behavior.immediate_ack_on_hole_fill = true;
  spec.tests = full_matrix();
  return spec;
}

ScenarioSpec striped_links(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "striped-links";
  spec.summary = "per-packet striping across parallel lanes (§IV-C's time-dependent process)";
  spec.testbed.seed = seed;
  spec.testbed.forward.striped = sim::StripedLinkConfig{};
  // Fast enclosing links so their serialization does not mask the striped
  // segment's time constant.
  spec.testbed.forward.ingress_link.bandwidth_bps = 1'000'000'000;
  spec.testbed.forward.egress_link.bandwidth_bps = 1'000'000'000;
  spec.tests = {TestSpec{"dual-connection"}};
  spec.gap_sweep = {util::Duration::micros(0), util::Duration::micros(25),
                    util::Duration::micros(50), util::Duration::micros(100),
                    util::Duration::micros(200)};
  spec.run.sample_spacing = util::Duration::millis(2);
  return spec;
}

ScenarioSpec lossy(double loss_p, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "lossy";
  spec.summary = "Bernoulli loss both ways on an otherwise clean path";
  spec.testbed.seed = seed;
  spec.testbed.forward.loss_probability = loss_p;
  spec.testbed.reverse.loss_probability = loss_p;
  spec.tests = two_way_matrix();
  return spec;
}

ScenarioSpec load_balanced(std::size_t backends, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "load-balanced";
  spec.summary = "per-flow load balancer: dual rules itself out, syn keeps working";
  spec.testbed.seed = seed;
  spec.testbed.backends = backends;
  spec.tests = {TestSpec{"dual-connection"}, TestSpec{"syn"}, TestSpec{"ping-burst"}};
  return spec;
}

ScenarioSpec random_ipid_remote(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "random-ipid";
  spec.summary = "remote with randomized IPIDs: inadmissible for the dual test";
  spec.testbed.seed = seed;
  spec.testbed.remote = default_remote_config();
  spec.testbed.remote.ipid_policy = tcpip::IpidPolicy::kRandom;
  spec.tests = {TestSpec{"dual-connection"}, TestSpec{"syn"}};
  return spec;
}

ScenarioSpec evade_window(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "evade-window";
  spec.summary =
      "wide heavily-contended striping: displacements beyond a small resequencing window";
  spec.testbed.seed = seed;
  sim::StripedLinkConfig striped;
  striped.lanes = 8;
  striped.contention_probability = 0.35;
  striped.mean_backlog_bytes = 2500.0;
  spec.testbed.forward.striped = striped;
  spec.testbed.forward.ingress_link.bandwidth_bps = 1'000'000'000;
  spec.testbed.forward.egress_link.bandwidth_bps = 1'000'000'000;
  spec.tests = {TestSpec{"dual-connection"}};
  spec.gap_sweep = {util::Duration::micros(0), util::Duration::micros(50)};
  spec.run.sample_spacing = util::Duration::millis(2);
  return spec;
}

ScenarioSpec flood_flows(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "flood-flows";
  spec.summary = "wide load-balanced fleet under several techniques: maximal flow churn";
  spec.testbed.seed = seed;
  spec.testbed.backends = 8;
  spec.tests = {TestSpec{"dual-connection"}, TestSpec{"syn"}, TestSpec{"ping-burst"}};
  return spec;
}

ScenarioSpec interrupt_coalescing(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "interrupt-coalescing";
  spec.summary =
      "NIC interrupt coalescing: bursty delivery with intra-burst local shuffle (arXiv "
      "1008.4931)";
  spec.testbed.seed = seed;
  sim::InterruptCoalescerConfig coalescer;
  coalescer.max_frames = 6;
  coalescer.window = util::Duration::micros(150);
  coalescer.shuffle_probability = 0.35;
  spec.testbed.forward.coalescer = coalescer;
  // Fast enclosing links: the burst structure, not serialization, sets
  // the arrival pattern (the coalescing window is the time constant).
  spec.testbed.forward.ingress_link.bandwidth_bps = 1'000'000'000;
  spec.testbed.forward.egress_link.bandwidth_bps = 1'000'000'000;
  spec.tests = {TestSpec{"dual-connection"}};
  spec.gap_sweep = {util::Duration::micros(0), util::Duration::micros(50)};
  spec.run.sample_spacing = util::Duration::millis(2);
  return spec;
}

ScenarioSpec flaky_target(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "flaky-target";
  spec.summary =
      "uncooperative host: probabilistic SYN drops + rate-limited echo on a mildly "
      "reordering path";
  spec.testbed.seed = seed;
  spec.testbed.remote = default_remote_config();
  // A SYN that vanishes forces the prober through its retransmission
  // path; a third of opening SYNs vanishing keeps measurements completing
  // (eventually) while exercising every retry.
  spec.testbed.remote.syn_drop_probability = 0.3;
  // Tight echo budget: ping bursts overrun it and see silence — the
  // paper's argument against ping-based measurement, in miniature.
  spec.testbed.remote.ping_rate_limit_per_sec = 10;
  spec.testbed.remote.behavior.immediate_ack_on_hole_fill = true;
  // Mild reordering both ways so the completed measurements still carry
  // signal worth merging.
  spec.testbed.forward.swap_probability = 0.1;
  spec.testbed.reverse.swap_probability = 0.05;
  spec.tests = full_matrix();
  // Dropped SYNs come back via RTO retransmission (250 ms, doubling);
  // give each sample room for a few losing rolls in a row.
  spec.run.sample_timeout = util::Duration::seconds(5);
  spec.run.sample_spacing = util::Duration::millis(50);
  return spec;
}

std::vector<std::string> names() {
  return {"clean-path", "evade-window",  "flaky-target", "flood-flows",
          "interrupt-coalescing", "load-balanced", "lossy", "random-ipid",
          "striped-links", "swap-shaper"};
}

ScenarioSpec by_name(const std::string& name, std::uint64_t seed) {
  if (name == "clean-path") return clean_path(seed);
  if (name == "swap-shaper") return swap_shaper(0.15, 0.05, seed);
  if (name == "striped-links") return striped_links(seed);
  if (name == "lossy") return lossy(0.02, seed);
  if (name == "load-balanced") return load_balanced(4, seed);
  if (name == "random-ipid") return random_ipid_remote(seed);
  if (name == "evade-window") return evade_window(seed);
  if (name == "flood-flows") return flood_flows(seed);
  if (name == "interrupt-coalescing") return interrupt_coalescing(seed);
  if (name == "flaky-target") return flaky_target(seed);
  std::string known;
  for (const auto& n : names()) known += known.empty() ? n : ", " + n;
  throw std::invalid_argument{"scenarios::by_name: unknown scenario '" + name +
                              "' (known: " + known + ")"};
}

}  // namespace scenarios

}  // namespace reorder::core
