// The paper's §IV-B driver: cycle through all tests on each host, then
// round-robin to the next host, continuously. The session keeps every
// measurement (timestamped batch of samples) so that per-host time series
// can be compared across tests with the paired-difference statistic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/reorder_test.hpp"
#include "netsim/event_loop.hpp"
#include "stats/pair_difference.hpp"

namespace reorder::core {

/// One completed measurement in a session.
struct Measurement {
  std::string target;
  std::string test;
  util::TimePoint at;
  TestRunResult result;
};

class MeasurementSession {
 public:
  explicit MeasurementSession(sim::EventLoop& loop) : loop_{loop} {}

  /// Registers a target and the tests to cycle through against it. Tests
  /// are owned by the session.
  void add_target(std::string name, std::vector<std::unique_ptr<ReorderTest>> tests);

  /// Runs `rounds` full cycles (every test against every target per
  /// round), pausing `between_measurements` of virtual time after each
  /// measurement. Synchronous: drives the event loop until finished.
  const std::vector<Measurement>& run(const TestRunConfig& config, int rounds,
                                      util::Duration between_measurements);

  const std::vector<Measurement>& measurements() const { return measurements_; }

  /// Mean reordering rate per measurement for (target, test), in time
  /// order — the paired series for the §IV-B comparison.
  std::vector<double> rate_series(const std::string& target, const std::string& test,
                                  bool forward) const;

  /// Aggregate estimate over every measurement of (target, test).
  ReorderEstimate aggregate(const std::string& target, const std::string& test,
                            bool forward) const;

  /// Paired comparison of two tests on one target (paper: 99.9% CI).
  /// Series are truncated to the shorter length; needs >= 2 measurements.
  stats::PairDifferenceResult compare(const std::string& target, const std::string& test_a,
                                      const std::string& test_b, bool forward,
                                      double confidence = 0.999) const;

 private:
  struct Target {
    std::string name;
    std::vector<std::unique_ptr<ReorderTest>> tests;
  };

  sim::EventLoop& loop_;
  std::vector<Target> targets_;
  std::vector<Measurement> measurements_;
};

}  // namespace reorder::core
