// Reordering metrics.
//
// The paper's primitive metric is the probability that a pair of test
// packets is exchanged in flight, optionally parameterized by the
// intervening gap (the time-domain distribution of §IV-C / Fig. 7). For
// longer packet sequences (the TCP data-transfer baseline) this module
// also provides the sequence metrics later standardized in RFC 4737
// (reordering ratio and extents) — the paper cites the predecessor draft
// (Morton et al.) as related work.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/verdict.hpp"
#include "util/time.hpp"

namespace reorder::core {

/// RFC 4737-style statistics over an arrival sequence. `arrival` lists the
/// send indices in order of arrival (missing packets simply absent).
struct SequenceReorderStats {
  std::uint64_t packets{0};
  std::uint64_t reordered{0};       ///< arrivals below the running maximum
  double ratio{0.0};                ///< reordered / packets
  std::uint32_t max_extent{0};      ///< largest reordering extent observed
  double mean_extent{0.0};          ///< mean extent over reordered packets
  std::uint64_t adjacent_swaps{0};  ///< inversions (minimum exchanges)
};

/// Computes ratio/extent statistics for an arrival permutation.
/// A packet is reordered iff a packet with a larger send index arrived
/// before it; its extent is the distance back to the earliest such packet.
SequenceReorderStats analyze_sequence(const std::vector<std::uint32_t>& arrival);

/// The reordering rate of back-to-back pairs as a function of the gap
/// between them — the paper's time-domain representation. Accumulates
/// (gap, verdict) observations and reports one estimate per distinct gap.
class TimeDomainProfile {
 public:
  void add(util::Duration gap, Ordering forward_verdict);

  /// Credits a whole pre-tallied estimate at one gap — the bulk form a
  /// deserializer uses to rebuild a profile from serialized points.
  void add(util::Duration gap, const ReorderEstimate& estimate);

  /// Sums another profile's per-gap verdict counts into this one —
  /// associative and exact, so per-shard profiles combine losslessly.
  void merge(const TimeDomainProfile& other);

  struct Point {
    util::Duration gap;
    ReorderEstimate estimate;
  };
  /// Points sorted by gap.
  std::vector<Point> points() const;

  /// The estimate at one gap, if any samples were taken there.
  std::optional<ReorderEstimate> at(util::Duration gap) const;

  /// Linear-interpolated reordering rate at an arbitrary gap — the
  /// "predict how a different protocol would fare" use in §IV-C.
  /// Out-of-range gaps clamp to the nearest measured point.
  std::optional<double> interpolate_rate(util::Duration gap) const;

  std::size_t distinct_gaps() const { return by_gap_.size(); }

 private:
  std::map<std::int64_t, ReorderEstimate> by_gap_;
};

}  // namespace reorder::core
