#include "core/measurement_session.hpp"

#include <algorithm>
#include <optional>

namespace reorder::core {

void MeasurementSession::add_target(std::string name,
                                    std::vector<std::unique_ptr<ReorderTest>> tests) {
  targets_.push_back(Target{std::move(name), std::move(tests)});
}

const std::vector<Measurement>& MeasurementSession::run(const TestRunConfig& config, int rounds,
                                                        util::Duration between_measurements) {
  for (int round = 0; round < rounds; ++round) {
    for (auto& target : targets_) {
      for (auto& test : target.tests) {
        std::optional<TestRunResult> out;
        const util::TimePoint at = loop_.now();
        test->run(config, [&out](TestRunResult r) { out = std::move(r); });
        loop_.run_while(loop_.now() + util::Duration::seconds(600),
                        [&out] { return !out.has_value(); });
        Measurement m;
        m.target = target.name;
        m.test = test->name();
        m.at = at;
        if (out.has_value()) {
          m.result = std::move(*out);
        } else {
          m.result.test_name = test->name();
          m.result.admissible = false;
          m.result.note = "measurement did not complete";
        }
        measurements_.push_back(std::move(m));
        loop_.advance(between_measurements);
      }
    }
  }
  return measurements_;
}

std::vector<double> MeasurementSession::rate_series(const std::string& target,
                                                    const std::string& test,
                                                    bool forward) const {
  std::vector<double> out;
  for (const auto& m : measurements_) {
    if (m.target != target || m.test != test || !m.result.admissible) continue;
    const ReorderEstimate& est = forward ? m.result.forward : m.result.reverse;
    if (est.usable() == 0) continue;
    out.push_back(est.rate());
  }
  return out;
}

ReorderEstimate MeasurementSession::aggregate(const std::string& target, const std::string& test,
                                              bool forward) const {
  ReorderEstimate total;
  for (const auto& m : measurements_) {
    if (m.target != target || m.test != test || !m.result.admissible) continue;
    const ReorderEstimate& est = forward ? m.result.forward : m.result.reverse;
    total.in_order += est.in_order;
    total.reordered += est.reordered;
    total.ambiguous += est.ambiguous;
    total.lost += est.lost;
  }
  return total;
}

stats::PairDifferenceResult MeasurementSession::compare(const std::string& target,
                                                        const std::string& test_a,
                                                        const std::string& test_b, bool forward,
                                                        double confidence) const {
  auto a = rate_series(target, test_a, forward);
  auto b = rate_series(target, test_b, forward);
  const std::size_t n = std::min(a.size(), b.size());
  a.resize(n);
  b.resize(n);
  return stats::pair_difference_test(a, b, confidence);
}

}  // namespace reorder::core
