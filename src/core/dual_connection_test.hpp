// The Dual Connection Test (paper §III-C).
//
// Two established connections to the target. Each sample sends one
// out-of-order 1-byte segment on each connection (sequence one beyond the
// expected byte); both are acknowledged immediately (no delayed-ACK
// ambiguity). Under a shared monotonic IPID counter, the IPIDs on the two
// ACKs reveal the order in which the remote transmitted them — i.e. the
// order the samples *arrived* (forward verdict) — and comparing that
// against the ACKs' arrival order at the probe yields the reverse verdict.
// Both directions from a single sample, loss detectable; the price is the
// IPID assumption, validated up front (see ipid_validator.hpp).
#pragma once

#include <memory>

#include "core/ipid_validator.hpp"
#include "core/reorder_test.hpp"
#include "probe/probe_host.hpp"
#include "probe/prober.hpp"

namespace reorder::core {

struct DualConnectionOptions {
  probe::ProbeConnectionOptions connection{};
  /// Run the IPID validation phase before measuring; inadmissible hosts
  /// yield admissible=false results with the verdict in `note`.
  bool validate_ipid{true};
  /// Probes per connection during validation.
  int validation_probes{8};
  util::Duration validation_timeout{util::Duration::millis(500)};
};

class DualConnectionTest final : public ReorderTest {
 public:
  DualConnectionTest(probe::ProbeHost& host, tcpip::Ipv4Address target, std::uint16_t port,
                     DualConnectionOptions options = {});

  std::string name() const override { return "dual-connection"; }
  void run(const TestRunConfig& config, std::function<void(TestRunResult)> done) override;

  /// The validation analysis from the most recent run (empty before).
  const IpidAnalysis& last_validation() const { return last_validation_; }

 private:
  struct Run;
  probe::ProbeHost& host_;
  tcpip::Ipv4Address target_;
  std::uint16_t port_;
  DualConnectionOptions options_;
  IpidAnalysis last_validation_;
};

}  // namespace reorder::core
