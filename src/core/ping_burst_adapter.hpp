// PingBurstTest exposed through the ReorderTest interface so the Bennett
// et al. baseline can participate in registry-driven scenarios and
// surveys next to the paper's techniques.
//
// The burst verdicts are round-trip by construction (the paper's §II
// critique): the combined-path adjacent-pair counts land in `forward`,
// `reverse` stays empty, and the caveat is recorded in the result note.
#pragma once

#include "core/ping_burst_test.hpp"
#include "core/reorder_test.hpp"

namespace reorder::core {

class PingBurstAdapter final : public ReorderTest {
 public:
  PingBurstAdapter(probe::ProbeHost& host, tcpip::Ipv4Address target,
                   PingBurstOptions options = {});

  std::string name() const override { return "ping-burst"; }

  /// config.samples is the number of bursts; sample_spacing paces them.
  /// inter_packet_gap does not apply (the burst paces itself internally).
  void run(const TestRunConfig& config, std::function<void(TestRunResult)> done) override;

  /// The underlying burst prober, for callers that drive it directly.
  PingBurstTest& raw() { return burst_; }

  /// Burst-level statistics from the most recent completed run (the
  /// Bennett metrics — burst fraction, reply rate — the benches report).
  const PingBurstResult& last_burst_result() const { return last_; }

 private:
  PingBurstTest burst_;
  int burst_size_;
  PingBurstResult last_;
};

}  // namespace reorder::core
