// Registry-driven construction of measurement techniques (paper §III).
//
// A TestSpec names a technique, a target port and optional technique
// options; TestRegistry maps technique names to factories with the
// canonical signature (ProbeHost&, Ipv4Address, const TestSpec&). Every
// technique instantiation in examples/, bench/ and tests/ goes through
// here, so adding a technique (or a variant) is one registration instead
// of twenty call-site edits — and unknown names are a hard error instead
// of a silent fallback.
//
// Thread safety: the registry is shared process state (global() is the
// one instance everything uses) and the sharded survey runtime builds
// test suites from worker threads, so every lookup and registration
// takes an internal mutex. The global() instance itself is initialized
// exactly once (C++ static-local guarantee). Factories run OUTSIDE the
// lock — a slow constructor must not serialize other shards' lookups —
// and technique names resolved by canonical_name() stay valid forever
// (registrations are insert-only into node-based maps).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "core/data_transfer_test.hpp"
#include "core/dual_connection_test.hpp"
#include "core/ping_burst_test.hpp"
#include "core/reorder_test.hpp"
#include "core/single_connection_test.hpp"
#include "core/syn_test.hpp"
#include "probe/probe_host.hpp"

namespace reorder::core {

/// Technique-specific options carried by a TestSpec; monostate selects the
/// technique's defaults.
using TestOptions = std::variant<std::monostate, SingleConnectionOptions, DualConnectionOptions,
                                 SynTestOptions, DataTransferOptions, PingBurstOptions>;

/// Declarative description of one technique instantiation.
struct TestSpec {
  std::string technique{"single-connection"};
  /// Target port; 0 selects the technique's conventional port (the discard
  /// port for the probe tests, 80 for the data transfer).
  std::uint16_t port{0};
  TestOptions options{};

  TestSpec() = default;
  explicit TestSpec(std::string technique_name, std::uint16_t target_port = 0,
                    TestOptions technique_options = {})
      : technique{std::move(technique_name)},
        port{target_port},
        options{std::move(technique_options)} {}
};

class TestRegistry {
 public:
  /// The canonical factory signature every technique registers under.
  using Factory = std::function<std::unique_ptr<ReorderTest>(
      probe::ProbeHost&, tcpip::Ipv4Address, const TestSpec&)>;

  void register_technique(const std::string& name, Factory factory);
  /// Short name (e.g. "single") resolving to a registered technique.
  void register_alias(const std::string& alias, const std::string& canonical);

  /// True for canonical names and aliases alike.
  bool contains(const std::string& name) const;

  /// Resolves aliases to the canonical technique name. Throws
  /// std::invalid_argument (listing the known techniques) on unknown names.
  const std::string& canonical_name(const std::string& name) const;

  /// Canonical technique names, sorted.
  std::vector<std::string> technique_names() const;

  /// Builds `spec` against `target`. Throws std::invalid_argument on an
  /// unknown technique name or mismatched options.
  std::unique_ptr<ReorderTest> create(probe::ProbeHost& host, tcpip::Ipv4Address target,
                                      const TestSpec& spec) const;

  /// create(), downcast to the concrete technique type — for call sites
  /// that need technique-specific accessors (e.g. DualConnectionTest::
  /// last_validation). Throws std::invalid_argument on a type mismatch.
  template <typename T>
  std::unique_ptr<T> create_as(probe::ProbeHost& host, tcpip::Ipv4Address target,
                               const TestSpec& spec) const {
    auto base = create(host, target, spec);
    if (auto* typed = dynamic_cast<T*>(base.get())) {
      base.release();
      return std::unique_ptr<T>{typed};
    }
    throw std::invalid_argument{"TestRegistry: technique '" + spec.technique +
                                "' is not of the requested concrete type"};
  }

  /// The process-wide registry, pre-loaded with the paper's techniques:
  /// single-connection (+ the in-order variant), dual-connection, syn,
  /// data-transfer, and the ping-burst baseline.
  static TestRegistry& global();

 private:
  const std::string& canonical_name_locked(const std::string& name) const;

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
  std::map<std::string, std::string> aliases_;
};

/// Convenience: builds `spec` against `target` via the global registry.
std::unique_ptr<ReorderTest> make_registered_test(probe::ProbeHost& host,
                                                  tcpip::Ipv4Address target, const TestSpec& spec);

}  // namespace reorder::core
