#include "core/checkpoint.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "metrics/engine.hpp"
#include "report/sinks.hpp"
#include "util/fault_injector.hpp"

namespace reorder::core {

namespace {

/// Checksum a record body by its rendering. dump() is a pure function of
/// construction order, which the codec fixes, so the checksum is stable
/// across processes — and fnv1a64 is already this repo's on-disk hash
/// (the fault-injector site hash documents the constants).
std::string body_crc(const report::Json& body) {
  const std::uint64_t h = util::fnv1a64(body.dump());
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return std::string{buf};
}

report::Json sample_to_json(const SampleResult& s) {
  report::Json j = report::Json::object();
  j.set("fwd", to_string(s.forward));
  j.set("rev", to_string(s.reverse));
  j.set("started_ns", s.started.ns());
  j.set("completed_ns", s.completed.ns());
  j.set("gap_ns", s.gap.ns());
  j.set("fwd_uid_first", report::Json::u64(s.fwd_uid_first));
  j.set("fwd_uid_second", report::Json::u64(s.fwd_uid_second));
  j.set("rev_uid_first", report::Json::u64(s.rev_uid_first));
  j.set("rev_uid_second", report::Json::u64(s.rev_uid_second));
  return j;
}

SampleResult sample_from_json(const report::Json& j) {
  SampleResult s;
  s.forward = ordering_from_string(j.at("fwd").as_string());
  s.reverse = ordering_from_string(j.at("rev").as_string());
  s.started = util::TimePoint::from_ns(j.at("started_ns").as_int());
  s.completed = util::TimePoint::from_ns(j.at("completed_ns").as_int());
  s.gap = util::Duration::nanos(j.at("gap_ns").as_int());
  s.fwd_uid_first = j.at("fwd_uid_first").as_u64();
  s.fwd_uid_second = j.at("fwd_uid_second").as_u64();
  s.rev_uid_first = j.at("rev_uid_first").as_u64();
  s.rev_uid_second = j.at("rev_uid_second").as_u64();
  return s;
}

report::Json end_to_json(const SurveyEvent& e) {
  report::Json j = report::Json::object();
  j.set("targets", report::Json::u64(e.targets));
  j.set("rounds", e.rounds);
  j.set("measurements", report::Json::u64(e.measurements));
  j.set("at_ns", e.at.ns());
  return j;
}

SurveyEvent end_from_json(const report::Json& j) {
  SurveyEvent e;
  e.targets = static_cast<std::size_t>(j.at("targets").as_u64());
  e.rounds = static_cast<int>(j.at("rounds").as_int());
  e.measurements = static_cast<std::size_t>(j.at("measurements").as_u64());
  e.at = util::TimePoint::from_ns(j.at("at_ns").as_int());
  return e;
}

}  // namespace

report::Json measurement_to_json(const Measurement& m) {
  report::Json j = report::Json::object();
  j.set("target", m.target);
  j.set("test", m.test);
  j.set("at_ns", m.at.ns());
  report::Json r = report::Json::object();
  r.set("test_name", m.result.test_name);
  r.set("admissible", m.result.admissible);
  r.set("note", m.result.note);
  r.set("fwd", report::to_json(m.result.forward));
  r.set("rev", report::to_json(m.result.reverse));
  report::Json samples = report::Json::array();
  for (const SampleResult& s : m.result.samples) samples.push(sample_to_json(s));
  r.set("samples", std::move(samples));
  j.set("result", std::move(r));
  return j;
}

Measurement measurement_from_json(const report::Json& j) {
  Measurement m;
  m.target = j.at("target").as_string();
  m.test = j.at("test").as_string();
  m.at = util::TimePoint::from_ns(j.at("at_ns").as_int());
  const report::Json& r = j.at("result");
  m.result.test_name = r.at("test_name").as_string();
  m.result.admissible = r.at("admissible").as_bool();
  m.result.note = r.at("note").as_string();
  m.result.forward = report::estimate_from_json(r.at("fwd"));
  m.result.reverse = report::estimate_from_json(r.at("rev"));
  m.result.samples.reserve(r.at("samples").size());
  for (const report::Json& s : r.at("samples").items()) {
    m.result.samples.push_back(sample_from_json(s));
  }
  return m;
}

std::vector<std::size_t> SurveyCheckpoint::completed_shards() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& [shard, record] : shards_) out.push_back(shard);
  return out;
}

void SurveyCheckpoint::record_shard(const ShardRunResult& result, int attempts) {
  report::Json body = report::Json::object();
  body.set("shard", report::Json::u64(result.shard));
  body.set("attempts", attempts);
  body.set("end", end_to_json(result.end));
  report::Json log = report::Json::array();
  for (const Measurement& m : result.log) log.push(measurement_to_json(m));
  body.set("log", std::move(log));
  // The shard's metric snapshots travel as the exact `metrics` records
  // the engine would emit — the same schema restore_record consumes, so
  // checkpointing exercises no second serialization format.
  std::ostringstream text;
  report::JsonlWriter writer{text};
  result.metrics.emit_jsonl(writer, metrics::MetricEngine::EmitOrder::kCanonical);
  report::Json records = report::Json::array();
  for (report::Json& rec : report::read_jsonl_text(text.str())) records.push(std::move(rec));
  body.set("metrics", std::move(records));
  shards_[result.shard] = ShardRecord{std::move(body)};
}

ShardRunResult SurveyCheckpoint::restore_shard(std::size_t shard) const {
  const report::Json& body = shards_.at(shard).body;
  ShardRunResult out;
  out.shard = static_cast<std::size_t>(body.at("shard").as_u64());
  out.end = end_from_json(body.at("end"));
  out.log.reserve(body.at("log").size());
  for (const report::Json& m : body.at("log").items()) {
    out.log.push_back(measurement_from_json(m));
  }
  for (const report::Json& rec : body.at("metrics").items()) {
    out.metrics.restore_record(rec);
  }
  return out;
}

int SurveyCheckpoint::attempts(std::size_t shard) const {
  return static_cast<int>(shards_.at(shard).body.at("attempts").as_int());
}

std::string SurveyCheckpoint::serialize() const {
  std::ostringstream text;
  report::JsonlWriter writer{text};
  if (header_) {
    report::Json h = report::Json::object();
    h.set("type", "checkpoint_header");
    h.set("shards", report::Json::u64(header_->shards));
    h.set("targets", report::Json::u64(header_->targets));
    h.set("rounds", header_->rounds);
    h.set("seed", report::Json::u64(header_->seed));
    writer.write(h);
  }
  for (const auto& [shard, record] : shards_) {
    report::Json line = report::Json::object();
    line.set("type", "shard_done");
    line.set("shard", report::Json::u64(shard));
    line.set("crc", body_crc(record.body));
    line.set("body", record.body);
    writer.write(line);
  }
  return text.str();
}

void SurveyCheckpoint::save(const std::string& path) const {
  report::AtomicJsonlFile file{path};
  // Re-emit through the same writer so serialize() stays the single
  // source of the on-disk rendering (the torn-write tests slice it).
  for (report::Json& line : report::read_jsonl_text(serialize())) {
    file.writer().write(line);
  }
  file.commit();
}

SurveyCheckpoint SurveyCheckpoint::load(const std::string& path) {
  SurveyCheckpoint cp;
  report::RecoveredJsonl recovered = report::read_jsonl_file_prefix(path);
  cp.torn_ = recovered.dropped_lines;
  for (report::Json& line : recovered.records) {
    const report::Json* type = line.find("type");
    if (type == nullptr || !type->is_string()) {
      ++cp.torn_;
      continue;
    }
    if (type->as_string() == "checkpoint_header") {
      Header h;
      h.shards = static_cast<std::size_t>(line.at("shards").as_u64());
      h.targets = static_cast<std::size_t>(line.at("targets").as_u64());
      h.rounds = static_cast<int>(line.at("rounds").as_int());
      h.seed = line.at("seed").as_u64();
      cp.header_ = h;
      continue;
    }
    if (type->as_string() != "shard_done") {
      ++cp.torn_;
      continue;
    }
    const report::Json* crc = line.find("crc");
    const report::Json* body = line.find("body");
    if (crc == nullptr || body == nullptr || !crc->is_string() ||
        crc->as_string() != body_crc(*body)) {
      // A record that parsed but fails its checksum (or lost fields) is
      // corruption, not a schema: drop it and let the shard re-run.
      ++cp.torn_;
      continue;
    }
    cp.shards_[static_cast<std::size_t>(line.at("shard").as_u64())] = ShardRecord{*body};
  }
  return cp;
}

}  // namespace reorder::core
