#include "core/survey_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace reorder::core {

SurveyEngine::SurveyEngine(sim::EventLoop& loop, Options options)
    : loop_{loop}, options_{options} {
  sinks_.add(store_);
}

void SurveyEngine::add_sink(ResultSink& sink) {
  if (running()) {
    throw std::logic_error{"SurveyEngine: cannot attach sinks while a survey is running"};
  }
  sinks_.add(sink);
}

void SurveyEngine::add_target(const std::string& name, probe::ProbeHost& probe,
                              tcpip::Ipv4Address address, const std::vector<TestSpec>& tests) {
  std::vector<std::unique_ptr<ReorderTest>> built;
  built.reserve(tests.size());
  for (const auto& spec : tests) {
    built.push_back(TestRegistry::global().create(probe, address, spec));
  }
  add_target(name, std::move(built));
}

void SurveyEngine::add_target(std::string name, std::vector<std::unique_ptr<ReorderTest>> tests) {
  if (running()) {
    throw std::logic_error{"SurveyEngine: cannot add targets while a survey is running"};
  }
  auto target = std::make_unique<Target>();
  target->name = std::move(name);
  target->tests = std::move(tests);
  targets_.push_back(std::move(target));
}

void SurveyEngine::start(const TestRunConfig& config, int rounds,
                         util::Duration between_measurements, std::function<void()> on_complete) {
  if (running()) {
    throw std::logic_error{"SurveyEngine: survey already running"};
  }
  config_ = config;
  rounds_ = rounds;
  between_ = between_measurements;
  on_complete_ = std::move(on_complete);

  targets_in_flight_ = 0;
  for (auto& target : targets_) {
    target->next_test = 0;
    target->rounds_done = 0;
    if (rounds <= 0 || target->tests.empty()) continue;
    ++targets_in_flight_;
  }
  participants_ = targets_in_flight_;
  // Even an empty survey brackets its (empty) stream: sinks may key on
  // survey_end to know a capture is complete.
  sinks_.on_survey_begin(SurveyEvent{participants_, rounds_, measurements_.size(), loop_.now()});
  if (targets_in_flight_ == 0) {
    sinks_.on_survey_end(SurveyEvent{participants_, rounds_, measurements_.size(), loop_.now()});
    if (on_complete_) on_complete_();
    return;
  }
  // Kick every state machine off at the same instant; from here on each
  // target advances itself via completion callbacks.
  for (auto& target : targets_) {
    if (rounds <= 0 || target->tests.empty()) continue;
    Target* t = target.get();
    loop_.schedule(util::Duration::nanos(0), [this, t] { begin_next_measurement(*t); });
  }
}

void SurveyEngine::begin_next_measurement(Target& target) {
  if (target.rounds_done >= rounds_) {
    if (--targets_in_flight_ == 0) {
      sinks_.on_survey_end(SurveyEvent{participants_, rounds_, measurements_.size(), loop_.now()});
      if (on_complete_) on_complete_();
    }
    return;
  }
  const std::uint64_t generation = ++target.generation;
  target.measurement_open = true;
  const util::TimePoint at = loop_.now();
  target.deadline_at = at + options_.measurement_deadline;

  target.watchdog_token =
      loop_.schedule(options_.measurement_deadline, [this, &target, generation, at] {
        TestRunResult timeout;
        timeout.test_name = target.tests[target.next_test]->name();
        timeout.admissible = false;
        timeout.note = "measurement did not complete";
        finish_measurement(target, generation, at, std::move(timeout));
      });

  // Injected target timeout: the target "never answers" this measurement.
  // Probing the fault point here — after the watchdog is armed, before
  // the test would send a packet — means the measurement runs its full
  // deadline and is then recorded inadmissible by the watchdog, exactly
  // like a real unresponsive host, with zero probe traffic in flight.
  if (options_.faults != nullptr &&
      options_.faults->should_fire(
          "target/" + target.name + "/test/" + std::string{target.tests[target.next_test]->name()},
          util::FaultInjector::Mode::kTargetTimeout)) {
    return;
  }

  target.tests[target.next_test]->run(
      config_, [this, &target, generation, at](TestRunResult result) {
        finish_measurement(target, generation, at, std::move(result));
      });
}

void SurveyEngine::finish_measurement(Target& target, std::uint64_t generation,
                                      util::TimePoint at, TestRunResult result) {
  // A stale completion: the watchdog already gave up on this measurement
  // (or vice versa — whichever arrives second is dropped).
  if (!target.measurement_open || generation != target.generation) return;
  // Abandoned-run residue guard: past the give-up deadline only the
  // watchdog itself (which fires AT the deadline, never after) may close
  // the measurement. A completion arriving later must not publish late
  // per-sample events into the sinks — the due watchdog records the
  // timeout instead. Unreachable while the watchdog is armed (the loop
  // runs it first), but the sink contract must not depend on that.
  if (loop_.now() > target.deadline_at) return;
  target.measurement_open = false;
  loop_.cancel(target.watchdog_token);

  record(target, at, std::move(result));

  if (++target.next_test == target.tests.size()) {
    target.next_test = 0;
    ++target.rounds_done;
  }
  loop_.schedule(between_, [this, &target] { begin_next_measurement(target); });
}

void SurveyEngine::record(Target& target, util::TimePoint at, TestRunResult result) {
  Measurement m;
  m.target = target.name;
  m.test = target.tests[target.next_test]->name();
  m.at = at;
  m.result = std::move(result);
  // Stream the completed measurement out before the next one begins: the
  // store and every attached sink observe results in event-loop order,
  // mid-survey, not after the fact.
  publish_result(sinks_, m.target, m.test, m.at, m.result, measurements_.size());
  // The per-sample payload now lives columnar in the store (and in any
  // sink that kept it); unless a replay consumer asked for it, the
  // completion log retains only the summary so a long survey's dominant
  // data is not resident twice.
  if (!options_.retain_samples) {
    m.result.samples.clear();
    m.result.samples.shrink_to_fit();
  }
  measurements_.push_back(std::move(m));
}

std::vector<Measurement> SurveyEngine::release_measurements() {
  if (running()) {
    throw std::logic_error{"SurveyEngine: cannot release the log while a survey is running"};
  }
  return std::exchange(measurements_, {});
}

const std::vector<Measurement>& SurveyEngine::run(const TestRunConfig& config, int rounds,
                                                  util::Duration between_measurements) {
  bool done = false;
  start(config, rounds, between_measurements, [&done] { done = true; });
  // Generous outer bound: every measurement gets its full deadline plus
  // the pause, per target, per round.
  std::size_t max_tests = 0;
  for (const auto& t : targets_) max_tests = std::max(max_tests, t->tests.size());
  const util::Duration bound = (options_.measurement_deadline + between_measurements) *
                               static_cast<std::int64_t>(std::max(1, rounds) *
                                                         std::max<std::size_t>(1, max_tests));
  loop_.run_while(loop_.now() + bound + util::Duration::seconds(60), [&done] { return !done; });
  return measurements_;
}

}  // namespace reorder::core
