#include "core/single_connection_test.hpp"

#include <array>

#include "tcpip/seq.hpp"
#include "util/logging.hpp"

namespace reorder::core {

namespace {
bool is_pure_ack(const tcpip::Packet& pkt) {
  return pkt.tcp.is_ack() && !pkt.tcp.is_syn() && !pkt.tcp.is_fin() && !pkt.tcp.is_rst() &&
         pkt.payload.empty();
}
}  // namespace

SingleConnectionTest::SingleConnectionTest(probe::ProbeHost& host, tcpip::Ipv4Address target,
                                           std::uint16_t port, SingleConnectionOptions options)
    : host_{host}, target_{target}, port_{port}, options_{options} {}

std::string SingleConnectionTest::name() const {
  return options_.reversed_order ? "single-connection" : "single-connection-inorder";
}

/// Per-run state machine; kept alive by shared_ptr captures until done.
struct SingleConnectionTest::Run : std::enable_shared_from_this<SingleConnectionTest::Run> {
  enum class Phase { kConnect, kResync, kResyncSettle, kPrep, kPrepSettle, kMeasure, kDone };

  probe::ProbeHost& host;
  SingleConnectionOptions options;
  TestRunConfig config;
  std::function<void(TestRunResult)> done;
  std::unique_ptr<probe::ProbeConnection> conn;

  TestRunResult result;
  Phase phase{Phase::kConnect};
  int sample_index{0};
  std::uint32_t base{0};           ///< relative seq where the current hole sits
  std::uint32_t known_rcv_rel{0};  ///< highest ack (relative) seen from the remote

  // Current sample bookkeeping.
  SampleResult sample;
  struct AckSeen {
    std::uint32_t rel;  ///< 0 = hole dup-ack, 2 = mid, 3 = full, relative to base
    std::uint64_t uid;
  };
  std::vector<AckSeen> acks;

  std::uint64_t timer_token{0};
  std::uint64_t timer_generation{0};
  int aux_attempts{0};

  Run(probe::ProbeHost& h, SingleConnectionOptions o, TestRunConfig c,
      std::function<void(TestRunResult)> d)
      : host{h}, options{o}, config{c}, done{std::move(d)} {}

  tcpip::Environment& env() { return host.env(); }

  void arm_timer(util::Duration delay, std::function<void(std::uint64_t)> fn) {
    const std::uint64_t gen = ++timer_generation;
    timer_token = env().schedule(delay, [self = shared_from_this(), fn = std::move(fn), gen] {
      fn(gen);
    });
  }
  void cancel_timer() {
    if (timer_token != 0) env().cancel(timer_token);
    timer_token = 0;
    ++timer_generation;
  }

  void start(tcpip::Ipv4Address target, std::uint16_t port) {
    conn = std::make_unique<probe::ProbeConnection>(host, host.make_flow(target, port),
                                                    options.connection);
    conn->on_packet = [self = shared_from_this()](const tcpip::Packet& pkt) {
      self->on_packet(pkt);
    };
    conn->connect([self = shared_from_this()](bool ok) {
      if (!ok) {
        self->result.admissible = false;
        self->result.note = "connect failed";
        self->finish(/*graceful=*/false);
        return;
      }
      self->next_sample();
    });
  }

  // --- per-sample pipeline: resync -> settle -> prep -> settle -> measure ---

  void next_sample() {
    if (phase == Phase::kDone) return;
    if (sample_index >= config.samples) {
      finish(/*graceful=*/true);
      return;
    }
    begin_resync();
  }

  /// Makes sure the remote's receive point has reached `base` (re-sending
  /// any bytes lost in previous samples) before a new hole is prepared.
  void begin_resync() {
    phase = Phase::kResync;
    aux_attempts = 0;
    if (tcpip::seq_geq(known_rcv_rel, base)) {
      begin_settle(Phase::kResyncSettle);
      return;
    }
    send_resync();
  }

  void send_resync() {
    // Fill [known_rcv_rel, base) in one segment (tiny in practice).
    const std::uint32_t len = base - known_rcv_rel;
    std::vector<std::uint8_t> fill(len, 0x5a);
    conn->send_data_rel(known_rcv_rel, fill);
    arm_timer(options.aux_rto, [this](std::uint64_t gen) {
      if (gen != timer_generation || phase != Phase::kResync) return;
      if (++aux_attempts > options.max_aux_retries) {
        abandon("resync failed: remote unresponsive");
        return;
      }
      send_resync();
    });
  }

  void begin_settle(Phase which) {
    cancel_timer();
    phase = which;
    arm_timer(options.settle, [this, which](std::uint64_t gen) {
      if (gen != timer_generation || phase != which) return;
      if (which == Phase::kResyncSettle) {
        begin_prep();
      } else {
        begin_measure();
      }
    });
  }

  void begin_prep() {
    phase = Phase::kPrep;
    aux_attempts = 0;
    send_prep();
  }

  void send_prep() {
    const std::array<std::uint8_t, 1> one{0xa5};
    conn->send_data_rel(base + 1, one);
    arm_timer(options.aux_rto, [this](std::uint64_t gen) {
      if (gen != timer_generation || phase != Phase::kPrep) return;
      if (++aux_attempts > options.max_aux_retries) {
        abandon("prep failed: remote unresponsive");
        return;
      }
      send_prep();
    });
  }

  void begin_measure() {
    phase = Phase::kMeasure;
    acks.clear();
    sample = SampleResult{};
    sample.started = env().now();
    sample.gap = config.inter_packet_gap;

    const std::array<std::uint8_t, 1> low{0x01};
    const std::array<std::uint8_t, 1> high{0x03};
    auto first = options.reversed_order ? conn->build_data_rel(base + 2, high)
                                        : conn->build_data_rel(base, low);
    auto second = options.reversed_order ? conn->build_data_rel(base, low)
                                         : conn->build_data_rel(base + 2, high);
    first.uid = tcpip::next_packet_uid();
    second.uid = tcpip::next_packet_uid();
    sample.fwd_uid_first = first.uid;
    sample.fwd_uid_second = second.uid;
    conn->send_raw(std::move(first));
    if (config.inter_packet_gap.is_zero()) {
      conn->send_raw(std::move(second));
    } else {
      env().schedule(config.inter_packet_gap,
                     [self = shared_from_this(), pkt = std::move(second)]() mutable {
                       if (self->phase != Phase::kMeasure) return;
                       self->conn->send_raw(std::move(pkt));
                     });
    }
    arm_timer(config.sample_timeout, [this](std::uint64_t gen) {
      if (gen != timer_generation || phase != Phase::kMeasure) return;
      classify();
    });
  }

  void on_packet(const tcpip::Packet& pkt) {
    if (phase == Phase::kDone) return;
    if (pkt.tcp.is_rst()) {
      abandon("connection reset by remote");
      return;
    }
    if (!is_pure_ack(pkt)) return;
    const std::uint32_t ack_rel = pkt.tcp.ack - conn->snd_base();
    if (tcpip::seq_gt(ack_rel, known_rcv_rel)) known_rcv_rel = ack_rel;

    switch (phase) {
      case Phase::kResync:
        if (tcpip::seq_geq(ack_rel, base)) begin_settle(Phase::kResyncSettle);
        break;
      case Phase::kPrep:
        // The duplicate ACK for the hole acknowledges exactly `base`.
        if (ack_rel == base) begin_settle(Phase::kPrepSettle);
        break;
      case Phase::kMeasure: {
        const std::uint32_t off = ack_rel - base;
        if (off == 0 || off == 2 || off == 3) {
          acks.push_back(AckSeen{off, pkt.uid});
          if (acks.size() == 2) classify();
        }
        break;
      }
      default:
        break;  // settling or connecting: strays are deliberately ignored
    }
  }

  void classify() {
    cancel_timer();
    sample.completed = env().now();
    // Map the observed ACK pattern to verdicts. Offsets: 0 = hole dup-ack
    // ("ack 1" in the paper's figure), 2 = post-hole-fill ("ack 2"/"ack 3"),
    // 3 = everything ("ack 4").
    const auto pattern = [&]() -> std::pair<int, int> {
      if (acks.size() >= 2) return {static_cast<int>(acks[0].rel), static_cast<int>(acks[1].rel)};
      if (acks.size() == 1) return {static_cast<int>(acks[0].rel), -1};
      return {-1, -1};
    }();

    Ordering fwd = Ordering::kLost;
    Ordering rev = Ordering::kLost;
    const bool reversed = options.reversed_order;
    const int first = pattern.first;
    const int second = pattern.second;
    if (second >= 0) {
      // Both ACKs arrived; the pair (first, second) decides everything.
      const int in_order_first = reversed ? 0 : 2;
      if (first == in_order_first && second == 3) {
        fwd = Ordering::kInOrder;
        rev = Ordering::kInOrder;
      } else if (first == 3 && second == in_order_first) {
        fwd = Ordering::kInOrder;
        rev = Ordering::kReordered;
      } else {
        const int reordered_first = reversed ? 2 : 0;
        if (first == reordered_first && second == 3) {
          fwd = Ordering::kReordered;
          rev = Ordering::kInOrder;
        } else if (first == 3 && second == reordered_first) {
          fwd = Ordering::kReordered;
          rev = Ordering::kReordered;
        } else {
          fwd = Ordering::kAmbiguous;
          rev = Ordering::kAmbiguous;
        }
      }
    } else if (first == 3) {
      // Lone final ACK: delayed-ACK coalescing (in-order variant) or
      // forward reordering vs loss (reversed variant).
      if (reversed && options.lone_final_ack_is_reordered) {
        fwd = Ordering::kReordered;
      } else {
        fwd = Ordering::kAmbiguous;
      }
      rev = Ordering::kAmbiguous;
    } else if (first >= 0) {
      fwd = Ordering::kLost;
      rev = Ordering::kLost;
    }
    sample.forward = fwd;
    sample.reverse = rev;
    if (!acks.empty()) sample.rev_uid_first = acks[0].uid;
    if (acks.size() > 1) sample.rev_uid_second = acks[1].uid;

    result.samples.push_back(sample);
    ++sample_index;
    base += 3;
    phase = Phase::kResync;  // placeholder until the spacing timer fires
    arm_timer(config.sample_spacing, [this](std::uint64_t gen) {
      if (gen != timer_generation) return;
      next_sample();
    });
  }

  void abandon(const std::string& why) {
    if (phase == Phase::kDone) return;
    result.note = why;
    while (static_cast<int>(result.samples.size()) < config.samples) {
      SampleResult s;
      s.forward = Ordering::kLost;
      s.reverse = Ordering::kLost;
      result.samples.push_back(s);
    }
    finish(/*graceful=*/false);
  }

  void finish(bool graceful) {
    if (phase == Phase::kDone) return;
    phase = Phase::kDone;
    cancel_timer();
    result.aggregate();
    auto complete = [self = shared_from_this()] {
      auto cb = std::move(self->done);
      self->done = nullptr;
      if (cb) cb(std::move(self->result));
    };
    if (graceful && conn && conn->established()) {
      // Politely close at the byte the remote expects next.
      conn->close(base, complete);
    } else {
      if (conn) conn->abort();
      complete();
    }
  }
};

void SingleConnectionTest::run(const TestRunConfig& config,
                               std::function<void(TestRunResult)> done) {
  auto run = std::make_shared<Run>(host_, options_, config, std::move(done));
  run->result.test_name = name();
  run->start(target_, port_);
}

}  // namespace reorder::core
