#include "core/ground_truth.hpp"

#include "trace/analyzer.hpp"

namespace reorder::core {

TruthComparison compare_to_truth(const TestRunResult& result,
                                 const trace::TraceBuffer& remote_ingress,
                                 const trace::TraceBuffer& remote_egress) {
  TruthComparison c;
  for (const auto& s : result.samples) {
    if (s.forward == Ordering::kInOrder || s.forward == Ordering::kReordered) {
      const auto truth =
          trace::pair_ground_truth(remote_ingress, s.fwd_uid_first, s.fwd_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        const bool said = s.forward == Ordering::kReordered;
        const bool was = truth == trace::PairGroundTruth::kReordered;
        c.reported_fwd += said ? 1 : 0;
        c.actual_fwd += was ? 1 : 0;
        c.fwd_mismatches += said != was ? 1 : 0;
        ++c.verified_samples;
      }
    }
    if ((s.reverse == Ordering::kInOrder || s.reverse == Ordering::kReordered) &&
        s.rev_uid_first != 0 && s.rev_uid_second != 0) {
      const auto truth = trace::pair_ground_truth(remote_egress, s.rev_uid_first, s.rev_uid_second);
      if (truth != trace::PairGroundTruth::kIncomplete) {
        const bool said = s.reverse == Ordering::kReordered;
        const bool was = truth == trace::PairGroundTruth::kReordered;
        c.reported_rev += said ? 1 : 0;
        c.actual_rev += was ? 1 : 0;
        c.rev_mismatches += said != was ? 1 : 0;
        ++c.verified_samples;
      }
    }
  }
  return c;
}

}  // namespace reorder::core
