#include "probe/packet_factory.hpp"

namespace reorder::probe {

tcpip::Packet PacketFactory::base() const {
  tcpip::Packet pkt;
  pkt.ip.src = addr_.local;
  pkt.ip.dst = addr_.remote;
  pkt.ip.protocol = tcpip::IpProto::kTcp;
  pkt.ip.identification = 0;  // probe packets: IPID irrelevant to the tests
  pkt.tcp.src_port = addr_.local_port;
  pkt.tcp.dst_port = addr_.remote_port;
  return pkt;
}

tcpip::Packet PacketFactory::syn(std::uint32_t iss, std::uint16_t mss,
                                 std::uint16_t window) const {
  auto pkt = base();
  pkt.tcp.flags = tcpip::kSyn;
  pkt.tcp.seq = iss;
  pkt.tcp.window = window;
  pkt.tcp.mss = mss;
  return pkt;
}

tcpip::Packet PacketFactory::ack(std::uint32_t seq, std::uint32_t ack,
                                 std::uint16_t window) const {
  auto pkt = base();
  pkt.tcp.flags = tcpip::kAck;
  pkt.tcp.seq = seq;
  pkt.tcp.ack = ack;
  pkt.tcp.window = window;
  return pkt;
}

tcpip::Packet PacketFactory::data(std::uint32_t seq, std::uint32_t ack, std::uint16_t window,
                                  std::span<const std::uint8_t> payload) const {
  auto pkt = base();
  pkt.tcp.flags = tcpip::kAck | tcpip::kPsh;
  pkt.tcp.seq = seq;
  pkt.tcp.ack = ack;
  pkt.tcp.window = window;
  pkt.payload.assign(payload.begin(), payload.end());
  return pkt;
}

tcpip::Packet PacketFactory::fin(std::uint32_t seq, std::uint32_t ack,
                                 std::uint16_t window) const {
  auto pkt = base();
  pkt.tcp.flags = tcpip::kFin | tcpip::kAck;
  pkt.tcp.seq = seq;
  pkt.tcp.ack = ack;
  pkt.tcp.window = window;
  return pkt;
}

tcpip::Packet PacketFactory::rst(std::uint32_t seq) const {
  auto pkt = base();
  pkt.tcp.flags = tcpip::kRst;
  pkt.tcp.seq = seq;
  pkt.tcp.window = 0;
  return pkt;
}

}  // namespace reorder::probe
