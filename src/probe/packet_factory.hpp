// Crafting helpers for probe packets. Every measurement packet in the
// library is built here, so segment shapes (flags, options, windows) are
// consistent across tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tcpip/packet.hpp"

namespace reorder::probe {

/// The four-tuple a probe flow operates on, from the probe's perspective.
struct FlowAddr {
  tcpip::Ipv4Address local;
  std::uint16_t local_port{0};
  tcpip::Ipv4Address remote;
  std::uint16_t remote_port{0};

  friend auto operator<=>(const FlowAddr&, const FlowAddr&) = default;

  /// True iff `pkt` is addressed to this flow (remote -> local direction).
  bool matches_incoming(const tcpip::Packet& pkt) const {
    return pkt.ip.src == remote && pkt.ip.dst == local && pkt.tcp.src_port == remote_port &&
           pkt.tcp.dst_port == local_port;
  }
};

/// Builds outgoing segments for a flow.
class PacketFactory {
 public:
  explicit PacketFactory(FlowAddr addr) : addr_{addr} {}

  const FlowAddr& addr() const { return addr_; }

  /// A SYN with initial sequence number `iss`, advertising `mss`/`window`.
  tcpip::Packet syn(std::uint32_t iss, std::uint16_t mss, std::uint16_t window) const;

  /// A pure ACK.
  tcpip::Packet ack(std::uint32_t seq, std::uint32_t ack, std::uint16_t window) const;

  /// A data segment (PSH|ACK) carrying `payload`.
  tcpip::Packet data(std::uint32_t seq, std::uint32_t ack, std::uint16_t window,
                     std::span<const std::uint8_t> payload) const;

  /// A FIN|ACK.
  tcpip::Packet fin(std::uint32_t seq, std::uint32_t ack, std::uint16_t window) const;

  /// An RST.
  tcpip::Packet rst(std::uint32_t seq) const;

 private:
  tcpip::Packet base() const;
  FlowAddr addr_;
};

}  // namespace reorder::probe
