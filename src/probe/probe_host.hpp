// The measurement process on the probe machine: owns the raw socket,
// allocates ephemeral ports, and demultiplexes incoming packets to
// registered flows — the user-level equivalent of sting's packet filter.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "probe/packet_factory.hpp"
#include "probe/raw_socket.hpp"
#include "tcpip/env.hpp"

namespace reorder::probe {

class ProbeHost {
 public:
  ProbeHost(tcpip::Environment& env, RawSocket& socket, std::uint16_t first_ephemeral = 40000);

  ProbeHost(const ProbeHost&) = delete;
  ProbeHost& operator=(const ProbeHost&) = delete;

  tcpip::Environment& env() { return env_; }
  RawSocket& socket() { return socket_; }
  tcpip::Ipv4Address address() const { return socket_.local_address(); }

  /// Builds a flow address toward `remote:port` on a fresh local port.
  FlowAddr make_flow(tcpip::Ipv4Address remote, std::uint16_t remote_port);

  using Handler = std::function<void(const tcpip::Packet&)>;

  /// Routes incoming packets matching `addr` to `handler`. One handler per
  /// flow; re-registering replaces it.
  void register_flow(const FlowAddr& addr, Handler handler);
  void unregister_flow(const FlowAddr& addr);

  /// Packets that match no registered flow (e.g. stray RSTs).
  Handler unmatched_handler;

  /// All incoming ICMP traffic (echo replies for the ping-burst baseline).
  Handler icmp_handler;

  void send(tcpip::Packet pkt) { socket_.send(std::move(pkt)); }

  std::size_t registered_flows() const { return flows_.size(); }

 private:
  void on_receive(const tcpip::Packet& pkt);

  struct FlowKey {
    std::uint32_t remote_addr;
    std::uint16_t remote_port;
    std::uint16_t local_port;
    friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
  };
  static FlowKey key_of(const FlowAddr& addr) {
    return FlowKey{addr.remote.value(), addr.remote_port, addr.local_port};
  }

  tcpip::Environment& env_;
  RawSocket& socket_;
  std::uint16_t next_port_;
  std::map<FlowKey, Handler> flows_;
};

}  // namespace reorder::probe
