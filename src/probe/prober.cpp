#include "probe/prober.hpp"

#include "tcpip/seq.hpp"
#include "util/logging.hpp"

namespace reorder::probe {

ProbeConnection::ProbeConnection(ProbeHost& host, FlowAddr addr, ProbeConnectionOptions options)
    : host_{host}, addr_{addr}, factory_{addr}, options_{options} {
  host_.register_flow(addr_, [this](const tcpip::Packet& pkt) { handle(pkt); });
}

ProbeConnection::~ProbeConnection() {
  if (timer_token_ != 0) host_.env().cancel(timer_token_);
  host_.unregister_flow(addr_);
}

void ProbeConnection::connect(std::function<void(bool)> done) {
  connect_done_ = std::move(done);
  state_ = State::kSynSent;
  send_syn();
  const std::uint64_t gen = ++timer_generation_;
  timer_token_ = host_.env().schedule(options_.syn_rto, [this, gen] { syn_rto_fire(gen, 1); });
}

void ProbeConnection::send_syn() {
  host_.send(factory_.syn(options_.iss, options_.advertised_mss, options_.advertised_window));
}

void ProbeConnection::syn_rto_fire(std::uint64_t generation, int attempt) {
  if (generation != timer_generation_ || state_ != State::kSynSent) return;
  if (attempt > options_.max_syn_retries) {
    state_ = State::kClosed;
    if (connect_done_) {
      auto cb = std::move(connect_done_);
      connect_done_ = nullptr;
      cb(false);
    }
    return;
  }
  send_syn();
  const std::uint64_t gen = ++timer_generation_;
  timer_token_ =
      host_.env().schedule(options_.syn_rto * 2, [this, gen, attempt] { syn_rto_fire(gen, attempt + 1); });
}

void ProbeConnection::handle(const tcpip::Packet& pkt) {
  switch (state_) {
    case State::kSynSent:
      if (pkt.tcp.is_rst()) {
        state_ = State::kClosed;
        if (connect_done_) {
          auto cb = std::move(connect_done_);
          connect_done_ = nullptr;
          cb(false);
        }
        return;
      }
      if (pkt.tcp.is_syn() && pkt.tcp.is_ack() && pkt.tcp.ack == options_.iss + 1) {
        irs_ = pkt.tcp.seq;
        established_ = true;
        state_ = State::kEstablished;
        ++timer_generation_;  // cancels pending SYN retries
        host_.env().cancel(timer_token_);
        timer_token_ = 0;
        send_ack_abs(rcv_base());
        if (connect_done_) {
          auto cb = std::move(connect_done_);
          connect_done_ = nullptr;
          cb(true);
        }
        return;
      }
      return;  // stray packet during handshake
    case State::kEstablished:
    case State::kFinSent:
      break;
    case State::kIdle:
    case State::kClosed:
      return;
  }

  if (pkt.tcp.is_rst()) {
    state_ = State::kClosed;
    if (on_packet) on_packet(pkt);
    return;
  }

  // Close bookkeeping (runs before the measurement hook so tests can also
  // observe FIN/ACK traffic if they want to).
  if (state_ == State::kFinSent) {
    if (pkt.tcp.is_ack() && tcpip::seq_geq(pkt.tcp.ack, fin_seq_abs_ + 1)) our_fin_acked_ = true;
    if (pkt.tcp.is_fin() && !remote_fin_seen_) {
      remote_fin_seen_ = true;
      const std::uint32_t fin_at = pkt.tcp.seq + static_cast<std::uint32_t>(pkt.payload.size());
      send_ack_abs(fin_at + 1);
    }
    if (our_fin_acked_ && remote_fin_seen_) {
      state_ = State::kClosed;
      ++timer_generation_;
      if (timer_token_ != 0) {
        host_.env().cancel(timer_token_);
        timer_token_ = 0;
      }
      if (close_done_) {
        auto cb = std::move(close_done_);
        close_done_ = nullptr;
        cb();
      }
    }
  }

  if (on_packet) on_packet(pkt);
}

tcpip::Packet ProbeConnection::build_data_rel(std::uint32_t rel_seq,
                                              std::span<const std::uint8_t> payload) const {
  return factory_.data(snd_base() + rel_seq, rcv_base(), options_.advertised_window, payload);
}

void ProbeConnection::send_data_rel(std::uint32_t rel_seq, std::span<const std::uint8_t> payload) {
  host_.send(build_data_rel(rel_seq, payload));
}

void ProbeConnection::send_ack_abs(std::uint32_t ack_abs) {
  host_.send(factory_.ack(established_ ? options_.iss + 1 : options_.iss, ack_abs,
                          options_.advertised_window));
}

void ProbeConnection::close(std::uint32_t rel_seq, std::function<void()> done) {
  if (state_ != State::kEstablished) {
    if (done) done();
    return;
  }
  close_done_ = std::move(done);
  state_ = State::kFinSent;
  fin_seq_abs_ = snd_base() + rel_seq;
  host_.send(factory_.fin(fin_seq_abs_, rcv_base(), options_.advertised_window));
  // Close timeout: give up after a generous interval and report done anyway
  // (the measurement is already finished by this point).
  const std::uint64_t gen = ++timer_generation_;
  timer_token_ = host_.env().schedule(util::Duration::seconds(5), [this, gen] {
    if (gen != timer_generation_ || state_ != State::kFinSent) return;
    state_ = State::kClosed;
    timer_token_ = 0;
    if (close_done_) {
      auto cb = std::move(close_done_);
      close_done_ = nullptr;
      cb();
    }
  });
}

void ProbeConnection::abort() {
  if (state_ == State::kClosed) return;
  // RST with our current send sequence; enough for the simulated stacks.
  host_.send(factory_.rst(established_ ? snd_base() : options_.iss));
  state_ = State::kClosed;
}

}  // namespace reorder::probe
