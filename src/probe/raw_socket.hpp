// The probe's packet access primitive. The paper implements its tests on
// top of sting's BPF/firewall trick: a user-level process that can send
// and receive arbitrary TCP segments without the kernel stack interfering.
// RawSocket is that capability as an interface; SimRawSocket binds it to
// the simulator. A real libpcap/raw-socket implementation would slot in
// behind the same interface.
#pragma once

#include <cstdint>
#include <functional>

#include "tcpip/env.hpp"
#include "tcpip/packet.hpp"

namespace reorder::probe {

/// Send/receive arbitrary IPv4/TCP packets as the probe host.
class RawSocket {
 public:
  virtual ~RawSocket() = default;

  /// Transmits one crafted packet toward the network.
  virtual void send(tcpip::Packet pkt) = 0;

  /// The probe host's address (source of crafted packets).
  virtual tcpip::Ipv4Address local_address() const = 0;

  /// Installs the ingress handler; every packet addressed to the probe
  /// host is delivered here. Only one handler (the ProbeHost demux).
  void set_receive_handler(std::function<void(const tcpip::Packet&)> handler) {
    handler_ = std::move(handler);
  }

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_received() const { return received_; }

 protected:
  void dispatch(const tcpip::Packet& pkt) {
    ++received_;
    if (handler_) handler_(pkt);
  }
  std::uint64_t sent_{0};

 private:
  std::function<void(const tcpip::Packet&)> handler_;
  std::uint64_t received_{0};
};

/// RawSocket bound to a simulated network. Wire the egress with
/// set_transmit() (typically a Path entry) and feed the reverse path's
/// terminal sink into deliver().
class SimRawSocket final : public RawSocket {
 public:
  SimRawSocket(tcpip::Environment& env, tcpip::Ipv4Address local) : env_{env}, local_{local} {}

  void set_transmit(std::function<void(tcpip::Packet)> transmit) {
    transmit_ = std::move(transmit);
  }

  void send(tcpip::Packet pkt) override {
    // Callers may pre-assign a uid (measurement code records the uids of
    // its sample packets for ground-truth validation).
    if (pkt.uid == 0) pkt.uid = tcpip::next_packet_uid();
    pkt.first_sent = env_.now();
    ++sent_;
    if (transmit_) transmit_(std::move(pkt));
  }

  tcpip::Ipv4Address local_address() const override { return local_; }

  /// Network-side ingress: packets arriving at the probe host. The packet
  /// dies here (handlers see it by const ref); its payload buffer goes
  /// back to the pool.
  void deliver(tcpip::Packet pkt) {
    if (pkt.ip.dst != local_) return;
    dispatch(pkt);
    tcpip::recycle(std::move(pkt));
  }

 private:
  tcpip::Environment& env_;
  tcpip::Ipv4Address local_;
  std::function<void(tcpip::Packet)> transmit_;
};

}  // namespace reorder::probe
