// A user-level TCP connection crafted packet-by-packet — the substrate the
// single-connection, dual-connection and data-transfer tests build on.
// Unlike a kernel socket, the owner has full control over every sequence
// number sent, which is exactly what the measurement techniques need
// (deliberate holes, straddling samples, acknowledging past losses).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "probe/packet_factory.hpp"
#include "probe/probe_host.hpp"
#include "util/time.hpp"

namespace reorder::probe {

struct ProbeConnectionOptions {
  std::uint32_t iss{100'000};
  std::uint16_t advertised_mss{1460};
  std::uint16_t advertised_window{65535};
  util::Duration syn_rto{util::Duration::millis(250)};
  int max_syn_retries{6};
};

/// One probe-side TCP connection. connect() performs the three-way
/// handshake (with SYN retransmission); after establishment the owner
/// sends arbitrary segments via the helpers and observes every incoming
/// packet through `on_packet`.
class ProbeConnection {
 public:
  ProbeConnection(ProbeHost& host, FlowAddr addr, ProbeConnectionOptions options);
  ~ProbeConnection();

  ProbeConnection(const ProbeConnection&) = delete;
  ProbeConnection& operator=(const ProbeConnection&) = delete;

  /// Starts the handshake; `done(true)` once established, `done(false)` on
  /// RST or SYN-retry exhaustion.
  void connect(std::function<void(bool)> done);

  /// Graceful close: sends FIN at relative sequence `rel_seq` (the byte
  /// offset the remote expects next), then acknowledges the remote's FIN.
  /// `done` fires when both directions are closed or the close times out.
  void close(std::uint32_t rel_seq, std::function<void()> done);

  /// Abortive close (RST). Used for cleanup when graceful close is not
  /// worth the round trips.
  void abort();

  // --- established-state accessors ---
  bool established() const { return established_; }
  std::uint32_t iss() const { return options_.iss; }
  /// Remote initial sequence number (valid once established).
  std::uint32_t irs() const { return irs_; }
  /// Absolute sequence of our first data byte (iss + 1).
  std::uint32_t snd_base() const { return options_.iss + 1; }
  /// Absolute sequence of the remote's first data byte (irs + 1).
  std::uint32_t rcv_base() const { return irs_ + 1; }

  /// Every packet arriving on this flow, delivered after internal
  /// handshake processing. The hook point for measurement logic.
  std::function<void(const tcpip::Packet&)> on_packet;

  // --- crafted sends (all sequence numbers relative to snd_base()) ---
  /// Builds a 1-byte (or larger) data segment at relative offset
  /// `rel_seq`; acknowledges rcv_base() so the remote sees a live ACK.
  tcpip::Packet build_data_rel(std::uint32_t rel_seq, std::span<const std::uint8_t> payload) const;
  void send_data_rel(std::uint32_t rel_seq, std::span<const std::uint8_t> payload);

  /// Sends a pure ACK with an absolute acknowledgment number.
  void send_ack_abs(std::uint32_t ack_abs);

  void send_raw(tcpip::Packet pkt) { host_.send(std::move(pkt)); }

  const FlowAddr& addr() const { return addr_; }
  const PacketFactory& factory() const { return factory_; }
  ProbeHost& host() { return host_; }

 private:
  void handle(const tcpip::Packet& pkt);
  void send_syn();
  void syn_rto_fire(std::uint64_t generation, int attempt);

  enum class State { kIdle, kSynSent, kEstablished, kFinSent, kClosed };

  ProbeHost& host_;
  FlowAddr addr_;
  PacketFactory factory_;
  ProbeConnectionOptions options_;

  State state_{State::kIdle};
  bool established_{false};
  std::uint32_t irs_{0};
  std::uint32_t fin_seq_abs_{0};
  bool remote_fin_seen_{false};
  bool our_fin_acked_{false};

  std::function<void(bool)> connect_done_;
  std::function<void()> close_done_;
  std::uint64_t timer_token_{0};
  std::uint64_t timer_generation_{0};
};

}  // namespace reorder::probe
