#include "probe/probe_host.hpp"

namespace reorder::probe {

ProbeHost::ProbeHost(tcpip::Environment& env, RawSocket& socket, std::uint16_t first_ephemeral)
    : env_{env}, socket_{socket}, next_port_{first_ephemeral} {
  socket_.set_receive_handler([this](const tcpip::Packet& pkt) { on_receive(pkt); });
}

FlowAddr ProbeHost::make_flow(tcpip::Ipv4Address remote, std::uint16_t remote_port) {
  FlowAddr addr;
  addr.local = socket_.local_address();
  addr.local_port = next_port_++;
  if (next_port_ == 0) next_port_ = 40000;  // wrapped the ephemeral range
  addr.remote = remote;
  addr.remote_port = remote_port;
  return addr;
}

void ProbeHost::register_flow(const FlowAddr& addr, Handler handler) {
  flows_[key_of(addr)] = std::move(handler);
}

void ProbeHost::unregister_flow(const FlowAddr& addr) { flows_.erase(key_of(addr)); }

void ProbeHost::on_receive(const tcpip::Packet& pkt) {
  if (pkt.is_icmp()) {
    if (icmp_handler) icmp_handler(pkt);
    return;
  }
  const FlowKey key{pkt.ip.src.value(), pkt.tcp.src_port, pkt.tcp.dst_port};
  const auto it = flows_.find(key);
  if (it != flows_.end()) {
    // Copy the handler: it may unregister (and destroy) itself mid-call.
    auto handler = it->second;
    handler(pkt);
    return;
  }
  if (unmatched_handler) unmatched_handler(pkt);
}

}  // namespace reorder::probe
