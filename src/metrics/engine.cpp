#include "metrics/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/pair_metrics.hpp"
#include "metrics/restore.hpp"

namespace reorder::metrics {

MetricSuite default_suite(std::string_view target, std::string_view test) {
  (void)target;
  (void)test;
  MetricSuite suite;
  suite.add(std::make_unique<PairRateMetric>())
      .add(std::make_unique<RateSeriesMetric>())
      .add(std::make_unique<TimeDomainMetric>())
      .add(std::make_unique<RateEcdfMetric>())
      .add(std::make_unique<LateTimeMetric>());
  return suite;
}

MetricEngine::Entry& MetricEngine::entry(std::string_view target, std::string_view test) {
  const auto it = index_.find(std::make_pair(std::string{target}, std::string{test}));
  if (it != index_.end()) return entries_[it->second];
  Entry e;
  e.target = std::string{target};
  e.test = std::string{test};
  e.suite = factory_(target, test);
  entries_.push_back(std::move(e));
  index_.emplace(std::make_pair(entries_.back().target, entries_.back().test),
                 entries_.size() - 1);
  return entries_.back();
}

const MetricEngine::Entry* MetricEngine::find(const std::string& target,
                                              const std::string& test) const {
  const auto it = index_.find(std::make_pair(target, test));
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void MetricEngine::observe_measurement(const core::MeasurementEvent& e) {
  Entry& en = entry(e.target, e.test);
  ++en.measurements;
  if (!e.result.admissible) return;
  ++en.admissible;
  // Replay the measurement's samples (the queries' per-sample data is
  // gated on the measurement being admissible, known only now). Each
  // usable forward verdict is also fed as the degenerate length-2
  // arrival sequence, so sequence metrics plugged in via the suite
  // factory accumulate from pair streams too (closed per sample — the
  // boundary the mergeability contract needs).
  for (std::size_t i = 0; i < e.result.samples.size(); ++i) {
    const core::SampleResult& sample = e.result.samples[i];
    en.suite.observe(
        core::SampleEvent{e.target, e.test, e.measurement_index, i, e.at, sample});
    if (sample.forward == core::Ordering::kInOrder) {
      en.suite.observe_arrival(0);
      en.suite.observe_arrival(1);
      en.suite.end_sequence();
    } else if (sample.forward == core::Ordering::kReordered) {
      en.suite.observe_arrival(1);
      en.suite.observe_arrival(0);
      en.suite.end_sequence();
    }
  }
  en.suite.observe_measurement(e);
}

std::vector<std::pair<std::string, std::string>> MetricEngine::keys() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.emplace_back(e.target, e.test);
  return out;
}

const MetricSuite* MetricEngine::suite(const std::string& target, const std::string& test) const {
  const Entry* e = find(target, test);
  return e == nullptr ? nullptr : &e->suite;
}

std::uint64_t MetricEngine::measurements(const std::string& target,
                                         const std::string& test) const {
  const Entry* e = find(target, test);
  return e == nullptr ? 0 : e->measurements;
}

std::uint64_t MetricEngine::admissible_measurements(const std::string& target,
                                                    const std::string& test) const {
  const Entry* e = find(target, test);
  return e == nullptr ? 0 : e->admissible;
}

core::ReorderEstimate MetricEngine::aggregate(const std::string& target, const std::string& test,
                                              bool forward) const {
  const Entry* e = find(target, test);
  if (e == nullptr) return {};
  const auto* rates = e->suite.get<PairRateMetric>(PairRateMetric::kName);
  if (rates == nullptr) return {};
  return forward ? rates->forward() : rates->reverse();
}

std::vector<double> MetricEngine::rate_series(const std::string& target, const std::string& test,
                                              bool forward) const {
  const Entry* e = find(target, test);
  if (e == nullptr) return {};
  const auto* series = e->suite.get<RateSeriesMetric>(RateSeriesMetric::kName);
  if (series == nullptr) return {};
  return forward ? series->forward() : series->reverse();
}

core::TimeDomainProfile MetricEngine::time_domain(const std::string& target,
                                                  const std::string& test) const {
  const Entry* e = find(target, test);
  if (e == nullptr) return {};
  const auto* td = e->suite.get<TimeDomainMetric>(TimeDomainMetric::kName);
  if (td == nullptr) return {};
  return td->profile();
}

stats::PairDifferenceResult MetricEngine::compare(const std::string& target,
                                                  const std::string& test_a,
                                                  const std::string& test_b, bool forward,
                                                  double confidence) const {
  auto a = rate_series(target, test_a, forward);
  auto b = rate_series(target, test_b, forward);
  const std::size_t n = std::min(a.size(), b.size());
  a.resize(n);
  b.resize(n);
  return stats::pair_difference_test(a, b, confidence);
}

void MetricEngine::merge(const MetricEngine& other) {
  for (const Entry& theirs : other.entries_) {
    const auto it = index_.find(std::make_pair(theirs.target, theirs.test));
    if (it == index_.end()) {
      Entry copy;
      copy.target = theirs.target;
      copy.test = theirs.test;
      copy.suite = theirs.suite.snapshot();
      copy.measurements = theirs.measurements;
      copy.admissible = theirs.admissible;
      entries_.push_back(std::move(copy));
      index_.emplace(std::make_pair(entries_.back().target, entries_.back().test),
                     entries_.size() - 1);
      continue;
    }
    Entry& mine = entries_[it->second];
    mine.suite.merge(theirs.suite);
    mine.measurements += theirs.measurements;
    mine.admissible += theirs.admissible;
  }
}

report::Json MetricEngine::to_json() const {
  report::Json j = report::Json::object();
  for (const auto& e : entries_) {
    report::Json entry = report::Json::object();
    entry.set("measurements", e.measurements);
    entry.set("admissible", e.admissible);
    entry.set("metrics", e.suite.to_json());
    j.set(e.target + "/" + e.test, std::move(entry));
  }
  return j;
}

void MetricEngine::emit_jsonl(report::JsonlWriter& out, EmitOrder order) const {
  std::vector<const Entry*> emitted;
  emitted.reserve(entries_.size());
  if (order == EmitOrder::kCanonical) {
    // index_ is a map over (target, test) — already the canonical order.
    for (const auto& [key, slot] : index_) emitted.push_back(&entries_[slot]);
  } else {
    for (const auto& e : entries_) emitted.push_back(&e);
  }
  for (const Entry* e : emitted) {
    report::Json record = report::Json::object();
    record.set("type", "metrics");
    record.set("target", e->target);
    record.set("test", e->test);
    record.set("measurements", e->measurements);
    record.set("admissible", e->admissible);
    record.set("metrics", e->suite.to_json());
    out.write(record);
  }
}

void MetricEngine::restore_record(const report::Json& record) {
  const std::string& target = record.at("target").as_string();
  const std::string& test = record.at("test").as_string();
  if (index_.find(std::make_pair(target, test)) != index_.end()) {
    throw std::invalid_argument{"MetricEngine::restore_record: duplicate key " + target + "/" +
                                test};
  }
  Entry e;
  e.target = target;
  e.test = test;
  e.suite = suite_from_json(record.at("metrics"));
  e.measurements = record.at("measurements").as_u64();
  e.admissible = record.at("admissible").as_u64();
  entries_.push_back(std::move(e));
  index_.emplace(std::make_pair(entries_.back().target, entries_.back().test),
                 entries_.size() - 1);
}

}  // namespace reorder::metrics
