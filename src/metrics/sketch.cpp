#include "metrics/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace reorder::metrics {

std::size_t TailSketch::bucket_index(std::uint64_t value) {
  // Values below kSubBuckets get one bucket each (exact); above that,
  // each power-of-two range contributes kSubBuckets linear sub-buckets.
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int magnitude = std::bit_width(value) - 1;  // >= 5
  const int sub_shift = magnitude - 5;              // kSubBuckets == 2^5
  const std::uint64_t sub = (value >> sub_shift) - kSubBuckets;  // [0, kSubBuckets)
  return kSubBuckets + static_cast<std::size_t>(magnitude - 5) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

std::uint64_t TailSketch::bucket_floor(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t band = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  return (kSubBuckets + sub) << band;
}

void TailSketch::add(std::uint64_t value) {
  const std::size_t i = bucket_index(value);
  if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
  ++buckets_[i];
  if (count_ == 0 || value < min_) min_ = value;
  max_ = std::max(max_, value);
  sum_ += value;
  ++count_;
}

double TailSketch::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t TailSketch::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count), with rank clamped to [1, count].
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_floor(i);
  }
  return bucket_floor(buckets_.empty() ? 0 : buckets_.size() - 1);
}

void TailSketch::merge(const TailSketch& other) {
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

report::Json TailSketch::to_json() const {
  report::Json j = report::Json::object();
  j.set("count", count_);
  j.set("min", min());
  j.set("max", max_);
  j.set("mean", mean());
  j.set("p50", quantile(0.50));
  j.set("p90", quantile(0.90));
  j.set("p99", quantile(0.99));
  j.set("sum", report::Json::u64(sum_));
  report::Json buckets = report::Json::array();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    report::Json pair = report::Json::array();
    pair.push(static_cast<std::uint64_t>(i));
    pair.push(report::Json::u64(buckets_[i]));
    buckets.push(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

void TailSketch::from_json(const report::Json& j) {
  TailSketch restored;
  restored.count_ = j.at("count").as_u64();
  restored.sum_ = j.at("sum").as_u64();
  restored.max_ = j.at("max").as_u64();
  restored.min_ = restored.count_ == 0 ? 0 : j.at("min").as_u64();
  for (const auto& pair : j.at("buckets").items()) {
    const auto index = static_cast<std::size_t>(pair.at(0).as_u64());
    if (index >= restored.buckets_.size()) restored.buckets_.resize(index + 1, 0);
    restored.buckets_[index] = pair.at(1).as_u64();
  }
  *this = std::move(restored);
}

}  // namespace reorder::metrics
