// The streaming metrics engine: one MetricSuite per (target, test),
// fed from the ResultSink event stream, queried through snapshots, and
// exactly mergeable across shards.
//
// Admissibility gating: the session-era queries only count samples of
// admissible measurements, but a sample event streams BEFORE its
// enclosing measurement's admissibility is known. The engine therefore
// consumes the measurement event (whose TestRunResult still carries the
// full sample vector during the callback): it replays the samples of
// admissible measurements into the suite and drops inadmissible ones —
// still one pass over every sample, with nothing staged across events.
//
// Sharding: run one engine per shard (per thread, per machine), then
// MetricEngine::merge the snapshots — per-key suites combine member-wise
// and the result is bit-identical to one engine having seen the whole
// stream (the mergeability contract in metric.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/result_sink.hpp"
#include "metrics/metric.hpp"
#include "report/jsonl.hpp"
#include "stats/pair_difference.hpp"

namespace reorder::metrics {

/// Builds the metric suite a fresh (target, test) key starts with — the
/// pluggability point: swap the factory to attach custom metrics.
using SuiteFactory = std::function<MetricSuite(std::string_view target, std::string_view test)>;

/// The standard suite: pair_rate, rate_series, time_domain, rate_ecdf,
/// late_time.
MetricSuite default_suite(std::string_view target, std::string_view test);

class MetricEngine {
 public:
  MetricEngine() : MetricEngine{&default_suite} {}
  explicit MetricEngine(SuiteFactory factory) : factory_{std::move(factory)} {}

  MetricEngine(MetricEngine&&) = default;
  MetricEngine& operator=(MetricEngine&&) = default;

  // ------------------------------------------------------ event intake
  /// Folds one completed measurement (and, when admissible, its samples)
  /// into the (target, test) suite.
  void observe_measurement(const core::MeasurementEvent& e);

  // ------------------------------------------------------------- shape
  std::size_t key_count() const { return entries_.size(); }
  /// (target, test) keys in first-seen order.
  std::vector<std::pair<std::string, std::string>> keys() const;
  /// The suite accumulated for (target, test), or nullptr.
  const MetricSuite* suite(const std::string& target, const std::string& test) const;
  std::uint64_t measurements(const std::string& target, const std::string& test) const;
  std::uint64_t admissible_measurements(const std::string& target,
                                        const std::string& test) const;

  // ------------------------------------------- session-era query shims
  // Snapshot reads of the standard suite's metrics; empty defaults when
  // the key or metric is absent (matching the old store semantics).
  core::ReorderEstimate aggregate(const std::string& target, const std::string& test,
                                  bool forward) const;
  std::vector<double> rate_series(const std::string& target, const std::string& test,
                                  bool forward) const;
  core::TimeDomainProfile time_domain(const std::string& target, const std::string& test) const;
  /// Paired comparison of two tests on one target over the engine's rate
  /// series (truncated to the shorter; needs >= 2 pairs).
  stats::PairDifferenceResult compare(const std::string& target, const std::string& test_a,
                                      const std::string& test_b, bool forward,
                                      double confidence = 0.999) const;

  // -------------------------------------------------------- merge/emit
  /// Folds another engine's accumulators into this one. Keys present on
  /// both sides merge suite-wise (compositions must match); keys unique
  /// to `other` are deep-copied in.
  void merge(const MetricEngine& other);

  /// {"<target>/<test>": {"measurements":..,"admissible":..,
  ///   "metrics": <suite.to_json()>}, ...} in first-seen order.
  report::Json to_json() const;

  /// Key emission order. First-seen order is the live-stream convention;
  /// the canonical order — (target, test) lexicographic — is a pure
  /// function of the key set, so two engines that accumulated the same
  /// per-key data through DIFFERENT merge histories (one shard vs many)
  /// emit byte-identical records.
  enum class EmitOrder { kFirstSeen, kCanonical };

  /// One JSONL record per key, the `metrics` record type:
  ///   {"type":"metrics","target":..,"test":..,"measurements":..,
  ///    "admissible":..,"metrics":{...}}
  void emit_jsonl(report::JsonlWriter& out, EmitOrder order = EmitOrder::kFirstSeen) const;

  /// Rebuilds one (target, test) entry from an emit_jsonl `metrics`
  /// record (suite restored via metrics::suite_from_json, bypassing the
  /// factory). The checkpoint/resume and reorder-merge ingestion point.
  /// Throws std::invalid_argument when the key is already present — a
  /// record stream with duplicates should be merged engine-wise instead.
  void restore_record(const report::Json& record);

 private:
  struct Entry {
    std::string target;
    std::string test;
    MetricSuite suite;
    std::uint64_t measurements{0};
    std::uint64_t admissible{0};
  };

  Entry& entry(std::string_view target, std::string_view test);
  const Entry* find(const std::string& target, const std::string& test) const;

  SuiteFactory factory_;
  std::vector<Entry> entries_;  // first-seen order
  std::map<std::pair<std::string, std::string>, std::size_t, std::less<>> index_;
};

/// The ResultSink adapter: attach to a SurveyEngine / run_scenario (or
/// feed via publish_result) to stream every event into an engine.
class EngineSink final : public core::ResultSink {
 public:
  explicit EngineSink(MetricEngine& engine) : engine_{engine} {}

  void on_measurement(const core::MeasurementEvent& e) override {
    engine_.observe_measurement(e);
  }

 private:
  MetricEngine& engine_;
};

}  // namespace reorder::metrics
