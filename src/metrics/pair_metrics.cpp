#include "metrics/pair_metrics.hpp"

#include "report/sinks.hpp"

namespace reorder::metrics {

namespace {

// The canonical count rendering (shared with the `measurement` JSONL
// records), plus the derived rate for snapshot consumers.
report::Json estimate_json(const core::ReorderEstimate& e) {
  report::Json j = report::to_json(e);
  if (const auto rate = e.rate()) j.set("rate", *rate);
  return j;
}

}  // namespace

// ------------------------------------------------------- PairRateMetric

void PairRateMetric::observe_measurement(const core::MeasurementEvent& e) {
  if (!e.result.admissible) return;
  forward_ += e.result.forward;
  reverse_ += e.result.reverse;
}

std::unique_ptr<Metric> PairRateMetric::snapshot() const {
  return std::make_unique<PairRateMetric>(*this);
}

void PairRateMetric::merge(const Metric& other) {
  const auto& o = expect<PairRateMetric>(other, kName);
  forward_ += o.forward_;
  reverse_ += o.reverse_;
}

report::Json PairRateMetric::to_json() const {
  report::Json j = report::Json::object();
  j.set("fwd", estimate_json(forward_));
  j.set("rev", estimate_json(reverse_));
  return j;
}

void PairRateMetric::from_json(const report::Json& j) {
  forward_ = report::estimate_from_json(j.at("fwd"));
  reverse_ = report::estimate_from_json(j.at("rev"));
}

// ----------------------------------------------------- RateSeriesMetric

void RateSeriesMetric::observe_measurement(const core::MeasurementEvent& e) {
  if (!e.result.admissible) return;
  if (const auto rate = e.result.forward.rate()) forward_.push_back(*rate);
  if (const auto rate = e.result.reverse.rate()) reverse_.push_back(*rate);
}

std::unique_ptr<Metric> RateSeriesMetric::snapshot() const {
  return std::make_unique<RateSeriesMetric>(*this);
}

void RateSeriesMetric::merge(const Metric& other) {
  const auto& o = expect<RateSeriesMetric>(other, kName);
  forward_.insert(forward_.end(), o.forward_.begin(), o.forward_.end());
  reverse_.insert(reverse_.end(), o.reverse_.begin(), o.reverse_.end());
}

report::Json RateSeriesMetric::to_json() const {
  report::Json fwd = report::Json::array();
  for (const double r : forward_) fwd.push(r);
  report::Json rev = report::Json::array();
  for (const double r : reverse_) rev.push(r);
  report::Json j = report::Json::object();
  j.set("fwd", std::move(fwd));
  j.set("rev", std::move(rev));
  return j;
}

void RateSeriesMetric::from_json(const report::Json& j) {
  forward_.clear();
  reverse_.clear();
  for (const auto& r : j.at("fwd").items()) forward_.push_back(r.as_double());
  for (const auto& r : j.at("rev").items()) reverse_.push_back(r.as_double());
}

// ----------------------------------------------------- TimeDomainMetric

void TimeDomainMetric::observe(const core::SampleEvent& e) {
  profile_.add(e.sample.gap, e.sample.forward);
}

std::unique_ptr<Metric> TimeDomainMetric::snapshot() const {
  return std::make_unique<TimeDomainMetric>(*this);
}

void TimeDomainMetric::merge(const Metric& other) {
  profile_.merge(expect<TimeDomainMetric>(other, kName).profile_);
}

report::Json TimeDomainMetric::to_json() const {
  report::Json points = report::Json::array();
  for (const auto& p : profile_.points()) {
    report::Json point = report::Json::object();
    point.set("gap_ns", p.gap.ns());
    point.set("in_order", p.estimate.in_order);
    point.set("reordered", p.estimate.reordered);
    point.set("ambiguous", p.estimate.ambiguous);
    point.set("lost", p.estimate.lost);
    if (const auto rate = p.estimate.rate()) point.set("rate", *rate);
    points.push(std::move(point));
  }
  report::Json j = report::Json::object();
  j.set("points", std::move(points));
  return j;
}

void TimeDomainMetric::from_json(const report::Json& j) {
  profile_ = core::TimeDomainProfile{};
  for (const auto& point : j.at("points").items()) {
    core::ReorderEstimate estimate;
    estimate.in_order = point.at("in_order").as_u64();
    estimate.reordered = point.at("reordered").as_u64();
    estimate.ambiguous = point.at("ambiguous").as_u64();
    estimate.lost = point.at("lost").as_u64();
    profile_.add(util::Duration::nanos(point.at("gap_ns").as_int()), estimate);
  }
}

// ------------------------------------------------------- RateEcdfMetric

void RateEcdfMetric::observe_measurement(const core::MeasurementEvent& e) {
  if (!e.result.admissible) return;
  if (const auto rate = e.result.forward.rate()) forward_.add(*rate);
}

std::unique_ptr<Metric> RateEcdfMetric::snapshot() const {
  return std::make_unique<RateEcdfMetric>(*this);
}

void RateEcdfMetric::merge(const Metric& other) {
  forward_.merge(expect<RateEcdfMetric>(other, kName).forward_);
}

report::Json RateEcdfMetric::to_json() const {
  report::Json j = report::Json::object();
  j.set("count", forward_.count());
  if (!forward_.empty()) {
    j.set("min", forward_.min());
    j.set("p50", forward_.quantile(0.5));
    j.set("p90", forward_.quantile(0.9));
    j.set("max", forward_.max());
  }
  // The full sample multiset, sorted — lossless (an Ecdf's queries see
  // only the sorted multiset) and a pure function of the accumulated
  // state however the stream was split across shards.
  report::Json samples = report::Json::array();
  for (const double r : forward_.sorted()) samples.push(r);
  j.set("samples", std::move(samples));
  return j;
}

void RateEcdfMetric::from_json(const report::Json& j) {
  forward_ = stats::Ecdf{};
  for (const auto& r : j.at("samples").items()) forward_.add(r.as_double());
}

// ----------------------------------------------- LatencyHistogramMetric

LatencyHistogramMetric::LatencyHistogramMetric(double lo_us, double hi_us, std::size_t bins)
    : histogram_{lo_us, hi_us, bins} {}

void LatencyHistogramMetric::observe(const core::SampleEvent& e) {
  histogram_.add(static_cast<double>((e.sample.completed - e.sample.started).ns()) / 1e3);
}

std::unique_ptr<Metric> LatencyHistogramMetric::snapshot() const {
  return std::make_unique<LatencyHistogramMetric>(*this);
}

void LatencyHistogramMetric::merge(const Metric& other) {
  histogram_.merge(expect<LatencyHistogramMetric>(other, kName).histogram_);
}

report::Json LatencyHistogramMetric::to_json() const {
  report::Json j = report::Json::object();
  j.set("count", histogram_.count());
  j.set("underflow", histogram_.underflow());
  j.set("overflow", histogram_.overflow());
  // Binning configuration + per-bin indices make the rendering lossless
  // (bin edges alone would need a fragile float inversion to restore).
  j.set("lo", histogram_.lo());
  j.set("hi", histogram_.hi());
  j.set("nbins", histogram_.bins());
  report::Json bins = report::Json::array();
  for (std::size_t i = 0; i < histogram_.bins(); ++i) {
    if (histogram_.bin_count(i) == 0) continue;
    report::Json bin = report::Json::object();
    bin.set("i", i);
    bin.set("lo_us", histogram_.bin_lo(i));
    bin.set("count", histogram_.bin_count(i));
    bins.push(std::move(bin));
  }
  j.set("bins", std::move(bins));
  return j;
}

void LatencyHistogramMetric::from_json(const report::Json& j) {
  histogram_ = stats::Histogram{j.at("lo").as_double(), j.at("hi").as_double(),
                                static_cast<std::size_t>(j.at("nbins").as_int())};
  histogram_.add_underflow(j.at("underflow").as_int());
  histogram_.add_overflow(j.at("overflow").as_int());
  for (const auto& bin : j.at("bins").items()) {
    histogram_.add_bin(static_cast<std::size_t>(bin.at("i").as_int()),
                       bin.at("count").as_int());
  }
}

// ------------------------------------------------------- LateTimeMetric

void LateTimeMetric::observe(const core::SampleEvent& e) {
  if (e.sample.forward != core::Ordering::kReordered &&
      e.sample.reverse != core::Ordering::kReordered) {
    return;
  }
  const std::int64_t ns = (e.sample.completed - e.sample.started).ns();
  sketch_.add(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
}

std::unique_ptr<Metric> LateTimeMetric::snapshot() const {
  return std::make_unique<LateTimeMetric>(*this);
}

void LateTimeMetric::merge(const Metric& other) {
  sketch_.merge(expect<LateTimeMetric>(other, kName).sketch_);
}

report::Json LateTimeMetric::to_json() const { return sketch_.to_json(); }

void LateTimeMetric::from_json(const report::Json& j) { sketch_.from_json(j); }

}  // namespace reorder::metrics
