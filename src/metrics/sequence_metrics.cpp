#include "metrics/sequence_metrics.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace reorder::metrics {

// -------------------------------------------------------- ArrivalCounter

void ArrivalCounter::insert(std::uint32_t send_index) {
  const std::size_t needed = static_cast<std::size_t>(send_index) + 2;  // 1-based
  if (needed > tree_.size()) {
    // Double the Fenwick and rebuild from the recorded frequencies (the
    // tree itself is the only storage: rebuild by re-walking is O(M), and
    // doubling keeps the amortized cost per record O(log M)).
    std::size_t capacity = std::max<std::size_t>(64, tree_.size());
    while (capacity < needed) capacity *= 2;
    std::vector<std::uint64_t> freq(capacity, 0);
    // Recover frequencies: freq[i] = prefix(i) - prefix(i-1).
    std::uint64_t prev = 0;
    for (std::size_t i = 1; i < tree_.size(); ++i) {
      std::uint64_t prefix = 0;
      for (std::size_t k = i; k > 0; k -= k & (~k + 1)) prefix += tree_[k];
      freq[i] = prefix - prev;
      prev = prefix;
    }
    tree_.assign(capacity, 0);
    for (std::size_t i = 1; i < freq.size(); ++i) {
      if (freq[i] == 0) continue;
      for (std::size_t k = i; k < tree_.size(); k += k & (~k + 1)) tree_[k] += freq[i];
    }
  }
  for (std::size_t k = static_cast<std::size_t>(send_index) + 1; k < tree_.size();
       k += k & (~k + 1)) {
    ++tree_[k];
  }
}

std::uint64_t ArrivalCounter::count_above_slow(std::uint32_t send_index) {
  // Materialize the deferred records first (first reordered arrival of a
  // sequence pays the whole backlog once; after that it's incremental).
  for (const std::uint32_t s : pending_) insert(s);
  pending_.clear();
  // total - (arrivals with send index <= send_index).
  std::uint64_t at_or_below = 0;
  std::size_t k = std::min(static_cast<std::size_t>(send_index) + 1,
                           tree_.empty() ? 0 : tree_.size() - 1);
  for (; k > 0; k -= k & (~k + 1)) at_or_below += tree_[k];
  return total_ - at_or_below;
}

void ArrivalCounter::clear() {
  tree_.clear();
  pending_.clear();
  total_ = 0;
  max_seen_ = 0;
}

// -------------------------------------------------- SequenceExtentMetric

void SequenceExtentMetric::observe_arrival(std::uint32_t send_index) {
  open_ = true;
  ++packets_;
  inversions_ += counter_.count_above(send_index);
  if (!records_.empty() && records_.back().send_index > send_index) {
    // Reordered (RFC 4737 type-P-reordered): a larger send index already
    // arrived. The extent is the distance back to the earliest such
    // arrival, which is always a prefix-maximum record.
    const auto it = std::upper_bound(
        records_.begin(), records_.end(), send_index,
        [](std::uint32_t value, const Record& r) { return r.send_index > value; });
    const auto extent = static_cast<std::uint32_t>(position_ - it->position);
    ++reordered_;
    extent_sum_ += extent;
    max_extent_ = std::max(max_extent_, extent);
    extent_tail_.add(extent);
  } else if (records_.empty() || send_index > records_.back().send_index) {
    records_.push_back(Record{position_, send_index});
  }
  counter_.record(send_index);
  ++position_;
}

void SequenceExtentMetric::observe_arrivals(const std::uint32_t* send_indices,
                                            std::size_t count) {
  // The scalar recurrence, with its in-order case bulked. An arrival
  // whose send index exceeds the running prefix maximum (records_.back(),
  // which equals the counter's max) is exactly: not reordered, zero
  // inversions added, one record appended, one counter record — so a
  // strictly-increasing stretch above the maximum reduces to three bulk
  // appends. Anything else falls back to the scalar step for that
  // arrival. Bit-exact by case analysis; the ingest equivalence tests
  // hold it to that over every scenario.
  std::size_t i = 0;
  while (i < count) {
    if (!records_.empty() && send_indices[i] <= records_.back().send_index) {
      observe_arrival(send_indices[i]);
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < count && send_indices[j] > send_indices[j - 1]) ++j;
    const std::size_t len = j - i;
    open_ = true;
    const std::size_t base = records_.size();
    records_.resize(base + len);
    for (std::size_t t = 0; t < len; ++t) {
      records_[base + t] = Record{position_ + t, send_indices[i + t]};
    }
    counter_.record_ascending(send_indices + i, len);
    packets_ += len;
    position_ += len;
    i = j;
  }
}

void SequenceExtentMetric::prefetch_state() const {
  if (!records_.empty()) __builtin_prefetch(records_.data() + records_.size() - 1, 1);
  counter_.prefetch_tail();
}

void SequenceExtentMetric::end_sequence() {
  if (!open_) return;
  ++sequences_;
  records_.clear();
  counter_.clear();
  position_ = 0;
  open_ = false;
}

std::unique_ptr<Metric> SequenceExtentMetric::snapshot() const {
  return std::make_unique<SequenceExtentMetric>(*this);
}

void SequenceExtentMetric::merge(const Metric& other) {
  const auto& o = expect<SequenceExtentMetric>(other, kName);
  if (open_ || o.open_) {
    throw std::invalid_argument{"SequenceExtentMetric::merge: open sequence (call end_sequence)"};
  }
  packets_ += o.packets_;
  reordered_ += o.reordered_;
  extent_sum_ += o.extent_sum_;
  max_extent_ = std::max(max_extent_, o.max_extent_);
  inversions_ += o.inversions_;
  sequences_ += o.sequences_;
  extent_tail_.merge(o.extent_tail_);
}

report::Json SequenceExtentMetric::to_json() const {
  report::Json j = report::Json::object();
  j.set("sequences", sequences_);
  j.set("packets", packets_);
  j.set("reordered", reordered_);
  j.set("ratio", ratio());
  j.set("max_extent", static_cast<std::uint64_t>(max_extent_));
  j.set("mean_extent", mean_extent());
  j.set("extent_sum", report::Json::u64(extent_sum_));
  j.set("inversions", report::Json::u64(inversions_));
  j.set("extent_tail", extent_tail_.to_json());
  return j;
}

void SequenceExtentMetric::from_json(const report::Json& j) {
  SequenceExtentMetric restored;
  restored.sequences_ = j.at("sequences").as_u64();
  restored.packets_ = j.at("packets").as_u64();
  restored.reordered_ = j.at("reordered").as_u64();
  restored.extent_sum_ = j.at("extent_sum").as_u64();
  restored.max_extent_ = static_cast<std::uint32_t>(j.at("max_extent").as_u64());
  restored.inversions_ = j.at("inversions").as_u64();
  restored.extent_tail_.from_json(j.at("extent_tail"));
  *this = std::move(restored);
}

// ----------------------------------------------------- NReorderingMetric

void NReorderingMetric::observe_arrival(std::uint32_t send_index) {
  open_ = true;
  if (!stack_.empty() && stack_.back().send_index < send_index) {
    // In-order fast path: the stack top is always the previous arrival
    // (pushed at position_ - 1), so when it was sent earlier the binary
    // search would land past the end, n would be 0, and the pop loop
    // would pop nothing — skip straight to the push.
    ++packets_;
    stack_.push_back(Entry{position_, send_index});
    ++position_;
    return;
  }
  // RFC 5236: the packet is n-reordered when the n arrivals immediately
  // before it were all sent after it. n = current position - 1 - (latest
  // earlier position whose send index is smaller). The monotonic stack
  // holds (position, send index) with strictly increasing values, so that
  // latest smaller-valued position is found by binary search.
  const auto it = std::lower_bound(
      stack_.begin(), stack_.end(), send_index,
      [](const Entry& e, std::uint32_t value) { return e.send_index < value; });
  const std::int64_t boundary = it == stack_.begin() ? -1 : static_cast<std::int64_t>(
                                                               std::prev(it)->position);
  const auto n = static_cast<std::uint64_t>(static_cast<std::int64_t>(position_) - 1 - boundary);
  if (n > 0) ++density_[n];
  ++packets_;
  while (!stack_.empty() && stack_.back().send_index >= send_index) stack_.pop_back();
  stack_.push_back(Entry{position_, send_index});
  ++position_;
}

void NReorderingMetric::observe_arrivals(const std::uint32_t* send_indices, std::size_t count) {
  // Scalar recurrence with the in-order case bulked: an arrival above the
  // stack top (always the previous arrival) has n == 0 and pops nothing,
  // so a strictly-increasing stretch is a straight append to the stack.
  std::size_t i = 0;
  while (i < count) {
    if (!stack_.empty() && send_indices[i] <= stack_.back().send_index) {
      observe_arrival(send_indices[i]);
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < count && send_indices[j] > send_indices[j - 1]) ++j;
    const std::size_t len = j - i;
    open_ = true;
    const std::size_t base = stack_.size();
    stack_.resize(base + len);
    for (std::size_t t = 0; t < len; ++t) {
      stack_[base + t] = Entry{position_ + t, send_indices[i + t]};
    }
    packets_ += len;
    position_ += len;
    i = j;
  }
}

void NReorderingMetric::prefetch_state() const {
  if (!stack_.empty()) __builtin_prefetch(stack_.data() + stack_.size() - 1, 1);
}

void NReorderingMetric::end_sequence() {
  if (!open_) return;
  stack_.clear();
  position_ = 0;
  open_ = false;
}

std::uint64_t NReorderingMetric::count_for(std::uint64_t n) const {
  const auto it = density_.find(n);
  return it == density_.end() ? 0 : it->second;
}

double NReorderingMetric::reordered_fraction() const {
  if (packets_ == 0) return 0.0;
  std::uint64_t reordered = 0;
  for (const auto& [n, count] : density_) reordered += count;
  return static_cast<double>(reordered) / static_cast<double>(packets_);
}

std::unique_ptr<Metric> NReorderingMetric::snapshot() const {
  return std::make_unique<NReorderingMetric>(*this);
}

void NReorderingMetric::merge(const Metric& other) {
  const auto& o = expect<NReorderingMetric>(other, kName);
  if (open_ || o.open_) {
    throw std::invalid_argument{"NReorderingMetric::merge: open sequence (call end_sequence)"};
  }
  packets_ += o.packets_;
  for (const auto& [n, count] : o.density_) density_[n] += count;
}

report::Json NReorderingMetric::to_json() const {
  report::Json j = report::Json::object();
  j.set("packets", packets_);
  j.set("reordered_fraction", reordered_fraction());
  report::Json density = report::Json::array();
  for (const auto& [n, count] : density_) {
    report::Json d = report::Json::object();
    d.set("n", n);
    d.set("count", count);
    density.push(std::move(d));
  }
  j.set("density", std::move(density));
  return j;
}

void NReorderingMetric::from_json(const report::Json& j) {
  NReorderingMetric restored;
  restored.packets_ = j.at("packets").as_u64();
  for (const auto& d : j.at("density").items()) {
    restored.density_[d.at("n").as_u64()] = d.at("count").as_u64();
  }
  *this = std::move(restored);
}

// -------------------------------------------------- ReorderDensityMetric

void ReorderDensityMetric::observe_arrival(std::uint32_t send_index) {
  open_ = true;
  const std::int64_t displacement =
      static_cast<std::int64_t>(position_) - static_cast<std::int64_t>(send_index);
  ++density_[std::clamp(displacement, -threshold_, threshold_)];
  ++packets_;
  ++position_;
}

void ReorderDensityMetric::end_sequence() {
  if (!open_) return;
  position_ = 0;
  open_ = false;
}

std::uint64_t ReorderDensityMetric::count_for(std::int64_t displacement) const {
  const auto it = density_.find(displacement);
  return it == density_.end() ? 0 : it->second;
}

std::unique_ptr<Metric> ReorderDensityMetric::snapshot() const {
  return std::make_unique<ReorderDensityMetric>(*this);
}

void ReorderDensityMetric::merge(const Metric& other) {
  const auto& o = expect<ReorderDensityMetric>(other, kName);
  if (o.threshold_ != threshold_) {
    throw std::invalid_argument{"ReorderDensityMetric::merge: thresholds differ"};
  }
  if (open_ || o.open_) {
    throw std::invalid_argument{"ReorderDensityMetric::merge: open sequence (call end_sequence)"};
  }
  packets_ += o.packets_;
  for (const auto& [d, count] : o.density_) density_[d] += count;
}

report::Json ReorderDensityMetric::to_json() const {
  report::Json j = report::Json::object();
  j.set("threshold", threshold_);
  j.set("packets", packets_);
  report::Json density = report::Json::array();
  for (const auto& [d, count] : density_) {
    report::Json entry = report::Json::object();
    entry.set("displacement", d);
    entry.set("count", count);
    if (packets_ > 0) {
      entry.set("density", static_cast<double>(count) / static_cast<double>(packets_));
    }
    density.push(std::move(entry));
  }
  j.set("density", std::move(density));
  return j;
}

void ReorderDensityMetric::from_json(const report::Json& j) {
  ReorderDensityMetric restored{j.at("threshold").as_int()};
  restored.packets_ = j.at("packets").as_u64();
  for (const auto& d : j.at("density").items()) {
    restored.density_[d.at("displacement").as_int()] = d.at("count").as_u64();
  }
  *this = std::move(restored);
}

// --------------------------------------------------- BufferDensityMetric

void BufferDensityMetric::observe_arrival(std::uint32_t send_index) {
  open_ = true;
  if (send_index == next_expected_) {
    ++next_expected_;
    while (!held_.empty() && held_.front() == next_expected_) {
      std::pop_heap(held_.begin(), held_.end(), std::greater<>{});
      held_.pop_back();
      ++next_expected_;
    }
  } else if (send_index > next_expected_) {
    held_.push_back(send_index);
    std::push_heap(held_.begin(), held_.end(), std::greater<>{});
  }
  // Duplicates / already-released indices leave the buffer untouched but
  // still contribute an occupancy observation (an arrival happened).
  const auto occupancy = static_cast<std::uint64_t>(held_.size());
  ++density_[occupancy];
  max_occupancy_ = std::max(max_occupancy_, occupancy);
  ++packets_;
}

void BufferDensityMetric::end_sequence() {
  if (!open_) return;
  held_.clear();
  next_expected_ = 0;
  open_ = false;
}

std::uint64_t BufferDensityMetric::count_for(std::uint64_t occupancy) const {
  const auto it = density_.find(occupancy);
  return it == density_.end() ? 0 : it->second;
}

std::unique_ptr<Metric> BufferDensityMetric::snapshot() const {
  return std::make_unique<BufferDensityMetric>(*this);
}

void BufferDensityMetric::merge(const Metric& other) {
  const auto& o = expect<BufferDensityMetric>(other, kName);
  if (open_ || o.open_) {
    throw std::invalid_argument{"BufferDensityMetric::merge: open sequence (call end_sequence)"};
  }
  packets_ += o.packets_;
  max_occupancy_ = std::max(max_occupancy_, o.max_occupancy_);
  for (const auto& [occ, count] : o.density_) density_[occ] += count;
}

report::Json BufferDensityMetric::to_json() const {
  report::Json j = report::Json::object();
  j.set("packets", packets_);
  j.set("max_occupancy", max_occupancy_);
  report::Json density = report::Json::array();
  for (const auto& [occ, count] : density_) {
    report::Json entry = report::Json::object();
    entry.set("occupancy", occ);
    entry.set("count", count);
    if (packets_ > 0) {
      entry.set("density", static_cast<double>(count) / static_cast<double>(packets_));
    }
    density.push(std::move(entry));
  }
  j.set("density", std::move(density));
  return j;
}

void BufferDensityMetric::from_json(const report::Json& j) {
  BufferDensityMetric restored;
  restored.packets_ = j.at("packets").as_u64();
  restored.max_occupancy_ = j.at("max_occupancy").as_u64();
  for (const auto& d : j.at("density").items()) {
    restored.density_[d.at("occupancy").as_u64()] = d.at("count").as_u64();
  }
  *this = std::move(restored);
}

// -------------------------------------------------------- batch feeding

void observe_sequence(MetricSuite& suite, const std::uint32_t* arrival, std::size_t count) {
  suite.observe_arrivals(arrival, count);
  suite.end_sequence();
}

void observe_sequence(Metric& metric, const std::uint32_t* arrival, std::size_t count) {
  metric.observe_arrivals(arrival, count);
  metric.end_sequence();
}

void observe_sequence(MetricSuite& suite, const std::vector<std::uint32_t>& arrival) {
  observe_sequence(suite, arrival.data(), arrival.size());
}

void observe_sequence(Metric& metric, const std::vector<std::uint32_t>& arrival) {
  observe_sequence(metric, arrival.data(), arrival.size());
}

}  // namespace reorder::metrics
