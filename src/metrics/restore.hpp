// Deserialization side of the metrics library: rebuild metrics, suites,
// and whole engines from their to_json() renderings — the layer the
// checkpoint/resume path and the reorder-merge tool stand on.
//
// A restored accumulator is a drop-in peer of a live one: merging it and
// then rendering is bit-identical to having merged the original (the
// from_json contract in metric.hpp, property-tested per metric). Suites
// restore in member order, so a restored suite's composition matches the
// factory-built suite it was snapshotted from and MetricSuite::merge's
// composition check passes.
#pragma once

#include <memory>
#include <string_view>

#include "metrics/metric.hpp"

namespace reorder::metrics {

/// Default-constructs the library metric registered under `name` (every
/// metric in src/metrics is registered); throws std::invalid_argument
/// for an unknown name. Configuration a default constructor cannot know
/// (histogram binning, RD threshold) is carried inside the metric's own
/// JSON and applied by its from_json.
std::unique_ptr<Metric> make_metric(std::string_view name);

/// Rebuilds a suite from MetricSuite::to_json() output: one member per
/// JSON key, in key order, each restored via its from_json.
MetricSuite suite_from_json(const report::Json& j);

}  // namespace reorder::metrics
