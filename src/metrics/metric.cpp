#include "metrics/metric.hpp"

#include <stdexcept>
#include <string>

namespace reorder::metrics {

MetricSuite& MetricSuite::add(std::unique_ptr<Metric> metric) {
  if (metric == nullptr) {
    throw std::invalid_argument{"MetricSuite::add: null metric"};
  }
  if (find(metric->name()) != nullptr) {
    throw std::invalid_argument{"MetricSuite::add: duplicate metric '" +
                                std::string{metric->name()} + "'"};
  }
  metrics_.push_back(std::move(metric));
  return *this;
}

const Metric* MetricSuite::find(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

void MetricSuite::observe(const core::SampleEvent& e) {
  for (auto& m : metrics_) m->observe(e);
}

void MetricSuite::observe_measurement(const core::MeasurementEvent& e) {
  for (auto& m : metrics_) m->observe_measurement(e);
}

void MetricSuite::observe_arrival(std::uint32_t send_index) {
  for (auto& m : metrics_) m->observe_arrival(send_index);
}

void MetricSuite::observe_arrivals(const std::uint32_t* send_indices, std::size_t count) {
  for (auto& m : metrics_) m->observe_arrivals(send_indices, count);
}

void MetricSuite::end_sequence() {
  for (auto& m : metrics_) m->end_sequence();
}

MetricSuite MetricSuite::snapshot() const {
  MetricSuite out;
  out.metrics_.reserve(metrics_.size());
  for (const auto& m : metrics_) out.metrics_.push_back(m->snapshot());
  return out;
}

void MetricSuite::merge(const MetricSuite& other) {
  if (other.metrics_.size() != metrics_.size()) {
    throw std::invalid_argument{"MetricSuite::merge: suite compositions differ"};
  }
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    metrics_[i]->merge(*other.metrics_[i]);
  }
}

report::Json MetricSuite::to_json() const {
  report::Json j = report::Json::object();
  for (const auto& m : metrics_) j.set(std::string{m->name()}, m->to_json());
  return j;
}

}  // namespace reorder::metrics
