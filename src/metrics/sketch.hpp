// A deterministic, exactly-mergeable quantile sketch for non-negative
// tail distributions (reordering extents, late times).
//
// Randomized sketches (t-digest, KLL) merge approximately and depend on
// merge order — useless here, where the engine's contract is that merging
// per-shard snapshots is bit-identical to the single-pass batch result.
// This sketch instead uses HdrHistogram-style log-linear buckets: values
// land in a bucket determined only by their magnitude, so a merge is a
// bucket-wise sum and every quantile query depends only on the multiset
// of observations, never on how the stream was partitioned.
//
// Resolution: each power-of-two range is split into kSubBuckets linear
// sub-buckets, giving a fixed <= 1/kSubBuckets relative error on reported
// quantiles (values below kSubBuckets are exact).
#pragma once

#include <cstdint>
#include <vector>

#include "report/json.hpp"

namespace reorder::metrics {

class TailSketch {
 public:
  static constexpr std::uint32_t kSubBuckets = 32;

  void add(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  double mean() const;

  /// Nearest-rank quantile (q clamped to [0,1]); 0 with no observations.
  /// Returns the representative (lower edge) of the containing bucket.
  std::uint64_t quantile(double q) const;

  /// Bucket-wise sum — exact, order-independent.
  void merge(const TailSketch& other);

  /// {"count":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,
  ///  "sum":..,"buckets":[[index,count],..]} (all zero/empty if empty).
  /// The sparse bucket array + sum make the rendering lossless: from_json
  /// of it rebuilds a bit-identical sketch (quantiles are derived).
  report::Json to_json() const;

  /// Restores the sketch from a to_json() rendering, replacing any
  /// current state. Throws on schema mismatch.
  void from_json(const report::Json& j);

 private:
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_floor(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t max_{0};
  std::uint64_t min_{0};
};

}  // namespace reorder::metrics
