// The unified streaming-metrics contract.
//
// Every analytic quantity the library reports — pair reorder rates,
// time-domain profiles, RFC 4737 sequence extents, RFC 5236 n-reordering,
// reorder/buffer-occupancy densities, tail quantiles — is a Metric: a
// one-pass online accumulator with an associative, exactly-mergeable
// snapshot. The contract every implementation must honor:
//
//   * observe*() is one-pass: O(1) or O(log n) per event, never a replay
//     of stored raw samples at query time;
//   * merge() over snapshots of a partitioned stream is bit-identical to
//     the single-pass batch result. Sample-level metrics merge exactly
//     under ANY contiguous split of the sample stream; sequence-level
//     metrics merge exactly under splits at sequence boundaries (which
//     the engine guarantees: a measurement's events publish atomically);
//   * to_json() is a pure function of the accumulated state, so equal
//     states render byte-identical JSON (what the property tests check).
//
// This is what lets per-target / per-shard accumulators from concurrent
// SurveyEngine state machines (or from different machines entirely, via
// the JSONL metrics records) combine into exact fleet-wide aggregates.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/result_sink.hpp"
#include "report/json.hpp"

namespace reorder::metrics {

class Metric {
 public:
  virtual ~Metric() = default;

  /// Stable identifier; merge() pairs metrics by name, to_json() keys on it.
  virtual std::string_view name() const = 0;

  // ------------------------------------------------- streaming updates
  // Implement the granularity the metric consumes; the rest are no-ops.
  /// One sample verdict (the paper's two-packet primitive).
  virtual void observe(const core::SampleEvent&) {}
  /// One completed measurement (after its samples were observed).
  virtual void observe_measurement(const core::MeasurementEvent&) {}
  /// One arrival in a packet sequence: the send index of the packet that
  /// just arrived (RFC 4737's stream model). Sequence metrics only.
  virtual void observe_arrival(std::uint32_t send_index) { (void)send_index; }
  /// A run of consecutive arrivals of the SAME sequence — the line-rate
  /// batched entry. MUST leave the metric in exactly the state that
  /// `count` observe_arrival() calls would (the bit-exactness contract
  /// the ingest tests enforce); the default delegation guarantees it,
  /// and overrides may only restate the same per-arrival recurrence.
  /// What batching buys is paid here once per run instead of once per
  /// arrival: the virtual dispatch, and the caller's per-flow lookup.
  virtual void observe_arrivals(const std::uint32_t* send_indices, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) observe_arrival(send_indices[i]);
  }
  /// Closes the current arrival sequence (sequence metrics only).
  virtual void end_sequence() {}

  /// Hints the metric's mutable tail state (e.g. growing vectors' ends)
  /// toward the core ahead of observe_arrivals(). Pure optimization: the
  /// batched ingest path calls it across a whole batch of runs so the
  /// misses overlap. Must not change observable state.
  virtual void prefetch_state() const {}

  // ---------------------------------------------------- snapshot/merge
  /// Deep copy of the accumulated state.
  virtual std::unique_ptr<Metric> snapshot() const = 0;
  /// Folds another accumulator of the same concrete type into this one.
  /// Throws std::invalid_argument on a type or name mismatch.
  virtual void merge(const Metric& other) = 0;

  /// JSON rendering of the current state (one object per metric; schema
  /// documented per metric and in the README's "Metrics" section). The
  /// rendering is LOSSLESS for closed (end_sequence'd) state: from_json
  /// of it reproduces an accumulator whose subsequent merge() and
  /// to_json() are bit-identical to the original's — the contract the
  /// checkpoint/resume layer depends on, property-tested per metric.
  virtual report::Json to_json() const = 0;

  /// Restores the accumulator from a to_json() rendering, replacing any
  /// current state. Open-sequence scratch state is not serialized: a
  /// snapshot is only taken at sequence boundaries (merge() enforces
  /// this by throwing on open sequences), so restored state is closed.
  /// Throws (std::out_of_range / std::runtime_error) on schema mismatch.
  virtual void from_json(const report::Json& j) = 0;

 protected:
  /// Downcast helper for merge(): checks name and concrete type.
  template <typename T>
  static const T& expect(const Metric& other, std::string_view name);
};

template <typename T>
const T& Metric::expect(const Metric& other, std::string_view name) {
  const T* typed = dynamic_cast<const T*>(&other);
  if (typed == nullptr || other.name() != name) {
    throw std::invalid_argument{"Metric::merge: cannot merge '" + std::string{other.name()} +
                                "' into '" + std::string{name} + "'"};
  }
  return *typed;
}

/// An ordered collection of metrics fed from one event stream — the unit
/// the engine keeps per (target, test). Suites merge member-wise and
/// require identical composition (same names, same order).
class MetricSuite {
 public:
  MetricSuite() = default;
  MetricSuite(MetricSuite&&) = default;
  MetricSuite& operator=(MetricSuite&&) = default;

  MetricSuite& add(std::unique_ptr<Metric> metric);
  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }

  /// The member named `name`, or nullptr.
  const Metric* find(std::string_view name) const;
  /// Typed lookup; nullptr when absent or of a different concrete type.
  template <typename T>
  const T* get(std::string_view name) const {
    return dynamic_cast<const T*>(find(name));
  }

  // Event fan-in (every member sees every event).
  void observe(const core::SampleEvent& e);
  void observe_measurement(const core::MeasurementEvent& e);
  void observe_arrival(std::uint32_t send_index);
  /// Batched fan-in: one virtual call per member per run.
  void observe_arrivals(const std::uint32_t* send_indices, std::size_t count);
  void end_sequence();

  /// Hints the members' cache lines toward the core. The batched ingest
  /// path calls this while resolving a whole batch of runs, so the misses
  /// on many flows' metric state overlap instead of serializing.
  void prefetch() const {
    for (const auto& m : metrics_) __builtin_prefetch(m.get(), 1);
  }
  /// Second prefetch stage: members' tail state (see Metric). Called one
  /// pass after prefetch(), when the object headers have landed.
  void prefetch_state() const {
    for (const auto& m : metrics_) m->prefetch_state();
  }

  MetricSuite snapshot() const;
  /// Member-wise merge; throws std::invalid_argument when the suites'
  /// compositions differ.
  void merge(const MetricSuite& other);

  /// {"<metric name>": <metric.to_json()>, ...} in attachment order.
  report::Json to_json() const;

 private:
  std::vector<std::unique_ptr<Metric>> metrics_;
};

}  // namespace reorder::metrics
