// Sequence-level metrics: one-pass accumulators over arrival sequences
// (streams of send indices in arrival order — the RFC 4737 model; each
// measurement, trace capture, or TCP transfer is one sequence).
//
// Where core::analyze_sequence is the O(n^2) batch oracle, these are the
// streaming production implementations: O(log n) per arrival, constant
// state between arrivals, and exactly mergeable at sequence boundaries
// (the engine closes the sequence at every measurement event, so shard
// partitions never split one). The new metrics the literature asks for:
//
//   * SequenceExtentMetric — RFC 4737 reordered ratio + reordering
//     extents (max / mean / tail sketch) + inversions;
//   * NReorderingMetric — RFC 5236 n-reordering density: a reordered
//     packet's n is the number of later-sent packets that arrived ahead
//     of it;
//   * ReorderDensityMetric — Piratla's RD: normalized histogram of
//     per-packet displacement (arrival position - send index), the view
//     "Detecting TCP Packet Reordering in the Data Plane" builds on;
//   * BufferDensityMetric — Piratla's RBD: normalized histogram of the
//     hypothetical resequencing-buffer occupancy after each arrival, the
//     receiver-cost view time-sensitive networking cares about
//     (Mohammadpour & Le Boudec).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "metrics/metric.hpp"
#include "metrics/sketch.hpp"

namespace reorder::metrics {

/// Shared helper: a Fenwick tree over send indices counting arrivals,
/// grown on demand. count_above(s) is the number of recorded arrivals
/// with send index > s — both RFC 5236's n and the inversion count.
class ArrivalCounter {
 public:
  /// O(1): buffers the index; the tree is only materialized when a query
  /// actually needs it. Counts depend on the multiset of recorded
  /// indices, not insertion order, so deferral is invisible.
  void record(std::uint32_t send_index) {
    pending_.push_back(send_index);
    max_seen_ = std::max(max_seen_, send_index);
    ++total_;
  }
  /// Bulk record of a strictly ascending run (caller's precondition; the
  /// last element is then the run's maximum). Equivalent to `count`
  /// record() calls.
  void record_ascending(const std::uint32_t* send_indices, std::size_t count) {
    if (count == 0) return;
    pending_.insert(pending_.end(), send_indices, send_indices + count);
    max_seen_ = std::max(max_seen_, send_indices[count - 1]);
    total_ += count;
  }
  std::uint64_t count_above(std::uint32_t send_index) {
    // In-order fast path: nothing recorded exceeds the running maximum,
    // so querying at or above it is 0 without touching the tree — the
    // common case of every in-order arrival. A fully in-order sequence
    // never builds the tree at all.
    if (total_ == 0 || send_index >= max_seen_) return 0;
    return count_above_slow(send_index);
  }
  std::uint64_t total() const { return total_; }
  void clear();
  /// Prefetch hint for the append tail (see Metric::prefetch_state).
  void prefetch_tail() const {
    if (!pending_.empty()) __builtin_prefetch(pending_.data() + pending_.size() - 1, 1);
  }

 private:
  void insert(std::uint32_t send_index);
  std::uint64_t count_above_slow(std::uint32_t send_index);

  std::vector<std::uint64_t> tree_;       // 1-based Fenwick
  std::vector<std::uint32_t> pending_;    // recorded, not yet in the tree
  std::uint64_t total_{0};
  std::uint32_t max_seen_{0};
};

/// RFC 4737 §4/§5: reordered ratio, reordering extents, inversions —
/// streamed. A packet is reordered iff an earlier arrival carried a
/// larger send index; its extent is the distance back (in arrivals) to
/// the earliest such arrival, found by binary search over the running
/// record (prefix-maxima) stack.
class SequenceExtentMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "sequence_extent";

  std::string_view name() const override { return kName; }
  void observe_arrival(std::uint32_t send_index) override;
  /// The batched fast path: in-order stretches (send index above the
  /// running maximum) collapse to bulk appends; every other arrival runs
  /// the scalar step. Bit-exact with `count` observe_arrival() calls —
  /// the ingest equivalence tests enforce it over every scenario.
  void observe_arrivals(const std::uint32_t* send_indices, std::size_t count) override;
  void prefetch_state() const override;
  void end_sequence() override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  std::uint64_t packets() const { return packets_; }
  std::uint64_t reordered() const { return reordered_; }
  double ratio() const {
    return packets_ == 0 ? 0.0
                         : static_cast<double>(reordered_) / static_cast<double>(packets_);
  }
  std::uint32_t max_extent() const { return max_extent_; }
  double mean_extent() const {
    return reordered_ == 0 ? 0.0
                           : static_cast<double>(extent_sum_) / static_cast<double>(reordered_);
  }
  std::uint64_t inversions() const { return inversions_; }
  std::uint64_t sequences() const { return sequences_; }
  const TailSketch& extent_tail() const { return extent_tail_; }

 private:
  struct Record {
    std::uint64_t position;   ///< arrival position within the sequence
    std::uint32_t send_index;
  };

  // Closed totals (what merge combines).
  std::uint64_t packets_{0};
  std::uint64_t reordered_{0};
  std::uint64_t extent_sum_{0};
  std::uint32_t max_extent_{0};
  std::uint64_t inversions_{0};
  std::uint64_t sequences_{0};
  TailSketch extent_tail_;

  // Open-sequence state (must be closed before merge/snapshot compare).
  std::vector<Record> records_;  ///< strictly increasing prefix maxima
  ArrivalCounter counter_;
  std::uint64_t position_{0};
  bool open_{false};
};

/// RFC 5236 §4: the n-reordering density. For each arrival, n is the
/// number of packets sent after it that arrived before it; the metric
/// reports, for each n >= 1, how many packets were exactly n-reordered.
class NReorderingMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "n_reordering";

  std::string_view name() const override { return kName; }
  void observe_arrival(std::uint32_t send_index) override;
  /// Batched fast path; see SequenceExtentMetric::observe_arrivals.
  void observe_arrivals(const std::uint32_t* send_indices, std::size_t count) override;
  void prefetch_state() const override;
  void end_sequence() override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  std::uint64_t packets() const { return packets_; }
  /// Packets that were exactly n-reordered (0 for unseen n).
  std::uint64_t count_for(std::uint64_t n) const;
  /// Fraction of packets with n-reordering >= 1.
  double reordered_fraction() const;

 private:
  struct Entry {
    std::uint64_t position;
    std::uint32_t send_index;
  };

  std::uint64_t packets_{0};
  std::map<std::uint64_t, std::uint64_t> density_;  ///< n -> packet count
  /// Monotonic stack: increasing position AND send index; the latest
  /// earlier arrival with a smaller send index is found by binary search.
  std::vector<Entry> stack_;
  std::uint64_t position_{0};
  bool open_{false};
};

/// Piratla's reorder density (RD): histogram of per-packet displacement
/// D = arrival position - send index, clamped to [-threshold, threshold].
class ReorderDensityMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "reorder_density";

  explicit ReorderDensityMetric(std::int64_t threshold = 16) : threshold_{threshold} {}

  std::string_view name() const override { return kName; }
  void observe_arrival(std::uint32_t send_index) override;
  void end_sequence() override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  std::uint64_t packets() const { return packets_; }
  std::uint64_t count_for(std::int64_t displacement) const;

 private:
  std::int64_t threshold_;
  std::uint64_t packets_{0};
  std::map<std::int64_t, std::uint64_t> density_;  ///< displacement -> count
  std::uint64_t position_{0};
  bool open_{false};
};

/// Piratla's reorder buffer-occupancy density (RBD): feed arrivals into a
/// hypothetical resequencing buffer that releases packets in send order;
/// histogram of the buffer occupancy observed after each arrival.
class BufferDensityMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "buffer_density";

  std::string_view name() const override { return kName; }
  void observe_arrival(std::uint32_t send_index) override;
  void end_sequence() override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  std::uint64_t packets() const { return packets_; }
  std::uint64_t count_for(std::uint64_t occupancy) const;
  std::uint64_t max_occupancy() const { return max_occupancy_; }

 private:
  std::uint64_t packets_{0};
  std::map<std::uint64_t, std::uint64_t> density_;  ///< occupancy -> count
  std::uint64_t max_occupancy_{0};

  // Open-sequence resequencing state.
  std::uint32_t next_expected_{0};
  std::vector<std::uint32_t> held_;  ///< min-heap of buffered send indices
  bool open_{false};
};

/// Feeds one whole arrival sequence through a suite (or single metric)
/// and closes it — the batch entry point benches and trace analysis use.
/// The pointer+length forms are the copy-free view the ingest path and
/// trace replay feed; the vector forms forward to them.
void observe_sequence(MetricSuite& suite, const std::uint32_t* arrival, std::size_t count);
void observe_sequence(Metric& metric, const std::uint32_t* arrival, std::size_t count);
void observe_sequence(MetricSuite& suite, const std::vector<std::uint32_t>& arrival);
void observe_sequence(Metric& metric, const std::vector<std::uint32_t>& arrival);

}  // namespace reorder::metrics
