#include "metrics/restore.hpp"

#include <stdexcept>
#include <string>

#include "metrics/pair_metrics.hpp"
#include "metrics/sequence_metrics.hpp"

namespace reorder::metrics {

std::unique_ptr<Metric> make_metric(std::string_view name) {
  if (name == PairRateMetric::kName) return std::make_unique<PairRateMetric>();
  if (name == RateSeriesMetric::kName) return std::make_unique<RateSeriesMetric>();
  if (name == TimeDomainMetric::kName) return std::make_unique<TimeDomainMetric>();
  if (name == RateEcdfMetric::kName) return std::make_unique<RateEcdfMetric>();
  if (name == LatencyHistogramMetric::kName) return std::make_unique<LatencyHistogramMetric>();
  if (name == LateTimeMetric::kName) return std::make_unique<LateTimeMetric>();
  if (name == SequenceExtentMetric::kName) return std::make_unique<SequenceExtentMetric>();
  if (name == NReorderingMetric::kName) return std::make_unique<NReorderingMetric>();
  if (name == ReorderDensityMetric::kName) return std::make_unique<ReorderDensityMetric>();
  if (name == BufferDensityMetric::kName) return std::make_unique<BufferDensityMetric>();
  throw std::invalid_argument{"make_metric: unknown metric '" + std::string{name} + "'"};
}

MetricSuite suite_from_json(const report::Json& j) {
  MetricSuite suite;
  for (const auto& [name, state] : j.members()) {
    auto metric = make_metric(name);
    metric->from_json(state);
    suite.add(std::move(metric));
  }
  return suite;
}

}  // namespace reorder::metrics
