// Sample- and measurement-level metrics: the paper's pair-probability
// analytics ported onto the streaming Metric contract, plus adapters that
// lift the stats-layer accumulators (Ecdf, Histogram) and the tail sketch
// into suites. All of these merge exactly under any contiguous split of
// the event stream.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/verdict.hpp"
#include "metrics/metric.hpp"
#include "metrics/sketch.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"

namespace reorder::metrics {

/// Pooled per-direction verdict counts over every admissible
/// measurement — the ReorderEstimate aggregate the session-era query API
/// reports. Pools the measurement-level estimates rather than re-tallying
/// samples: some techniques report counts without per-sample verdicts
/// (ping-burst) or deliberately blank a direction (data transfer).
class PairRateMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "pair_rate";

  std::string_view name() const override { return kName; }
  void observe_measurement(const core::MeasurementEvent& e) override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  const core::ReorderEstimate& forward() const { return forward_; }
  const core::ReorderEstimate& reverse() const { return reverse_; }

 private:
  core::ReorderEstimate forward_;
  core::ReorderEstimate reverse_;
};

/// Per-measurement mean reordering rates in completion order — the paired
/// series the §IV-B comparison consumes. Merge is concatenation, exact
/// when shards hold contiguous slices of the completion order (the
/// engine's partitioning).
class RateSeriesMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "rate_series";

  std::string_view name() const override { return kName; }
  void observe_measurement(const core::MeasurementEvent& e) override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  const std::vector<double>& forward() const { return forward_; }
  const std::vector<double>& reverse() const { return reverse_; }

 private:
  std::vector<double> forward_;
  std::vector<double> reverse_;
};

/// The §IV-C time-domain representation: forward reorder rate keyed by the
/// sample's inter-packet gap.
class TimeDomainMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "time_domain";

  std::string_view name() const override { return kName; }
  void observe(const core::SampleEvent& e) override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  const core::TimeDomainProfile& profile() const { return profile_; }

 private:
  core::TimeDomainProfile profile_;
};

/// stats::Ecdf adapter: the empirical distribution of per-measurement
/// forward rates (a per-target Figure-5 view). Merge is sample-multiset
/// union — the lazily sorted Ecdf renders identically however the stream
/// was split.
class RateEcdfMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "rate_ecdf";

  std::string_view name() const override { return kName; }
  void observe_measurement(const core::MeasurementEvent& e) override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  const stats::Ecdf& forward() const { return forward_; }

 private:
  stats::Ecdf forward_;
};

/// stats::Histogram adapter over per-sample completion latencies
/// (completed - started), in microseconds. Merge is a bin-wise sum.
class LatencyHistogramMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "latency_histogram";

  LatencyHistogramMetric(double lo_us = 0.0, double hi_us = 1'000'000.0,
                         std::size_t bins = 50);

  std::string_view name() const override { return kName; }
  void observe(const core::SampleEvent& e) override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  const stats::Histogram& histogram() const { return histogram_; }

 private:
  stats::Histogram histogram_;
};

/// Tail quantile sketch over the "late time" of reordered samples: how
/// long the displaced pair took from first transmission to verdict
/// (completed - started, ns). The RFC 4737 lateness view at survey scale,
/// kept as a log-bucketed sketch so shards merge exactly.
class LateTimeMetric final : public Metric {
 public:
  static constexpr std::string_view kName = "late_time";

  std::string_view name() const override { return kName; }
  void observe(const core::SampleEvent& e) override;
  std::unique_ptr<Metric> snapshot() const override;
  void merge(const Metric& other) override;
  report::Json to_json() const override;
  void from_json(const report::Json& j) override;

  const TailSketch& sketch() const { return sketch_; }

 private:
  TailSketch sketch_;
};

}  // namespace reorder::metrics
