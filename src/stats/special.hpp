// Special functions needed by the Student-t distribution: log-gamma and the
// regularized incomplete beta function I_x(a, b). Implemented from the
// standard continued-fraction expansion (Lentz's method) so the library has
// no external math dependencies.
#pragma once

namespace reorder::stats {

/// Natural log of the gamma function (delegates to std::lgamma; wrapped so
/// callers depend on this header rather than <cmath> semantics).
double log_gamma(double x);

/// Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1].
/// Accurate to ~1e-12 over the parameter ranges used by Student-t CDFs.
double incomplete_beta(double a, double b, double x);

}  // namespace reorder::stats
