// Empirical cumulative distribution function over double samples.
// Backs the paper's Figure 5 (CDF of per-path reordering rates).
#pragma once

#include <cstddef>
#include <vector>

namespace reorder::stats {

/// Collects samples and answers CDF / quantile queries. Samples are sorted
/// lazily on first query and the sort is cached until the next insertion.
class Ecdf {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  /// Multiset union with another distribution. Because queries see only
  /// the sorted sample multiset, merging per-shard Ecdfs in any order is
  /// indistinguishable from having collected the stream in one pass.
  void merge(const Ecdf& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// P[X <= x]; 0 for an empty distribution.
  double cdf(double x) const;

  /// Inverse CDF with the nearest-rank definition; q clamped to [0,1].
  double quantile(double q) const;

  double min() const;
  double max() const;

  /// The sorted sample vector (useful for printing full CDF curves).
  const std::vector<double>& sorted() const;

  /// Evenly spaced (value, cumulative fraction) points for plotting;
  /// at most `max_points` entries, always including both endpoints.
  std::vector<std::pair<double, double>> curve(std::size_t max_points = 100) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

}  // namespace reorder::stats
