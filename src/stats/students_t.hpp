// Student's t distribution: CDF via the incomplete beta function and
// quantiles via bisection. Needed for the paper's 99.9%-confidence
// paired-difference test (Section IV-B, per Jain's methodology).
#pragma once

namespace reorder::stats {

/// P[T <= t] for a t distribution with `df` degrees of freedom (df >= 1).
double student_t_cdf(double t, double df);

/// Inverse CDF: the t for which P[T <= t] = p, p in (0, 1).
double student_t_quantile(double p, double df);

/// Two-sided critical value t* with P[|T| <= t*] = confidence.
/// confidence in (0, 1), e.g. 0.999 for the paper's 99.9% interval.
double student_t_critical(double confidence, double df);

}  // namespace reorder::stats
