// Streaming summary statistics (Welford's algorithm) and simple proportion
// confidence intervals. Used by every experiment driver to aggregate
// per-sample verdicts into rates with uncertainty.
#pragma once

#include <cstdint>
#include <limits>

namespace reorder::stats {

/// Single-pass mean/variance/min/max accumulator. Numerically stable
/// (Welford); supports merging partial results (Chan et al.).
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one.
  void merge(const RunningStats& other);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;

 private:
  std::int64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// A binomial proportion with a Wilson score interval.
struct Proportion {
  std::int64_t successes{0};
  std::int64_t trials{0};
  double estimate{0.0};
  double lower{0.0};
  double upper{0.0};
};

/// Wilson score interval for `successes` out of `trials` at normal quantile
/// `z` (1.96 ~ 95%, 3.29 ~ 99.9%). Well-behaved at 0 and n.
Proportion wilson_interval(std::int64_t successes, std::int64_t trials, double z = 1.96);

}  // namespace reorder::stats
