#include "stats/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace reorder::stats {

double log_gamma(double x) { return std::lgamma(x); }

namespace {

// Continued fraction for the incomplete beta (Numerical Recipes betacf,
// re-derived with modified Lentz iteration).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) throw std::invalid_argument{"incomplete_beta: a,b must be > 0"};
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front =
      log_gamma(a + b) - log_gamma(a) - log_gamma(b) + a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

}  // namespace reorder::stats
