// Fixed-width histogram for latency / gap distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reorder::stats {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus underflow
/// and overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  /// Bin-wise sum with an identically configured histogram (same range
  /// and bin count; throws std::invalid_argument otherwise). Exact and
  /// associative, so per-shard histograms pool losslessly.
  void merge(const Histogram& other);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::int64_t count() const { return total_; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  std::int64_t bin_count(std::size_t i) const { return counts_.at(i); }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin i.
  double bin_hi(std::size_t i) const;

  /// Restore-path bulk mutators: credit `n` observations directly to a
  /// bin / the underflow / the overflow counter, keeping count() in step.
  /// Equivalent to `n` add() calls that would have landed there — what a
  /// deserializer uses to rebuild a histogram from serialized counts.
  void add_bin(std::size_t i, std::int64_t n);
  void add_underflow(std::int64_t n);
  void add_overflow(std::int64_t n);

  /// ASCII rendering (one line per non-empty bin) for example programs.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_{0};
  std::int64_t overflow_{0};
  std::int64_t total_{0};
};

}  // namespace reorder::stats
