#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace reorder::stats {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

Proportion wilson_interval(std::int64_t successes, std::int64_t trials, double z) {
  Proportion p;
  p.successes = successes;
  p.trials = trials;
  if (trials <= 0) return p;
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  p.estimate = phat;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double margin = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  p.lower = std::max(0.0, (center - margin) / denom);
  p.upper = std::min(1.0, (center + margin) / denom);
  return p;
}

}  // namespace reorder::stats
