// Paired-observation comparison of two measurement series (Jain, "The Art
// of Computer Systems Performance Analysis", ch. 13). This is the test the
// paper uses to decide whether two reordering tests measure the same
// underlying process on a host: compute per-pair differences, build a
// t-based confidence interval for the mean difference, and check whether
// the interval contains zero (the null hypothesis).
#pragma once

#include <cstddef>
#include <span>

namespace reorder::stats {

/// Outcome of a paired-difference test.
struct PairDifferenceResult {
  std::size_t n{0};          ///< number of usable pairs
  double mean_difference{0}; ///< mean of (a_i - b_i)
  double stddev{0};          ///< sample std-dev of the differences
  double ci_lower{0};        ///< confidence interval lower bound
  double ci_upper{0};        ///< confidence interval upper bound
  double confidence{0};      ///< the confidence level used
  bool null_supported{false};///< true iff the CI contains zero
};

/// Runs the paired test on series `a` and `b` (must be equal length, n >= 2)
/// at the given two-sided confidence level (paper: 0.999).
PairDifferenceResult pair_difference_test(std::span<const double> a,
                                          std::span<const double> b,
                                          double confidence = 0.999);

}  // namespace reorder::stats
