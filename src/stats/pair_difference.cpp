#include "stats/pair_difference.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/students_t.hpp"
#include "stats/summary.hpp"

namespace reorder::stats {

PairDifferenceResult pair_difference_test(std::span<const double> a,
                                          std::span<const double> b,
                                          double confidence) {
  if (a.size() != b.size()) {
    throw std::invalid_argument{"pair_difference_test: series lengths differ"};
  }
  if (a.size() < 2) {
    throw std::invalid_argument{"pair_difference_test: need at least 2 pairs"};
  }
  RunningStats diffs;
  for (std::size_t i = 0; i < a.size(); ++i) diffs.add(a[i] - b[i]);

  PairDifferenceResult r;
  r.n = a.size();
  r.mean_difference = diffs.mean();
  r.stddev = diffs.stddev();
  r.confidence = confidence;
  const double df = static_cast<double>(r.n - 1);
  const double tcrit = student_t_critical(confidence, df);
  const double half_width = tcrit * diffs.stderr_mean();
  r.ci_lower = r.mean_difference - half_width;
  r.ci_upper = r.mean_difference + half_width;
  // Degenerate case: identical series -> zero-width interval at zero still
  // supports the null.
  r.null_supported = r.ci_lower <= 0.0 && 0.0 <= r.ci_upper;
  return r;
}

}  // namespace reorder::stats
