#include "stats/students_t.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/special.hpp"

namespace reorder::stats {

double student_t_cdf(double t, double df) {
  if (!(df >= 1.0)) throw std::invalid_argument{"student_t_cdf: df must be >= 1"};
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double df) {
  if (!(p > 0.0 && p < 1.0)) throw std::invalid_argument{"student_t_quantile: p in (0,1)"};
  if (p == 0.5) return 0.0;
  // CDF is strictly increasing; bracket then bisect. 60 iterations gives
  // ~1e-15 relative precision on the bracket width.
  double lo = -1.0;
  double hi = 1.0;
  while (student_t_cdf(lo, df) > p) lo *= 2.0;
  while (student_t_cdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

double student_t_critical(double confidence, double df) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument{"student_t_critical: confidence in (0,1)"};
  }
  const double upper = 1.0 - (1.0 - confidence) / 2.0;
  return student_t_quantile(upper, df);
}

}  // namespace reorder::stats
