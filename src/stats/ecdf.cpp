#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

namespace reorder::stats {

void Ecdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Ecdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Ecdf::merge(const Ecdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = samples_.empty();
}

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return samples_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[std::min(samples_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double Ecdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Ecdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

const std::vector<double>& Ecdf::sorted() const {
  ensure_sorted();
  return samples_;
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || max_points == 0) return out;
  ensure_sorted();
  const std::size_t n = samples_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != samples_.back() || out.back().second != 1.0) {
    out.emplace_back(samples_.back(), 1.0);
  }
  return out;
}

}  // namespace reorder::stats
