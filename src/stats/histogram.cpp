#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace reorder::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, bin_width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument{"histogram: bad range"};
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument{"histogram: cannot merge differently binned histograms"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void Histogram::add_bin(std::size_t i, std::int64_t n) {
  counts_.at(i) += n;
  total_ += n;
}

void Histogram::add_underflow(std::int64_t n) {
  underflow_ += n;
  total_ += n;
}

void Histogram::add_overflow(std::int64_t n) {
  overflow_ += n;
  total_ += n;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + bin_width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }

std::string Histogram::render(std::size_t width) const {
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%10.4g, %10.4g) %8lld |", bin_lo(i), bin_hi(i),
                  static_cast<long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace reorder::stats
