// A work-stealing worker pool — the resident survey service's scheduler.
//
// util::ThreadPool (one shared FIFO) is the right substrate when the job
// count is small and fixed: the sharded batch runtime submits N shard
// worlds once and joins. A resident service admits work CONTINUOUSLY and
// its jobs are wildly uneven (a lossy target's world runs for multiples
// of a clean one's), so placement must be free to rebalance. Here every
// worker owns a deque; submission round-robins across the deques, owners
// consume their own deque front-to-back (FIFO — with stealing disabled a
// single worker degenerates to exactly ThreadPool's submission order),
// and an idle worker STEALS from the back of a randomly chosen victim's
// deque. Identity stays pinned elsewhere (util::ShardSeeder keys every
// target's RNG streams to its global index), which is precisely what
// makes placement — and therefore stealing — unable to influence any
// result byte.
//
// Locking model: one small mutex per deque, held only for a push or a
// pop. The steal path probes victims under their deque mutex; there is
// no global queue lock on the hot path. Idle sleep is coordinated by a
// global epoch counter (bumped per submission) so a sleeping worker can
// never miss work pushed to ANY deque. Steal traffic is observable:
// per-worker executed / stolen / steal-attempt counters aggregate into
// Stats, which the survey service surfaces in its live snapshots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace reorder::util {

class WorkStealingPool {
 public:
  struct Options {
    /// Worker count; 0 picks ThreadPool::hardware_threads(). More workers
    /// than cores is allowed (oversubscription costs context switches,
    /// never correctness — the stress tests pin this).
    std::size_t threads{0};
    /// When false, stealing is disabled and the pool degenerates to N
    /// independent FIFO queues fed round-robin — the fallback the
    /// equivalence tests compare against. Results must be identical
    /// either way; only the load balance (and the counters) differ.
    bool steal{true};
    /// Seed of the victim-selection stream. Load-balancing only — no
    /// result may depend on it.
    std::uint64_t seed{0x9e3779b97f4a7c15ull};
  };

  explicit WorkStealingPool(std::size_t threads) : WorkStealingPool{Options{threads}} {}
  explicit WorkStealingPool(Options options);

  /// Drains every submitted job (stealing keeps helping during shutdown),
  /// then joins.
  ~WorkStealingPool();

  /// Drains and joins the workers now, idempotently. After shutdown()
  /// returns, stats() reflects every job ever submitted — the counter lag
  /// of a job whose future resolved before its worker bumped `executed`
  /// is gone. submit() is no longer allowed.
  void shutdown();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  bool stealing_enabled() const { return options_.steal; }

  /// Enqueues one job onto the next deque (round-robin). Callable from
  /// any thread, including pool workers. The future resolves when the job
  /// returns and rethrows anything it threw.
  std::future<void> submit(std::function<void()> job);

  /// Scheduling observability. Aggregates are exact totals; the
  /// per-worker vectors are indexed by worker.
  struct Stats {
    std::uint64_t submitted{0};
    std::uint64_t executed{0};
    /// Jobs a worker took from another worker's deque.
    std::uint64_t stolen{0};
    /// Victim probes (locked a victim deque), successful or empty.
    std::uint64_t steal_attempts{0};
    std::vector<std::uint64_t> executed_by_worker;
    std::vector<std::uint64_t> stolen_by_worker;
  };
  Stats stats() const;

 private:
  struct Worker {
    /// Guards `jobs` (and, in no-steal mode, pairs with `cv`).
    std::mutex mu;
    std::deque<std::packaged_task<void()>> jobs;
    /// No-steal mode sleeps per worker: only the owner can run this
    /// deque's jobs, so only pushes to THIS deque should wake it.
    std::condition_variable cv;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    /// Victim-selection RNG state (owner-thread only).
    std::uint64_t rng{0};
    std::thread thread;
  };

  bool try_pop_own(Worker& self, std::packaged_task<void()>& out);
  bool try_steal(std::size_t thief, std::packaged_task<void()>& out);
  void worker_loop(std::size_t index);
  void worker_loop_no_steal(Worker& self);

  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::size_t> next_{0};    ///< round-robin submission cursor
  std::atomic<std::int64_t> queued_{0};  ///< pushed, not yet popped
  std::atomic<bool> stopping_{false};

  /// Steal-mode sleep coordination: submit bumps the epoch under the
  /// mutex and wakes everyone; an idle worker re-scans whenever the epoch
  /// moved past the value it read before its last (empty) scan.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::uint64_t epoch_{0};
};

}  // namespace reorder::util
