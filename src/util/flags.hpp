// A tiny declarative command-line flag parser for examples and benches.
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace reorder::util {

/// Declarative flag set. Register flags bound to variables, then parse().
///
///   Flags flags{"quickstart", "Run a first measurement"};
///   double p = 0.05;
///   flags.add_double("swap-prob", &p, "adjacent swap probability");
///   if (!flags.parse(argc, argv)) return 1;  // printed error or --help
class Flags {
 public:
  Flags(std::string program, std::string description);

  void add_i64(const std::string& name, std::int64_t* target, const std::string& help);
  void add_double(const std::string& name, double* target, const std::string& help);
  void add_string(const std::string& name, std::string* target, const std::string& help);
  void add_bool(const std::string& name, bool* target, const std::string& help);

  /// Returns false if parsing failed or --help was requested (usage printed).
  bool parse(int argc, char** argv);

  /// Positional arguments left over after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage text.
  std::string usage() const;

 private:
  struct Spec {
    std::string help;
    std::string kind;
    std::string default_repr;
    std::function<bool(const std::string&)> set;
    bool* bool_target{nullptr};
  };
  bool apply(const std::string& name, const std::string& value, bool has_value);

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace reorder::util
