#include "util/logging.hpp"

#include <atomic>

namespace reorder::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace reorder::util
