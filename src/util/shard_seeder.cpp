#include "util/shard_seeder.hpp"

#include <cstddef>

namespace reorder::util {

TargetSeeds ShardSeeder::target(std::uint64_t global_index) const {
  // One avalanche over the survey seed decorrelates nearby seeds; a second
  // over the index separates the per-target streams; distinct additive
  // constants then split each target's state into independent lanes.
  const std::uint64_t base = splitmix64(splitmix64(survey_seed_) + global_index);
  TargetSeeds seeds;
  seeds.host_seed = splitmix64(base + 0x01);
  seeds.ipid_initial = static_cast<std::uint16_t>(splitmix64(base + 0x02));
  seeds.forward_tag = splitmix64(base + 0x03);
  seeds.reverse_tag = splitmix64(base + 0x04);
  return seeds;
}

std::size_t ShardSeeder::shard_of(std::uint64_t global_index, std::size_t shards) {
  if (shards == 0) return 0;
  return static_cast<std::size_t>(global_index % shards);
}

}  // namespace reorder::util
