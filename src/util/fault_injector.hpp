// Deterministic, seeded fault injection for the survey runtime.
//
// The paper's survey ran against thousands of uncooperative real hosts,
// where timeouts, rate limiting and mid-run process death are the normal
// case — so the runtime's failure handling has to be TESTABLE, and a
// failure scenario that cannot be replayed from a seed cannot be
// debugged. A FaultInjector is a registry of fault PLANS keyed by site
// string; code under test declares fault POINTS by calling should_fire()
// / maybe_throw() with its site, and whether hit #k of a site fires is a
// pure function of (injector seed, site string, k) via a splitmix64
// chain — never of thread schedule or wall clock. Re-running with the
// same seed reproduces the exact failure sequence, which is what the
// fault-injection determinism tests pin.
//
// Sites are hierarchical slash-paths carrying the caller's identity
// ("shard/3/run", "target/host-2/test/syn", "jsonl/write"); plans match
// a site exactly or by prefix ("shard/" arms every shard). Keying the
// decision on identity-qualified sites (plus the per-site hit counter)
// keeps the firing sequence deterministic even when many shards probe
// their sites concurrently from pool threads.
//
// The four modes mirror the survey's real failure classes:
//   kThrow            a transient infrastructure error (util::InjectedFault)
//   kShardAbort       a whole shard world dies mid-run (transient: the
//                     sharded driver retries it with backoff)
//   kTargetTimeout    one target never answers: the measurement is
//                     recorded inadmissible at its deadline
//   kSinkWriteFailure the JSONL emit path's stream write fails
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace reorder::util {

/// FNV-1a over bytes: the stable string hash fault-site decisions and
/// checkpoint record checksums key on. An on-disk contract (recorded
/// checkpoints must verify across versions) — do not change constants.
inline std::uint64_t fnv1a64(std::string_view bytes,
                             std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The exception every injected throw-class fault raises. `transient`
/// separates the retry classes: transient faults (infrastructure: a shard
/// worker died, a write failed) are retried with backoff; deterministic
/// ones (a config error would fail identically every attempt) are not.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(const std::string& site, std::uint64_t hit, bool transient_fault)
      : std::runtime_error{"injected fault at '" + site + "' (hit " + std::to_string(hit) + ")"},
        site_{site},
        hit_{hit},
        transient_{transient_fault} {}

  const std::string& site() const { return site_; }
  std::uint64_t hit() const { return hit_; }
  bool transient() const { return transient_; }

 private:
  std::string site_;
  std::uint64_t hit_{0};
  bool transient_;
};

class FaultInjector {
 public:
  enum class Mode {
    kThrow,
    kShardAbort,
    kTargetTimeout,
    kSinkWriteFailure,
  };

  /// One armed fault: fire at matching sites with `probability` per hit
  /// (1.0 = every hit), at most `max_fires` times (0 = unlimited).
  struct Plan {
    std::string site;      ///< exact site, or a prefix ending in '/'
    Mode mode{Mode::kThrow};
    double probability{1.0};
    std::uint64_t max_fires{0};
    bool transient{true};  ///< retry class carried by the raised fault
  };

  /// One fault that actually fired — the replayable failure sequence.
  struct Firing {
    std::string site;
    Mode mode;
    std::uint64_t hit{0};
  };

  explicit FaultInjector(std::uint64_t seed) : seed_{seed} {}

  std::uint64_t seed() const { return seed_; }

  FaultInjector& arm(Plan plan) {
    std::lock_guard lock{mutex_};
    plans_.push_back(std::move(plan));
    return *this;
  }

  /// Does hit #next of `site` fire a plan of `mode`? Deterministic in
  /// (seed, site, per-site hit index); advances the site's hit counter
  /// whether or not anything fires, so un-armed runs and armed runs see
  /// identical counter streams.
  bool should_fire(std::string_view site, Mode mode);

  /// should_fire(site, mode) that raises the InjectedFault itself (with
  /// the firing plan's transient class) — the one-liner fault point for
  /// sites whose failure manifests as an exception.
  void maybe_throw(std::string_view site, Mode mode = Mode::kThrow);

  /// Every fault fired so far, in firing order (per site deterministic;
  /// cross-site order reflects call order). The determinism tests compare
  /// this log across reruns of the same seed.
  std::vector<Firing> firings() const {
    std::lock_guard lock{mutex_};
    return firings_;
  }

  /// Fired-count for one site (any mode).
  std::uint64_t fired(std::string_view site) const;

  /// Resets hit counters and the firing log (plans stay armed) — so one
  /// injector can drive run-after-run comparisons.
  void reset();

 private:
  struct SiteState {
    std::string site;
    std::uint64_t hits{0};
  };

  SiteState& state(std::string_view site);
  /// Advances `site`'s hit counter and returns the plan the hit fires
  /// under (logging the firing), or nullptr. Caller holds mutex_.
  const Plan* fire_locked(std::string_view site, Mode mode, std::uint64_t* hit_out);

  std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::vector<Plan> plans_;
  std::vector<SiteState> sites_;
  std::vector<Firing> firings_;
};

}  // namespace reorder::util
