#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace reorder::util {

Duration Duration::from_seconds_f(double s) {
  return Duration::nanos(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

namespace {

std::string render_ns(std::int64_t ns) {
  char buf[64];
  const char* sign = ns < 0 ? "-" : "";
  const std::int64_t a = ns < 0 ? -ns : ns;
  if (a < 1'000) {
    std::snprintf(buf, sizeof buf, "%s%ldns", sign, static_cast<long>(a));
  } else if (a < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%s%.3gus", sign, static_cast<double>(a) / 1e3);
  } else if (a < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%s%.4gms", sign, static_cast<double>(a) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%s%.6gs", sign, static_cast<double>(a) / 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return render_ns(ns_); }
std::string TimePoint::to_string() const { return render_ns(ns_); }

}  // namespace reorder::util
