#include "util/work_stealing_pool.hpp"

#include "util/shard_seeder.hpp"
#include "util/thread_pool.hpp"

namespace reorder::util {

WorkStealingPool::WorkStealingPool(Options options) : options_{options} {
  const std::size_t n =
      options_.threads != 0 ? options_.threads : ThreadPool::hardware_threads();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->rng = splitmix64(options_.seed + i);
    workers_.push_back(std::move(worker));
  }
  // Spawn only after every Worker exists: thieves index the whole vector.
  for (std::size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread{[this, i] {
      if (options_.steal) {
        worker_loop(i);
      } else {
        worker_loop_no_steal(*workers_[i]);
      }
    }};
  }
}

WorkStealingPool::~WorkStealingPool() { shutdown(); }

void WorkStealingPool::shutdown() {
  {
    // The epoch mutex doubles as the stop signal's fence in steal mode;
    // in no-steal mode each worker checks stopping_ under its own mutex,
    // so notify every per-worker cv as well.
    std::lock_guard lock{sleep_mu_};
    stopping_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) {
    std::lock_guard lock{w->mu};
  }
  for (auto& w : workers_) w->cv.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::future<void> WorkStealingPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task{std::move(job)};
  std::future<void> result = task.get_future();
  Worker& target = *workers_[next_.fetch_add(1, std::memory_order_relaxed) % workers_.size()];
  {
    std::lock_guard lock{target.mu};
    target.jobs.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (options_.steal) {
    {
      std::lock_guard lock{sleep_mu_};
      ++epoch_;
    }
    sleep_cv_.notify_all();
  } else {
    target.cv.notify_one();
  }
  return result;
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.executed_by_worker.reserve(workers_.size());
  out.stolen_by_worker.reserve(workers_.size());
  for (const auto& w : workers_) {
    const std::uint64_t executed = w->executed.load(std::memory_order_relaxed);
    const std::uint64_t stolen = w->stolen.load(std::memory_order_relaxed);
    out.executed += executed;
    out.stolen += stolen;
    out.steal_attempts += w->steal_attempts.load(std::memory_order_relaxed);
    out.executed_by_worker.push_back(executed);
    out.stolen_by_worker.push_back(stolen);
  }
  return out;
}

bool WorkStealingPool::try_pop_own(Worker& self, std::packaged_task<void()>& out) {
  std::lock_guard lock{self.mu};
  if (self.jobs.empty()) return false;
  out = std::move(self.jobs.front());  // FIFO from the owner's end
  self.jobs.pop_front();
  queued_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool WorkStealingPool::try_steal(std::size_t thief, std::packaged_task<void()>& out) {
  Worker& self = *workers_[thief];
  const std::size_t n = workers_.size();
  if (n == 1) return false;
  // One full random-start sweep over the victims. Splitmix64 keeps
  // successive sweeps decorrelated; the stream only shapes load balance.
  self.rng = splitmix64(self.rng);
  const std::size_t start = static_cast<std::size_t>(self.rng % n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (v == thief) continue;
    Worker& victim = *workers_[v];
    self.steal_attempts.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock{victim.mu};
    if (victim.jobs.empty()) continue;
    out = std::move(victim.jobs.back());  // opposite end from the owner
    victim.jobs.pop_back();
    queued_.fetch_sub(1, std::memory_order_release);
    self.stolen.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::worker_loop(std::size_t index) {
  Worker& self = *workers_[index];
  for (;;) {
    // Read the epoch BEFORE scanning: a submission racing the scan bumps
    // it, so the empty-handed wait below falls straight through and the
    // scan reruns — a job pushed to any deque can never be slept past.
    std::uint64_t seen;
    {
      std::lock_guard lock{sleep_mu_};
      seen = epoch_;
    }
    std::packaged_task<void()> task;
    if (try_pop_own(self, task) || try_steal(index, task)) {
      task();  // exceptions land in the packaged_task's future
      self.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain guarantee: with stealing, any worker can run any job, so
      // exit only once nothing is queued anywhere. A job that a sibling
      // popped concurrently is that sibling's to finish.
      if (queued_.load(std::memory_order_acquire) == 0) return;
      std::this_thread::yield();
      continue;
    }
    std::unique_lock lock{sleep_mu_};
    sleep_cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_acquire) || epoch_ != seen;
    });
  }
}

void WorkStealingPool::worker_loop_no_steal(Worker& self) {
  // The FIFO fallback: exactly ThreadPool's loop, on a private queue.
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock{self.mu};
      self.cv.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !self.jobs.empty();
      });
      if (self.jobs.empty()) return;  // stopping and drained
      task = std::move(self.jobs.front());
      self.jobs.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
    }
    task();
    self.executed.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace reorder::util
