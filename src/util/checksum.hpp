// RFC 1071 Internet checksum, used by both the IPv4 header checksum and the
// TCP checksum (the latter over a pseudo-header + segment).
#pragma once

#include <cstdint>
#include <span>

namespace reorder::util {

/// Incremental one's-complement sum. Feed byte ranges in any chunking; the
/// fold and complement happen in finish(). Odd-length chunks are handled by
/// carrying the dangling byte into the next chunk, matching the behaviour of
/// a single contiguous sum.
class InternetChecksum {
 public:
  /// Accumulates `data` into the running sum.
  void update(std::span<const std::uint8_t> data);

  /// Returns the one's-complement checksum in host byte order.
  /// The object may continue to accumulate after a finish() call.
  std::uint16_t finish() const;

 private:
  std::uint64_t sum_{0};
  bool have_odd_{false};
  std::uint8_t odd_byte_{0};
};

/// One-shot convenience over a single buffer.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace reorder::util
