#include "util/fault_injector.hpp"

#include <algorithm>
#include <optional>

#include "util/shard_seeder.hpp"

namespace reorder::util {

namespace {

bool site_matches(const std::string& plan_site, std::string_view site) {
  if (!plan_site.empty() && plan_site.back() == '/') {
    return site.size() >= plan_site.size() && site.substr(0, plan_site.size()) == plan_site;
  }
  return site == plan_site;
}

}  // namespace

FaultInjector::SiteState& FaultInjector::state(std::string_view site) {
  for (auto& s : sites_) {
    if (s.site == site) return s;
  }
  sites_.push_back(SiteState{std::string{site}, 0});
  return sites_.back();
}

const FaultInjector::Plan* FaultInjector::fire_locked(std::string_view site, Mode mode,
                                                      std::uint64_t* hit_out) {
  SiteState& s = state(site);
  const std::uint64_t hit = s.hits++;
  if (hit_out != nullptr) *hit_out = hit;
  for (const auto& plan : plans_) {
    if (plan.mode != mode || !site_matches(plan.site, site)) continue;
    if (plan.max_fires != 0) {
      std::uint64_t already = 0;
      for (const auto& f : firings_) {
        if (f.mode == mode && site_matches(plan.site, f.site)) ++already;
      }
      if (already >= plan.max_fires) continue;
    }
    // The firing decision: splitmix64 over (seed, site hash, hit index),
    // compared against the probability as a uniform draw in [0, 1). Pure
    // in its inputs — thread schedule, plan order and prior sites cannot
    // perturb it.
    const std::uint64_t draw = splitmix64(splitmix64(seed_ ^ fnv1a64(site)) + hit);
    const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (unit >= plan.probability) continue;
    firings_.push_back(Firing{std::string{site}, mode, hit});
    return &plan;
  }
  return nullptr;
}

bool FaultInjector::should_fire(std::string_view site, Mode mode) {
  std::lock_guard lock{mutex_};
  return fire_locked(site, mode, nullptr) != nullptr;
}

void FaultInjector::maybe_throw(std::string_view site, Mode mode) {
  std::optional<InjectedFault> fault;
  {
    std::lock_guard lock{mutex_};
    std::uint64_t hit = 0;
    if (const Plan* plan = fire_locked(site, mode, &hit)) {
      fault.emplace(std::string{site}, hit, plan->transient);
    }
  }
  if (fault) throw *fault;
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  std::lock_guard lock{mutex_};
  return static_cast<std::uint64_t>(std::count_if(
      firings_.begin(), firings_.end(), [&](const Firing& f) { return f.site == site; }));
}

void FaultInjector::reset() {
  std::lock_guard lock{mutex_};
  sites_.clear();
  firings_.clear();
}

}  // namespace reorder::util
