// Recycles byte-vector buffers so the simulation's steady state stops
// paying one heap allocation per packet payload / wire image. Producers
// acquire() a cleared vector (its old capacity intact), consumers release()
// it back when the packet dies. The pool is deliberately dumb: LIFO, no
// size classes — simulated payloads cluster around a few MSS-ish sizes, so
// the top of the stack almost always has enough capacity already.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reorder::util {

class BufferPool {
 public:
  /// `max_pooled` bounds how many idle buffers the pool retains; extra
  /// releases fall through to the allocator (keeps a burst from pinning
  /// memory forever).
  explicit BufferPool(std::size_t max_pooled = 256) : max_pooled_{max_pooled} {}

  struct Stats {
    std::uint64_t hits{0};      ///< acquire() served from the pool
    std::uint64_t misses{0};    ///< acquire() had to allocate fresh
    std::uint64_t returned{0};  ///< release() kept the buffer
    std::uint64_t dropped{0};   ///< release() let the buffer free (pool full)
  };

  /// Returns an empty vector, reserving at least `reserve_hint` bytes.
  std::vector<std::uint8_t> acquire(std::size_t reserve_hint = 0);

  /// Takes a dead buffer back. Buffers without capacity are ignored (they
  /// carry nothing worth recycling).
  void release(std::vector<std::uint8_t>&& buf) noexcept;

  std::size_t idle() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

  /// The process-wide pool the packet hot path recycles through. One per
  /// thread: the simulator is single-threaded by design, and thread_local
  /// keeps concurrent test binaries from sharing unsynchronized state.
  static BufferPool& global();

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_pooled_;
  Stats stats_;
};

}  // namespace reorder::util
