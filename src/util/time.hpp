// Simulation time: a strong integer-nanosecond tick type.
//
// The whole library runs on virtual time supplied by the event loop, so the
// representation must be exact (no floating point) and cheap to copy.
// Duration and TimePoint are distinct types to keep "when" and "how long"
// from being mixed accidentally (adding two TimePoints does not compile).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace reorder::util {

/// A span of virtual time, in integer nanoseconds. Signed so that
/// differences of time points are representable.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; prefer these over the raw-tick constructor.
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1'000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Fractional seconds (used by bandwidth computations); rounds to nearest ns.
  static Duration from_seconds_f(double s);

  constexpr std::int64_t ns() const { return ns_; }
  constexpr std::int64_t us() const { return ns_ / 1'000; }
  constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator-() const { return Duration{-ns_}; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Human-readable rendering with an adaptive unit ("250us", "1.5ms").
  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t n) : ns_{n} {}
  std::int64_t ns_{0};
};

/// An instant on the virtual clock. Zero is the epoch at which every
/// EventLoop starts.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint epoch() { return TimePoint{}; }
  static constexpr TimePoint from_ns(std::int64_t n) { return TimePoint{n}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.ns()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ns_ - d.ns()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t n) : ns_{n} {}
  std::int64_t ns_{0};
};

}  // namespace reorder::util
