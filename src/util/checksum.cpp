#include "util/checksum.hpp"

namespace reorder::util {

namespace {
inline std::uint64_t word_at(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(
      static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) | p[1]));
}
}  // namespace

void InternetChecksum::update(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  const std::size_t n = data.size();
  if (have_odd_ && n > 0) {
    // Complete the dangling high byte from the previous odd-length chunk.
    sum_ += static_cast<std::uint16_t>((static_cast<std::uint16_t>(odd_byte_) << 8) | data[0]);
    have_odd_ = false;
    i = 1;
  }
  // Accumulate big-endian 16-bit words into the 64-bit sum, eight words per
  // unrolled step. One's-complement addition is associative, so the fold in
  // finish() absorbs all carries; 2^48 words fit before sum_ could overflow
  // — far beyond any packet.
  const std::uint8_t* p = data.data();
  while (i + 16 <= n) {
    sum_ += word_at(p + i) + word_at(p + i + 2) + word_at(p + i + 4) + word_at(p + i + 6) +
            word_at(p + i + 8) + word_at(p + i + 10) + word_at(p + i + 12) + word_at(p + i + 14);
    i += 16;
  }
  while (i + 2 <= n) {
    sum_ += word_at(p + i);
    i += 2;
  }
  if (i < n) {
    have_odd_ = true;
    odd_byte_ = data[i];
  }
}

std::uint16_t InternetChecksum::finish() const {
  std::uint64_t s = sum_;
  if (have_odd_) s += static_cast<std::uint16_t>(static_cast<std::uint16_t>(odd_byte_) << 8);
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  InternetChecksum c;
  c.update(data);
  return c.finish();
}

}  // namespace reorder::util
