#include "util/checksum.hpp"

namespace reorder::util {

void InternetChecksum::update(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  if (have_odd_ && !data.empty()) {
    // Complete the dangling high byte from the previous odd-length chunk.
    sum_ += static_cast<std::uint16_t>((static_cast<std::uint16_t>(odd_byte_) << 8) | data[0]);
    have_odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += static_cast<std::uint16_t>((static_cast<std::uint16_t>(data[i]) << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    have_odd_ = true;
    odd_byte_ = data[i];
  }
}

std::uint16_t InternetChecksum::finish() const {
  std::uint64_t s = sum_;
  if (have_odd_) s += static_cast<std::uint16_t>(static_cast<std::uint16_t>(odd_byte_) << 8);
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  InternetChecksum c;
  c.update(data);
  return c.finish();
}

}  // namespace reorder::util
