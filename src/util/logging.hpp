// Minimal leveled logger. Quiet by default (Warn) so experiment output
// stays parseable; tests and examples raise the level when debugging.
#pragma once

#include <cstdio>
#include <string>

namespace reorder::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr as "[level] message".
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void logf(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof buf, fmt, args...);
  log_line(level, buf);
}
}  // namespace detail

template <typename... Args>
void log_trace(const char* fmt, Args... args) { detail::logf(LogLevel::kTrace, fmt, args...); }
template <typename... Args>
void log_debug(const char* fmt, Args... args) { detail::logf(LogLevel::kDebug, fmt, args...); }
template <typename... Args>
void log_info(const char* fmt, Args... args) { detail::logf(LogLevel::kInfo, fmt, args...); }
template <typename... Args>
void log_warn(const char* fmt, Args... args) { detail::logf(LogLevel::kWarn, fmt, args...); }
template <typename... Args>
void log_error(const char* fmt, Args... args) { detail::logf(LogLevel::kError, fmt, args...); }

}  // namespace reorder::util
