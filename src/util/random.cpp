#include "util/random.hpp"

#include <cmath>

namespace reorder::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // All-zero state is the one invalid state; splitmix64 makes it
  // astronomically unlikely, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  // Avoid log(0) by nudging the deviate away from zero.
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mu + sigma * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mu + sigma * u * factor;
}

Rng Rng::split() { return Rng{next() ^ 0xd1b54a32d192ed03ull}; }

}  // namespace reorder::util
