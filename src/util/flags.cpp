#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace reorder::util {

Flags::Flags(std::string program, std::string description)
    : program_{std::move(program)}, description_{std::move(description)} {}

void Flags::add_i64(const std::string& name, std::int64_t* target, const std::string& help) {
  Spec spec;
  spec.help = help;
  spec.kind = "int";
  spec.default_repr = std::to_string(*target);
  spec.set = [target](const std::string& v) {
    char* end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') return false;
    *target = parsed;
    return true;
  };
  specs_.emplace(name, std::move(spec));
}

void Flags::add_double(const std::string& name, double* target, const std::string& help) {
  Spec spec;
  spec.help = help;
  spec.kind = "float";
  spec.default_repr = std::to_string(*target);
  spec.set = [target](const std::string& v) {
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') return false;
    *target = parsed;
    return true;
  };
  specs_.emplace(name, std::move(spec));
}

void Flags::add_string(const std::string& name, std::string* target, const std::string& help) {
  Spec spec;
  spec.help = help;
  spec.kind = "string";
  spec.default_repr = *target;
  spec.set = [target](const std::string& v) {
    *target = v;
    return true;
  };
  specs_.emplace(name, std::move(spec));
}

void Flags::add_bool(const std::string& name, bool* target, const std::string& help) {
  Spec spec;
  spec.help = help;
  spec.kind = "bool";
  spec.default_repr = *target ? "true" : "false";
  spec.bool_target = target;
  spec.set = [target](const std::string& v) {
    if (v == "true" || v == "1") {
      *target = true;
    } else if (v == "false" || v == "0") {
      *target = false;
    } else {
      return false;
    }
    return true;
  };
  specs_.emplace(name, std::move(spec));
}

bool Flags::apply(const std::string& name, const std::string& value, bool has_value) {
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    // Allow --no-<flag> for booleans.
    if (name.rfind("no-", 0) == 0) {
      auto base = specs_.find(name.substr(3));
      if (base != specs_.end() && base->second.bool_target != nullptr && !has_value) {
        *base->second.bool_target = false;
        return true;
      }
    }
    std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(), name.c_str());
    return false;
  }
  if (!has_value) {
    if (it->second.bool_target != nullptr) {
      *it->second.bool_target = true;
      return true;
    }
    std::fprintf(stderr, "%s: flag --%s requires a value\n", program_.c_str(), name.c_str());
    return false;
  }
  if (!it->second.set(value)) {
    std::fprintf(stderr, "%s: bad value '%s' for --%s\n", program_.c_str(), value.c_str(),
                 name.c_str());
    return false;
  }
  return true;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      if (!apply(arg.substr(0, eq), arg.substr(eq + 1), /*has_value=*/true)) return false;
      continue;
    }
    // "--name value" form: consume the next token unless this is a bool.
    auto it = specs_.find(arg);
    const bool is_bool = it != specs_.end() && it->second.bool_target != nullptr;
    if (!is_bool && i + 1 < argc && std::string{argv[i + 1]}.rfind("--", 0) != 0) {
      if (!apply(arg, argv[++i], /*has_value=*/true)) return false;
    } else {
      if (!apply(arg, "", /*has_value=*/false)) return false;
    }
  }
  return true;
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name << " <" << spec.kind << ">  " << spec.help
       << " (default: " << spec.default_repr << ")\n";
  }
  os << "  --help  show this message\n";
  return os.str();
}

}  // namespace reorder::util
