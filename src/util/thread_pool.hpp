// A fixed-size worker pool for coarse-grained parallelism — the execution
// substrate of the sharded survey runtime. Each submitted job is one whole
// simulation shard (its own event loop, testbed and engine), so the pool
// stays deliberately simple: a mutex-guarded FIFO, no work stealing, no
// task graph. Determinism is the callers' problem and they solve it by
// construction — jobs share no mutable state, so the schedule (which
// worker runs which shard, and when) cannot influence any result.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace reorder::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). More workers than cores
  /// is allowed — shard jobs are compute-bound but oversubscription only
  /// costs context switches, never correctness.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (every submitted job still runs) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one job. The future resolves when the job returns and
  /// rethrows anything it threw — callers observe worker exceptions at
  /// the join point instead of losing them to a detached thread.
  std::future<void> submit(std::function<void()> job);

  /// max(1, std::thread::hardware_concurrency()) — the default worker
  /// count when a caller does not pin one.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_{false};
};

}  // namespace reorder::util
