// Shard-invariant seed derivation for partitioned surveys.
//
// When a fleet is split across simulation shards, every stochastic stream
// a target owns (its host's RNG, its IPID counter, its forward/reverse
// path stages) must be a pure function of the survey seed and the
// target's GLOBAL identity — never of the shard it landed on, its index
// within that shard, or the number of shards. ShardSeeder is that
// function: a splitmix64 chain over (survey_seed, global_index), so a
// target's whole simulated world replays bit-identically whether the
// fleet runs on one shard or sixty-four.
#pragma once

#include <cstdint>

namespace reorder::util {

/// splitmix64 finalizer (Vigna): the avalanche step that turns structured
/// counters into decorrelated 64-bit streams. Public because tests pin
/// its constants — the derivation scheme is an on-disk contract (recorded
/// seeds must replay across versions). Inline: it sits on per-arrival hot
/// paths (flow-table hashing) as well as per-target seeding.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Everything target-local the survey testbed seeds, derived once per
/// global target index.
struct TargetSeeds {
  std::uint64_t host_seed{0};      ///< remote host RNG (behaviour jitter)
  std::uint16_t ipid_initial{0};   ///< first IPID the remote stamps
  std::uint64_t forward_tag{0};    ///< per-stage RNG tag, forward path
  std::uint64_t reverse_tag{0};    ///< per-stage RNG tag, reverse path
};

class ShardSeeder {
 public:
  explicit ShardSeeder(std::uint64_t survey_seed) : survey_seed_{survey_seed} {}

  std::uint64_t survey_seed() const { return survey_seed_; }

  /// The seeds of the target at `global_index` in the fleet's declaration
  /// order. Pure in (survey_seed, global_index).
  TargetSeeds target(std::uint64_t global_index) const;

  /// Deterministic target -> shard assignment: round-robin by global
  /// index. Balanced for homogeneous fleets, and stable — adding a shard
  /// never moves a target between two existing runs of the SAME shard
  /// count, which is what the bit-identity tests compare.
  static std::size_t shard_of(std::uint64_t global_index, std::size_t shards);

 private:
  std::uint64_t survey_seed_;
};

}  // namespace reorder::util
