// Deterministic, seedable randomness for simulations.
//
// xoshiro256++ with splitmix64 seeding. Every stochastic component in the
// library takes an Rng (or a seed) explicitly — there is no global RNG — so
// whole experiments replay bit-identically from a single seed.
#pragma once

#include <array>
#include <cstdint>

namespace reorder::util {

/// xoshiro256++ pseudo-random generator (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling (Lemire) so results are exactly uniform.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential deviate with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal deviate via Marsaglia polar; exact mean 0 variance 1.
  double normal(double mu = 0.0, double sigma = 1.0);

  /// Spawns an independently seeded child stream; deterministic in the
  /// parent's state. Use one child per component to decouple their draws.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_{false};
  double spare_normal_{0.0};
};

}  // namespace reorder::util
