#include "util/thread_pool.hpp"

#include <algorithm>

namespace reorder::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task{std::move(job)};
  std::future<void> result = task.get_future();
  {
    std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return result;
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the packaged_task's future
  }
}

}  // namespace reorder::util
