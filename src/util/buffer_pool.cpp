#include "util/buffer_pool.hpp"

#include <utility>

namespace reorder::util {

std::vector<std::uint8_t> BufferPool::acquire(std::size_t reserve_hint) {
  if (!free_.empty()) {
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    if (buf.capacity() < reserve_hint) buf.reserve(reserve_hint);
    ++stats_.hits;
    return buf;
  }
  ++stats_.misses;
  std::vector<std::uint8_t> buf;
  if (reserve_hint > 0) buf.reserve(reserve_hint);
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) noexcept {
  if (buf.capacity() == 0) return;
  if (free_.size() >= max_pooled_) {
    ++stats_.dropped;
    return;  // buf frees on scope exit
  }
  ++stats_.returned;
  free_.push_back(std::move(buf));
}

BufferPool& BufferPool::global() {
  thread_local BufferPool pool;
  return pool;
}

}  // namespace reorder::util
