// A move-only callable wrapper with a fixed small buffer and no heap
// fallback. The event loop stores every scheduled callback in one of these,
// so per-event capture state (including a whole tcpip::Packet moving through
// a netsim stage) lives inside the scheduler's slot array instead of in a
// std::function heap allocation. A callable that does not fit is a compile
// error, not a silent allocation — raise Capacity at the use site instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace reorder::util {

template <class Signature, std::size_t Capacity>
class InplaceFunction;  // primary template intentionally undefined

/// Move-only small-buffer function: like std::function but the target is
/// always stored inline (`Capacity` bytes, max_align_t aligned) and must be
/// nothrow-move-constructible. Empty instances are default-constructed or
/// moved-from; invoking an empty InplaceFunction is undefined (call sites
/// check operator bool, exactly as with a null function pointer).
template <class R, class... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    init(std::forward<F>(f));
  }

  /// Destroys any current target and constructs `f` directly in the
  /// buffer — the zero-extra-move path for callers that own the storage
  /// (the scheduler constructs callbacks straight into their slot).
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  void emplace(F&& f) {
    reset();
    init(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { take_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take_from(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) { return invoke_(buf_, std::forward<Args>(args)...); }

  /// Destroys the target (releasing whatever it captured) and goes empty.
  void reset() noexcept {
    if (relocate_ != nullptr) relocate_(buf_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
    trivial_bytes_ = 0;
  }

 private:
  using InvokePtr = R (*)(void*, Args&&...);
  /// Move-constructs the target at `dst` (or nowhere when null) and
  /// destroys it at `self` — one pointer covers both move and destroy.
  /// Null for empty instances and for trivially-relocatable targets, which
  /// use the memcpy path keyed off trivial_bytes_ instead.
  using RelocatePtr = void (*)(void* self, void* dst) noexcept;

  template <class F>
  void init(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable too large for InplaceFunction buffer; raise Capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable over-aligned for InplaceFunction buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InplaceFunction targets must be nothrow-move-constructible");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* self, Args&&... args) -> R {
      return (*static_cast<Fn*>(self))(std::forward<Args>(args)...);
    };
    if constexpr (std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>) {
      // Fast path for POD-ish captures (timer `this` + generation, plain
      // state blocks): moves are a small memcpy and destruction is free —
      // no indirect relocate call on the scheduler's per-event path.
      trivial_bytes_ = static_cast<std::uint32_t>(sizeof(Fn));
    } else {
      relocate_ = [](void* self, void* dst) noexcept {
        Fn* fn = static_cast<Fn*>(self);
        if (dst != nullptr) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    }
  }

  void take_from(InplaceFunction& other) noexcept {
    if (other.relocate_ != nullptr) {
      other.relocate_(other.buf_, buf_);
    } else if (other.trivial_bytes_ != 0) {
      std::memcpy(buf_, other.buf_, other.trivial_bytes_);
    } else {
      return;  // other is empty
    }
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    trivial_bytes_ = other.trivial_bytes_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.trivial_bytes_ = 0;
  }

  // Header before buffer: a small capture and the dispatch pointers then
  // share cache lines, which matters when thousands of these live in the
  // scheduler's slot array.
  InvokePtr invoke_{nullptr};
  RelocatePtr relocate_{nullptr};
  std::uint32_t trivial_bytes_{0};
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace reorder::util
